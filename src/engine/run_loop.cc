#include "engine/run_loop.h"

#include <sstream>

namespace bitspread {

TimePolicy TimePolicy::parallel() noexcept {
  return TimePolicy{TimeUnit::kParallelRounds, 1, 1, 1.0};
}

TimePolicy TimePolicy::activations(std::uint64_t n) noexcept {
  return TimePolicy{TimeUnit::kActivations, n == 0 ? 1 : n, 1, 1.0};
}

TimePolicy TimePolicy::interaction_rounds(std::uint64_t n) noexcept {
  // One driver tick performs a whole round of n interactions (so the O(n)
  // ones-count in the stop check amortizes), but time is reported in
  // activations: ticks scale by n.
  return TimePolicy{TimeUnit::kActivations, 1, n == 0 ? 1 : n, 1.0};
}

TimePolicy TimePolicy::alpha_rounds(double alpha) noexcept {
  return TimePolicy{TimeUnit::kAlphaRounds, 1, 1, alpha};
}

std::string TimePolicy::describe() const {
  std::ostringstream out;
  out << "TimePolicy{" << to_string(unit)
      << ", ticks_per_round=" << ticks_per_round
      << ", units_per_tick=" << units_per_tick << ", alpha=" << alpha << "}";
  return out.str();
}

}  // namespace bitspread
