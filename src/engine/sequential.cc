#include "engine/sequential.h"

#include <cassert>

#include "engine/run_loop.h"
#include "faults/session.h"
#include "random/binomial.h"
#include "snapshot/state.h"
#include "telemetry/telemetry.h"

namespace bitspread {
namespace {

// Fault-free stepper: one activation per tick.
struct SequentialStepper {
  const SequentialEngine& engine;
  Rng& rng;
  Configuration state;
  std::uint32_t ell = 0;
  std::uint64_t samples = 0;

  Configuration& config() noexcept { return state; }
  void step(std::uint64_t /*tick*/) {
    state = engine.step(state, rng);
    if constexpr (telemetry::kCompiledIn) samples += ell;
  }
  std::uint64_t samples_drawn() const noexcept { return samples; }

  static constexpr const char* kSnapshotTag = "sequential";
  void capture(snapshot::StepperState& out) const {
    out.rng.assign(1, rng.state());
    out.samples_drawn = samples;
  }
  bool restore(const snapshot::StepperState& saved) {
    if (saved.rng.size() != 1) return false;
    rng.set_state(saved.rng[0]);
    samples = saved.samples_drawn;
    return true;
  }
};

// Faulty stepper: the activated agent is uniform over the non-source slots;
// the last `zealots` of them are frozen, the free agents hold one iff their
// index falls below the free ones-count.
struct SequentialFaultyStepper {
  const MemorylessProtocol& protocol;
  FaultSession& session;
  Rng& rng;
  Configuration state;
  std::uint32_t ell = 0;
  std::uint64_t samples = 0;

  Configuration& config() noexcept { return state; }
  void step(std::uint64_t /*tick*/) {
    const EnvironmentModel& model = session.model();
    const std::uint64_t non_source = state.n - state.sources;
    const std::uint64_t index = rng.next_below(non_source);
    const std::uint64_t free = session.free_agents();
    if (index >= free) return;  // A zealot activation is a no-op.
    const bool holds_one = index < session.free_ones(state);
    const Opinion own = holds_one ? Opinion::kOne : Opinion::kZero;
    // BSC noise on l observed bits == sampling Bin(l, noisy_fraction(p)).
    const auto ones_seen = static_cast<std::uint32_t>(
        binomial(rng, ell, model.noisy_fraction(state.fraction_ones())));
    const double adopt_one =
        (1.0 - model.spontaneous_rate) *
            protocol.g(own, ones_seen, ell, state.n) +
        model.spontaneous_rate * model.spontaneous_bias;
    const Opinion next =
        rng.bernoulli(adopt_one) ? Opinion::kOne : Opinion::kZero;
    if (own != next) state.ones += next == Opinion::kOne ? 1 : -1;
    if constexpr (telemetry::kCompiledIn) samples += ell;
  }
  void end_round(std::uint64_t /*round*/) {
    state = session.churn(state, rng);
  }
  std::uint64_t samples_drawn() const noexcept { return samples; }

  static constexpr const char* kSnapshotTag = "sequential.faulty";
  void capture(snapshot::StepperState& out) const {
    out.rng.assign(1, rng.state());
    out.samples_drawn = samples;
  }
  bool restore(const snapshot::StepperState& saved) {
    if (saved.rng.size() != 1) return false;
    rng.set_state(saved.rng[0]);
    samples = saved.samples_drawn;
    return true;
  }
};

}  // namespace

Configuration SequentialEngine::step(const Configuration& config,
                                     Rng& rng) const {
  assert(config.valid());
  const std::uint64_t non_source = config.n - config.sources;
  assert(non_source > 0);

  // Which opinion does the activated agent hold?
  const bool holds_one =
      rng.next_below(non_source) < config.non_source_ones();
  const Opinion own = holds_one ? Opinion::kOne : Opinion::kZero;

  // Its sample: l u.a.r. draws (with replacement) from ALL agents.
  const std::uint32_t ell = protocol_->sample_size(config.n);
  std::uint32_t ones_seen;
  {
    const telemetry::ScopedTimer draw_timer(telemetry::Phase::kSampleDraw);
    ones_seen = static_cast<std::uint32_t>(
        binomial(rng, ell, config.fraction_ones()));
  }

  const double adopt_one = protocol_->g(own, ones_seen, ell, config.n);
  const Opinion next =
      rng.bernoulli(adopt_one) ? Opinion::kOne : Opinion::kZero;

  Configuration result = config;
  if (own != next) {
    result.ones += next == Opinion::kOne ? 1 : -1;
  }
  return result;
}

RunResult SequentialEngine::run(Configuration config, const StopRule& rule,
                                Rng& rng, Trajectory* trajectory) const {
  SequentialStepper stepper{*this, rng, config,
                            protocol_->sample_size(config.n)};
  return RunDriver(TimePolicy::activations(config.n))
      .run(stepper, rule, trajectory);
}

RunResult SequentialEngine::run(Configuration config, const StopRule& rule,
                                const EnvironmentModel& faults, Rng& rng,
                                Trajectory* trajectory) const {
  assert(config.valid());
  assert(config.n - config.sources > 0);
  FaultSession session(faults, config);
  config = session.plant(config);
  SequentialFaultyStepper stepper{*protocol_, session, rng, config,
                                  protocol_->sample_size(config.n)};
  return RunDriver(TimePolicy::activations(config.n))
      .run(stepper, rule, session, trajectory);
}

}  // namespace bitspread
