#include "engine/sequential.h"

#include <cassert>

#include "random/binomial.h"

namespace bitspread {

Configuration SequentialEngine::step(const Configuration& config,
                                     Rng& rng) const {
  assert(config.valid());
  const std::uint64_t non_source = config.n - config.sources;
  assert(non_source > 0);

  // Which opinion does the activated agent hold?
  const bool holds_one =
      rng.next_below(non_source) < config.non_source_ones();
  const Opinion own = holds_one ? Opinion::kOne : Opinion::kZero;

  // Its sample: l u.a.r. draws (with replacement) from ALL agents.
  const std::uint32_t ell = protocol_->sample_size(config.n);
  const auto ones_seen = static_cast<std::uint32_t>(
      binomial(rng, ell, config.fraction_ones()));

  const double adopt_one = protocol_->g(own, ones_seen, ell, config.n);
  const Opinion next =
      rng.bernoulli(adopt_one) ? Opinion::kOne : Opinion::kZero;

  Configuration result = config;
  if (own != next) {
    result.ones += next == Opinion::kOne ? 1 : -1;
  }
  return result;
}

SequentialRunResult SequentialEngine::run(Configuration config,
                                          const StopRule& rule, Rng& rng,
                                          Trajectory* trajectory) const {
  SequentialRunResult result;
  const std::uint64_t n = config.n;
  const std::uint64_t max_activations = rule.max_rounds * n;
  if (trajectory != nullptr) trajectory->record(0, config.ones);
  std::uint64_t activation = 0;
  while (true) {
    if (auto reason = evaluate_stop(rule, config)) {
      result.reason = *reason;
      break;
    }
    if (activation >= max_activations) {
      result.reason = StopReason::kRoundLimit;
      break;
    }
    config = step(config, rng);
    ++activation;
    if (trajectory != nullptr && activation % n == 0) {
      trajectory->record(activation / n, config.ones);
    }
  }
  result.activations = activation;
  result.final_config = config;
  if (trajectory != nullptr) {
    trajectory->force_record((activation + n - 1) / n, config.ones);
  }
  return result;
}

}  // namespace bitspread
