#include "engine/sequential.h"

#include <cassert>

#include "faults/session.h"
#include "random/binomial.h"
#include "telemetry/telemetry.h"

namespace bitspread {

Configuration SequentialEngine::step(const Configuration& config,
                                     Rng& rng) const {
  assert(config.valid());
  const std::uint64_t non_source = config.n - config.sources;
  assert(non_source > 0);

  // Which opinion does the activated agent hold?
  const bool holds_one =
      rng.next_below(non_source) < config.non_source_ones();
  const Opinion own = holds_one ? Opinion::kOne : Opinion::kZero;

  // Its sample: l u.a.r. draws (with replacement) from ALL agents.
  const std::uint32_t ell = protocol_->sample_size(config.n);
  std::uint32_t ones_seen;
  {
    const telemetry::ScopedTimer draw_timer(telemetry::Phase::kSampleDraw);
    ones_seen = static_cast<std::uint32_t>(
        binomial(rng, ell, config.fraction_ones()));
  }

  const double adopt_one = protocol_->g(own, ones_seen, ell, config.n);
  const Opinion next =
      rng.bernoulli(adopt_one) ? Opinion::kOne : Opinion::kZero;

  Configuration result = config;
  if (own != next) {
    result.ones += next == Opinion::kOne ? 1 : -1;
  }
  return result;
}

SequentialRunResult SequentialEngine::run(Configuration config,
                                          const StopRule& rule, Rng& rng,
                                          Trajectory* trajectory) const {
  SequentialRunResult result;
  std::uint64_t start_ns = 0;
  if constexpr (telemetry::kCompiledIn) {
    start_ns = telemetry::clock_now_ns();
  }
  const std::uint64_t n = config.n;
  const std::uint64_t max_activations = rule.max_rounds * n;
  if (trajectory != nullptr) trajectory->record(0, config.ones);
  telemetry::record_round(0, config.ones, n);
  std::uint64_t activation = 0;
  while (true) {
    {
      const telemetry::ScopedTimer stop_timer(telemetry::Phase::kStopCheck);
      if (auto reason = evaluate_stop(rule, config)) {
        result.reason = *reason;
        break;
      }
    }
    if (activation >= max_activations) {
      result.reason = StopReason::kRoundLimit;
      break;
    }
    {
      const telemetry::ScopedTimer step_timer(telemetry::Phase::kRoundStep);
      config = step(config, rng);
    }
    ++activation;
    if (activation % n == 0) {
      if (trajectory != nullptr) trajectory->record(activation / n, config.ones);
      telemetry::record_round(activation / n, config.ones, n);
    }
  }
  result.activations = activation;
  result.final_config = config;
  if (trajectory != nullptr) {
    trajectory->force_record((activation + n - 1) / n, config.ones);
  }
  if constexpr (telemetry::kCompiledIn) {
    result.telemetry.recorded = true;
    result.telemetry.wall_seconds =
        static_cast<double>(telemetry::clock_now_ns() - start_ns) * 1e-9;
    result.telemetry.rounds = activation / n;
    result.telemetry.samples_drawn =
        activation * protocol_->sample_size(n);
  }
  return result;
}

SequentialRunResult SequentialEngine::run(Configuration config,
                                          const StopRule& rule,
                                          const EnvironmentModel& faults,
                                          Rng& rng,
                                          Trajectory* trajectory) const {
  assert(config.valid());
  FaultSession session(faults, config);
  config = session.plant(config);
  const EnvironmentModel& model = session.model();

  SequentialRunResult result;
  std::uint64_t start_ns = 0;
  std::uint64_t samples_drawn = 0;
  if constexpr (telemetry::kCompiledIn) {
    start_ns = telemetry::clock_now_ns();
  }
  const std::uint64_t n = config.n;
  const std::uint64_t non_source = n - config.sources;
  const std::uint64_t max_activations = rule.max_rounds * n;
  const std::uint32_t ell = protocol_->sample_size(n);
  assert(non_source > 0);

  if (trajectory != nullptr) trajectory->record(0, config.ones);
  telemetry::record_round(0, config.ones, n);
  session.observe(0, config);
  std::uint64_t activation = 0;
  while (true) {
    const std::uint64_t round = activation / n;
    if (activation % n == 0 && session.flip_due(round)) {
      const telemetry::ScopedTimer fault_timer(telemetry::Phase::kFaultApply);
      session.apply_flip(round, config);
    }
    {
      const telemetry::ScopedTimer stop_timer(telemetry::Phase::kStopCheck);
      if (auto reason = session.evaluate(rule, config)) {
        result.reason = *reason;
        break;
      }
    }
    if (activation >= max_activations) {
      result.reason = session.censored_reason();
      break;
    }

    // One activation. The activated agent is uniform over the non-source
    // slots; the last `zealots` of them are frozen, the free agents hold
    // one iff their index falls below the free ones-count.
    const std::uint64_t index = rng.next_below(non_source);
    const std::uint64_t free = session.free_agents();
    if (index < free) {
      const telemetry::ScopedTimer step_timer(telemetry::Phase::kRoundStep);
      const bool holds_one = index < session.free_ones(config);
      const Opinion own = holds_one ? Opinion::kOne : Opinion::kZero;
      // BSC noise on l observed bits == sampling Bin(l, noisy_fraction(p)).
      const auto ones_seen = static_cast<std::uint32_t>(binomial(
          rng, ell, model.noisy_fraction(config.fraction_ones())));
      const double adopt_one =
          (1.0 - model.spontaneous_rate) *
              protocol_->g(own, ones_seen, ell, n) +
          model.spontaneous_rate * model.spontaneous_bias;
      const Opinion next =
          rng.bernoulli(adopt_one) ? Opinion::kOne : Opinion::kZero;
      if (own != next) config.ones += next == Opinion::kOne ? 1 : -1;
      if constexpr (telemetry::kCompiledIn) samples_drawn += ell;
    }
    ++activation;
    if (activation % n == 0) {
      const telemetry::ScopedTimer fault_timer(telemetry::Phase::kFaultApply);
      config = session.churn(config, rng);
      session.observe(activation / n, config);
      if (trajectory != nullptr) {
        trajectory->record(activation / n, config.ones);
      }
      telemetry::record_round(activation / n, config.ones, n);
    }
  }
  result.activations = activation;
  result.final_config = config;
  result.recoveries = session.take_recoveries();
  if (trajectory != nullptr) {
    trajectory->force_record((activation + n - 1) / n, config.ones);
  }
  if constexpr (telemetry::kCompiledIn) {
    result.telemetry.recorded = true;
    result.telemetry.wall_seconds =
        static_cast<double>(telemetry::clock_now_ns() - start_ns) * 1e-9;
    result.telemetry.rounds = activation / n;
    result.telemetry.samples_drawn = samples_drawn;
    result.telemetry.fault_flips = session.flips_applied();
    result.telemetry.fault_zealots = session.zealots();
    result.telemetry.fault_churned = session.churned();
    fold_recovery_telemetry(result.telemetry, result.recoveries);
  }
  return result;
}

}  // namespace bitspread
