// The majority-bit-dissemination substrate (paper §1.3): multiple stubborn
// sources with CONFLICTING opinions.
//
// Two camps of stubborn agents display 0 and 1 forever; the correct opinion
// is the majority preference among them. Korman & Vacus (2022) proved this
// variant IMPOSSIBLE with passive communication — no memory-less protocol
// can stabilize (indeed no full consensus even exists while both camps are
// non-empty). This engine lets experiments measure what actually happens:
// the free population drifts, oscillates, or hugs a quasi-stationary mix,
// and bench/E15 quantifies how often it at least tracks the majority camp.
#ifndef BITSPREAD_ENGINE_CONFLICTING_H_
#define BITSPREAD_ENGINE_CONFLICTING_H_

#include <cstdint>
#include <string>

#include "core/protocol.h"
#include "engine/stopping.h"
#include "engine/trajectory.h"
#include "faults/environment.h"
#include "random/rng.h"

namespace bitspread {

struct ConflictingConfiguration {
  std::uint64_t n = 0;     // Total agents, both camps included.
  std::uint64_t ones = 0;  // Agents displaying 1 (stubborn ones included).
  std::uint64_t stubborn_ones = 0;
  std::uint64_t stubborn_zeros = 0;

  bool valid() const noexcept {
    if (n == 0 || ones > n) return false;
    if (stubborn_ones + stubborn_zeros > n) return false;
    return ones >= stubborn_ones && n - ones >= stubborn_zeros;
  }

  std::uint64_t free_ones() const noexcept { return ones - stubborn_ones; }
  std::uint64_t free_zeros() const noexcept {
    return (n - ones) - stubborn_zeros;
  }
  double fraction_ones() const noexcept {
    return static_cast<double>(ones) / static_cast<double>(n);
  }

  // The problem's "correct" opinion: the majority preference among sources.
  Opinion majority_preference() const noexcept {
    return stubborn_ones >= stubborn_zeros ? Opinion::kOne : Opinion::kZero;
  }

  std::string describe() const;
};

class ConflictingAggregateEngine {
 public:
  explicit ConflictingAggregateEngine(
      const MemorylessProtocol& protocol) noexcept
      : protocol_(&protocol) {}

  ConflictingConfiguration step(const ConflictingConfiguration& config,
                                Rng& rng) const;

  struct WatchResult {
    // Fraction of rounds where the free population's majority agrees with
    // the sources' majority preference.
    double tracking_fraction = 0.0;
    // Fraction of rounds with >= 90% of FREE agents on the preference.
    double near_consensus_fraction = 0.0;
    ConflictingConfiguration final_config;
    RunTelemetry telemetry;
  };

  // Runs `rounds` rounds (there is no absorbing state to stop at while both
  // camps are non-empty), recording the trajectory if given.
  WatchResult watch(ConflictingConfiguration config, std::uint64_t rounds,
                    Rng& rng, Trajectory* trajectory = nullptr) const;

  // Stop-rule run via the zealot reduction: the majority camp becomes the
  // sources of a binary Configuration (correct = the majority preference)
  // and the minority camp becomes exact extra zealots pinned on the wrong
  // opinion, so the run delegates to AggregateParallelEngine's fault-aware
  // loop bit-for-bit. With a single stubborn camp (the standard model) the
  // reduction is the identity: the result is bit-identical to the plain
  // aggregate run. Quorum stop rules count free agents only (the session's
  // non-zealot quorum), which is the natural notion here.
  RunResult run(const ConflictingConfiguration& config, const StopRule& rule,
                Rng& rng, Trajectory* trajectory = nullptr) const;

  // Same under an EnvironmentModel: the minority camp's zealots are added on
  // top of the model's own (extra_zealots), every other channel applies to
  // the free population unchanged. A source flip re-targets the MAJORITY
  // camp's displayed opinion (the minority camp stays stubborn on its
  // original one).
  RunResult run(const ConflictingConfiguration& config, const StopRule& rule,
                const EnvironmentModel& faults, Rng& rng,
                Trajectory* trajectory = nullptr) const;

 private:
  const MemorylessProtocol* protocol_;
};

}  // namespace bitspread

#endif  // BITSPREAD_ENGINE_CONFLICTING_H_
