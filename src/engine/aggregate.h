// The aggregate parallel engine: exact simulation in O(l) work per round.
//
// For any memory-less protocol, conditioned on X_t = x every non-source agent
// with opinion b independently adopts 1 with probability P_b(x/n) (Eq. 4), so
//   X_{t+1} = [z sources] + Binomial(#non-source ones, P_1)
//                         + Binomial(#non-source zeros, P_0)
// *exactly*. One round therefore costs two exact binomial draws plus the
// P_b computation — independent of n. This is the engine behind every
// large-population experiment in the repository; it is distribution-identical
// to the per-agent engine (tested, and cross-checked against the exact dense
// Markov chain for small n).
#ifndef BITSPREAD_ENGINE_AGGREGATE_H_
#define BITSPREAD_ENGINE_AGGREGATE_H_

#include "core/configuration.h"
#include "core/protocol.h"
#include "engine/stopping.h"
#include "engine/trajectory.h"
#include "faults/environment.h"
#include "random/rng.h"

namespace bitspread {

class AggregateParallelEngine {
 public:
  explicit AggregateParallelEngine(const MemorylessProtocol& protocol) noexcept
      : protocol_(&protocol) {}

  // One exact parallel round. `config` must be valid.
  Configuration step(const Configuration& config, Rng& rng) const;

  // Runs until the stop rule fires. If `trajectory` is non-null, X_t is
  // recorded (round 0 and the final round always; intermediate rounds per the
  // trajectory's stride).
  RunResult run(Configuration config, const StopRule& rule, Rng& rng,
                Trajectory* trajectory = nullptr) const;

  // Faulty run under an EnvironmentModel, still exact: observation and
  // spontaneous noise enter through the closed-form adoption probability
  // (NoisyObservationProtocol), zealots are pinned counts excluded from the
  // binomial updates, churn is two extra binomial draws per round, and
  // source flips re-target the stop rule mid-run. Per-flip recovery times
  // land in RunResult::recoveries; a run that never re-converges after its
  // last flip is reported as StopReason::kDegraded.
  RunResult run(Configuration config, const StopRule& rule,
                const EnvironmentModel& faults, Rng& rng,
                Trajectory* trajectory = nullptr) const;

  const MemorylessProtocol& protocol() const noexcept { return *protocol_; }

 private:
  const MemorylessProtocol* protocol_;
};

}  // namespace bitspread

#endif  // BITSPREAD_ENGINE_AGGREGATE_H_
