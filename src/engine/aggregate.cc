#include "engine/aggregate.h"

#include <cassert>

#include "faults/noisy_protocol.h"
#include "faults/session.h"
#include "random/binomial.h"
#include "telemetry/telemetry.h"

namespace bitspread {

Configuration AggregateParallelEngine::step(const Configuration& config,
                                            Rng& rng) const {
  assert(config.valid());
  const double p = config.fraction_ones();
  const double p1 =
      protocol_->aggregate_adoption(Opinion::kOne, p, config.n);
  const double p0 =
      protocol_->aggregate_adoption(Opinion::kZero, p, config.n);
  const telemetry::ScopedTimer draw_timer(telemetry::Phase::kSampleDraw);
  const std::uint64_t stay_or_switch_to_one =
      binomial(rng, config.non_source_ones(), p1) +
      binomial(rng, config.non_source_zeros(), p0);
  Configuration next = config;
  next.ones = config.source_ones() + stay_or_switch_to_one;
  return next;
}

RunResult AggregateParallelEngine::run(Configuration config,
                                       const StopRule& rule, Rng& rng,
                                       Trajectory* trajectory) const {
  RunResult result;
  std::uint64_t start_ns = 0;
  if constexpr (telemetry::kCompiledIn) {
    start_ns = telemetry::clock_now_ns();
  }
  if (trajectory != nullptr) trajectory->record(0, config.ones);
  telemetry::record_round(0, config.ones, config.n);
  for (std::uint64_t round = 0;; ++round) {
    {
      const telemetry::ScopedTimer stop_timer(telemetry::Phase::kStopCheck);
      if (auto reason = evaluate_stop(rule, config)) {
        result.reason = *reason;
        result.rounds = round;
        break;
      }
    }
    if (round >= rule.max_rounds) {
      result.reason = StopReason::kRoundLimit;
      result.rounds = round;
      break;
    }
    {
      const telemetry::ScopedTimer step_timer(telemetry::Phase::kRoundStep);
      config = step(config, rng);
    }
    if (trajectory != nullptr) trajectory->record(round + 1, config.ones);
    telemetry::record_round(round + 1, config.ones, config.n);
  }
  if (trajectory != nullptr) trajectory->force_record(result.rounds, config.ones);
  result.final_config = config;
  if constexpr (telemetry::kCompiledIn) {
    result.telemetry.recorded = true;
    result.telemetry.wall_seconds =
        static_cast<double>(telemetry::clock_now_ns() - start_ns) * 1e-9;
    result.telemetry.rounds = result.rounds;
    // The aggregate reduction draws (n - z) * l conceptual observation bits
    // per round through two exact binomials.
    result.telemetry.samples_drawn =
        result.rounds * (config.n - config.sources) *
        protocol_->sample_size(config.n);
  }
  return result;
}

RunResult AggregateParallelEngine::run(Configuration config,
                                       const StopRule& rule,
                                       const EnvironmentModel& faults,
                                       Rng& rng,
                                       Trajectory* trajectory) const {
  assert(config.valid());
  FaultSession session(faults, config);
  const NoisyObservationProtocol noisy(*protocol_, session.model());
  config = session.plant(config);

  RunResult result;
  std::uint64_t start_ns = 0;
  if constexpr (telemetry::kCompiledIn) {
    start_ns = telemetry::clock_now_ns();
  }
  if (trajectory != nullptr) trajectory->record(0, config.ones);
  telemetry::record_round(0, config.ones, config.n);
  session.observe(0, config);
  for (std::uint64_t round = 0;; ++round) {
    if (session.flip_due(round)) {
      const telemetry::ScopedTimer fault_timer(telemetry::Phase::kFaultApply);
      session.apply_flip(round, config);
    }
    {
      const telemetry::ScopedTimer stop_timer(telemetry::Phase::kStopCheck);
      if (auto reason = session.evaluate(rule, config)) {
        result.reason = *reason;
        result.rounds = round;
        break;
      }
    }
    if (round >= rule.max_rounds) {
      result.reason = session.censored_reason();
      result.rounds = round;
      break;
    }
    // One exact faulty round: free agents update through the noisy
    // closed-form adoption probabilities, then churn replaces crashed ones.
    {
      const telemetry::ScopedTimer step_timer(telemetry::Phase::kRoundStep);
      const double p = config.fraction_ones();
      const double p1 = noisy.aggregate_adoption(Opinion::kOne, p, config.n);
      const double p0 = noisy.aggregate_adoption(Opinion::kZero, p, config.n);
      const std::uint64_t next_free_ones =
          binomial(rng, session.free_ones(config), p1) +
          binomial(rng, session.free_zeros(config), p0);
      config.ones =
          config.source_ones() + session.zealot_ones() + next_free_ones;
    }
    {
      const telemetry::ScopedTimer fault_timer(telemetry::Phase::kFaultApply);
      config = session.churn(config, rng);
      session.observe(round + 1, config);
    }
    if (trajectory != nullptr) trajectory->record(round + 1, config.ones);
    telemetry::record_round(round + 1, config.ones, config.n);
  }
  if (trajectory != nullptr) {
    trajectory->force_record(result.rounds, config.ones);
  }
  result.final_config = config;
  result.recoveries = session.take_recoveries();
  if constexpr (telemetry::kCompiledIn) {
    result.telemetry.recorded = true;
    result.telemetry.wall_seconds =
        static_cast<double>(telemetry::clock_now_ns() - start_ns) * 1e-9;
    result.telemetry.rounds = result.rounds;
    result.telemetry.samples_drawn = result.rounds * session.free_agents() *
                                     protocol_->sample_size(config.n);
    result.telemetry.fault_flips = session.flips_applied();
    result.telemetry.fault_zealots = session.zealots();
    result.telemetry.fault_churned = session.churned();
    fold_recovery_telemetry(result.telemetry, result.recoveries);
  }
  return result;
}

}  // namespace bitspread
