#include "engine/aggregate.h"

#include <cassert>

#include "random/binomial.h"

namespace bitspread {

Configuration AggregateParallelEngine::step(const Configuration& config,
                                            Rng& rng) const {
  assert(config.valid());
  const double p = config.fraction_ones();
  const double p1 =
      protocol_->aggregate_adoption(Opinion::kOne, p, config.n);
  const double p0 =
      protocol_->aggregate_adoption(Opinion::kZero, p, config.n);
  const std::uint64_t stay_or_switch_to_one =
      binomial(rng, config.non_source_ones(), p1) +
      binomial(rng, config.non_source_zeros(), p0);
  Configuration next = config;
  next.ones = config.source_ones() + stay_or_switch_to_one;
  return next;
}

RunResult AggregateParallelEngine::run(Configuration config,
                                       const StopRule& rule, Rng& rng,
                                       Trajectory* trajectory) const {
  RunResult result;
  if (trajectory != nullptr) trajectory->record(0, config.ones);
  for (std::uint64_t round = 0;; ++round) {
    if (auto reason = evaluate_stop(rule, config)) {
      result.reason = *reason;
      result.rounds = round;
      break;
    }
    if (round >= rule.max_rounds) {
      result.reason = StopReason::kRoundLimit;
      result.rounds = round;
      break;
    }
    config = step(config, rng);
    if (trajectory != nullptr) trajectory->record(round + 1, config.ones);
  }
  if (trajectory != nullptr) trajectory->force_record(result.rounds, config.ones);
  result.final_config = config;
  return result;
}

}  // namespace bitspread
