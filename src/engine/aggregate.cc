#include "engine/aggregate.h"

#include <cassert>

#include "engine/run_loop.h"
#include "faults/noisy_protocol.h"
#include "faults/session.h"
#include "random/binomial.h"
#include "snapshot/state.h"
#include "telemetry/telemetry.h"

namespace bitspread {
namespace {

// Fault-free stepper: one exact round = two binomial draws.
struct AggregateStepper {
  const AggregateParallelEngine& engine;
  Rng& rng;
  Configuration state;
  std::uint64_t samples = 0;

  Configuration& config() noexcept { return state; }
  void step(std::uint64_t /*tick*/) {
    state = engine.step(state, rng);
    if constexpr (telemetry::kCompiledIn) {
      // The aggregate reduction draws (n - z) * l conceptual observation
      // bits per round through two exact binomials.
      samples += (state.n - state.sources) *
                 engine.protocol().sample_size(state.n);
    }
  }
  std::uint64_t samples_drawn() const noexcept { return samples; }

  // Snapshot hooks: the whole evolved state is the 256-bit generator (the
  // configuration travels driver-side).
  static constexpr const char* kSnapshotTag = "aggregate";
  void capture(snapshot::StepperState& out) const {
    out.rng.assign(1, rng.state());
    out.samples_drawn = samples;
  }
  bool restore(const snapshot::StepperState& saved) {
    if (saved.rng.size() != 1) return false;
    rng.set_state(saved.rng[0]);
    samples = saved.samples_drawn;
    return true;
  }
};

// Faulty stepper: free agents update through the noisy closed-form adoption
// probabilities; churn replaces crashed ones at the round boundary.
struct AggregateFaultyStepper {
  const NoisyObservationProtocol& noisy;
  FaultSession& session;
  Rng& rng;
  Configuration state;
  std::uint32_t ell = 0;
  std::uint64_t samples = 0;

  Configuration& config() noexcept { return state; }
  void step(std::uint64_t /*tick*/) {
    const double p = state.fraction_ones();
    const double p1 = noisy.aggregate_adoption(Opinion::kOne, p, state.n);
    const double p0 = noisy.aggregate_adoption(Opinion::kZero, p, state.n);
    const std::uint64_t next_free_ones =
        binomial(rng, session.free_ones(state), p1) +
        binomial(rng, session.free_zeros(state), p0);
    state.ones =
        state.source_ones() + session.zealot_ones() + next_free_ones;
    if constexpr (telemetry::kCompiledIn) {
      samples += session.free_agents() * ell;
    }
  }
  void end_round(std::uint64_t /*round*/) {
    state = session.churn(state, rng);
  }
  std::uint64_t samples_drawn() const noexcept { return samples; }

  static constexpr const char* kSnapshotTag = "aggregate.faulty";
  void capture(snapshot::StepperState& out) const {
    out.rng.assign(1, rng.state());
    out.samples_drawn = samples;
  }
  bool restore(const snapshot::StepperState& saved) {
    if (saved.rng.size() != 1) return false;
    rng.set_state(saved.rng[0]);
    samples = saved.samples_drawn;
    return true;
  }
};

}  // namespace

Configuration AggregateParallelEngine::step(const Configuration& config,
                                            Rng& rng) const {
  assert(config.valid());
  const double p = config.fraction_ones();
  const double p1 =
      protocol_->aggregate_adoption(Opinion::kOne, p, config.n);
  const double p0 =
      protocol_->aggregate_adoption(Opinion::kZero, p, config.n);
  const telemetry::ScopedTimer draw_timer(telemetry::Phase::kSampleDraw);
  const std::uint64_t stay_or_switch_to_one =
      binomial(rng, config.non_source_ones(), p1) +
      binomial(rng, config.non_source_zeros(), p0);
  Configuration next = config;
  next.ones = config.source_ones() + stay_or_switch_to_one;
  return next;
}

RunResult AggregateParallelEngine::run(Configuration config,
                                       const StopRule& rule, Rng& rng,
                                       Trajectory* trajectory) const {
  AggregateStepper stepper{*this, rng, config};
  return RunDriver(TimePolicy::parallel()).run(stepper, rule, trajectory);
}

RunResult AggregateParallelEngine::run(Configuration config,
                                       const StopRule& rule,
                                       const EnvironmentModel& faults,
                                       Rng& rng,
                                       Trajectory* trajectory) const {
  assert(config.valid());
  FaultSession session(faults, config);
  const NoisyObservationProtocol noisy(*protocol_, session.model());
  config = session.plant(config);
  AggregateFaultyStepper stepper{noisy, session, rng, config,
                                 protocol_->sample_size(config.n)};
  return RunDriver(TimePolicy::parallel())
      .run(stepper, rule, session, trajectory);
}

}  // namespace bitspread
