// The alpha-synchronous scheduler: interpolating between the paper's two
// worlds.
//
// Each round, every non-source agent independently activates with
// probability alpha; activated agents sample and update simultaneously,
// the rest keep their opinion. alpha = 1 is the parallel setting; alpha ~
// 1/n approximates the sequential one (one activation per round in
// expectation). Since the minority dynamics' speed rests on ALL agents
// reacting to the same global sample statistics at once (§1: "the power of
// synchronicity"), sweeping alpha locates how much synchrony the overshoot
// mechanism actually needs — a question the dichotomy of [14] vs [15]
// leaves wide open. Exact aggregate form: among the ns_b agents holding b,
//   activated A_b ~ Bin(ns_b, alpha),  adopters ~ Bin(A_b, P_b(x/n)),
// so one round is four binomial draws.
#ifndef BITSPREAD_ENGINE_ALPHA_SYNC_H_
#define BITSPREAD_ENGINE_ALPHA_SYNC_H_

#include "core/configuration.h"
#include "core/protocol.h"
#include "engine/stopping.h"
#include "engine/trajectory.h"
#include "faults/environment.h"
#include "random/rng.h"

namespace bitspread {

class AlphaSynchronousEngine {
 public:
  // alpha in (0, 1]; 1 reproduces AggregateParallelEngine::step exactly.
  AlphaSynchronousEngine(const MemorylessProtocol& protocol,
                         double alpha) noexcept;

  Configuration step(const Configuration& config, Rng& rng) const;

  // StopRule::max_rounds counts alpha-rounds; the result reports
  // TimeUnit::kAlphaRounds (RunResult::parallel_rounds() applies the
  // alpha-to-parallel conversion: each round performs alpha*n activations
  // in expectation).
  RunResult run(Configuration config, const StopRule& rule, Rng& rng,
                Trajectory* trajectory = nullptr) const;

  // Faulty run under an EnvironmentModel, still exact: among the free
  // agents holding b, A_b ~ Bin(free_b, alpha) activate and adopt 1 with the
  // closed-form noisy probability (observation + spontaneous channels);
  // zealots are pinned counts that never activate; churn and source flips
  // land on alpha-round boundaries. At alpha = 1 this is distribution-
  // identical to AggregateParallelEngine's faulty run. RecoverySegments are
  // measured in alpha-rounds.
  RunResult run(Configuration config, const StopRule& rule,
                const EnvironmentModel& faults, Rng& rng,
                Trajectory* trajectory = nullptr) const;

  double alpha() const noexcept { return alpha_; }
  const MemorylessProtocol& protocol() const noexcept { return *protocol_; }

 private:
  const MemorylessProtocol* protocol_;
  double alpha_;
};

}  // namespace bitspread

#endif  // BITSPREAD_ENGINE_ALPHA_SYNC_H_
