// Trajectory recording: the time series X_t of a run, optionally thinned.
#ifndef BITSPREAD_ENGINE_TRAJECTORY_H_
#define BITSPREAD_ENGINE_TRAJECTORY_H_

#include <cstdint>
#include <span>
#include <vector>

namespace bitspread {

class Trajectory {
 public:
  struct Point {
    std::uint64_t round;
    std::uint64_t ones;
  };

  // Records one point every `stride` rounds (round 0 is always recorded, and
  // engines additionally record the final round).
  explicit Trajectory(std::uint64_t stride = 1) noexcept
      : stride_(stride == 0 ? 1 : stride) {}

  void record(std::uint64_t round, std::uint64_t ones) {
    if (round % stride_ == 0) force_record(round, ones);
  }
  void force_record(std::uint64_t round, std::uint64_t ones) {
    if (!points_.empty() && points_.back().round == round) {
      points_.back().ones = ones;
      return;
    }
    points_.push_back(Point{round, ones});
  }

  // Replaces the recorded series wholesale — the snapshot/restore path, so
  // a resumed run's trajectory equals the uninterrupted run's.
  void restore(std::vector<Point> points) noexcept {
    points_ = std::move(points);
  }

  std::span<const Point> points() const noexcept { return points_; }
  bool empty() const noexcept { return points_.empty(); }
  std::size_t size() const noexcept { return points_.size(); }
  const Point& back() const noexcept { return points_.back(); }

  // Largest |ones(t+1) - ones(t)| over consecutive recorded rounds (only
  // meaningful with stride 1); used by the Proposition 4 jump experiment.
  std::uint64_t max_one_step_jump() const noexcept;

 private:
  std::uint64_t stride_;
  std::vector<Point> points_;
};

}  // namespace bitspread

#endif  // BITSPREAD_ENGINE_TRAJECTORY_H_
