#include "engine/stopping.h"

namespace bitspread {

std::string to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kCorrectConsensus:
      return "correct-consensus";
    case StopReason::kWrongConsensus:
      return "wrong-consensus";
    case StopReason::kRoundLimit:
      return "round-limit";
    case StopReason::kIntervalExit:
      return "interval-exit";
    case StopReason::kDegraded:
      return "degraded";
    case StopReason::kInterrupted:
      return "interrupted";
  }
  return "unknown";
}

std::string to_string(TimeUnit unit) {
  switch (unit) {
    case TimeUnit::kParallelRounds:
      return "parallel-rounds";
    case TimeUnit::kActivations:
      return "activations";
    case TimeUnit::kAlphaRounds:
      return "alpha-rounds";
  }
  return "unknown";
}

std::optional<StopReason> evaluate_stop(const StopRule& rule,
                                        const Configuration& config) noexcept {
  if (rule.interval_lo && config.ones < *rule.interval_lo) {
    return StopReason::kIntervalExit;
  }
  if (rule.interval_hi && config.ones > *rule.interval_hi) {
    return StopReason::kIntervalExit;
  }
  if (config.is_correct_consensus()) return StopReason::kCorrectConsensus;
  if (rule.stop_on_any_consensus && config.is_consensus()) {
    return StopReason::kWrongConsensus;
  }
  return std::nullopt;
}

void fold_recovery_telemetry(RunTelemetry& telemetry,
                             const std::vector<RecoverySegment>& recoveries) {
  for (const RecoverySegment& segment : recoveries) {
    if (!segment.recovered) continue;
    ++telemetry.recovered_segments;
    telemetry.recovery_rounds_total += segment.recovery_rounds();
  }
}

}  // namespace bitspread
