// Stopping rules and run results shared by all simulation engines.
#ifndef BITSPREAD_ENGINE_STOPPING_H_
#define BITSPREAD_ENGINE_STOPPING_H_

#include <cstdint>
#include <optional>
#include <string>

#include "core/configuration.h"

namespace bitspread {

enum class StopReason {
  kCorrectConsensus,  // Reached X = n*z (converged; absorbing iff Prop. 3).
  kWrongConsensus,    // Reached the other consensus (only possible without a
                      // source, or for broken protocols).
  kRoundLimit,        // Hit the round cap: the measurement is right-censored.
  kIntervalExit,      // Left the watched interval (Theorem 6 crossing runs).
};

std::string to_string(StopReason reason);

struct StopRule {
  // Hard cap on parallel rounds; every run terminates.
  std::uint64_t max_rounds = 1'000'000;

  // When set, stop as soon as ones < interval_lo or ones > interval_hi. Used
  // to measure interval *crossing* times (Theorem 6) instead of convergence.
  std::optional<std::uint64_t> interval_lo;
  std::optional<std::uint64_t> interval_hi;

  // Stop on any consensus (not only the correct one). Default on: a wrong
  // consensus is absorbing for every Prop.-3-compliant source-less run, and
  // for source runs it cannot occur at all, so stopping is always sound.
  bool stop_on_any_consensus = true;
};

struct RunResult {
  StopReason reason = StopReason::kRoundLimit;
  std::uint64_t rounds = 0;  // Parallel rounds elapsed when stopped.
  Configuration final_config;

  bool converged() const noexcept {
    return reason == StopReason::kCorrectConsensus;
  }
  // True when the run hit the cap: `rounds` is then a lower bound.
  bool censored() const noexcept { return reason == StopReason::kRoundLimit; }
};

// Evaluates the rule against a configuration; nullopt means keep running.
std::optional<StopReason> evaluate_stop(const StopRule& rule,
                                        const Configuration& config) noexcept;

}  // namespace bitspread

#endif  // BITSPREAD_ENGINE_STOPPING_H_
