// Stopping rules and run results shared by all simulation engines.
#ifndef BITSPREAD_ENGINE_STOPPING_H_
#define BITSPREAD_ENGINE_STOPPING_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/configuration.h"
#include "telemetry/run_telemetry.h"

namespace bitspread {

enum class StopReason {
  kCorrectConsensus,  // Reached X = n*z (converged; absorbing iff Prop. 3).
  kWrongConsensus,    // Reached the other consensus (only possible without a
                      // source, or for broken protocols).
  kRoundLimit,        // Hit the round cap: the measurement is right-censored.
  kIntervalExit,      // Left the watched interval (Theorem 6 crossing runs).
  kDegraded,          // Faulty run: at least one source flip occurred and the
                      // system never re-converged before the round cap. The
                      // recovery segment for the last flip is right-censored;
                      // RunResult keeps the flip round and final configuration
                      // so degraded runs are reported, never silently capped.
};

std::string to_string(StopReason reason);

struct StopRule {
  // Hard cap on parallel rounds; every run terminates.
  std::uint64_t max_rounds = 1'000'000;

  // When set, stop as soon as ones < interval_lo or ones > interval_hi. Used
  // to measure interval *crossing* times (Theorem 6) instead of convergence.
  // Hitting a boundary exactly does NOT stop: crossing runs must leave the
  // interval strictly (tests/engine_stopping_test.cc).
  std::optional<std::uint64_t> interval_lo;
  std::optional<std::uint64_t> interval_hi;

  // Stop on any consensus (not only the correct one). Default on: a wrong
  // consensus is absorbing for every Prop.-3-compliant source-less run, and
  // for source runs it cannot occur at all, so stopping is always sound.
  bool stop_on_any_consensus = true;
};

// One self-stabilization epoch of a faulty run: the stretch between a source
// flip (or the initial configuration, flip_round = 0 for the first segment)
// and the next re-convergence. An unrecovered final segment means the run
// ended degraded or censored; `recovered_round` is then meaningless.
struct RecoverySegment {
  std::uint64_t flip_round = 0;       // Round the epoch opened (0 = initial).
  std::uint64_t recovered_round = 0;  // Round the quorum was first met.
  bool recovered = false;

  // Rounds from flip to re-convergence (only meaningful when recovered).
  std::uint64_t recovery_rounds() const noexcept {
    return recovered_round - flip_round;
  }

  friend bool operator==(const RecoverySegment&,
                         const RecoverySegment&) = default;
};

struct RunResult {
  StopReason reason = StopReason::kRoundLimit;
  std::uint64_t rounds = 0;  // Parallel rounds elapsed when stopped.
  Configuration final_config;

  // Per-epoch recovery bookkeeping of faulty runs (empty for fault-free
  // runs): segment 0 covers the initial configuration, then one segment per
  // source flip, in flip order.
  std::vector<RecoverySegment> recoveries;

  // Measurement-only sidecar (telemetry.recorded is false unless the
  // library was built with BITSPREAD_TELEMETRY). NOT part of the semantic
  // payload: byte-identity across builds is asserted on everything above.
  RunTelemetry telemetry;

  bool converged() const noexcept {
    return reason == StopReason::kCorrectConsensus;
  }
  // True when the run hit the cap: `rounds` is then a lower bound. A
  // degraded run is censored too — its last recovery segment never closed.
  bool censored() const noexcept {
    return reason == StopReason::kRoundLimit ||
           reason == StopReason::kDegraded;
  }
  bool degraded() const noexcept { return reason == StopReason::kDegraded; }

  // Round of the last source flip (0 when the run never flipped).
  std::uint64_t last_flip_round() const noexcept {
    return recoveries.empty() ? 0 : recoveries.back().flip_round;
  }
};

// Evaluates the rule against a configuration; nullopt means keep running.
std::optional<StopReason> evaluate_stop(const StopRule& rule,
                                        const Configuration& config) noexcept;

// Folds the closed recovery segments into `telemetry` (recovered_segments,
// recovery_rounds_total). Engines call this once per telemetry-enabled run.
void fold_recovery_telemetry(RunTelemetry& telemetry,
                             const std::vector<RecoverySegment>& recoveries);

}  // namespace bitspread

#endif  // BITSPREAD_ENGINE_STOPPING_H_
