// Stopping rules and the unified run result shared by all simulation engines.
#ifndef BITSPREAD_ENGINE_STOPPING_H_
#define BITSPREAD_ENGINE_STOPPING_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/configuration.h"
#include "telemetry/run_telemetry.h"

namespace bitspread {

enum class StopReason {
  kCorrectConsensus,  // Reached X = n*z (converged; absorbing iff Prop. 3).
  kWrongConsensus,    // Reached the other consensus (only possible without a
                      // source, or for broken protocols).
  kRoundLimit,        // Hit the round cap: the measurement is right-censored.
  kIntervalExit,      // Left the watched interval (Theorem 6 crossing runs).
  kDegraded,          // Faulty run: at least one source flip occurred and the
                      // system never re-converged before the round cap. The
                      // recovery segment for the last flip is right-censored;
                      // RunResult keeps the flip round and final configuration
                      // so degraded runs are reported, never silently capped.
  kInterrupted,       // SIGINT/SIGTERM (or snapshot::request_interrupt()):
                      // the driver stopped at a round boundary after writing
                      // a final snapshot. Right-censored like kRoundLimit —
                      // the run resumes via --resume, it did not finish.
};

std::string to_string(StopReason reason);

// The unit RunResult::ticks is measured in. Every engine runs through the
// same RunDriver (engine/run_loop.h); the TimePolicy it is given decides how
// its native clock relates to parallel rounds, and the result carries that
// unit so callers convert without knowing which engine produced it.
enum class TimeUnit {
  kParallelRounds,  // One tick = one synchronous round (n updates at once).
  kActivations,     // One tick = one single-agent activation (or pairwise
                    // interaction); n ticks = one parallel round.
  kAlphaRounds,     // One tick = one alpha-synchronous round: alpha * n
                    // activations in expectation (engine/alpha_sync.h).
};

std::string to_string(TimeUnit unit);

struct StopRule {
  // Hard cap in PARALLEL rounds (converted by each engine's time policy:
  // n activations or one alpha-round per parallel round); every run
  // terminates.
  std::uint64_t max_rounds = 1'000'000;

  // When set, stop as soon as ones < interval_lo or ones > interval_hi. Used
  // to measure interval *crossing* times (Theorem 6) instead of convergence.
  // Hitting a boundary exactly does NOT stop: crossing runs must leave the
  // interval strictly (tests/engine_stopping_test.cc).
  std::optional<std::uint64_t> interval_lo;
  std::optional<std::uint64_t> interval_hi;

  // Stop on any consensus (not only the correct one). Default on: a wrong
  // consensus is absorbing for every Prop.-3-compliant source-less run, and
  // for source runs it cannot occur at all, so stopping is always sound.
  bool stop_on_any_consensus = true;
};

// One self-stabilization epoch of a faulty run: the stretch between a source
// flip (or the initial configuration, flip_round = 0 for the first segment)
// and the next re-convergence. An unrecovered final segment means the run
// ended degraded or censored; `recovered_round` is then meaningless.
struct RecoverySegment {
  std::uint64_t flip_round = 0;       // Round the epoch opened (0 = initial).
  std::uint64_t recovered_round = 0;  // Round the quorum was first met.
  bool recovered = false;

  // Rounds from flip to re-convergence (only meaningful when recovered).
  std::uint64_t recovery_rounds() const noexcept {
    return recovered_round - flip_round;
  }

  friend bool operator==(const RecoverySegment&,
                         const RecoverySegment&) = default;
};

// The one result type every engine returns. `ticks` counts elapsed time in
// the engine's native `unit`; the TimeUnit-aware accessors below convert, so
// callers never special-case parallel vs sequential vs alpha-synchronous
// engines (the old RunResult/SequentialRunResult split).
struct RunResult {
  StopReason reason = StopReason::kRoundLimit;
  TimeUnit unit = TimeUnit::kParallelRounds;
  std::uint64_t ticks = 0;  // Elapsed time in `unit` when stopped.
  double alpha = 1.0;       // Activation probability (kAlphaRounds only).
  Configuration final_config;

  // Per-epoch recovery bookkeeping of faulty runs (empty for fault-free
  // runs): segment 0 covers the initial configuration, then one segment per
  // source flip, in flip order. Rounds are in the engine's native round unit
  // (parallel rounds, or alpha-rounds for the alpha-synchronous engine).
  std::vector<RecoverySegment> recoveries;

  // Measurement-only sidecar (telemetry.recorded is false unless the
  // library was built with BITSPREAD_TELEMETRY). NOT part of the semantic
  // payload: byte-identity across builds is asserted on everything above.
  RunTelemetry telemetry;

  // Whole native rounds elapsed: ticks for round-driven engines, completed
  // parallel rounds (ticks / n, floored) for activation-driven ones.
  std::uint64_t rounds() const noexcept {
    if (unit != TimeUnit::kActivations) return ticks;
    const std::uint64_t n = final_config.n;
    return n == 0 ? 0 : ticks / n;
  }

  // Elapsed activations: exact for activation-driven engines, the expected
  // n (or alpha * n) activations per round otherwise.
  std::uint64_t activations() const noexcept {
    if (unit == TimeUnit::kActivations) return ticks;
    if (unit == TimeUnit::kAlphaRounds) {
      return static_cast<std::uint64_t>(
          alpha * static_cast<double>(ticks) *
          static_cast<double>(final_config.n));
    }
    return ticks * final_config.n;
  }

  // Elapsed time in the paper's comparison unit (1 parallel round = n
  // activations; 1 alpha-round = alpha parallel rounds in expectation).
  double parallel_rounds() const noexcept {
    switch (unit) {
      case TimeUnit::kActivations:
        return final_config.n == 0
                   ? 0.0
                   : static_cast<double>(ticks) /
                         static_cast<double>(final_config.n);
      case TimeUnit::kAlphaRounds:
        return static_cast<double>(ticks) * alpha;
      case TimeUnit::kParallelRounds:
        break;
    }
    return static_cast<double>(ticks);
  }

  bool converged() const noexcept {
    return reason == StopReason::kCorrectConsensus;
  }
  // True when the run hit the cap: `ticks` is then a lower bound. A
  // degraded run is censored too — its last recovery segment never closed —
  // and so is an interrupted run awaiting resume.
  bool censored() const noexcept {
    return reason == StopReason::kRoundLimit ||
           reason == StopReason::kDegraded ||
           reason == StopReason::kInterrupted;
  }
  bool degraded() const noexcept { return reason == StopReason::kDegraded; }

  // Round of the last source flip (0 when the run never flipped).
  std::uint64_t last_flip_round() const noexcept {
    return recoveries.empty() ? 0 : recoveries.back().flip_round;
  }
};

// Evaluates the rule against a configuration; nullopt means keep running.
std::optional<StopReason> evaluate_stop(const StopRule& rule,
                                        const Configuration& config) noexcept;

// Folds the closed recovery segments into `telemetry` (recovered_segments,
// recovery_rounds_total). The RunDriver calls this once per faulty run.
void fold_recovery_telemetry(RunTelemetry& telemetry,
                             const std::vector<RecoverySegment>& recoveries);

}  // namespace bitspread

#endif  // BITSPREAD_ENGINE_STOPPING_H_
