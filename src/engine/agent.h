// The agent-level parallel engine: explicit per-agent simulation.
//
// O(n*l) work per round, so it is reserved for (a) stateful protocols, where
// the aggregate reduction does not apply, and (b) cross-validating the
// aggregate engine (the two are distribution-identical for memory-less
// protocols; see tests/engine_cross_validation_test.cc). Sources occupy the
// first `sources` slots of the population and never update.
#ifndef BITSPREAD_ENGINE_AGENT_H_
#define BITSPREAD_ENGINE_AGENT_H_

#include <vector>

#include "core/configuration.h"
#include "core/stateful.h"
#include "engine/sequential.h"
#include "engine/stopping.h"
#include "engine/trajectory.h"
#include "random/floyd.h"
#include "random/rng.h"

namespace bitspread {

class FaultSession;

class AgentParallelEngine {
 public:
  enum class Sampling {
    kWithReplacement,    // The paper's model: l u.a.r. draws from all agents.
    kWithoutReplacement  // Distinct-agent samples (Floyd's algorithm).
  };

  explicit AgentParallelEngine(
      const StatefulProtocol& protocol,
      Sampling sampling = Sampling::kWithReplacement) noexcept
      : protocol_(&protocol), sampling_(sampling) {}

  // The explicit population. Index i < sources is a source agent.
  struct Population {
    std::vector<StatefulProtocol::AgentView> views;
    Opinion correct = Opinion::kOne;
    std::uint64_t sources = 1;

    std::uint64_t count_ones() const noexcept;
    Configuration config() const noexcept;

    // Reusable per-step scratch, owned here so repeated stepping allocates
    // nothing: the round-t opinion snapshot and the without-replacement
    // sampling table. Never read between steps.
    std::vector<Opinion> snapshot;
    FloydSampler sampler;
  };

  // Lays out a population matching `config`: sources first (holding z), then
  // the non-source ones, then the non-source zeros, every agent in the
  // protocol's initial view for its opinion. Agent order never matters (the
  // model is fully anonymous), so the deterministic layout is w.l.o.g.
  Population make_population(const Configuration& config) const;

  // One synchronous round: every non-source agent samples and updates.
  void step(Population& population, Rng& rng) const;

  RunResult run(Configuration config, const StopRule& rule, Rng& rng,
                Trajectory* trajectory = nullptr) const;

  // Run starting from an explicit population (e.g. adversarial internal
  // states for self-stabilization tests). The population is advanced in
  // place.
  RunResult run_population(Population& population, const StopRule& rule,
                           Rng& rng, Trajectory* trajectory = nullptr) const;

  // Faulty run under an EnvironmentModel, fully operational: every observed
  // bit passes through a BSC(epsilon), zealot slots never update, the
  // spontaneous channel overrides the post-update opinion with probability
  // eta (internal state is kept), churned agents restart in the protocol's
  // initial view for the currently wrong opinion, and source flips reset the
  // source views mid-run. Distribution-identical to the aggregate faulty run
  // for memory-less protocols.
  RunResult run(Configuration config, const StopRule& rule,
                const EnvironmentModel& faults, Rng& rng,
                Trajectory* trajectory = nullptr) const;

  // One faulty synchronous round (noise + zealots + spontaneous channel);
  // churn and source flips are per-round-boundary work owned by the
  // RunDriver's fault lifecycle.
  void step_faulty(Population& population, const FaultSession& session,
                   Rng& rng) const;

  const StatefulProtocol& protocol() const noexcept { return *protocol_; }

 private:
  std::uint32_t observe_ones(const std::vector<Opinion>& opinions,
                             std::uint32_t ell, Rng& rng,
                             FloydSampler& sampler) const noexcept;
  // As observe_ones, but each observed bit flips with probability epsilon.
  std::uint32_t observe_ones_noisy(const std::vector<Opinion>& opinions,
                                   std::uint32_t ell, double epsilon, Rng& rng,
                                   FloydSampler& sampler) const noexcept;

  const StatefulProtocol* protocol_;
  Sampling sampling_;
};

// Sequential activation for stateful protocols: one uniformly chosen
// non-source agent samples and updates per step. Completes the engine
// matrix (parallel/sequential x aggregate/agent); e.g. classic
// undecided-state-dynamics analyses use exactly this scheduler.
class AgentSequentialEngine {
 public:
  explicit AgentSequentialEngine(const StatefulProtocol& protocol) noexcept
      : protocol_(&protocol) {}

  using Population = AgentParallelEngine::Population;

  Population make_population(const Configuration& config) const {
    return AgentParallelEngine(*protocol_).make_population(config);
  }

  // One activation, in place; returns the change in the displayed
  // ones-count (-1, 0, or +1 — the birth-death structure of §1).
  int activate(Population& population, Rng& rng) const;

  // StopRule::max_rounds is in PARALLEL rounds (n activations each); the
  // result reports TimeUnit::kActivations.
  RunResult run(Configuration config, const StopRule& rule, Rng& rng,
                Trajectory* trajectory = nullptr) const;

  const StatefulProtocol& protocol() const noexcept { return *protocol_; }

 private:
  const StatefulProtocol* protocol_;
};

}  // namespace bitspread

#endif  // BITSPREAD_ENGINE_AGENT_H_
