// Portable scalar-word backend: the canonical realization of the kernel/2
// schedule, built directly on fill_index_row. Runs everywhere; the SIMD
// backends are measured (and digest-tested) against it.
#include "engine/kernel/backend_impl.h"

namespace bitspread {
namespace kernel {
namespace {

inline std::uint64_t gather_bit(const std::uint64_t* plane,
                                std::uint32_t index) noexcept {
  return (plane[index >> 6] >> (index & 63)) & 1;
}

struct ScalarFiller {
  explicit ScalarFiller(LaneRng& lanes) noexcept : lanes_(lanes) {}

  void fill_lanes(const BlockArgs& a, std::uint64_t* L) noexcept {
    const auto n32 = static_cast<std::uint32_t>(a.n);
    for (std::uint32_t j = 0; j < a.ell; ++j) {
      std::uint64_t lane_word = 0;
      for (unsigned quartet = 0; quartet < 4; ++quartet) {
        std::uint32_t idx[16];
        fill_index_row(lanes_, n32, a.index_threshold, idx);
        std::uint64_t bits16 = 0;
        for (unsigned s = 0; s < 16; ++s) {
          bits16 |= gather_bit(a.current, idx[s]) << s;
        }
        lane_word |= bits16 << (16 * quartet);
      }
      L[j] = lane_word;
    }
  }

  void gather_pack(const BlockArgs& a, std::uint64_t* L) noexcept {
    for (std::uint32_t j = 0; j < a.ell; ++j) {
      const std::uint32_t* idx =
          a.index_scratch + static_cast<std::size_t>(j) * 64;
      std::uint64_t word = 0;
      for (unsigned agent = 0; agent < 64; ++agent) {
        word |= gather_bit(a.current, idx[agent]) << agent;
      }
      L[j] = word;
    }
  }

 private:
  LaneRng& lanes_;
};

}  // namespace

BlockFn scalar_block_fn() noexcept {
  return &detail::process_block_impl<ScalarFiller>;
}

}  // namespace kernel
}  // namespace bitspread
