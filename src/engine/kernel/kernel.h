// Word-parallel bitslice step kernel for the sharded agent engine.
//
// The legacy sharded hot loop updates one agent at a time: l uniform draws,
// one g-table lookup, one Bernoulli draw. For a memory-less protocol whose
// g_n^[b](k) table only takes the values {0, 1/2, 1} (minority at every l,
// voter at l = 1, every deterministic threshold rule), the adoption decision
// is a boolean function of the l sampled bits — so 64 agents can be decided
// at once on 64-bit words:
//
//   1. *Sample.* Generate 64 x l indices per word from eight interleaved
//      xoshiro lanes (random/lanes.h), exact-uniform via 32-bit Lemire
//      rejection, and gather the sampled opinion bits into l "lane words"
//      (bit a of lane word j = sample j of agent a).
//   2. *Count.* Ripple-add the l lane words into ceil(log2(l+1)) bitsliced
//      count words.
//   3. *Decide.* OR together equality masks for every k with g(own,k) = 1,
//      AND a shared uniform tie word into the k's with g(own,k) = 1/2, and
//      select by the agents' own bits — branch-free, whole words at a time.
//
// Fault channels stay exact by operational decomposition: observation noise
// XORs Bernoulli(eps) mask words onto the lanes, the spontaneous channel
// overrides the circuit output through a Bernoulli(eta) select mask (exactly
// the (1-eta) g + eta bias fold the legacy table applies), churn overrides
// to the wrong opinion through a Bernoulli(delta) mask. Mask words cost ~2
// draws each (Binomial(64, p) count + Floyd positions) instead of 64.
//
// Stream schedule: the kernel defines its own per-(round, block) draw
// order, "kernel/2" (DESIGN.md section 3.6) — golden digests differ from the
// legacy "kernel/1" schedule, but the sampled distribution is identical
// (pinned by cross-validation tests), and determinism across thread/shard
// counts is untouched because streams are still keyed by (round, block).
// Backends (portable scalar-word, AVX2, NEON) implement one stream schedule:
// they produce bit-identical populations and differ only in speed.
#ifndef BITSPREAD_ENGINE_KERNEL_KERNEL_H_
#define BITSPREAD_ENGINE_KERNEL_KERNEL_H_

#include <cstdint>
#include <vector>

namespace bitspread {

class FloydSampler;

namespace kernel {

// Requested backend. kAuto picks the best available at runtime (cpuid);
// kLegacy opts out of the kernel entirely (the engine keeps its per-agent
// loop). Environment overrides, applied inside resolve():
//   BITSPREAD_KERNEL=auto|legacy|scalar|avx2|neon  — replaces kAuto requests
//   BITSPREAD_FORCE_SCALAR_KERNEL=1                — demotes SIMD to scalar
enum class Backend : std::uint8_t { kAuto, kLegacy, kScalarWord, kAvx2, kNeon };

// Maps a request to the concrete backend a step will use (never kAuto; may
// be kLegacy). Unavailable SIMD requests fall back to kScalarWord.
Backend resolve(Backend requested) noexcept;

// Pure form of resolve() for tests: same logic, explicit override inputs
// (env_kernel may be nullptr).
Backend resolve_with(Backend requested, const char* env_kernel,
                     bool force_scalar) noexcept;

// Kernel backends usable on this host and build, best first. Never empty:
// always ends with kScalarWord. Honors the environment overrides.
std::vector<Backend> available_backends();

const char* backend_name(Backend backend) noexcept;

// Eligibility limits. Above kMaxEll the {0,1/2,1} masks would outgrow their
// fixed-width storage; at or above 2^32 agents the 32-bit index generator
// loses exactness. Both fall back to the legacy loop.
inline constexpr std::uint32_t kMaxEll = 128;
inline constexpr std::uint64_t kMaxAgents = (std::uint64_t{1} << 32) - 1;

// The g-table compiled into boolean-circuit form: for each own opinion b,
// the sample counts k with g(b,k) = 1 and those with g(b,k) = 1/2 (every
// other k must be 0, or classification fails and the engine falls back).
struct CircuitTable {
  std::vector<std::uint32_t> ones_ks[2];
  std::vector<std::uint32_t> half_ks[2];
  bool any_half = false;
  bool own_dependent = false;

  // Compiles gtable[own * (ell + 1) + k] (the engine's layout). Returns
  // false — leaving the table unusable — when any entry is not in {0,1/2,1}.
  bool classify(const double* gtable, std::uint32_t ell);
};

// Fault-channel parameters for a faulty step (all zero rates = fault-free).
struct FaultChannels {
  double observation_noise = 0.0;
  double spontaneous_rate = 0.0;
  double spontaneous_bias = 0.0;
  double churn_rate = 0.0;
  std::uint64_t zealot_begin = 0;  // Contiguous frozen range, may be empty.
  std::uint64_t zealot_end = 0;
  std::uint64_t wrong_word = 0;  // All-ones iff the wrong opinion is One.
};

// One block of work: words [first_word, first_word + word_count) of the
// population planes. The caller owns every pointer; `sampler` and
// `index_scratch` (ell * 64 slots, distinct mode only) are per-worker
// scratch, so concurrent blocks never share them.
struct BlockArgs {
  const std::uint64_t* current = nullptr;
  std::uint64_t* next = nullptr;
  std::uint64_t n = 0;
  std::uint64_t sources = 0;
  std::uint32_t ell = 0;
  std::uint32_t index_threshold = 0;  // lemire32_threshold(n).
  std::uint64_t first_word = 0;
  std::uint64_t word_count = 0;
  std::uint64_t lane_seed = 0;  // Per-(round, block) kernel/2 master seed.
  const CircuitTable* table = nullptr;
  const FaultChannels* faults = nullptr;  // nullptr = fault-free step.
  bool without_replacement = false;
  FloydSampler* sampler = nullptr;
  std::uint32_t* index_scratch = nullptr;
  std::uint64_t* out_ones = nullptr;
  std::uint64_t* out_churned = nullptr;  // May be nullptr (not counted).
};

using BlockFn = void (*)(const BlockArgs&);

// The block processor for a *resolved* backend; nullptr for kLegacy/kAuto
// and for SIMD backends this build cannot run.
BlockFn block_fn(Backend resolved) noexcept;

}  // namespace kernel
}  // namespace bitspread

#endif  // BITSPREAD_ENGINE_KERNEL_KERNEL_H_
