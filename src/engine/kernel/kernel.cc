#include "engine/kernel/kernel.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "engine/kernel/backend_impl.h"

namespace bitspread {
namespace kernel {
namespace {

bool cpu_has_avx2() noexcept {
#if defined(BITSPREAD_KERNEL_HAVE_AVX2)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool build_has_neon() noexcept {
#if defined(BITSPREAD_KERNEL_HAVE_NEON)
  return true;  // NEON is baseline on aarch64; no runtime probe needed.
#else
  return false;
#endif
}

Backend detect_best() noexcept {
  if (cpu_has_avx2()) return Backend::kAvx2;
  if (build_has_neon()) return Backend::kNeon;
  return Backend::kScalarWord;
}

// Unrecognized values behave as unset (kAuto): a typo in the env var must
// not silently flip an experiment onto a different code path than "auto".
Backend parse_backend(const char* value) noexcept {
  if (value == nullptr) return Backend::kAuto;
  if (std::strcmp(value, "legacy") == 0) return Backend::kLegacy;
  if (std::strcmp(value, "scalar") == 0) return Backend::kScalarWord;
  if (std::strcmp(value, "avx2") == 0) return Backend::kAvx2;
  if (std::strcmp(value, "neon") == 0) return Backend::kNeon;
  return Backend::kAuto;
}

struct EnvOverrides {
  const char* kernel = nullptr;
  bool force_scalar = false;
};

const EnvOverrides& env_overrides() noexcept {
  static const EnvOverrides overrides = [] {
    EnvOverrides o;
    o.kernel = std::getenv("BITSPREAD_KERNEL");
    const char* force = std::getenv("BITSPREAD_FORCE_SCALAR_KERNEL");
    o.force_scalar = force != nullptr && force[0] != '\0' &&
                     std::strcmp(force, "0") != 0;
    return o;
  }();
  return overrides;
}

}  // namespace

Backend resolve_with(Backend requested, const char* env_kernel,
                     bool force_scalar) noexcept {
  Backend backend = requested;
  // The env var replaces kAuto requests only: code that explicitly pins a
  // backend (digest-equality tests, bench rows) keeps what it asked for.
  if (backend == Backend::kAuto) backend = parse_backend(env_kernel);
  if (backend == Backend::kAuto) backend = detect_best();
  // The CI portable-matrix switch demotes every SIMD choice, including
  // explicit ones — its whole point is to force the scalar path globally.
  if (force_scalar &&
      (backend == Backend::kAvx2 || backend == Backend::kNeon)) {
    backend = Backend::kScalarWord;
  }
  if (backend == Backend::kAvx2 && !cpu_has_avx2()) {
    backend = Backend::kScalarWord;
  }
  if (backend == Backend::kNeon && !build_has_neon()) {
    backend = Backend::kScalarWord;
  }
  return backend;
}

Backend resolve(Backend requested) noexcept {
  const EnvOverrides& env = env_overrides();
  return resolve_with(requested, env.kernel, env.force_scalar);
}

std::vector<Backend> available_backends() {
  std::vector<Backend> backends;
  if (!env_overrides().force_scalar) {
    if (cpu_has_avx2()) backends.push_back(Backend::kAvx2);
    if (build_has_neon()) backends.push_back(Backend::kNeon);
  }
  backends.push_back(Backend::kScalarWord);
  return backends;
}

const char* backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::kAuto:
      return "auto";
    case Backend::kLegacy:
      return "legacy";
    case Backend::kScalarWord:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "unknown";
}

BlockFn block_fn(Backend resolved) noexcept {
  switch (resolved) {
    case Backend::kScalarWord:
      return scalar_block_fn();
    case Backend::kAvx2:
      return avx2_block_fn();
    case Backend::kNeon:
      return neon_block_fn();
    default:
      return nullptr;
  }
}

bool CircuitTable::classify(const double* gtable, std::uint32_t ell) {
  constexpr double kTol = 1e-12;
  for (unsigned own = 0; own < 2; ++own) {
    ones_ks[own].clear();
    half_ks[own].clear();
  }
  any_half = false;
  for (unsigned own = 0; own < 2; ++own) {
    for (std::uint32_t k = 0; k <= ell; ++k) {
      const double g = gtable[own * (ell + 1) + k];
      if (std::fabs(g) <= kTol) continue;
      if (std::fabs(g - 1.0) <= kTol) {
        ones_ks[own].push_back(k);
      } else if (std::fabs(g - 0.5) <= kTol) {
        half_ks[own].push_back(k);
        any_half = true;
      } else {
        return false;  // Fractional g: the boolean circuit cannot express it.
      }
    }
  }
  own_dependent =
      ones_ks[0] != ones_ks[1] || half_ks[0] != half_ks[1];
  return true;
}

}  // namespace kernel
}  // namespace bitspread
