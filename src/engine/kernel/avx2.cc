// AVX2 backend: eight xoshiro lanes advanced as two 4x64 vector groups, the
// Lemire index map and plane gather vectorized 8 indices at a time, and the
// 8 gathered bits packed straight off movemask. Compiled with -mavx2 for
// this translation unit only (see src/CMakeLists.txt); resolve() never
// dispatches here unless cpuid reports AVX2.
//
// Bit-identity with the scalar backend (enforced by tests): the vector
// index path reproduces fill_index_row exactly. Lane state lives in ymm
// registers across the block; on the rare Lemire rejection the registers
// are spilled to the canonical LaneRng storage, the rejected slots redraw
// scalar-side in ascending slot order, and the registers reload — so
// redraws come from the same single-lane stream positions as the scalar
// schedule.
#include "engine/kernel/backend_impl.h"

#if defined(BITSPREAD_KERNEL_HAVE_AVX2)

#include <immintrin.h>

namespace bitspread {
namespace kernel {
namespace {

struct Avx2Filler {
  explicit Avx2Filler(LaneRng& lanes) noexcept : lanes_(lanes) { load(); }

  void fill_lanes(const BlockArgs& a, std::uint64_t* L) noexcept {
    const auto n32 = static_cast<std::uint32_t>(a.n);
    const std::uint32_t thresh = a.index_threshold;
    const __m256i vn = _mm256_set1_epi64x(n32);
    const __m256i lowmask = _mm256_set1_epi64x(0xffffffffLL);
    const __m256i v31 = _mm256_set1_epi32(31);
    // Unsigned 32-bit compare via sign-bias: lo < thresh iff
    // (lo ^ 2^31) <s (thresh ^ 2^31).
    const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
    const __m256i vthresh =
        _mm256_set1_epi32(static_cast<int>(thresh ^ 0x80000000u));
    const int* plane32 = reinterpret_cast<const int*>(a.current);

    for (std::uint32_t j = 0; j < a.ell; ++j) {
      std::uint64_t lane_word = 0;
      for (unsigned quartet = 0; quartet < 4; ++quartet) {
        // One canonical row: a draw from every lane, lanes 0..3 then 4..7.
        const __m256i row_a = step_a();
        const __m256i row_b = step_b();
        std::uint32_t bits16 = 0;
        const __m256i halves[2] = {row_a, row_b};
        for (unsigned h = 0; h < 2; ++h) {
          const __m256i v = halves[h];
          // Lemire products of the even (low-half) and odd (high-half)
          // dwords, then interleave the index/low words back to slot order.
          const __m256i prod_even = _mm256_mul_epu32(v, vn);
          const __m256i prod_odd =
              _mm256_mul_epu32(_mm256_srli_epi64(v, 32), vn);
          __m256i idx = _mm256_blend_epi32(
              _mm256_srli_epi64(prod_even, 32),
              _mm256_slli_epi64(_mm256_srli_epi64(prod_odd, 32), 32), 0xAA);
          if (thresh != 0) {
            const __m256i low = _mm256_blend_epi32(
                _mm256_and_si256(prod_even, lowmask),
                _mm256_slli_epi64(_mm256_and_si256(prod_odd, lowmask), 32),
                0xAA);
            const __m256i rejected = _mm256_cmpgt_epi32(
                vthresh, _mm256_xor_si256(low, bias));
            if (!_mm256_testz_si256(rejected, rejected)) {
              idx = redraw_rejected(idx, low, thresh, n32, h);
            }
          }
          const __m256i gathered = _mm256_i32gather_epi32(
              plane32, _mm256_srli_epi32(idx, 5), 4);
          const __m256i bit_in_sign = _mm256_slli_epi32(
              _mm256_srlv_epi32(gathered, _mm256_and_si256(idx, v31)), 31);
          const auto mask8 = static_cast<std::uint32_t>(
              _mm256_movemask_ps(_mm256_castsi256_ps(bit_in_sign)));
          bits16 |= mask8 << (8 * h);
        }
        lane_word |= static_cast<std::uint64_t>(bits16) << (16 * quartet);
      }
      L[j] = lane_word;
    }
  }

  void gather_pack(const BlockArgs& a, std::uint64_t* L) noexcept {
    const int* plane32 = reinterpret_cast<const int*>(a.current);
    const __m256i v31 = _mm256_set1_epi32(31);
    for (std::uint32_t j = 0; j < a.ell; ++j) {
      const std::uint32_t* idx_base =
          a.index_scratch + static_cast<std::size_t>(j) * 64;
      std::uint64_t word = 0;
      for (unsigned g = 0; g < 8; ++g) {
        const __m256i idx = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(idx_base + 8 * g));
        const __m256i gathered = _mm256_i32gather_epi32(
            plane32, _mm256_srli_epi32(idx, 5), 4);
        const __m256i bit_in_sign = _mm256_slli_epi32(
            _mm256_srlv_epi32(gathered, _mm256_and_si256(idx, v31)), 31);
        const auto mask8 = static_cast<std::uint32_t>(
            _mm256_movemask_ps(_mm256_castsi256_ps(bit_in_sign)));
        word |= static_cast<std::uint64_t>(mask8) << (8 * g);
      }
      L[j] = word;
    }
  }

 private:
  // Cold path: spill register lanes to the canonical storage, redraw the
  // rejected slots of half `h` scalar-side (slot s redraws from lane
  // ⌊s/2⌋), reload. Returns the corrected index vector.
  __attribute__((noinline)) __m256i redraw_rejected(__m256i idx, __m256i low,
                                                    std::uint32_t thresh,
                                                    std::uint32_t n32,
                                                    unsigned h) noexcept {
    store();
    alignas(32) std::uint32_t idxs[8];
    alignas(32) std::uint32_t lows[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(idxs), idx);
    _mm256_store_si256(reinterpret_cast<__m256i*>(lows), low);
    for (unsigned s = 0; s < 8; ++s) {
      while (lows[s] < thresh) {
        const auto redraw =
            static_cast<std::uint32_t>(lanes_.next((h * 8 + s) >> 1));
        const std::uint64_t m = static_cast<std::uint64_t>(redraw) * n32;
        lows[s] = static_cast<std::uint32_t>(m);
        idxs[s] = static_cast<std::uint32_t>(m >> 32);
      }
    }
    load();
    return _mm256_load_si256(reinterpret_cast<const __m256i*>(idxs));
  }

  static __m256i rotl(__m256i x, int k) noexcept {
    return _mm256_or_si256(_mm256_slli_epi64(x, k),
                           _mm256_srli_epi64(x, 64 - k));
  }
  static __m256i mul5(__m256i x) noexcept {
    return _mm256_add_epi64(x, _mm256_slli_epi64(x, 2));
  }
  static __m256i mul9(__m256i x) noexcept {
    return _mm256_add_epi64(x, _mm256_slli_epi64(x, 3));
  }

  __m256i step_a() noexcept {
    const __m256i result = mul9(rotl(mul5(s1a_), 7));
    const __m256i t = _mm256_slli_epi64(s1a_, 17);
    s2a_ = _mm256_xor_si256(s2a_, s0a_);
    s3a_ = _mm256_xor_si256(s3a_, s1a_);
    s1a_ = _mm256_xor_si256(s1a_, s2a_);
    s0a_ = _mm256_xor_si256(s0a_, s3a_);
    s2a_ = _mm256_xor_si256(s2a_, t);
    s3a_ = rotl(s3a_, 45);
    return result;
  }
  __m256i step_b() noexcept {
    const __m256i result = mul9(rotl(mul5(s1b_), 7));
    const __m256i t = _mm256_slli_epi64(s1b_, 17);
    s2b_ = _mm256_xor_si256(s2b_, s0b_);
    s3b_ = _mm256_xor_si256(s3b_, s1b_);
    s1b_ = _mm256_xor_si256(s1b_, s2b_);
    s0b_ = _mm256_xor_si256(s0b_, s3b_);
    s2b_ = _mm256_xor_si256(s2b_, t);
    s3b_ = rotl(s3b_, 45);
    return result;
  }

  void load() noexcept {
    auto& s = lanes_.state();
    s0a_ = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&s[0][0]));
    s0b_ = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&s[0][4]));
    s1a_ = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&s[1][0]));
    s1b_ = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&s[1][4]));
    s2a_ = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&s[2][0]));
    s2b_ = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&s[2][4]));
    s3a_ = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&s[3][0]));
    s3b_ = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&s[3][4]));
  }
  void store() noexcept {
    auto& s = lanes_.state();
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(&s[0][0]), s0a_);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(&s[0][4]), s0b_);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(&s[1][0]), s1a_);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(&s[1][4]), s1b_);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(&s[2][0]), s2a_);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(&s[2][4]), s2b_);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(&s[3][0]), s3a_);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(&s[3][4]), s3b_);
  }

  LaneRng& lanes_;
  __m256i s0a_, s1a_, s2a_, s3a_;  // Lanes 0..3, state words 0..3.
  __m256i s0b_, s1b_, s2b_, s3b_;  // Lanes 4..7.
};

}  // namespace

BlockFn avx2_block_fn() noexcept {
  return &detail::process_block_impl<Avx2Filler>;
}

}  // namespace kernel
}  // namespace bitspread

#else  // !BITSPREAD_KERNEL_HAVE_AVX2

namespace bitspread {
namespace kernel {

BlockFn avx2_block_fn() noexcept { return nullptr; }

}  // namespace kernel
}  // namespace bitspread

#endif  // BITSPREAD_KERNEL_HAVE_AVX2
