// NEON backend (aarch64): the eight xoshiro lanes advance as four 2x64
// vector pairs; index mapping, gather, and pack reuse the canonical scalar
// helpers (NEON has no gather, and the scalar Lemire map is already a
// handful of cycles), so bit-identity with the scalar backend follows from
// the vector step computing exactly the scalar recurrence. Lane state stays
// in the canonical LaneRng storage between rows, so the single-lane
// rejection redraw path needs no spill/reload choreography.
#include "engine/kernel/backend_impl.h"

#if defined(BITSPREAD_KERNEL_HAVE_NEON)

#include <arm_neon.h>

namespace bitspread {
namespace kernel {
namespace {

inline std::uint64_t gather_bit(const std::uint64_t* plane,
                                std::uint32_t index) noexcept {
  return (plane[index >> 6] >> (index & 63)) & 1;
}

struct NeonFiller {
  explicit NeonFiller(LaneRng& lanes) noexcept : lanes_(lanes) {}

  // One draw from every lane (the canonical row), two lanes per vector.
  void row(std::uint64_t out[LaneRng::kLanes]) noexcept {
    auto& s = lanes_.state();
    for (unsigned pair = 0; pair < 4; ++pair) {
      uint64x2_t s0 = vld1q_u64(&s[0][2 * pair]);
      uint64x2_t s1 = vld1q_u64(&s[1][2 * pair]);
      uint64x2_t s2 = vld1q_u64(&s[2][2 * pair]);
      uint64x2_t s3 = vld1q_u64(&s[3][2 * pair]);
      const uint64x2_t x5 = vaddq_u64(s1, vshlq_n_u64(s1, 2));
      const uint64x2_t r7 =
          vorrq_u64(vshlq_n_u64(x5, 7), vshrq_n_u64(x5, 57));
      const uint64x2_t result = vaddq_u64(r7, vshlq_n_u64(r7, 3));
      const uint64x2_t t = vshlq_n_u64(s1, 17);
      s2 = veorq_u64(s2, s0);
      s3 = veorq_u64(s3, s1);
      s1 = veorq_u64(s1, s2);
      s0 = veorq_u64(s0, s3);
      s2 = veorq_u64(s2, t);
      s3 = vorrq_u64(vshlq_n_u64(s3, 45), vshrq_n_u64(s3, 19));
      vst1q_u64(&s[0][2 * pair], s0);
      vst1q_u64(&s[1][2 * pair], s1);
      vst1q_u64(&s[2][2 * pair], s2);
      vst1q_u64(&s[3][2 * pair], s3);
      vst1q_u64(&out[2 * pair], result);
    }
  }

  void fill_lanes(const BlockArgs& a, std::uint64_t* L) noexcept {
    const auto n32 = static_cast<std::uint32_t>(a.n);
    for (std::uint32_t j = 0; j < a.ell; ++j) {
      std::uint64_t lane_word = 0;
      for (unsigned quartet = 0; quartet < 4; ++quartet) {
        std::uint64_t rowbuf[LaneRng::kLanes];
        row(rowbuf);
        std::uint32_t idx[16];
        indices_from_row(lanes_, rowbuf, n32, a.index_threshold, idx);
        std::uint64_t bits16 = 0;
        for (unsigned slot = 0; slot < 16; ++slot) {
          bits16 |= gather_bit(a.current, idx[slot]) << slot;
        }
        lane_word |= bits16 << (16 * quartet);
      }
      L[j] = lane_word;
    }
  }

  void gather_pack(const BlockArgs& a, std::uint64_t* L) noexcept {
    for (std::uint32_t j = 0; j < a.ell; ++j) {
      const std::uint32_t* idx =
          a.index_scratch + static_cast<std::size_t>(j) * 64;
      std::uint64_t word = 0;
      for (unsigned agent = 0; agent < 64; ++agent) {
        word |= gather_bit(a.current, idx[agent]) << agent;
      }
      L[j] = word;
    }
  }

 private:
  LaneRng& lanes_;
};

}  // namespace

BlockFn neon_block_fn() noexcept {
  return &detail::process_block_impl<NeonFiller>;
}

}  // namespace kernel
}  // namespace bitspread

#else  // !BITSPREAD_KERNEL_HAVE_NEON

namespace bitspread {
namespace kernel {

BlockFn neon_block_fn() noexcept { return nullptr; }

}  // namespace kernel
}  // namespace bitspread

#endif  // BITSPREAD_KERNEL_HAVE_NEON
