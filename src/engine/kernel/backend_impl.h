// Shared implementation of the bitslice step kernel (internal header).
//
// Every backend instantiates process_block_impl<Filler> with a Filler that
// implements only the sampling stage — everything else (the kernel/2 draw
// schedule, the fault-mask machinery, the counting circuit, freezing and
// commit) is this one template, so backends are bit-identical by
// construction and differ only in how fast they turn RNG lanes into
// gathered bit-lanes.
//
// Filler contract (one instance per block, constructed over the block's
// LaneRng):
//   void fill_lanes(const BlockArgs&, std::uint64_t* L)
//       With-replacement sampling for one word: L[j] bit a = opinion bit of
//       the j-th sample of agent a. Must consume randomness exactly like
//       the canonical schedule: for each sample j (outer) and agent quartet
//       q (inner), one fill_index_row — i.e. one draw per lane, plus
//       single-lane redraws for rejected slots in ascending slot order.
//   void gather_pack(const BlockArgs&, std::uint64_t* L)
//       Without-replacement mode: indices were already drawn (Floyd, on the
//       per-agent lanes) into index_scratch, lane-major (slot j * 64 + a);
//       gather them into L. Consumes no randomness.
#ifndef BITSPREAD_ENGINE_KERNEL_BACKEND_IMPL_H_
#define BITSPREAD_ENGINE_KERNEL_BACKEND_IMPL_H_

#include <algorithm>
#include <bit>
#include <cstdint>

#include "engine/kernel/kernel.h"
#include "profile/counters.h"
#include "random/binomial.h"
#include "random/floyd.h"
#include "random/lanes.h"
#include "random/rng.h"
#include "telemetry/telemetry.h"

namespace bitspread {
namespace kernel {

// Internal backend entry points (defined in scalar.cc / avx2.cc / neon.cc;
// the SIMD ones return nullptr when the build lacks the instruction set).
BlockFn scalar_block_fn() noexcept;
BlockFn avx2_block_fn() noexcept;
BlockFn neon_block_fn() noexcept;

namespace detail {

// Bits of [lo, hi) that fall inside the word starting at agent `base`.
inline std::uint64_t range_word(std::uint64_t base, std::uint64_t lo,
                                std::uint64_t hi) noexcept {
  if (hi <= base || lo >= base + 64) return 0;
  const std::uint64_t from = lo > base ? lo - base : 0;
  const std::uint64_t to = hi - base < 64 ? hi - base : 64;
  const std::uint64_t upper =
      to == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << to) - 1;
  return upper & ~((std::uint64_t{1} << from) - 1);
}

// 64 iid Bernoulli(p) bits in ~2 expected draws: the popcount is
// Binomial(64, p)-distributed and the set positions a uniform subset, which
// is exactly the law of 64 independent coins.
inline std::uint64_t bernoulli_word(Rng& aux, FloydSampler& sampler,
                                    double p) {
  const std::uint64_t k = binomial(aux, 64, p);
  if (k == 0) return 0;
  if (k >= 64) return ~std::uint64_t{0};
  std::uint64_t word = 0;
  sampler.sample(64, k, aux, [&word](std::uint64_t bit) noexcept {
    word |= std::uint64_t{1} << bit;
  });
  return word;
}

// Bitsliced sample counts: bit a of bits[b] is bit b of agent a's count.
struct BitCount {
  std::uint64_t bits[8];
  unsigned width;
};

inline void count_lanes(const std::uint64_t* L, std::uint32_t ell,
                        BitCount& count) noexcept {
  count.width = static_cast<unsigned>(std::bit_width(ell));
  for (unsigned b = 0; b < count.width; ++b) count.bits[b] = 0;
  for (std::uint32_t j = 0; j < ell; ++j) {
    std::uint64_t carry = L[j];
    for (unsigned b = 0; carry != 0 && b < count.width; ++b) {
      const std::uint64_t sum = count.bits[b] ^ carry;
      carry &= count.bits[b];
      count.bits[b] = sum;
    }
  }
}

// Word of agents whose count equals k.
inline std::uint64_t eq_mask(const BitCount& count, std::uint32_t k) noexcept {
  std::uint64_t mask = ~std::uint64_t{0};
  for (unsigned b = 0; b < count.width; ++b) {
    mask &= ((k >> b) & 1) != 0 ? count.bits[b] : ~count.bits[b];
  }
  return mask;
}

// The adoption word for agents whose own bit is `own`: 1 where g = 1, the
// shared tie word where g = 1/2. One tie word serves every (own, k) class —
// each agent sits in exactly one, so the masks are disjoint per bit.
inline std::uint64_t decide(const BitCount& count, const CircuitTable& table,
                            unsigned own, std::uint64_t tie) noexcept {
  std::uint64_t acc = 0;
  for (const std::uint32_t k : table.ones_ks[own]) acc |= eq_mask(count, k);
  if (!table.half_ks[own].empty()) {
    std::uint64_t half = 0;
    for (const std::uint32_t k : table.half_ks[own]) half |= eq_mask(count, k);
    acc |= half & tie;
  }
  return acc;
}

// Without-replacement index stage: each updating agent a draws a Floyd
// l-subset from lane (a & 7), agents in ascending order, into index_scratch
// lane-major. Non-updating agents draw nothing (their slots are zeroed so
// backend gathers stay in bounds; the results are discarded by masking).
inline void fill_distinct_indices(const BlockArgs& a, LaneRng& lanes,
                                  std::uint64_t update) {
  std::uint32_t* idx = a.index_scratch;
  if (update != ~std::uint64_t{0}) {
    std::fill_n(idx, static_cast<std::size_t>(a.ell) * 64, 0u);
  }
  std::uint64_t sample[kMaxEll];
  for (unsigned agent = 0; agent < 64; ++agent) {
    if (((update >> agent) & 1) == 0) continue;
    LaneRng::LaneView view = lanes.lane_view(agent & 7);
    a.sampler->sample_batch(a.n, a.ell, view, sample);
    for (std::uint32_t j = 0; j < a.ell; ++j) {
      idx[j * 64 + agent] = static_cast<std::uint32_t>(sample[j]);
    }
  }
}

template <typename Filler>
void process_block_impl(const BlockArgs& a) {
  const telemetry::ScopedTimer draw_timer(telemetry::Phase::kSampleDraw);
  // Sub-phase attribution (gather/fault/decide/commit). Sink pointers are
  // resolved once per block; with no sink installed every enter() below is
  // a dead branch. Markers read clocks and counters only — they never touch
  // the lane or aux RNG streams, so profiled runs stay bit-identical.
  profile::KernelBlockProfiler prof;
  LaneRng lanes(a.lane_seed);
  Rng aux(lanes.aux_seed());
  Filler filler(lanes);
  const CircuitTable& table = *a.table;
  const FaultChannels* faults = a.faults;
  const double eps = faults != nullptr ? faults->observation_noise : 0.0;
  const double eta = faults != nullptr ? faults->spontaneous_rate : 0.0;
  const double delta = faults != nullptr ? faults->churn_rate : 0.0;

  std::uint64_t ones = 0;
  std::uint64_t churned = 0;
  std::uint64_t L[kMaxEll];
  const std::uint64_t word_end = a.first_word + a.word_count;
  for (std::uint64_t w = a.first_word; w < word_end; ++w) {
    const std::uint64_t base = w * 64;
    const std::uint64_t valid =
        a.n - base >= 64 ? ~std::uint64_t{0}
                         : (std::uint64_t{1} << (a.n - base)) - 1;
    std::uint64_t frozen = range_word(base, 0, a.sources);
    if (faults != nullptr) {
      frozen |= range_word(base, faults->zealot_begin, faults->zealot_end);
    }
    frozen &= valid;
    const std::uint64_t update = valid & ~frozen;
    if (update == 0) {
      // Fully frozen (or pure tail): carried over verbatim, no draws.
      a.next[w] = a.current[w];
      ones += static_cast<std::uint64_t>(std::popcount(a.current[w]));
      continue;
    }

    // 1. Sample: l lane words, bit a of L[j] = sample j of agent a.
    prof.enter(telemetry::Phase::kKernelGather);
    if (!a.without_replacement) {
      filler.fill_lanes(a, L);
    } else {
      fill_distinct_indices(a, lanes, update);
      filler.gather_pack(a, L);
    }

    // 2. Auxiliary stream, fixed channel order: noise masks, tie word,
    // spontaneous select/value, churn select.
    prof.enter(telemetry::Phase::kKernelFault);
    if (eps > 0.0) {
      for (std::uint32_t j = 0; j < a.ell; ++j) {
        L[j] ^= bernoulli_word(aux, *a.sampler, eps);
      }
    }
    const std::uint64_t tie = table.any_half ? aux() : 0;
    std::uint64_t spont_sel = 0;
    std::uint64_t spont_val = 0;
    std::uint64_t churn_sel = 0;
    if (eta > 0.0) {
      spont_sel = bernoulli_word(aux, *a.sampler, eta);
      spont_val = bernoulli_word(aux, *a.sampler, faults->spontaneous_bias);
    }
    if (delta > 0.0) churn_sel = bernoulli_word(aux, *a.sampler, delta);

    // 3. Count + decide, then the fault overrides in legacy order
    // (spontaneous replaces the protocol's output, churn replaces both).
    prof.enter(telemetry::Phase::kKernelDecide);
    BitCount count;
    count_lanes(L, a.ell, count);
    const std::uint64_t own = a.current[w];
    std::uint64_t value = decide(count, table, 0, tie);
    if (table.own_dependent) {
      value = (~own & value) | (own & decide(count, table, 1, tie));
    }
    if (eta > 0.0) value = (value & ~spont_sel) | (spont_val & spont_sel);
    if (delta > 0.0) {
      value = (value & ~churn_sel) | (faults->wrong_word & churn_sel);
      churned += static_cast<std::uint64_t>(std::popcount(churn_sel & update));
    }

    // 4. Commit: plane writeback + running popcount.
    prof.enter(telemetry::Phase::kKernelCommit);
    const std::uint64_t out = (value & update) | (own & frozen);
    a.next[w] = out;
    ones += static_cast<std::uint64_t>(std::popcount(out));
  }
  prof.leave();
  *a.out_ones = ones;
  if (a.out_churned != nullptr) *a.out_churned = churned;
}

}  // namespace detail
}  // namespace kernel
}  // namespace bitspread

#endif  // BITSPREAD_ENGINE_KERNEL_BACKEND_IMPL_H_
