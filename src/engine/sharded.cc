#include "engine/sharded.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

#include "engine/kernel/kernel.h"
#include "engine/run_loop.h"
#include "faults/session.h"
#include "random/lanes.h"
#include "sim/parallel.h"
#include "snapshot/state.h"
#include "telemetry/telemetry.h"

namespace bitspread {
namespace {

// Stream-phase tag separating this engine's derived seeds from every other
// consumer of the same SeedSequence.
constexpr std::uint64_t kStreamPhase = 0x73686172;  // "shar"
// Distinct phase for faulty rounds: a faulty run is a different experiment
// and must not alias the fault-free stream for the same (round, block).
constexpr std::uint64_t kFaultPhase = 0x6661756c;  // "faul"
// Bitslice-kernel phases (the "kernel/2" stream schedule, DESIGN.md §3.6):
// the kernel consumes randomness in a different per-block order than the
// per-agent loop, so it owns distinct phases — replaying a run always uses
// the schedule it was recorded under.
constexpr std::uint64_t kKernelPhase = 0x6b726e32;       // "krn2"
constexpr std::uint64_t kKernelFaultPhase = 0x6b726632;  // "krf2"

// Sets bits [begin, end) in a zeroed plane.
void set_bit_range(std::vector<std::uint64_t>& plane, std::uint64_t begin,
                   std::uint64_t end) noexcept {
  for (std::uint64_t i = begin; i < end && (i & 63) != 0; ++i) {
    plane[i >> 6] |= std::uint64_t{1} << (i & 63);
  }
  std::uint64_t i = begin + ((64 - (begin & 63)) & 63);
  for (; i + 64 <= end; i += 64) plane[i >> 6] = ~std::uint64_t{0};
  for (; i < end; ++i) plane[i >> 6] |= std::uint64_t{1} << (i & 63);
}

inline std::uint32_t probe_ones(const std::uint64_t* plane, std::uint64_t n,
                                std::uint32_t ell, Rng& rng) noexcept {
  std::uint32_t ones = 0;
  for (std::uint32_t s = 0; s < ell; ++s) {
    const std::uint64_t i = rng.next_below(n);
    ones += static_cast<std::uint32_t>((plane[i >> 6] >> (i & 63)) & 1);
  }
  return ones;
}

inline std::uint32_t probe_ones_distinct(const std::uint64_t* plane,
                                         std::uint64_t n, std::uint32_t ell,
                                         Rng& rng,
                                         FloydSampler& sampler) noexcept {
  std::uint32_t ones = 0;
  sampler.sample(n, ell, rng, [&](std::uint64_t i) noexcept {
    ones += static_cast<std::uint32_t>((plane[i >> 6] >> (i & 63)) & 1);
  });
  return ones;
}

// BSC variants: each probed bit flips with probability epsilon.
inline std::uint32_t probe_ones_noisy(const std::uint64_t* plane,
                                      std::uint64_t n, std::uint32_t ell,
                                      double epsilon, Rng& rng) noexcept {
  std::uint32_t ones = 0;
  for (std::uint32_t s = 0; s < ell; ++s) {
    const std::uint64_t i = rng.next_below(n);
    const auto bit = static_cast<std::uint32_t>((plane[i >> 6] >> (i & 63)) & 1);
    ones += rng.bernoulli(epsilon) ? bit ^ 1U : bit;
  }
  return ones;
}

inline std::uint32_t probe_ones_distinct_noisy(const std::uint64_t* plane,
                                               std::uint64_t n,
                                               std::uint32_t ell,
                                               double epsilon, Rng& rng,
                                               FloydSampler& sampler) noexcept {
  std::uint32_t ones = 0;
  sampler.sample(n, ell, rng, [&](std::uint64_t i) noexcept {
    const auto bit = static_cast<std::uint32_t>((plane[i >> 6] >> (i & 63)) & 1);
    ones += rng.bernoulli(epsilon) ? bit ^ 1U : bit;
  });
  return ones;
}

}  // namespace

namespace {

// Fault-free stepper: the per-(round, block) stream schedule lives entirely
// in ShardedAgentEngine::step — the driver only supplies the round index.
struct ShardedStepper {
  const ShardedAgentEngine& engine;
  ShardedAgentEngine::Population& population;
  const SeedSequence& seeds;
  Configuration state;
  std::uint64_t samples = 0;

  Configuration& config() noexcept { return state; }
  void step(std::uint64_t tick) {
    engine.step(population, tick, seeds);
    state = population.config();
    if constexpr (telemetry::kCompiledIn) {
      samples += (state.n - state.sources) * engine.sample_size(state.n);
    }
  }
  std::uint64_t samples_drawn() const noexcept { return samples; }

  // Snapshot hooks. Every stream is derived from (seed, round, block, phase)
  // — the only RNG cursor is the round the driver already stores — so the
  // captured state is the packed plane plus a master-seed fingerprint that
  // restore() refuses to resume across.
  static constexpr const char* kSnapshotTag = "sharded";
  void capture(snapshot::StepperState& out) const {
    out.seed_check = seeds.master();
    out.plane = population.plane_words();
    out.agent_states = population.memory_states();
    out.samples_drawn = samples;
  }
  bool restore(const snapshot::StepperState& saved) {
    if (saved.seed_check != seeds.master()) return false;
    if (!population.restore_plane(saved.plane, saved.agent_states)) {
      return false;
    }
    population.set_correct(state.correct);
    if (population.count_ones() != state.ones) return false;
    samples = saved.samples_drawn;
    state = population.config();
    return true;
  }
};

// Faulty stepper: fault randomness stays on the dedicated per-(round, block)
// fault streams inside the faulty step; the flip mirror reboots the packed
// source bits (and views, on the stateful path).
struct ShardedFaultyStepper {
  const ShardedAgentEngine& engine;
  ShardedAgentEngine::Population& population;
  const SeedSequence& seeds;
  FaultSession& session;
  const StatefulProtocol* stateful;
  Configuration state;
  std::uint64_t samples = 0;
  std::uint64_t churn_events = 0;

  Configuration& config() noexcept { return state; }
  void step(std::uint64_t tick) {
    engine.step(population, tick, seeds, session);
    if constexpr (telemetry::kCompiledIn) {
      churn_events += population.last_step_churned();
      samples += session.free_agents() * engine.sample_size(state.n);
    }
    state = population.config();
  }
  void sync_flip() {
    // Mirror the flip onto the packed planes: sources display the new
    // correct opinion; on the stateful path they also reboot their view.
    population.set_correct(state.correct);
    for (std::uint64_t i = 0; i < population.source_count(); ++i) {
      population.set_opinion(i, state.correct);
      if (stateful != nullptr) {
        population.set_state(i, stateful->initial_view(state.correct).state);
      }
    }
    assert(population.count_ones() == state.ones);
  }
  std::uint64_t samples_drawn() const noexcept { return samples; }
  std::uint64_t churned() const noexcept { return churn_events; }

  static constexpr const char* kSnapshotTag = "sharded.faulty";
  void capture(snapshot::StepperState& out) const {
    out.seed_check = seeds.master();
    out.plane = population.plane_words();
    out.agent_states = population.memory_states();
    out.samples_drawn = samples;
    out.churn_events = churn_events;
  }
  bool restore(const snapshot::StepperState& saved) {
    if (saved.seed_check != seeds.master()) return false;
    if (!population.restore_plane(saved.plane, saved.agent_states)) {
      return false;
    }
    population.set_correct(state.correct);
    if (population.count_ones() != state.ones) return false;
    samples = saved.samples_drawn;
    churn_events = saved.churn_events;
    state = population.config();
    return true;
  }
};

}  // namespace

ShardedAgentEngine::ShardedAgentEngine(const StatefulProtocol& protocol,
                                       Options options) noexcept
    : protocol_(&protocol), options_(options) {
  if (const auto* adapter =
          dynamic_cast<const MemorylessAsStateful*>(&protocol)) {
    memoryless_ = &adapter->base();
    protocol_ = nullptr;
  }
}

void ShardedAgentEngine::Population::set_opinion(std::uint64_t i,
                                                 Opinion opinion) noexcept {
  std::uint64_t& word = current_[i >> 6];
  const std::uint64_t mask = std::uint64_t{1} << (i & 63);
  const bool now = opinion == Opinion::kOne;
  if (((word & mask) != 0) == now) return;
  word ^= mask;
  ones_ += now ? 1 : std::uint64_t{0} - 1;
}

void ShardedAgentEngine::Population::set_state(std::uint64_t i,
                                               std::uint32_t state) {
  if (states_.empty()) states_.resize(n_, 0);
  states_[i] = state;
}

std::uint64_t ShardedAgentEngine::Population::last_step_churned()
    const noexcept {
  std::uint64_t churned = 0;
  for (const std::uint64_t c : block_churned_) churned += c;
  return churned;
}

bool ShardedAgentEngine::Population::restore_plane(
    const std::vector<std::uint64_t>& plane,
    const std::vector<std::uint32_t>& states) {
  if (plane.size() != current_.size()) return false;
  // Memory arrays must agree in kind: a stateful population cannot resume
  // from a memory-less snapshot or vice versa.
  if (states.empty() != states_.empty()) return false;
  if (!states.empty() && states.size() != n_) return false;
  // Padding bits at or above n_ must stay zero: the popcount below and the
  // bitslice kernels both rely on it.
  if ((n_ & 63) != 0 && !plane.empty() &&
      (plane.back() >> (n_ & 63)) != 0) {
    return false;
  }
  current_ = plane;
  states_ = states;
  ones_ = 0;
  for (const std::uint64_t word : current_) {
    ones_ += static_cast<std::uint64_t>(std::popcount(word));
  }
  return true;
}

ShardedAgentEngine::Population ShardedAgentEngine::make_population(
    const Configuration& config) const {
  assert(config.valid());
  Population population;
  population.n_ = config.n;
  population.sources_ = config.sources;
  population.correct_ = config.correct;
  population.ones_ = config.ones;
  const std::uint64_t words = (config.n + 63) / 64;
  population.current_.assign(words, 0);
  population.next_.assign(words, 0);
  // Layout identical to AgentParallelEngine: sources first, then non-source
  // ones, then non-source zeros — so the ones form one contiguous range.
  if (config.correct == Opinion::kOne) {
    set_bit_range(population.current_, 0, config.ones);
  } else {
    set_bit_range(population.current_, config.sources,
                  config.sources + config.ones);
  }
  if (protocol_ != nullptr) {
    population.states_.resize(config.n);
    for (std::uint64_t i = 0; i < config.n; ++i) {
      population.states_[i] =
          protocol_->initial_view(population.opinion(i)).state;
    }
  }
  return population;
}

void ShardedAgentEngine::process_block(Population& population,
                                       std::uint64_t block, std::uint32_t ell,
                                       Rng& rng,
                                       FloydSampler& sampler) const {
  const telemetry::ScopedTimer draw_timer(telemetry::Phase::kSampleDraw);
  const std::uint64_t n = population.n_;
  const std::uint64_t sources = population.sources_;
  const std::uint64_t words = population.current_.size();
  const std::uint64_t* current = population.current_.data();
  std::uint64_t* next = population.next_.data();
  const bool distinct = options_.sampling == Sampling::kWithoutReplacement;
  const double* gtable = memoryless_ != nullptr ? population.gtable_.data()
                                                : nullptr;

  const std::uint64_t word_begin = block * kBlockWords;
  const std::uint64_t word_end = std::min(words, word_begin + kBlockWords);
  std::uint64_t block_ones = 0;
  for (std::uint64_t w = word_begin; w < word_end; ++w) {
    const std::uint64_t base = w * 64;
    if (base + 64 <= sources) {
      // A whole word of sources: carried over verbatim.
      next[w] = current[w];
      block_ones += static_cast<std::uint64_t>(std::popcount(current[w]));
      continue;
    }
    const unsigned bits =
        n - base < 64 ? static_cast<unsigned>(n - base) : 64u;
    std::uint64_t out = 0;
    for (unsigned bit = 0; bit < bits; ++bit) {
      const std::uint64_t i = base + bit;
      const std::uint64_t own = (current[w] >> bit) & 1;
      std::uint64_t value;
      if (i < sources) {
        value = own;  // Sources never update.
      } else {
        const std::uint32_t ones_seen =
            distinct ? probe_ones_distinct(current, n, ell, rng, sampler)
                     : probe_ones(current, n, ell, rng);
        if (gtable != nullptr) {
          value = rng.bernoulli(gtable[own * (ell + 1) + ones_seen]) ? 1 : 0;
        } else {
          StatefulProtocol::AgentView view{
              own != 0 ? Opinion::kOne : Opinion::kZero,
              population.states_[i]};
          view = protocol_->update(view, ones_seen, ell, n, rng);
          population.states_[i] = view.state;
          value = to_int(view.opinion);
        }
      }
      out |= value << bit;
    }
    next[w] = out;
    block_ones += static_cast<std::uint64_t>(std::popcount(out));
  }
  population.block_ones_[block] = block_ones;
}

void ShardedAgentEngine::process_block_faulty(Population& population,
                                              std::uint64_t block,
                                              std::uint32_t ell,
                                              const FaultSession& session,
                                              Rng& rng,
                                              FloydSampler& sampler) const {
  const telemetry::ScopedTimer draw_timer(telemetry::Phase::kSampleDraw);
  const EnvironmentModel& model = session.model();
  const double epsilon = model.observation_noise;
  const double eta = model.spontaneous_rate;
  const double delta = model.churn_rate;
  const Opinion wrong = opposite(population.correct_);
  const auto wrong_bit = static_cast<std::uint64_t>(to_int(wrong));

  const std::uint64_t n = population.n_;
  const std::uint64_t sources = population.sources_;
  const std::uint64_t words = population.current_.size();
  const std::uint64_t* current = population.current_.data();
  std::uint64_t* next = population.next_.data();
  const bool distinct = options_.sampling == Sampling::kWithoutReplacement;
  const double* gtable =
      memoryless_ != nullptr ? population.gtable_.data() : nullptr;

  const std::uint64_t word_begin = block * kBlockWords;
  const std::uint64_t word_end = std::min(words, word_begin + kBlockWords);
  std::uint64_t block_ones = 0;
  std::uint64_t block_churned = 0;
  for (std::uint64_t w = word_begin; w < word_end; ++w) {
    const std::uint64_t base = w * 64;
    const unsigned bits =
        n - base < 64 ? static_cast<unsigned>(n - base) : 64u;
    std::uint64_t out = 0;
    for (unsigned bit = 0; bit < bits; ++bit) {
      const std::uint64_t i = base + bit;
      const std::uint64_t own = (current[w] >> bit) & 1;
      std::uint64_t value;
      if (i < sources || session.is_zealot(i)) {
        value = own;  // Sources and zealots never update (and draw nothing).
      } else {
        const std::uint32_t ones_seen =
            epsilon > 0.0
                ? (distinct ? probe_ones_distinct_noisy(current, n, ell,
                                                        epsilon, rng, sampler)
                            : probe_ones_noisy(current, n, ell, epsilon, rng))
                : (distinct ? probe_ones_distinct(current, n, ell, rng,
                                                  sampler)
                            : probe_ones(current, n, ell, rng));
        if (gtable != nullptr) {
          // The spontaneous channel is already folded into the table.
          value = rng.bernoulli(gtable[own * (ell + 1) + ones_seen]) ? 1 : 0;
        } else {
          StatefulProtocol::AgentView view{
              own != 0 ? Opinion::kOne : Opinion::kZero,
              population.states_[i]};
          view = protocol_->update(view, ones_seen, ell, n, rng);
          if (eta > 0.0 && rng.bernoulli(eta)) {
            view.opinion = rng.bernoulli(model.spontaneous_bias)
                               ? Opinion::kOne
                               : Opinion::kZero;
          }
          population.states_[i] = view.state;
          value = to_int(view.opinion);
        }
        if (delta > 0.0 && rng.bernoulli(delta)) {
          // Crash + adversarial replacement: the newcomer holds (and, on the
          // stateful path, boots in the initial view for) the wrong opinion.
          value = wrong_bit;
          if (protocol_ != nullptr) {
            population.states_[i] = protocol_->initial_view(wrong).state;
          }
          if constexpr (telemetry::kCompiledIn) ++block_churned;
        }
      }
      out |= value << bit;
    }
    next[w] = out;
    block_ones += static_cast<std::uint64_t>(std::popcount(out));
  }
  population.block_ones_[block] = block_ones;
  if constexpr (telemetry::kCompiledIn) {
    population.block_churned_[block] = block_churned;
  } else {
    (void)block_churned;
  }
}

void ShardedAgentEngine::build_gtable(Population& population,
                                      std::uint32_t ell) const {
  if (memoryless_ == nullptr) return;
  // Tabulate g_n^[b](k): the entire behavioral freedom of a memory-less
  // protocol, so neither hot loop needs virtual dispatch.
  population.gtable_.resize(2 * (static_cast<std::size_t>(ell) + 1));
  for (std::uint32_t own = 0; own < 2; ++own) {
    const Opinion opinion = own != 0 ? Opinion::kOne : Opinion::kZero;
    for (std::uint32_t k = 0; k <= ell; ++k) {
      population.gtable_[own * (ell + 1) + k] =
          memoryless_->g(opinion, k, ell, population.n_);
    }
  }
}

bool ShardedAgentEngine::prepare_kernel(Population& population,
                                        std::uint32_t ell,
                                        const FaultSession* session,
                                        KernelRound& plan) const {
  if (memoryless_ == nullptr) return false;
  const std::uint64_t n = population.n_;
  if (n == 0 || n > kernel::kMaxAgents) return false;
  if (ell == 0 || ell > kernel::kMaxEll) return false;
  if (options_.sampling == Sampling::kWithoutReplacement && ell > n) {
    return false;
  }
  const kernel::Backend backend = kernel::resolve(options_.kernel);
  plan.fn = kernel::block_fn(backend);
  if (plan.fn == nullptr) return false;
  if (!population.circuit_.classify(population.gtable_.data(), ell)) {
    return false;  // Fractional g (e.g. voter at l > 1): legacy loop.
  }
  plan.backend = backend;
  plan.threshold = lemire32_threshold(n);
  plan.faulty = session != nullptr;
  if (session != nullptr) {
    const EnvironmentModel& model = session->model();
    plan.faults.observation_noise = model.observation_noise;
    plan.faults.spontaneous_rate = model.spontaneous_rate;
    plan.faults.spontaneous_bias = model.spontaneous_bias;
    plan.faults.churn_rate = model.churn_rate;
    plan.faults.zealot_begin = session->zealot_begin();
    plan.faults.zealot_end = session->zealot_end();
    plan.faults.wrong_word = opposite(population.correct_) == Opinion::kOne
                                 ? ~std::uint64_t{0}
                                 : 0;
  }
  return true;
}

kernel::Backend ShardedAgentEngine::step_backend(
    Population& population, const FaultSession* session) const {
  const std::uint32_t ell = sample_size(population.n_);
  build_gtable(population, ell);
  KernelRound plan;
  return prepare_kernel(population, ell, session, plan)
             ? plan.backend
             : kernel::Backend::kLegacy;
}

void ShardedAgentEngine::process_block_kernel(
    Population& population, std::uint64_t block, std::uint32_t ell,
    const KernelRound& plan, std::uint64_t lane_seed, FloydSampler& sampler,
    std::uint32_t* index_scratch) const {
  const std::uint64_t words = population.current_.size();
  kernel::BlockArgs args;
  args.current = population.current_.data();
  args.next = population.next_.data();
  args.n = population.n_;
  args.sources = population.sources_;
  args.ell = ell;
  args.index_threshold = plan.threshold;
  args.first_word = block * kBlockWords;
  args.word_count = std::min(words - args.first_word, kBlockWords);
  args.lane_seed = lane_seed;
  args.table = &population.circuit_;
  args.faults = plan.faulty ? &plan.faults : nullptr;
  args.without_replacement =
      options_.sampling == Sampling::kWithoutReplacement;
  args.sampler = &sampler;
  args.index_scratch = index_scratch;
  args.out_ones = &population.block_ones_[block];
  args.out_churned = nullptr;
  if constexpr (telemetry::kCompiledIn) {
    if (plan.faulty) args.out_churned = &population.block_churned_[block];
  }
  plan.fn(args);
}

void ShardedAgentEngine::step(Population& population, std::uint64_t round,
                              const SeedSequence& seeds) const {
  const std::uint64_t n = population.n_;
  const std::uint32_t ell = sample_size(n);
  const std::uint64_t words = population.current_.size();
  const std::uint64_t blocks = (words + kBlockWords - 1) / kBlockWords;

  build_gtable(population, ell);
  KernelRound plan;
  const bool use_kernel = prepare_kernel(population, ell, nullptr, plan);
  population.block_ones_.resize(blocks);

  std::uint64_t chunks =
      options_.shards == 0 ? blocks
                           : std::min<std::uint64_t>(options_.shards, blocks);
  chunks = std::max<std::uint64_t>(chunks, 1);
  population.samplers_.resize(chunks);
  const bool distinct = options_.sampling == Sampling::kWithoutReplacement;
  if (use_kernel && distinct) {
    population.kernel_index_.resize(chunks * static_cast<std::size_t>(ell) *
                                    64);
  }

  struct RoundContext {
    const ShardedAgentEngine* engine;
    Population* population;
    const SeedSequence* seeds;
    const KernelRound* kernel;  // Null: the per-agent legacy loop runs.
    std::uint64_t round;
    std::uint64_t blocks;
    std::uint64_t chunks;
    std::uint32_t ell;
  };
  RoundContext context{this,   &population, &seeds, use_kernel ? &plan
                                                               : nullptr,
                       round,  blocks,      chunks, ell};
  // One capture pointer keeps the closure inside std::function's inline
  // storage: steady-state rounds allocate nothing.
  const std::function<void(int)> chunk_fn = [&context](int chunk) {
    const std::uint64_t begin =
        context.blocks * static_cast<std::uint64_t>(chunk) / context.chunks;
    const std::uint64_t end =
        context.blocks * (static_cast<std::uint64_t>(chunk) + 1) /
        context.chunks;
    FloydSampler& sampler =
        context.population->samplers_[static_cast<std::size_t>(chunk)];
    if (context.kernel != nullptr) {
      std::uint32_t* index_scratch =
          context.population->kernel_index_.empty()
              ? nullptr
              : context.population->kernel_index_.data() +
                    static_cast<std::size_t>(chunk) * context.ell * 64;
      for (std::uint64_t block = begin; block < end; ++block) {
        context.engine->process_block_kernel(
            *context.population, block, context.ell, *context.kernel,
            context.seeds->derive(context.round, block, kKernelPhase),
            sampler, index_scratch);
      }
      return;
    }
    for (std::uint64_t block = begin; block < end; ++block) {
      Rng rng(context.seeds->derive(context.round, block, kStreamPhase));
      context.engine->process_block(*context.population, block, context.ell,
                                    rng, sampler);
    }
  };
  WorkerPool::shared().run(static_cast<int>(chunks), chunk_fn,
                           options_.threads);

  std::swap(population.current_, population.next_);
  std::uint64_t ones = 0;
  for (const std::uint64_t block_count : population.block_ones_) {
    ones += block_count;
  }
  population.ones_ = ones;
}

void ShardedAgentEngine::step(Population& population, std::uint64_t round,
                              const SeedSequence& seeds,
                              const FaultSession& session) const {
  const EnvironmentModel& model = session.model();
  const std::uint64_t n = population.n_;
  const std::uint32_t ell = sample_size(n);
  const std::uint64_t words = population.current_.size();
  const std::uint64_t blocks = (words + kBlockWords - 1) / kBlockWords;

  build_gtable(population, ell);
  KernelRound plan;
  const bool use_kernel = prepare_kernel(population, ell, &session, plan);
  if (memoryless_ != nullptr && !use_kernel) {
    // Legacy fallback tabulates the faulty adoption probability: the
    // spontaneous channel folds straight into the table,
    // (1 - eta) g + eta * bias, so the hot loop still costs one lookup +
    // one draw. Observation noise does NOT fold here — it is applied
    // operationally, bit by bit, in the probes. (The kernel realizes the
    // same fold operationally through its select masks, so it keeps the
    // base table.)
    const double eta = model.spontaneous_rate;
    for (std::uint32_t own = 0; own < 2; ++own) {
      for (std::uint32_t k = 0; k <= ell; ++k) {
        double& g = population.gtable_[own * (ell + 1) + k];
        g = (1.0 - eta) * g + eta * model.spontaneous_bias;
      }
    }
  }
  population.block_ones_.resize(blocks);
  if constexpr (telemetry::kCompiledIn) {
    population.block_churned_.assign(blocks, 0);
  }

  std::uint64_t chunks =
      options_.shards == 0 ? blocks
                           : std::min<std::uint64_t>(options_.shards, blocks);
  chunks = std::max<std::uint64_t>(chunks, 1);
  population.samplers_.resize(chunks);
  const bool distinct = options_.sampling == Sampling::kWithoutReplacement;
  if (use_kernel && distinct) {
    population.kernel_index_.resize(chunks * static_cast<std::size_t>(ell) *
                                    64);
  }

  struct FaultyRoundContext {
    const ShardedAgentEngine* engine;
    Population* population;
    const SeedSequence* seeds;
    const FaultSession* session;
    const KernelRound* kernel;  // Null: the per-agent legacy loop runs.
    std::uint64_t round;
    std::uint64_t blocks;
    std::uint64_t chunks;
    std::uint32_t ell;
  };
  FaultyRoundContext context{this,  &population, &seeds,
                             &session, use_kernel ? &plan : nullptr,
                             round, blocks,      chunks, ell};
  const std::function<void(int)> chunk_fn = [&context](int chunk) {
    const std::uint64_t begin =
        context.blocks * static_cast<std::uint64_t>(chunk) / context.chunks;
    const std::uint64_t end =
        context.blocks * (static_cast<std::uint64_t>(chunk) + 1) /
        context.chunks;
    FloydSampler& sampler =
        context.population->samplers_[static_cast<std::size_t>(chunk)];
    if (context.kernel != nullptr) {
      std::uint32_t* index_scratch =
          context.population->kernel_index_.empty()
              ? nullptr
              : context.population->kernel_index_.data() +
                    static_cast<std::size_t>(chunk) * context.ell * 64;
      for (std::uint64_t block = begin; block < end; ++block) {
        context.engine->process_block_kernel(
            *context.population, block, context.ell, *context.kernel,
            context.seeds->derive(context.round, block, kKernelFaultPhase),
            sampler, index_scratch);
      }
      return;
    }
    for (std::uint64_t block = begin; block < end; ++block) {
      Rng rng(context.seeds->derive(context.round, block, kFaultPhase));
      context.engine->process_block_faulty(*context.population, block,
                                           context.ell, *context.session, rng,
                                           sampler);
    }
  };
  WorkerPool::shared().run(static_cast<int>(chunks), chunk_fn,
                           options_.threads);

  std::swap(population.current_, population.next_);
  std::uint64_t ones = 0;
  for (const std::uint64_t block_count : population.block_ones_) {
    ones += block_count;
  }
  population.ones_ = ones;
}

RunResult ShardedAgentEngine::run(const Configuration& config,
                                  const StopRule& rule, std::uint64_t seed,
                                  Trajectory* trajectory) const {
  Population population = make_population(config);
  return run_population(population, rule, seed, trajectory);
}

RunResult ShardedAgentEngine::run(const Configuration& config,
                                  const StopRule& rule,
                                  const EnvironmentModel& faults,
                                  std::uint64_t seed,
                                  Trajectory* trajectory) const {
  assert(config.valid());
  FaultSession session(faults, config);
  Population population = make_population(session.plant(config));
  const SeedSequence seeds(seed);
  ShardedFaultyStepper stepper{*this,   population, seeds,
                               session, protocol_,  population.config()};
  return RunDriver(TimePolicy::parallel())
      .run(stepper, rule, session, trajectory);
}

RunResult ShardedAgentEngine::run_population(Population& population,
                                             const StopRule& rule,
                                             std::uint64_t seed,
                                             Trajectory* trajectory) const {
  const SeedSequence seeds(seed);
  ShardedStepper stepper{*this, population, seeds, population.config()};
  return RunDriver(TimePolicy::parallel()).run(stepper, rule, trajectory);
}

}  // namespace bitspread
