// The run-loop core: one driver for stopping, faults, telemetry, and tracing.
//
// Every engine used to hand-roll the same loop — evaluate the stop rule, cap
// at max_rounds, apply scheduled source flips, churn at round boundaries,
// record the trajectory and the flight-recorder round stream, time the
// phases, and classify censored/degraded endings. Eight copies drifted in
// what they supported (the alpha-synchronous, conflicting-sources, multi-
// opinion, and population engines had no faults and no telemetry at all).
// This header is the single copy: engines shrink to *steppers* and the
// RunDriver owns everything cross-cutting.
//
// A stepper is any type providing
//
//   Configuration& config();        // driver-visible state, kept current
//   void step(std::uint64_t tick);  // advance one tick of native time
//
// plus optional hooks the driver detects at compile time:
//
//   void sync_flip();               // mirror an applied source flip onto
//                                   // explicit population state
//   void end_round(std::uint64_t round);
//                                   // per-parallel-round fault work (churn)
//                                   // before the session observes the round
//   std::optional<StopReason> evaluate(const StopRule&) const;
//                                   // replace the default stop evaluation
//                                   // (multi-opinion consensus, watch runs)
//   std::uint64_t samples_drawn() const;  // telemetry: total observation
//                                         // samples (counted by the stepper,
//                                         // it knows its sampling law)
//   std::uint64_t churned() const;  // telemetry: churn events counted by
//                                   // the stepper (otherwise the session's
//                                   // counts-level tally is used)
//
// The driver NEVER draws randomness: steppers own their Rng or SeedSequence,
// so the per-(round, block) stream schedule of the sharded engine — and with
// it bit-identical thread/shard invariance — survives unchanged, and the
// telemetry probes (which never touch an RNG) stay outside the simulation
// payload.
//
// Time units. The TimePolicy maps the engine's native tick onto parallel
// rounds: StopRule::max_rounds is always in parallel rounds, flips and churn
// land on parallel-round boundaries, and trajectory/round-stream points are
// per parallel round — so rules and recordings are interchangeable across
// engines. `units_per_tick` scales ticks into the result's TimeUnit (the
// population engine steps one round of n interactions per tick but reports
// activations).
#ifndef BITSPREAD_ENGINE_RUN_LOOP_H_
#define BITSPREAD_ENGINE_RUN_LOOP_H_

#include <concepts>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/configuration.h"
#include "engine/stopping.h"
#include "engine/trajectory.h"
#include "faults/session.h"
#include "profile/counters.h"
#include "snapshot/checkpoint.h"
#include "telemetry/telemetry.h"

namespace bitspread {

namespace internal {

// Steppers opt into checkpoint/restore by providing
//
//   static constexpr const char* kSnapshotTag;   // engine identity
//   void capture(snapshot::StepperState&) const; // serialize evolved state
//   bool restore(const snapshot::StepperState&); // rebuild it (false =
//                                                // inconsistent snapshot)
//
// Detection mirrors the other optional hooks: a stepper without them runs
// un-checkpointed and the driver never touches the checkpointer for it.
template <typename Stepper>
inline constexpr bool kCheckpointable =
    requires(const Stepper& frozen, Stepper& live,
             snapshot::StepperState& state) {
      { Stepper::kSnapshotTag } -> std::convertible_to<const char*>;
      frozen.capture(state);
      { live.restore(state) } -> std::convertible_to<bool>;
    };

}  // namespace internal

// How an engine's native tick relates to parallel rounds and to the time
// unit its RunResult reports.
struct TimePolicy {
  TimeUnit unit = TimeUnit::kParallelRounds;
  // Ticks per parallel round: boundaries (flips, churn, recording) land at
  // tick % ticks_per_round == 0, and the cap is max_rounds * ticks_per_round.
  std::uint64_t ticks_per_round = 1;
  // RunResult::ticks = elapsed driver ticks * units_per_tick.
  std::uint64_t units_per_tick = 1;
  // Activation probability, forwarded to RunResult (kAlphaRounds only).
  double alpha = 1.0;

  // One tick = one synchronous parallel round.
  static TimePolicy parallel() noexcept;
  // One tick = one activation; n ticks = one parallel round.
  static TimePolicy activations(std::uint64_t n) noexcept;
  // One tick = one scheduler round of n interactions, reported in
  // activations.
  static TimePolicy interaction_rounds(std::uint64_t n) noexcept;
  // One tick = one alpha-synchronous round (alpha parallel rounds).
  static TimePolicy alpha_rounds(double alpha) noexcept;

  std::string describe() const;
};

// The shared run loop. Stateless apart from its policy: one driver value can
// serve any number of runs.
class RunDriver {
 public:
  explicit RunDriver(const TimePolicy& policy) noexcept : policy_(policy) {}

  const TimePolicy& policy() const noexcept { return policy_; }

  // Fault-free run: default (or stepper-provided) stop evaluation, no
  // FaultSession lifecycle.
  template <typename Stepper>
  RunResult run(Stepper& stepper, const StopRule& rule,
                Trajectory* trajectory = nullptr) const {
    return drive(stepper, rule, nullptr, trajectory);
  }

  // Faulty run: the driver owns the FaultSession lifecycle — source flips on
  // round boundaries (mirrored into the stepper via sync_flip), per-round
  // observation closing RecoverySegments, fault-aware stop evaluation, and
  // degraded classification at the cap. The session must be constructed on
  // the stepper's planted initial configuration.
  template <typename Stepper>
  RunResult run(Stepper& stepper, const StopRule& rule, FaultSession& session,
                Trajectory* trajectory = nullptr) const {
    return drive(stepper, rule, &session, trajectory);
  }

 private:
  // Assembles the full RunSnapshot at a parallel-round boundary. Capture
  // never mutates run state — a run with checkpointing enabled produces the
  // same payload as one without (the golden digests pin this).
  template <typename Stepper>
  static snapshot::RunSnapshot make_snapshot(Stepper& stepper,
                                             const FaultSession* session,
                                             const Trajectory* trajectory,
                                             std::uint64_t run_ordinal,
                                             std::uint64_t tick,
                                             std::uint64_t tpr) {
    snapshot::RunSnapshot snap;
    snap.engine_tag = Stepper::kSnapshotTag;
    snap.run_ordinal = run_ordinal;
    snap.tick = tick;
    snap.round = tick / tpr;
    snap.config = stepper.config();
    stepper.capture(snap.stepper);
    if (session != nullptr) {
      snap.has_faults = true;
      snap.faults.next_flip = session->next_flip();
      snap.faults.churned = session->churned();
      snap.faults.recoveries = session->recoveries();
    }
    if (trajectory != nullptr) {
      snap.has_trajectory = true;
      snap.trajectory.assign(trajectory->points().begin(),
                             trajectory->points().end());
    }
    return snap;
  }

  template <typename Stepper>
  RunResult drive(Stepper& stepper, const StopRule& rule,
                  FaultSession* session, Trajectory* trajectory) const {
    RunResult result;
    result.unit = policy_.unit;
    result.alpha = policy_.alpha;
    std::uint64_t start_ns = 0;
    if constexpr (telemetry::kCompiledIn) {
      start_ns = telemetry::clock_now_ns();
    }
    const std::uint64_t tpr =
        policy_.ticks_per_round == 0 ? 1 : policy_.ticks_per_round;
    const std::uint64_t max_ticks = rule.max_rounds * tpr;

    // Checkpoint/resume engages only for checkpointable steppers with an
    // installed checkpointer; everything else compiles the plain loop.
    [[maybe_unused]] snapshot::Checkpointer* checkpointer = nullptr;
    [[maybe_unused]] std::uint64_t run_ordinal = 0;
    std::uint64_t tick = 0;
    bool resumed = false;
    if constexpr (internal::kCheckpointable<Stepper>) {
      checkpointer = snapshot::active_checkpointer();
      if (checkpointer != nullptr) {
        run_ordinal = checkpointer->claim_run();
        if (const snapshot::RunSnapshot* snap =
                checkpointer->take_resume(run_ordinal, Stepper::kSnapshotTag)) {
          const Configuration before = stepper.config();
          stepper.config() = snap->config;
          if (stepper.restore(snap->stepper)) {
            tick = snap->tick;
            resumed = true;
            if (session != nullptr && snap->has_faults) {
              session->restore_progress(
                  static_cast<std::size_t>(snap->faults.next_flip),
                  snap->faults.churned, snap->faults.recoveries);
            }
            if (trajectory != nullptr && snap->has_trajectory) {
              trajectory->restore(snap->trajectory);
            }
          } else {
            // An internally inconsistent snapshot (wrong seed, wrong shape):
            // fall back to a fresh run rather than diverging silently.
            stepper.config() = before;
          }
        }
      }
    }

    if (!resumed) {
      const Configuration& config = stepper.config();
      if (trajectory != nullptr) trajectory->record(0, config.ones);
      telemetry::record_round(0, config.ones, config.n);
      if (session != nullptr) session->observe(0, config);
    }

    // Resolved once per run: sink installation must not race a running
    // engine (the install_pmu_sink contract), and the tightest tick loops
    // (aggregate rounds are ~250 ns) construct four PmuScopes per tick —
    // per-scope atomic loads would be measurable there.
    profile::PmuPhaseStats* const pmu_stats = profile::pmu_sink();

    while (true) {
      // Graceful interrupt: only at a parallel-round boundary, and BEFORE
      // the flip check — a flip scheduled for this round is not yet applied,
      // so the resumed process replays it identically. Breaking here (for
      // every stepper, checkpointable or not) lets the caller's recorder and
      // stream scopes unwind and flush instead of dying mid-run.
      if (tick % tpr == 0 && snapshot::interrupt_requested()) {
        if constexpr (internal::kCheckpointable<Stepper>) {
          if (checkpointer != nullptr) {
            checkpointer->write(make_snapshot(stepper, session, trajectory,
                                              run_ordinal, tick, tpr));
          }
        }
        result.reason = StopReason::kInterrupted;
        break;
      }
      // Source flips land on entry to a parallel round.
      if (session != nullptr && tick % tpr == 0 &&
          session->flip_due(tick / tpr)) {
        const telemetry::ScopedTimer timer(telemetry::Phase::kFaultApply);
        const profile::PmuScope pmu(telemetry::Phase::kFaultApply, pmu_stats);
        session->apply_flip(tick / tpr, stepper.config());
        if constexpr (requires { stepper.sync_flip(); }) {
          stepper.sync_flip();
        }
      }
      {
        const telemetry::ScopedTimer timer(telemetry::Phase::kStopCheck);
        const profile::PmuScope pmu(telemetry::Phase::kStopCheck, pmu_stats);
        std::optional<StopReason> reason;
        if constexpr (requires { stepper.evaluate(rule); }) {
          reason = stepper.evaluate(rule);
        } else {
          reason = session != nullptr
                       ? session->evaluate(rule, stepper.config())
                       : evaluate_stop(rule, stepper.config());
        }
        if (reason) {
          result.reason = *reason;
          break;
        }
      }
      if (tick >= max_ticks) {
        result.reason = session != nullptr ? session->censored_reason()
                                           : StopReason::kRoundLimit;
        break;
      }
      {
        // The PMU scope counts the driver thread: exact for single-threaded
        // steppers; under pool fan-out the workers' kernel sub-phase probes
        // carry the worker-side attribution.
        const telemetry::ScopedTimer timer(telemetry::Phase::kRoundStep);
        const profile::PmuScope pmu(telemetry::Phase::kRoundStep, pmu_stats);
        stepper.step(tick);
      }
      ++tick;
      if (tick % tpr == 0) {
        const std::uint64_t round = tick / tpr;
        if (session != nullptr) {
          const telemetry::ScopedTimer timer(telemetry::Phase::kFaultApply);
          const profile::PmuScope pmu(telemetry::Phase::kFaultApply, pmu_stats);
          if constexpr (requires { stepper.end_round(round); }) {
            stepper.end_round(round);
          }
          session->observe(round, stepper.config());
        } else if constexpr (requires { stepper.end_round(round); }) {
          stepper.end_round(round);
        }
        const Configuration& config = stepper.config();
        if (trajectory != nullptr) trajectory->record(round, config.ones);
        telemetry::record_round(round, config.ones, config.n);
        // Periodic checkpoint, after the round is fully recorded so the
        // snapshot's trajectory and stream offsets include it.
        if constexpr (internal::kCheckpointable<Stepper>) {
          if (checkpointer != nullptr && checkpointer->due(round)) {
            checkpointer->write(make_snapshot(stepper, session, trajectory,
                                              run_ordinal, tick, tpr));
          }
        }
      }
    }

    const Configuration& config = stepper.config();
    if (trajectory != nullptr) {
      trajectory->force_record((tick + tpr - 1) / tpr, config.ones);
    }
    result.ticks = tick * policy_.units_per_tick;
    result.final_config = config;
    if (session != nullptr) result.recoveries = session->take_recoveries();
    if constexpr (telemetry::kCompiledIn) {
      result.telemetry.recorded = true;
      result.telemetry.wall_seconds =
          static_cast<double>(telemetry::clock_now_ns() - start_ns) * 1e-9;
      result.telemetry.rounds = tick / tpr;
      if constexpr (requires { stepper.samples_drawn(); }) {
        result.telemetry.samples_drawn = stepper.samples_drawn();
      }
      if (session != nullptr) {
        result.telemetry.fault_flips = session->flips_applied();
        result.telemetry.fault_zealots = session->zealots();
        if constexpr (requires { stepper.churned(); }) {
          result.telemetry.fault_churned = stepper.churned();
        } else {
          result.telemetry.fault_churned = session->churned();
        }
        fold_recovery_telemetry(result.telemetry, result.recoveries);
      }
    }
    return result;
  }

  TimePolicy policy_;
};

}  // namespace bitspread

#endif  // BITSPREAD_ENGINE_RUN_LOOP_H_
