#include "engine/trajectory.h"

#include <algorithm>

namespace bitspread {

std::uint64_t Trajectory::max_one_step_jump() const noexcept {
  std::uint64_t worst = 0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].round != points_[i - 1].round + 1) continue;
    const std::uint64_t a = points_[i - 1].ones;
    const std::uint64_t b = points_[i].ones;
    worst = std::max(worst, a > b ? a - b : b - a);
  }
  return worst;
}

}  // namespace bitspread
