#include "engine/alpha_sync.h"

#include <algorithm>
#include <cassert>

#include "engine/run_loop.h"
#include "faults/noisy_protocol.h"
#include "faults/session.h"
#include "random/binomial.h"
#include "telemetry/telemetry.h"

namespace bitspread {
namespace {

// Fault-free stepper. The round arithmetic mirrors
// AlphaSynchronousEngine::step draw-for-draw; it is inlined here so the
// stepper can count the activated agents (only they draw samples).
struct AlphaStepper {
  const AlphaSynchronousEngine& engine;
  Rng& rng;
  Configuration state;
  std::uint64_t samples = 0;

  Configuration& config() noexcept { return state; }
  void step(std::uint64_t /*tick*/) {
    const MemorylessProtocol& protocol = engine.protocol();
    const double p = state.fraction_ones();
    const double p1 = protocol.aggregate_adoption(Opinion::kOne, p, state.n);
    const double p0 = protocol.aggregate_adoption(Opinion::kZero, p, state.n);
    const telemetry::ScopedTimer draw_timer(telemetry::Phase::kSampleDraw);
    const std::uint64_t active_ones =
        binomial(rng, state.non_source_ones(), engine.alpha());
    const std::uint64_t active_zeros =
        binomial(rng, state.non_source_zeros(), engine.alpha());
    const std::uint64_t stay_ones = state.non_source_ones() - active_ones;
    state.ones = state.source_ones() + stay_ones +
                 binomial(rng, active_ones, p1) +
                 binomial(rng, active_zeros, p0);
    if constexpr (telemetry::kCompiledIn) {
      samples += (active_ones + active_zeros) *
                 protocol.sample_size(state.n);
    }
  }
  std::uint64_t samples_drawn() const noexcept { return samples; }
};

// Faulty stepper: the activated free agents adopt with the closed-form
// noisy probabilities; zealots never activate; churn at round boundaries.
struct AlphaFaultyStepper {
  const AlphaSynchronousEngine& engine;
  const NoisyObservationProtocol& noisy;
  FaultSession& session;
  Rng& rng;
  Configuration state;
  std::uint32_t ell = 0;
  std::uint64_t samples = 0;

  Configuration& config() noexcept { return state; }
  void step(std::uint64_t /*tick*/) {
    const double p = state.fraction_ones();
    const double p1 = noisy.aggregate_adoption(Opinion::kOne, p, state.n);
    const double p0 = noisy.aggregate_adoption(Opinion::kZero, p, state.n);
    const telemetry::ScopedTimer draw_timer(telemetry::Phase::kSampleDraw);
    const std::uint64_t free_ones = session.free_ones(state);
    const std::uint64_t free_zeros = session.free_zeros(state);
    const std::uint64_t active_ones = binomial(rng, free_ones, engine.alpha());
    const std::uint64_t active_zeros =
        binomial(rng, free_zeros, engine.alpha());
    const std::uint64_t stay_ones = free_ones - active_ones;
    state.ones = state.source_ones() + session.zealot_ones() + stay_ones +
                 binomial(rng, active_ones, p1) +
                 binomial(rng, active_zeros, p0);
    if constexpr (telemetry::kCompiledIn) {
      samples += (active_ones + active_zeros) * ell;
    }
  }
  void end_round(std::uint64_t /*round*/) {
    state = session.churn(state, rng);
  }
  std::uint64_t samples_drawn() const noexcept { return samples; }
};

}  // namespace

AlphaSynchronousEngine::AlphaSynchronousEngine(
    const MemorylessProtocol& protocol, double alpha) noexcept
    : protocol_(&protocol), alpha_(std::clamp(alpha, 0.0, 1.0)) {
  assert(alpha > 0.0 && alpha <= 1.0);
}

Configuration AlphaSynchronousEngine::step(const Configuration& config,
                                           Rng& rng) const {
  assert(config.valid());
  const double p = config.fraction_ones();
  const double p1 = protocol_->aggregate_adoption(Opinion::kOne, p, config.n);
  const double p0 = protocol_->aggregate_adoption(Opinion::kZero, p, config.n);

  const std::uint64_t active_ones =
      binomial(rng, config.non_source_ones(), alpha_);
  const std::uint64_t active_zeros =
      binomial(rng, config.non_source_zeros(), alpha_);
  const std::uint64_t stay_ones = config.non_source_ones() - active_ones;

  Configuration next = config;
  next.ones = config.source_ones() + stay_ones +
              binomial(rng, active_ones, p1) + binomial(rng, active_zeros, p0);
  return next;
}

RunResult AlphaSynchronousEngine::run(Configuration config,
                                      const StopRule& rule, Rng& rng,
                                      Trajectory* trajectory) const {
  AlphaStepper stepper{*this, rng, config};
  return RunDriver(TimePolicy::alpha_rounds(alpha_))
      .run(stepper, rule, trajectory);
}

RunResult AlphaSynchronousEngine::run(Configuration config,
                                      const StopRule& rule,
                                      const EnvironmentModel& faults, Rng& rng,
                                      Trajectory* trajectory) const {
  assert(config.valid());
  FaultSession session(faults, config);
  const NoisyObservationProtocol noisy(*protocol_, session.model());
  config = session.plant(config);
  AlphaFaultyStepper stepper{*this, noisy, session, rng, config,
                             protocol_->sample_size(config.n)};
  return RunDriver(TimePolicy::alpha_rounds(alpha_))
      .run(stepper, rule, session, trajectory);
}

}  // namespace bitspread
