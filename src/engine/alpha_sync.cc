#include "engine/alpha_sync.h"

#include <algorithm>
#include <cassert>

#include "random/binomial.h"

namespace bitspread {

AlphaSynchronousEngine::AlphaSynchronousEngine(
    const MemorylessProtocol& protocol, double alpha) noexcept
    : protocol_(&protocol), alpha_(std::clamp(alpha, 0.0, 1.0)) {
  assert(alpha > 0.0 && alpha <= 1.0);
}

Configuration AlphaSynchronousEngine::step(const Configuration& config,
                                           Rng& rng) const {
  assert(config.valid());
  const double p = config.fraction_ones();
  const double p1 = protocol_->aggregate_adoption(Opinion::kOne, p, config.n);
  const double p0 = protocol_->aggregate_adoption(Opinion::kZero, p, config.n);

  const std::uint64_t active_ones =
      binomial(rng, config.non_source_ones(), alpha_);
  const std::uint64_t active_zeros =
      binomial(rng, config.non_source_zeros(), alpha_);
  const std::uint64_t stay_ones = config.non_source_ones() - active_ones;

  Configuration next = config;
  next.ones = config.source_ones() + stay_ones +
              binomial(rng, active_ones, p1) + binomial(rng, active_zeros, p0);
  return next;
}

RunResult AlphaSynchronousEngine::run(Configuration config,
                                      const StopRule& rule, Rng& rng,
                                      Trajectory* trajectory) const {
  RunResult result;
  if (trajectory != nullptr) trajectory->record(0, config.ones);
  for (std::uint64_t round = 0;; ++round) {
    if (auto reason = evaluate_stop(rule, config)) {
      result.reason = *reason;
      result.rounds = round;
      break;
    }
    if (round >= rule.max_rounds) {
      result.reason = StopReason::kRoundLimit;
      result.rounds = round;
      break;
    }
    config = step(config, rng);
    if (trajectory != nullptr) trajectory->record(round + 1, config.ones);
  }
  if (trajectory != nullptr) {
    trajectory->force_record(result.rounds, config.ones);
  }
  result.final_config = config;
  return result;
}

}  // namespace bitspread
