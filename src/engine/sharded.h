// The sharded agent-level engine: deterministic multithreaded rounds over a
// bit-packed, double-buffered opinion plane.
//
// AgentParallelEngine (engine/agent.h) is the reference per-agent simulator:
// single-threaded, one byte per opinion, a fresh snapshot per round. This
// engine is its scale-out rebuild for the workloads the aggregate reduction
// cannot serve — stateful protocols, adversarial internal states, and
// cross-validation at large n — built around three ideas:
//
//  1. *Deterministic sharding.* Agents are partitioned into fixed 4096-agent
//     blocks, and every (round, block) pair owns a SeedSequence-derived RNG
//     stream. Worker threads and scheduling chunks ("shards") only decide
//     WHO processes a block, never WHICH randomness it sees, so a run is
//     bit-identical for every thread count and every shard count — the
//     guarantee sim/parallel.h proves across replicates, pushed down into a
//     single run (tested in tests/engine_sharded_test.cc).
//  2. *Packed double buffering.* Displayed opinions live in two 1-bit-per-
//     agent planes (read round t, write round t+1, swap); the l random
//     probes per update touch 1/8th the memory of a byte snapshot and no
//     per-round allocation ever happens. Per-agent memory states, which no
//     other agent can observe, stay in place in a separate array.
//  3. *A memory-less fast path.* For a MemorylessProtocol the next opinion
//     is Bernoulli(g_n^[b](k)), so the engine tabulates g once per round
//     and updates agents with one table lookup + one uniform draw — no
//     virtual dispatch inside the hot loop.
//
// Rounds are fanned out through the shared WorkerPool (sim/parallel.h), so
// per-round dispatch costs no thread creation.
#ifndef BITSPREAD_ENGINE_SHARDED_H_
#define BITSPREAD_ENGINE_SHARDED_H_

#include <cstdint>
#include <vector>

#include "core/configuration.h"
#include "core/protocol.h"
#include "core/stateful.h"
#include "engine/agent.h"
#include "engine/kernel/kernel.h"
#include "engine/stopping.h"
#include "engine/trajectory.h"
#include "random/floyd.h"
#include "random/seeding.h"

namespace bitspread {

struct ShardedEngineOptions {
  // Worker threads per round (0 = hardware concurrency). Never affects
  // results.
  unsigned threads = 0;
  // Scheduling chunks the blocks are grouped into per round (0 = one
  // chunk per block). Never affects results.
  std::uint32_t shards = 0;
  AgentParallelEngine::Sampling sampling =
      AgentParallelEngine::Sampling::kWithReplacement;
  // Step-kernel backend (engine/kernel/kernel.h). kAuto engages the fastest
  // bitslice backend whenever the round is eligible ({0,1/2,1}-valued
  // g-table, n < 2^32, l <= 128); ineligible rounds — and kLegacy — take
  // the per-agent loop. The kernel runs its own documented stream schedule
  // ("kernel/2"), so backends are bit-identical to each other but not to
  // kLegacy; distribution identity is pinned by cross-validation tests.
  kernel::Backend kernel = kernel::Backend::kAuto;
};

class ShardedAgentEngine {
 public:
  using Sampling = AgentParallelEngine::Sampling;
  using Options = ShardedEngineOptions;

  // The fixed randomness/ownership unit: 64 words of 64 agents. Block
  // boundaries are word-aligned so concurrent writers never share a word.
  static constexpr std::uint64_t kBlockWords = 64;
  static constexpr std::uint64_t kBlockAgents = kBlockWords * 64;

  // Memory-less protocols take the g-table fast path.
  explicit ShardedAgentEngine(const MemorylessProtocol& protocol,
                              Options options = {}) noexcept
      : memoryless_(&protocol), options_(options) {}

  // Stateful protocols take the generic virtual-update path. A
  // MemorylessAsStateful adapter is unwrapped back onto the fast path.
  explicit ShardedAgentEngine(const StatefulProtocol& protocol,
                              Options options = {}) noexcept;

  // The packed population. Index i < source_count() is a source agent;
  // layout matches AgentParallelEngine::make_population (sources, then
  // non-source ones, then non-source zeros).
  class Population {
   public:
    std::uint64_t size() const noexcept { return n_; }
    std::uint64_t source_count() const noexcept { return sources_; }
    Opinion correct() const noexcept { return correct_; }
    std::uint64_t count_ones() const noexcept { return ones_; }
    Configuration config() const noexcept {
      return Configuration{n_, ones_, correct_, sources_};
    }

    Opinion opinion(std::uint64_t i) const noexcept {
      return ((current_[i >> 6] >> (i & 63)) & 1) != 0 ? Opinion::kOne
                                                       : Opinion::kZero;
    }
    // Per-agent memory state (0 for memory-less populations).
    std::uint32_t state(std::uint64_t i) const noexcept {
      return states_.empty() ? 0 : states_[i];
    }

    // Mutators for adversarial initial conditions (self-stabilization
    // quantifies over every internal state).
    void set_opinion(std::uint64_t i, Opinion opinion) noexcept;
    void set_state(std::uint64_t i, std::uint32_t state);
    // Re-targets the correct opinion (source flips mirror through here).
    void set_correct(Opinion correct) noexcept { correct_ = correct; }

    // Churn replacements performed by the most recent faulty step (telemetry
    // builds only; always 0 otherwise).
    std::uint64_t last_step_churned() const noexcept;

    // --- Snapshot accessors (snapshot/state.h) ----------------------
    // The packed round-t plane and the per-agent memory array, verbatim.
    const std::vector<std::uint64_t>& plane_words() const noexcept {
      return current_;
    }
    const std::vector<std::uint32_t>& memory_states() const noexcept {
      return states_;
    }
    // Replaces the plane (and memory) wholesale and recounts ones; false
    // when the shapes don't fit this population or padding bits are set.
    // The write plane and all round scratch are rebuilt by the next step().
    bool restore_plane(const std::vector<std::uint64_t>& plane,
                       const std::vector<std::uint32_t>& states);

   private:
    friend class ShardedAgentEngine;

    std::uint64_t n_ = 0;
    std::uint64_t sources_ = 1;
    Opinion correct_ = Opinion::kOne;
    std::uint64_t ones_ = 0;

    // Double-buffered opinion planes, 1 bit per agent; bits >= n_ in the
    // last word stay zero. `current_` is round t, `next_` is written
    // during step() and swapped in.
    std::vector<std::uint64_t> current_;
    std::vector<std::uint64_t> next_;
    // Per-agent memory, updated in place by the owning block (empty on the
    // memory-less fast path).
    std::vector<std::uint32_t> states_;

    // Reusable round scratch (resized once, then allocation-free).
    std::vector<std::uint64_t> block_ones_;
    // Churn replacements per block, filled only in telemetry builds (each
    // block is written by exactly one worker, so no atomics are needed).
    std::vector<std::uint64_t> block_churned_;
    std::vector<double> gtable_;
    std::vector<FloydSampler> samplers_;
    // Step-kernel round scratch: the compiled g-circuit and, in
    // without-replacement mode, per-chunk index buffers (ell * 64 each).
    kernel::CircuitTable circuit_;
    std::vector<std::uint32_t> kernel_index_;
  };

  Population make_population(const Configuration& config) const;

  // One synchronous round. `round` and `seeds` key the per-block streams:
  // stepping the same population with the same (round, seeds) replays
  // bit-for-bit, independent of threads/shards.
  void step(Population& population, std::uint64_t round,
            const SeedSequence& seeds) const;

  // One faulty synchronous round. Every fault draw (probe noise, spontaneous
  // flips, churn) comes from the block's own (round, block)-derived stream —
  // a distinct stream phase from the fault-free path — so the determinism
  // guarantee is unchanged: bit-identical for every thread/shard count.
  void step(Population& population, std::uint64_t round,
            const SeedSequence& seeds, const FaultSession& session) const;

  // Runs from `config` under `rule`. The master `seed` fully determines the
  // outcome; thread/shard counts never do.
  RunResult run(const Configuration& config, const StopRule& rule,
                std::uint64_t seed, Trajectory* trajectory = nullptr) const;

  // Faulty run under an EnvironmentModel: operational bit-flip noise on
  // every probe, frozen zealot slots, the spontaneous channel folded into
  // the per-round g-table (fast path) or applied as a post-update override
  // (stateful path), per-agent churn, and mid-run source flips. Still
  // bit-identical across thread/shard counts.
  RunResult run(const Configuration& config, const StopRule& rule,
                const EnvironmentModel& faults, std::uint64_t seed,
                Trajectory* trajectory = nullptr) const;

  // Same, from an explicit (possibly adversarial) population, advanced in
  // place.
  RunResult run_population(Population& population, const StopRule& rule,
                           std::uint64_t seed,
                           Trajectory* trajectory = nullptr) const;

  std::uint32_t sample_size(std::uint64_t n) const noexcept {
    return memoryless_ != nullptr ? memoryless_->sample_size(n)
                                  : protocol_->sample_size(n);
  }
  const Options& options() const noexcept { return options_; }
  bool memoryless_fast_path() const noexcept { return memoryless_ != nullptr; }

  // The kernel backend a step on `population` would dispatch to after all
  // eligibility checks (kLegacy when the per-agent loop would run instead).
  // Uses the population's round scratch; intended for benches and tests.
  kernel::Backend step_backend(Population& population,
                               const FaultSession* session = nullptr) const;

 private:
  // Per-round kernel dispatch, built by prepare_kernel.
  struct KernelRound {
    kernel::Backend backend = kernel::Backend::kLegacy;
    kernel::BlockFn fn = nullptr;
    kernel::FaultChannels faults;
    bool faulty = false;
    std::uint32_t threshold = 0;
  };

  // Tabulates the protocol's base g-table (no fault folding) into
  // population.gtable_. No-op on the stateful path.
  void build_gtable(Population& population, std::uint32_t ell) const;
  // Resolves the backend and compiles the circuit; false = legacy fallback.
  bool prepare_kernel(Population& population, std::uint32_t ell,
                      const FaultSession* session, KernelRound& plan) const;

  void process_block_kernel(Population& population, std::uint64_t block,
                            std::uint32_t ell, const KernelRound& plan,
                            std::uint64_t lane_seed, FloydSampler& sampler,
                            std::uint32_t* index_scratch) const;
  void process_block(Population& population, std::uint64_t block,
                     std::uint32_t ell, Rng& rng,
                     FloydSampler& sampler) const;
  void process_block_faulty(Population& population, std::uint64_t block,
                            std::uint32_t ell, const FaultSession& session,
                            Rng& rng, FloydSampler& sampler) const;

  const MemorylessProtocol* memoryless_ = nullptr;  // Fast path when set.
  const StatefulProtocol* protocol_ = nullptr;      // Generic path otherwise.
  Options options_;
};

}  // namespace bitspread

#endif  // BITSPREAD_ENGINE_SHARDED_H_
