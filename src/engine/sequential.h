// The sequential engine: one uniformly chosen non-source agent activates per
// step (the setting of Becchetti et al., IJCAI 2023, where the Omega(n)
// parallel-round lower bound holds for EVERY sample size).
//
// For memory-less protocols the aggregate state (z, X_t) again suffices: an
// activation picks a non-source agent (opinion 1 with probability
// #non-source-ones / #non-source), draws its sample count K ~ Bin(l, X/n),
// and flips its opinion with probability g^[b](K). The induced chain on X is
// a birth-death chain (X moves by at most 1), exactly as the paper's §1
// discussion of the two settings' different mathematical natures describes;
// markov/birth_death.h computes its exact expected absorption times.
//
// Time is reported both in activations and in parallel rounds (1 parallel
// round = n activations), the unit the paper uses for comparisons.
#ifndef BITSPREAD_ENGINE_SEQUENTIAL_H_
#define BITSPREAD_ENGINE_SEQUENTIAL_H_

#include <cstdint>
#include <vector>

#include "core/configuration.h"
#include "core/protocol.h"
#include "engine/stopping.h"
#include "engine/trajectory.h"
#include "faults/environment.h"
#include "random/rng.h"

namespace bitspread {

class SequentialEngine {
 public:
  explicit SequentialEngine(const MemorylessProtocol& protocol) noexcept
      : protocol_(&protocol) {}

  // One activation. `config` must be valid and have at least one non-source
  // agent.
  Configuration step(const Configuration& config, Rng& rng) const;

  // StopRule::max_rounds is interpreted in PARALLEL rounds (n activations
  // each) so rules are interchangeable across engines. The trajectory, if
  // given, is recorded once per parallel round. The result reports
  // TimeUnit::kActivations: `ticks` counts activations.
  RunResult run(Configuration config, const StopRule& rule, Rng& rng,
                Trajectory* trajectory = nullptr) const;

  // Faulty run under an EnvironmentModel. Noise stays exact: the activated
  // agent's sample is Binomial(l, noisy_fraction(X/n)) and the spontaneous
  // channel folds into the adoption probability. A zealot activation is a
  // no-op (time still advances); source flips and churn apply at parallel-
  // round boundaries (every n activations), matching the parallel engines'
  // per-round semantics.
  RunResult run(Configuration config, const StopRule& rule,
                const EnvironmentModel& faults, Rng& rng,
                Trajectory* trajectory = nullptr) const;

  const MemorylessProtocol& protocol() const noexcept { return *protocol_; }

 private:
  const MemorylessProtocol* protocol_;
};

}  // namespace bitspread

#endif  // BITSPREAD_ENGINE_SEQUENTIAL_H_
