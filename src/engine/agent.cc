#include "engine/agent.h"

#include <cassert>

#include "faults/session.h"
#include "telemetry/telemetry.h"

namespace bitspread {

std::uint64_t AgentParallelEngine::Population::count_ones() const noexcept {
  std::uint64_t ones = 0;
  for (const auto& view : views) ones += to_int(view.opinion);
  return ones;
}

Configuration AgentParallelEngine::Population::config() const noexcept {
  return Configuration{views.size(), count_ones(), correct, sources};
}

AgentParallelEngine::Population AgentParallelEngine::make_population(
    const Configuration& config) const {
  assert(config.valid());
  Population population;
  population.correct = config.correct;
  population.sources = config.sources;
  population.views.reserve(config.n);
  for (std::uint64_t i = 0; i < config.sources; ++i) {
    population.views.push_back(protocol_->initial_view(config.correct));
  }
  for (std::uint64_t i = 0; i < config.non_source_ones(); ++i) {
    population.views.push_back(protocol_->initial_view(Opinion::kOne));
  }
  for (std::uint64_t i = 0; i < config.non_source_zeros(); ++i) {
    population.views.push_back(protocol_->initial_view(Opinion::kZero));
  }
  assert(population.count_ones() == config.ones);
  return population;
}

std::uint32_t AgentParallelEngine::observe_ones(
    const std::vector<Opinion>& opinions, std::uint32_t ell, Rng& rng,
    FloydSampler& sampler) const noexcept {
  const std::uint64_t n = opinions.size();
  std::uint32_t ones_seen = 0;
  if (sampling_ == Sampling::kWithReplacement) {
    for (std::uint32_t s = 0; s < ell; ++s) {
      ones_seen += to_int(opinions[rng.next_below(n)]);
    }
    return ones_seen;
  }
  // Without replacement: a uniform l-subset via Floyd's algorithm (any l <= n).
  assert(ell <= n);
  sampler.sample(n, ell, rng, [&](std::uint64_t index) noexcept {
    ones_seen += to_int(opinions[index]);
  });
  return ones_seen;
}

std::uint32_t AgentParallelEngine::observe_ones_noisy(
    const std::vector<Opinion>& opinions, std::uint32_t ell, double epsilon,
    Rng& rng, FloydSampler& sampler) const noexcept {
  if (epsilon <= 0.0) return observe_ones(opinions, ell, rng, sampler);
  const std::uint64_t n = opinions.size();
  std::uint32_t ones_seen = 0;
  if (sampling_ == Sampling::kWithReplacement) {
    for (std::uint32_t s = 0; s < ell; ++s) {
      const unsigned bit = to_int(opinions[rng.next_below(n)]);
      ones_seen += rng.bernoulli(epsilon) ? bit ^ 1U : bit;
    }
    return ones_seen;
  }
  assert(ell <= n);
  sampler.sample(n, ell, rng, [&](std::uint64_t index) noexcept {
    const unsigned bit = to_int(opinions[index]);
    ones_seen += rng.bernoulli(epsilon) ? bit ^ 1U : bit;
  });
  return ones_seen;
}

void AgentParallelEngine::step(Population& population, Rng& rng) const {
  const std::uint64_t n = population.views.size();
  const std::uint32_t ell = protocol_->sample_size(n);

  // Snapshot the displayed opinions into the population-owned buffer: all
  // samples observe round-t opinions, and repeated steps reuse the storage.
  population.snapshot.resize(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    population.snapshot[i] = population.views[i].opinion;
  }

  const telemetry::ScopedTimer draw_timer(telemetry::Phase::kSampleDraw);
  for (std::uint64_t i = population.sources; i < n; ++i) {
    const std::uint32_t ones_seen =
        observe_ones(population.snapshot, ell, rng, population.sampler);
    population.views[i] =
        protocol_->update(population.views[i], ones_seen, ell, n, rng);
  }
}

RunResult AgentParallelEngine::run(Configuration config, const StopRule& rule,
                                   Rng& rng, Trajectory* trajectory) const {
  Population population = make_population(config);
  return run_population(population, rule, rng, trajectory);
}

void AgentParallelEngine::step_faulty(Population& population,
                                      const FaultSession& session,
                                      Rng& rng) const {
  const EnvironmentModel& model = session.model();
  const std::uint64_t n = population.views.size();
  const std::uint32_t ell = protocol_->sample_size(n);

  population.snapshot.resize(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    population.snapshot[i] = population.views[i].opinion;
  }

  const telemetry::ScopedTimer draw_timer(telemetry::Phase::kSampleDraw);
  for (std::uint64_t i = population.sources; i < n; ++i) {
    if (session.is_zealot(i)) continue;
    const std::uint32_t ones_seen =
        observe_ones_noisy(population.snapshot, ell, model.observation_noise,
                           rng, population.sampler);
    population.views[i] =
        protocol_->update(population.views[i], ones_seen, ell, n, rng);
    if (model.spontaneous_rate > 0.0 && rng.bernoulli(model.spontaneous_rate)) {
      // The spontaneous channel overrides the displayed opinion only; the
      // internal state survives (a "glitch", not a reset).
      population.views[i].opinion = rng.bernoulli(model.spontaneous_bias)
                                        ? Opinion::kOne
                                        : Opinion::kZero;
    }
  }
}

RunResult AgentParallelEngine::run(Configuration config, const StopRule& rule,
                                   const EnvironmentModel& faults, Rng& rng,
                                   Trajectory* trajectory) const {
  assert(config.valid());
  FaultSession session(faults, config);
  const EnvironmentModel& model = session.model();
  config = session.plant(config);
  Population population = make_population(config);

  RunResult result;
  std::uint64_t start_ns = 0;
  std::uint64_t churned = 0;
  if constexpr (telemetry::kCompiledIn) {
    start_ns = telemetry::clock_now_ns();
  }
  Configuration current = population.config();
  if (trajectory != nullptr) trajectory->record(0, current.ones);
  telemetry::record_round(0, current.ones, current.n);
  session.observe(0, current);
  for (std::uint64_t round = 0;; ++round) {
    if (session.flip_due(round)) {
      const telemetry::ScopedTimer fault_timer(telemetry::Phase::kFaultApply);
      session.apply_flip(round, current);
      // Mirror the flip onto the explicit state: sources display the new
      // correct opinion (fresh initial views), everyone else is untouched.
      population.correct = current.correct;
      for (std::uint64_t i = 0; i < population.sources; ++i) {
        population.views[i] = protocol_->initial_view(current.correct);
      }
      assert(population.config().ones == current.ones);
    }
    {
      const telemetry::ScopedTimer stop_timer(telemetry::Phase::kStopCheck);
      if (auto reason = session.evaluate(rule, current)) {
        result.reason = *reason;
        result.rounds = round;
        break;
      }
    }
    if (round >= rule.max_rounds) {
      result.reason = session.censored_reason();
      result.rounds = round;
      break;
    }
    {
      const telemetry::ScopedTimer step_timer(telemetry::Phase::kRoundStep);
      step_faulty(population, session, rng);
    }
    if (model.churn_rate > 0.0) {
      // Each free agent crashes independently; its replacement boots in the
      // protocol's initial view for the currently wrong opinion.
      const telemetry::ScopedTimer fault_timer(telemetry::Phase::kFaultApply);
      const Opinion wrong = opposite(population.correct);
      for (std::uint64_t i = population.sources; i < population.views.size();
           ++i) {
        if (session.is_zealot(i)) continue;
        if (rng.bernoulli(model.churn_rate)) {
          population.views[i] = protocol_->initial_view(wrong);
          if constexpr (telemetry::kCompiledIn) ++churned;
        }
      }
    }
    current = population.config();
    session.observe(round + 1, current);
    if (trajectory != nullptr) trajectory->record(round + 1, current.ones);
    telemetry::record_round(round + 1, current.ones, current.n);
  }
  if (trajectory != nullptr) {
    trajectory->force_record(result.rounds, current.ones);
  }
  result.final_config = current;
  result.recoveries = session.take_recoveries();
  if constexpr (telemetry::kCompiledIn) {
    result.telemetry.recorded = true;
    result.telemetry.wall_seconds =
        static_cast<double>(telemetry::clock_now_ns() - start_ns) * 1e-9;
    result.telemetry.rounds = result.rounds;
    result.telemetry.samples_drawn =
        result.rounds * session.free_agents() *
        protocol_->sample_size(current.n);
    result.telemetry.fault_flips = session.flips_applied();
    result.telemetry.fault_zealots = session.zealots();
    result.telemetry.fault_churned = churned;
    fold_recovery_telemetry(result.telemetry, result.recoveries);
  }
  return result;
}

RunResult AgentParallelEngine::run_population(Population& population,
                                              const StopRule& rule, Rng& rng,
                                              Trajectory* trajectory) const {
  RunResult result;
  std::uint64_t start_ns = 0;
  if constexpr (telemetry::kCompiledIn) {
    start_ns = telemetry::clock_now_ns();
  }
  Configuration config = population.config();
  if (trajectory != nullptr) trajectory->record(0, config.ones);
  telemetry::record_round(0, config.ones, config.n);
  for (std::uint64_t round = 0;; ++round) {
    {
      const telemetry::ScopedTimer stop_timer(telemetry::Phase::kStopCheck);
      if (auto reason = evaluate_stop(rule, config)) {
        result.reason = *reason;
        result.rounds = round;
        break;
      }
    }
    if (round >= rule.max_rounds) {
      result.reason = StopReason::kRoundLimit;
      result.rounds = round;
      break;
    }
    {
      const telemetry::ScopedTimer step_timer(telemetry::Phase::kRoundStep);
      step(population, rng);
    }
    config = population.config();
    if (trajectory != nullptr) trajectory->record(round + 1, config.ones);
    telemetry::record_round(round + 1, config.ones, config.n);
  }
  if (trajectory != nullptr) {
    trajectory->force_record(result.rounds, config.ones);
  }
  result.final_config = config;
  if constexpr (telemetry::kCompiledIn) {
    result.telemetry.recorded = true;
    result.telemetry.wall_seconds =
        static_cast<double>(telemetry::clock_now_ns() - start_ns) * 1e-9;
    result.telemetry.rounds = result.rounds;
    result.telemetry.samples_drawn =
        result.rounds * (config.n - config.sources) *
        protocol_->sample_size(config.n);
  }
  return result;
}

int AgentSequentialEngine::activate(Population& population, Rng& rng) const {
  const std::uint64_t n = population.views.size();
  const std::uint32_t ell = protocol_->sample_size(n);
  const std::uint64_t non_source = n - population.sources;
  const std::uint64_t agent = population.sources + rng.next_below(non_source);
  std::uint32_t ones_seen = 0;
  for (std::uint32_t s = 0; s < ell; ++s) {
    ones_seen += to_int(population.views[rng.next_below(n)].opinion);
  }
  const Opinion before = population.views[agent].opinion;
  population.views[agent] =
      protocol_->update(population.views[agent], ones_seen, ell, n, rng);
  return to_int(population.views[agent].opinion) - to_int(before);
}

SequentialRunResult AgentSequentialEngine::run(Configuration config,
                                               const StopRule& rule, Rng& rng,
                                               Trajectory* trajectory) const {
  Population population = make_population(config);
  const std::uint64_t n = config.n;
  const std::uint64_t max_activations = rule.max_rounds * n;
  SequentialRunResult result;
  std::uint64_t start_ns = 0;
  if constexpr (telemetry::kCompiledIn) {
    start_ns = telemetry::clock_now_ns();
  }
  // The displayed ones-count changes by at most one per activation; track it
  // incrementally instead of recounting.
  std::uint64_t ones = population.count_ones();
  Configuration current = config;
  current.ones = ones;
  if (trajectory != nullptr) trajectory->record(0, ones);
  telemetry::record_round(0, ones, n);
  std::uint64_t activation = 0;
  while (true) {
    {
      const telemetry::ScopedTimer stop_timer(telemetry::Phase::kStopCheck);
      if (auto reason = evaluate_stop(rule, current)) {
        result.reason = *reason;
        break;
      }
    }
    if (activation >= max_activations) {
      result.reason = StopReason::kRoundLimit;
      break;
    }
    {
      const telemetry::ScopedTimer step_timer(telemetry::Phase::kRoundStep);
      ones = static_cast<std::uint64_t>(static_cast<std::int64_t>(ones) +
                                        activate(population, rng));
    }
    current.ones = ones;
    ++activation;
    if (activation % n == 0) {
      if (trajectory != nullptr) trajectory->record(activation / n, ones);
      telemetry::record_round(activation / n, ones, n);
    }
  }
  result.activations = activation;
  result.final_config = current;
  if (trajectory != nullptr) {
    trajectory->force_record((activation + n - 1) / n, ones);
  }
  if constexpr (telemetry::kCompiledIn) {
    result.telemetry.recorded = true;
    result.telemetry.wall_seconds =
        static_cast<double>(telemetry::clock_now_ns() - start_ns) * 1e-9;
    result.telemetry.rounds = activation / n;
    result.telemetry.samples_drawn =
        activation * protocol_->sample_size(n);
  }
  return result;
}

}  // namespace bitspread
