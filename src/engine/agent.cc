#include "engine/agent.h"

#include <cassert>

#include "engine/run_loop.h"
#include "faults/session.h"
#include "telemetry/telemetry.h"

namespace bitspread {
namespace {

// Fault-free stepper over an explicit population (run and run_population).
struct AgentPopulationStepper {
  const AgentParallelEngine& engine;
  AgentParallelEngine::Population& population;
  Rng& rng;
  Configuration state;
  std::uint64_t samples = 0;

  Configuration& config() noexcept { return state; }
  void step(std::uint64_t /*tick*/) {
    engine.step(population, rng);
    state = population.config();
    if constexpr (telemetry::kCompiledIn) {
      samples += (state.n - state.sources) *
                 engine.protocol().sample_size(state.n);
    }
  }
  std::uint64_t samples_drawn() const noexcept { return samples; }
};

// Faulty stepper: noise/zealots/spontaneous inside step_faulty, per-agent
// churn and the flip mirror at the driver's round boundaries. The O(n)
// ones-recount happens once per round, in end_round.
struct AgentFaultyStepper {
  const AgentParallelEngine& engine;
  AgentParallelEngine::Population& population;
  FaultSession& session;
  Rng& rng;
  Configuration state;
  std::uint64_t samples = 0;
  std::uint64_t churn_events = 0;

  Configuration& config() noexcept { return state; }
  void step(std::uint64_t /*tick*/) {
    engine.step_faulty(population, session, rng);
    if constexpr (telemetry::kCompiledIn) {
      samples += session.free_agents() *
                 engine.protocol().sample_size(state.n);
    }
  }
  void sync_flip() {
    // Mirror the flip onto the explicit state: sources display the new
    // correct opinion (fresh initial views), everyone else is untouched.
    population.correct = state.correct;
    for (std::uint64_t i = 0; i < population.sources; ++i) {
      population.views[i] = engine.protocol().initial_view(state.correct);
    }
    assert(population.config().ones == state.ones);
  }
  void end_round(std::uint64_t /*round*/) {
    const EnvironmentModel& model = session.model();
    if (model.churn_rate > 0.0) {
      // Each free agent crashes independently; its replacement boots in the
      // protocol's initial view for the currently wrong opinion.
      const Opinion wrong = opposite(population.correct);
      for (std::uint64_t i = population.sources;
           i < population.views.size(); ++i) {
        if (session.is_zealot(i)) continue;
        if (rng.bernoulli(model.churn_rate)) {
          population.views[i] = engine.protocol().initial_view(wrong);
          if constexpr (telemetry::kCompiledIn) ++churn_events;
        }
      }
    }
    state = population.config();
  }
  std::uint64_t samples_drawn() const noexcept { return samples; }
  std::uint64_t churned() const noexcept { return churn_events; }
};

// Sequential activation stepper: birth-death increments, no recount.
struct AgentActivationStepper {
  const AgentSequentialEngine& engine;
  AgentParallelEngine::Population& population;
  Rng& rng;
  Configuration state;
  std::uint64_t samples = 0;

  Configuration& config() noexcept { return state; }
  void step(std::uint64_t /*tick*/) {
    state.ones = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(state.ones) +
        engine.activate(population, rng));
    if constexpr (telemetry::kCompiledIn) {
      samples += engine.protocol().sample_size(state.n);
    }
  }
  std::uint64_t samples_drawn() const noexcept { return samples; }
};

}  // namespace

std::uint64_t AgentParallelEngine::Population::count_ones() const noexcept {
  std::uint64_t ones = 0;
  for (const auto& view : views) ones += to_int(view.opinion);
  return ones;
}

Configuration AgentParallelEngine::Population::config() const noexcept {
  return Configuration{views.size(), count_ones(), correct, sources};
}

AgentParallelEngine::Population AgentParallelEngine::make_population(
    const Configuration& config) const {
  assert(config.valid());
  Population population;
  population.correct = config.correct;
  population.sources = config.sources;
  population.views.reserve(config.n);
  for (std::uint64_t i = 0; i < config.sources; ++i) {
    population.views.push_back(protocol_->initial_view(config.correct));
  }
  for (std::uint64_t i = 0; i < config.non_source_ones(); ++i) {
    population.views.push_back(protocol_->initial_view(Opinion::kOne));
  }
  for (std::uint64_t i = 0; i < config.non_source_zeros(); ++i) {
    population.views.push_back(protocol_->initial_view(Opinion::kZero));
  }
  assert(population.count_ones() == config.ones);
  return population;
}

std::uint32_t AgentParallelEngine::observe_ones(
    const std::vector<Opinion>& opinions, std::uint32_t ell, Rng& rng,
    FloydSampler& sampler) const noexcept {
  const std::uint64_t n = opinions.size();
  std::uint32_t ones_seen = 0;
  if (sampling_ == Sampling::kWithReplacement) {
    for (std::uint32_t s = 0; s < ell; ++s) {
      ones_seen += to_int(opinions[rng.next_below(n)]);
    }
    return ones_seen;
  }
  // Without replacement: a uniform l-subset via Floyd's algorithm (any l <= n).
  assert(ell <= n);
  sampler.sample(n, ell, rng, [&](std::uint64_t index) noexcept {
    ones_seen += to_int(opinions[index]);
  });
  return ones_seen;
}

std::uint32_t AgentParallelEngine::observe_ones_noisy(
    const std::vector<Opinion>& opinions, std::uint32_t ell, double epsilon,
    Rng& rng, FloydSampler& sampler) const noexcept {
  if (epsilon <= 0.0) return observe_ones(opinions, ell, rng, sampler);
  const std::uint64_t n = opinions.size();
  std::uint32_t ones_seen = 0;
  if (sampling_ == Sampling::kWithReplacement) {
    for (std::uint32_t s = 0; s < ell; ++s) {
      const unsigned bit = to_int(opinions[rng.next_below(n)]);
      ones_seen += rng.bernoulli(epsilon) ? bit ^ 1U : bit;
    }
    return ones_seen;
  }
  assert(ell <= n);
  sampler.sample(n, ell, rng, [&](std::uint64_t index) noexcept {
    const unsigned bit = to_int(opinions[index]);
    ones_seen += rng.bernoulli(epsilon) ? bit ^ 1U : bit;
  });
  return ones_seen;
}

void AgentParallelEngine::step(Population& population, Rng& rng) const {
  const std::uint64_t n = population.views.size();
  const std::uint32_t ell = protocol_->sample_size(n);

  // Snapshot the displayed opinions into the population-owned buffer: all
  // samples observe round-t opinions, and repeated steps reuse the storage.
  population.snapshot.resize(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    population.snapshot[i] = population.views[i].opinion;
  }

  const telemetry::ScopedTimer draw_timer(telemetry::Phase::kSampleDraw);
  for (std::uint64_t i = population.sources; i < n; ++i) {
    const std::uint32_t ones_seen =
        observe_ones(population.snapshot, ell, rng, population.sampler);
    population.views[i] =
        protocol_->update(population.views[i], ones_seen, ell, n, rng);
  }
}

RunResult AgentParallelEngine::run(Configuration config, const StopRule& rule,
                                   Rng& rng, Trajectory* trajectory) const {
  Population population = make_population(config);
  return run_population(population, rule, rng, trajectory);
}

void AgentParallelEngine::step_faulty(Population& population,
                                      const FaultSession& session,
                                      Rng& rng) const {
  const EnvironmentModel& model = session.model();
  const std::uint64_t n = population.views.size();
  const std::uint32_t ell = protocol_->sample_size(n);

  population.snapshot.resize(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    population.snapshot[i] = population.views[i].opinion;
  }

  const telemetry::ScopedTimer draw_timer(telemetry::Phase::kSampleDraw);
  for (std::uint64_t i = population.sources; i < n; ++i) {
    if (session.is_zealot(i)) continue;
    const std::uint32_t ones_seen =
        observe_ones_noisy(population.snapshot, ell, model.observation_noise,
                           rng, population.sampler);
    population.views[i] =
        protocol_->update(population.views[i], ones_seen, ell, n, rng);
    if (model.spontaneous_rate > 0.0 && rng.bernoulli(model.spontaneous_rate)) {
      // The spontaneous channel overrides the displayed opinion only; the
      // internal state survives (a "glitch", not a reset).
      population.views[i].opinion = rng.bernoulli(model.spontaneous_bias)
                                        ? Opinion::kOne
                                        : Opinion::kZero;
    }
  }
}

RunResult AgentParallelEngine::run(Configuration config, const StopRule& rule,
                                   const EnvironmentModel& faults, Rng& rng,
                                   Trajectory* trajectory) const {
  assert(config.valid());
  FaultSession session(faults, config);
  config = session.plant(config);
  Population population = make_population(config);
  AgentFaultyStepper stepper{*this, population, session, rng,
                             population.config()};
  return RunDriver(TimePolicy::parallel())
      .run(stepper, rule, session, trajectory);
}

RunResult AgentParallelEngine::run_population(Population& population,
                                              const StopRule& rule, Rng& rng,
                                              Trajectory* trajectory) const {
  AgentPopulationStepper stepper{*this, population, rng, population.config()};
  return RunDriver(TimePolicy::parallel()).run(stepper, rule, trajectory);
}

int AgentSequentialEngine::activate(Population& population, Rng& rng) const {
  const std::uint64_t n = population.views.size();
  const std::uint32_t ell = protocol_->sample_size(n);
  const std::uint64_t non_source = n - population.sources;
  const std::uint64_t agent = population.sources + rng.next_below(non_source);
  std::uint32_t ones_seen = 0;
  for (std::uint32_t s = 0; s < ell; ++s) {
    ones_seen += to_int(population.views[rng.next_below(n)].opinion);
  }
  const Opinion before = population.views[agent].opinion;
  population.views[agent] =
      protocol_->update(population.views[agent], ones_seen, ell, n, rng);
  return to_int(population.views[agent].opinion) - to_int(before);
}

RunResult AgentSequentialEngine::run(Configuration config,
                                     const StopRule& rule, Rng& rng,
                                     Trajectory* trajectory) const {
  Population population = make_population(config);
  // The displayed ones-count changes by at most one per activation; track it
  // incrementally instead of recounting.
  Configuration current = config;
  current.ones = population.count_ones();
  AgentActivationStepper stepper{*this, population, rng, current};
  return RunDriver(TimePolicy::activations(config.n))
      .run(stepper, rule, trajectory);
}

}  // namespace bitspread
