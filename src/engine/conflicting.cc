#include "engine/conflicting.h"

#include <cassert>
#include <sstream>

#include "random/binomial.h"

namespace bitspread {

std::string ConflictingConfiguration::describe() const {
  std::ostringstream out;
  out << "ConflictingConfiguration{n=" << n << ", ones=" << ones
      << ", stubborn=(" << stubborn_zeros << " zeros, " << stubborn_ones
      << " ones)}";
  return out.str();
}

ConflictingConfiguration ConflictingAggregateEngine::step(
    const ConflictingConfiguration& config, Rng& rng) const {
  assert(config.valid());
  const double p = config.fraction_ones();
  const double p1 = protocol_->aggregate_adoption(Opinion::kOne, p, config.n);
  const double p0 = protocol_->aggregate_adoption(Opinion::kZero, p, config.n);
  ConflictingConfiguration next = config;
  next.ones = config.stubborn_ones + binomial(rng, config.free_ones(), p1) +
              binomial(rng, config.free_zeros(), p0);
  return next;
}

ConflictingAggregateEngine::WatchResult ConflictingAggregateEngine::watch(
    ConflictingConfiguration config, std::uint64_t rounds, Rng& rng,
    Trajectory* trajectory) const {
  WatchResult result;
  const Opinion preference = config.majority_preference();
  const std::uint64_t free_total = config.free_ones() + config.free_zeros();
  std::uint64_t tracking = 0;
  std::uint64_t near = 0;
  if (trajectory != nullptr) trajectory->record(0, config.ones);
  for (std::uint64_t t = 0; t < rounds; ++t) {
    config = step(config, rng);
    if (trajectory != nullptr) trajectory->record(t + 1, config.ones);
    const std::uint64_t aligned = preference == Opinion::kOne
                                      ? config.free_ones()
                                      : config.free_zeros();
    if (2 * aligned > free_total) ++tracking;
    if (10 * aligned >= 9 * free_total) ++near;
  }
  result.tracking_fraction =
      static_cast<double>(tracking) / static_cast<double>(rounds);
  result.near_consensus_fraction =
      static_cast<double>(near) / static_cast<double>(rounds);
  result.final_config = config;
  return result;
}

}  // namespace bitspread
