#include "engine/conflicting.h"

#include <cassert>
#include <sstream>

#include "engine/aggregate.h"
#include "engine/run_loop.h"
#include "random/binomial.h"
#include "telemetry/telemetry.h"

namespace bitspread {
namespace {

// Watch stepper: advances the native conflicting state, accumulates the
// tracking statistics, and mirrors the ones-count into a binary projection
// so the driver can record trajectory/round-stream points. Its evaluate()
// hook never stops — while both camps are non-empty there is no absorbing
// state, so only the round budget ends a watch.
struct WatchStepper {
  const ConflictingAggregateEngine& engine;
  Rng& rng;
  ConflictingConfiguration state;
  Configuration projection;
  Opinion preference = Opinion::kOne;
  std::uint64_t free_total = 0;
  std::uint32_t ell = 0;
  std::uint64_t tracking = 0;
  std::uint64_t near = 0;
  std::uint64_t samples = 0;

  Configuration& config() noexcept { return projection; }
  void step(std::uint64_t /*tick*/) {
    state = engine.step(state, rng);
    projection.ones = state.ones;
    const std::uint64_t aligned = preference == Opinion::kOne
                                      ? state.free_ones()
                                      : state.free_zeros();
    if (2 * aligned > free_total) ++tracking;
    if (10 * aligned >= 9 * free_total) ++near;
    if constexpr (telemetry::kCompiledIn) samples += free_total * ell;
  }
  std::optional<StopReason> evaluate(const StopRule& /*rule*/) const {
    return std::nullopt;
  }
  std::uint64_t samples_drawn() const noexcept { return samples; }
};

// The zealot reduction: majority camp -> sources, minority camp -> exact
// extra zealots on the (initially) wrong opinion.
Configuration to_binary(const ConflictingConfiguration& config) noexcept {
  const Opinion preference = config.majority_preference();
  const std::uint64_t majority = preference == Opinion::kOne
                                     ? config.stubborn_ones
                                     : config.stubborn_zeros;
  return Configuration{config.n, config.ones, preference, majority};
}

std::uint64_t minority_count(const ConflictingConfiguration& config) noexcept {
  return config.majority_preference() == Opinion::kOne ? config.stubborn_zeros
                                                       : config.stubborn_ones;
}

}  // namespace

std::string ConflictingConfiguration::describe() const {
  std::ostringstream out;
  out << "ConflictingConfiguration{n=" << n << ", ones=" << ones
      << ", stubborn=(" << stubborn_zeros << " zeros, " << stubborn_ones
      << " ones)}";
  return out.str();
}

ConflictingConfiguration ConflictingAggregateEngine::step(
    const ConflictingConfiguration& config, Rng& rng) const {
  assert(config.valid());
  const double p = config.fraction_ones();
  const double p1 = protocol_->aggregate_adoption(Opinion::kOne, p, config.n);
  const double p0 = protocol_->aggregate_adoption(Opinion::kZero, p, config.n);
  const telemetry::ScopedTimer draw_timer(telemetry::Phase::kSampleDraw);
  ConflictingConfiguration next = config;
  next.ones = config.stubborn_ones + binomial(rng, config.free_ones(), p1) +
              binomial(rng, config.free_zeros(), p0);
  return next;
}

ConflictingAggregateEngine::WatchResult ConflictingAggregateEngine::watch(
    ConflictingConfiguration config, std::uint64_t rounds, Rng& rng,
    Trajectory* trajectory) const {
  assert(config.valid());
  const Opinion preference = config.majority_preference();
  WatchStepper stepper{*this,
                       rng,
                       config,
                       Configuration{config.n, config.ones, preference,
                                     config.stubborn_ones +
                                         config.stubborn_zeros},
                       preference,
                       config.free_ones() + config.free_zeros(),
                       protocol_->sample_size(config.n)};
  StopRule rule;
  rule.max_rounds = rounds;
  const RunResult run =
      RunDriver(TimePolicy::parallel()).run(stepper, rule, trajectory);
  WatchResult result;
  result.tracking_fraction =
      static_cast<double>(stepper.tracking) / static_cast<double>(rounds);
  result.near_consensus_fraction =
      static_cast<double>(stepper.near) / static_cast<double>(rounds);
  result.final_config = stepper.state;
  result.telemetry = run.telemetry;
  return result;
}

RunResult ConflictingAggregateEngine::run(
    const ConflictingConfiguration& config, const StopRule& rule, Rng& rng,
    Trajectory* trajectory) const {
  assert(config.valid());
  const AggregateParallelEngine aggregate(*protocol_);
  const std::uint64_t minority = minority_count(config);
  if (minority == 0) {
    // A single stubborn camp IS the standard model: delegate untouched.
    return aggregate.run(to_binary(config), rule, rng, trajectory);
  }
  EnvironmentModel model;
  model.extra_zealots = minority;
  return aggregate.run(to_binary(config), rule, model, rng, trajectory);
}

RunResult ConflictingAggregateEngine::run(
    const ConflictingConfiguration& config, const StopRule& rule,
    const EnvironmentModel& faults, Rng& rng, Trajectory* trajectory) const {
  assert(config.valid());
  EnvironmentModel model = faults;
  model.extra_zealots += minority_count(config);
  return AggregateParallelEngine(*protocol_)
      .run(to_binary(config), rule, model, rng, trajectory);
}

}  // namespace bitspread
