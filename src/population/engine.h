// Population protocols: the paper's §1.3 contrast class.
//
// In a population protocol, a scheduler picks a uniformly random ORDERED
// pair of agents per step and both update as a function of BOTH full states
// — active communication, unlike the paper's passive model where an agent
// sees only sampled opinions. Dudek & Kosowski (STOC 2018, [22] in the
// paper) solve bit-dissemination here with O(1) states; the paper stresses
// that this "does not fit the framework of passive communications". This
// engine exists to measure that contrast: with active pairwise exchange,
// information spread is epidemic-fast (Theta(log n) parallel time), so the
// Omega(n^{1-eps}) barrier is specifically a price of passivity, not of
// small memory.
#ifndef BITSPREAD_POPULATION_ENGINE_H_
#define BITSPREAD_POPULATION_ENGINE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/opinion.h"
#include "engine/stopping.h"
#include "engine/trajectory.h"
#include "faults/environment.h"
#include "random/rng.h"

namespace bitspread {

class FaultSession;

// A pairwise transition function over a finite state space. States are
// small integers; the displayed opinion is a projection of the state.
class PairwiseProtocol {
 public:
  virtual ~PairwiseProtocol() = default;

  virtual std::uint32_t state_count() const noexcept = 0;

  // The interaction (initiator, responder) -> (initiator', responder').
  // May randomize through rng.
  virtual std::pair<std::uint32_t, std::uint32_t> interact(
      std::uint32_t initiator, std::uint32_t responder, Rng& rng) const = 0;

  // The opinion an agent in `state` displays / would act on.
  virtual Opinion opinion(std::uint32_t state) const noexcept = 0;

  // State assigned to a non-source agent initially holding `opinion`.
  virtual std::uint32_t initial_state(Opinion opinion) const noexcept = 0;

  // State of a source agent holding `correct` (sources never update).
  virtual std::uint32_t source_state(Opinion correct) const noexcept = 0;

  virtual std::string name() const = 0;
};

class PopulationEngine {
 public:
  explicit PopulationEngine(const PairwiseProtocol& protocol) noexcept
      : protocol_(&protocol) {}

  struct Population {
    std::vector<std::uint32_t> states;  // Index < sources: pinned source.
    std::uint64_t sources = 1;
    Opinion correct = Opinion::kOne;

    std::uint64_t count_ones(const PairwiseProtocol& protocol) const noexcept;
  };

  Population make_population(std::uint64_t n, Opinion correct,
                             std::uint64_t initial_ones,
                             std::uint64_t sources = 1) const;

  // One interaction: a uniformly random ordered pair (distinct agents);
  // source agents participate (their state is visible to partners) but
  // their own state never changes.
  void interact(Population& population, Rng& rng) const;

  // As interact, but zealot slots never change state (they still respond:
  // partners see their state).
  void interact_faulty(Population& population, const FaultSession& session,
                       Rng& rng) const;

  // StopRule::max_rounds in parallel rounds (n interactions each, the
  // standard population-protocol normalization); the result reports
  // TimeUnit::kActivations (ticks = interactions). The trajectory and the
  // flight-recorder round stream are recorded once per parallel round.
  RunResult run(Population& population, const StopRule& rule, Rng& rng,
                Trajectory* trajectory = nullptr) const;

  // Faulty run. Population protocols exchange full states, not sampled
  // bits, so the bit-observation channels (observation noise, spontaneous
  // adoption) do not apply and are ignored; the structural channels do:
  // zealot slots are frozen on the initially wrong opinion, source flips
  // re-target the correct opinion and reset the source states mid-run, and
  // churned free agents restart in the protocol's initial state for the
  // currently wrong opinion at round boundaries. Assumes the canonical
  // make_population layout (sources | ones | zeros) for zealot placement.
  RunResult run(Population& population, const StopRule& rule,
                const EnvironmentModel& faults, Rng& rng,
                Trajectory* trajectory = nullptr) const;

  const PairwiseProtocol& protocol() const noexcept { return *protocol_; }

 private:
  const PairwiseProtocol* protocol_;
};

}  // namespace bitspread

#endif  // BITSPREAD_POPULATION_ENGINE_H_
