#include "population/protocols.h"

namespace bitspread {

std::pair<std::uint32_t, std::uint32_t> EpidemicProtocol::interact(
    std::uint32_t initiator, std::uint32_t responder, Rng& /*rng*/) const {
  const bool a_informed = (initiator & kInformedBit) != 0;
  const bool b_informed = (responder & kInformedBit) != 0;
  if (a_informed && !b_informed) return {initiator, initiator};
  if (b_informed && !a_informed) return {responder, responder};
  return {initiator, responder};  // Both or neither informed: no change.
}

std::pair<std::uint32_t, std::uint32_t> PairwiseVoter::interact(
    std::uint32_t /*initiator*/, std::uint32_t responder,
    Rng& /*rng*/) const {
  return {responder, responder};
}

}  // namespace bitspread
