#include "population/engine.h"

#include <cassert>

namespace bitspread {

std::uint64_t PopulationEngine::Population::count_ones(
    const PairwiseProtocol& protocol) const noexcept {
  std::uint64_t ones = 0;
  for (const std::uint32_t state : states) {
    ones += to_int(protocol.opinion(state));
  }
  return ones;
}

PopulationEngine::Population PopulationEngine::make_population(
    std::uint64_t n, Opinion correct, std::uint64_t initial_ones,
    std::uint64_t sources) const {
  assert(sources <= n);
  Population population;
  population.sources = sources;
  population.correct = correct;
  population.states.reserve(n);
  const std::uint64_t source_ones = correct == Opinion::kOne ? sources : 0;
  assert(initial_ones >= source_ones &&
         initial_ones - source_ones <= n - sources);
  for (std::uint64_t i = 0; i < sources; ++i) {
    population.states.push_back(protocol_->source_state(correct));
  }
  for (std::uint64_t i = 0; i < initial_ones - source_ones; ++i) {
    population.states.push_back(protocol_->initial_state(Opinion::kOne));
  }
  for (std::uint64_t i = sources + (initial_ones - source_ones); i < n; ++i) {
    population.states.push_back(protocol_->initial_state(Opinion::kZero));
  }
  return population;
}

void PopulationEngine::interact(Population& population, Rng& rng) const {
  const std::uint64_t n = population.states.size();
  assert(n >= 2);
  const std::uint64_t a = rng.next_below(n);
  std::uint64_t b = rng.next_below(n - 1);
  if (b >= a) ++b;
  const auto [next_a, next_b] =
      protocol_->interact(population.states[a], population.states[b], rng);
  if (a >= population.sources) population.states[a] = next_a;
  if (b >= population.sources) population.states[b] = next_b;
}

SequentialRunResult PopulationEngine::run(Population& population,
                                          const StopRule& rule,
                                          Rng& rng) const {
  const std::uint64_t n = population.states.size();
  const std::uint64_t max_interactions = rule.max_rounds * n;
  SequentialRunResult result;
  std::uint64_t interactions = 0;
  while (true) {
    // Check the display configuration (count is O(n): amortize by checking
    // once per parallel round).
    const std::uint64_t ones = population.count_ones(*protocol_);
    const Configuration config{n, ones, population.correct,
                               population.sources};
    if (auto reason = evaluate_stop(rule, config)) {
      result.reason = *reason;
      result.final_config = config;
      break;
    }
    if (interactions >= max_interactions) {
      result.reason = StopReason::kRoundLimit;
      result.final_config = config;
      break;
    }
    for (std::uint64_t i = 0; i < n && interactions < max_interactions; ++i) {
      interact(population, rng);
      ++interactions;
    }
  }
  result.activations = interactions;
  return result;
}

}  // namespace bitspread
