#include "population/engine.h"

#include <cassert>

#include "engine/run_loop.h"
#include "faults/session.h"
#include "telemetry/telemetry.h"

namespace bitspread {
namespace {

// Fault-free stepper: one tick = one scheduler round of n interactions; the
// display configuration is recounted once per round (O(n), the same
// amortization the hand-rolled loop used).
struct PopulationStepper {
  const PopulationEngine& engine;
  Rng& rng;
  PopulationEngine::Population& population;
  Configuration state;
  std::uint64_t samples = 0;

  Configuration& config() noexcept { return state; }
  void step(std::uint64_t /*tick*/) {
    const std::uint64_t n = population.states.size();
    for (std::uint64_t i = 0; i < n; ++i) engine.interact(population, rng);
    state.ones = population.count_ones(engine.protocol());
    if constexpr (telemetry::kCompiledIn) {
      // Each interaction reveals both partners' full states: two
      // observations per interaction is the passive-sampling equivalent.
      samples += 2 * n;
    }
  }
  std::uint64_t samples_drawn() const noexcept { return samples; }
};

// Faulty stepper: zealot slots are frozen inside the interaction, source
// flips reset the pinned source states, churn replaces free agents at round
// boundaries.
struct PopulationFaultyStepper {
  const PopulationEngine& engine;
  FaultSession& session;
  Rng& rng;
  PopulationEngine::Population& population;
  Configuration state;
  std::uint64_t samples = 0;
  std::uint64_t churn_events = 0;

  Configuration& config() noexcept { return state; }
  void step(std::uint64_t /*tick*/) {
    const std::uint64_t n = population.states.size();
    for (std::uint64_t i = 0; i < n; ++i) {
      engine.interact_faulty(population, session, rng);
    }
    state.ones = population.count_ones(engine.protocol());
    if constexpr (telemetry::kCompiledIn) samples += 2 * n;
  }
  void sync_flip() {
    population.correct = state.correct;
    for (std::uint64_t i = 0; i < population.sources; ++i) {
      population.states[i] = engine.protocol().source_state(state.correct);
    }
    state.ones = population.count_ones(engine.protocol());
  }
  void end_round(std::uint64_t /*round*/) {
    const double delta = session.model().churn_rate;
    if (delta <= 0.0) return;
    const Opinion wrong = state.correct == Opinion::kOne ? Opinion::kZero
                                                         : Opinion::kOne;
    const std::uint32_t reset = engine.protocol().initial_state(wrong);
    for (std::uint64_t i = population.sources;
         i < population.states.size(); ++i) {
      if (session.is_zealot(i)) continue;
      if (!rng.bernoulli(delta)) continue;
      population.states[i] = reset;
      ++churn_events;
    }
    state.ones = population.count_ones(engine.protocol());
  }
  std::uint64_t samples_drawn() const noexcept { return samples; }
  std::uint64_t churned() const noexcept { return churn_events; }
};

}  // namespace

std::uint64_t PopulationEngine::Population::count_ones(
    const PairwiseProtocol& protocol) const noexcept {
  std::uint64_t ones = 0;
  for (const std::uint32_t state : states) {
    ones += to_int(protocol.opinion(state));
  }
  return ones;
}

PopulationEngine::Population PopulationEngine::make_population(
    std::uint64_t n, Opinion correct, std::uint64_t initial_ones,
    std::uint64_t sources) const {
  assert(sources <= n);
  Population population;
  population.sources = sources;
  population.correct = correct;
  population.states.reserve(n);
  const std::uint64_t source_ones = correct == Opinion::kOne ? sources : 0;
  assert(initial_ones >= source_ones &&
         initial_ones - source_ones <= n - sources);
  for (std::uint64_t i = 0; i < sources; ++i) {
    population.states.push_back(protocol_->source_state(correct));
  }
  for (std::uint64_t i = 0; i < initial_ones - source_ones; ++i) {
    population.states.push_back(protocol_->initial_state(Opinion::kOne));
  }
  for (std::uint64_t i = sources + (initial_ones - source_ones); i < n; ++i) {
    population.states.push_back(protocol_->initial_state(Opinion::kZero));
  }
  return population;
}

void PopulationEngine::interact(Population& population, Rng& rng) const {
  const std::uint64_t n = population.states.size();
  assert(n >= 2);
  const std::uint64_t a = rng.next_below(n);
  std::uint64_t b = rng.next_below(n - 1);
  if (b >= a) ++b;
  const auto [next_a, next_b] =
      protocol_->interact(population.states[a], population.states[b], rng);
  if (a >= population.sources) population.states[a] = next_a;
  if (b >= population.sources) population.states[b] = next_b;
}

void PopulationEngine::interact_faulty(Population& population,
                                       const FaultSession& session,
                                       Rng& rng) const {
  const std::uint64_t n = population.states.size();
  assert(n >= 2);
  const std::uint64_t a = rng.next_below(n);
  std::uint64_t b = rng.next_below(n - 1);
  if (b >= a) ++b;
  const auto [next_a, next_b] =
      protocol_->interact(population.states[a], population.states[b], rng);
  if (a >= population.sources && !session.is_zealot(a)) {
    population.states[a] = next_a;
  }
  if (b >= population.sources && !session.is_zealot(b)) {
    population.states[b] = next_b;
  }
}

RunResult PopulationEngine::run(Population& population, const StopRule& rule,
                                Rng& rng, Trajectory* trajectory) const {
  const std::uint64_t n = population.states.size();
  PopulationStepper stepper{
      *this, rng, population,
      Configuration{n, population.count_ones(*protocol_), population.correct,
                    population.sources}};
  return RunDriver(TimePolicy::interaction_rounds(n))
      .run(stepper, rule, trajectory);
}

RunResult PopulationEngine::run(Population& population, const StopRule& rule,
                                const EnvironmentModel& faults, Rng& rng,
                                Trajectory* trajectory) const {
  const std::uint64_t n = population.states.size();
  Configuration config{n, population.count_ones(*protocol_),
                       population.correct, population.sources};
  FaultSession session(faults, config);
  config = session.plant(config);
  // Pin the zealot slots to the zealot opinion's initial state; under the
  // canonical layout the recount below matches the planted ones-count.
  const std::uint32_t zealot_state =
      protocol_->initial_state(session.zealot_opinion());
  for (std::uint64_t i = session.zealot_begin(); i < session.zealot_end();
       ++i) {
    population.states[i] = zealot_state;
  }
  config.ones = population.count_ones(*protocol_);
  PopulationFaultyStepper stepper{*this, session, rng, population, config};
  return RunDriver(TimePolicy::interaction_rounds(n))
      .run(stepper, rule, session, trajectory);
}

}  // namespace bitspread
