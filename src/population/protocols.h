// Concrete pairwise (population-protocol) dynamics.
#ifndef BITSPREAD_POPULATION_PROTOCOLS_H_
#define BITSPREAD_POPULATION_PROTOCOLS_H_

#include "population/engine.h"

namespace bitspread {

// Epidemic bit-dissemination with one extra "informed" bit (2 states per
// opinion): an informed agent stamps its opinion and informed-ness onto any
// partner. Spreads from the (informed) source in Theta(log n) parallel time
// — the textbook demonstration that ACTIVE communication trivializes the
// problem the paper proves hard under passive communication. NOT
// self-stabilizing: an adversary may plant falsely-"informed" agents with
// the wrong opinion (exposed as a constructor flag so experiments can show
// exactly that failure; the full machinery of Dudek & Kosowski [22] exists
// to repair it, at the cost the paper describes).
class EpidemicProtocol final : public PairwiseProtocol {
 public:
  // States: bit 0 = opinion, bit 1 = informed.
  static constexpr std::uint32_t kInformedBit = 2;

  std::uint32_t state_count() const noexcept override { return 4; }

  std::pair<std::uint32_t, std::uint32_t> interact(
      std::uint32_t initiator, std::uint32_t responder,
      Rng& rng) const override;

  Opinion opinion(std::uint32_t state) const noexcept override {
    return opinion_from(static_cast<int>(state & 1u));
  }
  std::uint32_t initial_state(Opinion opinion) const noexcept override {
    return static_cast<std::uint32_t>(to_int(opinion));  // Uninformed.
  }
  std::uint32_t source_state(Opinion correct) const noexcept override {
    return static_cast<std::uint32_t>(to_int(correct)) | kInformedBit;
  }

  std::string name() const override { return "epidemic(informed-bit)"; }
};

// The pairwise Voter: the initiator adopts the responder's opinion. The
// population-protocol rendering of Protocol 1 (passive-equivalent content:
// only the opinion is used), as a like-for-like baseline for the engine.
class PairwiseVoter final : public PairwiseProtocol {
 public:
  std::uint32_t state_count() const noexcept override { return 2; }

  std::pair<std::uint32_t, std::uint32_t> interact(
      std::uint32_t initiator, std::uint32_t responder,
      Rng& rng) const override;

  Opinion opinion(std::uint32_t state) const noexcept override {
    return opinion_from(static_cast<int>(state));
  }
  std::uint32_t initial_state(Opinion opinion) const noexcept override {
    return static_cast<std::uint32_t>(to_int(opinion));
  }
  std::uint32_t source_state(Opinion correct) const noexcept override {
    return static_cast<std::uint32_t>(to_int(correct));
  }

  std::string name() const override { return "pairwise-voter"; }
};

}  // namespace bitspread

#endif  // BITSPREAD_POPULATION_PROTOCOLS_H_
