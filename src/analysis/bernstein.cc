#include "analysis/bernstein.h"

#include <cassert>
#include <vector>

namespace bitspread {

double binomial_coefficient(std::uint32_t n, std::uint32_t k) noexcept {
  if (k > n) return 0.0;
  k = std::min(k, n - k);
  double result = 1.0;
  for (std::uint32_t i = 0; i < k; ++i) {
    result *= static_cast<double>(n - i);
    result /= static_cast<double>(i + 1);
  }
  return result;
}

Polynomial bernstein_basis(std::uint32_t k, std::uint32_t ell) {
  assert(k <= ell);
  // p^k * (1-p)^{l-k} expanded: coefficient of p^{k+j} is
  // C(l-k, j) (-1)^j, for j = 0..l-k; scaled by C(l,k).
  std::vector<double> coeffs(ell + 1, 0.0);
  const double scale = binomial_coefficient(ell, k);
  double sign = 1.0;
  for (std::uint32_t j = 0; j + k <= ell; ++j) {
    coeffs[k + j] = scale * sign * binomial_coefficient(ell - k, j);
    sign = -sign;
  }
  return Polynomial(std::move(coeffs));
}

Polynomial from_bernstein(std::span<const double> values) {
  assert(!values.empty());
  const auto ell = static_cast<std::uint32_t>(values.size() - 1);
  Polynomial result;
  for (std::uint32_t k = 0; k <= ell; ++k) {
    if (values[k] == 0.0) continue;
    result = result + bernstein_basis(k, ell) * values[k];
  }
  return result;
}

}  // namespace bitspread
