#include "analysis/mean_field.h"

#include <algorithm>
#include <cmath>

#include "analysis/bias.h"
#include "analysis/roots.h"

namespace bitspread {
namespace {
constexpr double kMarginalTolerance = 1e-9;
}  // namespace

std::string to_string(FixedPointStability stability) {
  switch (stability) {
    case FixedPointStability::kStable:
      return "stable";
    case FixedPointStability::kUnstable:
      return "unstable";
    case FixedPointStability::kMarginal:
      return "marginal";
  }
  return "unknown";
}

double MeanFieldMap::step(double p) const noexcept {
  const BiasFunction bias(*protocol_, n_);
  return std::clamp(p + bias(p), 0.0, 1.0);
}

std::vector<double> MeanFieldMap::orbit(double p0, int rounds) const {
  std::vector<double> result;
  result.reserve(static_cast<std::size_t>(rounds) + 1);
  result.push_back(p0);
  double p = p0;
  for (int t = 0; t < rounds; ++t) {
    p = step(p);
    result.push_back(p);
  }
  return result;
}

std::vector<FixedPoint> MeanFieldMap::fixed_points() const {
  const BiasFunction bias(*protocol_, n_);
  std::vector<FixedPoint> points;
  if (bias.is_identically_zero()) {
    for (const double p : {0.0, 0.5, 1.0}) {
      points.push_back({p, 0.0, FixedPointStability::kMarginal});
    }
    return points;
  }
  const Polynomial f = bias.to_polynomial();
  const Polynomial df = f.derivative();
  for (const double root : real_roots_in(f, 0.0, 1.0)) {
    FixedPoint fp;
    fp.p = root;
    fp.derivative = df(root);
    // Map slope is 1 + F'(p*): stable iff slope magnitude < 1, i.e.
    // F' in (-2, 0).
    const double slope = 1.0 + fp.derivative;
    if (std::abs(std::abs(slope) - 1.0) <= kMarginalTolerance) {
      fp.stability = FixedPointStability::kMarginal;
    } else if (std::abs(slope) < 1.0) {
      fp.stability = FixedPointStability::kStable;
    } else {
      fp.stability = FixedPointStability::kUnstable;
    }
    points.push_back(fp);
  }
  return points;
}

double MeanFieldMap::limit_from(double p0, int rounds) const {
  double p = p0;
  for (int t = 0; t < rounds; ++t) {
    const double next = step(p);
    if (std::abs(next - p) < 1e-14) return next;
    p = next;
  }
  return p;
}

}  // namespace bitspread
