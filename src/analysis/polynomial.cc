#include "analysis/polynomial.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

namespace bitspread {
namespace {
// Coefficients below this (relative to the largest) are treated as zero when
// trimming; keeps arithmetic on exactly-representable inputs exact.
constexpr double kTrimEpsilon = 0.0;
}  // namespace

Polynomial::Polynomial(std::vector<double> coefficients)
    : coeffs_(std::move(coefficients)) {
  trim();
}

Polynomial Polynomial::constant(double c) { return Polynomial({c}); }

Polynomial Polynomial::identity() { return Polynomial({0.0, 1.0}); }

void Polynomial::trim() {
  while (!coeffs_.empty() && std::abs(coeffs_.back()) <= kTrimEpsilon) {
    coeffs_.pop_back();
  }
}

double Polynomial::operator()(double x) const noexcept {
  double acc = 0.0;
  for (auto it = coeffs_.rbegin(); it != coeffs_.rend(); ++it) {
    acc = acc * x + *it;
  }
  return acc;
}

double Polynomial::max_abs_coefficient() const noexcept {
  double best = 0.0;
  for (const double c : coeffs_) best = std::max(best, std::abs(c));
  return best;
}

Polynomial Polynomial::derivative() const {
  if (coeffs_.size() <= 1) return Polynomial();
  std::vector<double> result(coeffs_.size() - 1);
  for (std::size_t i = 1; i < coeffs_.size(); ++i) {
    result[i - 1] = coeffs_[i] * static_cast<double>(i);
  }
  return Polynomial(std::move(result));
}

Polynomial Polynomial::operator+(const Polynomial& other) const {
  std::vector<double> result(std::max(coeffs_.size(), other.coeffs_.size()),
                             0.0);
  for (std::size_t i = 0; i < coeffs_.size(); ++i) result[i] += coeffs_[i];
  for (std::size_t i = 0; i < other.coeffs_.size(); ++i) {
    result[i] += other.coeffs_[i];
  }
  return Polynomial(std::move(result));
}

Polynomial Polynomial::operator-(const Polynomial& other) const {
  return *this + other * -1.0;
}

Polynomial Polynomial::operator*(const Polynomial& other) const {
  if (is_zero() || other.is_zero()) return Polynomial();
  std::vector<double> result(coeffs_.size() + other.coeffs_.size() - 1, 0.0);
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    for (std::size_t j = 0; j < other.coeffs_.size(); ++j) {
      result[i + j] += coeffs_[i] * other.coeffs_[j];
    }
  }
  return Polynomial(std::move(result));
}

Polynomial Polynomial::operator*(double scalar) const {
  std::vector<double> result(coeffs_);
  for (double& c : result) c *= scalar;
  return Polynomial(std::move(result));
}

std::string Polynomial::to_string() const {
  if (is_zero()) return "0";
  std::ostringstream out;
  bool first = true;
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    const double c = coeffs_[i];
    if (c == 0.0) continue;
    if (!first) out << (c >= 0 ? " + " : " - ");
    if (first && c < 0) out << "-";
    first = false;
    out << std::abs(c);
    if (i >= 1) out << "*p";
    if (i >= 2) out << "^" << i;
  }
  return out.str();
}

}  // namespace bitspread
