// Dense univariate polynomials over double, power basis.
//
// The paper's central device is that the bias F_n of any constant-sample
// protocol is a polynomial of degree <= l+1, so it has a bounded number of
// roots in [0,1]; this class carries that analysis (construction in bias.h,
// root isolation in roots.h).
#ifndef BITSPREAD_ANALYSIS_POLYNOMIAL_H_
#define BITSPREAD_ANALYSIS_POLYNOMIAL_H_

#include <span>
#include <string>
#include <vector>

namespace bitspread {

class Polynomial {
 public:
  // The zero polynomial.
  Polynomial() = default;

  // coefficients[i] is the coefficient of x^i; trailing (near-)zeros trimmed.
  explicit Polynomial(std::vector<double> coefficients);

  static Polynomial constant(double c);
  static Polynomial identity();  // x

  // Horner evaluation.
  double operator()(double x) const noexcept;

  // Degree; -1 for the zero polynomial.
  int degree() const noexcept { return static_cast<int>(coeffs_.size()) - 1; }
  bool is_zero() const noexcept { return coeffs_.empty(); }

  double coefficient(std::size_t i) const noexcept {
    return i < coeffs_.size() ? coeffs_[i] : 0.0;
  }
  std::span<const double> coefficients() const noexcept { return coeffs_; }
  double max_abs_coefficient() const noexcept;

  Polynomial derivative() const;

  Polynomial operator+(const Polynomial& other) const;
  Polynomial operator-(const Polynomial& other) const;
  Polynomial operator*(const Polynomial& other) const;
  Polynomial operator*(double scalar) const;

  std::string to_string() const;

  friend bool operator==(const Polynomial&, const Polynomial&) = default;

 private:
  void trim();

  std::vector<double> coeffs_;
};

}  // namespace bitspread

#endif  // BITSPREAD_ANALYSIS_POLYNOMIAL_H_
