// Closed-form probability bounds used by the paper (Appendix A and §2), as
// evaluable functions, so experiments can print "bound vs measured" columns.
#ifndef BITSPREAD_ANALYSIS_BOUNDS_H_
#define BITSPREAD_ANALYSIS_BOUNDS_H_

#include <cstdint>

namespace bitspread {

// Hoeffding (Theorem 15): P(X <= mu - delta), P(X >= mu + delta)
// <= exp(-2 delta^2 / n) for a sum of n independent {0,1} variables.
double hoeffding_tail(std::uint64_t n, double delta) noexcept;

// Proposition 4's constant y(c, l) = 1 - (1-c)^{l+1} / 2: from any x <= c*n,
// the next round stays below y*n except with probability exp(-2 sqrt(n)).
double proposition4_y(double c, std::uint32_t ell) noexcept;

// The exp(-2 sqrt(n)) failure probability of Proposition 4.
double proposition4_failure(std::uint64_t n) noexcept;

// Azuma-Hoeffding with rare large jumps (Theorem 16):
// P(|X_T - X_0| > delta) <= 2 exp(-delta^2 / (2 T c^2)) + p, when each
// increment exceeds c with total probability at most p over T steps.
double azuma_tail(std::uint64_t T, double c, double delta, double p) noexcept;

// The crossing-time floor of Theorem 6: T = n^{1 - epsilon}.
double theorem6_crossing_floor(std::uint64_t n, double epsilon) noexcept;

}  // namespace bitspread

#endif  // BITSPREAD_ANALYSIS_BOUNDS_H_
