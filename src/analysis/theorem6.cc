#include "analysis/theorem6.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "analysis/bias.h"
#include "analysis/bounds.h"

namespace bitspread {

std::string Theorem6Report::describe() const {
  std::ostringstream out;
  out << "Theorem6Report{drift_ok=" << (drift_ok ? "yes" : "no")
      << ", worst_drift=" << worst_directional_drift
      << ", jump_bound=" << jump_probability_bound
      << ", deviation<=" << deviation_threshold
      << " w.p. >= " << 1.0 - deviation_probability_bound
      << ", floor=" << predicted_floor << "}";
  return out.str();
}

Theorem6Report check_theorem6(const MemorylessProtocol& protocol,
                              std::uint64_t n, const CaseAnalysis& analysis,
                              double epsilon, int grid_points) {
  Theorem6Report report;
  const double nd = static_cast<double>(n);
  const BiasFunction bias(protocol, n);

  // (i) Directional drift over [a1, a3]: for an upward crossing we need a
  // SUPERmartingale (n*F <= 0), for a downward crossing a SUBmartingale
  // (n*F >= 0). Proposition 5 grants +-1 slack either way.
  double worst = -std::numeric_limits<double>::infinity();
  for (int i = 0; i < grid_points; ++i) {
    const double t = static_cast<double>(i) / (grid_points - 1);
    const double p = analysis.a1 + t * (analysis.a3 - analysis.a1);
    const double drift = nd * bias(p);
    worst = std::max(worst, analysis.upward ? drift : -drift);
  }
  report.worst_directional_drift = worst;
  // F has constant sign on the open interval; at finite n the grid can graze
  // a root, so allow the Proposition 5 slack of 1.
  report.drift_ok = worst <= 1.0;

  // (ii) No jump across the buffer. Upward: Proposition 4 with c = a1 gives
  // y(a1, l); the pre-chosen a2 may differ from y, so report the weaker of
  // the Prop-4 bound and the direct Hoeffding bound on exceeding a2*n.
  const std::uint32_t ell = protocol.sample_size(n);
  const double prop4 = proposition4_failure(n);
  const double y = proposition4_y(analysis.a1, ell);
  double jump = prop4;
  if (analysis.upward && y > analysis.a2) {
    // Prop 4 only caps the jump at y*n > a2*n; fall back to Hoeffding on the
    // one-round mean: from x <= a1*n, E[X'] <= x + nF + 1 <= a1*n + 1, so
    // exceeding a2*n deviates by ~(a2-a1)*n.
    jump = hoeffding_tail(n, (analysis.a2 - analysis.a1) * nd - 1.0);
  }
  if (!analysis.upward) {
    // Downward version (Corollary 10 assumption (ii)): from x >= a3*n the
    // drift keeps E[X'] >= a3*n - 1, so falling below a2*n deviates by
    // ~(a3-a2)*n; Hoeffding.
    jump = hoeffding_tail(n, (analysis.a3 - analysis.a2) * nd - 1.0);
  }
  report.jump_probability_bound = std::min(jump, 1.0);

  // (iii) One-round concentration: X_{t+1} | X_t is a sum of n independent
  // Bernoulli variables, so Hoeffding with delta = n^{1/2 + eps/4}.
  report.deviation_threshold = std::pow(nd, 0.5 + epsilon / 4.0);
  report.deviation_probability_bound = std::min(
      1.0, 2.0 * std::exp(-2.0 * std::pow(nd, epsilon / 2.0)));

  report.predicted_floor = theorem6_crossing_floor(n, epsilon);
  return report;
}

}  // namespace bitspread
