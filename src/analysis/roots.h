// Real-root isolation on an interval.
//
// Strategy: recursively find the critical points (roots of the derivative),
// between which the polynomial is monotone, then bisect each sign-changing
// monotone piece. Even-multiplicity "touch" roots are caught at critical
// points with near-zero residual. Robust for the low degrees (<= l+1) the
// bias analysis produces.
#ifndef BITSPREAD_ANALYSIS_ROOTS_H_
#define BITSPREAD_ANALYSIS_ROOTS_H_

#include <vector>

#include "analysis/polynomial.h"

namespace bitspread {

struct RootOptions {
  double x_tolerance = 1e-12;       // Bisection stopping width.
  double residual_scale = 1e-11;    // |P(x)| <= scale * max|coeff| counts as 0.
  double merge_distance = 1e-9;     // Near-duplicate roots are merged.
};

// Sorted distinct real roots of `p` in [lo, hi]. The zero polynomial returns
// an empty vector (callers must handle F == 0 separately, as the paper does
// via Lemma 11).
std::vector<double> real_roots_in(const Polynomial& p, double lo, double hi,
                                  const RootOptions& options = {});

// Maximum of |p| on [lo, hi] (checks endpoints and critical points).
double max_abs_on(const Polynomial& p, double lo, double hi);

// Sign of p at the midpoint of (lo, hi), after stepping away from roots:
// +1, -1, or 0 if p vanishes identically (numerically) on the interval.
int sign_on_interval(const Polynomial& p, double lo, double hi);

}  // namespace bitspread

#endif  // BITSPREAD_ANALYSIS_ROOTS_H_
