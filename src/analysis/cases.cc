#include "analysis/cases.h"

#include <algorithm>

#include "analysis/roots.h"

namespace bitspread {

std::string to_string(BiasCase c) {
  switch (c) {
    case BiasCase::kZeroBias:
      return "zero-bias";
    case BiasCase::kCase1:
      return "case-1 (F<0)";
    case BiasCase::kCase2:
      return "case-2 (F>0)";
  }
  return "unknown";
}

CaseAnalysis classify_bias(const MemorylessProtocol& protocol,
                           std::uint64_t n) {
  CaseAnalysis out;
  BiasFunction bias(protocol, n);

  if (bias.is_identically_zero()) {
    // Lemma 11 (e.g. Voter): F == 0 means zero drift everywhere; the chain is
    // a martingale and crossing any constant-length interval takes ~n^{1-eps}
    // rounds. The paper picks a1=1/4, a2=1/2, a3=3/4, z=1, X0=(a2+a3)/2*n.
    out.bias_case = BiasCase::kZeroBias;
    return out;
  }

  const Polynomial f = bias.to_polynomial();
  out.roots = real_roots_in(f, 0.0, 1.0);

  // Largest root strictly below 1: the interval (r*, 1) is root-free, so F
  // has constant sign there (this mirrors the paper's (r^(k0-1), r^(k0))
  // after taking the n -> infinity limit of the root vector).
  double r_star = 0.0;
  for (const double r : out.roots) {
    if (r < 1.0 - 1e-9) r_star = std::max(r_star, r);
  }
  out.interval_lo = r_star;
  out.interval_hi = 1.0;

  const int sign = sign_on_interval(f, r_star, 1.0);
  const double width = 1.0 - r_star;
  out.a1 = r_star + 0.25 * width;
  out.a2 = r_star + 0.50 * width;
  out.a3 = r_star + 0.75 * width;

  if (sign < 0) {
    // Case 1 (Figure 2): the protocol pushes the ones-fraction down on
    // (r*, 1), so with correct opinion 1 the climb past a3*n is slow.
    // (The proof's a2 comes from Proposition 4; for measurement any
    // a2 in (a1, a3) works, and the evenly spaced choice keeps the watched
    // interval non-degenerate at finite n.)
    out.bias_case = BiasCase::kCase1;
    out.slow_correct = Opinion::kOne;
    out.x0_fraction = 0.5 * (out.a2 + out.a3);
    out.upward = true;
  } else if (sign > 0) {
    // Case 2 (Figure 3): pushes up on (r*, 1), so with correct opinion 0 the
    // descent below a1*n is slow (Corollary 10 starts at (a1+a2)/2 * n).
    out.bias_case = BiasCase::kCase2;
    out.slow_correct = Opinion::kZero;
    out.x0_fraction = 0.5 * (out.a1 + out.a2);
    out.upward = false;
  } else {
    // Numerically zero on the interval (F vanishes there although not
    // globally): martingale behavior locally; treat like the Lemma 11 case
    // but keep the computed interval.
    out.bias_case = BiasCase::kZeroBias;
    out.slow_correct = Opinion::kOne;
    out.x0_fraction = 0.5 * (out.a2 + out.a3);
    out.upward = true;
  }
  return out;
}

}  // namespace bitspread
