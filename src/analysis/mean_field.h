// Mean-field (n -> infinity) analysis of a memory-less protocol.
//
// Dropping the O(1/n) source term from Proposition 5 gives the deterministic
// recursion p_{t+1} = p_t + F_n(p_t) = p*P_1(p) + (1-p)*P_0(p). Its fixed
// points are exactly the roots of F_n, and their stability decides the
// finite-n behavior: a stable interior fixed point is the "trap" that makes
// constant-l protocols slow (minority at 1/2), while an unstable one is a
// watershed the stochastic chain tips off of (3-majority at 1/2). These
// utilities find the fixed points, classify their stability from F_n', and
// iterate the recursion (the deterministic skeleton of every trajectory the
// engines produce).
#ifndef BITSPREAD_ANALYSIS_MEAN_FIELD_H_
#define BITSPREAD_ANALYSIS_MEAN_FIELD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/protocol.h"

namespace bitspread {

enum class FixedPointStability {
  kStable,      // |1 + F'(p*)| < 1: attracts a neighborhood.
  kUnstable,    // |1 + F'(p*)| > 1: repels.
  kMarginal,    // |1 + F'(p*)| = 1 within tolerance (e.g. Voter everywhere).
};

std::string to_string(FixedPointStability stability);

struct FixedPoint {
  double p = 0.0;
  double derivative = 0.0;  // F_n'(p*): the map's slope is 1 + derivative.
  FixedPointStability stability = FixedPointStability::kMarginal;
};

class MeanFieldMap {
 public:
  MeanFieldMap(const MemorylessProtocol& protocol, std::uint64_t n) noexcept
      : protocol_(&protocol), n_(n) {}

  // One application: p -> p + F_n(p), clamped to [0,1].
  double step(double p) const noexcept;

  // Iterates `rounds` times from p0 and returns the orbit (p0 included).
  std::vector<double> orbit(double p0, int rounds) const;

  // Fixed points = roots of F_n in [0,1], with stability from F_n'.
  // Requires the polynomial regime (constant l <= 64); a protocol with
  // F_n == 0 (Voter) returns a single marginal sentinel at p = 0.5 plus the
  // endpoints, since every point is fixed.
  std::vector<FixedPoint> fixed_points() const;

  // The limit of the orbit from p0 (nullopt-free: returns the last orbit
  // point after `rounds` iterations; converged() checks the residual).
  double limit_from(double p0, int rounds = 10000) const;

 private:
  const MemorylessProtocol* protocol_;
  std::uint64_t n_;
};

}  // namespace bitspread

#endif  // BITSPREAD_ANALYSIS_MEAN_FIELD_H_
