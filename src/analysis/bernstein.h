// Bernstein-basis utilities.
//
// Eq. 4 expresses adoption probabilities in the Bernstein basis
// B_{k,l}(p) = C(l,k) p^k (1-p)^{l-k}; the bias polynomial F_n is built by
// converting such expansions to the power basis.
#ifndef BITSPREAD_ANALYSIS_BERNSTEIN_H_
#define BITSPREAD_ANALYSIS_BERNSTEIN_H_

#include <cstdint>
#include <span>

#include "analysis/polynomial.h"

namespace bitspread {

// C(n, k) in double precision (exact for the small n used in analysis).
double binomial_coefficient(std::uint32_t n, std::uint32_t k) noexcept;

// The basis polynomial B_{k,l}(p) = C(l,k) p^k (1-p)^{l-k} in power form.
Polynomial bernstein_basis(std::uint32_t k, std::uint32_t ell);

// sum_k values[k] * B_{k,l}(p), with l = values.size() - 1.
Polynomial from_bernstein(std::span<const double> values);

}  // namespace bitspread

#endif  // BITSPREAD_ANALYSIS_BERNSTEIN_H_
