#include "analysis/roots.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bitspread {
namespace {

double bisect(const Polynomial& p, double a, double b, double fa,
              double x_tol) {
  // Invariant: sign(p(a)) != sign(p(b)).
  for (int iter = 0; iter < 200 && (b - a) > x_tol; ++iter) {
    const double mid = 0.5 * (a + b);
    const double fm = p(mid);
    if (fm == 0.0) return mid;
    if ((fa < 0.0) == (fm < 0.0)) {
      a = mid;
      fa = fm;
    } else {
      b = mid;
    }
  }
  return 0.5 * (a + b);
}

void merge_push(std::vector<double>& roots, double x, double merge_distance) {
  if (!roots.empty() && std::abs(roots.back() - x) <= merge_distance) return;
  roots.push_back(x);
}

}  // namespace

std::vector<double> real_roots_in(const Polynomial& p, double lo, double hi,
                                  const RootOptions& options) {
  std::vector<double> roots;
  if (p.is_zero() || lo > hi) return roots;
  const int degree = p.degree();
  if (degree == 0) return roots;

  const double residual_tol = options.residual_scale * p.max_abs_coefficient();

  if (degree == 1) {
    const double root = -p.coefficient(0) / p.coefficient(1);
    if (root >= lo - options.x_tolerance && root <= hi + options.x_tolerance) {
      roots.push_back(std::clamp(root, lo, hi));
    }
    return roots;
  }

  // Breakpoints: interval ends plus the derivative's roots (between which p
  // is monotone).
  std::vector<double> breakpoints;
  breakpoints.push_back(lo);
  for (const double c : real_roots_in(p.derivative(), lo, hi, options)) {
    merge_push(breakpoints, c, options.merge_distance);
  }
  merge_push(breakpoints, hi, options.merge_distance);
  if (breakpoints.back() < hi) breakpoints.push_back(hi);

  for (std::size_t i = 0; i + 1 < breakpoints.size(); ++i) {
    const double a = breakpoints[i];
    const double b = breakpoints[i + 1];
    const double fa = p(a);
    const double fb = p(b);
    if (std::abs(fa) <= residual_tol) {
      merge_push(roots, a, options.merge_distance);
    }
    if ((fa < 0.0) != (fb < 0.0) && std::abs(fa) > residual_tol &&
        std::abs(fb) > residual_tol) {
      merge_push(roots, bisect(p, a, b, fa, options.x_tolerance),
                 options.merge_distance);
    }
  }
  if (std::abs(p(hi)) <= residual_tol) {
    merge_push(roots, hi, options.merge_distance);
  }
  std::sort(roots.begin(), roots.end());
  return roots;
}

double max_abs_on(const Polynomial& p, double lo, double hi) {
  if (p.is_zero()) return 0.0;
  double best = std::max(std::abs(p(lo)), std::abs(p(hi)));
  for (const double c : real_roots_in(p.derivative(), lo, hi)) {
    best = std::max(best, std::abs(p(c)));
  }
  return best;
}

int sign_on_interval(const Polynomial& p, double lo, double hi) {
  if (p.is_zero()) return 0;
  const double residual_tol = 1e-11 * p.max_abs_coefficient();
  // Probe a few interior points; the first clearly-nonzero value decides.
  for (const double t : {0.5, 0.25, 0.75, 0.125, 0.875}) {
    const double x = lo + t * (hi - lo);
    const double value = p(x);
    if (std::abs(value) > residual_tol) return value > 0.0 ? 1 : -1;
  }
  return 0;
}

}  // namespace bitspread
