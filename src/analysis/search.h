// Adversarial protocol search: optimize over the space Theorem 1 quantifies
// over.
//
// The lower bound holds for EVERY memory-less protocol with constant l. The
// strongest empirical attack on such a claim is to actively SEARCH the
// protocol space for a counterexample: random sampling plus hill climbing
// over g-tables (Prop. 3 pinned), scored by the exact worst-case expected
// convergence time at a calibration size (dense-chain solve, so the score
// has no sampling noise to mislead the climber). bench_protocol_search
// (E19) then re-measures the best-found protocol across n and shows its
// scaling is still (at least) almost-linear.
#ifndef BITSPREAD_ANALYSIS_SEARCH_H_
#define BITSPREAD_ANALYSIS_SEARCH_H_

#include <cstdint>
#include <vector>

#include "core/protocol.h"
#include "protocols/custom.h"
#include "random/rng.h"

namespace bitspread {

// max over z in {0,1} and over initial states x of the exact expected
// convergence time (rounds) at population size n. Requires Prop. 3
// compliance (the target must be absorbing) and small n (O(n^3) solve).
double worst_case_expected_rounds(const MemorylessProtocol& protocol,
                                  std::uint64_t n);

struct ProtocolSearchResult {
  std::vector<double> g_zero;       // Best tables found.
  std::vector<double> g_one;
  double score = 0.0;               // worst_case_expected_rounds at n.
  int candidates_evaluated = 0;

  CustomProtocol protocol(const std::string& label = "searched") const {
    return CustomProtocol(g_zero, g_one, label);
  }
};

// Random search (`candidates` fresh Prop-3-compliant tables) followed by
// `climb_steps` of single-entry hill climbing (perturb one g value, keep if
// the exact score improves). Deterministic given `rng`'s state.
ProtocolSearchResult search_fastest_protocol(std::uint32_t ell,
                                             std::uint64_t n, int candidates,
                                             int climb_steps, Rng& rng);

}  // namespace bitspread

#endif  // BITSPREAD_ANALYSIS_SEARCH_H_
