#include "analysis/search.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include <cmath>

#include "markov/absorption.h"
#include "markov/dense_chain.h"
#include "markov/worst_case.h"

namespace bitspread {

double worst_case_expected_rounds(const MemorylessProtocol& protocol,
                                  std::uint64_t n) {
  assert(protocol.maintains_consensus(n));
  double worst = 0.0;
  for (const Opinion z : {Opinion::kZero, Opinion::kOne}) {
    const DenseParallelChain chain(protocol, n, z);
    const auto times = expected_convergence_rounds(chain);
    // Validate the solve by substituting back into the balance equations:
    // near-reducible chains (expected times beyond ~1/eps_machine) make the
    // system catastrophically ill-conditioned, and an optimizer scoring on
    // the raw solve will happily exploit the resulting garbage. A protocol
    // whose solution does not verify gets an infinite score.
    const std::size_t target =
        chain.correct_consensus_state() - chain.min_state();
    for (std::size_t i = 0; i < times.size(); ++i) {
      if (!std::isfinite(times[i]) || times[i] < 0.0) {
        return std::numeric_limits<double>::infinity();
      }
      if (i == target) continue;
      const auto row = chain.transition_row(chain.min_state() + i);
      double expected = 1.0;
      for (std::size_t j = 0; j < row.size(); ++j) {
        if (j != target) expected += row[j] * times[j];
      }
      const double residual =
          std::abs(times[i] - expected) / std::max(1.0, std::abs(times[i]));
      if (residual > 1e-6) {
        return std::numeric_limits<double>::infinity();
      }
      worst = std::max(worst, times[i]);
    }
  }
  return worst;
}

ProtocolSearchResult search_fastest_protocol(std::uint32_t ell,
                                             std::uint64_t n, int candidates,
                                             int climb_steps, Rng& rng) {
  ProtocolSearchResult best;
  best.score = std::numeric_limits<double>::infinity();

  const auto evaluate = [&](const std::vector<double>& g0,
                            const std::vector<double>& g1) {
    const CustomProtocol candidate(g0, g1, "candidate");
    ++best.candidates_evaluated;
    return worst_case_expected_rounds(candidate, n);
  };

  // Phase 1: random sampling.
  for (int c = 0; c < candidates; ++c) {
    std::vector<double> g0(ell + 1), g1(ell + 1);
    for (auto& v : g0) v = rng.next_double();
    for (auto& v : g1) v = rng.next_double();
    g0[0] = 0.0;   // Proposition 3.
    g1[ell] = 1.0;
    const double score = evaluate(g0, g1);
    if (score < best.score) {
      best.score = score;
      best.g_zero = g0;
      best.g_one = g1;
    }
  }

  // Phase 2: hill climbing on single entries (Prop.-3 entries stay pinned).
  for (int step = 0; step < climb_steps; ++step) {
    std::vector<double> g0 = best.g_zero;
    std::vector<double> g1 = best.g_one;
    const bool touch_one = rng.bernoulli(0.5);
    auto& table = touch_one ? g1 : g0;
    const std::uint32_t lo = touch_one ? 0 : 1;           // g0[0] pinned.
    const std::uint32_t hi = touch_one ? ell - 1 : ell;   // g1[l] pinned.
    if (hi < lo) continue;
    const auto k =
        static_cast<std::uint32_t>(lo + rng.next_below(hi - lo + 1));
    const double delta = rng.next_in(-0.25, 0.25);
    table[k] = std::clamp(table[k] + delta, 0.0, 1.0);
    const double score = evaluate(g0, g1);
    if (score < best.score) {
      best.score = score;
      best.g_zero = std::move(g0);
      best.g_one = std::move(g1);
    }
  }
  return best;
}

}  // namespace bitspread
