// Case classification for the Theorem 12 argument (§4.2, Figures 2 & 3).
//
// Given a protocol and n, inspect the bias polynomial F_n on [0,1]:
//   * F_n == 0  : the Lemma 11 regime (Voter-like); slow with z = 1 from
//                 X_0 = 5n/8 using a1 = 1/4, a2 = 1/2, a3 = 3/4.
//   * Case 1    : F_n < 0 on the last root-free interval before 1 — the
//                 protocol pushes the ones-fraction DOWN there, so with z = 1
//                 the crossing toward the all-ones consensus is slow.
//   * Case 2    : F_n > 0 there — pushes UP, so with z = 0 the crossing
//                 toward all-zeros is slow.
// The classification also packages the interval constants (a1, a2, a3) and
// starting fraction X_0/n the proof prescribes, ready to hand to a simulation
// (bench_thm1_lower_bound does exactly that).
#ifndef BITSPREAD_ANALYSIS_CASES_H_
#define BITSPREAD_ANALYSIS_CASES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/bias.h"
#include "core/opinion.h"
#include "core/protocol.h"

namespace bitspread {

enum class BiasCase {
  kZeroBias,  // F_n == 0 (Lemma 11).
  kCase1,     // F_n < 0 on the chosen interval (Figure 2).
  kCase2,     // F_n > 0 on the chosen interval (Figure 3).
};

std::string to_string(BiasCase c);

struct CaseAnalysis {
  BiasCase bias_case = BiasCase::kZeroBias;
  std::vector<double> roots;  // Distinct roots of F_n in [0,1].
  // The root-free interval the argument works on.
  double interval_lo = 0.0;
  double interval_hi = 1.0;
  // Theorem 6 / Corollary 10 parameters.
  double a1 = 0.25;
  double a2 = 0.5;
  double a3 = 0.75;
  // The adversarial choice: correct opinion and starting fraction for which
  // the crossing is provably slow.
  Opinion slow_correct = Opinion::kOne;
  double x0_fraction = 0.625;
  // Whether the crossing is measured upward (Case 1 / zero bias: X must rise
  // past a3*n) or downward (Case 2: X must fall below a1*n).
  bool upward = true;
};

// Requires a constant-sample protocol with l <= 64 (the polynomial regime).
CaseAnalysis classify_bias(const MemorylessProtocol& protocol,
                           std::uint64_t n);

}  // namespace bitspread

#endif  // BITSPREAD_ANALYSIS_CASES_H_
