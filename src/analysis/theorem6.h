// Numerical verification of the Theorem 6 / Corollary 10 assumptions for a
// concrete (protocol, n, interval) triple, plus the predicted crossing floor.
//
// Theorem 6 needs:
//   (i)   supermartingale drift on the interval:
//           E[X_{t+1} | X_t = x] <= x + 1  for x/n in [a1, a3]
//         (downward version: >= x - 1), which by Proposition 5 reduces to
//         the sign of n*F_n on the interval;
//   (ii)  no jump over [a1*n, a2*n] from outside, except with probability
//         exp(-n^{Omega(1)}) — instantiated through Proposition 4 (upward)
//         or Hoeffding (downward);
//   (iii) one-round concentration |X_{t+1} - E[X_{t+1}|X_t]| <= n^{1/2+eps/4}
//         except with probability 2 exp(-2 n^{eps/2}) — Hoeffding again.
// When all hold, crossing past a3*n (resp. below a1*n) from X_0 in the middle
// takes at least n^{1-eps} rounds w.h.p.
#ifndef BITSPREAD_ANALYSIS_THEOREM6_H_
#define BITSPREAD_ANALYSIS_THEOREM6_H_

#include <cstdint>
#include <string>

#include "analysis/cases.h"
#include "core/protocol.h"

namespace bitspread {

struct Theorem6Report {
  // (i): the worst (most escape-ward) drift n*F_n(x/n) over the interval,
  // and whether it satisfies the supermartingale condition with the +-1
  // Proposition 5 slack.
  double worst_directional_drift = 0.0;
  bool drift_ok = false;

  // (ii): probability bound on jumping the buffer [a1, a2] in one round.
  double jump_probability_bound = 1.0;

  // (iii): the deviation threshold n^{1/2 + eps/4} and its probability bound.
  double deviation_threshold = 0.0;
  double deviation_probability_bound = 1.0;

  // Predicted floor n^{1-eps} on the crossing time (valid when drift_ok).
  double predicted_floor = 0.0;

  bool applicable() const noexcept { return drift_ok; }
  std::string describe() const;
};

// `analysis` supplies the interval, direction, and adversarial z; `epsilon`
// is the exponent slack of Theorem 6. Drift is checked on a grid of
// `grid_points` interval positions (plus exact polynomial extrema when the
// sample size is small).
Theorem6Report check_theorem6(const MemorylessProtocol& protocol,
                              std::uint64_t n, const CaseAnalysis& analysis,
                              double epsilon, int grid_points = 2001);

}  // namespace bitspread

#endif  // BITSPREAD_ANALYSIS_THEOREM6_H_
