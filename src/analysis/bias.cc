#include "analysis/bias.h"

#include <cassert>

#include "analysis/bernstein.h"
#include "analysis/roots.h"

namespace bitspread {

double BiasFunction::operator()(double p) const noexcept {
  const double p1 = protocol_->aggregate_adoption(Opinion::kOne, p, n_);
  const double p0 = protocol_->aggregate_adoption(Opinion::kZero, p, n_);
  return -p + p * p1 + (1.0 - p) * p0;
}

Polynomial BiasFunction::to_polynomial() const {
  const std::uint32_t ell = this->ell();
  assert(ell <= 64 && "polynomial bias analysis is for small sample sizes");
  std::vector<double> g0(ell + 1), g1(ell + 1);
  for (std::uint32_t k = 0; k <= ell; ++k) {
    g0[k] = protocol_->g(Opinion::kZero, k, ell, n_);
    g1[k] = protocol_->g(Opinion::kOne, k, ell, n_);
  }
  const Polynomial p0 = from_bernstein(g0);
  const Polynomial p1 = from_bernstein(g1);
  const Polynomial x = Polynomial::identity();
  const Polynomial one_minus_x = Polynomial::constant(1.0) - x;
  return x * p1 + one_minus_x * p0 - x;
}

std::vector<double> BiasFunction::roots() const {
  return real_roots_in(to_polynomial(), 0.0, 1.0);
}

bool BiasFunction::is_identically_zero() const {
  const Polynomial f = to_polynomial();
  // Tolerate round-off from the Bernstein conversion: compare against the
  // scale of the conversion's intermediate coefficients (~C(l, l/2)).
  const std::uint32_t ell = this->ell();
  const double scale = binomial_coefficient(ell + 1, (ell + 1) / 2);
  return f.max_abs_coefficient() <= 1e-12 * scale;
}

}  // namespace bitspread
