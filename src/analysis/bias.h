// The bias function F_n of a protocol (paper Eq. 3):
//
//   F_n(p) = -p + sum_k C(l,k) p^k (1-p)^{l-k} (p g^[1](k) + (1-p) g^[0](k))
//          = -p + p P_1(p) + (1-p) P_0(p).
//
// F_n(p) measures the protocol's expected one-round push on the fraction of
// ones: E[X_{t+1}/n | X_t/n = p] = p + F_n(p) up to a +-1/n source term
// (Proposition 5). As a polynomial of degree <= l+1 it has finitely many
// roots in [0,1]; the sign of F_n between consecutive roots decides where the
// dynamics is slow (the whole of §4).
#ifndef BITSPREAD_ANALYSIS_BIAS_H_
#define BITSPREAD_ANALYSIS_BIAS_H_

#include <cstdint>
#include <vector>

#include "analysis/polynomial.h"
#include "core/protocol.h"

namespace bitspread {

class BiasFunction {
 public:
  BiasFunction(const MemorylessProtocol& protocol, std::uint64_t n) noexcept
      : protocol_(&protocol), n_(n) {}

  // Numeric evaluation via the protocol's aggregate_adoption (works for any
  // sample size, including the sqrt(n log n) regime).
  double operator()(double p) const noexcept;

  // Exact power-basis polynomial, built from the g tables through the
  // Bernstein conversion. Intended for small l (degree l+1); the analysis
  // code asserts l <= 64.
  Polynomial to_polynomial() const;

  // Sorted distinct roots of F_n in [0,1]. For a Proposition-3-compliant
  // protocol, 0 and 1 are always among them. Empty when F_n == 0 (Voter).
  std::vector<double> roots() const;

  bool is_identically_zero() const;

  std::uint32_t ell() const noexcept { return protocol_->sample_size(n_); }
  std::uint64_t n() const noexcept { return n_; }
  const MemorylessProtocol& protocol() const noexcept { return *protocol_; }

 private:
  const MemorylessProtocol* protocol_;
  std::uint64_t n_;
};

}  // namespace bitspread

#endif  // BITSPREAD_ANALYSIS_BIAS_H_
