#include "analysis/bounds.h"

#include <algorithm>
#include <cmath>

namespace bitspread {

double hoeffding_tail(std::uint64_t n, double delta) noexcept {
  if (n == 0) return 1.0;
  return std::exp(-2.0 * delta * delta / static_cast<double>(n));
}

double proposition4_y(double c, std::uint32_t ell) noexcept {
  c = std::clamp(c, 0.0, 1.0);
  const double a = std::pow(1.0 - c, static_cast<double>(ell) + 1.0);
  return 1.0 - a / 2.0;
}

double proposition4_failure(std::uint64_t n) noexcept {
  return std::exp(-2.0 * std::sqrt(static_cast<double>(n)));
}

double azuma_tail(std::uint64_t T, double c, double delta, double p) noexcept {
  if (T == 0 || c <= 0.0) return p;
  const double exponent =
      delta * delta / (2.0 * static_cast<double>(T) * c * c);
  return std::min(1.0, 2.0 * std::exp(-exponent) + p);
}

double theorem6_crossing_floor(std::uint64_t n, double epsilon) noexcept {
  return std::pow(static_cast<double>(n), 1.0 - epsilon);
}

}  // namespace bitspread
