// Concrete multi-opinion dynamics: the k-opinion Voter and Minority.
#ifndef BITSPREAD_MULTI_PROTOCOLS_H_
#define BITSPREAD_MULTI_PROTOCOLS_H_

#include "multi/protocol.h"

namespace bitspread {

// Adopt the opinion of one uniformly random sample: P(next = j) = k_j / l.
// The straight generalization of Protocol 1.
class MultiVoter final : public MultiOpinionProtocol {
 public:
  explicit MultiVoter(std::uint32_t opinion_count,
                      std::uint32_t ell = 1) noexcept
      : MultiOpinionProtocol(opinion_count,
                             SampleSizePolicy::constant(ell)) {}

  void adoption_distribution(std::uint32_t own,
                             std::span<const std::uint32_t> histogram,
                             std::uint32_t ell, std::uint64_t n,
                             std::span<double> out) const override;

  std::string name() const override;
};

// Adopt the rarest opinion PRESENT in the sample (ties broken u.a.r.);
// a unanimous sample is adopted as-is. Restricting to two active opinions
// recovers Protocol 2 exactly (the tie at k = l/2 becomes the coin flip).
class MultiMinority final : public MultiOpinionProtocol {
 public:
  explicit MultiMinority(std::uint32_t opinion_count,
                         SampleSizePolicy policy) noexcept
      : MultiOpinionProtocol(opinion_count, policy) {}
  MultiMinority(std::uint32_t opinion_count, std::uint32_t ell) noexcept
      : MultiMinority(opinion_count, SampleSizePolicy::constant(ell)) {}

  void adoption_distribution(std::uint32_t own,
                             std::span<const std::uint32_t> histogram,
                             std::uint32_t ell, std::uint64_t n,
                             std::span<double> out) const override;

  std::string name() const override;
};

}  // namespace bitspread

#endif  // BITSPREAD_MULTI_PROTOCOLS_H_
