#include "multi/configuration.h"

#include <cassert>
#include <sstream>

namespace bitspread {

std::string MultiConfiguration::describe() const {
  std::ostringstream out;
  out << "MultiConfiguration{counts=[";
  for (std::size_t j = 0; j < counts.size(); ++j) {
    out << (j == 0 ? "" : ",") << counts[j];
  }
  out << "], correct=" << correct << ", sources=" << sources << "}";
  return out.str();
}

MultiConfiguration embed_binary(std::uint64_t n, std::uint64_t ones,
                                std::uint32_t correct,
                                std::uint32_t opinion_count,
                                std::uint64_t sources) {
  assert(opinion_count >= 2);
  assert(ones <= n);
  MultiConfiguration config;
  config.counts.assign(opinion_count, 0);
  config.counts[0] = n - ones;
  config.counts[1] = ones;
  config.correct = correct;
  config.sources = sources;
  assert(config.valid());
  return config;
}

}  // namespace bitspread
