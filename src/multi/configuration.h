// Multi-opinion configurations (the footnote-2 generalization).
//
// The paper notes Theorem 1 extends to more than two opinions, provided
// agents never adopt an opinion they have not seen or held (otherwise extra
// opinions are covert extra communication). With anonymous memory-less
// agents, the state is the histogram of opinion counts plus the sources'
// opinion.
#ifndef BITSPREAD_MULTI_CONFIGURATION_H_
#define BITSPREAD_MULTI_CONFIGURATION_H_

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

namespace bitspread {

struct MultiConfiguration {
  std::vector<std::uint64_t> counts;  // counts[j] agents hold opinion j.
  std::uint32_t correct = 0;          // The sources' opinion index.
  std::uint64_t sources = 1;          // All sources hold `correct`.

  std::uint64_t n() const noexcept {
    return std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  }
  std::uint32_t opinion_count() const noexcept {
    return static_cast<std::uint32_t>(counts.size());
  }

  bool valid() const noexcept {
    if (counts.empty() || correct >= counts.size()) return false;
    if (n() == 0) return false;
    return counts[correct] >= sources;
  }

  std::uint64_t non_source_count(std::uint32_t opinion) const noexcept {
    return counts[opinion] - (opinion == correct ? sources : 0);
  }

  bool is_consensus() const noexcept {
    const std::uint64_t total = n();
    for (const std::uint64_t c : counts) {
      if (c == total) return true;
    }
    return false;
  }
  bool is_correct_consensus() const noexcept {
    return counts[correct] == n();
  }

  double fraction(std::uint32_t opinion) const noexcept {
    return static_cast<double>(counts[opinion]) / static_cast<double>(n());
  }

  std::string describe() const;
};

// The binary embedding: a paper Configuration as a 2-opinion multi config.
MultiConfiguration embed_binary(std::uint64_t n, std::uint64_t ones,
                                std::uint32_t correct,
                                std::uint32_t opinion_count = 2,
                                std::uint64_t sources = 1);

}  // namespace bitspread

#endif  // BITSPREAD_MULTI_CONFIGURATION_H_
