#include "multi/protocols.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace bitspread {

void MultiVoter::adoption_distribution(std::uint32_t /*own*/,
                                       std::span<const std::uint32_t> histogram,
                                       std::uint32_t ell, std::uint64_t /*n*/,
                                       std::span<double> out) const {
  assert(histogram.size() == out.size());
  for (std::size_t j = 0; j < out.size(); ++j) {
    out[j] = static_cast<double>(histogram[j]) / static_cast<double>(ell);
  }
}

std::string MultiVoter::name() const {
  return "multi-voter(m=" + std::to_string(opinion_count()) + ")";
}

void MultiMinority::adoption_distribution(
    std::uint32_t /*own*/, std::span<const std::uint32_t> histogram,
    std::uint32_t /*ell*/, std::uint64_t /*n*/, std::span<double> out) const {
  assert(histogram.size() == out.size());
  std::fill(out.begin(), out.end(), 0.0);
  // Rarest PRESENT opinion; unanimity (only one present) adopts it.
  std::uint32_t rarest = std::numeric_limits<std::uint32_t>::max();
  for (const std::uint32_t k : histogram) {
    if (k > 0) rarest = std::min(rarest, k);
  }
  std::uint32_t tie_count = 0;
  for (const std::uint32_t k : histogram) tie_count += (k == rarest);
  for (std::size_t j = 0; j < out.size(); ++j) {
    if (histogram[j] == rarest) out[j] = 1.0 / tie_count;
  }
}

std::string MultiMinority::name() const {
  return "multi-minority(m=" + std::to_string(opinion_count()) + "," +
         policy().describe() + ")";
}

}  // namespace bitspread
