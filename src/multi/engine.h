// Engines for multi-opinion dynamics.
//
// MultiAggregateEngine generalizes the binary aggregate reduction: given the
// counts histogram, every agent with opinion b independently draws its next
// opinion from a common distribution q_b (computed EXACTLY by enumerating
// sample histograms — feasible for the constant-l regime the paper's
// footnote concerns), so one round is one multinomial draw per current
// opinion. MultiAgentEngine is the explicit per-agent fallback for any l.
#ifndef BITSPREAD_MULTI_ENGINE_H_
#define BITSPREAD_MULTI_ENGINE_H_

#include <cstdint>
#include <vector>

#include "engine/stopping.h"
#include "multi/configuration.h"
#include "multi/protocol.h"
#include "random/rng.h"

namespace bitspread {

struct MultiRunResult {
  StopReason reason = StopReason::kRoundLimit;
  std::uint64_t rounds = 0;
  MultiConfiguration final_config;

  bool converged() const noexcept {
    return reason == StopReason::kCorrectConsensus;
  }
};

struct MultiStopRule {
  std::uint64_t max_rounds = 1'000'000;
  bool stop_on_any_consensus = true;
};

class MultiAggregateEngine {
 public:
  explicit MultiAggregateEngine(const MultiOpinionProtocol& protocol) noexcept
      : protocol_(&protocol) {}

  // Exact adoption distribution q_own at the configuration's fractions,
  // by histogram enumeration. Requires constant l (asserts l <= 12 and
  // opinion_count <= 6: ~6k histograms).
  std::vector<double> adoption_distribution(
      std::uint32_t own, const MultiConfiguration& config) const;

  MultiConfiguration step(const MultiConfiguration& config, Rng& rng) const;

  MultiRunResult run(MultiConfiguration config, const MultiStopRule& rule,
                     Rng& rng) const;

  const MultiOpinionProtocol& protocol() const noexcept { return *protocol_; }

 private:
  const MultiOpinionProtocol* protocol_;
};

class MultiAgentEngine {
 public:
  explicit MultiAgentEngine(const MultiOpinionProtocol& protocol) noexcept
      : protocol_(&protocol) {}

  // Opinions per agent; the first `sources` agents hold `correct` forever.
  struct Population {
    std::vector<std::uint32_t> opinions;
    std::uint32_t correct = 0;
    std::uint64_t sources = 1;
    std::uint32_t opinion_count = 2;

    MultiConfiguration config() const;
  };

  Population make_population(const MultiConfiguration& config) const;
  void step(Population& population, Rng& rng) const;
  MultiRunResult run(MultiConfiguration config, const MultiStopRule& rule,
                     Rng& rng) const;

 private:
  const MultiOpinionProtocol* protocol_;
};

}  // namespace bitspread

#endif  // BITSPREAD_MULTI_ENGINE_H_
