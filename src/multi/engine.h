// Engines for multi-opinion dynamics.
//
// MultiAggregateEngine generalizes the binary aggregate reduction: given the
// counts histogram, every agent with opinion b independently draws its next
// opinion from a common distribution q_b (computed EXACTLY by enumerating
// sample histograms — feasible for the constant-l regime the paper's
// footnote concerns), so one round is one multinomial draw per current
// opinion. MultiAgentEngine is the explicit per-agent fallback for any l.
//
// Both engines run through the shared RunDriver (engine/run_loop.h) with a
// custom consensus stop evaluation, so they take the same StopRule as the
// binary engines and emit trajectories, flight-recorder round streams, and
// telemetry. Faulty runs accept an EnvironmentModel with the m-ary
// generalizations of channels 1 (each observed opinion is replaced by a
// uniformly random OTHER opinion with probability epsilon), 2 (with
// probability eta the agent adopts a uniform opinion), and 5 (churned agents
// restart on the canonical wrong opinion (correct+1) mod m). The zealot and
// source-flip channels are binary-specific (which of the m-1 wrong opinions
// zealots pin, and what a flip re-targets, are not canonical) and are
// ignored here — see DESIGN.md §3.5.
#ifndef BITSPREAD_MULTI_ENGINE_H_
#define BITSPREAD_MULTI_ENGINE_H_

#include <cstdint>
#include <vector>

#include "engine/stopping.h"
#include "engine/trajectory.h"
#include "faults/environment.h"
#include "multi/configuration.h"
#include "multi/protocol.h"
#include "random/rng.h"

namespace bitspread {

// The multi-opinion run result: RunResult's shape with the m-ary final
// configuration. Rounds are always parallel rounds (both engines are
// synchronous).
struct MultiRunResult {
  StopReason reason = StopReason::kRoundLimit;
  std::uint64_t rounds = 0;
  MultiConfiguration final_config;
  RunTelemetry telemetry;

  bool converged() const noexcept {
    return reason == StopReason::kCorrectConsensus;
  }
  bool censored() const noexcept {
    return reason == StopReason::kRoundLimit ||
           reason == StopReason::kDegraded;
  }
};

class MultiAggregateEngine {
 public:
  explicit MultiAggregateEngine(const MultiOpinionProtocol& protocol) noexcept
      : protocol_(&protocol) {}

  // Exact adoption distribution q_own at the configuration's fractions,
  // by histogram enumeration. Requires constant l (asserts l <= 12 and
  // opinion_count <= 6: ~6k histograms).
  std::vector<double> adoption_distribution(
      std::uint32_t own, const MultiConfiguration& config) const;

  MultiConfiguration step(const MultiConfiguration& config, Rng& rng) const;

  // StopRule::max_rounds caps the run; stop_on_any_consensus maps onto
  // m-ary consensus (any absorbing consensus stops unless it is the correct
  // one). The interval fields are binary-specific and ignored.
  MultiRunResult run(MultiConfiguration config, const StopRule& rule,
                     Rng& rng, Trajectory* trajectory = nullptr) const;

  // Faulty run (channels 1/2/5, m-ary forms; see the header comment). The
  // convergence quorum generalizes: counts[correct] >= ceil(quorum * n)
  // counts as correct consensus, and a wrong consensus only stops when the
  // model keeps it absorbing.
  MultiRunResult run(MultiConfiguration config, const StopRule& rule,
                     const EnvironmentModel& faults, Rng& rng,
                     Trajectory* trajectory = nullptr) const;

  const MultiOpinionProtocol& protocol() const noexcept { return *protocol_; }

 private:
  const MultiOpinionProtocol* protocol_;
};

class MultiAgentEngine {
 public:
  explicit MultiAgentEngine(const MultiOpinionProtocol& protocol) noexcept
      : protocol_(&protocol) {}

  // Opinions per agent; the first `sources` agents hold `correct` forever.
  struct Population {
    std::vector<std::uint32_t> opinions;
    std::uint32_t correct = 0;
    std::uint64_t sources = 1;
    std::uint32_t opinion_count = 2;

    MultiConfiguration config() const;
  };

  Population make_population(const MultiConfiguration& config) const;
  void step(Population& population, Rng& rng) const;
  // One faulty synchronous round: per-observation m-ary noise plus the
  // spontaneous override. Churn is round-boundary work owned by the driver
  // loop.
  void step_faulty(Population& population, const EnvironmentModel& model,
                   Rng& rng) const;

  MultiRunResult run(MultiConfiguration config, const StopRule& rule,
                     Rng& rng, Trajectory* trajectory = nullptr) const;
  MultiRunResult run(MultiConfiguration config, const StopRule& rule,
                     const EnvironmentModel& faults, Rng& rng,
                     Trajectory* trajectory = nullptr) const;

  const MultiOpinionProtocol& protocol() const noexcept { return *protocol_; }

 private:
  const MultiOpinionProtocol* protocol_;
};

}  // namespace bitspread

#endif  // BITSPREAD_MULTI_ENGINE_H_
