// Multi-opinion memory-less protocols.
//
// The behavioral rule generalizes g_n^[b](k): given the agent's own opinion
// and the HISTOGRAM of opinions in its l-sample, the protocol returns a
// distribution over the next opinion. The paper's footnote-2 constraint —
// never adopt an opinion that is neither in the sample nor currently held —
// is checkable via respects_no_spontaneous_adoption().
#ifndef BITSPREAD_MULTI_PROTOCOL_H_
#define BITSPREAD_MULTI_PROTOCOL_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/sample_size.h"

namespace bitspread {

class MultiOpinionProtocol {
 public:
  MultiOpinionProtocol(std::uint32_t opinion_count,
                       SampleSizePolicy policy) noexcept
      : opinion_count_(opinion_count), policy_(policy) {}
  virtual ~MultiOpinionProtocol() = default;

  MultiOpinionProtocol(const MultiOpinionProtocol&) = default;
  MultiOpinionProtocol& operator=(const MultiOpinionProtocol&) = delete;

  std::uint32_t opinion_count() const noexcept { return opinion_count_; }
  std::uint32_t sample_size(std::uint64_t n) const noexcept {
    return policy_.sample_size(n);
  }
  const SampleSizePolicy& policy() const noexcept { return policy_; }

  // Fills `out` (size opinion_count) with the adoption distribution given
  // the agent's own opinion and the sample histogram (sums to l). `out`
  // must sum to 1.
  virtual void adoption_distribution(std::uint32_t own,
                                     std::span<const std::uint32_t> histogram,
                                     std::uint32_t ell, std::uint64_t n,
                                     std::span<double> out) const = 0;

  virtual std::string name() const = 0;

  // Footnote 2: checks (by enumerating histograms; constant-l only) that no
  // probability mass ever lands on an opinion absent from sample + own.
  bool respects_no_spontaneous_adoption(std::uint64_t n) const;

 private:
  std::uint32_t opinion_count_;
  SampleSizePolicy policy_;
};

// Enumerates all histograms of `ell` samples over `opinions` categories and
// invokes visit(histogram). Count is C(ell + opinions - 1, opinions - 1).
void for_each_histogram(
    std::uint32_t opinions, std::uint32_t ell,
    const std::function<void(std::span<const std::uint32_t>)>& visit);

// Probability of observing `histogram` when opinion j is sampled with
// probability fractions[j], l times with replacement (multinomial pmf).
double histogram_probability(std::span<const std::uint32_t> histogram,
                             std::span<const double> fractions);

}  // namespace bitspread

#endif  // BITSPREAD_MULTI_PROTOCOL_H_
