#include "multi/engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "engine/run_loop.h"
#include "random/binomial.h"
#include "random/multinomial.h"
#include "telemetry/telemetry.h"

namespace bitspread {
namespace {

// Exact adoption distribution by histogram enumeration at explicit opinion
// fractions (the faulty path passes the noisy fractions through here).
std::vector<double> adoption_from_fractions(
    const MultiOpinionProtocol& protocol, std::uint32_t own,
    const std::vector<double>& fractions, std::uint64_t n) {
  const auto m = static_cast<std::uint32_t>(fractions.size());
  const std::uint32_t ell = protocol.sample_size(n);
  assert(ell <= 12 && m <= 6 &&
         "exact enumeration is for the constant-l regime");

  std::vector<double> q(m, 0.0);
  std::vector<double> out(m);
  for_each_histogram(m, ell, [&](std::span<const std::uint32_t> histogram) {
    const double weight = histogram_probability(histogram, fractions);
    if (weight == 0.0) return;
    protocol.adoption_distribution(own, histogram, ell, n, out);
    for (std::uint32_t j = 0; j < m; ++j) q[j] += weight * out[j];
  });
  return q;
}

// m-ary symmetric channel: an observed opinion is replaced by a uniformly
// random OTHER opinion with probability epsilon, so opinion j is read with
// probability (1 - e) f_j + e (1 - f_j) / (m - 1).
std::vector<double> noisy_fractions(const MultiConfiguration& config,
                                    double epsilon) {
  const std::uint32_t m = config.opinion_count();
  std::vector<double> fractions(m);
  for (std::uint32_t j = 0; j < m; ++j) {
    const double f = config.fraction(j);
    fractions[j] =
        m > 1 ? (1.0 - epsilon) * f + epsilon * (1.0 - f) / (m - 1.0) : f;
  }
  return fractions;
}

// The m-ary consensus stop evaluation both engines share (replaces the
// driver's binary evaluate_stop via the stepper evaluate() hook).
std::optional<StopReason> evaluate_multi(const StopRule& rule,
                                         const MultiConfiguration& config,
                                         const EnvironmentModel* model,
                                         std::uint64_t quorum_target) {
  if (model != nullptr) {
    if (config.counts[config.correct] >= quorum_target) {
      return StopReason::kCorrectConsensus;
    }
    if (rule.stop_on_any_consensus && config.is_consensus() &&
        !model->wrong_consensus_escapable()) {
      return StopReason::kWrongConsensus;
    }
    return std::nullopt;
  }
  if (config.is_correct_consensus()) return StopReason::kCorrectConsensus;
  if (rule.stop_on_any_consensus && config.is_consensus()) {
    return StopReason::kWrongConsensus;
  }
  return std::nullopt;
}

std::uint64_t quorum_target(const MultiConfiguration& config,
                            const EnvironmentModel& model) {
  const auto n = static_cast<double>(config.n());
  return static_cast<std::uint64_t>(
      std::ceil(model.convergence_quorum * n));
}

// Counts-level churn, m-ary form: each free agent (everything but the
// sources) crashes with probability delta and is replaced holding the
// canonical wrong opinion (correct + 1) mod m. Only opinion-changing
// replacements are drawn; same-opinion ones are invisible at this level.
std::uint64_t churn_counts(MultiConfiguration& config, double delta,
                           Rng& rng) {
  if (delta <= 0.0) return 0;
  const std::uint32_t m = config.opinion_count();
  const std::uint32_t wrong = (config.correct + 1) % m;
  std::uint64_t moved_total = 0;
  for (std::uint32_t j = 0; j < m; ++j) {
    if (j == wrong) continue;
    const std::uint64_t moved =
        binomial(rng, config.non_source_count(j), delta);
    config.counts[j] -= moved;
    config.counts[wrong] += moved;
    moved_total += moved;
  }
  return moved_total;
}

Configuration project(const MultiConfiguration& config) noexcept {
  return Configuration{config.n(), config.counts[config.correct],
                       Opinion::kOne, config.sources};
}

// Fault-free aggregate stepper: one multinomial draw per current opinion.
struct MultiAggregateStepper {
  const MultiAggregateEngine& engine;
  Rng& rng;
  MultiConfiguration state;
  Configuration projection;
  std::uint64_t samples = 0;

  Configuration& config() noexcept { return projection; }
  void step(std::uint64_t /*tick*/) {
    state = engine.step(state, rng);
    projection.ones = state.counts[state.correct];
    if constexpr (telemetry::kCompiledIn) {
      samples += (state.n() - state.sources) *
                 engine.protocol().sample_size(state.n());
    }
  }
  std::optional<StopReason> evaluate(const StopRule& rule) const {
    return evaluate_multi(rule, state, nullptr, 0);
  }
  std::uint64_t samples_drawn() const noexcept { return samples; }
};

// Faulty aggregate stepper: the adoption distributions are computed at the
// noisy fractions and mixed with the uniform spontaneous channel; churn at
// round boundaries.
struct MultiAggregateFaultyStepper {
  const MultiAggregateEngine& engine;
  const EnvironmentModel& model;
  Rng& rng;
  MultiConfiguration state;
  Configuration projection;
  std::uint64_t target = 0;
  std::uint64_t samples = 0;
  std::uint64_t churn_events = 0;

  Configuration& config() noexcept { return projection; }
  void step(std::uint64_t /*tick*/) {
    const std::uint32_t m = state.opinion_count();
    const std::vector<double> fractions =
        noisy_fractions(state, model.observation_noise);
    const double eta = model.spontaneous_rate;

    MultiConfiguration next = state;
    next.counts.assign(m, 0);
    next.counts[state.correct] = state.sources;
    const telemetry::ScopedTimer draw_timer(telemetry::Phase::kSampleDraw);
    for (std::uint32_t own = 0; own < m; ++own) {
      const std::uint64_t movers = state.non_source_count(own);
      if (movers == 0) continue;
      std::vector<double> q = adoption_from_fractions(
          engine.protocol(), own, fractions, state.n());
      if (eta > 0.0) {
        for (std::uint32_t j = 0; j < m; ++j) {
          q[j] = (1.0 - eta) * q[j] + eta / static_cast<double>(m);
        }
      }
      const std::vector<std::uint64_t> landed = multinomial(rng, movers, q);
      for (std::uint32_t j = 0; j < m; ++j) next.counts[j] += landed[j];
    }
    state = std::move(next);
    projection.ones = state.counts[state.correct];
    if constexpr (telemetry::kCompiledIn) {
      samples += (state.n() - state.sources) *
                 engine.protocol().sample_size(state.n());
    }
  }
  void end_round(std::uint64_t /*round*/) {
    churn_events += churn_counts(state, model.churn_rate, rng);
    projection.ones = state.counts[state.correct];
  }
  std::optional<StopReason> evaluate(const StopRule& rule) const {
    return evaluate_multi(rule, state, &model, target);
  }
  std::uint64_t samples_drawn() const noexcept { return samples; }
};

// Fault-free agent stepper.
struct MultiAgentStepper {
  const MultiAgentEngine& engine;
  Rng& rng;
  MultiAgentEngine::Population& population;
  MultiConfiguration state;
  Configuration projection;
  std::uint64_t samples = 0;

  Configuration& config() noexcept { return projection; }
  void step(std::uint64_t /*tick*/) {
    engine.step(population, rng);
    state = population.config();
    projection.ones = state.counts[state.correct];
    if constexpr (telemetry::kCompiledIn) {
      samples += (state.n() - state.sources) *
                 engine.protocol().sample_size(state.n());
    }
  }
  std::optional<StopReason> evaluate(const StopRule& rule) const {
    return evaluate_multi(rule, state, nullptr, 0);
  }
  std::uint64_t samples_drawn() const noexcept { return samples; }
};

// Faulty agent stepper: per-observation m-ary noise and the spontaneous
// override happen inside step_faulty; churn replaces free agents at round
// boundaries with the canonical wrong opinion.
struct MultiAgentFaultyStepper {
  const MultiAgentEngine& engine;
  const EnvironmentModel& model;
  Rng& rng;
  MultiAgentEngine::Population& population;
  MultiConfiguration state;
  Configuration projection;
  std::uint64_t target = 0;
  std::uint64_t samples = 0;
  std::uint64_t churn_events = 0;

  Configuration& config() noexcept { return projection; }
  void step(std::uint64_t /*tick*/) {
    engine.step_faulty(population, model, rng);
    state = population.config();
    projection.ones = state.counts[state.correct];
    if constexpr (telemetry::kCompiledIn) {
      samples += (state.n() - state.sources) *
                 engine.protocol().sample_size(state.n());
    }
  }
  void end_round(std::uint64_t /*round*/) {
    if (model.churn_rate <= 0.0) return;
    const std::uint32_t m = population.opinion_count;
    const std::uint32_t wrong = (population.correct + 1) % m;
    for (std::uint64_t i = population.sources;
         i < population.opinions.size(); ++i) {
      if (!rng.bernoulli(model.churn_rate)) continue;
      if (population.opinions[i] != wrong) ++churn_events;
      population.opinions[i] = wrong;
    }
    state = population.config();
    projection.ones = state.counts[state.correct];
  }
  std::optional<StopReason> evaluate(const StopRule& rule) const {
    return evaluate_multi(rule, state, &model, target);
  }
  std::uint64_t samples_drawn() const noexcept { return samples; }
};

MultiRunResult to_multi(RunResult&& run, MultiConfiguration&& state) {
  MultiRunResult result;
  result.reason = run.reason;
  result.rounds = run.ticks;
  result.final_config = std::move(state);
  result.telemetry = run.telemetry;
  return result;
}

}  // namespace

std::vector<double> MultiAggregateEngine::adoption_distribution(
    std::uint32_t own, const MultiConfiguration& config) const {
  const std::uint32_t m = config.opinion_count();
  std::vector<double> fractions(m);
  for (std::uint32_t j = 0; j < m; ++j) fractions[j] = config.fraction(j);
  return adoption_from_fractions(*protocol_, own, fractions, config.n());
}

MultiConfiguration MultiAggregateEngine::step(const MultiConfiguration& config,
                                              Rng& rng) const {
  assert(config.valid());
  const std::uint32_t m = config.opinion_count();
  MultiConfiguration next = config;
  next.counts.assign(m, 0);
  next.counts[config.correct] = config.sources;

  const telemetry::ScopedTimer draw_timer(telemetry::Phase::kSampleDraw);
  for (std::uint32_t own = 0; own < m; ++own) {
    const std::uint64_t movers = config.non_source_count(own);
    if (movers == 0) continue;
    const std::vector<double> q = adoption_distribution(own, config);
    const std::vector<std::uint64_t> landed = multinomial(rng, movers, q);
    for (std::uint32_t j = 0; j < m; ++j) next.counts[j] += landed[j];
  }
  return next;
}

MultiRunResult MultiAggregateEngine::run(MultiConfiguration config,
                                         const StopRule& rule, Rng& rng,
                                         Trajectory* trajectory) const {
  assert(config.valid());
  MultiAggregateStepper stepper{*this, rng, std::move(config),
                                Configuration{}};
  stepper.projection = project(stepper.state);
  const RunResult run =
      RunDriver(TimePolicy::parallel()).run(stepper, rule, trajectory);
  return to_multi(RunResult(run), std::move(stepper.state));
}

MultiRunResult MultiAggregateEngine::run(MultiConfiguration config,
                                         const StopRule& rule,
                                         const EnvironmentModel& faults,
                                         Rng& rng,
                                         Trajectory* trajectory) const {
  assert(config.valid());
  const EnvironmentModel model = faults.normalized();
  MultiAggregateFaultyStepper stepper{*this, model, rng, std::move(config),
                                      Configuration{},
                                      0};
  stepper.projection = project(stepper.state);
  stepper.target = quorum_target(stepper.state, model);
  RunResult run =
      RunDriver(TimePolicy::parallel()).run(stepper, rule, trajectory);
  if constexpr (telemetry::kCompiledIn) {
    run.telemetry.fault_churned = stepper.churn_events;
  }
  return to_multi(std::move(run), std::move(stepper.state));
}

MultiConfiguration MultiAgentEngine::Population::config() const {
  MultiConfiguration result;
  result.counts.assign(opinion_count, 0);
  for (const std::uint32_t opinion : opinions) ++result.counts[opinion];
  result.correct = correct;
  result.sources = sources;
  return result;
}

MultiAgentEngine::Population MultiAgentEngine::make_population(
    const MultiConfiguration& config) const {
  assert(config.valid());
  Population population;
  population.correct = config.correct;
  population.sources = config.sources;
  population.opinion_count = config.opinion_count();
  population.opinions.reserve(config.n());
  for (std::uint64_t i = 0; i < config.sources; ++i) {
    population.opinions.push_back(config.correct);
  }
  for (std::uint32_t j = 0; j < config.opinion_count(); ++j) {
    for (std::uint64_t i = 0; i < config.non_source_count(j); ++i) {
      population.opinions.push_back(j);
    }
  }
  return population;
}

void MultiAgentEngine::step(Population& population, Rng& rng) const {
  const std::uint64_t n = population.opinions.size();
  const std::uint32_t m = population.opinion_count;
  const std::uint32_t ell = protocol_->sample_size(n);
  const std::vector<std::uint32_t> snapshot(population.opinions);

  std::vector<std::uint32_t> histogram(m);
  std::vector<double> distribution(m);
  for (std::uint64_t i = population.sources; i < n; ++i) {
    std::fill(histogram.begin(), histogram.end(), 0u);
    for (std::uint32_t s = 0; s < ell; ++s) {
      ++histogram[snapshot[rng.next_below(n)]];
    }
    protocol_->adoption_distribution(population.opinions[i], histogram, ell,
                                     n, distribution);
    // Inverse-CDF draw over the m opinions.
    double u = rng.next_double();
    std::uint32_t next = m - 1;
    for (std::uint32_t j = 0; j < m; ++j) {
      if (u < distribution[j]) {
        next = j;
        break;
      }
      u -= distribution[j];
    }
    population.opinions[i] = next;
  }
}

void MultiAgentEngine::step_faulty(Population& population,
                                   const EnvironmentModel& model,
                                   Rng& rng) const {
  const std::uint64_t n = population.opinions.size();
  const std::uint32_t m = population.opinion_count;
  const std::uint32_t ell = protocol_->sample_size(n);
  const std::vector<std::uint32_t> snapshot(population.opinions);

  std::vector<std::uint32_t> histogram(m);
  std::vector<double> distribution(m);
  for (std::uint64_t i = population.sources; i < n; ++i) {
    std::fill(histogram.begin(), histogram.end(), 0u);
    for (std::uint32_t s = 0; s < ell; ++s) {
      std::uint32_t observed = snapshot[rng.next_below(n)];
      if (model.observation_noise > 0.0 && m > 1 &&
          rng.bernoulli(model.observation_noise)) {
        // Uniformly random OTHER opinion: draw from [0, m-2] and skip own.
        const auto k =
            static_cast<std::uint32_t>(rng.next_below(m - 1));
        observed = k >= observed ? k + 1 : k;
      }
      ++histogram[observed];
    }
    protocol_->adoption_distribution(population.opinions[i], histogram, ell,
                                     n, distribution);
    double u = rng.next_double();
    std::uint32_t next = m - 1;
    for (std::uint32_t j = 0; j < m; ++j) {
      if (u < distribution[j]) {
        next = j;
        break;
      }
      u -= distribution[j];
    }
    if (model.spontaneous_rate > 0.0 &&
        rng.bernoulli(model.spontaneous_rate)) {
      next = static_cast<std::uint32_t>(rng.next_below(m));
    }
    population.opinions[i] = next;
  }
}

MultiRunResult MultiAgentEngine::run(MultiConfiguration config,
                                     const StopRule& rule, Rng& rng,
                                     Trajectory* trajectory) const {
  assert(config.valid());
  Population population = make_population(config);
  MultiAgentStepper stepper{*this, rng, population, population.config(),
                            Configuration{}};
  stepper.projection = project(stepper.state);
  const RunResult run =
      RunDriver(TimePolicy::parallel()).run(stepper, rule, trajectory);
  return to_multi(RunResult(run), std::move(stepper.state));
}

MultiRunResult MultiAgentEngine::run(MultiConfiguration config,
                                     const StopRule& rule,
                                     const EnvironmentModel& faults, Rng& rng,
                                     Trajectory* trajectory) const {
  assert(config.valid());
  const EnvironmentModel model = faults.normalized();
  Population population = make_population(config);
  MultiAgentFaultyStepper stepper{*this,         model, rng, population,
                                  population.config(), Configuration{}, 0};
  stepper.projection = project(stepper.state);
  stepper.target = quorum_target(stepper.state, model);
  RunResult run =
      RunDriver(TimePolicy::parallel()).run(stepper, rule, trajectory);
  if constexpr (telemetry::kCompiledIn) {
    run.telemetry.fault_churned = stepper.churn_events;
  }
  return to_multi(std::move(run), std::move(stepper.state));
}

}  // namespace bitspread
