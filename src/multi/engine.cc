#include "multi/engine.h"

#include <cassert>

#include "random/multinomial.h"

namespace bitspread {
namespace {

std::optional<StopReason> evaluate_multi_stop(const MultiStopRule& rule,
                                              const MultiConfiguration& c) {
  if (c.is_correct_consensus()) return StopReason::kCorrectConsensus;
  if (rule.stop_on_any_consensus && c.is_consensus()) {
    return StopReason::kWrongConsensus;
  }
  return std::nullopt;
}

}  // namespace

std::vector<double> MultiAggregateEngine::adoption_distribution(
    std::uint32_t own, const MultiConfiguration& config) const {
  const std::uint32_t m = config.opinion_count();
  const std::uint64_t n = config.n();
  const std::uint32_t ell = protocol_->sample_size(n);
  assert(ell <= 12 && m <= 6 &&
         "exact enumeration is for the constant-l regime");

  std::vector<double> fractions(m);
  for (std::uint32_t j = 0; j < m; ++j) fractions[j] = config.fraction(j);

  std::vector<double> q(m, 0.0);
  std::vector<double> out(m);
  for_each_histogram(m, ell, [&](std::span<const std::uint32_t> histogram) {
    const double weight = histogram_probability(histogram, fractions);
    if (weight == 0.0) return;
    protocol_->adoption_distribution(own, histogram, ell, n, out);
    for (std::uint32_t j = 0; j < m; ++j) q[j] += weight * out[j];
  });
  return q;
}

MultiConfiguration MultiAggregateEngine::step(const MultiConfiguration& config,
                                              Rng& rng) const {
  assert(config.valid());
  const std::uint32_t m = config.opinion_count();
  MultiConfiguration next = config;
  next.counts.assign(m, 0);
  next.counts[config.correct] = config.sources;

  for (std::uint32_t own = 0; own < m; ++own) {
    const std::uint64_t movers = config.non_source_count(own);
    if (movers == 0) continue;
    const std::vector<double> q = adoption_distribution(own, config);
    const std::vector<std::uint64_t> landed = multinomial(rng, movers, q);
    for (std::uint32_t j = 0; j < m; ++j) next.counts[j] += landed[j];
  }
  return next;
}

MultiRunResult MultiAggregateEngine::run(MultiConfiguration config,
                                         const MultiStopRule& rule,
                                         Rng& rng) const {
  MultiRunResult result;
  for (std::uint64_t round = 0;; ++round) {
    if (auto reason = evaluate_multi_stop(rule, config)) {
      result.reason = *reason;
      result.rounds = round;
      break;
    }
    if (round >= rule.max_rounds) {
      result.reason = StopReason::kRoundLimit;
      result.rounds = round;
      break;
    }
    config = step(config, rng);
  }
  result.final_config = std::move(config);
  return result;
}

MultiConfiguration MultiAgentEngine::Population::config() const {
  MultiConfiguration result;
  result.counts.assign(opinion_count, 0);
  for (const std::uint32_t opinion : opinions) ++result.counts[opinion];
  result.correct = correct;
  result.sources = sources;
  return result;
}

MultiAgentEngine::Population MultiAgentEngine::make_population(
    const MultiConfiguration& config) const {
  assert(config.valid());
  Population population;
  population.correct = config.correct;
  population.sources = config.sources;
  population.opinion_count = config.opinion_count();
  population.opinions.reserve(config.n());
  for (std::uint64_t i = 0; i < config.sources; ++i) {
    population.opinions.push_back(config.correct);
  }
  for (std::uint32_t j = 0; j < config.opinion_count(); ++j) {
    for (std::uint64_t i = 0; i < config.non_source_count(j); ++i) {
      population.opinions.push_back(j);
    }
  }
  return population;
}

void MultiAgentEngine::step(Population& population, Rng& rng) const {
  const std::uint64_t n = population.opinions.size();
  const std::uint32_t m = population.opinion_count;
  const std::uint32_t ell = protocol_->sample_size(n);
  const std::vector<std::uint32_t> snapshot(population.opinions);

  std::vector<std::uint32_t> histogram(m);
  std::vector<double> distribution(m);
  for (std::uint64_t i = population.sources; i < n; ++i) {
    std::fill(histogram.begin(), histogram.end(), 0u);
    for (std::uint32_t s = 0; s < ell; ++s) {
      ++histogram[snapshot[rng.next_below(n)]];
    }
    protocol_->adoption_distribution(population.opinions[i], histogram, ell,
                                     n, distribution);
    // Inverse-CDF draw over the m opinions.
    double u = rng.next_double();
    std::uint32_t next = m - 1;
    for (std::uint32_t j = 0; j < m; ++j) {
      if (u < distribution[j]) {
        next = j;
        break;
      }
      u -= distribution[j];
    }
    population.opinions[i] = next;
  }
}

MultiRunResult MultiAgentEngine::run(MultiConfiguration config,
                                     const MultiStopRule& rule,
                                     Rng& rng) const {
  Population population = make_population(config);
  MultiRunResult result;
  MultiConfiguration current = population.config();
  for (std::uint64_t round = 0;; ++round) {
    if (auto reason = evaluate_multi_stop(rule, current)) {
      result.reason = *reason;
      result.rounds = round;
      break;
    }
    if (round >= rule.max_rounds) {
      result.reason = StopReason::kRoundLimit;
      result.rounds = round;
      break;
    }
    step(population, rng);
    current = population.config();
  }
  result.final_config = std::move(current);
  return result;
}

}  // namespace bitspread
