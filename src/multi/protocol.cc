#include "multi/protocol.h"

#include <cassert>
#include <cmath>

namespace bitspread {
namespace {

void enumerate(std::vector<std::uint32_t>& histogram, std::size_t index,
               std::uint32_t remaining,
               const std::function<void(std::span<const std::uint32_t>)>&
                   visit) {
  if (index + 1 == histogram.size()) {
    histogram[index] = remaining;
    visit(histogram);
    return;
  }
  for (std::uint32_t k = 0; k <= remaining; ++k) {
    histogram[index] = k;
    enumerate(histogram, index + 1, remaining - k, visit);
  }
}

}  // namespace

void for_each_histogram(
    std::uint32_t opinions, std::uint32_t ell,
    const std::function<void(std::span<const std::uint32_t>)>& visit) {
  assert(opinions >= 1);
  std::vector<std::uint32_t> histogram(opinions, 0);
  enumerate(histogram, 0, ell, visit);
}

double histogram_probability(std::span<const std::uint32_t> histogram,
                             std::span<const double> fractions) {
  assert(histogram.size() == fractions.size());
  std::uint32_t total = 0;
  for (const std::uint32_t k : histogram) total += k;
  // Multinomial pmf in log space for stability.
  double log_p = std::lgamma(static_cast<double>(total) + 1.0);
  for (std::size_t j = 0; j < histogram.size(); ++j) {
    const double k = static_cast<double>(histogram[j]);
    if (histogram[j] == 0) continue;
    if (fractions[j] <= 0.0) return 0.0;
    log_p += k * std::log(fractions[j]) - std::lgamma(k + 1.0);
  }
  return std::exp(log_p);
}

bool MultiOpinionProtocol::respects_no_spontaneous_adoption(
    std::uint64_t n) const {
  const std::uint32_t ell = sample_size(n);
  const std::uint32_t m = opinion_count();
  assert(policy().is_constant() && ell <= 16 && m <= 6 &&
         "enumeration check is for small constant sample sizes");
  bool ok = true;
  std::vector<double> out(m);
  for_each_histogram(m, ell, [&](std::span<const std::uint32_t> histogram) {
    for (std::uint32_t own = 0; own < m; ++own) {
      adoption_distribution(own, histogram, ell, n, out);
      double total = 0.0;
      for (std::uint32_t j = 0; j < m; ++j) {
        total += out[j];
        if (out[j] > 0.0 && histogram[j] == 0 && j != own) ok = false;
      }
      if (std::abs(total - 1.0) > 1e-9) ok = false;
    }
  });
  return ok;
}

}  // namespace bitspread
