// Parameter-grid helpers for sweeps over population sizes and sample sizes.
#ifndef BITSPREAD_SIM_SWEEP_H_
#define BITSPREAD_SIM_SWEEP_H_

#include <cstdint>
#include <vector>

namespace bitspread {

// Geometric grid {lo, lo*factor, ...} capped at hi (hi always included if the
// last step overshoots). factor must exceed 1.
std::vector<std::uint64_t> geometric_grid(std::uint64_t lo, std::uint64_t hi,
                                          double factor);

// Powers of two from 2^lo_exp to 2^hi_exp inclusive.
std::vector<std::uint64_t> power_of_two_grid(int lo_exp, int hi_exp);

// Linear integer grid with the given step.
std::vector<std::uint64_t> linear_grid(std::uint64_t lo, std::uint64_t hi,
                                       std::uint64_t step);

}  // namespace bitspread

#endif  // BITSPREAD_SIM_SWEEP_H_
