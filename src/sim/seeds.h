// Experiment seeding conventions: one master seed (overridable via the
// BITSPREAD_SEED environment variable or --seed) fans out into independent
// streams per (experiment, cell, replicate).
#ifndef BITSPREAD_SIM_SEEDS_H_
#define BITSPREAD_SIM_SEEDS_H_

#include <cstdint>

#include "random/seeding.h"

namespace bitspread {

// The library-wide default master seed (stable across releases so recorded
// outputs are reproducible).
inline constexpr std::uint64_t kDefaultMasterSeed = 0x5eedB17599999ULL;

// kDefaultMasterSeed unless BITSPREAD_SEED is set to a parseable integer.
std::uint64_t master_seed_from_env() noexcept;

}  // namespace bitspread

#endif  // BITSPREAD_SIM_SEEDS_H_
