#include "sim/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace bitspread {

void parallel_for(int count, const std::function<void(int)>& fn,
                  unsigned max_threads) {
  if (count <= 0) return;
  unsigned threads = max_threads == 0 ? std::thread::hardware_concurrency()
                                      : max_threads;
  threads = std::max(1u, std::min<unsigned>(threads,
                                            static_cast<unsigned>(count)));
  if (threads == 1) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<int> next{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      while (true) {
        const int i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        fn(i);
      }
    });
  }
  for (auto& worker : workers) worker.join();
}

ConvergenceMeasurement measure_convergence_parallel(
    const std::function<RunResult(Rng&)>& single_run,
    const SeedSequence& seeds, std::uint64_t cell, int replicates,
    unsigned max_threads) {
  // Collect per-replicate results, then fold in replicate order so the
  // aggregate (including round_samples ordering) matches the serial path
  // exactly.
  std::vector<RunResult> results(static_cast<std::size_t>(replicates));
  parallel_for(
      replicates,
      [&](int rep) {
        Rng rng = seeds.stream(cell, static_cast<std::uint64_t>(rep));
        results[static_cast<std::size_t>(rep)] = single_run(rng);
      },
      max_threads);

  ConvergenceMeasurement out;
  out.replicates = replicates;
  for (const RunResult& result : results) {
    const auto rounds = static_cast<double>(result.rounds);
    out.rounds_lower_bound.add(rounds);
    if (result.reason == StopReason::kCorrectConsensus) {
      ++out.converged;
      out.rounds.add(rounds);
      out.round_samples.push_back(rounds);
    } else if (result.reason == StopReason::kRoundLimit) {
      ++out.censored;
    } else {
      ++out.wrong_outcome;
    }
  }
  return out;
}

}  // namespace bitspread
