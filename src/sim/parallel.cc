#include "sim/parallel.h"

#include <algorithm>

#if defined(__linux__)
#include <sched.h>
#include <unistd.h>
#endif

#include "telemetry/trace.h"

namespace bitspread {
namespace {

// Set while a thread is executing pool work; nested run() calls from such a
// thread fall back to inline serial execution instead of deadlocking on the
// pool they are already occupying.
thread_local bool t_inside_pool_worker = false;

}  // namespace

double WorkerPoolTelemetry::utilization() const noexcept {
  if (dispatch_ns == 0 || workers.empty()) return 0.0;
  std::uint64_t busy = 0;
  for (const Worker& worker : workers) busy += worker.busy_ns;
  // Each dispatched generation paid for `active` workers, but summing
  // per-generation active counts would need per-generation records; the
  // spawned worker count is the stable upper bound the pool actually holds.
  const double paid = static_cast<double>(dispatch_ns) *
                      static_cast<double>(workers.size());
  return paid > 0.0 ? static_cast<double>(busy) / paid : 0.0;
}

WorkerPool& WorkerPool::shared() {
  static WorkerPool pool;
  return pool;
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

unsigned WorkerPool::worker_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<unsigned>(workers_.size());
}

WorkerPoolTelemetry WorkerPool::telemetry() const {
  WorkerPoolTelemetry out;
#ifdef BITSPREAD_TELEMETRY
  out.recorded = true;
  out.generations = generations_total_.load(std::memory_order_relaxed);
  out.items = items_total_.load(std::memory_order_relaxed);
  out.dispatch_ns = dispatch_ns_.load(std::memory_order_relaxed);
  out.wake_ns = wake_ns_.load(std::memory_order_relaxed);
  const unsigned spawned = worker_count();
  out.workers.resize(spawned);
  for (unsigned i = 0; i < spawned; ++i) {
    out.workers[i].busy_ns =
        worker_stats_[i].busy_ns.load(std::memory_order_relaxed);
    out.workers[i].items =
        worker_stats_[i].items.load(std::memory_order_relaxed);
    out.workers[i].generations =
        worker_stats_[i].generations.load(std::memory_order_relaxed);
  }
#endif
  return out;
}

void WorkerPool::reset_telemetry() {
#ifdef BITSPREAD_TELEMETRY
  generations_total_.store(0, std::memory_order_relaxed);
  items_total_.store(0, std::memory_order_relaxed);
  dispatch_ns_.store(0, std::memory_order_relaxed);
  wake_ns_.store(0, std::memory_order_relaxed);
  for (WorkerStats& stats : worker_stats_) {
    stats.busy_ns.store(0, std::memory_order_relaxed);
    stats.items.store(0, std::memory_order_relaxed);
    stats.generations.store(0, std::memory_order_relaxed);
  }
#endif
}

void WorkerPool::ensure_workers(unsigned target) {
  std::lock_guard<std::mutex> lock(mu_);
  while (workers_.size() < target) {
    const unsigned slot = static_cast<unsigned>(workers_.size());
    workers_.emplace_back(
        [this, slot, spawn_gen = generation_] { worker_main(slot, spawn_gen); });
  }
}

void WorkerPool::worker_main(unsigned slot, std::uint64_t spawn_generation) {
  std::uint64_t seen = spawn_generation;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    if (slot >= active_) continue;  // Not participating this generation.
    const std::function<void(int)>* fn = fn_;
    const int count = count_;
#ifdef BITSPREAD_TELEMETRY
    const std::uint64_t gen_start_ns = gen_start_ns_;  // Read under mu_.
#endif
    lock.unlock();
#ifdef BITSPREAD_TELEMETRY
    const std::uint64_t woke_ns = telemetry::clock_now_ns();
    wake_ns_.fetch_add(woke_ns - gen_start_ns, std::memory_order_relaxed);
    std::uint64_t my_items = 0;
#endif
    t_inside_pool_worker = true;
    while (true) {
      const int i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      (*fn)(i);
#ifdef BITSPREAD_TELEMETRY
      ++my_items;
#endif
    }
    t_inside_pool_worker = false;
#ifdef BITSPREAD_TELEMETRY
    const std::uint64_t busy_end_ns = telemetry::clock_now_ns();
    // Reuses the two clock reads already taken for busy_ns accounting: an
    // installed flight recorder costs the pool no extra clock traffic.
    if (telemetry::TraceRecorder* recorder = telemetry::trace_recorder()) {
      recorder->span("worker_busy", woke_ns, busy_end_ns);
    }
    WorkerStats& stats = worker_stats_[slot];
    stats.busy_ns.fetch_add(busy_end_ns - woke_ns,
                            std::memory_order_relaxed);
    stats.items.fetch_add(my_items, std::memory_order_relaxed);
    stats.generations.fetch_add(1, std::memory_order_relaxed);
    items_total_.fetch_add(my_items, std::memory_order_relaxed);
#endif
    lock.lock();
    if (--pending_ == 0) done_cv_.notify_all();
  }
}

unsigned host_concurrency() noexcept {
#if defined(__linux__)
  cpu_set_t set;
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int usable = CPU_COUNT(&set);
    if (usable > 0) return static_cast<unsigned>(usable);
  }
  const long online = sysconf(_SC_NPROCESSORS_ONLN);
  if (online > 0) return static_cast<unsigned>(online);
#endif
  return std::max(1u, std::thread::hardware_concurrency());
}

unsigned planned_workers(int count, unsigned threads) noexcept {
  if (count <= 0) return 0;
  const unsigned target = threads == 0 ? host_concurrency() : threads;
  return std::max(1u, std::min({target, WorkerPool::kMaxWorkers,
                                static_cast<unsigned>(count)}));
}

void WorkerPool::run(int count, const std::function<void(int)>& fn,
                     unsigned threads) {
  if (count <= 0) return;
  const unsigned target = planned_workers(count, threads);
  if (target == 1 || t_inside_pool_worker) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  std::lock_guard<std::mutex> run_lock(run_mu_);
  const telemetry::ScopedTimer dispatch_timer(
      telemetry::Phase::kPoolDispatch);
  ensure_workers(target);
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    active_ = target;
    pending_ = target;
    ++generation_;
#ifdef BITSPREAD_TELEMETRY
    gen_start_ns_ = telemetry::clock_now_ns();
#endif
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
  fn_ = nullptr;
#ifdef BITSPREAD_TELEMETRY
  lock.unlock();
  generations_total_.fetch_add(1, std::memory_order_relaxed);
  dispatch_ns_.fetch_add(telemetry::clock_now_ns() - gen_start_ns_,
                         std::memory_order_relaxed);
#endif
}

void parallel_for(int count, const std::function<void(int)>& fn,
                  unsigned max_threads) {
  WorkerPool::shared().run(count, fn, max_threads);
}

ConvergenceMeasurement measure_convergence_parallel(
    const std::function<RunResult(Rng&)>& single_run,
    const SeedSequence& seeds, std::uint64_t cell, int replicates,
    unsigned max_threads) {
  // Collect per-replicate results, then fold in replicate order so the
  // aggregate (including round_samples ordering) matches the serial path
  // exactly.
  std::vector<RunResult> results(static_cast<std::size_t>(replicates));
  parallel_for(
      replicates,
      [&](int rep) {
        Rng rng = seeds.stream(cell, static_cast<std::uint64_t>(rep));
        results[static_cast<std::size_t>(rep)] = single_run(rng);
      },
      max_threads);

  ConvergenceMeasurement out;
  out.replicates = replicates;
  for (const RunResult& result : results) {
    const double rounds = result.parallel_rounds();
    out.rounds_lower_bound.add(rounds);
    if (result.reason == StopReason::kCorrectConsensus) {
      ++out.converged;
      out.rounds.add(rounds);
      out.round_samples.push_back(rounds);
    } else if (result.reason == StopReason::kRoundLimit ||
               result.reason == StopReason::kDegraded) {
      ++out.censored;
      if (result.reason == StopReason::kDegraded) ++out.degraded;
    } else {
      ++out.wrong_outcome;
    }
  }
  return out;
}

}  // namespace bitspread
