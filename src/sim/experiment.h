// Replicated convergence-time measurement with right-censoring.
//
// Lower-bound experiments must cap rounds (the whole point is that
// convergence is SLOW), so the measurement distinguishes converged runs from
// censored ones and reports censored counts explicitly instead of silently
// truncating (a censored mean would understate the truth).
#ifndef BITSPREAD_SIM_EXPERIMENT_H_
#define BITSPREAD_SIM_EXPERIMENT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "engine/stopping.h"
#include "random/seeding.h"
#include "stats/summary.h"

namespace bitspread {

struct ConvergenceMeasurement {
  int replicates = 0;
  int converged = 0;
  // CAUTION — `degraded` is DOUBLE-COUNTED inside `censored`: every
  // kDegraded run increments both fields (a degraded run hit the cap too),
  // so `censored + degraded` over-counts. Invariant (asserted in
  // tests/sim_test.cc): 0 <= degraded <= censored, and
  // converged + censored + wrong_outcome == replicates. Use censored_only()
  // for runs that were plainly capped without degradation.
  int censored = 0;       // Hit the round cap: true time exceeds the cap.
  int degraded = 0;       // Censored AND never re-converged after a source
                          // flip (kDegraded; also counted in `censored`).
  int wrong_outcome = 0;  // Wrong consensus / interval exit (context-specific).

  // Censored runs that did NOT end degraded (plain kRoundLimit).
  int censored_only() const noexcept { return censored - degraded; }

  // Rounds of CONVERGED runs only.
  RunningStats rounds;
  std::vector<double> round_samples;

  // Rounds over ALL runs, counting a censored run at the cap (a conservative
  // lower bound on the true mean).
  RunningStats rounds_lower_bound;

  double convergence_rate() const noexcept {
    return replicates == 0
               ? 0.0
               : static_cast<double>(converged) / replicates;
  }
};

// Runs `replicates` independent repetitions of `single_run`, which receives a
// replicate-specific Rng and must return a RunResult (any engine). `cell`
// distinguishes parameter cells so sweeps get disjoint streams.
ConvergenceMeasurement measure_convergence(
    const std::function<RunResult(Rng&)>& single_run, const SeedSequence& seeds,
    std::uint64_t cell, int replicates);

// Variant for runs that report interval crossings: counts kIntervalExit as
// the measured event instead of convergence.
ConvergenceMeasurement measure_crossing(
    const std::function<RunResult(Rng&)>& single_run, const SeedSequence& seeds,
    std::uint64_t cell, int replicates);

}  // namespace bitspread

#endif  // BITSPREAD_SIM_EXPERIMENT_H_
