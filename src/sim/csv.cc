#include "sim/csv.h"

#include <fstream>
#include <sstream>

namespace bitspread {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

std::string to_csv(const Table& table) {
  std::ostringstream out;
  const auto emit_row = [&out](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out << ',';
      out << csv_escape(cells[c]);
    }
    out << '\n';
  };
  emit_row(table.headers());
  for (const auto& row : table.rows()) emit_row(row);
  return out.str();
}

bool write_csv(const Table& table, const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  file << to_csv(table);
  return static_cast<bool>(file);
}

}  // namespace bitspread
