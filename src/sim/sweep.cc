#include "sim/sweep.h"

#include <cassert>
#include <cmath>

namespace bitspread {

std::vector<std::uint64_t> geometric_grid(std::uint64_t lo, std::uint64_t hi,
                                          double factor) {
  assert(lo > 0 && factor > 1.0);
  std::vector<std::uint64_t> grid;
  double value = static_cast<double>(lo);
  while (static_cast<std::uint64_t>(value) < hi) {
    const auto v = static_cast<std::uint64_t>(value);
    if (grid.empty() || grid.back() != v) grid.push_back(v);
    value *= factor;
  }
  if (grid.empty() || grid.back() != hi) grid.push_back(hi);
  return grid;
}

std::vector<std::uint64_t> power_of_two_grid(int lo_exp, int hi_exp) {
  assert(lo_exp >= 0 && hi_exp >= lo_exp && hi_exp < 63);
  std::vector<std::uint64_t> grid;
  for (int e = lo_exp; e <= hi_exp; ++e) {
    grid.push_back(std::uint64_t{1} << e);
  }
  return grid;
}

std::vector<std::uint64_t> linear_grid(std::uint64_t lo, std::uint64_t hi,
                                       std::uint64_t step) {
  assert(step > 0);
  std::vector<std::uint64_t> grid;
  for (std::uint64_t v = lo; v <= hi; v += step) grid.push_back(v);
  return grid;
}

}  // namespace bitspread
