#include "sim/cli.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>

#include "engine/stopping.h"
#include "sim/experiment.h"
#include "sim/seeds.h"
#include "telemetry/reporter.h"

namespace bitspread {

bool FlightRecorderOptions::parse_flag(const std::string& arg) {
  if (arg.rfind("--trace-out=", 0) == 0) {
    trace_out = arg.substr(12);
  } else if (arg.rfind("--stream-out=", 0) == 0) {
    stream_out = arg.substr(13);
  } else if (arg.rfind("--trace-buffer=", 0) == 0) {
    trace_buffer = static_cast<std::size_t>(
        std::strtoull(arg.c_str() + 15, nullptr, 0));
  } else if (arg.rfind("--stream-stride=", 0) == 0) {
    stream_stride = std::strtoull(arg.c_str() + 16, nullptr, 0);
  } else if (arg.rfind("--checkpoint-out=", 0) == 0) {
    checkpoint_out = arg.substr(17);
  } else if (arg.rfind("--checkpoint-every=", 0) == 0) {
    checkpoint_every = std::strtoull(arg.c_str() + 19, nullptr, 0);
  } else if (arg.rfind("--checkpoint-ring=", 0) == 0) {
    checkpoint_ring = static_cast<std::uint32_t>(
        std::strtoul(arg.c_str() + 18, nullptr, 0));
  } else if (arg.rfind("--resume=", 0) == 0) {
    resume = arg.substr(9);
  } else if (arg.rfind("--pmu-out=", 0) == 0) {
    pmu_out = arg.substr(10);
  } else if (arg.rfind("--profile-out=", 0) == 0) {
    profile_out = arg.substr(14);
  } else if (arg.rfind("--profile-hz=", 0) == 0) {
    profile_hz = std::atoi(arg.c_str() + 13);
  } else {
    return false;
  }
  return true;
}

BenchOptions parse_bench_options(int argc, char** argv) {
  BenchOptions options;
  options.seed = master_seed_from_env();
  const char* quick_env = std::getenv("BITSPREAD_QUICK");
  if (quick_env != nullptr && std::strcmp(quick_env, "0") != 0) {
    options.quick = true;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      options.quick = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.c_str() + 7, nullptr, 0);
    } else if (arg.rfind("--reps=", 0) == 0) {
      options.replicates = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--json=", 0) == 0) {
      options.json_path = arg.substr(7);
    } else if (options.recorder.parse_flag(arg)) {
      // Consumed by the flight recorder.
    } else if (arg.rfind("--csv=", 0) == 0) {
      std::cerr << "warning: --csv= has been removed; the unified --json "
                   "report carries the tables\n";
    } else {
      std::cerr << "warning: unknown option '" << arg << "' ignored\n";
    }
  }
  return options;
}

void emit_table(const Table& table, const BenchOptions& options) {
  (void)options;
  table.print(std::cout);
}

void print_banner(const std::string& experiment_id, const std::string& title,
                  const BenchOptions& options) {
  std::cout << "=== " << experiment_id << ": " << title << " ===\n"
            << "seed=" << options.seed
            << (options.quick ? " (quick mode)" : "") << "\n\n";
}

namespace {

// Ledger counter names: stable registry keys, shared with the JSON schema.
constexpr const char kTotal[] = "outcomes.total";
constexpr const char kConverged[] = "outcomes.converged";
constexpr const char kCensored[] = "outcomes.censored";
constexpr const char kDegraded[] = "outcomes.degraded";
constexpr const char kWrong[] = "outcomes.wrong";

}  // namespace

OutcomeLedger::OutcomeLedger()
    : owned_(std::make_unique<MetricsRegistry>()),
      total_(owned_->counter(kTotal)),
      converged_(owned_->counter(kConverged)),
      censored_(owned_->counter(kCensored)),
      degraded_(owned_->counter(kDegraded)),
      wrong_(owned_->counter(kWrong)) {}

OutcomeLedger::OutcomeLedger(MetricsRegistry* registry)
    : total_(registry->counter(kTotal)),
      converged_(registry->counter(kConverged)),
      censored_(registry->counter(kCensored)),
      degraded_(registry->counter(kDegraded)),
      wrong_(registry->counter(kWrong)) {}

void OutcomeLedger::add(const ConvergenceMeasurement& measurement) {
  total_.increment(static_cast<std::uint64_t>(measurement.replicates));
  converged_.increment(static_cast<std::uint64_t>(measurement.converged));
  censored_.increment(static_cast<std::uint64_t>(measurement.censored));
  degraded_.increment(static_cast<std::uint64_t>(measurement.degraded));
  wrong_.increment(static_cast<std::uint64_t>(measurement.wrong_outcome));
}

void OutcomeLedger::add_run(const RunResult& result) {
  total_.increment();
  if (result.converged()) {
    converged_.increment();
  } else if (result.censored()) {
    censored_.increment();
    if (result.degraded()) degraded_.increment();
  } else {
    wrong_.increment();
  }
}

void OutcomeLedger::report(std::ostream& out) const {
  out << "outcomes: " << converged() << "/" << total() << " converged";
  if (censored() > 0) {
    out << ", " << censored() << " censored (round cap)";
    if (degraded() > 0) out << " (" << degraded() << " degraded)";
  }
  if (wrong() > 0) out << ", " << wrong() << " wrong outcome";
  out << "\n";
}

ExampleOptions parse_example_options(int argc, char** argv) {
  ExampleOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace") {
      options.trace = true;
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      options.metrics_out = argv[++i];
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      options.metrics_out = arg.substr(14);
    } else if (options.recorder.parse_flag(arg)) {
      // Consumed by the flight recorder.
    } else if (arg.rfind("--", 0) == 0) {
      // Positional arguments stay the example's business.
      std::cerr << "warning: unknown option '" << arg << "' ignored\n";
    }
  }
  return options;
}

FlightRecorderScope::FlightRecorderScope(FlightRecorderOptions options)
    : options_(std::move(options)) {
  // Checkpointer first (independent of telemetry): a loaded resume decides
  // how the JSONL stream opens below.
  if (options_.checkpoint_requested()) {
    snapshot::CheckpointOptions checkpoint_options;
    checkpoint_options.path = options_.checkpoint_out.value_or("checkpoint");
    checkpoint_options.every = options_.checkpoint_every;
    checkpoint_options.ring = options_.checkpoint_ring;
    checkpointer_ =
        std::make_unique<snapshot::Checkpointer>(checkpoint_options);
    if (options_.resume && !checkpointer_->load_resume(*options_.resume)) {
      std::cerr << "[resume: " << checkpointer_->last_error()
                << "; starting fresh]\n";
    }
    checkpointer_->set_decorator([this](snapshot::RunSnapshot& snap) {
      if (stream_ != nullptr) {
        snap.stream_rounds_seen = stream_->rounds_seen();
        snap.stream_lines = stream_->lines();
      }
    });
    snapshot::install_checkpointer(checkpointer_.get());
  }
  // Graceful SIGINT/SIGTERM whenever any output could be lost: drivers stop
  // at the next round boundary and this scope's destructor flushes.
  if (options_.requested() || options_.profiling_requested() ||
      checkpointer_ != nullptr) {
    snapshot::install_interrupt_handlers();
  }
  if (options_.pmu_out) {
    if (telemetry::kCompiledIn) {
      // Touching the main thread's counter set here (not in the destructor)
      // surfaces a perf_event_open failure before the run, not after it.
      profile::thread_counters();
      profile::install_pmu_sink(&pmu_stats_);
      pmu_installed_ = true;
    } else {
      std::cerr << "note: --pmu-out has no effect (build with "
                   "-DBITSPREAD_TELEMETRY=ON)\n";
    }
  }
  if (options_.profile_out) {
    // Sampling needs no telemetry build and no PMU — SIGPROF + frame
    // pointers only. Started last so profiler samples cover the run, not
    // this scope's setup.
    profiler_ = std::make_unique<profile::SamplingProfiler>();
    if (!profiler_->start(options_.profile_hz)) {
      std::cerr << "note: sampling profiler not started: " << profiler_->why()
                << "\n";
      profiler_.reset();
    }
  }
  if (!options_.requested()) return;
  if (!telemetry::kCompiledIn) {
    std::cerr << "note: --trace-out/--stream-out have no effect (build with "
                 "-DBITSPREAD_TELEMETRY=ON)\n";
    return;
  }
  if (options_.trace_out) {
    telemetry::TraceRecorder::Options trace_options;
    trace_options.capacity = options_.trace_buffer;
    recorder_ = std::make_unique<telemetry::TraceRecorder>(trace_options);
    telemetry::install_trace_recorder(recorder_.get());
  }
  if (options_.stream_out) {
    telemetry::RoundStream::Options stream_options;
    stream_options.stride = options_.stream_stride;
    // A resumed run appends to the stream of the interrupted one, with the
    // counters seeded from the snapshot so accounting spans both segments.
    const snapshot::RunSnapshot* resume_snap =
        checkpointer_ != nullptr ? checkpointer_->pending_resume() : nullptr;
    stream_options.append = resume_snap != nullptr;
    stream_ = std::make_unique<telemetry::RoundStream>(*options_.stream_out,
                                                       stream_options);
    if (!stream_->ok()) {
      std::cerr << "[failed to open stream " << *options_.stream_out << "]\n";
      stream_.reset();
    } else {
      if (resume_snap != nullptr) {
        stream_->restore_counts(resume_snap->stream_rounds_seen,
                                resume_snap->stream_lines);
      }
      telemetry::install_round_sink(stream_.get());
    }
  }
}

void FlightRecorderScope::set_bias(std::function<double(double)> bias) {
  if (stream_ != nullptr) stream_->set_bias(std::move(bias));
}

FlightRecorderScope::~FlightRecorderScope() {
  if (profiler_ != nullptr) {
    profiler_->stop();
    if (profiler_->write_folded(*options_.profile_out)) {
      std::cerr << "[profile written to " << *options_.profile_out << ": "
                << profiler_->samples_taken() << " samples";
      if (profiler_->samples_dropped() > 0) {
        std::cerr << ", " << profiler_->samples_dropped()
                  << " dropped (buffer full)";
      }
      std::cerr << "]\n";
    }
  }
  if (pmu_installed_) {
    profile::install_pmu_sink(nullptr);
    const profile::PmuCounterSet& set = profile::thread_counters();
    std::ofstream out(*options_.pmu_out);
    if (out) {
      out << profile::pmu_stats_to_json(pmu_stats_, set.available(),
                                        set.unavailable_reason())
                 .dump();
      std::cerr << "[pmu counters written to " << *options_.pmu_out
                << (set.available() ? "" : " (no PMU: timing fallback)")
                << "]\n";
    } else {
      std::cerr << "[failed to write pmu counters to " << *options_.pmu_out
                << "]\n";
    }
  }
  if (recorder_ != nullptr) {
    telemetry::install_trace_recorder(nullptr);
    if (recorder_->write_chrome_trace(*options_.trace_out)) {
      std::cerr << "[trace written to " << *options_.trace_out << ": "
                << recorder_->stored() << " events across "
                << recorder_->buffers() << " lanes";
      if (recorder_->dropped() > 0) {
        std::cerr << ", " << recorder_->dropped()
                  << " oldest dropped (raise --trace-buffer=)";
      }
      std::cerr << "]\n";
    } else {
      std::cerr << "[failed to write trace to " << *options_.trace_out
                << "]\n";
    }
  }
  if (stream_ != nullptr) {
    telemetry::install_round_sink(nullptr);
    if (stream_->flush()) {
      std::cerr << "[stream written to " << *options_.stream_out << ": "
                << stream_->lines() << " lines from " << stream_->rounds_seen()
                << " rounds]\n";
    } else {
      std::cerr << "[failed to write stream to " << *options_.stream_out
                << "]\n";
    }
  }
  if (checkpointer_ != nullptr) {
    snapshot::install_checkpointer(nullptr);
    if (checkpointer_->written() > 0) {
      std::cerr << "[checkpoints: " << checkpointer_->written()
                << " written to " << checkpointer_->options().path
                << ".<slot>.snap (ring of "
                << checkpointer_->options().ring << ")]\n";
    }
  }
}

ExampleTelemetryScope::ExampleTelemetryScope(ExampleOptions options)
    : options_(std::move(options)), flight_recorder_(options_.recorder) {
  if (options_.trace) {
    if (telemetry::kCompiledIn) {
      telemetry::install_phase_sink(&stats_);
    } else {
      std::cerr << "note: --trace has no effect (build with "
                   "-DBITSPREAD_TELEMETRY=ON)\n";
    }
  }
}

ExampleTelemetryScope::~ExampleTelemetryScope() {
  if (options_.trace && telemetry::kCompiledIn) {
    telemetry::install_phase_sink(nullptr);
    std::cerr << "\nphase trace (engine-side, wall time):\n";
    for (int i = 0; i < telemetry::kPhaseCount; ++i) {
      const auto phase = static_cast<telemetry::Phase>(i);
      if (stats_.count(phase) == 0) continue;
      std::cerr << "  " << std::left << std::setw(14)
                << telemetry::phase_name(phase) << std::right << std::fixed
                << std::setprecision(6) << stats_.total_seconds(phase)
                << " s across " << stats_.count(phase) << " events\n";
    }
  }
  if (options_.metrics_out) {
    std::ofstream out(*options_.metrics_out);
    if (out) {
      out << metrics_to_json(MetricsRegistry::global().snapshot()).dump();
      std::cerr << "[metrics written to " << *options_.metrics_out << "]\n";
    } else {
      std::cerr << "[failed to write metrics to " << *options_.metrics_out
                << "]\n";
    }
  }
}

}  // namespace bitspread
