#include "sim/cli.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>

#include "engine/stopping.h"
#include "sim/csv.h"
#include "sim/experiment.h"
#include "sim/seeds.h"
#include "telemetry/reporter.h"

namespace bitspread {

BenchOptions parse_bench_options(int argc, char** argv) {
  BenchOptions options;
  options.seed = master_seed_from_env();
  const char* quick_env = std::getenv("BITSPREAD_QUICK");
  if (quick_env != nullptr && std::strcmp(quick_env, "0") != 0) {
    options.quick = true;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      options.quick = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.c_str() + 7, nullptr, 0);
    } else if (arg.rfind("--reps=", 0) == 0) {
      options.replicates = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--csv=", 0) == 0) {
      options.csv_path = arg.substr(6);
    } else if (arg.rfind("--json=", 0) == 0) {
      options.json_path = arg.substr(7);
    } else {
      std::cerr << "warning: unknown option '" << arg << "' ignored\n";
    }
  }
  return options;
}

void emit_table(const Table& table, const BenchOptions& options) {
  table.print(std::cout);
  if (options.csv_path) {
    if (write_csv(table, *options.csv_path)) {
      std::cerr << "[csv written to " << *options.csv_path
                << "] (deprecated: prefer the unified --json report)\n";
    } else {
      std::cerr << "[failed to write csv to " << *options.csv_path << "]\n";
    }
  }
}

void print_banner(const std::string& experiment_id, const std::string& title,
                  const BenchOptions& options) {
  std::cout << "=== " << experiment_id << ": " << title << " ===\n"
            << "seed=" << options.seed
            << (options.quick ? " (quick mode)" : "") << "\n\n";
}

namespace {

// Ledger counter names: stable registry keys, shared with the JSON schema.
constexpr const char kTotal[] = "outcomes.total";
constexpr const char kConverged[] = "outcomes.converged";
constexpr const char kCensored[] = "outcomes.censored";
constexpr const char kDegraded[] = "outcomes.degraded";
constexpr const char kWrong[] = "outcomes.wrong";

}  // namespace

OutcomeLedger::OutcomeLedger()
    : owned_(std::make_unique<MetricsRegistry>()),
      total_(owned_->counter(kTotal)),
      converged_(owned_->counter(kConverged)),
      censored_(owned_->counter(kCensored)),
      degraded_(owned_->counter(kDegraded)),
      wrong_(owned_->counter(kWrong)) {}

OutcomeLedger::OutcomeLedger(MetricsRegistry* registry)
    : total_(registry->counter(kTotal)),
      converged_(registry->counter(kConverged)),
      censored_(registry->counter(kCensored)),
      degraded_(registry->counter(kDegraded)),
      wrong_(registry->counter(kWrong)) {}

void OutcomeLedger::add(const ConvergenceMeasurement& measurement) {
  total_.increment(static_cast<std::uint64_t>(measurement.replicates));
  converged_.increment(static_cast<std::uint64_t>(measurement.converged));
  censored_.increment(static_cast<std::uint64_t>(measurement.censored));
  degraded_.increment(static_cast<std::uint64_t>(measurement.degraded));
  wrong_.increment(static_cast<std::uint64_t>(measurement.wrong_outcome));
}

void OutcomeLedger::add_run(const RunResult& result) {
  total_.increment();
  if (result.converged()) {
    converged_.increment();
  } else if (result.censored()) {
    censored_.increment();
    if (result.degraded()) degraded_.increment();
  } else {
    wrong_.increment();
  }
}

void OutcomeLedger::report(std::ostream& out) const {
  out << "outcomes: " << converged() << "/" << total() << " converged";
  if (censored() > 0) {
    out << ", " << censored() << " censored (round cap)";
    if (degraded() > 0) out << " (" << degraded() << " degraded)";
  }
  if (wrong() > 0) out << ", " << wrong() << " wrong outcome";
  out << "\n";
}

ExampleOptions parse_example_options(int argc, char** argv) {
  ExampleOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace") {
      options.trace = true;
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      options.metrics_out = argv[++i];
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      options.metrics_out = arg.substr(14);
    } else if (arg.rfind("--", 0) == 0) {
      // Positional arguments stay the example's business.
      std::cerr << "warning: unknown option '" << arg << "' ignored\n";
    }
  }
  return options;
}

ExampleTelemetryScope::ExampleTelemetryScope(ExampleOptions options)
    : options_(std::move(options)) {
  if (options_.trace) {
    if (telemetry::kCompiledIn) {
      telemetry::install_phase_sink(&stats_);
    } else {
      std::cerr << "note: --trace has no effect (build with "
                   "-DBITSPREAD_TELEMETRY=ON)\n";
    }
  }
}

ExampleTelemetryScope::~ExampleTelemetryScope() {
  if (options_.trace && telemetry::kCompiledIn) {
    telemetry::install_phase_sink(nullptr);
    std::cerr << "\nphase trace (engine-side, wall time):\n";
    for (int i = 0; i < telemetry::kPhaseCount; ++i) {
      const auto phase = static_cast<telemetry::Phase>(i);
      if (stats_.count(phase) == 0) continue;
      std::cerr << "  " << std::left << std::setw(14)
                << telemetry::phase_name(phase) << std::right << std::fixed
                << std::setprecision(6) << stats_.total_seconds(phase)
                << " s across " << stats_.count(phase) << " events\n";
    }
  }
  if (options_.metrics_out) {
    std::ofstream out(*options_.metrics_out);
    if (out) {
      out << metrics_to_json(MetricsRegistry::global().snapshot()).dump();
      std::cerr << "[metrics written to " << *options_.metrics_out << "]\n";
    } else {
      std::cerr << "[failed to write metrics to " << *options_.metrics_out
                << "]\n";
    }
  }
}

}  // namespace bitspread
