#include "sim/cli.h"

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "engine/stopping.h"
#include "sim/csv.h"
#include "sim/experiment.h"
#include "sim/seeds.h"

namespace bitspread {

BenchOptions parse_bench_options(int argc, char** argv) {
  BenchOptions options;
  options.seed = master_seed_from_env();
  const char* quick_env = std::getenv("BITSPREAD_QUICK");
  if (quick_env != nullptr && std::strcmp(quick_env, "0") != 0) {
    options.quick = true;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      options.quick = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.c_str() + 7, nullptr, 0);
    } else if (arg.rfind("--reps=", 0) == 0) {
      options.replicates = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--csv=", 0) == 0) {
      options.csv_path = arg.substr(6);
    } else {
      std::cerr << "warning: unknown option '" << arg << "' ignored\n";
    }
  }
  return options;
}

void emit_table(const Table& table, const BenchOptions& options) {
  table.print(std::cout);
  if (options.csv_path) {
    if (write_csv(table, *options.csv_path)) {
      std::cerr << "[csv written to " << *options.csv_path << "]\n";
    } else {
      std::cerr << "[failed to write csv to " << *options.csv_path << "]\n";
    }
  }
}

void print_banner(const std::string& experiment_id, const std::string& title,
                  const BenchOptions& options) {
  std::cout << "=== " << experiment_id << ": " << title << " ===\n"
            << "seed=" << options.seed
            << (options.quick ? " (quick mode)" : "") << "\n\n";
}

void OutcomeLedger::add(const ConvergenceMeasurement& measurement) {
  total_ += measurement.replicates;
  converged_ += measurement.converged;
  censored_ += measurement.censored;
  degraded_ += measurement.degraded;
  wrong_ += measurement.wrong_outcome;
}

void OutcomeLedger::add_run(const RunResult& result) {
  ++total_;
  if (result.converged()) {
    ++converged_;
  } else if (result.censored()) {
    ++censored_;
    if (result.degraded()) ++degraded_;
  } else {
    ++wrong_;
  }
}

void OutcomeLedger::report(std::ostream& out) const {
  out << "outcomes: " << converged_ << "/" << total_ << " converged";
  if (censored_ > 0) {
    out << ", " << censored_ << " censored (round cap)";
    if (degraded_ > 0) out << " (" << degraded_ << " degraded)";
  }
  if (wrong_ > 0) out << ", " << wrong_ << " wrong outcome";
  out << "\n";
}

}  // namespace bitspread
