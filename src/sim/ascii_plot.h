// Minimal ASCII line plots, so experiment binaries can render the paper's
// figures (trajectories, F_n curves, CDFs) directly in the terminal/logs.
#ifndef BITSPREAD_SIM_ASCII_PLOT_H_
#define BITSPREAD_SIM_ASCII_PLOT_H_

#include <span>
#include <string>
#include <vector>

namespace bitspread {

struct PlotOptions {
  int width = 72;
  int height = 16;
  std::string y_label;
  bool show_axes = true;
};

// Plots y against its index (x = 0..n-1), auto-scaled. Returns the multi-line
// string. Series shorter than 2 points yield an explanatory placeholder.
std::string ascii_plot(std::span<const double> y,
                       const PlotOptions& options = {});

// Plots (x, y) pairs, auto-scaled on both axes. Both spans must match.
std::string ascii_plot_xy(std::span<const double> x,
                          std::span<const double> y,
                          const PlotOptions& options = {});

}  // namespace bitspread

#endif  // BITSPREAD_SIM_ASCII_PLOT_H_
