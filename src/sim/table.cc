#include "sim/table.h"

#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace bitspread {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  assert(!headers_.empty());
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string Table::fmt(std::uint64_t value) { return std::to_string(value); }

std::string Table::fmt(std::int64_t value) { return std::to_string(value); }

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
          << cells[c];
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace bitspread
