#include "sim/experiment.h"

namespace bitspread {
namespace {

ConvergenceMeasurement measure(const std::function<RunResult(Rng&)>& single_run,
                               const SeedSequence& seeds, std::uint64_t cell,
                               int replicates, StopReason success) {
  ConvergenceMeasurement out;
  out.replicates = replicates;
  for (int rep = 0; rep < replicates; ++rep) {
    Rng rng = seeds.stream(cell, static_cast<std::uint64_t>(rep));
    const RunResult result = single_run(rng);
    const double rounds = result.parallel_rounds();
    out.rounds_lower_bound.add(rounds);
    if (result.reason == success) {
      ++out.converged;
      out.rounds.add(rounds);
      out.round_samples.push_back(rounds);
    } else if (result.reason == StopReason::kRoundLimit ||
               result.reason == StopReason::kDegraded) {
      ++out.censored;
      if (result.reason == StopReason::kDegraded) ++out.degraded;
    } else {
      ++out.wrong_outcome;
    }
  }
  return out;
}

}  // namespace

ConvergenceMeasurement measure_convergence(
    const std::function<RunResult(Rng&)>& single_run, const SeedSequence& seeds,
    std::uint64_t cell, int replicates) {
  return measure(single_run, seeds, cell, replicates,
                 StopReason::kCorrectConsensus);
}

ConvergenceMeasurement measure_crossing(
    const std::function<RunResult(Rng&)>& single_run, const SeedSequence& seeds,
    std::uint64_t cell, int replicates) {
  return measure(single_run, seeds, cell, replicates,
                 StopReason::kIntervalExit);
}

}  // namespace bitspread
