#include "sim/seeds.h"

#include <cstdlib>
#include <string>

namespace bitspread {

std::uint64_t master_seed_from_env() noexcept {
  const char* raw = std::getenv("BITSPREAD_SEED");
  if (raw == nullptr) return kDefaultMasterSeed;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 0);
  if (end == raw) return kDefaultMasterSeed;
  return static_cast<std::uint64_t>(value);
}

}  // namespace bitspread
