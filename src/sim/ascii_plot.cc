#include "sim/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <iomanip>

namespace bitspread {
namespace {

struct Range {
  double lo = 0.0;
  double hi = 1.0;
};

Range find_range(std::span<const double> values) {
  Range range{std::numeric_limits<double>::infinity(),
              -std::numeric_limits<double>::infinity()};
  for (const double v : values) {
    range.lo = std::min(range.lo, v);
    range.hi = std::max(range.hi, v);
  }
  if (!(range.hi > range.lo)) {  // Flat or empty series.
    range.lo -= 0.5;
    range.hi += 0.5;
  }
  return range;
}

std::string render(std::span<const double> x, std::span<const double> y,
                   const PlotOptions& options) {
  if (y.size() < 2) return "(series too short to plot)\n";
  const int width = std::max(options.width, 8);
  const int height = std::max(options.height, 4);
  const Range xr = find_range(x);
  const Range yr = find_range(y);

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width),
                                            ' '));
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double fx = (x[i] - xr.lo) / (xr.hi - xr.lo);
    const double fy = (y[i] - yr.lo) / (yr.hi - yr.lo);
    const int col = std::clamp(static_cast<int>(fx * (width - 1) + 0.5), 0,
                               width - 1);
    const int row = std::clamp(
        height - 1 - static_cast<int>(fy * (height - 1) + 0.5), 0,
        height - 1);
    grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = '*';
  }

  std::ostringstream out;
  auto format_tick = [](double v) {
    std::ostringstream tick;
    tick << std::setw(10) << std::setprecision(4) << std::defaultfloat << v;
    return tick.str();
  };
  if (!options.y_label.empty()) out << options.y_label << '\n';
  for (int r = 0; r < height; ++r) {
    if (options.show_axes) {
      if (r == 0) {
        out << format_tick(yr.hi) << " |";
      } else if (r == height - 1) {
        out << format_tick(yr.lo) << " |";
      } else {
        out << std::string(10, ' ') << " |";
      }
    }
    out << grid[static_cast<std::size_t>(r)] << '\n';
  }
  if (options.show_axes) {
    out << std::string(11, ' ') << '+'
        << std::string(static_cast<std::size_t>(width), '-') << '\n'
        << std::string(12, ' ') << format_tick(xr.lo)
        << std::setw(width - 10) << format_tick(xr.hi) << '\n';
  }
  return out.str();
}

}  // namespace

std::string ascii_plot(std::span<const double> y, const PlotOptions& options) {
  std::vector<double> x(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i);
  return render(x, y, options);
}

std::string ascii_plot_xy(std::span<const double> x,
                          std::span<const double> y,
                          const PlotOptions& options) {
  if (x.size() != y.size()) return "(x/y size mismatch)\n";
  return render(x, y, options);
}

}  // namespace bitspread
