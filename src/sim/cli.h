// Shared command-line handling for the bench/experiment binaries.
//
// Every bench accepts:
//   --quick          smaller grids / fewer replicates (also BITSPREAD_QUICK=1)
//   --seed=<u64>     master seed (also BITSPREAD_SEED)
//   --reps=<int>     replicate override
//   --csv=<path>     mirror the main table to a CSV file
#ifndef BITSPREAD_SIM_CLI_H_
#define BITSPREAD_SIM_CLI_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "sim/table.h"

namespace bitspread {

struct ConvergenceMeasurement;
struct RunResult;

struct BenchOptions {
  bool quick = false;
  std::uint64_t seed = 0;
  std::optional<int> replicates;
  std::optional<std::string> csv_path;

  int reps_or(int dflt) const noexcept { return replicates.value_or(dflt); }
};

BenchOptions parse_bench_options(int argc, char** argv);

// Prints the table to stdout and mirrors to CSV if requested; reports the
// CSV path (or an error) on stderr.
void emit_table(const Table& table, const BenchOptions& options);

// Standard experiment banner.
void print_banner(const std::string& experiment_id, const std::string& title,
                  const BenchOptions& options);

// Accumulates run outcomes across an experiment so binaries report
// right-censoring EXPLICITLY (a silently truncated mean understates the
// truth) and can exit nonzero when nothing converged — which lets CI and
// scripts catch a stalled configuration instead of reading a green exit
// code off a table of censored rows.
class OutcomeLedger {
 public:
  void add(const ConvergenceMeasurement& measurement);
  void add_run(const RunResult& result);

  int total() const noexcept { return total_; }
  int converged() const noexcept { return converged_; }
  int censored() const noexcept { return censored_; }
  int degraded() const noexcept { return degraded_; }
  int wrong() const noexcept { return wrong_; }

  // One-line summary, e.g.
  //   outcomes: 37/60 converged, 20 censored (3 degraded), 3 wrong outcome
  void report(std::ostream& out) const;

  // 0 if at least one run converged, 1 otherwise (EXIT_FAILURE semantics).
  int exit_status() const noexcept { return converged_ > 0 ? 0 : 1; }

 private:
  int total_ = 0;
  int converged_ = 0;
  int censored_ = 0;
  int degraded_ = 0;
  int wrong_ = 0;
};

}  // namespace bitspread

#endif  // BITSPREAD_SIM_CLI_H_
