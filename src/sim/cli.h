// Shared command-line handling for the bench/experiment binaries.
//
// Every bench accepts:
//   --quick          smaller grids / fewer replicates (also BITSPREAD_QUICK=1)
//   --seed=<u64>     master seed (also BITSPREAD_SEED)
//   --reps=<int>     replicate override
//   --csv=<path>     mirror the main table to a CSV file
#ifndef BITSPREAD_SIM_CLI_H_
#define BITSPREAD_SIM_CLI_H_

#include <cstdint>
#include <optional>
#include <string>

#include "sim/table.h"

namespace bitspread {

struct BenchOptions {
  bool quick = false;
  std::uint64_t seed = 0;
  std::optional<int> replicates;
  std::optional<std::string> csv_path;

  int reps_or(int dflt) const noexcept { return replicates.value_or(dflt); }
};

BenchOptions parse_bench_options(int argc, char** argv);

// Prints the table to stdout and mirrors to CSV if requested; reports the
// CSV path (or an error) on stderr.
void emit_table(const Table& table, const BenchOptions& options);

// Standard experiment banner.
void print_banner(const std::string& experiment_id, const std::string& title,
                  const BenchOptions& options);

}  // namespace bitspread

#endif  // BITSPREAD_SIM_CLI_H_
