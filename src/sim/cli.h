// Shared command-line handling for the bench/experiment binaries.
//
// Every bench accepts:
//   --quick          smaller grids / fewer replicates (also BITSPREAD_QUICK=1)
//   --seed=<u64>     master seed (also BITSPREAD_SEED)
//   --reps=<int>     replicate override
//   --csv=<path>     mirror the main table to a CSV file (deprecated: the
//                    unified JSON report carries the tables now)
//   --json=<path>    override the destination of the unified JSON report
//
// Example binaries accept (parse_example_options):
//   --metrics-out <path>   dump the global metrics registry as JSON on exit
//   --trace                print a per-phase timing table on exit
//                          (telemetry builds only; a no-op note otherwise)
#ifndef BITSPREAD_SIM_CLI_H_
#define BITSPREAD_SIM_CLI_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "sim/table.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace bitspread {

struct ConvergenceMeasurement;
struct RunResult;

struct BenchOptions {
  bool quick = false;
  std::uint64_t seed = 0;
  std::optional<int> replicates;
  std::optional<std::string> csv_path;
  std::optional<std::string> json_path;

  int reps_or(int dflt) const noexcept { return replicates.value_or(dflt); }
};

BenchOptions parse_bench_options(int argc, char** argv);

// Prints the table to stdout and mirrors to CSV if requested; reports the
// CSV path (or an error) on stderr.
void emit_table(const Table& table, const BenchOptions& options);

// Standard experiment banner.
void print_banner(const std::string& experiment_id, const std::string& title,
                  const BenchOptions& options);

// Accumulates run outcomes across an experiment so binaries report
// right-censoring EXPLICITLY (a silently truncated mean understates the
// truth) and can exit nonzero when nothing converged — which lets CI and
// scripts catch a stalled configuration instead of reading a green exit
// code off a table of censored rows.
//
// The counts live in a MetricsRegistry (counters "outcomes.total",
// "outcomes.converged", "outcomes.censored", "outcomes.degraded",
// "outcomes.wrong"), so a bench that shares its registry gets the ledger's
// tallies in its metrics snapshot for free. The default constructor owns a
// private registry; pass one to share. `degraded` follows the
// ConvergenceMeasurement convention: also counted inside `censored`.
class OutcomeLedger {
 public:
  OutcomeLedger();
  explicit OutcomeLedger(MetricsRegistry* registry);

  void add(const ConvergenceMeasurement& measurement);
  void add_run(const RunResult& result);

  int total() const { return read(total_); }
  int converged() const { return read(converged_); }
  int censored() const { return read(censored_); }
  int degraded() const { return read(degraded_); }
  int wrong() const { return read(wrong_); }

  // One-line summary, e.g.
  //   outcomes: 37/60 converged, 20 censored (3 degraded), 3 wrong outcome
  void report(std::ostream& out) const;

  // 0 if at least one run converged, 1 otherwise (EXIT_FAILURE semantics).
  int exit_status() const { return converged() > 0 ? 0 : 1; }

 private:
  static int read(const MetricsRegistry::Counter& counter) {
    return static_cast<int>(counter.value());
  }

  std::unique_ptr<MetricsRegistry> owned_;  // Null when sharing.
  MetricsRegistry::Counter total_;
  MetricsRegistry::Counter converged_;
  MetricsRegistry::Counter censored_;
  MetricsRegistry::Counter degraded_;
  MetricsRegistry::Counter wrong_;
};

struct ExampleOptions {
  std::optional<std::string> metrics_out;
  bool trace = false;
};

ExampleOptions parse_example_options(int argc, char** argv);

// RAII scope for an example binary's telemetry flags: --trace installs a
// PhaseStats sink for the scope's lifetime and prints the per-phase table on
// destruction; --metrics-out dumps the global registry as JSON. Both are
// no-ops (with a stderr note for --trace) when telemetry is compiled out.
class ExampleTelemetryScope {
 public:
  explicit ExampleTelemetryScope(ExampleOptions options);
  ~ExampleTelemetryScope();

  ExampleTelemetryScope(const ExampleTelemetryScope&) = delete;
  ExampleTelemetryScope& operator=(const ExampleTelemetryScope&) = delete;

 private:
  ExampleOptions options_;
  telemetry::PhaseStats stats_;
};

}  // namespace bitspread

#endif  // BITSPREAD_SIM_CLI_H_
