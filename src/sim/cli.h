// Shared command-line handling for the bench/experiment binaries.
//
// Every bench accepts:
//   --quick          smaller grids / fewer replicates (also BITSPREAD_QUICK=1)
//   --seed=<u64>     master seed (also BITSPREAD_SEED)
//   --reps=<int>     replicate override
//   --json=<path>    override the destination of the unified JSON report
//
// Flight-recorder flags (benches and examples; active in telemetry builds,
// a stderr note otherwise):
//   --trace-out=<path>     write a Chrome trace-event JSON timeline on exit
//   --stream-out=<path>    write a per-round JSONL stream (X_t, drift,
//                          per-phase nanoseconds)
//   --trace-buffer=<n>     ring capacity per recording thread (events)
//   --stream-stride=<n>    emit every n-th round to the stream
//
// Profiling flags (benches and examples; DESIGN.md §3.8):
//   --pmu-out=<path>       write per-phase hardware-counter totals (cycles,
//                          instructions, LLC/branch misses, IPC) as JSON;
//                          probes need a telemetry build, and on no-PMU
//                          hosts the report carries pmu_available:false
//   --profile-out=<path>   run the SIGPROF sampling profiler and write
//                          folded stacks (flamegraph.pl / speedscope input);
//                          works in every build, off unless requested
//   --profile-hz=<n>       sampling rate in CPU-time Hz (default 97)
//
// Checkpoint/resume flags (benches and examples; independent of telemetry):
//   --checkpoint-out=<base>  snapshot ring base path (<base>.<slot>.snap)
//   --checkpoint-every=<k>   snapshot every k parallel rounds (default 0:
//                            only on SIGINT/SIGTERM)
//   --checkpoint-ring=<r>    retained ring entries (default 2)
//   --resume=auto|<path>     resume from the newest valid ring entry (auto,
//                            with corrupt-entry fallback) or one exact file
//
// Example binaries additionally accept (parse_example_options):
//   --metrics-out <path>   dump the global metrics registry as JSON on exit
//   --trace                print a per-phase timing table on exit
//                          (telemetry builds only; a no-op note otherwise)
//
// The former --csv=<path> table mirror (deprecated in the telemetry PR) has
// been removed; the unified JSON report carries the tables.
#ifndef BITSPREAD_SIM_CLI_H_
#define BITSPREAD_SIM_CLI_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "profile/counters.h"
#include "profile/sampling.h"
#include "sim/table.h"
#include "snapshot/checkpoint.h"
#include "telemetry/jsonl.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace bitspread {

struct ConvergenceMeasurement;
struct RunResult;

// Flight-recorder and checkpoint flags shared by bench and example binaries.
struct FlightRecorderOptions {
  std::optional<std::string> trace_out;
  std::optional<std::string> stream_out;
  std::size_t trace_buffer = std::size_t{1} << 15;
  std::uint64_t stream_stride = 1;
  // Checkpoint/resume (snapshot/checkpoint.h): ring base path, cadence in
  // parallel rounds (0 = only on interrupt), retained entries, and the
  // resume source ("auto" or an explicit snapshot file).
  std::optional<std::string> checkpoint_out;
  std::uint64_t checkpoint_every = 0;
  std::uint32_t checkpoint_ring = 2;
  std::optional<std::string> resume;
  // Profiling (--pmu-out= / --profile-out= / --profile-hz=). 97 Hz default:
  // prime, so sampling does not alias round-period work.
  std::optional<std::string> pmu_out;
  std::optional<std::string> profile_out;
  int profile_hz = 97;

  bool requested() const noexcept {
    return trace_out.has_value() || stream_out.has_value();
  }
  bool checkpoint_requested() const noexcept {
    return checkpoint_out.has_value() || resume.has_value();
  }
  bool profiling_requested() const noexcept {
    return pmu_out.has_value() || profile_out.has_value();
  }
  // Consumes the flag if it matches one of the recorder/checkpoint options.
  bool parse_flag(const std::string& arg);
};

struct BenchOptions {
  bool quick = false;
  std::uint64_t seed = 0;
  std::optional<int> replicates;
  std::optional<std::string> json_path;
  FlightRecorderOptions recorder;

  int reps_or(int dflt) const noexcept { return replicates.value_or(dflt); }
};

BenchOptions parse_bench_options(int argc, char** argv);

// Prints the table to stdout. (The BenchOptions parameter is kept so call
// sites read uniformly; the former CSV mirror is gone.)
void emit_table(const Table& table, const BenchOptions& options);

// Standard experiment banner.
void print_banner(const std::string& experiment_id, const std::string& title,
                  const BenchOptions& options);

// Accumulates run outcomes across an experiment so binaries report
// right-censoring EXPLICITLY (a silently truncated mean understates the
// truth) and can exit nonzero when nothing converged — which lets CI and
// scripts catch a stalled configuration instead of reading a green exit
// code off a table of censored rows.
//
// The counts live in a MetricsRegistry (counters "outcomes.total",
// "outcomes.converged", "outcomes.censored", "outcomes.degraded",
// "outcomes.wrong"), so a bench that shares its registry gets the ledger's
// tallies in its metrics snapshot for free. The default constructor owns a
// private registry; pass one to share. `degraded` follows the
// ConvergenceMeasurement convention: also counted inside `censored`.
class OutcomeLedger {
 public:
  OutcomeLedger();
  explicit OutcomeLedger(MetricsRegistry* registry);

  void add(const ConvergenceMeasurement& measurement);
  void add_run(const RunResult& result);

  int total() const { return read(total_); }
  int converged() const { return read(converged_); }
  int censored() const { return read(censored_); }
  int degraded() const { return read(degraded_); }
  int wrong() const { return read(wrong_); }

  // One-line summary, e.g.
  //   outcomes: 37/60 converged, 20 censored (3 degraded), 3 wrong outcome
  void report(std::ostream& out) const;

  // 0 if at least one run converged, 1 otherwise (EXIT_FAILURE semantics).
  int exit_status() const { return converged() > 0 ? 0 : 1; }

 private:
  static int read(const MetricsRegistry::Counter& counter) {
    return static_cast<int>(counter.value());
  }

  std::unique_ptr<MetricsRegistry> owned_;  // Null when sharing.
  MetricsRegistry::Counter total_;
  MetricsRegistry::Counter converged_;
  MetricsRegistry::Counter censored_;
  MetricsRegistry::Counter degraded_;
  MetricsRegistry::Counter wrong_;
};

struct ExampleOptions {
  std::optional<std::string> metrics_out;
  bool trace = false;
  FlightRecorderOptions recorder;
};

ExampleOptions parse_example_options(int argc, char** argv);

// RAII scope for the flight recorder: when the options request any output
// and the library is a telemetry build, installs a TraceRecorder (and a
// RoundStream when --stream-out= was given) for the scope's lifetime; the
// destructor uninstalls both, writes the Chrome trace file, flushes the
// stream, and reports what was written (with the dropped-event count) on
// stderr. In a non-telemetry build a single stderr note explains how to
// enable it. Construct before the run, destroy after — installation must
// not race an engine.
//
// The scope also owns the checkpoint lifecycle (--checkpoint-out=/--resume=;
// independent of telemetry): the Checkpointer is created and a resume
// snapshot loaded BEFORE the stream opens, so a resumed run appends to its
// JSONL file (with restored line accounting) instead of truncating it. When
// any output or checkpointing is active, SIGINT/SIGTERM handlers are
// installed: the first signal makes every RunDriver stop at the next round
// boundary (writing a final snapshot when checkpointing), control unwinds,
// and this destructor flushes the stream and trace buffers — graceful
// shutdown never loses buffered rounds.
class FlightRecorderScope {
 public:
  explicit FlightRecorderScope(FlightRecorderOptions options);
  ~FlightRecorderScope();

  FlightRecorderScope(const FlightRecorderScope&) = delete;
  FlightRecorderScope& operator=(const FlightRecorderScope&) = delete;

  // Forwards a drift model x ↦ F_n(x) to the JSONL stream (no-op without
  // one). Call before the instrumented run.
  void set_bias(std::function<double(double)> bias);

  // The active recorder, or nullptr when none was requested/installed.
  telemetry::TraceRecorder* recorder() noexcept { return recorder_.get(); }
  // The active checkpointer, or nullptr when checkpointing is off.
  snapshot::Checkpointer* checkpointer() noexcept {
    return checkpointer_.get();
  }

  // The PMU sink active for this scope, or nullptr when --pmu-out= is off
  // (benches embed its totals in their JSON reports).
  profile::PmuPhaseStats* pmu_stats() noexcept {
    return pmu_installed_ ? &pmu_stats_ : nullptr;
  }

  // True while the SIGPROF sampling profiler is running (--profile-out=).
  // Benches record this in their reports so check_telemetry_overhead.py can
  // reject overhead measurements taken with sampling interrupts firing.
  bool sampling_active() const noexcept {
    return profiler_ != nullptr && profiler_->running();
  }

 private:
  FlightRecorderOptions options_;
  std::unique_ptr<snapshot::Checkpointer> checkpointer_;
  std::unique_ptr<telemetry::TraceRecorder> recorder_;
  std::unique_ptr<telemetry::RoundStream> stream_;
  // Profiling (--pmu-out= / --profile-out=): the PMU sink lives here so the
  // destructor can render it after uninstalling; the sampling profiler is
  // started last and stopped first.
  profile::PmuPhaseStats pmu_stats_;
  bool pmu_installed_ = false;
  std::unique_ptr<profile::SamplingProfiler> profiler_;
};

// RAII scope for an example binary's telemetry flags: --trace installs a
// PhaseStats sink for the scope's lifetime and prints the per-phase table on
// destruction; --metrics-out dumps the global registry as JSON; the
// flight-recorder flags (--trace-out= etc.) are handled by an embedded
// FlightRecorderScope. All are no-ops (with a stderr note) when telemetry
// is compiled out.
class ExampleTelemetryScope {
 public:
  explicit ExampleTelemetryScope(ExampleOptions options);
  ~ExampleTelemetryScope();

  ExampleTelemetryScope(const ExampleTelemetryScope&) = delete;
  ExampleTelemetryScope& operator=(const ExampleTelemetryScope&) = delete;

 private:
  ExampleOptions options_;
  telemetry::PhaseStats stats_;
  FlightRecorderScope flight_recorder_;
};

}  // namespace bitspread

#endif  // BITSPREAD_SIM_CLI_H_
