// CSV export for tables (so experiment outputs can be post-processed/plotted).
#ifndef BITSPREAD_SIM_CSV_H_
#define BITSPREAD_SIM_CSV_H_

#include <string>

#include "sim/table.h"

namespace bitspread {

// RFC-4180 field escaping.
std::string csv_escape(const std::string& field);

// Serializes a table (header + rows).
std::string to_csv(const Table& table);

// Writes to `path`; returns false (and leaves no partial file guarantee) on
// I/O failure.
bool write_csv(const Table& table, const std::string& path);

}  // namespace bitspread

#endif  // BITSPREAD_SIM_CSV_H_
