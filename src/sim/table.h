// Fixed-width console tables: every bench binary prints its paper
// table/figure series through this; the unified JSON report embeds the
// same rows via JsonReporter::add_table.
#ifndef BITSPREAD_SIM_TABLE_H_
#define BITSPREAD_SIM_TABLE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace bitspread {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Cell formatting helpers.
  static std::string fmt(double value, int precision = 3);
  static std::string fmt(std::uint64_t value);
  static std::string fmt(std::int64_t value);

  void add_row(std::vector<std::string> cells);
  std::size_t row_count() const noexcept { return rows_.size(); }

  // Pretty-prints with aligned columns and a header rule.
  void print(std::ostream& out) const;

  const std::vector<std::string>& headers() const noexcept { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bitspread

#endif  // BITSPREAD_SIM_TABLE_H_
