// Thread-parallel replication and the shared worker pool.
//
// Because every replicate draws its randomness from its own derived stream
// (SeedSequence), results are IDENTICAL whether replicates run serially or
// across threads, in any interleaving — so parallelism is a pure wall-clock
// optimization with no reproducibility cost (tested). The sharded agent
// engine (engine/sharded.h) pushes the same guarantee down into a single
// run, and shares the pool below so per-round dispatch does not pay thread
// creation.
#ifndef BITSPREAD_SIM_PARALLEL_H_
#define BITSPREAD_SIM_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/experiment.h"
#include "telemetry/telemetry.h"

namespace bitspread {

// Pool utilization counters (telemetry builds only; `recorded` is false and
// everything is zero otherwise). Totals accumulate since process start or
// the last reset_telemetry(); read them between run() calls — the pool's
// join gives the happens-before that makes the numbers exact.
struct WorkerPoolTelemetry {
  bool recorded = false;
  std::uint64_t generations = 0;  // Dispatched fan-outs (inline runs excluded).
  std::uint64_t items = 0;        // Work items executed by pool workers.
  std::uint64_t dispatch_ns = 0;  // run() wall time, dispatch through join.
  std::uint64_t wake_ns = 0;      // Sum of per-worker dispatch->wake latency.

  struct Worker {
    std::uint64_t busy_ns = 0;      // Time inside the item loop.
    std::uint64_t items = 0;
    std::uint64_t generations = 0;  // Generations this worker participated in.
  };
  std::vector<Worker> workers;

  // Busy time across workers divided by the total worker-time the dispatched
  // generations paid for (0 when nothing was dispatched).
  double utilization() const noexcept;
};

// A persistent pool of worker threads with generation-based dispatch.
// Threads are created once (lazily, growing on demand up to kMaxWorkers)
// and parked between runs, so fine-grained work — e.g. one simulation round
// — can be fanned out every few microseconds without spawn/join cost.
//
// Scheduling never influences results anywhere in the library (work items
// own derived RNG streams), so the pool is a pure wall-clock device.
class WorkerPool {
 public:
  // Process-wide pool used by parallel_for and the sharded engine.
  static WorkerPool& shared();

  ~WorkerPool();

  // Runs fn(i) for i in [0, count), blocking until all items finish.
  // `threads` caps the number of participating workers (0 = hardware
  // concurrency); oversubscription beyond the hardware is honored up to
  // kMaxWorkers, which lets determinism tests exercise real interleaving
  // even on small machines. Calls from inside a pool worker run inline and
  // serially (no deadlock on nesting). fn must be safe to call concurrently
  // for distinct i.
  void run(int count, const std::function<void(int)>& fn,
           unsigned threads = 0);

  // Workers currently parked in the pool (grows on demand; for tests).
  unsigned worker_count() const;

  // Pool utilization since process start / the last reset. Call between
  // run() calls; inline-serial and nested executions are not counted (they
  // never touch pool threads).
  WorkerPoolTelemetry telemetry() const;
  void reset_telemetry();

  // Upper bound on pool size; requests beyond it are clamped.
  static constexpr unsigned kMaxWorkers = 64;

 private:
  WorkerPool() = default;

  void ensure_workers(unsigned target);
  void worker_main(unsigned slot, std::uint64_t spawn_generation);

#ifdef BITSPREAD_TELEMETRY
  struct WorkerStats {
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> items{0};
    std::atomic<std::uint64_t> generations{0};
  };
  // Fixed-capacity so recording never allocates or locks; slots beyond the
  // spawned workers stay zero.
  std::array<WorkerStats, kMaxWorkers> worker_stats_;
  std::atomic<std::uint64_t> generations_total_{0};
  std::atomic<std::uint64_t> items_total_{0};
  std::atomic<std::uint64_t> dispatch_ns_{0};
  std::atomic<std::uint64_t> wake_ns_{0};
  std::uint64_t gen_start_ns_ = 0;  // Guarded by mu_.
#endif

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::mutex run_mu_;  // Serializes concurrent run() callers.
  std::vector<std::thread> workers_;

  // Per-generation payload (guarded by mu_ except the atomic cursor).
  const std::function<void(int)>* fn_ = nullptr;
  std::atomic<int> next_{0};
  int count_ = 0;
  unsigned active_ = 0;   // Workers participating in this generation.
  unsigned pending_ = 0;  // Participants that have not finished yet.
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

// Runs fn(i) for i in [0, count) across up to max_threads threads
// (0 = hardware concurrency) on the shared pool. fn must be safe to call
// concurrently for distinct i.
void parallel_for(int count, const std::function<void(int)>& fn,
                  unsigned max_threads = 0);

// CPUs actually usable by this process: the scheduling-affinity mask when
// the OS exposes one (containers and cpusets shrink it), otherwise the
// online-CPU count, otherwise std::thread::hardware_concurrency(). Always
// >= 1. std::thread::hardware_concurrency() alone may return 0 ("unknown"),
// which bench reports used to record as a 1-core host — use this instead
// anywhere a human or the bench-history gate will read the number.
unsigned host_concurrency() noexcept;

// The worker count a WorkerPool::run(count, fn, threads) call would actually
// use after clamping (0 = host concurrency, capped by kMaxWorkers and by
// count). Lets bench rows report the thread count that really ran instead
// of the requested one.
unsigned planned_workers(int count, unsigned threads) noexcept;

// Drop-in parallel variant of measure_convergence: same inputs, identical
// output (per-replicate seed streams make the result schedule-independent).
ConvergenceMeasurement measure_convergence_parallel(
    const std::function<RunResult(Rng&)>& single_run,
    const SeedSequence& seeds, std::uint64_t cell, int replicates,
    unsigned max_threads = 0);

}  // namespace bitspread

#endif  // BITSPREAD_SIM_PARALLEL_H_
