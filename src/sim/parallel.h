// Thread-parallel replication.
//
// Because every replicate draws its randomness from its own derived stream
// (SeedSequence), results are IDENTICAL whether replicates run serially or
// across threads, in any interleaving — so parallelism is a pure wall-clock
// optimization with no reproducibility cost (tested).
#ifndef BITSPREAD_SIM_PARALLEL_H_
#define BITSPREAD_SIM_PARALLEL_H_

#include <functional>

#include "sim/experiment.h"

namespace bitspread {

// Runs fn(i) for i in [0, count) across up to max_threads threads
// (0 = hardware concurrency). fn must be safe to call concurrently for
// distinct i.
void parallel_for(int count, const std::function<void(int)>& fn,
                  unsigned max_threads = 0);

// Drop-in parallel variant of measure_convergence: same inputs, identical
// output (per-replicate seed streams make the result schedule-independent).
ConvergenceMeasurement measure_convergence_parallel(
    const std::function<RunResult(Rng&)>& single_run,
    const SeedSequence& seeds, std::uint64_t cell, int replicates,
    unsigned max_threads = 0);

}  // namespace bitspread

#endif  // BITSPREAD_SIM_PARALLEL_H_
