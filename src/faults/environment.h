// The fault plan: a declarative EnvironmentModel every engine consumes.
//
// The paper's problem is *self-stabilizing* bit-dissemination — recovery from
// adversarial configurations is the whole point — so the simulation substrate
// must be able to stress a run WHILE it executes, not only start it badly.
// This model composes four orthogonal fault channels:
//
//   1. Observation noise (epsilon) — every bit an agent observes passes
//      through a binary symmetric channel that flips it with probability
//      epsilon (the noisy PULL model of D'Archivio, Korman, Natale & Vacus,
//      arXiv:2411.02560). Agent-level engines flip the sampled bits; the
//      aggregate engine uses the exact closed form: an observed agent reads
//      as 1 with probability (1-e)p + e(1-p), so the sample law is exactly
//      Binomial(l, noisy_fraction(p)).
//   2. Spontaneous noise (eta, bias) — with probability eta an agent ignores
//      its sample and adopts 1 with probability `bias`. This is the channel
//      PerturbedProtocol (protocols/perturbed.h) expresses at the protocol
//      level; folding it here lets it compose with the other channels.
//   3. Zealots (z) — a fraction z of the non-source agents permanently hold
//      the opinion that is wrong at round 0 (stubborn adversarial agents, as
//      in Becchetti et al., arXiv:2302.08600). Zealots never update and keep
//      their opinion through source flips.
//   4. Source dynamics — a schedule of rounds at which the correct opinion
//      flips. The key new measurement is *re-convergence time after a flip*
//      (RecoverySegment in engine/stopping.h), not just first convergence.
//   5. Churn (delta) — per round, each free (non-source, non-zealot) agent
//      crashes with probability delta and is replaced by an adversarially
//      chosen agent holding the currently wrong opinion, with reset memory.
//
// Determinism contract: engines draw all fault randomness either from the
// caller's run stream (single-threaded engines) or from dedicated
// per-(round, block) streams derived from the run's SeedSequence (the
// sharded engine), so a faulty run is exactly reproducible from its seed and
// the sharded engine stays bit-identical across thread/shard counts with
// every channel enabled (tests/faults_determinism_test.cc).
#ifndef BITSPREAD_FAULTS_ENVIRONMENT_H_
#define BITSPREAD_FAULTS_ENVIRONMENT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bitspread {

struct EnvironmentModel {
  // Channel 1: per-observed-bit flip probability (epsilon in [0, 1/2]).
  double observation_noise = 0.0;
  // Channel 2: spontaneous-noise rate eta and its adoption bias.
  double spontaneous_rate = 0.0;
  double spontaneous_bias = 0.5;
  // Channel 3: fraction of non-source agents pinned to the initially wrong
  // opinion.
  double zealot_fraction = 0.0;
  // Channel 3, exact form: zealots added ON TOP of the fraction, as an
  // absolute count. Used where the adversarial camp is an exact population —
  // the conflicting-sources engine maps its minority stubborn camp here —
  // while zealot_fraction serves the scale-free sweeps.
  std::uint64_t extra_zealots = 0;
  // Channel 5: per-round crash probability of each free agent.
  double churn_rate = 0.0;
  // Channel 4: rounds at which the correct opinion flips (kept sorted and
  // deduplicated by normalized()).
  std::vector<std::uint64_t> source_flip_rounds;

  // Convergence criterion under faults: the fraction of NON-ZEALOT agents
  // that must hold the correct opinion for the run to count as (re)converged.
  // 1.0 demands exact consensus among non-zealots; noisy runs typically use
  // e.g. 0.95 because noise makes exact consensus non-absorbing.
  double convergence_quorum = 1.0;

  // A copy with every probability clamped into its legal range (NaN -> 0,
  // quorum NaN -> 1), epsilon capped at 1/2 (a BSC beyond 1/2 is the same
  // channel with bits relabeled), and the flip schedule sorted + deduped.
  // Engines normalize on entry, so out-of-range inputs can never produce a
  // probability outside [0, 1].
  EnvironmentModel normalized() const;

  // True if any channel is active (an inactive model reduces every faulty
  // code path to the fault-free dynamics).
  bool active() const noexcept;

  // Number of zealots for a population of n agents with `sources` sources:
  // floor(zealot_fraction * (n - sources)) + extra_zealots, capped at
  // n - sources.
  std::uint64_t zealot_count(std::uint64_t n,
                             std::uint64_t sources) const noexcept;

  // Probability an observed agent reads as 1 when the true fraction of ones
  // is p: (1 - e) p + e (1 - p). The exact aggregate form of channel 1.
  double noisy_fraction(double p) const noexcept {
    return p + observation_noise * (1.0 - 2.0 * p);
  }

  // True when a wrong consensus is not absorbing under this model (noise or
  // spontaneous adoption can always re-seed the correct opinion), so engines
  // must not stop on it.
  bool wrong_consensus_escapable() const noexcept {
    return observation_noise > 0.0 || spontaneous_rate > 0.0;
  }

  std::string describe() const;
};

}  // namespace bitspread

#endif  // BITSPREAD_FAULTS_ENVIRONMENT_H_
