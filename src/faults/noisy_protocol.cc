#include "faults/noisy_protocol.h"

#include <sstream>
#include <vector>

#include "random/binomial.h"

namespace bitspread {

NoisyObservationProtocol::NoisyObservationProtocol(
    const MemorylessProtocol& base, const EnvironmentModel& model) noexcept
    : MemorylessProtocol(base.policy()), base_(&base) {
  const EnvironmentModel normal = model.normalized();
  epsilon_ = normal.observation_noise;
  eta_ = normal.spontaneous_rate;
  bias_ = normal.spontaneous_bias;
}

double NoisyObservationProtocol::g(Opinion own, std::uint32_t ones_seen,
                                   std::uint32_t ell,
                                   std::uint64_t n) const noexcept {
  double sample_term;
  if (epsilon_ == 0.0) {
    sample_term = base_->g(own, ones_seen, ell, n);
  } else {
    // Observed count = Bin(k, 1-e) + Bin(l-k, e): convolve the two pmfs and
    // average g over the result.
    const std::vector<double> kept = binomial_pmf(ones_seen, 1.0 - epsilon_);
    const std::vector<double> flipped =
        binomial_pmf(ell - ones_seen, epsilon_);
    sample_term = 0.0;
    for (std::uint32_t a = 0; a < kept.size(); ++a) {
      for (std::uint32_t b = 0; b < flipped.size(); ++b) {
        sample_term += kept[a] * flipped[b] * base_->g(own, a + b, ell, n);
      }
    }
  }
  return (1.0 - eta_) * sample_term + eta_ * bias_;
}

double NoisyObservationProtocol::aggregate_adoption(
    Opinion own, double p, std::uint64_t n) const noexcept {
  const double noisy = p + epsilon_ * (1.0 - 2.0 * p);
  return (1.0 - eta_) * base_->aggregate_adoption(own, noisy, n) +
         eta_ * bias_;
}

std::string NoisyObservationProtocol::name() const {
  std::ostringstream out;
  out << base_->name() << "+bsc(" << epsilon_ << ")";
  if (eta_ > 0.0) out << "+spont(" << eta_ << "," << bias_ << ")";
  return out.str();
}

}  // namespace bitspread
