// Per-run fault bookkeeping shared by every engine's faulty run loop.
//
// A FaultSession binds an EnvironmentModel to one concrete run: it freezes
// the zealot geometry (how many, which opinion, which population slots),
// walks the source-flip schedule, records per-epoch RecoverySegments, and
// evaluates the fault-aware stop rule (quorum among non-zealots, degraded
// classification at the round cap). Engines differ only in how they advance
// the state; all fault *semantics* live here so the four engines cannot
// drift apart.
//
// Zealot geometry. Zealots hold the opinion that is wrong at round 0 and
// never update — through source flips too (stubbornness is to an opinion,
// not to "being wrong"). In the canonical population layout
// (sources | non-source ones | non-source zeros) the zealots are assigned
// the slots that already hold their opinion: the first non-source one-slots
// when the zealot opinion is 1, the last zero-slots otherwise; plant()
// clamps the requested ones-count so those slots exist. Agent order never
// matters (the model is anonymous), so the deterministic choice is w.l.o.g.
#ifndef BITSPREAD_FAULTS_SESSION_H_
#define BITSPREAD_FAULTS_SESSION_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/configuration.h"
#include "engine/stopping.h"
#include "faults/environment.h"
#include "random/rng.h"

namespace bitspread {

class FaultSession {
 public:
  // `initial` fixes n, sources and the round-0 correct opinion (and hence
  // the zealot opinion). The model is normalized on entry.
  FaultSession(const EnvironmentModel& model, const Configuration& initial);

  const EnvironmentModel& model() const noexcept { return model_; }
  std::uint64_t zealots() const noexcept { return zealots_; }
  Opinion zealot_opinion() const noexcept { return zealot_opinion_; }
  // Zealots currently counted in Configuration::ones (all or none).
  std::uint64_t zealot_ones() const noexcept {
    return zealot_opinion_ == Opinion::kOne ? zealots_ : 0;
  }

  // Zealot slots [zealot_begin, zealot_end) in the canonical layout.
  std::uint64_t zealot_begin() const noexcept { return zealot_begin_; }
  std::uint64_t zealot_end() const noexcept { return zealot_end_; }
  bool is_zealot(std::uint64_t index) const noexcept {
    return index >= zealot_begin_ && index < zealot_end_;
  }

  // Clamps the requested ones-count so the zealot slots hold the zealot
  // opinion; engines build their populations from the planted configuration.
  Configuration plant(Configuration config) const noexcept;

  // Free agents: non-source and non-zealot (the only ones that update).
  std::uint64_t free_agents() const noexcept {
    return n_ - sources_ - zealots_;
  }
  std::uint64_t free_ones(const Configuration& config) const noexcept {
    return config.non_source_ones() - zealot_ones();
  }
  std::uint64_t free_zeros(const Configuration& config) const noexcept {
    return free_agents() - free_ones(config);
  }

  // --- Source-flip schedule -------------------------------------------

  // True if the correct opinion flips on entry to `round`.
  bool flip_due(std::uint64_t round) const noexcept;
  // Flips config.correct (sources display the new correct opinion, so
  // `ones` moves by `sources`) and opens a new recovery segment; the segment
  // closes immediately when the flipped state already meets the new quorum.
  // Engines with explicit populations must mirror the source flip onto
  // their state.
  void apply_flip(std::uint64_t round, Configuration& config);
  bool flips_pending() const noexcept;
  std::uint64_t flips_applied() const noexcept { return next_flip_; }

  // --- Recovery bookkeeping -------------------------------------------

  // Record the state at the END of `round` (call once with the initial
  // state at round 0); closes the open segment when the quorum is met.
  void observe(std::uint64_t round, const Configuration& config);

  // Quorum: at least ceil(quorum * (n - zealots)) non-zealot agents hold
  // the current correct opinion.
  bool quorum_met(const Configuration& config) const noexcept;
  // Every non-zealot agent holds the wrong opinion (possible only without
  // sources, as in the fault-free model).
  bool wrong_consensus(const Configuration& config) const noexcept;

  // Fault-aware stop evaluation; nullopt means keep running. Never stops on
  // consensus while flips are pending (a later flip can change the target),
  // and only stops on a wrong consensus when the model keeps it absorbing.
  std::optional<StopReason> evaluate(const StopRule& rule,
                                     const Configuration& config) const;
  // Classification when the round cap is hit: kDegraded if a flip occurred
  // and the system never re-converged, else plain kRoundLimit censoring.
  StopReason censored_reason() const noexcept;

  // Channel 5 at the counts level: each free agent crashes with probability
  // churn_rate and is replaced holding the currently wrong opinion. The
  // opinion-changing replacements are tallied in churned() (counts-level
  // churn only draws those; same-opinion replacements are invisible here).
  Configuration churn(Configuration config, Rng& rng);
  std::uint64_t churned() const noexcept { return churned_; }

  const std::vector<RecoverySegment>& recoveries() const noexcept {
    return recoveries_;
  }
  std::vector<RecoverySegment> take_recoveries() noexcept {
    return std::move(recoveries_);
  }

  // --- Snapshot hooks (snapshot/state.h) ------------------------------
  //
  // Only the *evolved* state travels: schedule position, churn tally, and
  // the recovery segments (including the open one). The zealot geometry is
  // derived deterministically from (model, initial) by the constructor, so
  // a resumed session rebuilt from the same inputs already agrees on it.
  std::size_t next_flip() const noexcept { return next_flip_; }
  void restore_progress(std::size_t next_flip, std::uint64_t churned,
                        std::vector<RecoverySegment> recoveries) noexcept {
    next_flip_ = next_flip;
    churned_ = churned;
    recoveries_ = std::move(recoveries);
  }

 private:
  EnvironmentModel model_;
  std::uint64_t n_ = 0;
  std::uint64_t sources_ = 0;
  std::uint64_t zealots_ = 0;
  Opinion zealot_opinion_ = Opinion::kZero;
  std::uint64_t zealot_begin_ = 0;
  std::uint64_t zealot_end_ = 0;
  std::size_t next_flip_ = 0;
  std::uint64_t churned_ = 0;
  std::vector<RecoverySegment> recoveries_;
};

}  // namespace bitspread

#endif  // BITSPREAD_FAULTS_SESSION_H_
