// The exact protocol-level view of the noise channels in EnvironmentModel.
//
// Observation noise commutes with sampling: observing l agents through a
// BSC(epsilon) is the same as sampling l i.i.d. Bernoulli(noisy_fraction(p))
// bits. Conditioned on the TRUE ones count k among the l samples, the
// observed count is K' = Bin(k, 1-e) + Bin(l-k, e), so the effective
// memory-less protocol seen by the fault-free machinery is the mixture
//
//   g'(b, k) = (1-eta) * E[g(b, K') | k] + eta * bias,
//
// which is itself a valid memory-less protocol. Wrapping a protocol this way
// gives the exact aggregate dynamics under noise (aggregate_adoption becomes
// the closed form (1-eta) * P_b(noisy_fraction(p)) + eta * bias), and makes
// the exact dense Markov chain (markov/dense_chain.h) available as ground
// truth for the operational bit-flipping fault paths of the agent-level
// engines (tests/faults_determinism_test.cc cross-validates the two).
#ifndef BITSPREAD_FAULTS_NOISY_PROTOCOL_H_
#define BITSPREAD_FAULTS_NOISY_PROTOCOL_H_

#include "core/protocol.h"
#include "faults/environment.h"

namespace bitspread {

class NoisyObservationProtocol final : public MemorylessProtocol {
 public:
  // Only the noise channels (observation_noise, spontaneous_rate/bias) of
  // `model` are used; zealots, churn and source flips act at the population
  // level and are handled by the engines. `base` must outlive this wrapper.
  NoisyObservationProtocol(const MemorylessProtocol& base,
                           const EnvironmentModel& model) noexcept;

  double g(Opinion own, std::uint32_t ones_seen, std::uint32_t ell,
           std::uint64_t n) const noexcept override;

  double aggregate_adoption(Opinion own, double p,
                            std::uint64_t n) const noexcept override;

  std::string name() const override;

  const MemorylessProtocol& base() const noexcept { return *base_; }

 private:
  const MemorylessProtocol* base_;
  double epsilon_;
  double eta_;
  double bias_;
};

}  // namespace bitspread

#endif  // BITSPREAD_FAULTS_NOISY_PROTOCOL_H_
