#include "faults/environment.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace bitspread {
namespace {

double clamp_unit(double value, double if_nan = 0.0) noexcept {
  if (std::isnan(value)) return if_nan;
  return std::clamp(value, 0.0, 1.0);
}

}  // namespace

EnvironmentModel EnvironmentModel::normalized() const {
  EnvironmentModel out = *this;
  out.observation_noise = std::min(clamp_unit(observation_noise), 0.5);
  out.spontaneous_rate = clamp_unit(spontaneous_rate);
  out.spontaneous_bias = clamp_unit(spontaneous_bias, 0.5);
  out.zealot_fraction = clamp_unit(zealot_fraction);
  out.churn_rate = clamp_unit(churn_rate);
  out.convergence_quorum = clamp_unit(convergence_quorum, 1.0);
  if (out.convergence_quorum == 0.0) out.convergence_quorum = 1.0;
  std::sort(out.source_flip_rounds.begin(), out.source_flip_rounds.end());
  out.source_flip_rounds.erase(std::unique(out.source_flip_rounds.begin(),
                                           out.source_flip_rounds.end()),
                               out.source_flip_rounds.end());
  return out;
}

bool EnvironmentModel::active() const noexcept {
  return observation_noise > 0.0 || spontaneous_rate > 0.0 ||
         zealot_fraction > 0.0 || extra_zealots > 0 || churn_rate > 0.0 ||
         !source_flip_rounds.empty() || convergence_quorum < 1.0;
}

std::uint64_t EnvironmentModel::zealot_count(
    std::uint64_t n, std::uint64_t sources) const noexcept {
  const std::uint64_t non_source = n > sources ? n - sources : 0;
  const double count = zealot_fraction * static_cast<double>(non_source);
  return std::min(non_source,
                  static_cast<std::uint64_t>(count) + extra_zealots);
}

std::string EnvironmentModel::describe() const {
  std::ostringstream out;
  out << "env(eps=" << observation_noise << ", eta=" << spontaneous_rate
      << ", z=" << zealot_fraction;
  if (extra_zealots > 0) out << "+" << extra_zealots;
  out << ", delta=" << churn_rate << ", flips=["
      << source_flip_rounds.size() << "], quorum=" << convergence_quorum
      << ")";
  return out.str();
}

}  // namespace bitspread
