#include "faults/session.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "random/binomial.h"
#include "telemetry/telemetry.h"

namespace bitspread {

FaultSession::FaultSession(const EnvironmentModel& model,
                           const Configuration& initial)
    : model_(model.normalized()),
      n_(initial.n),
      sources_(initial.sources),
      zealot_opinion_(opposite(initial.correct)) {
  zealots_ = model_.zealot_count(n_, sources_);
  if (zealot_opinion_ == Opinion::kOne) {
    // Layout puts non-source ones right after the sources.
    zealot_begin_ = sources_;
    zealot_end_ = sources_ + zealots_;
  } else {
    // Non-source zeros sit at the end of the layout.
    zealot_begin_ = n_ - zealots_;
    zealot_end_ = n_;
  }
  // The initial epoch: segment 0 opens at round 0.
  recoveries_.push_back(RecoverySegment{0, 0, false});
}

Configuration FaultSession::plant(Configuration config) const noexcept {
  assert(config.n == n_ && config.sources == sources_);
  if (zealot_opinion_ == Opinion::kOne) {
    // At least `zealots_` non-source ones (and no more than capacity).
    const std::uint64_t lo = config.source_ones() + zealots_;
    const std::uint64_t hi = config.source_ones() + (n_ - sources_);
    config.ones = std::clamp(config.ones, lo, hi);
  } else {
    // At least `zealots_` non-source zeros.
    const std::uint64_t lo = config.source_ones();
    const std::uint64_t hi = config.source_ones() + free_agents();
    config.ones = std::clamp(config.ones, lo, hi);
  }
  return config;
}

bool FaultSession::flip_due(std::uint64_t round) const noexcept {
  return next_flip_ < model_.source_flip_rounds.size() &&
         model_.source_flip_rounds[next_flip_] == round;
}

void FaultSession::apply_flip(std::uint64_t round, Configuration& config) {
  assert(flip_due(round));
  telemetry::record_mark("source_flip");
  ++next_flip_;
  config.correct = opposite(config.correct);
  // Sources now display the new correct opinion.
  if (config.correct == Opinion::kOne) {
    config.ones += config.sources;
  } else {
    config.ones -= config.sources;
  }
  recoveries_.push_back(RecoverySegment{round, 0, false});
  // A flip can land in a state that already satisfies the NEW quorum (e.g.
  // zealots dragged the population to the opposite side, or an oscillating
  // protocol sits in its low phase). Close the segment immediately — engines
  // evaluate the stop rule right after the flip, and a converged run must
  // never carry an open final segment (recovery_rounds = 0 is the honest
  // measurement: re-convergence was free).
  observe(round, config);
}

bool FaultSession::flips_pending() const noexcept {
  return next_flip_ < model_.source_flip_rounds.size();
}

bool FaultSession::quorum_met(const Configuration& config) const noexcept {
  const std::uint64_t eligible = n_ - zealots_;
  const std::uint64_t holders_total =
      config.correct == Opinion::kOne ? config.ones : config.n - config.ones;
  const std::uint64_t zealot_holders =
      zealot_opinion_ == config.correct ? zealots_ : 0;
  const std::uint64_t holders = holders_total - zealot_holders;
  const auto needed = static_cast<std::uint64_t>(
      std::ceil(model_.convergence_quorum * static_cast<double>(eligible)));
  return holders >= std::min(needed, eligible);
}

bool FaultSession::wrong_consensus(const Configuration& config) const noexcept {
  const std::uint64_t holders_total =
      config.correct == Opinion::kOne ? config.ones : config.n - config.ones;
  const std::uint64_t zealot_holders =
      zealot_opinion_ == config.correct ? zealots_ : 0;
  return holders_total == zealot_holders;
}

void FaultSession::observe(std::uint64_t round, const Configuration& config) {
  RecoverySegment& open = recoveries_.back();
  if (!open.recovered && quorum_met(config)) {
    open.recovered = true;
    open.recovered_round = std::max(round, open.flip_round);
  }
}

std::optional<StopReason> FaultSession::evaluate(
    const StopRule& rule, const Configuration& config) const {
  // Interval rules fire strictly outside the interval, faults or not.
  if (rule.interval_lo && config.ones < *rule.interval_lo) {
    return StopReason::kIntervalExit;
  }
  if (rule.interval_hi && config.ones > *rule.interval_hi) {
    return StopReason::kIntervalExit;
  }
  // Never stop on consensus while flips are pending: a later flip changes
  // the target, and the segments in between are what the run measures.
  if (flips_pending()) return std::nullopt;
  if (quorum_met(config)) return StopReason::kCorrectConsensus;
  if (rule.stop_on_any_consensus && !model_.wrong_consensus_escapable() &&
      wrong_consensus(config)) {
    return StopReason::kWrongConsensus;
  }
  return std::nullopt;
}

StopReason FaultSession::censored_reason() const noexcept {
  if (next_flip_ > 0 && !recoveries_.back().recovered) {
    return StopReason::kDegraded;
  }
  return StopReason::kRoundLimit;
}

Configuration FaultSession::churn(Configuration config, Rng& rng) {
  if (model_.churn_rate <= 0.0) return config;
  const Opinion wrong = opposite(config.correct);
  if (wrong == Opinion::kZero) {
    // Crashed one-holders are replaced by zero-holders.
    const std::uint64_t crashed =
        binomial(rng, free_ones(config), model_.churn_rate);
    config.ones -= crashed;
    churned_ += crashed;
  } else {
    const std::uint64_t crashed =
        binomial(rng, free_zeros(config), model_.churn_rate);
    config.ones += crashed;
    churned_ += crashed;
  }
  return config;
}

}  // namespace bitspread
