#include "profile/pmu.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <cstdio>

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define BITSPREAD_HAVE_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#endif

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace bitspread {
namespace profile {
namespace {

inline std::uint64_t steady_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline std::uint64_t read_tsc() noexcept {
#if defined(__x86_64__)
  return __rdtsc();
#else
  return 0;
#endif
}

bool no_pmu_env() noexcept {
  const char* env = std::getenv("BITSPREAD_NO_PMU");
  return env != nullptr && std::strcmp(env, "0") != 0;
}

#ifdef BITSPREAD_HAVE_PERF_EVENT

struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};

// Group-open order matches the Counter enum.
constexpr EventSpec kEvents[kCounterCount] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_ACCESS << 16)},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND},
};

int open_event(const EventSpec& spec, int group_fd, bool leader) noexcept {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.size = sizeof attr;
  attr.type = spec.type;
  attr.config = spec.config;
  // User-space-only counting works under perf_event_paranoid <= 2 (the
  // common container default), where kernel-inclusive counting is denied.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // The leader starts disabled (the group is enabled once fully built);
  // members inherit the leader's run state.
  attr.disabled = leader ? 1 : 0;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(syscall(__NR_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, group_fd, /*flags=*/0));
}

#endif  // BITSPREAD_HAVE_PERF_EVENT

}  // namespace

const char* counter_name(Counter counter) noexcept {
  switch (counter) {
    case Counter::kCycles:
      return "cycles";
    case Counter::kInstructions:
      return "instructions";
    case Counter::kLlcLoads:
      return "llc_loads";
    case Counter::kLlcMisses:
      return "llc_misses";
    case Counter::kBranches:
      return "branches";
    case Counter::kBranchMisses:
      return "branch_misses";
    case Counter::kStalledBackend:
      return "stalled_cycles_backend";
    case Counter::kCount:
      break;
  }
  return "unknown";
}

double CounterDelta::ipc() const noexcept {
  const auto cyc = static_cast<std::size_t>(Counter::kCycles);
  const auto ins = static_cast<std::size_t>(Counter::kInstructions);
  if (!pmu || !valid[cyc] || !valid[ins] || value[cyc] == 0) return 0.0;
  return static_cast<double>(value[ins]) / static_cast<double>(value[cyc]);
}

CounterDelta scale_delta(const CounterSnapshot& begin,
                         const CounterSnapshot& end,
                         const std::array<bool, kCounterCount>& open,
                         bool pmu) noexcept {
  CounterDelta delta;
  delta.wall_ns = end.wall_ns >= begin.wall_ns ? end.wall_ns - begin.wall_ns : 0;
  delta.pmu = pmu;
  if (!pmu) {
    // Fallback rung: rdtsc cycles where the ISA provides them, wall always.
    const auto cyc = static_cast<std::size_t>(Counter::kCycles);
    if (end.tsc > begin.tsc) {
      delta.value[cyc] = end.tsc - begin.tsc;
      delta.valid[cyc] = true;
    }
    return delta;
  }
  const std::uint64_t enabled =
      end.time_enabled_ns >= begin.time_enabled_ns
          ? end.time_enabled_ns - begin.time_enabled_ns
          : 0;
  const std::uint64_t running =
      end.time_running_ns >= begin.time_running_ns
          ? end.time_running_ns - begin.time_running_ns
          : 0;
  if (running > 0 && enabled > running) {
    delta.scale =
        static_cast<double>(enabled) / static_cast<double>(running);
    delta.multiplexed = true;
  }
  for (int i = 0; i < kCounterCount; ++i) {
    if (!open[static_cast<std::size_t>(i)]) continue;
    const std::uint64_t raw =
        end.value[static_cast<std::size_t>(i)] >=
                begin.value[static_cast<std::size_t>(i)]
            ? end.value[static_cast<std::size_t>(i)] -
                  begin.value[static_cast<std::size_t>(i)]
            : 0;
    delta.value[static_cast<std::size_t>(i)] =
        delta.multiplexed
            ? static_cast<std::uint64_t>(static_cast<double>(raw) *
                                         delta.scale)
            : raw;
    delta.valid[static_cast<std::size_t>(i)] = true;
  }
  return delta;
}

PmuCounterSet::PmuCounterSet() {
  fd_.fill(-1);
  slot_.fill(-1);
  if (no_pmu_env()) {
    reason_ = "BITSPREAD_NO_PMU=1";
    return;
  }
#ifdef BITSPREAD_HAVE_PERF_EVENT
  const int leader = open_event(kEvents[0], -1, /*leader=*/true);
  if (leader < 0) {
    std::snprintf(errno_reason_, sizeof errno_reason_,
                  "perf_event_open: %s", std::strerror(errno));
    reason_ = errno_reason_;
    return;
  }
  fd_[0] = leader;
  open_[0] = true;
  slot_[0] = 0;
  group_size_ = 1;
  for (int i = 1; i < kCounterCount; ++i) {
    // Rung 2: a rejected member (stalled-cycles-backend on many cores,
    // LL-cache events on some) is skipped; the group runs with what opened.
    const int fd = open_event(kEvents[i], leader, /*leader=*/false);
    if (fd < 0) continue;
    fd_[static_cast<std::size_t>(i)] = fd;
    open_[static_cast<std::size_t>(i)] = true;
    slot_[static_cast<std::size_t>(i)] = group_size_++;
  }
  enable();
#else
  reason_ = "not a Linux build";
#endif
}

PmuCounterSet::~PmuCounterSet() {
#ifdef BITSPREAD_HAVE_PERF_EVENT
  for (const int fd : fd_) {
    if (fd >= 0) close(fd);
  }
#endif
}

int PmuCounterSet::counters_open() const noexcept {
  int count = 0;
  for (const bool open : open_) count += open ? 1 : 0;
  return count;
}

void PmuCounterSet::enable() noexcept {
#ifdef BITSPREAD_HAVE_PERF_EVENT
  if (fd_[0] >= 0) {
    ioctl(fd_[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  }
#endif
}

void PmuCounterSet::disable() noexcept {
#ifdef BITSPREAD_HAVE_PERF_EVENT
  if (fd_[0] >= 0) {
    ioctl(fd_[0], PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
  }
#endif
}

void PmuCounterSet::read(CounterSnapshot& snapshot) const noexcept {
  snapshot = CounterSnapshot{};
  snapshot.wall_ns = steady_ns();
  snapshot.tsc = read_tsc();
#ifdef BITSPREAD_HAVE_PERF_EVENT
  if (fd_[0] < 0) return;
  // {nr, time_enabled, time_running, value[nr]} per PERF_FORMAT_GROUP.
  std::uint64_t buffer[3 + kCounterCount];
  const ssize_t want = static_cast<ssize_t>(
      (3 + static_cast<std::size_t>(group_size_)) * sizeof(std::uint64_t));
  const ssize_t got = ::read(fd_[0], buffer, static_cast<std::size_t>(want));
  if (got < want) return;
  snapshot.time_enabled_ns = buffer[1];
  snapshot.time_running_ns = buffer[2];
  for (int i = 0; i < kCounterCount; ++i) {
    const int slot = slot_[static_cast<std::size_t>(i)];
    if (slot >= 0) {
      snapshot.value[static_cast<std::size_t>(i)] =
          buffer[3 + static_cast<std::size_t>(slot)];
    }
  }
#endif
}

PmuCounterSet& thread_counters() noexcept {
  thread_local PmuCounterSet set;
  return set;
}

}  // namespace profile
}  // namespace bitspread
