#include "profile/sampling.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <vector>

#if defined(__linux__)
#define BITSPREAD_HAVE_SAMPLING 1
#include <cxxabi.h>
#include <dlfcn.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/time.h>
#include <ucontext.h>
#include <unistd.h>
#endif

namespace bitspread {
namespace profile {

#ifdef BITSPREAD_HAVE_SAMPLING

namespace {

// One sample: depth then `depth` return addresses, leaf first.
struct Sample {
  std::uint32_t depth = 0;
  std::uintptr_t pc[SamplingProfiler::kMaxDepth + 1];
};

// Handler-visible state. The handler runs on arbitrary threads between
// start() and stop(); all fields it touches are set before the handler is
// installed and read only after the timer is disarmed, except the atomics.
struct HandlerState {
  Sample* samples = nullptr;
  std::uint32_t capacity = 0;
  std::atomic<std::uint32_t> cursor{0};
  std::atomic<std::uint64_t> taken{0};
  std::atomic<std::uint64_t> dropped{0};
  long page_size = 4096;
};

HandlerState* g_state = nullptr;           // Non-null only while armed.
std::atomic<bool> g_armed{false};          // Guards one-profiler-per-process.

// Async-signal-safe check that `addr` lies in a mapped page: msync on the
// containing page fails with ENOMEM for unmapped addresses (the classic
// gperftools probe). Good enough to keep the frame walk from faulting.
bool page_mapped(std::uintptr_t addr, long page_size) noexcept {
  const std::uintptr_t page = addr & ~static_cast<std::uintptr_t>(page_size - 1);
  return msync(reinterpret_cast<void*>(page), static_cast<std::size_t>(page_size),
               MS_ASYNC) == 0;
}

// Frame-pointer walk from the signal context. Conservative by design:
// every candidate frame must be aligned, mapped (both words of the frame
// record), strictly above the previous frame, and within 8 MiB of it —
// violating any of these ends the walk. The leaf PC is always recorded
// first, so broken chains degrade to a flat profile.
void capture_stack(Sample& out, void* ucontext_ptr) noexcept {
  const auto* uc = static_cast<ucontext_t*>(ucontext_ptr);
  std::uintptr_t pc = 0;
  std::uintptr_t fp = 0;
#if defined(__x86_64__)
  pc = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__aarch64__)
  pc = static_cast<std::uintptr_t>(uc->uc_mcontext.pc);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]);
#else
  (void)uc;
#endif
  out.depth = 0;
  if (pc != 0) out.pc[out.depth++] = pc;
  const long page_size = g_state != nullptr ? g_state->page_size : 4096;
  constexpr std::uintptr_t kMaxFrameSpan = 8u << 20;
  while (out.depth < SamplingProfiler::kMaxDepth + 1) {
    if (fp == 0 || (fp & (sizeof(std::uintptr_t) - 1)) != 0) break;
    if (!page_mapped(fp, page_size) ||
        !page_mapped(fp + sizeof(std::uintptr_t), page_size)) {
      break;
    }
    const auto* frame = reinterpret_cast<const std::uintptr_t*>(fp);
    const std::uintptr_t next_fp = frame[0];
    const std::uintptr_t ret = frame[1];
    if (ret == 0) break;
    out.pc[out.depth++] = ret;
    if (next_fp <= fp || next_fp - fp > kMaxFrameSpan) break;
    fp = next_fp;
  }
}

void sigprof_handler(int /*signo*/, siginfo_t* /*info*/, void* ucontext_ptr) {
  HandlerState* state = g_state;
  if (state == nullptr) return;
  const std::uint32_t slot =
      state->cursor.fetch_add(1, std::memory_order_relaxed);
  if (slot >= state->capacity) {
    state->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  capture_stack(state->samples[slot], ucontext_ptr);
  state->taken.fetch_add(1, std::memory_order_relaxed);
}

// Offline symbolization: function name via dladdr, demangled when possible;
// address-relative fallback keeps stripped frames distinguishable.
std::string symbolize(std::uintptr_t pc) {
  Dl_info info;
  std::memset(&info, 0, sizeof info);
  if (dladdr(reinterpret_cast<void*>(pc), &info) != 0 &&
      info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      std::string name(demangled);
      std::free(demangled);
      return name;
    }
    return info.dli_sname;
  }
  char buffer[96];
  const char* module = "?";
  if (info.dli_fname != nullptr) {
    module = std::strrchr(info.dli_fname, '/') != nullptr
                 ? std::strrchr(info.dli_fname, '/') + 1
                 : info.dli_fname;
  }
  std::snprintf(buffer, sizeof buffer, "%s+0x%" PRIxPTR, module,
                info.dli_fbase != nullptr
                    ? pc - reinterpret_cast<std::uintptr_t>(info.dli_fbase)
                    : pc);
  return buffer;
}

}  // namespace

struct SamplingProfiler::Impl {
  HandlerState state;
  std::vector<Sample> buffer;
  struct sigaction previous_action;
  struct itimerval previous_timer;
  bool running = false;
  const char* why = "";

  ~Impl() {
    if (running) stop();
  }

  bool start(int hz, std::uint32_t max_samples) {
    if (running) {
      why = "already running";
      return false;
    }
    bool expected = false;
    if (!g_armed.compare_exchange_strong(expected, true)) {
      why = "another SamplingProfiler is armed (SIGPROF is process-global)";
      return false;
    }
    if (hz < 1) hz = 1;
    if (hz > 10000) hz = 10000;
    if (max_samples == 0) max_samples = 1;

    buffer.assign(max_samples, Sample{});
    state.samples = buffer.data();
    state.capacity = max_samples;
    state.cursor.store(0, std::memory_order_relaxed);
    state.taken.store(0, std::memory_order_relaxed);
    state.dropped.store(0, std::memory_order_relaxed);
    const long page = sysconf(_SC_PAGESIZE);
    state.page_size = page > 0 ? page : 4096;
    g_state = &state;

    struct sigaction action;
    std::memset(&action, 0, sizeof action);
    action.sa_sigaction = &sigprof_handler;
    action.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&action.sa_mask);
    if (sigaction(SIGPROF, &action, &previous_action) != 0) {
      g_state = nullptr;
      g_armed.store(false, std::memory_order_release);
      why = "sigaction(SIGPROF) failed";
      return false;
    }

    struct itimerval timer;
    timer.it_interval.tv_sec = 0;
    timer.it_interval.tv_usec = static_cast<suseconds_t>(1000000 / hz);
    if (timer.it_interval.tv_usec == 0) timer.it_interval.tv_usec = 1;
    timer.it_value = timer.it_interval;
    if (setitimer(ITIMER_PROF, &timer, &previous_timer) != 0) {
      sigaction(SIGPROF, &previous_action, nullptr);
      g_state = nullptr;
      g_armed.store(false, std::memory_order_release);
      why = "setitimer(ITIMER_PROF) failed";
      return false;
    }
    running = true;
    why = "";
    return true;
  }

  void stop() {
    if (!running) return;
    // Disarm first so no new signals fire, then restore the prior handler;
    // a signal already in flight still sees valid g_state until cleared.
    setitimer(ITIMER_PROF, &previous_timer, nullptr);
    sigaction(SIGPROF, &previous_action, nullptr);
    g_state = nullptr;
    g_armed.store(false, std::memory_order_release);
    running = false;
  }

  std::string folded() const {
    const std::uint64_t count = state.taken.load(std::memory_order_relaxed);
    if (count == 0 || buffer.empty()) return "";
    // Aggregate by raw stack first so each unique frame is symbolized once.
    std::map<std::vector<std::uintptr_t>, std::uint64_t> stacks;
    const std::uint32_t stored =
        std::min(state.cursor.load(std::memory_order_relaxed), state.capacity);
    for (std::uint32_t i = 0; i < stored; ++i) {
      const Sample& sample = buffer[i];
      if (sample.depth == 0) continue;
      std::vector<std::uintptr_t> key(sample.pc, sample.pc + sample.depth);
      ++stacks[key];
    }
    std::map<std::uintptr_t, std::string> names;
    std::string out;
    for (const auto& [key, hits] : stacks) {
      // Folded format is root-first; samples are leaf-first.
      for (auto it = key.rbegin(); it != key.rend(); ++it) {
        auto cached = names.find(*it);
        if (cached == names.end()) {
          cached = names.emplace(*it, symbolize(*it)).first;
        }
        if (it != key.rbegin()) out += ';';
        out += cached->second;
      }
      out += ' ';
      out += std::to_string(hits);
      out += '\n';
    }
    return out;
  }
};

SamplingProfiler::SamplingProfiler() : impl_(new Impl) {}
SamplingProfiler::~SamplingProfiler() = default;

bool SamplingProfiler::start(int hz, std::uint32_t max_samples) {
  return impl_->start(hz, max_samples);
}
void SamplingProfiler::stop() { impl_->stop(); }
bool SamplingProfiler::running() const noexcept { return impl_->running; }
const char* SamplingProfiler::why() const noexcept { return impl_->why; }
std::uint64_t SamplingProfiler::samples_taken() const noexcept {
  return impl_->state.taken.load(std::memory_order_relaxed);
}
std::uint64_t SamplingProfiler::samples_dropped() const noexcept {
  return impl_->state.dropped.load(std::memory_order_relaxed);
}
std::string SamplingProfiler::folded() const { return impl_->folded(); }

#else  // !BITSPREAD_HAVE_SAMPLING

struct SamplingProfiler::Impl {};

SamplingProfiler::SamplingProfiler() = default;
SamplingProfiler::~SamplingProfiler() = default;
bool SamplingProfiler::start(int /*hz*/, std::uint32_t /*max_samples*/) {
  return false;
}
void SamplingProfiler::stop() {}
bool SamplingProfiler::running() const noexcept { return false; }
const char* SamplingProfiler::why() const noexcept {
  return "sampling profiler requires Linux (SIGPROF/setitimer)";
}
std::uint64_t SamplingProfiler::samples_taken() const noexcept { return 0; }
std::uint64_t SamplingProfiler::samples_dropped() const noexcept { return 0; }
std::string SamplingProfiler::folded() const { return ""; }

#endif  // BITSPREAD_HAVE_SAMPLING

bool SamplingProfiler::write_folded(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "profile: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const std::string text = folded();
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), file) == text.size();
  std::fclose(file);
  if (!ok) std::fprintf(stderr, "profile: short write to %s\n", path.c_str());
  return ok;
}

}  // namespace profile
}  // namespace bitspread
