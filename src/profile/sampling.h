// SamplingProfiler: a signal-driven wall/CPU-time sampling profiler with
// folded-stack output (DESIGN.md §3.8).
//
// start(hz) installs a SIGPROF handler and arms ITIMER_PROF so the kernel
// delivers one signal per 1/hz seconds of *CPU time* consumed by the
// process; each delivery captures the interrupted thread's PC and a
// frame-pointer backtrace into a preallocated lock-free sample buffer
// (the handler is async-signal-safe: no malloc, no locks, no stdio).
// stop() disarms the timer, restores the previous handler, and makes the
// samples available for folding.
//
// folded() symbolizes offline (dladdr + __cxa_demangle — only after the
// handler is disarmed) and aggregates identical stacks into the classic
// folded format, one line per unique stack:
//
//     main;bitspread::RunDriver::drive;process_block_impl 42
//
// directly consumable by flamegraph.pl or speedscope. Frames that cannot
// be symbolized render as hex addresses with the containing module, so a
// stripped binary still yields a usable profile.
//
// Honesty notes, documented rather than hidden:
//   - Unwinding follows frame pointers. -O2/-O3 builds without
//     -fno-omit-frame-pointer may truncate stacks after the leaf; the leaf
//     PC itself always comes from the signal context, so even then the
//     profile degrades to a correct *flat* profile, never a wrong one.
//     The `sanitize` preset (and any build with frame pointers kept)
//     gives full stacks.
//   - Candidate frame words are validated with msync(2) page probes plus
//     alignment/monotonicity/range heuristics before being dereferenced,
//     so a garbage frame chain ends the walk instead of faulting.
//   - Sampling perturbs the measured process (one signal per tick). It is
//     OFF by default everywhere; the telemetry overhead gate measures the
//     *unsinked-probe* budget with sampling off, and --profile-out= is an
//     explicit opt-in.
//
// One profiler may be active per process (SIGPROF is process-global);
// start() fails when another instance is running, on non-Linux hosts, and
// under BITSPREAD_NO_PMU=1 it still works — sampling needs no PMU.
#ifndef BITSPREAD_PROFILE_SAMPLING_H_
#define BITSPREAD_PROFILE_SAMPLING_H_

#include <cstdint>
#include <memory>
#include <string>

namespace bitspread {
namespace profile {

class SamplingProfiler {
 public:
  // Bounds chosen so the buffer (max_samples × (max_depth+1) words, ~8 MiB
  // at the defaults) is allocated once in start(), never in the handler.
  static constexpr int kMaxDepth = 63;
  static constexpr std::uint32_t kDefaultMaxSamples = 1u << 16;

  SamplingProfiler();
  ~SamplingProfiler();
  SamplingProfiler(const SamplingProfiler&) = delete;
  SamplingProfiler& operator=(const SamplingProfiler&) = delete;

  // Arms the profiler at `hz` samples per CPU-second (clamped to [1, 10000]).
  // Returns false — with why() set — when already running, when another
  // profiler owns SIGPROF, or on hosts without setitimer/SIGPROF.
  bool start(int hz, std::uint32_t max_samples = kDefaultMaxSamples);

  // Disarms the timer and restores the prior SIGPROF disposition. Safe to
  // call when not running. Samples remain readable until the next start().
  void stop();

  bool running() const noexcept;
  const char* why() const noexcept;  // Reason start() refused, or "".

  // Collected-sample accounting (valid after stop()).
  std::uint64_t samples_taken() const noexcept;
  std::uint64_t samples_dropped() const noexcept;  // Buffer-full ticks.

  // Symbolized, aggregated folded stacks ("a;b;c N\n" per unique stack,
  // root first). Call after stop(). Empty string when nothing was sampled.
  std::string folded() const;

  // Writes folded() to `path`; false (with stderr note) on I/O failure.
  bool write_folded(const std::string& path) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace profile
}  // namespace bitspread

#endif  // BITSPREAD_PROFILE_SAMPLING_H_
