// Per-phase hardware-counter attribution: the PMU sink and its probes.
//
// This is the third sink beside PhaseStats (nanoseconds) and the
// TraceRecorder (timelines): a PmuPhaseStats accumulates multiplex-scaled
// counter deltas per telemetry::Phase — including the kernel sub-phases
// gather/decide/fault/commit — so a profiled run can report IPC and
// LLC-miss-per-agent-step for exactly the regions the wall-clock probes
// already name.
//
// The probes obey the same two-gate discipline as ScopedTimer
// (telemetry/telemetry.h):
//
//  1. *Compile time.* PmuScope / KernelBlockProfiler are empty objects
//     without -DBITSPREAD_TELEMETRY; the default build's hot paths are
//     untouched.
//  2. *Run time.* Compiled-in probes are dormant until install_pmu_sink()
//     points at a PmuPhaseStats: an unsinked probe costs one relaxed
//     atomic pointer load and never issues a read(2). The CI overhead gate
//     (tools/check_telemetry_overhead.py) holds the enabled-but-unsinked
//     build within the same <5% budget as the wall-clock probes.
//
// Attribution is per-thread by construction: every probe reads the calling
// thread's counter set (profile::thread_counters()), so kernel blocks
// running on pool workers attribute to the worker that executed them, and
// the totals (relaxed-atomic adds, read quiescently) aggregate across
// threads exactly like PhaseStats. Probes never touch an RNG stream —
// profiled runs are bit-identical to unprofiled ones (pinned by
// tests/profile_test.cc and the kernel golden digests).
#ifndef BITSPREAD_PROFILE_COUNTERS_H_
#define BITSPREAD_PROFILE_COUNTERS_H_

#include <array>
#include <atomic>
#include <cstdint>

#include "profile/pmu.h"
#include "telemetry/telemetry.h"

namespace bitspread {

class JsonValue;

namespace profile {

// Counter totals per phase. Safe for concurrent recording (relaxed atomics;
// totals are read after the recorded region completes, same join-ordering
// contract as telemetry::PhaseStats).
class PmuPhaseStats {
 public:
  void add(telemetry::Phase phase, const CounterDelta& delta) noexcept {
    const auto p = static_cast<std::size_t>(phase);
    for (int i = 0; i < kCounterCount; ++i) {
      const auto c = static_cast<std::size_t>(i);
      if (!delta.valid[c]) continue;
      value_[p][c].fetch_add(delta.value[c], std::memory_order_relaxed);
      counted_[p][c].store(true, std::memory_order_relaxed);
    }
    wall_ns_[p].fetch_add(delta.wall_ns, std::memory_order_relaxed);
    samples_[p].fetch_add(1, std::memory_order_relaxed);
    if (delta.multiplexed) {
      multiplexed_[p].store(true, std::memory_order_relaxed);
    }
    if (delta.pmu) pmu_backed_.store(true, std::memory_order_relaxed);
  }

  std::uint64_t total(telemetry::Phase phase, Counter counter) const noexcept {
    return value_[static_cast<std::size_t>(phase)]
                 [static_cast<std::size_t>(counter)]
                     .load(std::memory_order_relaxed);
  }
  bool counted(telemetry::Phase phase, Counter counter) const noexcept {
    return counted_[static_cast<std::size_t>(phase)]
                   [static_cast<std::size_t>(counter)]
                       .load(std::memory_order_relaxed);
  }
  std::uint64_t samples(telemetry::Phase phase) const noexcept {
    return samples_[static_cast<std::size_t>(phase)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t wall_ns(telemetry::Phase phase) const noexcept {
    return wall_ns_[static_cast<std::size_t>(phase)].load(
        std::memory_order_relaxed);
  }
  bool multiplexed(telemetry::Phase phase) const noexcept {
    return multiplexed_[static_cast<std::size_t>(phase)].load(
        std::memory_order_relaxed);
  }
  // True once any recorded delta came from hardware counters (rungs 1–2).
  bool pmu_backed() const noexcept {
    return pmu_backed_.load(std::memory_order_relaxed);
  }

  // Instructions per cycle for one phase; 0 when either side is uncounted.
  double ipc(telemetry::Phase phase) const noexcept {
    const std::uint64_t cycles = total(phase, Counter::kCycles);
    if (cycles == 0 || !counted(phase, Counter::kInstructions)) return 0.0;
    return static_cast<double>(total(phase, Counter::kInstructions)) /
           static_cast<double>(cycles);
  }

  void reset() noexcept {
    for (auto& phase : value_) {
      for (auto& v : phase) v.store(0, std::memory_order_relaxed);
    }
    for (auto& phase : counted_) {
      for (auto& v : phase) v.store(false, std::memory_order_relaxed);
    }
    for (auto& v : wall_ns_) v.store(0, std::memory_order_relaxed);
    for (auto& v : samples_) v.store(0, std::memory_order_relaxed);
    for (auto& v : multiplexed_) v.store(false, std::memory_order_relaxed);
    pmu_backed_.store(false, std::memory_order_relaxed);
  }

 private:
  template <typename T>
  using PerPhase = std::array<T, telemetry::kPhaseCount>;
  PerPhase<std::array<std::atomic<std::uint64_t>, kCounterCount>> value_{};
  PerPhase<std::array<std::atomic<bool>, kCounterCount>> counted_{};
  PerPhase<std::atomic<std::uint64_t>> wall_ns_{};
  PerPhase<std::atomic<std::uint64_t>> samples_{};
  PerPhase<std::atomic<bool>> multiplexed_{};
  std::atomic<bool> pmu_backed_{false};
};

// Installs (or, with nullptr, removes) the process-wide PMU sink. Same
// ownership contract as install_phase_sink: the caller keeps the sink alive
// until uninstalled, and installation must not race a running engine.
// Installing works in every build; only telemetry builds have probes that
// feed it.
void install_pmu_sink(PmuPhaseStats* sink) noexcept;
PmuPhaseStats* pmu_sink() noexcept;

// JSON rendering of a sink's totals (the --pmu-out= payload and the
// "profiles" rows of bench_profile): one row per phase with samples,
// wall seconds, each counted counter, derived IPC, and multiplex/fallback
// stamps. Phases with zero samples are skipped.
JsonValue pmu_stats_to_json(const PmuPhaseStats& stats, bool pmu_available,
                            const char* unavailable_reason);

#ifdef BITSPREAD_TELEMETRY

// RAII probe: attributes the counter delta over its lifetime to `phase` on
// the installed PMU sink. One read(2) pair when sinked; one relaxed load
// when not. Used by the RunDriver beside its ScopedTimers. Tight tick
// loops (aggregate rounds are ~250 ns) pass a pre-resolved sink via the
// two-argument form so the atomic load happens once per run, not once per
// scope; sink installation must not race a running engine either way.
class PmuScope {
 public:
  explicit PmuScope(telemetry::Phase phase) noexcept
      : PmuScope(phase, pmu_sink()) {}
  PmuScope(telemetry::Phase phase, PmuPhaseStats* sink) noexcept
      : sink_(sink), phase_(phase) {
    if (sink_ != nullptr) {
      set_ = &thread_counters();
      set_->read(begin_);
    }
  }
  ~PmuScope() {
    if (sink_ == nullptr) return;
    CounterSnapshot end;
    set_->read(end);
    sink_->add(phase_, set_->delta(begin_, end));
  }
  PmuScope(const PmuScope&) = delete;
  PmuScope& operator=(const PmuScope&) = delete;

 private:
  PmuPhaseStats* sink_;
  PmuCounterSet* set_ = nullptr;
  telemetry::Phase phase_;
  CounterSnapshot begin_;
};

// Sub-phase marker for the kernel hot loop. The sink pointers are resolved
// ONCE per block (the word loop calls enter() several times per 64-agent
// word, so per-call atomic loads would be the dominant cost); when neither
// the wall-clock nor the PMU sink is installed every call is a predicted
// no-op branch. PMU reads happen only when the PMU sink is installed;
// wall-clock nanoseconds also feed the plain phase sink so `phases` rows
// carry the sub-phase split even on no-PMU hosts.
class KernelBlockProfiler {
 public:
  KernelBlockProfiler() noexcept
      : pmu_(pmu_sink()), phases_(telemetry::phase_sink()) {
    active_ = pmu_ != nullptr || phases_ != nullptr;
    if (active_) {
      if (pmu_ != nullptr) {
        set_ = &thread_counters();
        set_->read(last_);
      }
      last_ns_ = telemetry::clock_now_ns();
    }
  }
  ~KernelBlockProfiler() { leave(); }
  KernelBlockProfiler(const KernelBlockProfiler&) = delete;
  KernelBlockProfiler& operator=(const KernelBlockProfiler&) = delete;

  // Closes the open sub-phase (if any) and opens `phase`.
  void enter(telemetry::Phase phase) noexcept {
    if (!active_) return;
    mark(true, phase);
  }
  // Closes the open sub-phase; subsequent work is unattributed until the
  // next enter().
  void leave() noexcept {
    if (!active_ || !open_) return;
    mark(false, telemetry::Phase::kCount);
  }

 private:
  void mark(bool opening, telemetry::Phase next) noexcept {
    const std::uint64_t now_ns = telemetry::clock_now_ns();
    CounterSnapshot now;
    if (set_ != nullptr) set_->read(now);
    if (open_) {
      if (phases_ != nullptr) phases_->add(current_, now_ns - last_ns_);
      if (pmu_ != nullptr && set_ != nullptr) {
        pmu_->add(current_, set_->delta(last_, now));
      }
    }
    open_ = opening;
    current_ = next;
    last_ns_ = now_ns;
    last_ = now;
  }

  PmuPhaseStats* pmu_;
  telemetry::PhaseStats* phases_;
  PmuCounterSet* set_ = nullptr;
  bool active_ = false;
  bool open_ = false;
  telemetry::Phase current_ = telemetry::Phase::kCount;
  std::uint64_t last_ns_ = 0;
  CounterSnapshot last_;
};

#else  // !BITSPREAD_TELEMETRY

class PmuScope {
 public:
  explicit PmuScope(telemetry::Phase /*phase*/) noexcept {}
  PmuScope(telemetry::Phase /*phase*/, PmuPhaseStats* /*sink*/) noexcept {}
  PmuScope(const PmuScope&) = delete;
  PmuScope& operator=(const PmuScope&) = delete;
};

class KernelBlockProfiler {
 public:
  KernelBlockProfiler() noexcept = default;
  void enter(telemetry::Phase /*phase*/) noexcept {}
  void leave() noexcept {}
};

#endif  // BITSPREAD_TELEMETRY

}  // namespace profile
}  // namespace bitspread

#endif  // BITSPREAD_PROFILE_COUNTERS_H_
