// Hardware-counter access: a perf_event_open(2) wrapper with a fallback
// ladder, the measurement base of the profiling subsystem (DESIGN.md §3.8).
//
// A PmuCounterSet opens one *grouped* set of per-thread counters — cycles
// (group leader), instructions, LLC loads/misses, branches/branch-misses,
// and stalled-cycles-backend — so every read is one read(2) returning a
// consistent snapshot of the whole group plus the kernel's time_enabled /
// time_running pair. When the kernel multiplexes the group off the PMU,
// deltas are scaled by Δenabled/Δrunning (the standard perf estimate) and
// flagged, so downstream IPC / miss-rate numbers are honest about it.
//
// The fallback ladder keeps every build and host working:
//
//   1. Full group: all seven counters open.             pmu=true
//   2. Partial group: counters the kernel rejects       pmu=true, fewer
//      (commonly stalled-cycles-backend) are skipped;       columns
//      the group runs with what opened.
//   3. Cycles-only fallback: no hardware PMU at all     pmu=false, cycles
//      (containers, perf_event_paranoid, non-Linux,         from rdtsc
//      BITSPREAD_NO_PMU=1) — deltas degrade to             (x86-64 only),
//      rdtsc cycles and steady_clock wall time.             wall always
//
// Counting is per-thread (pid=0, cpu=-1, exclude_kernel): a counter set
// measures the thread that opened it, which is exactly the attribution the
// phase probes want — each recording thread owns one set (thread_counters()).
// Reads never touch an RNG stream and never allocate on the hot path.
#ifndef BITSPREAD_PROFILE_PMU_H_
#define BITSPREAD_PROFILE_PMU_H_

#include <array>
#include <cstdint>

namespace bitspread {
namespace profile {

// The counter group, in group-open order. kCycles is the group leader: when
// it cannot open, the whole set degrades to the timing fallback.
enum class Counter : int {
  kCycles = 0,
  kInstructions,
  kLlcLoads,
  kLlcMisses,
  kBranches,
  kBranchMisses,
  kStalledBackend,
  kCount
};

inline constexpr int kCounterCount = static_cast<int>(Counter::kCount);

// Short stable identifier ("cycles", "instructions", ...) used in JSON.
const char* counter_name(Counter counter) noexcept;

// One raw read of the group. `value` holds unscaled kernel counts for the
// counters that are open (zero otherwise); the time pair is the group's
// multiplexing evidence. The fallback fields are always filled so deltas
// stay meaningful on rung 3.
struct CounterSnapshot {
  std::array<std::uint64_t, kCounterCount> value{};
  std::uint64_t time_enabled_ns = 0;
  std::uint64_t time_running_ns = 0;
  std::uint64_t wall_ns = 0;  // steady_clock, always filled.
  std::uint64_t tsc = 0;      // rdtsc (x86-64), 0 elsewhere.
};

// Scaled difference between two snapshots of the same set.
struct CounterDelta {
  std::array<std::uint64_t, kCounterCount> value{};
  std::array<bool, kCounterCount> valid{};
  std::uint64_t wall_ns = 0;
  // Δtime_enabled/Δtime_running for this window; 1.0 = counters were on the
  // PMU the whole time, > 1.0 = values are multiplex-scaled estimates.
  double scale = 1.0;
  bool multiplexed = false;
  bool pmu = false;  // False on the timing-only fallback rung.

  double ipc() const noexcept;  // instructions/cycles; 0 when not counted.
};

// Pure scaling core of PmuCounterSet::delta(), exposed for unit tests: takes
// two snapshots plus the open-counter mask and applies the multiplex scale.
CounterDelta scale_delta(const CounterSnapshot& begin,
                         const CounterSnapshot& end,
                         const std::array<bool, kCounterCount>& open,
                         bool pmu) noexcept;

// A grouped per-thread counter set. Construction opens the group for the
// CALLING thread and enables it; destruction closes every fd. All methods
// are safe to call on any rung of the ladder — on the fallback rung read()
// fills only the timing fields.
class PmuCounterSet {
 public:
  PmuCounterSet();
  ~PmuCounterSet();
  PmuCounterSet(const PmuCounterSet&) = delete;
  PmuCounterSet& operator=(const PmuCounterSet&) = delete;

  // True when the hardware group leader opened (rungs 1–2).
  bool available() const noexcept { return open_[0]; }
  // Why the set is on the fallback rung ("" when available()):
  // "BITSPREAD_NO_PMU=1", "perf_event_open: <errno>", or "not a Linux build".
  const char* unavailable_reason() const noexcept { return reason_; }

  bool counter_open(Counter counter) const noexcept {
    return open_[static_cast<std::size_t>(counter)];
  }
  int counters_open() const noexcept;

  // Scoped control of the whole group (PERF_IOC_FLAG_GROUP). The set is
  // enabled on construction; disable() parks it without closing fds.
  void enable() noexcept;
  void disable() noexcept;

  // Snapshot of current totals. Never fails: on the fallback rung only
  // wall_ns/tsc are filled.
  void read(CounterSnapshot& snapshot) const noexcept;

  // Multiplex-scaled difference between two reads of THIS set.
  CounterDelta delta(const CounterSnapshot& begin,
                     const CounterSnapshot& end) const noexcept {
    return scale_delta(begin, end, open_, available());
  }

 private:
  std::array<int, kCounterCount> fd_;    // -1 when not open.
  std::array<bool, kCounterCount> open_{};
  std::array<int, kCounterCount> slot_;  // Read-buffer slot per counter.
  int group_size_ = 0;
  const char* reason_ = "";
  char errno_reason_[64] = {0};
};

// The calling thread's counter set, created (and enabled) on first use and
// kept for the thread's lifetime. Pool workers each get their own, so
// concurrent probes never share a group.
PmuCounterSet& thread_counters() noexcept;

}  // namespace profile
}  // namespace bitspread

#endif  // BITSPREAD_PROFILE_PMU_H_
