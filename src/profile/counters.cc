#include "profile/counters.h"

#include "telemetry/json.h"

namespace bitspread {
namespace profile {
namespace {

std::atomic<PmuPhaseStats*> g_pmu_sink{nullptr};

}  // namespace

void install_pmu_sink(PmuPhaseStats* sink) noexcept {
  g_pmu_sink.store(sink, std::memory_order_release);
}

PmuPhaseStats* pmu_sink() noexcept {
  return g_pmu_sink.load(std::memory_order_relaxed);
}

JsonValue pmu_stats_to_json(const PmuPhaseStats& stats, bool pmu_available,
                            const char* unavailable_reason) {
  JsonValue root = JsonValue::object();
  root.set("pmu_available", pmu_available);
  if (!pmu_available) {
    root.set("pmu_unavailable_reason", unavailable_reason);
  }
  root.set("pmu_backed", stats.pmu_backed());
  JsonValue rows = JsonValue::array();
  for (int p = 0; p < telemetry::kPhaseCount; ++p) {
    const auto phase = static_cast<telemetry::Phase>(p);
    const std::uint64_t samples = stats.samples(phase);
    if (samples == 0) continue;
    JsonValue row = JsonValue::object();
    row.set("phase", telemetry::phase_name(phase));
    row.set("samples", samples);
    row.set("wall_seconds", static_cast<double>(stats.wall_ns(phase)) * 1e-9);
    for (int c = 0; c < kCounterCount; ++c) {
      const auto counter = static_cast<Counter>(c);
      if (!stats.counted(phase, counter)) continue;
      row.set(counter_name(counter), stats.total(phase, counter));
    }
    const double ipc = stats.ipc(phase);
    // Fallback-rung cycles come from rdtsc; an IPC without an instruction
    // count would be meaningless, so ipc is emitted only when PMU-backed.
    if (stats.pmu_backed() && ipc > 0.0) row.set("ipc", ipc);
    row.set("multiplexed", stats.multiplexed(phase));
    rows.push_back(std::move(row));
  }
  root.set("phases", std::move(rows));
  return root;
}

}  // namespace profile
}  // namespace bitspread
