// Percentile bootstrap confidence intervals for arbitrary statistics.
#ifndef BITSPREAD_STATS_BOOTSTRAP_H_
#define BITSPREAD_STATS_BOOTSTRAP_H_

#include <functional>
#include <span>

#include "random/rng.h"

namespace bitspread {

struct ConfidenceInterval {
  double point = 0.0;  // Statistic on the original sample.
  double lo = 0.0;
  double hi = 0.0;
  double level = 0.95;
};

// Percentile bootstrap: resamples `values` with replacement `resamples` times
// and takes empirical quantiles of the statistic.
ConfidenceInterval bootstrap_ci(
    std::span<const double> values,
    const std::function<double(std::span<const double>)>& statistic, Rng& rng,
    int resamples = 1000, double level = 0.95);

// Common case: CI for the mean.
ConfidenceInterval bootstrap_mean_ci(std::span<const double> values, Rng& rng,
                                     int resamples = 1000, double level = 0.95);

}  // namespace bitspread

#endif  // BITSPREAD_STATS_BOOTSTRAP_H_
