#include "stats/quantiles.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace bitspread {

double quantile(std::span<const double> values, double q) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - std::floor(pos);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> values) { return quantile(values, 0.5); }

Histogram::Histogram(double lo_edge, double hi_edge, std::size_t bins)
    : lo(lo_edge), hi(hi_edge), counts(bins, 0) {
  assert(bins > 0);
  assert(hi_edge > lo_edge);
}

void Histogram::add(double x) noexcept {
  const double width = (hi - lo) / static_cast<double>(counts.size());
  auto bin = static_cast<std::int64_t>(std::floor((x - lo) / width));
  bin = std::clamp<std::int64_t>(bin, 0,
                                 static_cast<std::int64_t>(counts.size()) - 1);
  ++counts[static_cast<std::size_t>(bin)];
}

std::uint64_t Histogram::total() const noexcept {
  return std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
}

double Histogram::fraction(std::size_t i) const noexcept {
  const std::uint64_t n = total();
  if (n == 0) return 0.0;
  return static_cast<double>(counts[i]) / static_cast<double>(n);
}

}  // namespace bitspread
