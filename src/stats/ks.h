// Two-sample Kolmogorov-Smirnov statistic and chi-square goodness of fit.
// Used to cross-validate the aggregate engine against the agent-level engine
// and the samplers against exact pmfs.
#ifndef BITSPREAD_STATS_KS_H_
#define BITSPREAD_STATS_KS_H_

#include <cstdint>
#include <span>

namespace bitspread {

// sup_x |F1(x) - F2(x)| over the empirical CDFs of the two samples.
double ks_statistic(std::span<const double> a, std::span<const double> b);

// Asymptotic two-sample KS p-value (Kolmogorov distribution tail).
double ks_p_value(double statistic, std::size_t n_a, std::size_t n_b);

// Pearson chi-square statistic of observed counts against expected
// probabilities (bins with expected count < min_expected are pooled into
// their neighbor). Returns the statistic and writes the resulting degrees of
// freedom to *dof.
double chi_square_statistic(std::span<const std::uint64_t> observed,
                            std::span<const double> expected_probability,
                            std::uint64_t total, int* dof,
                            double min_expected = 5.0);

// Upper-tail probability of a chi-square distribution with `dof` degrees of
// freedom (via the regularized incomplete gamma function).
double chi_square_p_value(double statistic, int dof);

}  // namespace bitspread

#endif  // BITSPREAD_STATS_KS_H_
