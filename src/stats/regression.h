// Ordinary least squares in one variable, plus the log-log variant used to
// estimate empirical scaling exponents (e.g. fitting T(n) ~ c * n^alpha for
// the Theorem 1 almost-linear lower bound).
#ifndef BITSPREAD_STATS_REGRESSION_H_
#define BITSPREAD_STATS_REGRESSION_H_

#include <span>

namespace bitspread {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

// Fits y ~ intercept + slope * x. Requires at least two points with distinct x.
LinearFit ols_fit(std::span<const double> x, std::span<const double> y);

// Fits log(y) ~ log(c) + alpha * log(x); `slope` is the scaling exponent
// alpha, `intercept` is log(c). All inputs must be positive.
LinearFit loglog_fit(std::span<const double> x, std::span<const double> y);

}  // namespace bitspread

#endif  // BITSPREAD_STATS_REGRESSION_H_
