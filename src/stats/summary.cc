#include "stats/summary.h"

#include <algorithm>
#include <cmath>

namespace bitspread {

void RunningStats::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const noexcept {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

RunningStats summarize(std::span<const double> values) noexcept {
  RunningStats stats;
  for (const double v : values) stats.add(v);
  return stats;
}

}  // namespace bitspread
