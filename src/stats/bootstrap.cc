#include "stats/bootstrap.h"

#include <vector>

#include "stats/quantiles.h"
#include "stats/summary.h"

namespace bitspread {

ConfidenceInterval bootstrap_ci(
    std::span<const double> values,
    const std::function<double(std::span<const double>)>& statistic, Rng& rng,
    int resamples, double level) {
  ConfidenceInterval ci;
  ci.level = level;
  ci.point = statistic(values);
  if (values.empty()) return ci;

  std::vector<double> resample(values.size());
  std::vector<double> stats;
  stats.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    for (auto& slot : resample) slot = values[rng.next_below(values.size())];
    stats.push_back(statistic(resample));
  }
  const double alpha = (1.0 - level) / 2.0;
  ci.lo = quantile(stats, alpha);
  ci.hi = quantile(stats, 1.0 - alpha);
  return ci;
}

ConfidenceInterval bootstrap_mean_ci(std::span<const double> values, Rng& rng,
                                     int resamples, double level) {
  return bootstrap_ci(
      values, [](std::span<const double> v) { return summarize(v).mean(); },
      rng, resamples, level);
}

}  // namespace bitspread
