// Streaming summary statistics (Welford's algorithm) and batch helpers.
#ifndef BITSPREAD_STATS_SUMMARY_H_
#define BITSPREAD_STATS_SUMMARY_H_

#include <cstdint>
#include <limits>
#include <span>

namespace bitspread {

// Numerically stable streaming mean / variance / min / max accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  // Unbiased sample variance; 0 for fewer than two observations.
  double variance() const noexcept;
  double stddev() const noexcept;
  // Standard error of the mean; 0 for fewer than two observations.
  double stderr_mean() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(count_); }

  // Merges another accumulator (Chan et al. parallel combination).
  void merge(const RunningStats& other) noexcept;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Batch convenience wrappers.
RunningStats summarize(std::span<const double> values) noexcept;

}  // namespace bitspread

#endif  // BITSPREAD_STATS_SUMMARY_H_
