// Quantiles and fixed-bin histograms over batches of observations.
#ifndef BITSPREAD_STATS_QUANTILES_H_
#define BITSPREAD_STATS_QUANTILES_H_

#include <cstdint>
#include <span>
#include <vector>

namespace bitspread {

// q-quantile (q in [0,1]) with linear interpolation between order statistics
// (type-7, the R/numpy default). Input need not be sorted; empty input yields
// NaN.
double quantile(std::span<const double> values, double q);

// Median shortcut.
double median(std::span<const double> values);

// Equal-width histogram over [lo, hi); values outside are clamped into the
// first/last bin.
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::uint64_t> counts;

  Histogram(double lo_edge, double hi_edge, std::size_t bins);
  void add(double x) noexcept;
  std::uint64_t total() const noexcept;
  // Fraction of mass in bin i.
  double fraction(std::size_t i) const noexcept;
};

}  // namespace bitspread

#endif  // BITSPREAD_STATS_QUANTILES_H_
