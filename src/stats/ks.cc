#include "stats/ks.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace bitspread {

double ks_statistic(std::span<const double> a, std::span<const double> b) {
  assert(!a.empty() && !b.empty());
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  double d = 0.0;
  std::size_t i = 0, j = 0;
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  while (i < sa.size() && j < sb.size()) {
    const double x = std::min(sa[i], sb[j]);
    while (i < sa.size() && sa[i] <= x) ++i;
    while (j < sb.size() && sb[j] <= x) ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / na -
                             static_cast<double>(j) / nb));
  }
  return d;
}

double ks_p_value(double statistic, std::size_t n_a, std::size_t n_b) {
  const double na = static_cast<double>(n_a);
  const double nb = static_cast<double>(n_b);
  const double en = std::sqrt(na * nb / (na + nb));
  const double lambda = (en + 0.12 + 0.11 / en) * statistic;
  // Kolmogorov distribution tail: 2 sum (-1)^{k-1} exp(-2 k^2 lambda^2).
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    sum += sign * term;
    sign = -sign;
    if (term < 1e-12) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

double chi_square_statistic(std::span<const std::uint64_t> observed,
                            std::span<const double> expected_probability,
                            std::uint64_t total, int* dof,
                            double min_expected) {
  assert(observed.size() == expected_probability.size());
  // Pool adjacent low-expectation bins left to right.
  std::vector<double> pooled_expected;
  std::vector<double> pooled_observed;
  double acc_e = 0.0;
  double acc_o = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    acc_e += expected_probability[i] * static_cast<double>(total);
    acc_o += static_cast<double>(observed[i]);
    if (acc_e >= min_expected) {
      pooled_expected.push_back(acc_e);
      pooled_observed.push_back(acc_o);
      acc_e = 0.0;
      acc_o = 0.0;
    }
  }
  if (acc_e > 0.0 && !pooled_expected.empty()) {
    pooled_expected.back() += acc_e;
    pooled_observed.back() += acc_o;
  } else if (acc_e > 0.0) {
    pooled_expected.push_back(acc_e);
    pooled_observed.push_back(acc_o);
  }
  double stat = 0.0;
  for (std::size_t i = 0; i < pooled_expected.size(); ++i) {
    if (pooled_expected[i] <= 0.0) continue;
    const double diff = pooled_observed[i] - pooled_expected[i];
    stat += diff * diff / pooled_expected[i];
  }
  if (dof != nullptr) {
    *dof = std::max(1, static_cast<int>(pooled_expected.size()) - 1);
  }
  return stat;
}

namespace {

// Regularized lower incomplete gamma P(s, x), via series (x < s+1) or
// continued fraction (x >= s+1). Standard Numerical-Recipes-style routine.
double gamma_p(double s, double x) {
  if (x <= 0.0) return 0.0;
  const double lg = std::lgamma(s);
  if (x < s + 1.0) {
    double term = 1.0 / s;
    double sum = term;
    double a = s;
    for (int i = 0; i < 500; ++i) {
      a += 1.0;
      term *= x / a;
      sum += term;
      if (std::abs(term) < std::abs(sum) * 1e-15) break;
    }
    return sum * std::exp(-x + s * std::log(x) - lg);
  }
  // Lentz continued fraction for Q(s, x).
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - s;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - s);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  const double q = std::exp(-x + s * std::log(x) - lg) * h;
  return 1.0 - q;
}

}  // namespace

double chi_square_p_value(double statistic, int dof) {
  if (statistic <= 0.0) return 1.0;
  return std::clamp(1.0 - gamma_p(0.5 * dof, 0.5 * statistic), 0.0, 1.0);
}

}  // namespace bitspread
