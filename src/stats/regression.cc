#include "stats/regression.h"

#include <cassert>
#include <cmath>
#include <vector>

namespace bitspread {

LinearFit ols_fit(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  assert(x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  LinearFit fit;
  assert(sxx > 0.0);
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

LinearFit loglog_fit(std::span<const double> x, std::span<const double> y) {
  std::vector<double> lx(x.size()), ly(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    assert(x[i] > 0.0 && y[i] > 0.0);
    lx[i] = std::log(x[i]);
    ly[i] = std::log(y[i]);
  }
  return ols_fit(lx, ly);
}

}  // namespace bitspread
