#include "random/seeding.h"

namespace bitspread {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t hash = kFnvOffset;
  for (const char ch : text) {
    hash ^= static_cast<std::uint8_t>(ch);
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace

std::uint64_t SeedSequence::derive(std::uint64_t a, std::uint64_t b,
                                   std::uint64_t c) const noexcept {
  SplitMix64 mixer(master_);
  std::uint64_t seed = mixer.next();
  SplitMix64 ha(seed ^ (a * 0x9e3779b97f4a7c15ULL + 1));
  seed = ha.next();
  SplitMix64 hb(seed ^ (b * 0xd1b54a32d192ed03ULL + 2));
  seed = hb.next();
  SplitMix64 hc(seed ^ (c * 0x8cb92ba72f3d8dd7ULL + 3));
  return hc.next();
}

std::uint64_t SeedSequence::derive(std::string_view label,
                                   std::uint64_t index) const noexcept {
  return derive(fnv1a(label), index, 0x5eedULL);
}

}  // namespace bitspread
