// Walker/Vose alias method: O(1) sampling from a fixed discrete distribution
// after O(k) preprocessing. Used for drawing per-agent sample counts from a
// precomputed binomial pmf in the agent-level engine's fast path, and by
// table-driven initial-configuration generators.
#ifndef BITSPREAD_RANDOM_ALIAS_H_
#define BITSPREAD_RANDOM_ALIAS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "random/rng.h"

namespace bitspread {

class AliasTable {
 public:
  // Builds the table from non-negative weights (need not be normalized).
  // At least one weight must be positive.
  explicit AliasTable(std::span<const double> weights);

  // Samples an index in [0, size()) with probability proportional to its weight.
  std::size_t sample(Rng& rng) const noexcept;

  std::size_t size() const noexcept { return prob_.size(); }

  // Normalized probability of outcome i (for testing).
  double probability(std::size_t i) const noexcept { return normalized_[i]; }

 private:
  std::vector<double> prob_;          // Acceptance threshold per bucket.
  std::vector<std::uint32_t> alias_;  // Alternative outcome per bucket.
  std::vector<double> normalized_;
};

}  // namespace bitspread

#endif  // BITSPREAD_RANDOM_ALIAS_H_
