// Exact binomial sampling.
//
// Binomial(n, p) draws are the workhorse of the aggregate simulation engine
// (engine/aggregate.h): one parallel round of any memory-less protocol reduces
// to two binomial draws, which is what makes populations of 10^9 agents as
// cheap to simulate as 10^3. Two regimes:
//
//   * BINV inversion (Kachitvichyanukul & Schmeiser 1988) when n*min(p,1-p)
//     is small: walk the CDF with the pmf recurrence. Expected O(n*p) work.
//   * BTRS transformed rejection (Hoermann 1993) otherwise: exact, O(1)
//     expected work independent of n.
//
// Both are exact samplers of the binomial law (no normal approximation), so
// aggregate-engine trajectories follow the true Markov chain distribution.
#ifndef BITSPREAD_RANDOM_BINOMIAL_H_
#define BITSPREAD_RANDOM_BINOMIAL_H_

#include <cstdint>
#include <vector>

#include "random/rng.h"

namespace bitspread {

// Draws from Binomial(n, p). p outside [0,1] is clamped.
std::uint64_t binomial(Rng& rng, std::uint64_t n, double p) noexcept;

// Internal regimes, exposed for testing and for the sampler ablation bench.
namespace binomial_detail {
std::uint64_t binv(Rng& rng, std::uint64_t n, double p) noexcept;  // p <= 0.5
std::uint64_t btrs(Rng& rng, std::uint64_t n, double p) noexcept;  // p <= 0.5
// Threshold on n*p between the regimes.
inline constexpr double kInversionThreshold = 10.0;
}  // namespace binomial_detail

// pmf of Binomial(n, k) at all k in [0, n], computed with the stable
// multiplicative recurrence. Used by the exact Markov-chain module.
std::vector<double> binomial_pmf(std::uint64_t n, double p);

// P(Binomial(n, p) <= k), by direct stable summation. Exact enough for the
// moderate n used in analysis code (n up to ~10^6).
double binomial_cdf(std::uint64_t n, double p, std::uint64_t k);

}  // namespace bitspread

#endif  // BITSPREAD_RANDOM_BINOMIAL_H_
