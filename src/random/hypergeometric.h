// Exact hypergeometric sampling.
//
// Models sampling *without* replacement: drawing `draws` agents from a
// population of size `total` containing `successes` agents with opinion 1.
// The paper's model samples with replacement (binomial); the without-
// replacement variant is provided so users can study how little the choice
// matters at scale (the laws coincide as total -> infinity), and it is used
// by the agent-level engine's "distinct samples" option.
#ifndef BITSPREAD_RANDOM_HYPERGEOMETRIC_H_
#define BITSPREAD_RANDOM_HYPERGEOMETRIC_H_

#include <cstdint>
#include <vector>

#include "random/rng.h"

namespace bitspread {

// Number of successes among `draws` draws without replacement from a
// population with `successes` successes out of `total`. Requires
// successes <= total and draws <= total.
std::uint64_t hypergeometric(Rng& rng, std::uint64_t total,
                             std::uint64_t successes,
                             std::uint64_t draws) noexcept;

// pmf over k = 0..draws, via stable recurrence (for tests & exact analysis).
std::vector<double> hypergeometric_pmf(std::uint64_t total,
                                       std::uint64_t successes,
                                       std::uint64_t draws);

}  // namespace bitspread

#endif  // BITSPREAD_RANDOM_HYPERGEOMETRIC_H_
