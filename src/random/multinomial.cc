#include "random/multinomial.h"

#include <cassert>
#include <numeric>

#include "random/binomial.h"

namespace bitspread {

std::vector<std::uint64_t> multinomial(Rng& rng, std::uint64_t trials,
                                       std::span<const double> probabilities) {
  assert(!probabilities.empty());
  std::vector<std::uint64_t> counts(probabilities.size(), 0);
  double remaining_mass =
      std::accumulate(probabilities.begin(), probabilities.end(), 0.0);
  assert(remaining_mass > 0.0);
  std::uint64_t remaining = trials;
  for (std::size_t i = 0; i + 1 < probabilities.size(); ++i) {
    if (remaining == 0) break;
    const double p = probabilities[i];
    if (p <= 0.0) continue;
    const double conditional = remaining_mass > 0.0 ? p / remaining_mass : 1.0;
    counts[i] = binomial(rng, remaining, conditional);
    remaining -= counts[i];
    remaining_mass -= p;
  }
  counts.back() += remaining;
  return counts;
}

}  // namespace bitspread
