#include "random/binomial.h"

#include <algorithm>
#include <cmath>

namespace bitspread {
namespace binomial_detail {

// BINV: sequential CDF inversion with the pmf recurrence
//   pmf(x+1) = pmf(x) * (n-x)/(x+1) * p/(1-p).
// Requires n*p small enough that q^n does not underflow; callers guarantee
// n*p <= kInversionThreshold, so q^n >= exp(-~10.5) comfortably.
std::uint64_t binv(Rng& rng, std::uint64_t n, double p) noexcept {
  const double q = 1.0 - p;
  const double s = p / q;
  const double a = static_cast<double>(n + 1) * s;
  while (true) {  // Restart on the (astronomically rare) u ~ 1 tail overrun.
    double r = std::exp(static_cast<double>(n) * std::log1p(-p));  // q^n
    double u = rng.next_double();
    std::uint64_t x = 0;
    bool done = false;
    while (x <= n) {
      if (u <= r) {
        done = true;
        break;
      }
      u -= r;
      ++x;
      r *= a / static_cast<double>(x) - s;
      if (r <= 0.0) break;  // Numerical tail exhausted.
    }
    if (done) return std::min(x, n);
  }
}

namespace {
// Stirling-series correction f_c(k) = ln(k!) - [ (k+1/2)ln(k+1) - (k+1) +
// 0.5 ln(2 pi) ] used by BTRS, following Hoermann (1993).
double stirling_correction(double k) noexcept {
  static constexpr double kTable[] = {
      0.08106146679532726, 0.04134069595540929, 0.02767792568499834,
      0.02079067210376509, 0.01664469118982119, 0.01387612882307075,
      0.01189670994589177, 0.01041126526197209, 0.00925546218271273,
      0.00833056343336287};
  if (k < 10.0) return kTable[static_cast<int>(k)];
  const double kp1sq = (k + 1.0) * (k + 1.0);
  return (1.0 / 12 - (1.0 / 360 - 1.0 / 1260 / kp1sq) / kp1sq) / (k + 1.0);
}
}  // namespace

// BTRS (Hoermann 1993, "The generation of binomial random variates",
// algorithm as used in practice e.g. by TensorFlow): transformed rejection
// with squeeze; exact for p in (0, 0.5], n*p >= 10.
std::uint64_t btrs(Rng& rng, std::uint64_t n, double p) noexcept {
  const double nd = static_cast<double>(n);
  const double q = 1.0 - p;
  const double stddev = std::sqrt(nd * p * q);
  const double b = 1.15 + 2.53 * stddev;
  const double a = -0.0873 + 0.0248 * b + 0.01 * p;
  const double c = nd * p + 0.5;
  const double v_r = 0.92 - 4.2 / b;
  const double r = p / q;
  const double alpha = (2.83 + 5.1 / b) * stddev;
  const double m = std::floor((nd + 1.0) * p);

  while (true) {
    const double u = rng.next_double() - 0.5;
    double v = rng.next_double();
    const double us = 0.5 - std::abs(u);
    const double kd = std::floor((2.0 * a / us + b) * u + c);
    if (kd < 0.0 || kd > nd) continue;
    if (us >= 0.07 && v <= v_r) return static_cast<std::uint64_t>(kd);
    v = std::log(v * alpha / (a / (us * us) + b));
    const double upper =
        (m + 0.5) * std::log((m + 1.0) / (r * (nd - m + 1.0))) +
        (nd + 1.0) * std::log((nd - m + 1.0) / (nd - kd + 1.0)) +
        (kd + 0.5) * std::log(r * (nd - kd + 1.0) / (kd + 1.0)) +
        stirling_correction(m) + stirling_correction(nd - m) -
        stirling_correction(kd) - stirling_correction(nd - kd);
    if (v <= upper) return static_cast<std::uint64_t>(kd);
  }
}

}  // namespace binomial_detail

std::uint64_t binomial(Rng& rng, std::uint64_t n, double p) noexcept {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (p > 0.5) return n - binomial(rng, n, 1.0 - p);
  if (static_cast<double>(n) * p < binomial_detail::kInversionThreshold) {
    return binomial_detail::binv(rng, n, p);
  }
  return binomial_detail::btrs(rng, n, p);
}

std::vector<double> binomial_pmf(std::uint64_t n, double p) {
  std::vector<double> pmf(n + 1, 0.0);
  if (p <= 0.0) {
    pmf[0] = 1.0;
    return pmf;
  }
  if (p >= 1.0) {
    pmf[n] = 1.0;
    return pmf;
  }
  // Start from the mode in log-space to avoid underflow at either tail, then
  // extend with the multiplicative recurrence in both directions.
  const double nd = static_cast<double>(n);
  const auto mode = static_cast<std::uint64_t>(
      std::min(nd, std::floor((nd + 1.0) * p)));
  const double log_mode = std::lgamma(nd + 1.0) -
                          std::lgamma(static_cast<double>(mode) + 1.0) -
                          std::lgamma(nd - static_cast<double>(mode) + 1.0) +
                          static_cast<double>(mode) * std::log(p) +
                          (nd - static_cast<double>(mode)) * std::log1p(-p);
  pmf[mode] = std::exp(log_mode);
  const double ratio = p / (1.0 - p);
  for (std::uint64_t k = mode; k < n; ++k) {
    pmf[k + 1] = pmf[k] * ratio * (nd - static_cast<double>(k)) /
                 (static_cast<double>(k) + 1.0);
  }
  for (std::uint64_t k = mode; k > 0; --k) {
    pmf[k - 1] = pmf[k] / ratio * static_cast<double>(k) /
                 (nd - static_cast<double>(k) + 1.0);
  }
  return pmf;
}

double binomial_cdf(std::uint64_t n, double p, std::uint64_t k) {
  if (k >= n) return 1.0;
  const auto pmf = binomial_pmf(n, p);
  // Sum the smaller tail for accuracy.
  if (k <= n / 2) {
    double acc = 0.0;
    for (std::uint64_t i = 0; i <= k; ++i) acc += pmf[i];
    return std::min(acc, 1.0);
  }
  double acc = 0.0;
  for (std::uint64_t i = n; i > k; --i) acc += pmf[i];
  return std::max(0.0, 1.0 - acc);
}

}  // namespace bitspread
