// Floyd's algorithm for uniform random k-subsets of {0, ..., n-1}.
//
// Replaces rejection resampling in the engines' without-replacement
// ("distinct samples") mode: Floyd's method draws exactly k uniforms and
// does O(k) expected work regardless of how close k is to n, where the
// rejection loop is O(k^2) comparisons and degenerates as k -> n. The
// produced set is exactly uniform over all C(n, k) subsets (Floyd 1987,
// via Bentley's "Programming Pearls" column), so the two methods are
// distribution-identical (tested in random_misc_test.cc).
//
// Membership queries go through a small open-addressing table that is
// owned by the sampler and reused across calls, so steady-state sampling
// allocates nothing.
#ifndef BITSPREAD_RANDOM_FLOYD_H_
#define BITSPREAD_RANDOM_FLOYD_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "random/rng.h"

namespace bitspread {

class FloydSampler {
 public:
  // Invokes visit(index) exactly once for each of k distinct indices drawn
  // uniformly from [0, n). Requires k <= n and n < 2^64 - 1. Visit order is
  // Floyd's insertion order, not sorted order (irrelevant to every caller:
  // the engines only count opinions over the set). The generator only needs
  // next_below(bound); besides Rng this admits the kernel's per-lane views
  // (LaneRng::LaneView), which is why it is a template parameter.
  template <typename Generator, typename Visit>
  void sample(std::uint64_t n, std::uint64_t k, Generator& rng,
              Visit&& visit) {
    assert(k <= n);
    if (k == 0) return;
    reset(k);
    for (std::uint64_t j = n - k; j < n; ++j) {
      const std::uint64_t candidate = rng.next_below(j + 1);
      if (insert(candidate)) {
        visit(candidate);
      } else {
        // `candidate` was already chosen; j itself cannot be (only values
        // < j have been inserted), so taking j keeps the subset uniform.
        insert(j);
        visit(j);
      }
    }
  }

  // Buffer-filling form for batch consumers (the bitslice step kernel draws
  // l indices per agent x 64 agents per word): writes the k indices into
  // out[0..k), in visit order, with draws and results identical to the
  // callback form (tested in random_misc_test.cc).
  template <typename Generator>
  void sample_batch(std::uint64_t n, std::uint64_t k, Generator& rng,
                    std::uint64_t* out) {
    std::uint64_t count = 0;
    sample(n, k, rng,
           [&](std::uint64_t index) noexcept { out[count++] = index; });
  }

 private:
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  // Sizes and clears the table for a k-element sample (load factor <= 1/2).
  void reset(std::uint64_t k);

  // Adds `value`; returns false (and leaves the table unchanged) when it is
  // already present.
  bool insert(std::uint64_t value) noexcept {
    // Fibonacci hashing: top bits of the product are well mixed, so probe
    // chains stay short at the <= 1/2 load factor reset() guarantees.
    std::uint64_t slot =
        (value * 0x9e3779b97f4a7c15ULL) >> (64 - table_bits_);
    const std::uint64_t mask = (std::uint64_t{1} << table_bits_) - 1;
    while (slots_[slot] != kEmpty) {
      if (slots_[slot] == value) return false;
      slot = (slot + 1) & mask;
    }
    slots_[slot] = value;
    return true;
  }

  std::vector<std::uint64_t> slots_;
  unsigned table_bits_ = 0;
};

}  // namespace bitspread

#endif  // BITSPREAD_RANDOM_FLOYD_H_
