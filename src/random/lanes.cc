#include "random/lanes.h"

namespace bitspread {

LaneRng::LaneRng(std::uint64_t master) noexcept {
  SplitMix64 chain(master);
  for (unsigned lane = 0; lane < kLanes; ++lane) {
    const std::array<std::uint64_t, 4> s = Rng::seed_state(chain.next());
    for (unsigned k = 0; k < 4; ++k) state_[k][lane] = s[k];
  }
  aux_seed_ = chain.next();
}

void indices_from_row(LaneRng& lanes, const std::uint64_t row[LaneRng::kLanes],
                      std::uint32_t n32, std::uint32_t threshold,
                      std::uint32_t out[16]) noexcept {
  for (unsigned s = 0; s < 16; ++s) {
    const std::uint64_t x = row[s >> 1];
    const auto x32 = (s & 1) != 0 ? static_cast<std::uint32_t>(x >> 32)
                                  : static_cast<std::uint32_t>(x);
    std::uint64_t m = static_cast<std::uint64_t>(x32) * n32;
    auto low = static_cast<std::uint32_t>(m);
    while (low < threshold) [[unlikely]] {
      const auto redraw = static_cast<std::uint32_t>(lanes.next(s >> 1));
      m = static_cast<std::uint64_t>(redraw) * n32;
      low = static_cast<std::uint32_t>(m);
    }
    out[s] = static_cast<std::uint32_t>(m >> 32);
  }
}

void fill_index_row(LaneRng& lanes, std::uint32_t n32, std::uint32_t threshold,
                    std::uint32_t out[16]) noexcept {
  std::uint64_t row[LaneRng::kLanes];
  lanes.fill_row(row);
  indices_from_row(lanes, row, n32, threshold, out);
}

}  // namespace bitspread
