// Exact multinomial sampling via sequential binomial conditioning:
// counts[0] ~ Bin(n, p0), counts[1] ~ Bin(n - counts[0], p1/(1-p0)), ...
// Used by the multi-opinion aggregate engine.
#ifndef BITSPREAD_RANDOM_MULTINOMIAL_H_
#define BITSPREAD_RANDOM_MULTINOMIAL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "random/rng.h"

namespace bitspread {

// Draws counts (one per category) for `trials` trials with the given
// probabilities (must be non-negative; normalized internally). The result
// sums to `trials` exactly.
std::vector<std::uint64_t> multinomial(Rng& rng, std::uint64_t trials,
                                       std::span<const double> probabilities);

}  // namespace bitspread

#endif  // BITSPREAD_RANDOM_MULTINOMIAL_H_
