// Deterministic pseudo-random number generation for bitspread.
//
// All randomness in the library flows through Xoshiro256StarStar. We ship our
// own generator (and our own samplers, see binomial.h) instead of relying on
// std::<distribution> types because the standard does not pin down their
// algorithms: results would differ across standard-library implementations,
// which would make every recorded experiment non-reproducible.
#ifndef BITSPREAD_RANDOM_RNG_H_
#define BITSPREAD_RANDOM_RNG_H_

#include <array>
#include <cstdint>
#include <limits>

namespace bitspread {

// SplitMix64 (Steele, Lea, Flood 2014). Used to expand user seeds into full
// generator states and to hash stream identifiers; not used as a main
// generator itself.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256** 1.0 (Blackman & Vigna 2018): fast, 256-bit state, passes BigCrush.
// Satisfies std::uniform_random_bit_generator so it can also feed standard
// algorithms (e.g. std::shuffle) where exact reproducibility is not asserted.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  // Seeds the full 256-bit state from a 64-bit seed via SplitMix64, as
  // recommended by the xoshiro authors.
  explicit Xoshiro256StarStar(std::uint64_t seed = 0xb175b9eadULL) noexcept;

  // The 256-bit state `Xoshiro256StarStar(seed)` starts from. Exposed so the
  // kernel's interleaved lane generators (random/lanes.h) are, lane by lane,
  // exactly the generator a scalar `Rng(seed)` would be.
  static std::array<std::uint64_t, 4> seed_state(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  std::uint64_t operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1) with 53 random bits.
  double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound) without modulo bias (Lemire's nearly
  // divisionless method). bound must be positive. Defined inline: this is
  // the innermost call of every agent-level engine round.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) [[unlikely]] {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Bernoulli(p) draw. p outside [0,1] is clamped.
  bool bernoulli(double p) noexcept { return next_double() < p; }

  // Uniform double in [lo, hi).
  double next_in(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  // Advances the state by 2^128 steps: yields up to 2^128 non-overlapping
  // subsequences for parallel streams.
  void jump() noexcept;

  // Raw 256-bit state, for checkpointing: a restored generator continues the
  // stream exactly where the captured one left off.
  std::array<std::uint64_t, 4> state() const noexcept { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& state) noexcept {
    state_ = state;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

using Rng = Xoshiro256StarStar;

}  // namespace bitspread

#endif  // BITSPREAD_RANDOM_RNG_H_
