#include "random/hypergeometric.h"

#include <algorithm>
#include <cmath>

namespace bitspread {
namespace {

// CDF inversion from the mode, mirroring binomial_pmf's approach. draws is
// small in all library uses (it is the sample size l), so O(draws) is fine.
std::uint64_t invert_pmf(Rng& rng, const std::vector<double>& pmf) noexcept {
  double u = rng.next_double();
  for (std::size_t k = 0; k < pmf.size(); ++k) {
    if (u <= pmf[k]) return k;
    u -= pmf[k];
  }
  return pmf.size() - 1;  // Round-off tail.
}

}  // namespace

std::vector<double> hypergeometric_pmf(std::uint64_t total,
                                       std::uint64_t successes,
                                       std::uint64_t draws) {
  const std::uint64_t lo =
      draws + successes > total ? draws + successes - total : 0;
  const std::uint64_t hi = std::min(draws, successes);
  std::vector<double> pmf(draws + 1, 0.0);
  // log pmf at lo via lgamma, then multiplicative recurrence:
  // pmf(k+1)/pmf(k) = (K-k)(n-k) / ((k+1)(N-K-n+k+1))
  auto lchoose = [](double a, double b) {
    return std::lgamma(a + 1.0) - std::lgamma(b + 1.0) -
           std::lgamma(a - b + 1.0);
  };
  const double n_d = static_cast<double>(draws);
  const double big_n = static_cast<double>(total);
  const double big_k = static_cast<double>(successes);
  const double lo_d = static_cast<double>(lo);
  pmf[lo] = std::exp(lchoose(big_k, lo_d) + lchoose(big_n - big_k, n_d - lo_d) -
                     lchoose(big_n, n_d));
  for (std::uint64_t k = lo; k < hi; ++k) {
    const double kd = static_cast<double>(k);
    pmf[k + 1] = pmf[k] * (big_k - kd) * (n_d - kd) /
                 ((kd + 1.0) * (big_n - big_k - n_d + kd + 1.0));
  }
  return pmf;
}

std::uint64_t hypergeometric(Rng& rng, std::uint64_t total,
                             std::uint64_t successes,
                             std::uint64_t draws) noexcept {
  if (draws == 0 || successes == 0) return 0;
  if (successes >= total) return draws;
  if (draws >= total) return successes;
  return invert_pmf(rng, hypergeometric_pmf(total, successes, draws));
}

}  // namespace bitspread
