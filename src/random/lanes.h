// Eight interleaved xoshiro256** streams for the word-parallel step kernel.
//
// The bitslice kernel (engine/kernel/) consumes randomness eight 64-bit
// draws at a time so its SIMD backends can advance all streams with vector
// arithmetic. LaneRng is the canonical form of that bundle: lane j is
// exactly the generator `Rng(lane_seed_j)` would be, where the eight lane
// seeds (plus one auxiliary seed for the kernel's scalar side channels) are
// a SplitMix64 chain off one master seed — the same expand-one-seed recipe
// Rng's own constructor uses.
//
// The state is stored struct-of-arrays, state()[k][lane], so a vector
// backend can load state word k of four lanes with one 256-bit load. The
// scalar member functions below define the reference semantics; SIMD code
// operating on state() directly must reproduce them bit-for-bit (pinned by
// the kernel digest-equality tests).
#ifndef BITSPREAD_RANDOM_LANES_H_
#define BITSPREAD_RANDOM_LANES_H_

#include <cstdint>

#include "random/rng.h"

namespace bitspread {

class LaneRng {
 public:
  static constexpr unsigned kLanes = 8;

  // Expands `master` into 8 lane states + 1 auxiliary seed via SplitMix64.
  explicit LaneRng(std::uint64_t master) noexcept;

  // Seed for the kernel's scalar auxiliary stream (fault masks, tie words):
  // the ninth value of the master's SplitMix64 chain.
  std::uint64_t aux_seed() const noexcept { return aux_seed_; }

  // One draw from every lane, in lane order: out[j] is lane j's next value.
  void fill_row(std::uint64_t out[kLanes]) noexcept {
    for (unsigned lane = 0; lane < kLanes; ++lane) out[lane] = next(lane);
  }

  // One draw from a single lane (the kernel's rejection-redraw path).
  std::uint64_t next(unsigned lane) noexcept {
    const std::uint64_t result = rotl(state_[1][lane] * 5, 7) * 9;
    const std::uint64_t t = state_[1][lane] << 17;
    state_[2][lane] ^= state_[0][lane];
    state_[3][lane] ^= state_[1][lane];
    state_[1][lane] ^= state_[2][lane];
    state_[0][lane] ^= state_[3][lane];
    state_[2][lane] ^= t;
    state_[3][lane] = rotl(state_[3][lane], 45);
    return result;
  }

  // Uniform integer in [0, bound) from one lane — Lemire's 64-bit method,
  // identical to Rng::next_below on the matching scalar generator. Used by
  // the kernel's without-replacement (Floyd) sampling stage.
  std::uint64_t next_below(unsigned lane, std::uint64_t bound) noexcept {
    std::uint64_t x = next(lane);
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) [[unlikely]] {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = next(lane);
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Raw state, word-major: state()[k][lane] is state word k of `lane`.
  // SIMD backends load/advance/store this directly.
  std::uint64_t (&state() noexcept)[4][kLanes] { return state_; }

  // View of one lane for generic samplers (FloydSampler): forwards
  // next_below to the parent so draws stay on the lane's stream.
  struct LaneView {
    LaneRng* lanes;
    unsigned lane;
    std::uint64_t next_below(std::uint64_t bound) noexcept {
      return lanes->next_below(lane, bound);
    }
  };
  LaneView lane_view(unsigned lane) noexcept { return LaneView{this, lane}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  alignas(64) std::uint64_t state_[4][kLanes];
  std::uint64_t aux_seed_;
};

// The exact 32-bit Lemire rejection threshold for population size n < 2^32:
// a 32-bit draw x maps to index (x * n) >> 32 and is rejected (redrawn) when
// the low half of the product is < threshold, making every index exactly
// uniform. Zero (no rejections) whenever n is a power of two.
inline std::uint32_t lemire32_threshold(std::uint64_t n) noexcept {
  return static_cast<std::uint32_t>(((std::uint64_t{1} << 32) - n) % n);
}

// Maps one already-drawn row (row[j] = lane j's draw) to 16 indices in
// [0, n): slot s takes the low (s even) or high (s odd) 32-bit half of lane
// ⌊s/2⌋'s draw, maps it by Lemire multiply-shift, and rejected slots redraw
// the low half of fresh single-lane draws (from slot s's own lane, mutating
// `lanes`) in ascending slot order. SIMD index generators must match this
// function bit-for-bit.
void indices_from_row(LaneRng& lanes, const std::uint64_t row[LaneRng::kLanes],
                      std::uint32_t n32, std::uint32_t threshold,
                      std::uint32_t out[16]) noexcept;

// Canonical index row of the kernel/2 stream schedule: one draw from every
// lane, then indices_from_row.
void fill_index_row(LaneRng& lanes, std::uint32_t n32, std::uint32_t threshold,
                    std::uint32_t out[16]) noexcept;

}  // namespace bitspread

#endif  // BITSPREAD_RANDOM_LANES_H_
