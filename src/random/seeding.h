// Reproducible seed derivation for experiments.
//
// A SeedSequence turns one master seed into arbitrarily many statistically
// independent named streams, so that an experiment cell (n, l, protocol,
// replicate) always sees the same randomness regardless of execution order or
// which other cells ran. Derivation is a SplitMix64 hash chain over the
// master seed and the stream coordinates.
#ifndef BITSPREAD_RANDOM_SEEDING_H_
#define BITSPREAD_RANDOM_SEEDING_H_

#include <cstdint>
#include <string_view>

#include "random/rng.h"

namespace bitspread {

class SeedSequence {
 public:
  explicit constexpr SeedSequence(std::uint64_t master) noexcept
      : master_(master) {}

  // Derives a 64-bit seed from up to three coordinates (e.g. cell index,
  // replicate index, phase).
  std::uint64_t derive(std::uint64_t a, std::uint64_t b = 0,
                       std::uint64_t c = 0) const noexcept;

  // Derives from a string label plus an index (FNV-1a over the label).
  std::uint64_t derive(std::string_view label,
                       std::uint64_t index = 0) const noexcept;

  // Convenience: an Rng for the derived stream.
  Rng stream(std::uint64_t a, std::uint64_t b = 0,
             std::uint64_t c = 0) const noexcept {
    return Rng(derive(a, b, c));
  }

  std::uint64_t master() const noexcept { return master_; }

 private:
  std::uint64_t master_;
};

}  // namespace bitspread

#endif  // BITSPREAD_RANDOM_SEEDING_H_
