#include "random/floyd.h"

#include <algorithm>

namespace bitspread {

void FloydSampler::reset(std::uint64_t k) {
  unsigned bits = 4;
  while ((std::uint64_t{1} << bits) < 2 * k) ++bits;
  const std::uint64_t size = std::uint64_t{1} << bits;
  if (table_bits_ == bits && slots_.size() == size) {
    std::fill(slots_.begin(), slots_.end(), kEmpty);
    return;
  }
  table_bits_ = bits;
  slots_.assign(size, kEmpty);
}

}  // namespace bitspread
