#include "random/alias.h"

#include <cassert>
#include <numeric>

namespace bitspread {

AliasTable::AliasTable(std::span<const double> weights)
    : prob_(weights.size(), 1.0),
      alias_(weights.size(), 0),
      normalized_(weights.size()) {
  assert(!weights.empty());
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  assert(total > 0.0);
  const auto k = weights.size();
  std::vector<double> scaled(k);
  for (std::size_t i = 0; i < k; ++i) {
    assert(weights[i] >= 0.0);
    normalized_[i] = weights[i] / total;
    scaled[i] = normalized_[i] * static_cast<double>(k);
  }

  std::vector<std::uint32_t> small, large;
  small.reserve(k);
  large.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers are numerically 1.0; prob_ already initialized to 1.0.
}

std::size_t AliasTable::sample(Rng& rng) const noexcept {
  const std::size_t bucket = rng.next_below(prob_.size());
  return rng.next_double() < prob_[bucket] ? bucket : alias_[bucket];
}

}  // namespace bitspread
