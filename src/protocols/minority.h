// The Minority dynamics (paper Protocol 2, from Becchetti et al. SODA 2024):
// if the whole sample is unanimous, adopt that opinion; otherwise adopt the
// minority opinion of the sample, breaking exact ties uniformly at random.
// In g-form (Eq. 2):
//   g(k) = 1   if k = l or 0 < k < l/2,
//   g(k) = 1/2 if k = l/2,
//   g(k) = 0   if k = 0 or l/2 < k < l.
// With l = Omega(sqrt(n log n)) it solves bit-dissemination in O(log^2 n)
// rounds w.h.p.; with constant l it falls under the Theorem 1 lower bound.
#ifndef BITSPREAD_PROTOCOLS_MINORITY_H_
#define BITSPREAD_PROTOCOLS_MINORITY_H_

#include "core/protocol.h"

namespace bitspread {

class MinorityDynamics final : public MemorylessProtocol {
 public:
  explicit MinorityDynamics(SampleSizePolicy policy) noexcept
      : MemorylessProtocol(policy) {}
  explicit MinorityDynamics(std::uint32_t ell) noexcept
      : MinorityDynamics(SampleSizePolicy::constant(ell)) {}

  double g(Opinion own, std::uint32_t ones_seen, std::uint32_t ell,
           std::uint64_t n) const noexcept override;

  // Allocation-free specialization of the Eq. 4 sum (tail masses of
  // Binomial(l, p) with the Eq. 2 weights, walked from the mode):
  //   P(p) = Pr[0 < K < l/2] + 1/2 Pr[K = l/2] + Pr[K = l],  K~Bin(l, p).
  double aggregate_adoption(Opinion own, double p,
                            std::uint64_t n) const noexcept override;

  std::string name() const override;
};

}  // namespace bitspread

#endif  // BITSPREAD_PROTOCOLS_MINORITY_H_
