#include "protocols/three_majority.h"

namespace bitspread {

double ThreeMajorityDynamics::g(Opinion /*own*/, std::uint32_t ones_seen,
                                std::uint32_t /*ell*/,
                                std::uint64_t /*n*/) const noexcept {
  return ones_seen >= 2 ? 1.0 : 0.0;
}

double ThreeMajorityDynamics::aggregate_adoption(
    Opinion /*own*/, double p, std::uint64_t /*n*/) const noexcept {
  return p * p * (3.0 - 2.0 * p);
}

}  // namespace bitspread
