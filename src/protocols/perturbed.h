// Epsilon-perturbed protocols: g' = (1 - epsilon) * g + epsilon * flip_bias.
//
// A perturbed protocol with epsilon > 0 violates Proposition 3 (g'(0) > 0),
// so it can never *stabilize*: bench_prop3_necessity uses this wrapper to
// show consensus escape. It also models unreliable agents (spontaneous
// opinion noise), a standard robustness question in opinion dynamics.
#ifndef BITSPREAD_PROTOCOLS_PERTURBED_H_
#define BITSPREAD_PROTOCOLS_PERTURBED_H_

#include "core/protocol.h"

namespace bitspread {

class PerturbedProtocol final : public MemorylessProtocol {
 public:
  // With probability epsilon the agent ignores its sample and adopts 1 with
  // probability flip_bias; otherwise it follows `base`. `base` must outlive
  // this wrapper.
  PerturbedProtocol(const MemorylessProtocol& base, double epsilon,
                    double flip_bias = 0.5) noexcept;

  double g(Opinion own, std::uint32_t ones_seen, std::uint32_t ell,
           std::uint64_t n) const noexcept override;

  double aggregate_adoption(Opinion own, double p,
                            std::uint64_t n) const noexcept override;

  std::string name() const override;

 private:
  const MemorylessProtocol* base_;
  double epsilon_;
  double flip_bias_;
};

}  // namespace bitspread

#endif  // BITSPREAD_PROTOCOLS_PERTURBED_H_
