#include "protocols/two_choice.h"

namespace bitspread {

double TwoChoiceDynamics::g(Opinion own, std::uint32_t ones_seen,
                            std::uint32_t /*ell*/,
                            std::uint64_t /*n*/) const noexcept {
  if (ones_seen == 2) return 1.0;
  if (ones_seen == 0) return 0.0;
  return own == Opinion::kOne ? 1.0 : 0.0;  // Disagreement: keep own.
}

double TwoChoiceDynamics::aggregate_adoption(Opinion own, double p,
                                             std::uint64_t /*n*/)
    const noexcept {
  const double agree_one = p * p;
  const double disagree = 2.0 * p * (1.0 - p);
  return agree_one + (own == Opinion::kOne ? disagree : 0.0);
}

}  // namespace bitspread
