#include "protocols/undecided.h"

namespace bitspread {

StatefulProtocol::AgentView UndecidedStateDynamics::update(
    AgentView current, std::uint32_t ones_seen, std::uint32_t /*ell*/,
    std::uint64_t /*n*/, Rng& /*rng*/) const {
  const Opinion observed = opinion_from(static_cast<int>(ones_seen));
  if (current.state == kUndecided) {
    return AgentView{observed, kCommitted};
  }
  if (observed == current.opinion) return current;
  return AgentView{current.opinion, kUndecided};
}

}  // namespace bitspread
