// The 2-Choice dynamics: sample two agents; if they agree, adopt their common
// opinion, otherwise keep the own opinion. Equivalent in law to "sample two,
// majority with tie -> keep own". Another classic constant-sample dynamics
// (Ghaffari & Lengler 2018) covered by the Theorem 1 lower bound.
#ifndef BITSPREAD_PROTOCOLS_TWO_CHOICE_H_
#define BITSPREAD_PROTOCOLS_TWO_CHOICE_H_

#include "core/protocol.h"

namespace bitspread {

class TwoChoiceDynamics final : public MemorylessProtocol {
 public:
  TwoChoiceDynamics() noexcept
      : MemorylessProtocol(SampleSizePolicy::constant(2)) {}

  double g(Opinion own, std::uint32_t ones_seen, std::uint32_t ell,
           std::uint64_t n) const noexcept override;

  // Closed form: P_b(p) = p^2 + [b == 1] * 2p(1-p).
  double aggregate_adoption(Opinion own, double p,
                            std::uint64_t n) const noexcept override;

  std::string name() const override { return "2-choice"; }
};

}  // namespace bitspread

#endif  // BITSPREAD_PROTOCOLS_TWO_CHOICE_H_
