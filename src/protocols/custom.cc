#include "protocols/custom.h"

#include <cassert>
#include <utility>

namespace bitspread {
namespace {

void check_table(const std::vector<double>& table) {
  assert(!table.empty());
  for (const double v : table) {
    assert(v >= 0.0 && v <= 1.0);
    (void)v;
  }
}

}  // namespace

CustomProtocol::CustomProtocol(std::vector<double> g_zero,
                               std::vector<double> g_one, std::string label)
    : MemorylessProtocol(SampleSizePolicy::constant(
          static_cast<std::uint32_t>(g_zero.size() - 1))),
      g_zero_(std::move(g_zero)),
      g_one_(std::move(g_one)),
      label_(std::move(label)) {
  check_table(g_zero_);
  check_table(g_one_);
  assert(g_zero_.size() == g_one_.size());
}

CustomProtocol::CustomProtocol(std::vector<double> g_both, std::string label)
    : CustomProtocol(g_both, g_both, std::move(label)) {}

double CustomProtocol::g(Opinion own, std::uint32_t ones_seen,
                         std::uint32_t /*ell*/,
                         std::uint64_t /*n*/) const noexcept {
  const auto& table = own == Opinion::kOne ? g_one_ : g_zero_;
  return table[ones_seen];
}

CustomProtocol random_protocol(Rng& rng, std::uint32_t ell,
                               bool force_proposition3) {
  std::vector<double> g_zero(ell + 1), g_one(ell + 1);
  for (auto& v : g_zero) v = rng.next_double();
  for (auto& v : g_one) v = rng.next_double();
  if (force_proposition3) {
    g_zero[0] = 0.0;
    g_one[ell] = 1.0;
  }
  return CustomProtocol(std::move(g_zero), std::move(g_one), "random");
}

}  // namespace bitspread
