// The Majority dynamics: adopt the majority opinion of the sample; on an
// exact tie, either keep the own opinion (kKeepOwn) or flip a fair coin
// (kRandom). Classic fast consensus dynamics (Ghaffari & Lengler 2018), but —
// as the paper's introduction notes — it lacks sensitivity to the informed
// source and in general FAILS the bit-dissemination problem: from a large
// wrong majority it drives the system to the wrong consensus, which the
// source then destabilizes only through unanimity-breaking samples. Included
// as a baseline and as a Case-1/Case-2 specimen for the bias analysis.
#ifndef BITSPREAD_PROTOCOLS_MAJORITY_H_
#define BITSPREAD_PROTOCOLS_MAJORITY_H_

#include "core/protocol.h"

namespace bitspread {

class MajorityDynamics final : public MemorylessProtocol {
 public:
  enum class TieBreak { kKeepOwn, kRandom };

  explicit MajorityDynamics(std::uint32_t ell,
                            TieBreak tie = TieBreak::kKeepOwn) noexcept
      : MemorylessProtocol(SampleSizePolicy::constant(ell)), tie_(tie) {}
  MajorityDynamics(SampleSizePolicy policy, TieBreak tie) noexcept
      : MemorylessProtocol(policy), tie_(tie) {}

  double g(Opinion own, std::uint32_t ones_seen, std::uint32_t ell,
           std::uint64_t n) const noexcept override;

  std::string name() const override;

 private:
  TieBreak tie_;
};

}  // namespace bitspread

#endif  // BITSPREAD_PROTOCOLS_MAJORITY_H_
