// Table-driven protocols: arbitrary g_n^[b] given as explicit vectors.
//
// This is the "any imaginable protocol within the constraints of the setting"
// escape hatch: the lower bound (Theorem 1) quantifies over ALL g-families,
// and the analysis/benchmark code exercises random and hand-crafted tables
// through this class. For constant sample size the g tables cannot depend on
// n in an interesting way for a fixed instance, which matches the paper's
// regime; n-dependent families can be expressed with a factory callback.
#ifndef BITSPREAD_PROTOCOLS_CUSTOM_H_
#define BITSPREAD_PROTOCOLS_CUSTOM_H_

#include <functional>
#include <vector>

#include "core/protocol.h"
#include "random/rng.h"

namespace bitspread {

class CustomProtocol final : public MemorylessProtocol {
 public:
  // g_zero[k] (resp. g_one[k]) = probability of adopting 1 after seeing k
  // ones, for an agent with own opinion 0 (resp. 1). Both must have size
  // ell + 1 with entries in [0, 1].
  CustomProtocol(std::vector<double> g_zero, std::vector<double> g_one,
                 std::string label = "custom");

  // Oblivious variant: same table regardless of the own opinion.
  CustomProtocol(std::vector<double> g_both, std::string label = "custom");

  double g(Opinion own, std::uint32_t ones_seen, std::uint32_t ell,
           std::uint64_t n) const noexcept override;

  std::string name() const override { return label_; }

  std::uint32_t ell() const noexcept {
    return static_cast<std::uint32_t>(g_zero_.size() - 1);
  }

 private:
  std::vector<double> g_zero_;
  std::vector<double> g_one_;
  std::string label_;
};

// A uniformly random protocol table of sample size ell. When
// `force_proposition3` is set, g[0](0) = 0 and g[1](l) = 1 are pinned so the
// result is a candidate solver (used by property tests and by the lower-bound
// bench's "adversarially chosen protocol" sweeps).
CustomProtocol random_protocol(Rng& rng, std::uint32_t ell,
                               bool force_proposition3 = true);

}  // namespace bitspread

#endif  // BITSPREAD_PROTOCOLS_CUSTOM_H_
