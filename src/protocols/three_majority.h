// The 3-Majority dynamics: sample three agents, adopt their majority opinion.
// The l = 3, tie-impossible special case of Majority, ubiquitous in the
// consensus literature. Constant sample size, so it sits squarely inside the
// Theorem 1 lower-bound regime.
#ifndef BITSPREAD_PROTOCOLS_THREE_MAJORITY_H_
#define BITSPREAD_PROTOCOLS_THREE_MAJORITY_H_

#include "core/protocol.h"

namespace bitspread {

class ThreeMajorityDynamics final : public MemorylessProtocol {
 public:
  ThreeMajorityDynamics() noexcept
      : MemorylessProtocol(SampleSizePolicy::constant(3)) {}

  double g(Opinion own, std::uint32_t ones_seen, std::uint32_t ell,
           std::uint64_t n) const noexcept override;

  // Closed form: P(p) = 3p^2 - 2p^3.
  double aggregate_adoption(Opinion own, double p,
                            std::uint64_t n) const noexcept override;

  std::string name() const override { return "3-majority"; }
};

}  // namespace bitspread

#endif  // BITSPREAD_PROTOCOLS_THREE_MAJORITY_H_
