#include "protocols/follow_trend.h"

namespace bitspread {

StatefulProtocol::AgentView TrendFollowerDynamics::update(
    AgentView current, std::uint32_t ones_seen, std::uint32_t ell,
    std::uint64_t /*n*/, Rng& /*rng*/) const {
  const std::uint32_t prev = current.state;
  Opinion next = current.opinion;
  if (ones_seen > prev) {
    next = Opinion::kOne;
  } else if (ones_seen < prev) {
    next = Opinion::kZero;
  } else if (2 * ones_seen > ell) {
    next = Opinion::kOne;
  } else if (2 * ones_seen < ell) {
    next = Opinion::kZero;
  }  // Exact tie on a flat reading: keep own opinion.
  return AgentView{next, ones_seen};
}

}  // namespace bitspread
