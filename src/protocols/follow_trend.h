// Trend-following dynamics: a bounded-memory protocol in the spirit of
// Korman & Vacus (PODC 2022), who showed that memorizing O(log log n) bits
// (enough to store the previous sample count when l = Theta(log n)) breaks
// the memory-less barrier. This is a *simplified* variant, not their exact
// protocol: each agent remembers last round's ones-count k_prev and
//   * adopts 1 if the count rose (k > k_prev): opinion 1 is trending up;
//   * adopts 0 if it fell;
//   * on a flat reading, follows the sample majority (tie -> keep own).
// Memory: the previous count, i.e. ceil(log2(l+1)) bits. Used by the
// bench_memory_extension experiment (E12) to contrast with memory-less
// dynamics at equal sample size.
#ifndef BITSPREAD_PROTOCOLS_FOLLOW_TREND_H_
#define BITSPREAD_PROTOCOLS_FOLLOW_TREND_H_

#include "core/sample_size.h"
#include "core/stateful.h"

namespace bitspread {

class TrendFollowerDynamics final : public StatefulProtocol {
 public:
  explicit TrendFollowerDynamics(SampleSizePolicy policy,
                                 std::uint64_t n_hint = 2) noexcept
      : policy_(policy), state_count_(policy.sample_size(n_hint) + 1) {}

  std::uint32_t state_count() const noexcept override { return state_count_; }
  std::uint32_t sample_size(std::uint64_t n) const noexcept override {
    return policy_.sample_size(n);
  }

  AgentView update(AgentView current, std::uint32_t ones_seen,
                   std::uint32_t ell, std::uint64_t n,
                   Rng& rng) const override;

  std::string name() const override {
    return "trend-follower(" + policy_.describe() + ")";
  }

 private:
  SampleSizePolicy policy_;
  std::uint32_t state_count_;
};

}  // namespace bitspread

#endif  // BITSPREAD_PROTOCOLS_FOLLOW_TREND_H_
