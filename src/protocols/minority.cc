#include "protocols/minority.h"

#include <cmath>

namespace bitspread {
namespace {

// Eq. 2, branch-light form used by the aggregate walk below.
inline double g_minority(std::uint32_t k, std::uint32_t ell) noexcept {
  if (k == 0) return 0.0;
  if (k == ell) return 1.0;
  const std::uint32_t twice = 2 * k;
  if (twice < ell) return 1.0;
  if (twice == ell) return 0.5;
  return 0.0;
}

}  // namespace

double MinorityDynamics::g(Opinion /*own*/, std::uint32_t ones_seen,
                           std::uint32_t ell,
                           std::uint64_t /*n*/) const noexcept {
  return g_minority(ones_seen, ell);
}

double MinorityDynamics::aggregate_adoption(Opinion /*own*/, double p,
                                            std::uint64_t n) const noexcept {
  const std::uint32_t ell = sample_size(n);
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  // Allocation-free tail sum: walk the Binomial(l, p) pmf outward from its
  // mode with the multiplicative recurrence (the same scheme as
  // eq4_adoption_sum, with g inlined). This is the aggregate engine's hot
  // path in the sqrt(n log n) regime.
  const double nd = static_cast<double>(ell);
  const auto mode =
      static_cast<std::uint32_t>(std::min(nd, std::floor((nd + 1.0) * p)));
  const double log_mode =
      std::lgamma(nd + 1.0) - std::lgamma(static_cast<double>(mode) + 1.0) -
      std::lgamma(nd - static_cast<double>(mode) + 1.0) +
      static_cast<double>(mode) * std::log(p) +
      (nd - static_cast<double>(mode)) * std::log1p(-p);
  const double ratio = p / (1.0 - p);

  const double weight = std::exp(log_mode);
  double acc = weight * g_minority(mode, ell);
  double w = weight;
  for (std::uint32_t k = mode; k < ell; ++k) {
    w *= ratio * (nd - static_cast<double>(k)) / (static_cast<double>(k) + 1.0);
    if (w <= 0.0) break;
    acc += w * g_minority(k + 1, ell);
  }
  w = weight;
  for (std::uint32_t k = mode; k > 0; --k) {
    w *= static_cast<double>(k) / (ratio * (nd - static_cast<double>(k) + 1.0));
    if (w <= 0.0) break;
    acc += w * g_minority(k - 1, ell);
  }
  return std::fmin(std::fmax(acc, 0.0), 1.0);
}

std::string MinorityDynamics::name() const {
  return "minority(" + policy().describe() + ")";
}

}  // namespace bitspread
