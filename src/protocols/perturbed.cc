#include "protocols/perturbed.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace bitspread {
namespace {

// std::clamp propagates NaN (NaN comparisons are false, so the value passes
// through untouched) and would poison every g-value downstream; a NaN rate
// falls back to the given default instead.
double clamp_probability(double value, double fallback) noexcept {
  if (std::isnan(value)) return fallback;
  return std::clamp(value, 0.0, 1.0);
}

}  // namespace

PerturbedProtocol::PerturbedProtocol(const MemorylessProtocol& base,
                                     double epsilon, double flip_bias) noexcept
    : MemorylessProtocol(base.policy()),
      base_(&base),
      epsilon_(clamp_probability(epsilon, 0.0)),
      flip_bias_(clamp_probability(flip_bias, 0.5)) {}

double PerturbedProtocol::g(Opinion own, std::uint32_t ones_seen,
                            std::uint32_t ell,
                            std::uint64_t n) const noexcept {
  return (1.0 - epsilon_) * base_->g(own, ones_seen, ell, n) +
         epsilon_ * flip_bias_;
}

double PerturbedProtocol::aggregate_adoption(Opinion own, double p,
                                             std::uint64_t n) const noexcept {
  return (1.0 - epsilon_) * base_->aggregate_adoption(own, p, n) +
         epsilon_ * flip_bias_;
}

std::string PerturbedProtocol::name() const {
  std::ostringstream out;
  out << base_->name() << "+noise(" << epsilon_ << ")";
  return out.str();
}

}  // namespace bitspread
