#include "protocols/perturbed.h"

#include <algorithm>
#include <sstream>

namespace bitspread {

PerturbedProtocol::PerturbedProtocol(const MemorylessProtocol& base,
                                     double epsilon, double flip_bias) noexcept
    : MemorylessProtocol(base.policy()),
      base_(&base),
      epsilon_(std::clamp(epsilon, 0.0, 1.0)),
      flip_bias_(std::clamp(flip_bias, 0.0, 1.0)) {}

double PerturbedProtocol::g(Opinion own, std::uint32_t ones_seen,
                            std::uint32_t ell,
                            std::uint64_t n) const noexcept {
  return (1.0 - epsilon_) * base_->g(own, ones_seen, ell, n) +
         epsilon_ * flip_bias_;
}

double PerturbedProtocol::aggregate_adoption(Opinion own, double p,
                                             std::uint64_t n) const noexcept {
  return (1.0 - epsilon_) * base_->aggregate_adoption(own, p, n) +
         epsilon_ * flip_bias_;
}

std::string PerturbedProtocol::name() const {
  std::ostringstream out;
  out << base_->name() << "+noise(" << epsilon_ << ")";
  return out.str();
}

}  // namespace bitspread
