#include "protocols/voter.h"

namespace bitspread {

double VoterDynamics::g(Opinion /*own*/, std::uint32_t ones_seen,
                        std::uint32_t ell,
                        std::uint64_t /*n*/) const noexcept {
  return static_cast<double>(ones_seen) / static_cast<double>(ell);
}

double VoterDynamics::aggregate_adoption(Opinion /*own*/, double p,
                                         std::uint64_t /*n*/) const noexcept {
  return p;
}

std::string VoterDynamics::name() const { return "voter"; }

}  // namespace bitspread
