// The Undecided-State Dynamics (USD), adapted to passive communication.
//
// Classic USD uses a third "undecided" state; here agents must still display
// a binary opinion (passive communication), so the undecided flag is internal
// memory (1 bit) while the displayed opinion stays what it was. Rules, with
// sample size 1 (the traditional pairwise form):
//   * committed to b, observes b      -> stays committed to b;
//   * committed to b, observes not-b  -> becomes undecided (still displays b);
//   * undecided, observes x           -> commits to x and displays x.
// Included as the canonical example of a *1-bit-memory* dynamics, outside the
// memory-less class covered by Theorem 1.
#ifndef BITSPREAD_PROTOCOLS_UNDECIDED_H_
#define BITSPREAD_PROTOCOLS_UNDECIDED_H_

#include "core/stateful.h"

namespace bitspread {

class UndecidedStateDynamics final : public StatefulProtocol {
 public:
  static constexpr std::uint32_t kCommitted = 0;
  static constexpr std::uint32_t kUndecided = 1;

  std::uint32_t state_count() const noexcept override { return 2; }
  std::uint32_t sample_size(std::uint64_t /*n*/) const noexcept override {
    return 1;
  }

  AgentView update(AgentView current, std::uint32_t ones_seen,
                   std::uint32_t ell, std::uint64_t n,
                   Rng& rng) const override;

  std::string name() const override { return "undecided-state"; }
};

}  // namespace bitspread

#endif  // BITSPREAD_PROTOCOLS_UNDECIDED_H_
