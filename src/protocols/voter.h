// The Voter dynamics (paper Protocol 1): adopt the opinion of a uniformly
// random sampled agent. In g-form: g_n^[b](k) = k / l (Eq. 1), independent of
// the own opinion, so the protocol is oblivious and the sample size is
// irrelevant (w.l.o.g. l = 1). Solves bit-dissemination in O(n log n) rounds
// w.h.p. (Theorem 2) and is subject to the almost-linear lower bound because
// its bias F_n is identically zero (§4.1).
#ifndef BITSPREAD_PROTOCOLS_VOTER_H_
#define BITSPREAD_PROTOCOLS_VOTER_H_

#include "core/protocol.h"

namespace bitspread {

class VoterDynamics final : public MemorylessProtocol {
 public:
  explicit VoterDynamics(std::uint32_t ell = 1) noexcept
      : MemorylessProtocol(SampleSizePolicy::constant(ell)) {}

  double g(Opinion own, std::uint32_t ones_seen, std::uint32_t ell,
           std::uint64_t n) const noexcept override;

  // Closed form: P_b(p) = E[K]/l = p, for both b.
  double aggregate_adoption(Opinion own, double p,
                            std::uint64_t n) const noexcept override;

  std::string name() const override;
};

}  // namespace bitspread

#endif  // BITSPREAD_PROTOCOLS_VOTER_H_
