#include "protocols/majority.h"

namespace bitspread {

double MajorityDynamics::g(Opinion own, std::uint32_t ones_seen,
                           std::uint32_t ell,
                           std::uint64_t /*n*/) const noexcept {
  if (2 * ones_seen > ell) return 1.0;
  if (2 * ones_seen < ell) return 0.0;
  switch (tie_) {
    case TieBreak::kKeepOwn:
      return own == Opinion::kOne ? 1.0 : 0.0;
    case TieBreak::kRandom:
      return 0.5;
  }
  return 0.5;  // Unreachable.
}

std::string MajorityDynamics::name() const {
  return std::string("majority(") + policy().describe() +
         (tie_ == TieBreak::kKeepOwn ? ",tie=own" : ",tie=coin") + ")";
}

}  // namespace bitspread
