#include "core/configuration.h"

#include <sstream>

namespace bitspread {

std::string Configuration::describe() const {
  std::ostringstream out;
  out << "Configuration{n=" << n << ", ones=" << ones
      << ", correct=" << to_int(correct) << ", sources=" << sources << "}";
  return out.str();
}

Configuration correct_consensus(std::uint64_t n, Opinion correct) noexcept {
  return Configuration{n, correct == Opinion::kOne ? n : 0, correct, 1};
}

}  // namespace bitspread
