// System configurations.
//
// Because agents are anonymous and memory-less, the full system state in
// round t is exactly the pair (z, X_t): the correct opinion held by the
// source, and the number of agents currently holding opinion 1 (paper §1.1).
// The struct generalizes the paper's single source to `sources` identical
// stubborn agents (0 = the traditional source-less consensus problem; > 1 =
// the multi-source regime of the majority-bit-dissemination variant, §1.3,
// with all sources agreeing).
#ifndef BITSPREAD_CORE_CONFIGURATION_H_
#define BITSPREAD_CORE_CONFIGURATION_H_

#include <cstdint>
#include <string>

#include "core/opinion.h"

namespace bitspread {

struct Configuration {
  std::uint64_t n = 0;     // Total number of agents, including sources.
  std::uint64_t ones = 0;  // Agents holding opinion 1 (sources included).
  Opinion correct = Opinion::kOne;  // z: the sources' (fixed) opinion.
  std::uint64_t sources = 1;        // Number of stubborn informed agents.

  // Sources always hold `correct`, so `ones` is constrained accordingly.
  bool valid() const noexcept {
    if (n == 0 || ones > n || sources > n) return false;
    if (correct == Opinion::kOne) return ones >= sources;
    return ones <= n - sources;
  }

  std::uint64_t zeros() const noexcept { return n - ones; }
  double fraction_ones() const noexcept {
    return static_cast<double>(ones) / static_cast<double>(n);
  }

  // Count of source agents currently counted in `ones` (all or none).
  std::uint64_t source_ones() const noexcept {
    return correct == Opinion::kOne ? sources : 0;
  }

  // Count of non-source agents holding opinion 1 (resp. 0).
  std::uint64_t non_source_ones() const noexcept {
    return ones - source_ones();
  }
  std::uint64_t non_source_zeros() const noexcept {
    return zeros() - (sources - source_ones());
  }

  bool is_consensus() const noexcept { return ones == 0 || ones == n; }

  // The unique legal final configuration: everyone holds z.
  bool is_correct_consensus() const noexcept {
    return ones == (correct == Opinion::kOne ? n : 0);
  }
  bool is_wrong_consensus() const noexcept {
    return is_consensus() && !is_correct_consensus();
  }

  std::string describe() const;

  friend bool operator==(const Configuration&, const Configuration&) = default;
};

// The configuration every protocol must reach and keep: X = n * z.
Configuration correct_consensus(std::uint64_t n, Opinion correct) noexcept;

}  // namespace bitspread

#endif  // BITSPREAD_CORE_CONFIGURATION_H_
