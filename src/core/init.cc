#include "core/init.h"

#include <algorithm>
#include <cmath>

#include "random/binomial.h"

namespace bitspread {
namespace {

// Clamps a desired ones-count so the source's fixed opinion is respected.
std::uint64_t clamp_ones(std::uint64_t n, Opinion correct,
                         std::uint64_t ones) noexcept {
  if (correct == Opinion::kOne) return std::clamp<std::uint64_t>(ones, 1, n);
  return std::min<std::uint64_t>(ones, n - 1);
}

}  // namespace

Configuration init_all_wrong(std::uint64_t n, Opinion correct) noexcept {
  return Configuration{n, correct == Opinion::kOne ? 1u : n - 1, correct};
}

Configuration init_all_correct(std::uint64_t n, Opinion correct) noexcept {
  return correct_consensus(n, correct);
}

Configuration init_fraction_ones(std::uint64_t n, Opinion correct,
                                 double fraction) noexcept {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const auto ones = static_cast<std::uint64_t>(
      std::llround(fraction * static_cast<double>(n)));
  return Configuration{n, clamp_ones(n, correct, ones), correct};
}

Configuration init_random(std::uint64_t n, Opinion correct, double bias,
                          Rng& rng) noexcept {
  const std::uint64_t non_source_ones = binomial(rng, n - 1, bias);
  const std::uint64_t ones =
      non_source_ones + (correct == Opinion::kOne ? 1 : 0);
  return Configuration{n, clamp_ones(n, correct, ones), correct};
}

Configuration init_half(std::uint64_t n, Opinion correct) noexcept {
  return init_fraction_ones(n, correct, 0.5);
}

}  // namespace bitspread
