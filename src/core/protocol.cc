#include "core/protocol.h"

#include <cmath>

namespace bitspread {

double eq4_adoption_sum(const MemorylessProtocol& protocol, Opinion own,
                        double p, std::uint64_t n) noexcept {
  const std::uint32_t ell = protocol.sample_size(n);
  if (p <= 0.0) return protocol.g(own, 0, ell, n);
  if (p >= 1.0) return protocol.g(own, ell, ell, n);

  // Walk the Binomial(l, p) pmf from its mode outward so that the weights are
  // computed with the multiplicative recurrence and never underflow where
  // they matter. For l up to a few thousand (the sqrt(n log n) regime at
  // n ~ 10^7) this is exact to double precision.
  const double nd = static_cast<double>(ell);
  const auto mode =
      static_cast<std::uint32_t>(std::min(nd, std::floor((nd + 1.0) * p)));
  const double log_mode =
      std::lgamma(nd + 1.0) - std::lgamma(static_cast<double>(mode) + 1.0) -
      std::lgamma(nd - static_cast<double>(mode) + 1.0) +
      static_cast<double>(mode) * std::log(p) +
      (nd - static_cast<double>(mode)) * std::log1p(-p);
  const double ratio = p / (1.0 - p);

  double weight = std::exp(log_mode);
  double acc = weight * protocol.g(own, mode, ell, n);
  double w = weight;
  for (std::uint32_t k = mode; k < ell; ++k) {
    w *= ratio * (nd - static_cast<double>(k)) / (static_cast<double>(k) + 1.0);
    if (w <= 0.0) break;
    acc += w * protocol.g(own, k + 1, ell, n);
  }
  w = weight;
  for (std::uint32_t k = mode; k > 0; --k) {
    w *= static_cast<double>(k) / (ratio * (nd - static_cast<double>(k) + 1.0));
    if (w <= 0.0) break;
    acc += w * protocol.g(own, k - 1, ell, n);
  }
  // g maps into [0,1] and the weights sum to <= 1, so acc is in [0,1] up to
  // round-off; clamp to keep downstream Bernoulli/binomial draws well-formed.
  return std::fmin(std::fmax(acc, 0.0), 1.0);
}

double MemorylessProtocol::aggregate_adoption(Opinion own, double p,
                                              std::uint64_t n) const noexcept {
  return eq4_adoption_sum(*this, own, p, n);
}

bool MemorylessProtocol::maintains_consensus(std::uint64_t n) const noexcept {
  const std::uint32_t ell = sample_size(n);
  return g(Opinion::kZero, 0, ell, n) == 0.0 &&
         g(Opinion::kOne, ell, ell, n) == 1.0;
}

bool MemorylessProtocol::is_oblivious(std::uint64_t n) const noexcept {
  const std::uint32_t ell = sample_size(n);
  for (std::uint32_t k = 0; k <= ell; ++k) {
    if (g(Opinion::kZero, k, ell, n) != g(Opinion::kOne, k, ell, n)) {
      return false;
    }
  }
  return true;
}

}  // namespace bitspread
