#include "core/problem.h"

#include <sstream>

namespace bitspread {

std::vector<std::string> proposition3_violations(
    const MemorylessProtocol& protocol, std::uint64_t n) {
  std::vector<std::string> violations;
  const std::uint32_t ell = protocol.sample_size(n);
  const double g00 = protocol.g(Opinion::kZero, 0, ell, n);
  const double g1l = protocol.g(Opinion::kOne, ell, ell, n);
  if (g00 != 0.0) {
    std::ostringstream out;
    out << "g_n^[0](0) = " << g00
        << " != 0: an all-zeros consensus would not be maintained";
    violations.push_back(out.str());
  }
  if (g1l != 1.0) {
    std::ostringstream out;
    out << "g_n^[1](l) = " << g1l
        << " != 1: an all-ones consensus would not be maintained";
    violations.push_back(out.str());
  }
  return violations;
}

bool is_absorbing(const MemorylessProtocol& protocol, const Configuration& c) {
  if (!c.is_consensus()) return false;
  const std::uint32_t ell = protocol.sample_size(c.n);
  if (c.ones == 0) return protocol.g(Opinion::kZero, 0, ell, c.n) == 0.0;
  return protocol.g(Opinion::kOne, ell, ell, c.n) == 1.0;
}

double exact_next_mean(const MemorylessProtocol& protocol,
                       const Configuration& c) {
  const double p = c.fraction_ones();
  const double p1 = protocol.aggregate_adoption(Opinion::kOne, p, c.n);
  const double p0 = protocol.aggregate_adoption(Opinion::kZero, p, c.n);
  return static_cast<double>(c.source_ones()) +
         static_cast<double>(c.non_source_ones()) * p1 +
         static_cast<double>(c.non_source_zeros()) * p0;
}

double exact_one_round_drift(const MemorylessProtocol& protocol,
                             const Configuration& c) {
  return exact_next_mean(protocol, c) - static_cast<double>(c.ones);
}

double exact_one_round_variance(const MemorylessProtocol& protocol,
                                const Configuration& c) {
  const double p = c.fraction_ones();
  const double p1 = protocol.aggregate_adoption(Opinion::kOne, p, c.n);
  const double p0 = protocol.aggregate_adoption(Opinion::kZero, p, c.n);
  return static_cast<double>(c.non_source_ones()) * p1 * (1.0 - p1) +
         static_cast<double>(c.non_source_zeros()) * p0 * (1.0 - p0);
}

}  // namespace bitspread
