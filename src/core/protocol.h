// The memory-less protocol abstraction (paper §1.1).
//
// A protocol is the family of functions g_n^[b] : {0,...,l} -> [0,1]:
// g_n^[b](k) is the probability that an agent currently holding opinion b,
// which observed k ones among its l uniform-with-replacement samples, adopts
// opinion 1 in the next round. This is the *entire* behavioral freedom the
// model allows: no identifiers, no clocks, no memory beyond the own opinion.
#ifndef BITSPREAD_CORE_PROTOCOL_H_
#define BITSPREAD_CORE_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "core/opinion.h"
#include "core/sample_size.h"

namespace bitspread {

class MemorylessProtocol {
 public:
  explicit MemorylessProtocol(SampleSizePolicy policy) noexcept
      : policy_(policy) {}
  virtual ~MemorylessProtocol() = default;

  MemorylessProtocol(const MemorylessProtocol&) = default;
  MemorylessProtocol& operator=(const MemorylessProtocol&) = delete;

  // g_n^[own](ones_seen), with sample size l = sample_size(n).
  // Must return a value in [0, 1]; ones_seen <= l.
  virtual double g(Opinion own, std::uint32_t ones_seen, std::uint32_t ell,
                   std::uint64_t n) const noexcept = 0;

  virtual std::string name() const = 0;

  // Probability P_b(p) that an agent with opinion b adopts opinion 1 when the
  // current fraction of ones is p (Eq. 4):
  //   P_b(p) = sum_k C(l,k) p^k (1-p)^{l-k} g_n^[b](k).
  // The default evaluates the sum with a stable O(l) recurrence; protocols
  // with closed forms (e.g. Voter: P_b(p) = p) override it. This is the inner
  // loop of the aggregate engine and of the bias function F_n.
  virtual double aggregate_adoption(Opinion own, double p,
                                    std::uint64_t n) const noexcept;

  std::uint32_t sample_size(std::uint64_t n) const noexcept {
    return policy_.sample_size(n);
  }
  const SampleSizePolicy& policy() const noexcept { return policy_; }

  // Proposition 3: a protocol can only solve bit-dissemination if
  // g_n^[0](0) = 0 and g_n^[1](l) = 1 (consensus must be maintained).
  bool maintains_consensus(std::uint64_t n) const noexcept;

  // True if g does not depend on the agent's own opinion
  // (g_n^[0] == g_n^[1]), like Voter and Minority.
  bool is_oblivious(std::uint64_t n) const noexcept;

 private:
  SampleSizePolicy policy_;
};

// Reference implementation of the Eq. 4 sum, shared by the default
// aggregate_adoption and by tests that pit closed forms against it.
double eq4_adoption_sum(const MemorylessProtocol& protocol, Opinion own,
                        double p, std::uint64_t n) noexcept;

}  // namespace bitspread

#endif  // BITSPREAD_CORE_PROTOCOL_H_
