// Stateful (bounded-memory) protocols.
//
// The paper's Discussion (§5) asks whether the lower bound extends to
// protocols with a constant amount of memory; the protocol of Korman & Vacus
// (PODC 2022) solves the problem with Theta(log log n) bits. To let the
// library explore that territory, a StatefulProtocol carries a small integer
// state across rounds in addition to the displayed opinion. Communication
// remains passive: an agent still observes only the *opinions* in its sample,
// never the states.
#ifndef BITSPREAD_CORE_STATEFUL_H_
#define BITSPREAD_CORE_STATEFUL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/opinion.h"
#include "core/protocol.h"
#include "random/rng.h"

namespace bitspread {

class StatefulProtocol {
 public:
  virtual ~StatefulProtocol() = default;

  // An agent's full internal condition: what it shows, plus what it remembers.
  struct AgentView {
    Opinion opinion = Opinion::kZero;
    std::uint32_t state = 0;
  };

  // Number of distinct memory states (memory = ceil(log2(state_count)) bits).
  virtual std::uint32_t state_count() const noexcept = 0;

  virtual std::uint32_t sample_size(std::uint64_t n) const noexcept = 0;

  // One activation: the agent holding `current` observed `ones_seen` ones in
  // its l samples; returns its next view. May randomize through `rng`.
  virtual AgentView update(AgentView current, std::uint32_t ones_seen,
                           std::uint32_t ell, std::uint64_t n,
                           Rng& rng) const = 0;

  // View assigned at (adversarial) initialization; self-stabilization demands
  // convergence from *any* state, so engines also allow arbitrary states.
  virtual AgentView initial_view(Opinion opinion) const noexcept {
    return AgentView{opinion, 0};
  }

  virtual std::string name() const = 0;
};

// Adapts a MemorylessProtocol to the stateful interface (one state). Lets the
// agent-level engine run both kinds through a single code path.
class MemorylessAsStateful final : public StatefulProtocol {
 public:
  explicit MemorylessAsStateful(const MemorylessProtocol& protocol) noexcept
      : protocol_(&protocol) {}

  std::uint32_t state_count() const noexcept override { return 1; }
  std::uint32_t sample_size(std::uint64_t n) const noexcept override {
    return protocol_->sample_size(n);
  }
  AgentView update(AgentView current, std::uint32_t ones_seen,
                   std::uint32_t ell, std::uint64_t n,
                   Rng& rng) const override {
    const double p = protocol_->g(current.opinion, ones_seen, ell, n);
    return AgentView{rng.bernoulli(p) ? Opinion::kOne : Opinion::kZero, 0};
  }
  std::string name() const override { return protocol_->name(); }

  // The wrapped protocol; lets engines recover the memory-less fast path
  // (per-round g-tables) when handed the adapter.
  const MemorylessProtocol& base() const noexcept { return *protocol_; }

 private:
  const MemorylessProtocol* protocol_;
};

}  // namespace bitspread

#endif  // BITSPREAD_CORE_STATEFUL_H_
