// Binary opinions, the atoms of the bit-dissemination problem.
#ifndef BITSPREAD_CORE_OPINION_H_
#define BITSPREAD_CORE_OPINION_H_

#include <cstdint>

namespace bitspread {

// An agent's externally visible opinion. Agents can communicate nothing else
// (passive communication, following Korman & Vacus 2022).
enum class Opinion : std::uint8_t { kZero = 0, kOne = 1 };

constexpr Opinion opposite(Opinion o) noexcept {
  return o == Opinion::kOne ? Opinion::kZero : Opinion::kOne;
}

constexpr int to_int(Opinion o) noexcept { return static_cast<int>(o); }

constexpr Opinion opinion_from(int bit) noexcept {
  return bit != 0 ? Opinion::kOne : Opinion::kZero;
}

}  // namespace bitspread

#endif  // BITSPREAD_CORE_OPINION_H_
