#include "core/stateful.h"

// StatefulProtocol is an interface; concrete dynamics live in protocols/.
// This translation unit anchors the vtable.

namespace bitspread {}  // namespace bitspread
