// Initial-configuration generators.
//
// Self-stabilization means the adversary chooses both the correct opinion z
// and the initial opinion vector. These helpers build the configurations used
// by the paper's arguments (e.g. X_0 = (a2+a3)/2 * n in Theorem 6) and the
// standard stress inits (all-wrong, balanced, random).
#ifndef BITSPREAD_CORE_INIT_H_
#define BITSPREAD_CORE_INIT_H_

#include <cstdint>

#include "core/configuration.h"
#include "random/rng.h"

namespace bitspread {

// All non-source agents initially hold the WRONG opinion (hardest natural
// start for dissemination).
Configuration init_all_wrong(std::uint64_t n, Opinion correct) noexcept;

// All agents already hold the correct opinion (tests consensus maintenance).
Configuration init_all_correct(std::uint64_t n, Opinion correct) noexcept;

// The fraction of ones is (approximately) `fraction`, rounded and clamped to
// respect the source's opinion.
Configuration init_fraction_ones(std::uint64_t n, Opinion correct,
                                 double fraction) noexcept;

// Each non-source agent holds 1 independently with probability `bias`.
Configuration init_random(std::uint64_t n, Opinion correct, double bias,
                          Rng& rng) noexcept;

// Balanced start: half ones, half zeros.
Configuration init_half(std::uint64_t n, Opinion correct) noexcept;

}  // namespace bitspread

#endif  // BITSPREAD_CORE_INIT_H_
