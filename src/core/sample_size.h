// Sample-size policies: how the per-round sample size l depends on n.
//
// The paper's lower bound (Theorem 1) concerns constant l; the upper bound of
// Becchetti et al. (SODA 2024) requires l = Omega(sqrt(n log n)); the
// memory-assisted protocol of Korman & Vacus needs l = Theta(log n). Policies
// make these regimes first-class values that protocols and sweeps share.
#ifndef BITSPREAD_CORE_SAMPLE_SIZE_H_
#define BITSPREAD_CORE_SAMPLE_SIZE_H_

#include <cstdint>
#include <string>

namespace bitspread {

class SampleSizePolicy {
 public:
  // l(n) = ell.
  static SampleSizePolicy constant(std::uint32_t ell) noexcept;
  // l(n) = max(1, ceil(scale * sqrt(n * ln n))).
  static SampleSizePolicy sqrt_n_log_n(double scale = 1.0) noexcept;
  // l(n) = max(1, ceil(scale * ln n)).
  static SampleSizePolicy log_n(double scale = 1.0) noexcept;
  // l(n) = max(1, ceil(scale * n^exponent)).
  static SampleSizePolicy power(double exponent, double scale = 1.0) noexcept;

  std::uint32_t sample_size(std::uint64_t n) const noexcept;

  // True if l(n) does not depend on n (the Theorem 1 regime).
  bool is_constant() const noexcept { return kind_ == Kind::kConstant; }

  std::string describe() const;

  friend bool operator==(const SampleSizePolicy&,
                         const SampleSizePolicy&) = default;

 private:
  enum class Kind { kConstant, kSqrtNLogN, kLogN, kPower };

  SampleSizePolicy(Kind kind, std::uint32_t ell, double exponent,
                   double scale) noexcept
      : kind_(kind), ell_(ell), exponent_(exponent), scale_(scale) {}

  Kind kind_;
  std::uint32_t ell_;
  double exponent_;
  double scale_;
};

}  // namespace bitspread

#endif  // BITSPREAD_CORE_SAMPLE_SIZE_H_
