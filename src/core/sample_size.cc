#include "core/sample_size.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace bitspread {

SampleSizePolicy SampleSizePolicy::constant(std::uint32_t ell) noexcept {
  return SampleSizePolicy(Kind::kConstant, std::max<std::uint32_t>(ell, 1), 0.0,
                          0.0);
}

SampleSizePolicy SampleSizePolicy::sqrt_n_log_n(double scale) noexcept {
  return SampleSizePolicy(Kind::kSqrtNLogN, 0, 0.0, scale);
}

SampleSizePolicy SampleSizePolicy::log_n(double scale) noexcept {
  return SampleSizePolicy(Kind::kLogN, 0, 0.0, scale);
}

SampleSizePolicy SampleSizePolicy::power(double exponent,
                                         double scale) noexcept {
  return SampleSizePolicy(Kind::kPower, 0, exponent, scale);
}

std::uint32_t SampleSizePolicy::sample_size(std::uint64_t n) const noexcept {
  const double nd = std::max<double>(static_cast<double>(n), 2.0);
  double value = 1.0;
  switch (kind_) {
    case Kind::kConstant:
      return ell_;
    case Kind::kSqrtNLogN:
      value = scale_ * std::sqrt(nd * std::log(nd));
      break;
    case Kind::kLogN:
      value = scale_ * std::log(nd);
      break;
    case Kind::kPower:
      value = scale_ * std::pow(nd, exponent_);
      break;
  }
  return static_cast<std::uint32_t>(std::max(1.0, std::ceil(value)));
}

std::string SampleSizePolicy::describe() const {
  std::ostringstream out;
  switch (kind_) {
    case Kind::kConstant:
      out << "l=" << ell_;
      break;
    case Kind::kSqrtNLogN:
      out << "l=" << scale_ << "*sqrt(n ln n)";
      break;
    case Kind::kLogN:
      out << "l=" << scale_ << "*ln n";
      break;
    case Kind::kPower:
      out << "l=" << scale_ << "*n^" << exponent_;
      break;
  }
  return out.str();
}

}  // namespace bitspread
