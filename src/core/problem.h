// The self-stabilizing bit-dissemination problem (paper §1.1).
//
// A group of n agents holds binary opinions; agent 1 (the source) knows the
// correct opinion z and never changes it. A protocol solves the problem in
// time T(n) if, from EVERY initial configuration (adversarial, including the
// choice of z), all agents hold z within T(n) parallel rounds w.h.p. and keep
// it forever. This header collects problem-level predicates used throughout
// the library.
#ifndef BITSPREAD_CORE_PROBLEM_H_
#define BITSPREAD_CORE_PROBLEM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/configuration.h"
#include "core/protocol.h"

namespace bitspread {

// Proposition 3: necessary conditions for solvability. Returns a list of
// human-readable violations (empty means compliant).
std::vector<std::string> proposition3_violations(
    const MemorylessProtocol& protocol, std::uint64_t n);

// Whether configuration `c` is absorbing under `protocol`: once reached, the
// system stays there surely. Only full consensus states compatible with the
// source can be absorbing, and only if the protocol maintains consensus.
bool is_absorbing(const MemorylessProtocol& protocol, const Configuration& c);

// The expected one-round drift of X_t from configuration `c`:
// E[X_{t+1} | X_t] - X_t, computed exactly from Eq. 4 (cf. Proposition 5's
// z-dependent correction term, which this includes exactly).
double exact_one_round_drift(const MemorylessProtocol& protocol,
                             const Configuration& c);

// E[X_{t+1} | X_t = c.ones], exact.
double exact_next_mean(const MemorylessProtocol& protocol,
                       const Configuration& c);

// Var[X_{t+1} | X_t = c.ones], exact: X' is a sum of independent Bernoulli
// variables, so the variance is #ns-ones * P1(1-P1) + #ns-zeros * P0(1-P0).
// Drives diffusive crossing-time predictions (zero-bias protocols cross a
// width-w*n interval in ~ (w*n)^2 / Var rounds).
double exact_one_round_variance(const MemorylessProtocol& protocol,
                                const Configuration& c);

}  // namespace bitspread

#endif  // BITSPREAD_CORE_PROBLEM_H_
