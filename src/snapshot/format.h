// The on-disk snapshot container: a self-describing, checksummed section file.
//
// A snapshot is a small header followed by tagged sections:
//
//   [magic "BSNP" | format u32 | section count u32 | header CRC32C]
//   per section: [tag u32 | payload bytes u64 | section CRC32C | payload]
//   (the section CRC covers tag + length + payload, so no field is naked)
//
// Everything is little-endian and byte-exact: the same logical state always
// produces the same file, so snapshot files can themselves be diffed and
// digested. Integrity is enforced on BOTH ends: the writer computes a
// CRC32C (Castagnoli) over every section payload, and the reader refuses to
// surface a section whose length or checksum does not match — a truncated
// tail, a bit flip, or a short read is detected, never silently loaded.
//
// Durability is the writer's other job: write_atomic() writes to a sibling
// temp file, fsync()s the data, rename()s into place, and fsync()s the
// containing directory, so a crash mid-write can only ever leave the
// previous snapshot (or a stray temp file), never a half-written current
// one. The ring policy above this layer (snapshot/checkpoint.h) retains the
// last R snapshots, so even a latent corruption has a fallback.
#ifndef BITSPREAD_SNAPSHOT_FORMAT_H_
#define BITSPREAD_SNAPSHOT_FORMAT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bitspread {
namespace snapshot {

// CRC32C (Castagnoli, reflected polynomial 0x82F63B78) over `size` bytes.
// Software byte-table implementation: portability over peak speed — snapshot
// payloads are MBs at most and write cadence is every K rounds.
std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0) noexcept;

// Current container format. Bump on any layout change; readers reject files
// whose version they do not understand instead of misparsing them.
inline constexpr std::uint32_t kFormatVersion = 1;

// Section tags are four ASCII bytes packed little-endian ("META" etc.).
constexpr std::uint32_t section_tag(const char (&name)[5]) noexcept {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(name[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(name[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(name[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(name[3])) << 24;
}

std::string tag_name(std::uint32_t tag);

// Append-only little-endian encoder for section payloads.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);  // IEEE-754 bit pattern via u64.
  void str(std::string_view s);                   // u64 length + bytes
  void u64_span(const std::uint64_t* data, std::size_t count);
  void u32_span(const std::uint32_t* data, std::size_t count);

  const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }
  std::vector<std::uint8_t> take() noexcept { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

// Bounds-checked little-endian decoder. Every read reports failure instead
// of walking off the payload: ok() latches false on the first short read,
// and callers check once at the end (reads after a failure return zeros).
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size) noexcept
      : data_(data), size_(size) {}

  std::uint8_t u8() noexcept;
  std::uint32_t u32() noexcept;
  std::uint64_t u64() noexcept;
  double f64() noexcept;
  std::string str();
  bool u64_into(std::vector<std::uint64_t>& out, std::uint64_t count);
  bool u32_into(std::vector<std::uint32_t>& out, std::uint64_t count);

  bool ok() const noexcept { return ok_; }
  // True when the payload was consumed exactly (no trailing garbage).
  bool exhausted() const noexcept { return ok_ && position_ == size_; }
  std::size_t remaining() const noexcept { return size_ - position_; }

 private:
  bool take(std::size_t count) noexcept;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t position_ = 0;
  bool ok_ = true;
};

// One tagged, checksummed section.
struct Section {
  std::uint32_t tag = 0;
  std::vector<std::uint8_t> payload;
};

// The section container. Writing: add() sections, then write_atomic().
// Reading: load() verifies the header and every CRC before returning.
class SnapshotFile {
 public:
  void add(std::uint32_t tag, std::vector<std::uint8_t> payload);
  const Section* find(std::uint32_t tag) const noexcept;
  const std::vector<Section>& sections() const noexcept { return sections_; }

  // Serializes header + sections into one byte buffer (pure; no I/O).
  std::vector<std::uint8_t> serialize() const;

  // Crash-safe write: <path>.tmp + fsync + rename(<path>) + directory fsync.
  // On failure `error` (if non-null) holds a one-line diagnostic.
  bool write_atomic(const std::string& path, std::string* error = nullptr) const;

  // Parses and verifies `bytes`; nullopt + diagnostic on any mismatch
  // (bad magic, unknown version, truncation, CRC failure, duplicate tag).
  static std::optional<SnapshotFile> parse(const std::uint8_t* data,
                                           std::size_t size,
                                           std::string* error = nullptr);
  // Reads the file and parses it. A missing file is a (diagnosed) failure.
  static std::optional<SnapshotFile> load(const std::string& path,
                                          std::string* error = nullptr);

 private:
  std::vector<Section> sections_;
};

}  // namespace snapshot
}  // namespace bitspread

#endif  // BITSPREAD_SNAPSHOT_FORMAT_H_
