// The logical run snapshot: everything a RunDriver needs to resume a run
// deterministically, independent of the on-disk container (snapshot/format.h).
//
// What has to be captured for provably deterministic resume, per layer:
//
//   * Driver: elapsed ticks and the driver-visible Configuration. The stop
//     rule, time policy, and trajectory stride are INPUTS (the caller passes
//     the same ones on resume, exactly as it passes the same seed); the
//     snapshot stores what evolved, not what was given.
//   * Stepper: its RNG stream cursors and its population state. The sharded
//     engine (and the bitslice kernel backends) derive every stream from
//     (seed, round, block, phase) — their only cursor IS the round, so the
//     StepperState carries a seed check instead of generator states; the
//     single-threaded engines carry one persistent xoshiro256** whose
//     256-bit state is serialized verbatim.
//   * FaultSession: the flip-schedule position, the counts-level churn
//     tally, and every RecoverySegment (including the open one) — resuming
//     mid-recovery must classify degradation identically.
//   * Trajectory: the points recorded so far, so the resumed run's
//     trajectory equals the uninterrupted run's.
//   * Telemetry: RoundStream offsets (rounds seen / lines written), so a
//     resumed stream appends instead of truncating. Measurement-only: never
//     part of the payload digest.
//
// Engine coverage note: steppers opt in by providing kSnapshotTag /
// capture() / restore() (see engine/run_loop.h); the aggregate, sharded
// (legacy and kernel paths), sequential, and per-agent engines do. Steppers
// without the hooks simply run un-checkpointed.
#ifndef BITSPREAD_SNAPSHOT_STATE_H_
#define BITSPREAD_SNAPSHOT_STATE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/configuration.h"
#include "engine/stopping.h"
#include "engine/trajectory.h"
#include "snapshot/format.h"

namespace bitspread {
namespace snapshot {

// Engine-side state captured/restored by a stepper's snapshot hooks. One
// struct serves every engine: unused fields stay empty and cost nothing.
struct StepperState {
  // Master-seed fingerprint for engines whose streams are derived (sharded,
  // kernel): resuming under a different seed would silently diverge, so
  // restore() refuses on mismatch. Engines with serialized generators leave
  // it zero.
  std::uint64_t seed_check = 0;
  // Persistent generator cursors, in engine-defined order (256-bit
  // xoshiro256** states).
  std::vector<std::array<std::uint64_t, 4>> rng;
  // Bit-packed displayed-opinion plane (sharded engine's current plane).
  std::vector<std::uint64_t> plane;
  // Per-agent memory states (stateful protocols; empty on memory-less paths).
  std::vector<std::uint32_t> agent_states;
  // Byte-per-agent opinions (the reference per-agent engine).
  std::vector<std::uint8_t> bytes;
  // Telemetry counters the stepper owns (measurement-only).
  std::uint64_t samples_drawn = 0;
  std::uint64_t churn_events = 0;

  friend bool operator==(const StepperState&, const StepperState&) = default;
};

// FaultSession progress (faults/session.h).
struct FaultState {
  std::uint64_t next_flip = 0;
  std::uint64_t churned = 0;
  std::vector<RecoverySegment> recoveries;

  friend bool operator==(const FaultState&, const FaultState&) = default;
};

struct RunSnapshot {
  // Identity: which engine wrote this (stepper kSnapshotTag) and the
  // ordinal of the run within its process (0 for single-run binaries);
  // resume only engages when both match.
  std::string engine_tag;
  std::uint64_t run_ordinal = 0;
  // Monotone write sequence within the ring (newest-entry selection).
  std::uint64_t sequence = 0;
  // Library build stamp of the writer (diagnostic only; resume does not
  // require an identical build — determinism is pinned by tests instead).
  std::string build_stamp;

  // Driver state.
  std::uint64_t tick = 0;
  Configuration config;

  // Engine state.
  StepperState stepper;

  // FaultSession state (meaningful only when has_faults).
  bool has_faults = false;
  FaultState faults;

  // Trajectory points recorded so far (when has_trajectory).
  bool has_trajectory = false;
  std::vector<Trajectory::Point> trajectory;

  // RoundStream offsets at capture time (0s when no stream was installed).
  std::uint64_t stream_rounds_seen = 0;
  std::uint64_t stream_lines = 0;

  // Round the snapshot was taken at (ticks / ticks_per_round).
  std::uint64_t round = 0;

  // Encodes into the section container / decodes and validates. decode()
  // returns false with a diagnostic on a missing section, a malformed
  // payload, or an internally inconsistent state.
  SnapshotFile encode() const;
  static bool decode(const SnapshotFile& file, RunSnapshot& out,
                     std::string* error = nullptr);
};

// The library build stamp embedded in snapshot headers ("compiler/arch").
std::string build_stamp();

// FNV-1a digest over the SEMANTIC payload of a run (reason, ticks, final
// configuration, recovery segments) — the equality the crash harness and
// the snapshot tests assert between interrupted-and-resumed and
// uninterrupted runs. Deliberately excludes the RunTelemetry sidecar.
std::uint64_t payload_digest(const RunResult& result) noexcept;

}  // namespace snapshot
}  // namespace bitspread

#endif  // BITSPREAD_SNAPSHOT_STATE_H_
