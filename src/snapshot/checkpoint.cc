#include "snapshot/checkpoint.h"

#include <signal.h>

#include <iostream>

namespace bitspread {
namespace snapshot {
namespace {

std::atomic<Checkpointer*> g_checkpointer{nullptr};
std::atomic<bool> g_interrupt{false};
// sig_atomic_t is the only type the standard guarantees for handlers, but
// the flag is also read by worker threads, so it is an atomic<bool> and the
// handler only ever stores (async-signal-safe for lock-free atomics).
std::atomic<bool> g_handlers_installed{false};

extern "C" void interrupt_handler(int signum) {
  g_interrupt.store(true, std::memory_order_relaxed);
  // One graceful chance: the next signal of the same kind kills as usual.
  struct sigaction action {};
  action.sa_handler = SIG_DFL;
  sigaction(signum, &action, nullptr);
}

}  // namespace

Checkpointer::Checkpointer(CheckpointOptions options)
    : options_(std::move(options)) {
  if (options_.ring == 0) options_.ring = 1;
}

std::string Checkpointer::ring_entry_path(std::uint32_t slot) const {
  return options_.path + "." + std::to_string(slot) + ".snap";
}

void Checkpointer::set_error(std::string message) {
  const std::lock_guard<std::mutex> lock(mutex_);
  error_ = std::move(message);
}

std::string Checkpointer::last_error() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return error_;
}

bool Checkpointer::load_resume(const std::string& source) {
  const auto try_load = [](const std::string& path, RunSnapshot& out,
                           std::string* error) {
    const auto file = SnapshotFile::load(path, error);
    if (!file) return false;
    std::string decode_error;
    if (!RunSnapshot::decode(*file, out, &decode_error)) {
      if (error != nullptr) *error = path + ": " + decode_error;
      return false;
    }
    return true;
  };

  if (source != "auto") {
    RunSnapshot snap;
    std::string error;
    if (!try_load(source, snap, &error)) {
      set_error(error);
      std::cerr << "[resume failed: " << error << "]\n";
      return false;
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    resume_ = std::move(snap);
    resume_consumed_ = false;
    sequence_ = resume_->sequence + 1;
    return true;
  }

  // Auto: scan the ring, keep every entry that verifies, pick the highest
  // write sequence. Corrupt entries are diagnosed and skipped — that IS the
  // fallback-to-previous-ring-entry semantics, since slots hold consecutive
  // sequences.
  std::optional<RunSnapshot> best;
  bool saw_corrupt = false;
  for (std::uint32_t slot = 0; slot < options_.ring; ++slot) {
    const std::string path = ring_entry_path(slot);
    RunSnapshot snap;
    std::string error;
    if (!try_load(path, snap, &error)) {
      // A missing slot is normal (ring not full yet); anything else means
      // a corrupt or truncated entry worth shouting about.
      if (error.find("cannot open") == std::string::npos) {
        std::cerr << "[corrupt snapshot skipped: " << error
                  << "; falling back to previous ring entry]\n";
        saw_corrupt = true;
      }
      continue;
    }
    if (!best || snap.sequence > best->sequence) best = std::move(snap);
  }
  if (!best) {
    set_error(saw_corrupt
                  ? "every ring entry under " + options_.path +
                        " is corrupt or truncated"
                  : "no snapshot found under " + options_.path);
    return false;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  resume_ = std::move(*best);
  resume_consumed_ = false;
  sequence_ = resume_->sequence + 1;
  return true;
}

bool Checkpointer::has_resume() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return resume_.has_value() && !resume_consumed_;
}

const RunSnapshot* Checkpointer::pending_resume() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return resume_.has_value() && !resume_consumed_ ? &*resume_ : nullptr;
}

const RunSnapshot* Checkpointer::take_resume(std::uint64_t ordinal,
                                             std::string_view tag) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!resume_.has_value() || resume_consumed_) return nullptr;
  if (resume_->run_ordinal != ordinal) return nullptr;
  if (resume_->engine_tag != tag) {
    std::cerr << "[resume skipped: snapshot was written by engine '"
              << resume_->engine_tag << "', this run is '" << tag << "']\n";
    return nullptr;
  }
  resume_consumed_ = true;
  resumed_.fetch_add(1);
  std::cerr << "[resuming from round " << resume_->round << " (snapshot seq "
            << resume_->sequence << ")]\n";
  return &*resume_;
}

bool Checkpointer::write(RunSnapshot snap) {
  const std::lock_guard<std::mutex> lock(mutex_);
  snap.sequence = sequence_;
  snap.build_stamp = snapshot::build_stamp();
  if (decorator_) decorator_(snap);
  const std::string path =
      ring_entry_path(static_cast<std::uint32_t>(sequence_ % options_.ring));
  std::string error;
  if (!snap.encode().write_atomic(path, &error)) {
    error_ = error;
    std::cerr << "[checkpoint write failed: " << error << "]\n";
    return false;
  }
  ++sequence_;
  written_.fetch_add(1);
  return true;
}

void install_checkpointer(Checkpointer* checkpointer) noexcept {
  g_checkpointer.store(checkpointer, std::memory_order_release);
}

Checkpointer* active_checkpointer() noexcept {
  return g_checkpointer.load(std::memory_order_acquire);
}

void request_interrupt() noexcept {
  g_interrupt.store(true, std::memory_order_relaxed);
}

bool interrupt_requested() noexcept {
  return g_interrupt.load(std::memory_order_relaxed);
}

void clear_interrupt() noexcept {
  g_interrupt.store(false, std::memory_order_relaxed);
}

bool install_interrupt_handlers() noexcept {
  if (g_handlers_installed.exchange(true)) return true;
  struct sigaction action {};
  action.sa_handler = &interrupt_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // No SA_RESTART: interrupt blocking I/O too.
  const bool ok = sigaction(SIGINT, &action, nullptr) == 0 &&
                  sigaction(SIGTERM, &action, nullptr) == 0;
  if (!ok) g_handlers_installed.store(false);
  return ok;
}

}  // namespace snapshot
}  // namespace bitspread
