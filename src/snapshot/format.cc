#include "snapshot/format.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace bitspread {
namespace snapshot {
namespace {

constexpr std::uint32_t kMagic = section_tag("BSNP");

std::array<std::uint32_t, 256> make_crc32c_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) != 0 ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

std::string errno_message() {
  return std::strerror(errno) != nullptr ? std::strerror(errno) : "I/O error";
}

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

// fsync the directory containing `path` so the rename itself is durable.
bool fsync_parent(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t seed) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc32c_table();
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xFF];
  }
  return ~crc;
}

std::string tag_name(std::uint32_t tag) {
  std::string name;
  for (int byte = 0; byte < 4; ++byte) {
    const char c = static_cast<char>((tag >> (8 * byte)) & 0xFF);
    name.push_back(c >= 0x20 && c < 0x7F ? c : '?');
  }
  return name;
}

void ByteWriter::u32(std::uint32_t v) {
  for (int byte = 0; byte < 4; ++byte) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * byte)));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * byte)));
  }
}

void ByteWriter::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::str(std::string_view s) {
  u64(s.size());
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void ByteWriter::u64_span(const std::uint64_t* data, std::size_t count) {
  u64(count);
  for (std::size_t i = 0; i < count; ++i) u64(data[i]);
}

void ByteWriter::u32_span(const std::uint32_t* data, std::size_t count) {
  u64(count);
  for (std::size_t i = 0; i < count; ++i) u32(data[i]);
}

bool ByteReader::take(std::size_t count) noexcept {
  if (!ok_ || size_ - position_ < count) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::u8() noexcept {
  if (!take(1)) return 0;
  return data_[position_++];
}

std::uint32_t ByteReader::u32() noexcept {
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int byte = 0; byte < 4; ++byte) {
    v |= static_cast<std::uint32_t>(data_[position_++]) << (8 * byte);
  }
  return v;
}

std::uint64_t ByteReader::u64() noexcept {
  if (!take(8)) return 0;
  std::uint64_t v = 0;
  for (int byte = 0; byte < 8; ++byte) {
    v |= static_cast<std::uint64_t>(data_[position_++]) << (8 * byte);
  }
  return v;
}

double ByteReader::f64() noexcept {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ByteReader::str() {
  const std::uint64_t length = u64();
  if (!take(static_cast<std::size_t>(length))) return {};
  std::string s(reinterpret_cast<const char*>(data_ + position_),
                static_cast<std::size_t>(length));
  position_ += static_cast<std::size_t>(length);
  return s;
}

bool ByteReader::u64_into(std::vector<std::uint64_t>& out,
                          std::uint64_t count) {
  // Divide instead of multiplying: a corrupt count cannot overflow the
  // bounds check into a huge allocation.
  if (count > remaining() / 8) {
    ok_ = false;
    return false;
  }
  if (!take(static_cast<std::size_t>(count) * 8)) return false;
  out.resize(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) out[i] = u64();
  return ok_;
}

bool ByteReader::u32_into(std::vector<std::uint32_t>& out,
                          std::uint64_t count) {
  if (count > remaining() / 4) {
    ok_ = false;
    return false;
  }
  if (!take(static_cast<std::size_t>(count) * 4)) return false;
  out.resize(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) out[i] = u32();
  return ok_;
}

void SnapshotFile::add(std::uint32_t tag, std::vector<std::uint8_t> payload) {
  Section section;
  section.tag = tag;
  section.payload = std::move(payload);
  sections_.push_back(std::move(section));
}

const Section* SnapshotFile::find(std::uint32_t tag) const noexcept {
  for (const Section& section : sections_) {
    if (section.tag == tag) return &section;
  }
  return nullptr;
}

std::vector<std::uint8_t> SnapshotFile::serialize() const {
  ByteWriter header;
  header.u32(kMagic);
  header.u32(kFormatVersion);
  header.u32(static_cast<std::uint32_t>(sections_.size()));
  ByteWriter out;
  out.u32(kMagic);
  out.u32(kFormatVersion);
  out.u32(static_cast<std::uint32_t>(sections_.size()));
  out.u32(crc32c(header.bytes().data(), header.bytes().size()));
  std::vector<std::uint8_t> bytes = out.take();
  for (const Section& section : sections_) {
    ByteWriter head;
    head.u32(section.tag);
    head.u64(section.payload.size());
    // The CRC covers the section HEADER too (tag + length + payload): a bit
    // flip in the tag or length must be as detectable as one in the payload.
    std::uint32_t crc = crc32c(head.bytes().data(), head.bytes().size());
    crc = crc32c(section.payload.data(), section.payload.size(), crc);
    head.u32(crc);
    bytes.insert(bytes.end(), head.bytes().begin(), head.bytes().end());
    bytes.insert(bytes.end(), section.payload.begin(), section.payload.end());
  }
  return bytes;
}

bool SnapshotFile::write_atomic(const std::string& path,
                                std::string* error) const {
  const std::vector<std::uint8_t> bytes = serialize();
  const std::string temp = path + ".tmp";
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    set_error(error, temp + ": open failed: " + errno_message());
    return false;
  }
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ::ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      set_error(error, temp + ": write failed: " + errno_message());
      ::close(fd);
      ::unlink(temp.c_str());
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    set_error(error, temp + ": fsync failed: " + errno_message());
    ::close(fd);
    ::unlink(temp.c_str());
    return false;
  }
  ::close(fd);
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    set_error(error, path + ": rename failed: " + errno_message());
    ::unlink(temp.c_str());
    return false;
  }
  // Rename durability is best-effort: the data itself is already synced,
  // and a lost rename only reverts to the previous ring entry.
  (void)fsync_parent(path);
  return true;
}

std::optional<SnapshotFile> SnapshotFile::parse(const std::uint8_t* data,
                                                std::size_t size,
                                                std::string* error) {
  ByteReader reader(data, size);
  const std::uint32_t magic = reader.u32();
  const std::uint32_t version = reader.u32();
  const std::uint32_t count = reader.u32();
  const std::uint32_t header_crc = reader.u32();
  if (!reader.ok() || magic != kMagic) {
    set_error(error, "not a bitspread snapshot (bad magic)");
    return std::nullopt;
  }
  if (version != kFormatVersion) {
    set_error(error, "unsupported snapshot format version " +
                         std::to_string(version));
    return std::nullopt;
  }
  ByteWriter header;
  header.u32(magic);
  header.u32(version);
  header.u32(count);
  if (crc32c(header.bytes().data(), header.bytes().size()) != header_crc) {
    set_error(error, "snapshot header CRC mismatch");
    return std::nullopt;
  }
  SnapshotFile file;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t tag = reader.u32();
    const std::uint64_t length = reader.u64();
    const std::uint32_t crc = reader.u32();
    if (!reader.ok() || reader.remaining() < length) {
      std::string which = reader.ok() ? tag_name(tag) : "#";
      if (!reader.ok()) which += std::to_string(i);
      set_error(error, "snapshot truncated in section " + which);
      return std::nullopt;
    }
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(length));
    for (std::uint64_t b = 0; b < length; ++b) payload[b] = reader.u8();
    ByteWriter head;
    head.u32(tag);
    head.u64(length);
    std::uint32_t expected = crc32c(head.bytes().data(), head.bytes().size());
    expected = crc32c(payload.data(), payload.size(), expected);
    if (expected != crc) {
      set_error(error,
                "section " + tag_name(tag) + " CRC mismatch (corrupt)");
      return std::nullopt;
    }
    if (file.find(tag) != nullptr) {
      set_error(error, "duplicate section " + tag_name(tag));
      return std::nullopt;
    }
    file.add(tag, std::move(payload));
  }
  if (reader.remaining() != 0) {
    set_error(error, "trailing bytes after last section");
    return std::nullopt;
  }
  return file;
}

std::optional<SnapshotFile> SnapshotFile::load(const std::string& path,
                                               std::string* error) {
  std::FILE* fh = std::fopen(path.c_str(), "rb");
  if (fh == nullptr) {
    set_error(error, path + ": cannot open: " + errno_message());
    return std::nullopt;
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buffer[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), fh)) > 0) {
    bytes.insert(bytes.end(), buffer, buffer + n);
  }
  const bool read_error = std::ferror(fh) != 0;
  std::fclose(fh);
  if (read_error) {
    set_error(error, path + ": read failed");
    return std::nullopt;
  }
  std::string parse_error;
  auto file = parse(bytes.data(), bytes.size(), &parse_error);
  if (!file) set_error(error, path + ": " + parse_error);
  return file;
}

}  // namespace snapshot
}  // namespace bitspread
