// Checkpoint policy: WHEN snapshots are taken, WHERE they live on disk, and
// HOW a crashed run finds its way back.
//
// A Checkpointer owns a retained ring of the last R snapshots of one run:
// files <base>.<slot>.snap with slot = sequence mod R, each written
// crash-safely (snapshot/format.h). Auto-resume scans the ring, picks the
// entry with the highest write sequence among those that VERIFY (header +
// per-section CRC32C), and falls back ring entry by ring entry when the
// newest is truncated or bit-flipped — with a stderr diagnostic naming the
// corrupt file, because silently losing progress is exactly what this
// subsystem exists to prevent.
//
// Installation follows the telemetry-sink idiom: install_checkpointer()
// publishes one Checkpointer process-wide and every RunDriver consults it.
// A driver whose stepper lacks the snapshot hooks simply ignores it. The
// Checkpointer never touches an RNG stream and never mutates run state, so
// (like the flight recorder) it provably cannot perturb a simulation — the
// golden payload digests pin this.
//
// Interrupt protocol (SIGINT/SIGTERM): a signal handler calls
// request_interrupt(); every RunDriver polls the flag at parallel-round
// boundaries, writes a final snapshot (when a checkpointer is installed and
// the stepper is checkpointable), and returns StopReason::kInterrupted.
// Control then unwinds normally, so FlightRecorderScope destructors flush
// the trace and JSONL tails — graceful shutdown never loses buffered
// rounds. A second signal restores the default disposition, so a wedged
// process can still be killed the usual way.
#ifndef BITSPREAD_SNAPSHOT_CHECKPOINT_H_
#define BITSPREAD_SNAPSHOT_CHECKPOINT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "snapshot/state.h"

namespace bitspread {
namespace snapshot {

struct CheckpointOptions {
  // Ring base path: entries land at <path>.<slot>.snap.
  std::string path;
  // Checkpoint every K parallel rounds (0 = only on interrupt).
  std::uint64_t every = 0;
  // Retained ring entries (clamped to >= 1).
  std::uint32_t ring = 2;
};

class Checkpointer {
 public:
  explicit Checkpointer(CheckpointOptions options);

  const CheckpointOptions& options() const noexcept { return options_; }

  // Resume side. `source` is "auto" (scan the ring, newest valid entry,
  // corrupt-entry fallback) or an explicit snapshot path (strict: a corrupt
  // file is a failure, no fallback). Returns false with last_error() set
  // when nothing valid was found. Call before the run starts.
  bool load_resume(const std::string& source);

  // True when load_resume() found a snapshot that has not been claimed yet.
  bool has_resume() const noexcept;
  // The loaded snapshot (for scope wiring, e.g. stream offsets); nullptr
  // when none.
  const RunSnapshot* pending_resume() const noexcept;

  // Driver protocol ------------------------------------------------------

  // Each starting run claims the next ordinal (0, 1, ...). Deterministic
  // for serially executed runs, which is what resume targets.
  std::uint64_t claim_run() noexcept { return runs_.fetch_add(1); }

  // The loaded snapshot, when it matches this run (ordinal + engine tag)
  // and has not been consumed; consuming is one-shot — a failed restore
  // falls back to a fresh run rather than retrying a bad snapshot.
  const RunSnapshot* take_resume(std::uint64_t ordinal, std::string_view tag);

  // True when a snapshot is due at the end of `round` (every K rounds).
  bool due(std::uint64_t round) const noexcept {
    return options_.every != 0 && round != 0 && round % options_.every == 0;
  }

  // Serializes and writes `snap` into the next ring slot (fills in the
  // write sequence and stream offsets). Thread-safe. Returns false and
  // keeps the previous ring entry intact on any I/O failure.
  bool write(RunSnapshot snap);

  // Write-time decorator: fills measurement-side fields the driver cannot
  // see (the RoundStream offsets). Set by the CLI scope before runs start;
  // invoked under the write lock.
  void set_decorator(std::function<void(RunSnapshot&)> decorator) {
    decorator_ = std::move(decorator);
  }

  // Accounting / diagnostics --------------------------------------------
  std::uint64_t written() const noexcept { return written_.load(); }
  std::uint64_t resumed_runs() const noexcept { return resumed_.load(); }
  std::string last_error() const;
  std::string ring_entry_path(std::uint32_t slot) const;

 private:
  void set_error(std::string message);

  CheckpointOptions options_;
  std::function<void(RunSnapshot&)> decorator_;
  mutable std::mutex mutex_;
  std::optional<RunSnapshot> resume_;
  bool resume_consumed_ = false;
  std::uint64_t sequence_ = 0;
  std::atomic<std::uint64_t> runs_{0};
  std::atomic<std::uint64_t> written_{0};
  std::atomic<std::uint64_t> resumed_{0};
  std::string error_;
};

// Process-wide checkpointer (nullptr = checkpointing off). Not owned;
// install for the duration of the runs it should observe, uninstall (pass
// nullptr) before destroying — the CheckpointScope in sim/cli.h does both.
void install_checkpointer(Checkpointer* checkpointer) noexcept;
Checkpointer* active_checkpointer() noexcept;

// Graceful-interrupt flag, polled by every RunDriver at round boundaries.
void request_interrupt() noexcept;
bool interrupt_requested() noexcept;
void clear_interrupt() noexcept;

// Installs SIGINT/SIGTERM handlers that request_interrupt() (first signal)
// and restore the default disposition (so a second signal kills). Idempotent;
// returns false if sigaction failed.
bool install_interrupt_handlers() noexcept;

}  // namespace snapshot
}  // namespace bitspread

#endif  // BITSPREAD_SNAPSHOT_CHECKPOINT_H_
