#include "snapshot/state.h"

namespace bitspread {
namespace snapshot {
namespace {

constexpr std::uint32_t kMetaTag = section_tag("META");
constexpr std::uint32_t kConfTag = section_tag("CONF");
constexpr std::uint32_t kStepTag = section_tag("STEP");
constexpr std::uint32_t kFaultTag = section_tag("FLTS");
constexpr std::uint32_t kTrajTag = section_tag("TRAJ");
constexpr std::uint32_t kTeleTag = section_tag("TELE");

void set_error(std::string* error, const char* message) {
  if (error != nullptr) *error = message;
}

}  // namespace

std::string build_stamp() {
  std::string stamp;
#if defined(__clang__)
  stamp = "clang-" + std::to_string(__clang_major__);
#elif defined(__GNUC__)
  stamp = "gcc-" + std::to_string(__GNUC__);
#else
  stamp = "cxx";
#endif
#if defined(__aarch64__)
  stamp += "/aarch64";
#elif defined(__x86_64__)
  stamp += "/x86_64";
#else
  stamp += "/unknown";
#endif
  return stamp;
}

SnapshotFile RunSnapshot::encode() const {
  SnapshotFile file;
  {
    ByteWriter w;
    w.str(engine_tag);
    w.u64(run_ordinal);
    w.u64(sequence);
    w.str(build_stamp);
    w.u64(tick);
    w.u64(round);
    file.add(kMetaTag, w.take());
  }
  {
    ByteWriter w;
    w.u64(config.n);
    w.u64(config.ones);
    w.u8(static_cast<std::uint8_t>(to_int(config.correct)));
    w.u64(config.sources);
    file.add(kConfTag, w.take());
  }
  {
    ByteWriter w;
    w.u64(stepper.seed_check);
    w.u64(stepper.rng.size());
    for (const auto& state : stepper.rng) {
      for (const std::uint64_t word : state) w.u64(word);
    }
    w.u64_span(stepper.plane.data(), stepper.plane.size());
    w.u32_span(stepper.agent_states.data(), stepper.agent_states.size());
    w.u64(stepper.bytes.size());
    for (const std::uint8_t b : stepper.bytes) w.u8(b);
    w.u64(stepper.samples_drawn);
    w.u64(stepper.churn_events);
    file.add(kStepTag, w.take());
  }
  if (has_faults) {
    ByteWriter w;
    w.u64(faults.next_flip);
    w.u64(faults.churned);
    w.u64(faults.recoveries.size());
    for (const RecoverySegment& segment : faults.recoveries) {
      w.u64(segment.flip_round);
      w.u64(segment.recovered_round);
      w.u8(segment.recovered ? 1 : 0);
    }
    file.add(kFaultTag, w.take());
  }
  if (has_trajectory) {
    ByteWriter w;
    w.u64(trajectory.size());
    for (const Trajectory::Point& point : trajectory) {
      w.u64(point.round);
      w.u64(point.ones);
    }
    file.add(kTrajTag, w.take());
  }
  {
    ByteWriter w;
    w.u64(stream_rounds_seen);
    w.u64(stream_lines);
    file.add(kTeleTag, w.take());
  }
  return file;
}

bool RunSnapshot::decode(const SnapshotFile& file, RunSnapshot& out,
                         std::string* error) {
  const Section* meta = file.find(kMetaTag);
  const Section* conf = file.find(kConfTag);
  const Section* step = file.find(kStepTag);
  if (meta == nullptr || conf == nullptr || step == nullptr) {
    set_error(error, "snapshot missing a required section (META/CONF/STEP)");
    return false;
  }
  {
    ByteReader r(meta->payload.data(), meta->payload.size());
    out.engine_tag = r.str();
    out.run_ordinal = r.u64();
    out.sequence = r.u64();
    out.build_stamp = r.str();
    out.tick = r.u64();
    out.round = r.u64();
    if (!r.exhausted()) {
      set_error(error, "malformed META section");
      return false;
    }
  }
  {
    ByteReader r(conf->payload.data(), conf->payload.size());
    out.config.n = r.u64();
    out.config.ones = r.u64();
    out.config.correct = r.u8() != 0 ? Opinion::kOne : Opinion::kZero;
    out.config.sources = r.u64();
    if (!r.exhausted() || !out.config.valid()) {
      set_error(error, "malformed or invalid CONF section");
      return false;
    }
  }
  {
    ByteReader r(step->payload.data(), step->payload.size());
    out.stepper.seed_check = r.u64();
    const std::uint64_t rng_count = r.u64();
    if (rng_count > (1u << 20)) {
      set_error(error, "implausible RNG cursor count");
      return false;
    }
    out.stepper.rng.resize(static_cast<std::size_t>(rng_count));
    for (auto& state : out.stepper.rng) {
      for (std::uint64_t& word : state) word = r.u64();
    }
    if (!r.u64_into(out.stepper.plane, r.u64()) ||
        !r.u32_into(out.stepper.agent_states, r.u64())) {
      set_error(error, "malformed STEP section");
      return false;
    }
    const std::uint64_t byte_count = r.u64();
    if (byte_count > r.remaining()) {
      set_error(error, "malformed STEP section");
      return false;
    }
    out.stepper.bytes.resize(static_cast<std::size_t>(byte_count));
    for (std::uint8_t& b : out.stepper.bytes) b = r.u8();
    out.stepper.samples_drawn = r.u64();
    out.stepper.churn_events = r.u64();
    if (!r.exhausted()) {
      set_error(error, "malformed STEP section");
      return false;
    }
  }
  if (const Section* flts = file.find(kFaultTag)) {
    out.has_faults = true;
    ByteReader r(flts->payload.data(), flts->payload.size());
    out.faults.next_flip = r.u64();
    out.faults.churned = r.u64();
    const std::uint64_t count = r.u64();
    if (count > r.remaining() / 17) {
      set_error(error, "malformed FLTS section");
      return false;
    }
    out.faults.recoveries.resize(static_cast<std::size_t>(count));
    for (RecoverySegment& segment : out.faults.recoveries) {
      segment.flip_round = r.u64();
      segment.recovered_round = r.u64();
      segment.recovered = r.u8() != 0;
    }
    if (!r.exhausted()) {
      set_error(error, "malformed FLTS section");
      return false;
    }
  } else {
    out.has_faults = false;
    out.faults = FaultState{};
  }
  if (const Section* traj = file.find(kTrajTag)) {
    out.has_trajectory = true;
    ByteReader r(traj->payload.data(), traj->payload.size());
    const std::uint64_t count = r.u64();
    if (count > r.remaining() / 16) {
      set_error(error, "malformed TRAJ section");
      return false;
    }
    out.trajectory.resize(static_cast<std::size_t>(count));
    for (Trajectory::Point& point : out.trajectory) {
      point.round = r.u64();
      point.ones = r.u64();
    }
    if (!r.exhausted()) {
      set_error(error, "malformed TRAJ section");
      return false;
    }
  } else {
    out.has_trajectory = false;
    out.trajectory.clear();
  }
  if (const Section* tele = file.find(kTeleTag)) {
    ByteReader r(tele->payload.data(), tele->payload.size());
    out.stream_rounds_seen = r.u64();
    out.stream_lines = r.u64();
    if (!r.exhausted()) {
      set_error(error, "malformed TELE section");
      return false;
    }
  }
  return true;
}

std::uint64_t payload_digest(const RunResult& result) noexcept {
  std::uint64_t hash = 0xCBF29CE484222325ull;
  const auto fold = [&hash](std::uint64_t v) noexcept {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (v >> (8 * byte)) & 0xFF;
      hash *= 0x100000001B3ull;
    }
  };
  fold(static_cast<std::uint64_t>(result.reason));
  fold(result.ticks);
  fold(result.final_config.n);
  fold(result.final_config.ones);
  fold(static_cast<std::uint64_t>(to_int(result.final_config.correct)));
  fold(result.final_config.sources);
  fold(result.recoveries.size());
  for (const RecoverySegment& segment : result.recoveries) {
    fold(segment.flip_round);
    fold(segment.recovered_round);
    fold(segment.recovered ? 1 : 0);
  }
  return hash;
}

}  // namespace snapshot
}  // namespace bitspread
