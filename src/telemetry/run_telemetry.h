// RunTelemetry: per-run measurement summary attached to RunResult.
//
// This struct is OUTSIDE the simulation payload: engines fill it only when
// the library is built with BITSPREAD_TELEMETRY (recorded == true), and the
// determinism/byte-identity tests deliberately exclude it when comparing
// RunResults across builds. It must never feed back into stepping logic.
#ifndef BITSPREAD_TELEMETRY_RUN_TELEMETRY_H_
#define BITSPREAD_TELEMETRY_RUN_TELEMETRY_H_

#include <cstdint>

namespace bitspread {

struct RunTelemetry {
  // False in telemetry-disabled builds: every other field is then zero.
  bool recorded = false;

  double wall_seconds = 0.0;
  std::uint64_t rounds = 0;

  // Observation samples drawn, unified across engines: parallel engines
  // count (free agents) x sample size per round; sequential engines count
  // sample size per activation. Zealots never draw.
  std::uint64_t samples_drawn = 0;

  // Fault events by channel (mirrors FaultSession accounting).
  std::uint64_t fault_flips = 0;
  std::uint64_t fault_zealots = 0;
  std::uint64_t fault_churned = 0;

  // Recovery-segment timings (closed segments only).
  std::uint64_t recovered_segments = 0;
  std::uint64_t recovery_rounds_total = 0;

  double rounds_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(rounds) / wall_seconds
                              : 0.0;
  }
};

}  // namespace bitspread

#endif  // BITSPREAD_TELEMETRY_RUN_TELEMETRY_H_
