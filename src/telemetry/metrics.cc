#include "telemetry/metrics.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <mutex>

namespace bitspread {
namespace {

// Portable fetch_add for atomic<double> (std::atomic<double>::fetch_add is
// not guaranteed lock-free everywhere; the CAS loop is, effectively).
void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

// One Core per registry, shared by the registry object, every handle, and
// every thread-local shard entry — so handles and shards stay valid in any
// destruction order (a worker thread may exit after the registry is gone).
//
// Locking protocol: all STRUCTURE mutation (defining metrics, growing a
// shard's slot deques, attaching/retiring shards) and all cross-thread READS
// (snapshot, value, reset) hold `mu`. Slot increments are owner-thread-only
// relaxed atomics on elements whose addresses a std::deque never moves, so
// the hot path takes no lock.
struct MetricsRegistryCore {
  struct HistDef {
    std::string name;
    std::vector<double> bounds;  // Strictly increasing finite upper bounds.
  };

  struct HistShard {
    std::deque<std::atomic<std::uint64_t>> buckets;  // bounds.size() + 1.
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  struct Shard {
    std::deque<std::atomic<std::uint64_t>> counters;
    std::deque<HistShard> histograms;
  };

  struct RetiredHist {
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  mutable std::mutex mu;

  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<HistDef> hist_defs;
  std::map<std::string, std::size_t> counter_index;
  std::map<std::string, std::size_t> gauge_index;
  std::map<std::string, std::size_t> hist_index;

  std::vector<double> gauge_values;  // Guarded by mu (gauges are not hot).

  std::vector<std::shared_ptr<Shard>> shards;  // Live thread shards.
  std::vector<std::uint64_t> retired_counters;
  std::vector<RetiredHist> retired_hists;

  // Grows `shard` (owner thread only; mu held) to cover all definitions.
  void size_shard(Shard& shard) {
    while (shard.counters.size() < counter_names.size()) {
      shard.counters.emplace_back(0);
    }
    while (shard.histograms.size() < hist_defs.size()) {
      HistShard& h = shard.histograms.emplace_back();
      const std::size_t buckets =
          hist_defs[shard.histograms.size() - 1].bounds.size() + 1;
      for (std::size_t b = 0; b < buckets; ++b) h.buckets.emplace_back(0);
    }
  }

  // Folds an exiting thread's shard into the retired totals.
  void retire(const std::shared_ptr<Shard>& shard) {
    std::lock_guard<std::mutex> lock(mu);
    retired_counters.resize(counter_names.size(), 0);
    retired_hists.resize(hist_defs.size());
    for (std::size_t i = 0; i < shard->counters.size(); ++i) {
      retired_counters[i] +=
          shard->counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < shard->histograms.size(); ++i) {
      RetiredHist& dst = retired_hists[i];
      const HistShard& src = shard->histograms[i];
      dst.buckets.resize(hist_defs[i].bounds.size() + 1, 0);
      for (std::size_t b = 0; b < src.buckets.size(); ++b) {
        dst.buckets[b] += src.buckets[b].load(std::memory_order_relaxed);
      }
      dst.count += src.count.load(std::memory_order_relaxed);
      dst.sum += src.sum.load(std::memory_order_relaxed);
    }
    shards.erase(std::remove(shards.begin(), shards.end(), shard),
                 shards.end());
  }
};

namespace {

using Core = MetricsRegistryCore;

// Per-thread shard directory. On thread exit, every still-live core absorbs
// the thread's totals; cores that died first are simply skipped (weak_ptr).
struct ThreadShardDirectory {
  struct Entry {
    const Core* key = nullptr;
    std::weak_ptr<Core> core;
    std::shared_ptr<Core::Shard> shard;
  };
  std::vector<Entry> entries;

  ~ThreadShardDirectory() {
    for (Entry& entry : entries) {
      if (auto core = entry.core.lock()) core->retire(entry.shard);
    }
  }
};

thread_local ThreadShardDirectory t_shard_directory;

// The calling thread's shard for `core` (created and registered on first
// use). Only the owner thread ever calls this for its own shard.
Core::Shard& local_shard(const std::shared_ptr<Core>& core) {
  for (ThreadShardDirectory::Entry& entry : t_shard_directory.entries) {
    if (entry.key == core.get()) return *entry.shard;
  }
  auto shard = std::make_shared<Core::Shard>();
  {
    std::lock_guard<std::mutex> lock(core->mu);
    core->size_shard(*shard);
    core->shards.push_back(shard);
  }
  t_shard_directory.entries.push_back(
      ThreadShardDirectory::Entry{core.get(), core, shard});
  return *t_shard_directory.entries.back().shard;
}

// Ensures slot `index` exists in the owner's shard (grows under the core
// lock when a metric was defined after the shard was created).
template <typename Container>
void ensure_slot(const std::shared_ptr<Core>& core, Core::Shard& shard,
                 const Container& slots, std::size_t index) {
  if (index < slots.size()) return;
  std::lock_guard<std::mutex> lock(core->mu);
  core->size_shard(shard);
}

std::size_t bucket_for(const std::vector<double>& bounds,
                       double value) noexcept {
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  return static_cast<std::size_t>(it - bounds.begin());
}

}  // namespace

MetricsRegistry::MetricsRegistry()
    : core_(std::make_shared<MetricsRegistryCore>()) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  // Intentionally leaked: pool worker threads may retire their shards after
  // static destructors have begun, and the weak_ptr protocol needs the
  // control block — a leak sidesteps destruction-order entirely.
  static auto* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Counter MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(core_->mu);
  auto [it, inserted] =
      core_->counter_index.try_emplace(name, core_->counter_names.size());
  if (inserted) {
    core_->counter_names.push_back(name);
    core_->retired_counters.resize(core_->counter_names.size(), 0);
  }
  return Counter(core_, it->second);
}

MetricsRegistry::Gauge MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(core_->mu);
  auto [it, inserted] =
      core_->gauge_index.try_emplace(name, core_->gauge_names.size());
  if (inserted) {
    core_->gauge_names.push_back(name);
    core_->gauge_values.resize(core_->gauge_names.size(), 0.0);
  }
  return Gauge(core_, it->second);
}

MetricsRegistry::Histogram MetricsRegistry::histogram(
    const std::string& name, std::vector<double> bounds) {
  assert(std::is_sorted(bounds.begin(), bounds.end()));
  std::lock_guard<std::mutex> lock(core_->mu);
  auto [it, inserted] =
      core_->hist_index.try_emplace(name, core_->hist_defs.size());
  if (inserted) {
    core_->hist_defs.push_back(
        MetricsRegistryCore::HistDef{name, std::move(bounds)});
    core_->retired_hists.resize(core_->hist_defs.size());
    core_->retired_hists.back().buckets.resize(
        core_->hist_defs.back().bounds.size() + 1, 0);
  }
  return Histogram(core_, it->second);
}

void MetricsRegistry::Counter::increment(std::uint64_t delta) const {
  if (core_ == nullptr) return;
  Core::Shard& shard = local_shard(core_);
  ensure_slot(core_, shard, shard.counters, index_);
  shard.counters[index_].fetch_add(delta, std::memory_order_relaxed);
}

std::uint64_t MetricsRegistry::Counter::value() const {
  if (core_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(core_->mu);
  std::uint64_t total = index_ < core_->retired_counters.size()
                            ? core_->retired_counters[index_]
                            : 0;
  for (const auto& shard : core_->shards) {
    if (index_ < shard->counters.size()) {
      total += shard->counters[index_].load(std::memory_order_relaxed);
    }
  }
  return total;
}

void MetricsRegistry::Gauge::set(double value) const {
  if (core_ == nullptr) return;
  std::lock_guard<std::mutex> lock(core_->mu);
  core_->gauge_values[index_] = value;
}

double MetricsRegistry::Gauge::value() const {
  if (core_ == nullptr) return 0.0;
  std::lock_guard<std::mutex> lock(core_->mu);
  return core_->gauge_values[index_];
}

void MetricsRegistry::Histogram::observe(double value) const {
  if (core_ == nullptr) return;
  Core::Shard& shard = local_shard(core_);
  ensure_slot(core_, shard, shard.histograms, index_);
  // Bounds are immutable after definition: lock-free read is safe.
  const std::size_t bucket =
      bucket_for(core_->hist_defs[index_].bounds, value);
  Core::HistShard& hist = shard.histograms[index_];
  hist.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  hist.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add(hist.sum, value);
}

std::uint64_t MetricsRegistry::Histogram::count() const {
  if (core_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(core_->mu);
  std::uint64_t total = index_ < core_->retired_hists.size()
                            ? core_->retired_hists[index_].count
                            : 0;
  for (const auto& shard : core_->shards) {
    if (index_ < shard->histograms.size()) {
      total +=
          shard->histograms[index_].count.load(std::memory_order_relaxed);
    }
  }
  return total;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(core_->mu);
  Snapshot out;
  for (std::size_t i = 0; i < core_->counter_names.size(); ++i) {
    std::uint64_t total = core_->retired_counters[i];
    for (const auto& shard : core_->shards) {
      if (i < shard->counters.size()) {
        total += shard->counters[i].load(std::memory_order_relaxed);
      }
    }
    out.counters[core_->counter_names[i]] = total;
  }
  for (std::size_t i = 0; i < core_->gauge_names.size(); ++i) {
    out.gauges[core_->gauge_names[i]] = core_->gauge_values[i];
  }
  for (std::size_t i = 0; i < core_->hist_defs.size(); ++i) {
    HistogramSnapshot hist;
    hist.bounds = core_->hist_defs[i].bounds;
    hist.counts = core_->retired_hists[i].buckets;
    hist.counts.resize(hist.bounds.size() + 1, 0);
    hist.count = core_->retired_hists[i].count;
    hist.sum = core_->retired_hists[i].sum;
    for (const auto& shard : core_->shards) {
      if (i >= shard->histograms.size()) continue;
      const auto& src = shard->histograms[i];
      for (std::size_t b = 0; b < src.buckets.size(); ++b) {
        hist.counts[b] += src.buckets[b].load(std::memory_order_relaxed);
      }
      hist.count += src.count.load(std::memory_order_relaxed);
      hist.sum += src.sum.load(std::memory_order_relaxed);
    }
    out.histograms[core_->hist_defs[i].name] = std::move(hist);
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(core_->mu);
  std::fill(core_->retired_counters.begin(), core_->retired_counters.end(),
            0);
  for (auto& hist : core_->retired_hists) {
    std::fill(hist.buckets.begin(), hist.buckets.end(), 0);
    hist.count = 0;
    hist.sum = 0.0;
  }
  std::fill(core_->gauge_values.begin(), core_->gauge_values.end(), 0.0);
  for (const auto& shard : core_->shards) {
    for (auto& value : shard->counters) {
      value.store(0, std::memory_order_relaxed);
    }
    for (auto& hist : shard->histograms) {
      for (auto& bucket : hist.buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
      hist.count.store(0, std::memory_order_relaxed);
      hist.sum.store(0.0, std::memory_order_relaxed);
    }
  }
}

}  // namespace bitspread
