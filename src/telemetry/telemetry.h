// The telemetry switch, the round-level phase sink, and the RAII timer probe.
//
// Two gates keep the measurement layer out of the measured system:
//
//  1. *Compile time.* Probes exist only when the library is built with
//     -DBITSPREAD_TELEMETRY (CMake option BITSPREAD_TELEMETRY, preset
//     `telemetry`). Without it, ScopedTimer is an empty object and every
//     accounting branch is `if constexpr`-eliminated — the disabled build is
//     bit-for-bit the untouched hot path (CI asserts the runtime delta of the
//     enabled build stays under 5% on perf_smoke).
//  2. *Run time.* Even when compiled in, a probe records only while a
//     PhaseStats sink is installed (install_phase_sink); otherwise it costs
//     one relaxed atomic pointer load and never reads the clock.
//
// Neither gate can perturb simulation results: telemetry reads clocks and
// bumps counters, and NEVER touches an RNG stream — the determinism suite
// must pass bit-identical with telemetry on and off (tests/telemetry_test.cc
// pins golden run payloads compiled into both builds).
#ifndef BITSPREAD_TELEMETRY_TELEMETRY_H_
#define BITSPREAD_TELEMETRY_TELEMETRY_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace bitspread {
namespace telemetry {

// True when the library was built with -DBITSPREAD_TELEMETRY.
#ifdef BITSPREAD_TELEMETRY
inline constexpr bool kCompiledIn = true;
#else
inline constexpr bool kCompiledIn = false;
#endif

// The instrumented phases of a simulation run. Every engine reports through
// the same vocabulary so bench reports are comparable across engines.
enum class Phase : int {
  kRoundStep = 0,  // One synchronous round (or n sequential activations).
  kSampleDraw,     // Observation sampling inside a round/block.
  kFaultApply,     // Fault-channel work: flips, churn, recovery bookkeeping.
  kStopCheck,      // Stop-rule / quorum evaluation.
  kPoolDispatch,   // WorkerPool fan-out latency (recorded by the pool).
  // Kernel sub-phases: the word-parallel step kernel (DESIGN.md §3.6) splits
  // each block step into gather (observation packing), fault (word-level
  // fault channels), decide (the boolean g-circuit), and commit (plane
  // writeback + popcount). Recorded by profile::KernelBlockProfiler; empty
  // in engines that run the legacy per-agent loop.
  kKernelGather,
  kKernelFault,
  kKernelDecide,
  kKernelCommit,
  kCount
};

inline constexpr int kPhaseCount = static_cast<int>(Phase::kCount);

// Short stable identifier ("round_step", ...) used in JSON reports.
const char* phase_name(Phase phase) noexcept;

inline std::uint64_t clock_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The runtime sink: per-phase nanosecond and event totals, safe for
// concurrent recording from pool workers (relaxed atomics; totals are read
// after the recorded region completes, which the pool's join ordering makes
// a happens-before).
class PhaseStats {
 public:
  void add(Phase phase, std::uint64_t ns) noexcept {
    const auto i = static_cast<std::size_t>(phase);
    ns_[i].fetch_add(ns, std::memory_order_relaxed);
    count_[i].fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t total_ns(Phase phase) const noexcept {
    return ns_[static_cast<std::size_t>(phase)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t count(Phase phase) const noexcept {
    return count_[static_cast<std::size_t>(phase)].load(
        std::memory_order_relaxed);
  }
  double total_seconds(Phase phase) const noexcept {
    return static_cast<double>(total_ns(phase)) * 1e-9;
  }

  void reset() noexcept {
    for (auto& v : ns_) v.store(0, std::memory_order_relaxed);
    for (auto& v : count_) v.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kPhaseCount> ns_{};
  std::array<std::atomic<std::uint64_t>, kPhaseCount> count_{};
};

// Installs (or, with nullptr, removes) the process-wide probe sink. The
// caller owns the sink and must keep it alive until it is uninstalled.
// Compiled-out builds accept the call and ignore it.
void install_phase_sink(PhaseStats* sink) noexcept;

// The currently installed sink (nullptr when none, or compiled out).
PhaseStats* phase_sink() noexcept;

// The flight recorder (trace.h): a per-thread bounded ring of timestamped
// span/counter/instant events, exported as Chrome trace-event JSON. It obeys
// the same two gates as PhaseStats: install/trace_recorder() are inert when
// compiled out, and an installed recorder is the only thing that makes the
// probes below emit events. The caller owns the recorder and must keep it
// alive (and quiescent: no engine running) until it is uninstalled.
class TraceRecorder;
void install_trace_recorder(TraceRecorder* recorder) noexcept;
TraceRecorder* trace_recorder() noexcept;

// Per-round stream sink: engines report (round, X_t, n) once per completed
// parallel round through record_round(); an installed RoundSink receives the
// series (jsonl.h turns it into a JSONL stream interleaving X_t, drift, and
// per-phase nanoseconds). Same ownership/gating rules as the phase sink.
// on_round() may be called concurrently when replicates run on the pool —
// implementations must be thread-safe. It must never touch an RNG stream.
class RoundSink {
 public:
  virtual ~RoundSink() = default;
  virtual void on_round(std::uint64_t round, std::uint64_t ones,
                        std::uint64_t n) = 0;
};
void install_round_sink(RoundSink* sink) noexcept;
RoundSink* round_sink() noexcept;

#ifdef BITSPREAD_TELEMETRY
// Round marker: feeds an installed TraceRecorder (counter event "X_t") and
// an installed RoundSink. Costs two relaxed loads when neither is installed;
// compiles to nothing in the default build. Defined in trace.cc.
void record_round(std::uint64_t round, std::uint64_t ones,
                  std::uint64_t n) noexcept;
// Instant marker (e.g. "source_flip") on the calling thread's trace lane.
// `name` must be a string literal (stored by pointer, not copied).
void record_mark(const char* name) noexcept;
namespace internal {
// Complete-span hook used by ScopedTimer and the pool's worker loop: pushes
// one span with explicit timestamps onto the installed recorder, if any.
void trace_span(Phase phase, std::uint64_t begin_ns,
                std::uint64_t end_ns) noexcept;
}  // namespace internal
#else
inline void record_round(std::uint64_t /*round*/, std::uint64_t /*ones*/,
                         std::uint64_t /*n*/) noexcept {}
inline void record_mark(const char* /*name*/) noexcept {}
#endif

// RAII probe: measures the lifetime of the object and adds it to the
// installed sink under `phase`; when a TraceRecorder is installed it also
// records the interval as a trace span. A disabled build compiles this to
// nothing.
class ScopedTimer {
 public:
#ifdef BITSPREAD_TELEMETRY
  explicit ScopedTimer(Phase phase) noexcept
      : sink_(phase_sink()),
        traced_(trace_recorder() != nullptr),
        phase_(phase) {
    if (sink_ != nullptr || traced_) start_ns_ = clock_now_ns();
  }
  ~ScopedTimer() {
    if (sink_ == nullptr && !traced_) return;
    const std::uint64_t end_ns = clock_now_ns();
    if (sink_ != nullptr) sink_->add(phase_, end_ns - start_ns_);
    if (traced_) internal::trace_span(phase_, start_ns_, end_ns);
  }

 private:
  PhaseStats* sink_;
  bool traced_;
  Phase phase_;
  std::uint64_t start_ns_ = 0;
#else
  explicit ScopedTimer(Phase /*phase*/) noexcept {}
#endif
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

}  // namespace telemetry
}  // namespace bitspread

#endif  // BITSPREAD_TELEMETRY_TELEMETRY_H_
