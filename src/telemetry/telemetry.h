// The telemetry switch, the round-level phase sink, and the RAII timer probe.
//
// Two gates keep the measurement layer out of the measured system:
//
//  1. *Compile time.* Probes exist only when the library is built with
//     -DBITSPREAD_TELEMETRY (CMake option BITSPREAD_TELEMETRY, preset
//     `telemetry`). Without it, ScopedTimer is an empty object and every
//     accounting branch is `if constexpr`-eliminated — the disabled build is
//     bit-for-bit the untouched hot path (CI asserts the runtime delta of the
//     enabled build stays under 5% on perf_smoke).
//  2. *Run time.* Even when compiled in, a probe records only while a
//     PhaseStats sink is installed (install_phase_sink); otherwise it costs
//     one relaxed atomic pointer load and never reads the clock.
//
// Neither gate can perturb simulation results: telemetry reads clocks and
// bumps counters, and NEVER touches an RNG stream — the determinism suite
// must pass bit-identical with telemetry on and off (tests/telemetry_test.cc
// pins golden run payloads compiled into both builds).
#ifndef BITSPREAD_TELEMETRY_TELEMETRY_H_
#define BITSPREAD_TELEMETRY_TELEMETRY_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace bitspread {
namespace telemetry {

// True when the library was built with -DBITSPREAD_TELEMETRY.
#ifdef BITSPREAD_TELEMETRY
inline constexpr bool kCompiledIn = true;
#else
inline constexpr bool kCompiledIn = false;
#endif

// The instrumented phases of a simulation run. Every engine reports through
// the same vocabulary so bench reports are comparable across engines.
enum class Phase : int {
  kRoundStep = 0,  // One synchronous round (or n sequential activations).
  kSampleDraw,     // Observation sampling inside a round/block.
  kFaultApply,     // Fault-channel work: flips, churn, recovery bookkeeping.
  kStopCheck,      // Stop-rule / quorum evaluation.
  kPoolDispatch,   // WorkerPool fan-out latency (recorded by the pool).
  kCount
};

inline constexpr int kPhaseCount = static_cast<int>(Phase::kCount);

// Short stable identifier ("round_step", ...) used in JSON reports.
const char* phase_name(Phase phase) noexcept;

inline std::uint64_t clock_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The runtime sink: per-phase nanosecond and event totals, safe for
// concurrent recording from pool workers (relaxed atomics; totals are read
// after the recorded region completes, which the pool's join ordering makes
// a happens-before).
class PhaseStats {
 public:
  void add(Phase phase, std::uint64_t ns) noexcept {
    const auto i = static_cast<std::size_t>(phase);
    ns_[i].fetch_add(ns, std::memory_order_relaxed);
    count_[i].fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t total_ns(Phase phase) const noexcept {
    return ns_[static_cast<std::size_t>(phase)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t count(Phase phase) const noexcept {
    return count_[static_cast<std::size_t>(phase)].load(
        std::memory_order_relaxed);
  }
  double total_seconds(Phase phase) const noexcept {
    return static_cast<double>(total_ns(phase)) * 1e-9;
  }

  void reset() noexcept {
    for (auto& v : ns_) v.store(0, std::memory_order_relaxed);
    for (auto& v : count_) v.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kPhaseCount> ns_{};
  std::array<std::atomic<std::uint64_t>, kPhaseCount> count_{};
};

// Installs (or, with nullptr, removes) the process-wide probe sink. The
// caller owns the sink and must keep it alive until it is uninstalled.
// Compiled-out builds accept the call and ignore it.
void install_phase_sink(PhaseStats* sink) noexcept;

// The currently installed sink (nullptr when none, or compiled out).
PhaseStats* phase_sink() noexcept;

// RAII probe: measures the lifetime of the object and adds it to the
// installed sink under `phase`. A disabled build compiles this to nothing.
class ScopedTimer {
 public:
#ifdef BITSPREAD_TELEMETRY
  explicit ScopedTimer(Phase phase) noexcept
      : sink_(phase_sink()), phase_(phase) {
    if (sink_ != nullptr) start_ns_ = clock_now_ns();
  }
  ~ScopedTimer() {
    if (sink_ != nullptr) sink_->add(phase_, clock_now_ns() - start_ns_);
  }

 private:
  PhaseStats* sink_;
  Phase phase_;
  std::uint64_t start_ns_ = 0;
#else
  explicit ScopedTimer(Phase /*phase*/) noexcept {}
#endif
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

}  // namespace telemetry
}  // namespace bitspread

#endif  // BITSPREAD_TELEMETRY_TELEMETRY_H_
