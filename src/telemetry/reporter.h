// JsonReporter: the unified machine-readable bench report.
//
// Every migrated bench emits one results/BENCH_<name>.json built through
// this class, so downstream tooling (CI overhead checks, perf-trajectory
// plots, paper-table regeneration) parses exactly one schema:
//
//   {
//     "schema": "bitspread-bench/1",
//     "bench": "<name>",
//     "experiment": "E2",            // optional
//     "seed": 42, "quick": false,
//     "build": { "type": ..., "compiler": ..., "standard": ...,
//                "telemetry": false },
//     "hardware_concurrency": 16,
//     "workload": { ... },           // bench-defined knobs (optional)
//     "phases": [ {"name","seconds","count"}, ... ],
//     "metrics": { "counters": {...}, "gauges": {...},
//                  "histograms": {...} },   // optional
//     "tables": [ { "title", "columns", "rows" }, ... ],
//     ...bench-specific extras...
//   }
//
// validate_bench_report() is the single source of truth for what "valid"
// means; the schema test and CI both call it.
#ifndef BITSPREAD_TELEMETRY_REPORTER_H_
#define BITSPREAD_TELEMETRY_REPORTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace bitspread {

class Table;

inline constexpr const char kBenchSchema[] = "bitspread-bench/1";

class JsonReporter {
 public:
  explicit JsonReporter(std::string bench_name);

  void set_experiment(std::string experiment_id);
  void set_seed(std::uint64_t seed);
  void set_quick(bool quick);

  // Bench-defined workload knobs, e.g. set_workload("n_max", 100000).
  void set_workload(const std::string& key, JsonValue value);

  // One wall-clock phase row; `count` is the number of timed events (1 for
  // a single timed region).
  void add_phase(const std::string& name, double seconds,
                 std::uint64_t count = 1);

  // Appends every recorded phase of a PhaseStats sink (skips empty phases).
  void add_phase_stats(const telemetry::PhaseStats& stats);

  // Embeds a metrics snapshot under "metrics".
  void set_metrics(const MetricsRegistry::Snapshot& snapshot);

  // Appends a console table under "tables" (columns + stringified rows),
  // preserving exactly what the human-readable output showed.
  void add_table(const std::string& title, const Table& table);

  // Bench-specific top-level extras (fit exponents, speedups, ...).
  void set_extra(const std::string& key, JsonValue value);

  // Embeds the flight recorder's capacity accounting under
  // "flight_recorder" (capacity, buffers, events recorded/stored/dropped),
  // so a report carries the provenance of any trace artifact written
  // alongside it.
  void set_flight_recorder(const telemetry::TraceRecorder& recorder);

  // Assembles the report (schema/build stamps included).
  JsonValue build() const;

  // Writes build().dump() to `path`; returns false (and reports on stderr)
  // on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  std::string bench_name_;
  std::string experiment_id_;
  std::uint64_t seed_ = 0;
  bool quick_ = false;
  JsonValue workload_ = JsonValue::object();
  JsonValue phases_ = JsonValue::array();
  JsonValue metrics_;
  JsonValue tables_ = JsonValue::array();
  JsonValue extras_ = JsonValue::object();
};

// Returns the list of schema violations (empty = valid report).
std::vector<std::string> validate_bench_report(const JsonValue& report);

// Converts a metrics snapshot to its JSON form (also used by the examples'
// --metrics-out flag, without the bench wrapper).
JsonValue metrics_to_json(const MetricsRegistry::Snapshot& snapshot);

}  // namespace bitspread

#endif  // BITSPREAD_TELEMETRY_REPORTER_H_
