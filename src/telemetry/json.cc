#include "telemetry/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace bitspread {
namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no inf/nan.
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Shortest round-trip would be nicer; %.17g is always exact, then trim.
  double parsed = std::strtod(buf, nullptr);
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    if (std::strtod(shorter, nullptr) == parsed) {
      out += shorter;
      return;
    }
  }
  out += buf;
}

void indent_to(std::string& out, int indent) {
  out.append(static_cast<std::size_t>(indent) * 2, ' ');
}

struct Parser {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    std::size_t n = 0;
    while (word[n] != '\0') ++n;
    if (text.compare(pos, n, word) == 0) {
      pos += n;
      return true;
    }
    return false;
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos >= text.size()) return std::nullopt;
        char esc = text[pos++];
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            if (pos + 4 > text.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return std::nullopt;
              }
            }
            // UTF-8 encode the BMP code point (reports are ASCII anyway).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    return std::nullopt;  // Unterminated.
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos;
    bool is_integral = true;
    if (pos < text.size() && text[pos] == '-') ++pos;
    const std::size_t digits_start = pos;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    // JSON forbids empty and leading-zero integer parts ("01", "-042").
    if (pos == digits_start ||
        (pos - digits_start > 1 && text[digits_start] == '0')) {
      return std::nullopt;
    }
    if (pos < text.size() && text[pos] == '.') {
      is_integral = false;
      ++pos;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      is_integral = false;
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    }
    if (pos == start) return std::nullopt;
    const std::string token = text.substr(start, pos - start);
    if (is_integral) {
      errno = 0;
      if (token[0] == '-') {
        const long long v = std::strtoll(token.c_str(), nullptr, 10);
        if (errno == 0) return JsonValue(v);
      } else {
        const unsigned long long v = std::strtoull(token.c_str(), nullptr, 10);
        if (errno == 0) return JsonValue(v);
      }
    }
    return JsonValue(std::strtod(token.c_str(), nullptr));
  }

  std::optional<JsonValue> parse_value() {
    skip_ws();
    if (pos >= text.size()) return std::nullopt;
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      JsonValue obj = JsonValue::object();
      skip_ws();
      if (consume('}')) return obj;
      while (true) {
        auto key = parse_string();
        if (!key || !consume(':')) return std::nullopt;
        auto value = parse_value();
        if (!value) return std::nullopt;
        obj.set(*key, std::move(*value));
        if (consume(',')) {
          skip_ws();
          continue;
        }
        if (consume('}')) return obj;
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos;
      JsonValue arr = JsonValue::array();
      skip_ws();
      if (consume(']')) return arr;
      while (true) {
        auto value = parse_value();
        if (!value) return std::nullopt;
        arr.push_back(std::move(*value));
        if (consume(',')) continue;
        if (consume(']')) return arr;
        return std::nullopt;
      }
    }
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      return JsonValue(std::move(*s));
    }
    if (literal("true")) return JsonValue(true);
    if (literal("false")) return JsonValue(false);
    if (literal("null")) return JsonValue(nullptr);
    return parse_number();
  }
};

}  // namespace

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
  kind_ = Kind::kObject;
  for (auto& member : object_) {
    if (member.first == key) {
      member.second = std::move(value);
      return member.second;
    }
  }
  object_.emplace_back(key, std::move(value));
  return object_.back().second;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& member : object_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

void JsonValue::dump_to(std::string& out, int indent) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInt:
      out += std::to_string(int_);
      break;
    case Kind::kUint:
      out += std::to_string(uint_);
      break;
    case Kind::kDouble:
      append_double(out, double_);
      break;
    case Kind::kString:
      append_escaped(out, string_);
      break;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      // Scalar-only arrays print on one line; nested ones get one item per
      // line, which keeps phase/row lists readable.
      bool nested = false;
      for (const auto& item : array_) {
        if (item.is_array() || item.is_object()) nested = true;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (nested) {
          out += '\n';
          indent_to(out, indent + 1);
        } else if (i > 0) {
          out += ' ';
        }
        array_[i].dump_to(out, indent + 1);
        if (i + 1 < array_.size()) out += ',';
      }
      if (nested) {
        out += '\n';
        indent_to(out, indent);
      }
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        out += '\n';
        indent_to(out, indent + 1);
        append_escaped(out, object_[i].first);
        out += ": ";
        object_[i].second.dump_to(out, indent + 1);
        if (i + 1 < object_.size()) out += ',';
      }
      out += '\n';
      indent_to(out, indent);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out, 0);
  out += '\n';
  return out;
}

std::optional<JsonValue> JsonValue::parse(const std::string& text) {
  Parser parser{text};
  auto value = parser.parse_value();
  if (!value) return std::nullopt;
  parser.skip_ws();
  if (parser.pos != text.size()) return std::nullopt;  // Trailing garbage.
  return value;
}

}  // namespace bitspread
