#include "telemetry/trace.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <unordered_map>

namespace bitspread {
namespace telemetry {

// One per-thread ring. Single-writer: only the owning thread pushes. The
// head counter is atomic so stats reads from another (quiescent-time)
// thread are well-defined; slot contents rely on the external quiescence
// contract documented in trace.h.
struct TraceRecorder::Lane {
  explicit Lane(int tid_in, std::size_t capacity)
      : tid(tid_in), ring(capacity) {}

  void push(const Event& event) noexcept {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    ring[static_cast<std::size_t>(h % ring.size())] = event;
    head.store(h + 1, std::memory_order_release);
  }

  // Events still held, oldest first.
  std::vector<Event> snapshot() const {
    const std::uint64_t h = head.load(std::memory_order_acquire);
    const std::uint64_t cap = ring.size();
    std::vector<Event> out;
    const std::uint64_t stored = h < cap ? h : cap;
    out.reserve(static_cast<std::size_t>(stored));
    for (std::uint64_t i = h - stored; i < h; ++i) {
      out.push_back(ring[static_cast<std::size_t>(i % cap)]);
    }
    return out;
  }

  const int tid;
  std::atomic<std::uint64_t> head{0};
  std::vector<Event> ring;
};

namespace {

std::atomic<TraceRecorder*> g_trace_recorder{nullptr};
// Bumped on every install/uninstall so thread-local lane pointers cached
// against a previous recorder (possibly at a recycled address) are never
// reused.
std::atomic<std::uint64_t> g_trace_epoch{0};

// The cache is valid only for (this recorder, this epoch): the epoch is
// bumped on every install/uninstall AND every recorder destruction, so a
// stale lane pointer — even one whose recorder was freed and the address
// recycled by a new instance — can never be dereferenced.
struct ThreadLaneCache {
  const TraceRecorder* owner = nullptr;
  TraceRecorder::Lane* lane = nullptr;
  std::uint64_t epoch = 0;
};
thread_local ThreadLaneCache t_lane_cache;

}  // namespace

TraceRecorder::TraceRecorder() : TraceRecorder(Options{}) {}

TraceRecorder::TraceRecorder(Options options)
    : capacity_(options.capacity == 0 ? 1 : options.capacity) {}

TraceRecorder::~TraceRecorder() {
  // Invalidate every thread's cached lane pointer into this instance.
  g_trace_epoch.fetch_add(1, std::memory_order_acq_rel);
}

TraceRecorder::Lane* TraceRecorder::lane_for_this_thread() noexcept {
  const std::uint64_t epoch = g_trace_epoch.load(std::memory_order_acquire);
  if (t_lane_cache.owner == this && t_lane_cache.epoch == epoch) {
    return t_lane_cache.lane;
  }
  std::lock_guard<std::mutex> lock(lanes_mutex_);
  lanes_.push_back(
      std::make_unique<Lane>(static_cast<int>(lanes_.size()), capacity_));
  t_lane_cache.owner = this;
  t_lane_cache.lane = lanes_.back().get();
  t_lane_cache.epoch = epoch;
  return t_lane_cache.lane;
}

void TraceRecorder::span(const char* name, std::uint64_t begin_ns,
                         std::uint64_t end_ns) noexcept {
  lane_for_this_thread()->push(Event{Kind::kSpan, name, begin_ns, end_ns});
}

void TraceRecorder::counter(const char* name, std::uint64_t ts_ns,
                            std::uint64_t value) noexcept {
  lane_for_this_thread()->push(Event{Kind::kCounter, name, ts_ns, value});
}

void TraceRecorder::instant(const char* name, std::uint64_t ts_ns) noexcept {
  lane_for_this_thread()->push(Event{Kind::kInstant, name, ts_ns, 0});
}

std::size_t TraceRecorder::buffers() const {
  std::lock_guard<std::mutex> lock(lanes_mutex_);
  return lanes_.size();
}

std::uint64_t TraceRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(lanes_mutex_);
  std::uint64_t total = 0;
  for (const auto& lane : lanes_) {
    total += lane->head.load(std::memory_order_acquire);
  }
  return total;
}

std::uint64_t TraceRecorder::stored() const {
  std::lock_guard<std::mutex> lock(lanes_mutex_);
  std::uint64_t total = 0;
  for (const auto& lane : lanes_) {
    const std::uint64_t h = lane->head.load(std::memory_order_acquire);
    total += h < capacity_ ? h : capacity_;
  }
  return total;
}

std::uint64_t TraceRecorder::dropped() const { return recorded() - stored(); }

namespace {

JsonValue make_event(const char* ph, const char* name, double ts_us,
                     int tid) {
  JsonValue e = JsonValue::object();
  e.set("name", name);
  e.set("ph", ph);
  e.set("ts", ts_us);
  e.set("pid", 1);
  e.set("tid", tid);
  return e;
}

inline double to_us(std::uint64_t ns) {
  return static_cast<double>(ns) / 1000.0;
}

}  // namespace

JsonValue TraceRecorder::export_chrome_trace() const {
  std::vector<std::pair<int, std::vector<Event>>> lanes;
  {
    std::lock_guard<std::mutex> lock(lanes_mutex_);
    lanes.reserve(lanes_.size());
    for (const auto& lane : lanes_) {
      lanes.emplace_back(lane->tid, lane->snapshot());
    }
  }

  JsonValue events = JsonValue::array();
  for (const auto& [tid, held] : lanes) {
    {
      JsonValue meta = JsonValue::object();
      meta.set("name", "thread_name");
      meta.set("ph", "M");
      meta.set("ts", 0.0);
      meta.set("pid", 1);
      meta.set("tid", tid);
      JsonValue args = JsonValue::object();
      args.set("name", "lane-" + std::to_string(tid));
      meta.set("args", std::move(args));
      events.push_back(std::move(meta));
    }

    std::vector<Event> spans;
    std::vector<Event> points;
    for (const Event& e : held) {
      (e.kind == Kind::kSpan ? spans : points).push_back(e);
    }
    // Complete spans from one lane are properly nested (RAII), and evicting
    // whole spans preserves that, so a (begin asc, end desc) sort + stack
    // sweep reconstructs matched B/E pairs with non-decreasing timestamps.
    std::sort(spans.begin(), spans.end(), [](const Event& a, const Event& b) {
      return a.t0 != b.t0 ? a.t0 < b.t0 : a.t1 > b.t1;
    });
    std::sort(points.begin(), points.end(),
              [](const Event& a, const Event& b) { return a.t0 < b.t0; });

    std::vector<Event> open;  // Stack of spans whose "E" is pending.
    std::size_t next_point = 0;
    auto emit_points_until = [&](std::uint64_t ts_ns) {
      for (; next_point < points.size() && points[next_point].t0 <= ts_ns;
           ++next_point) {
        const Event& p = points[next_point];
        if (p.kind == Kind::kCounter) {
          JsonValue c = make_event("C", p.name, to_us(p.t0), tid);
          JsonValue args = JsonValue::object();
          args.set("value", p.t1);
          c.set("args", std::move(args));
          events.push_back(std::move(c));
        } else {
          JsonValue i = make_event("i", p.name, to_us(p.t0), tid);
          i.set("s", "t");
          events.push_back(std::move(i));
        }
      }
    };
    auto close_open_until = [&](std::uint64_t ts_ns) {
      while (!open.empty() && open.back().t1 <= ts_ns) {
        const Event top = open.back();
        open.pop_back();
        emit_points_until(top.t1);
        events.push_back(make_event("E", top.name, to_us(top.t1), tid));
      }
    };
    for (const Event& s : spans) {
      close_open_until(s.t0);
      emit_points_until(s.t0);
      events.push_back(make_event("B", s.name, to_us(s.t0), tid));
      open.push_back(s);
    }
    close_open_until(~std::uint64_t{0});
    emit_points_until(~std::uint64_t{0});
  }

  JsonValue trace = JsonValue::object();
  trace.set("traceEvents", std::move(events));
  trace.set("displayTimeUnit", "ns");
  return trace;
}

bool TraceRecorder::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << export_chrome_trace().dump();
  return static_cast<bool>(out.flush());
}

std::vector<std::string> validate_chrome_trace(const JsonValue& trace) {
  std::vector<std::string> errors;
  auto fail = [&errors](std::string message) {
    if (errors.size() < 32) errors.push_back(std::move(message));
  };

  if (!trace.is_object()) {
    fail("top-level value is not an object");
    return errors;
  }
  const JsonValue* events = trace.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    fail("missing \"traceEvents\" array");
    return errors;
  }

  static const std::set<std::string> kPhases = {"B", "E", "C", "i", "M"};
  struct LaneState {
    double last_ts = -1.0;
    std::vector<std::string> open;  // Names of unclosed B events.
  };
  std::unordered_map<int, LaneState> lanes;

  std::size_t index = 0;
  for (const JsonValue& e : events->items()) {
    const std::string at = "event " + std::to_string(index++);
    if (!e.is_object()) {
      fail(at + ": not an object");
      continue;
    }
    const JsonValue* ph = e.find("ph");
    const JsonValue* name = e.find("name");
    const JsonValue* ts = e.find("ts");
    const JsonValue* pid = e.find("pid");
    const JsonValue* tid = e.find("tid");
    if (ph == nullptr || !ph->is_string() ||
        kPhases.count(ph->as_string()) == 0) {
      fail(at + ": \"ph\" missing or not one of B/E/C/i/M");
      continue;
    }
    if (name == nullptr || !name->is_string()) {
      fail(at + ": \"name\" missing or not a string");
      continue;
    }
    if (ts == nullptr || !ts->is_number()) {
      fail(at + ": \"ts\" missing or not a number");
      continue;
    }
    if (pid == nullptr || !pid->is_number() || tid == nullptr ||
        !tid->is_number()) {
      fail(at + ": \"pid\"/\"tid\" missing or not numbers");
      continue;
    }
    const std::string& phase = ph->as_string();
    if (phase == "M") continue;  // Metadata carries no timeline constraints.

    LaneState& lane = lanes[static_cast<int>(tid->as_double())];
    const double t = ts->as_double();
    if (t < lane.last_ts) {
      fail(at + ": ts " + std::to_string(t) +
           " goes backwards on tid " + std::to_string(
               static_cast<int>(tid->as_double())));
    }
    lane.last_ts = t;

    if (phase == "B") {
      lane.open.push_back(name->as_string());
    } else if (phase == "E") {
      if (lane.open.empty()) {
        fail(at + ": \"E\" (" + name->as_string() + ") with no open \"B\"");
      } else if (lane.open.back() != name->as_string()) {
        fail(at + ": \"E\" name " + name->as_string() +
             " does not match open \"B\" " + lane.open.back());
      } else {
        lane.open.pop_back();
      }
    }
    if (phase == "C" || phase == "i") {
      const JsonValue* args = e.find("args");
      if (phase == "C" &&
          (args == nullptr || !args->is_object() ||
           args->find("value") == nullptr)) {
        fail(at + ": counter without args.value");
      }
    }
  }
  for (const auto& [tid, lane] : lanes) {
    if (!lane.open.empty()) {
      fail("tid " + std::to_string(tid) + ": " +
           std::to_string(lane.open.size()) +
           " unclosed \"B\" events (first: " + lane.open.front() + ")");
    }
  }
  return errors;
}

void install_trace_recorder(TraceRecorder* recorder) noexcept {
  if constexpr (kCompiledIn) {
    g_trace_epoch.fetch_add(1, std::memory_order_acq_rel);
    g_trace_recorder.store(recorder, std::memory_order_release);
  } else {
    (void)recorder;
  }
}

TraceRecorder* trace_recorder() noexcept {
  if constexpr (kCompiledIn) {
    return g_trace_recorder.load(std::memory_order_acquire);
  }
  return nullptr;
}

namespace {

std::atomic<RoundSink*> g_round_sink{nullptr};

}  // namespace

void install_round_sink(RoundSink* sink) noexcept {
  if constexpr (kCompiledIn) {
    g_round_sink.store(sink, std::memory_order_release);
  } else {
    (void)sink;
  }
}

RoundSink* round_sink() noexcept {
  if constexpr (kCompiledIn) {
    return g_round_sink.load(std::memory_order_acquire);
  }
  return nullptr;
}

#ifdef BITSPREAD_TELEMETRY

void record_round(std::uint64_t round, std::uint64_t ones,
                  std::uint64_t n) noexcept {
  TraceRecorder* recorder = trace_recorder();
  RoundSink* sink = round_sink();
  if (recorder == nullptr && sink == nullptr) return;
  if (recorder != nullptr) recorder->counter("X_t", clock_now_ns(), ones);
  if (sink != nullptr) sink->on_round(round, ones, n);
}

void record_mark(const char* name) noexcept {
  if (TraceRecorder* recorder = trace_recorder()) {
    recorder->instant(name, clock_now_ns());
  }
}

namespace internal {

void trace_span(Phase phase, std::uint64_t begin_ns,
                std::uint64_t end_ns) noexcept {
  if (TraceRecorder* recorder = trace_recorder()) {
    recorder->span(phase_name(phase), begin_ns, end_ns);
  }
}

}  // namespace internal

#endif  // BITSPREAD_TELEMETRY

}  // namespace telemetry
}  // namespace bitspread
