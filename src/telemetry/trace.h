// The flight recorder: bounded per-thread rings of timestamped trace events,
// exported as Chrome trace-event JSON (Perfetto / about:tracing).
//
// Design constraints, in order:
//
//  1. *Bounded memory.* Each recording thread owns one fixed-capacity ring;
//     when it fills, the oldest events are evicted. A slow-crossing run that
//     takes 10^7 rounds costs the same memory as one that takes 10^2.
//  2. *No orphaned markers under eviction.* Spans are stored as single
//     COMPLETE records (begin + end in one event) pushed when the span
//     closes, so evicting an event can never strand an unmatched "B" or "E";
//     the Chrome B/E pairs are reconstructed at export time by a per-lane
//     sort + stack sweep (RAII guarantees proper nesting per thread).
//  3. *Two-gate discipline.* This class compiles in every build (its direct
//     API is unit-tested from the default build), but the probes that feed
//     it — ScopedTimer, record_round(), record_mark(), the pool's worker
//     spans — exist only under -DBITSPREAD_TELEMETRY and are dormant until
//     install_trace_recorder() points at an instance. Recording reads clocks
//     and writes ring slots; it NEVER touches an RNG stream.
//
// Threading: each thread that records gets its own lane (ring) on first use,
// registered through an epoch-checked thread-local so stale pointers from a
// previous install cycle are never dereferenced. Rings are single-writer
// (the owning thread); stats/export must only run while recording threads
// are quiescent (between runs, or after uninstall) — the same join ordering
// PhaseStats relies on.
#ifndef BITSPREAD_TELEMETRY_TRACE_H_
#define BITSPREAD_TELEMETRY_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/json.h"
#include "telemetry/telemetry.h"

namespace bitspread {
namespace telemetry {

class TraceRecorder {
 public:
  struct Options {
    // Events retained per recording thread (lane). Oldest evicted beyond
    // this. 1<<15 events ≈ 1.25 MiB/lane — enough for ~10k instrumented
    // rounds of the aggregate engine.
    std::size_t capacity = std::size_t{1} << 15;
  };

  enum class Kind : std::uint8_t { kSpan, kCounter, kInstant };

  // One ring slot. PODs only: `name` must point at a string literal (or
  // otherwise outlive the recorder); nothing is copied on the hot path.
  struct Event {
    Kind kind;
    const char* name;
    std::uint64_t t0;  // span: begin ns; counter/instant: timestamp ns.
    std::uint64_t t1;  // span: end ns; counter: value; instant: unused.
  };

  // Opaque per-thread ring; defined in trace.cc (public so the epoch-checked
  // thread-local registration cache can name it).
  struct Lane;

  TraceRecorder();
  explicit TraceRecorder(Options options);
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Hot-path record calls. Each writes one slot of the calling thread's
  // lane, registering the lane on first use. `name` is stored by pointer.
  void span(const char* name, std::uint64_t begin_ns,
            std::uint64_t end_ns) noexcept;
  void counter(const char* name, std::uint64_t ts_ns,
               std::uint64_t value) noexcept;
  void instant(const char* name, std::uint64_t ts_ns) noexcept;

  // Capacity accounting (quiescent reads). recorded() counts every event
  // ever pushed; stored() what the rings still hold; dropped() the evicted
  // remainder — recorded() == stored() + dropped() always.
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t buffers() const;
  std::uint64_t recorded() const;
  std::uint64_t stored() const;
  std::uint64_t dropped() const;

  // Chrome trace-event export: {"traceEvents":[...]} with matched B/E pairs
  // per lane (tid), counter ("C") and instant ("i") events, and thread-name
  // metadata ("M"). Timestamps are steady-clock microseconds. Quiescent
  // read; the rings are left untouched (export is repeatable).
  JsonValue export_chrome_trace() const;

  // Serializes export_chrome_trace() to `path`. False on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

 private:
  Lane* lane_for_this_thread() noexcept;

  const std::size_t capacity_;
  mutable std::mutex lanes_mutex_;
  std::vector<std::unique_ptr<Lane>> lanes_;
};

// Structural validator for a parsed Chrome trace document. Returns an empty
// vector when `trace` is a well-formed event container: top-level object
// with a "traceEvents" array; every event an object carrying string "ph"
// (one of B/E/C/i/M), string "name", numeric "pid"/"tid", numeric "ts";
// per-tid timestamps non-decreasing (metadata exempt) and B/E events
// forming a balanced stack with matching names. Used by the trace tests and
// by CI against written artifacts.
std::vector<std::string> validate_chrome_trace(const JsonValue& trace);

}  // namespace telemetry
}  // namespace bitspread

#endif  // BITSPREAD_TELEMETRY_TRACE_H_
