#include "telemetry/reporter.h"

#include <fstream>
#include <iostream>

#include "sim/parallel.h"
#include "sim/table.h"

namespace bitspread {
namespace {

JsonValue build_stamp() {
  JsonValue build = JsonValue::object();
#ifdef NDEBUG
  build.set("type", "release");
#else
  build.set("type", "debug");
#endif
#if defined(__clang_version__)
  build.set("compiler", std::string("clang ") + __clang_version__);
#elif defined(__VERSION__)
  build.set("compiler", std::string("gcc ") + __VERSION__);
#else
  build.set("compiler", "unknown");
#endif
  build.set("standard", static_cast<std::int64_t>(__cplusplus));
  build.set("telemetry", telemetry::kCompiledIn);
  return build;
}

}  // namespace

JsonValue metrics_to_json(const MetricsRegistry::Snapshot& snapshot) {
  JsonValue out = JsonValue::object();
  JsonValue counters = JsonValue::object();
  for (const auto& [name, value] : snapshot.counters) {
    counters.set(name, value);
  }
  JsonValue gauges = JsonValue::object();
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.set(name, value);
  }
  JsonValue histograms = JsonValue::object();
  for (const auto& [name, hist] : snapshot.histograms) {
    JsonValue h = JsonValue::object();
    JsonValue bounds = JsonValue::array();
    for (const double b : hist.bounds) bounds.push_back(b);
    JsonValue counts = JsonValue::array();
    for (const std::uint64_t c : hist.counts) counts.push_back(c);
    h.set("bounds", std::move(bounds));
    h.set("counts", std::move(counts));
    h.set("count", hist.count);
    h.set("sum", hist.sum);
    histograms.set(name, std::move(h));
  }
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

JsonReporter::JsonReporter(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

void JsonReporter::set_experiment(std::string experiment_id) {
  experiment_id_ = std::move(experiment_id);
}

void JsonReporter::set_seed(std::uint64_t seed) { seed_ = seed; }

void JsonReporter::set_quick(bool quick) { quick_ = quick; }

void JsonReporter::set_workload(const std::string& key, JsonValue value) {
  workload_.set(key, std::move(value));
}

void JsonReporter::add_phase(const std::string& name, double seconds,
                             std::uint64_t count) {
  JsonValue phase = JsonValue::object();
  phase.set("name", name);
  phase.set("seconds", seconds);
  phase.set("count", count);
  phases_.push_back(std::move(phase));
}

void JsonReporter::add_phase_stats(const telemetry::PhaseStats& stats) {
  for (int i = 0; i < telemetry::kPhaseCount; ++i) {
    const auto phase = static_cast<telemetry::Phase>(i);
    if (stats.count(phase) == 0) continue;
    add_phase(telemetry::phase_name(phase), stats.total_seconds(phase),
              stats.count(phase));
  }
}

void JsonReporter::set_metrics(const MetricsRegistry::Snapshot& snapshot) {
  metrics_ = metrics_to_json(snapshot);
}

void JsonReporter::add_table(const std::string& title, const Table& table) {
  JsonValue t = JsonValue::object();
  t.set("title", title);
  JsonValue columns = JsonValue::array();
  for (const auto& header : table.headers()) columns.push_back(header);
  t.set("columns", std::move(columns));
  JsonValue rows = JsonValue::array();
  for (const auto& row : table.rows()) {
    JsonValue cells = JsonValue::array();
    for (const auto& cell : row) cells.push_back(cell);
    rows.push_back(std::move(cells));
  }
  t.set("rows", std::move(rows));
  tables_.push_back(std::move(t));
}

void JsonReporter::set_extra(const std::string& key, JsonValue value) {
  extras_.set(key, std::move(value));
}

void JsonReporter::set_flight_recorder(
    const telemetry::TraceRecorder& recorder) {
  JsonValue fr = JsonValue::object();
  fr.set("capacity_per_lane", static_cast<std::uint64_t>(recorder.capacity()));
  fr.set("lanes", static_cast<std::uint64_t>(recorder.buffers()));
  fr.set("events_recorded", recorder.recorded());
  fr.set("events_stored", recorder.stored());
  fr.set("events_dropped", recorder.dropped());
  extras_.set("flight_recorder", std::move(fr));
}

JsonValue JsonReporter::build() const {
  JsonValue report = JsonValue::object();
  report.set("schema", kBenchSchema);
  report.set("bench", bench_name_);
  if (!experiment_id_.empty()) report.set("experiment", experiment_id_);
  report.set("seed", seed_);
  report.set("quick", quick_);
  report.set("build", build_stamp());
  // Affinity-aware: std::thread::hardware_concurrency() may return 0
  // ("unknown") or ignore container CPU limits, which used to stamp reports
  // from multi-core hosts as single-core and split the bench-history
  // provenance key. host_concurrency() resolves the usable-CPU count.
  report.set("hardware_concurrency",
             static_cast<std::uint64_t>(host_concurrency()));
  if (!workload_.members().empty()) {
    report.set("workload", workload_);
  }
  report.set("phases", phases_);
  if (metrics_.is_object()) report.set("metrics", metrics_);
  if (!tables_.items().empty()) report.set("tables", tables_);
  for (const auto& [key, value] : extras_.members()) {
    report.set(key, value);
  }
  return report;
}

bool JsonReporter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: cannot write JSON report to " << path << "\n";
    return false;
  }
  out << build().dump();
  if (!out) {
    std::cerr << "error: short write on JSON report " << path << "\n";
    return false;
  }
  std::cerr << "JSON report written to " << path << "\n";
  return true;
}

std::vector<std::string> validate_bench_report(const JsonValue& report) {
  std::vector<std::string> errors;
  if (!report.is_object()) {
    errors.push_back("report is not a JSON object");
    return errors;
  }
  const auto require = [&](const char* key, auto&& check, const char* what) {
    const JsonValue* v = report.find(key);
    if (v == nullptr) {
      errors.push_back(std::string("missing field: ") + key);
    } else if (!check(*v)) {
      errors.push_back(std::string(key) + " is not " + what);
    }
  };
  require(
      "schema",
      [](const JsonValue& v) {
        return v.is_string() && v.as_string() == kBenchSchema;
      },
      kBenchSchema);
  require(
      "bench", [](const JsonValue& v) { return v.is_string(); }, "a string");
  require(
      "seed",
      [](const JsonValue& v) {
        return v.kind() == JsonValue::Kind::kUint ||
               v.kind() == JsonValue::Kind::kInt;
      },
      "an integer");
  require(
      "quick",
      [](const JsonValue& v) { return v.kind() == JsonValue::Kind::kBool; },
      "a bool");
  require(
      "hardware_concurrency",
      [](const JsonValue& v) { return v.is_number(); }, "a number");
  const JsonValue* build = report.find("build");
  if (build == nullptr || !build->is_object()) {
    errors.push_back("missing field: build");
  } else {
    for (const char* key : {"type", "compiler"}) {
      const JsonValue* v = build->find(key);
      if (v == nullptr || !v->is_string()) {
        errors.push_back(std::string("build.") + key + " is not a string");
      }
    }
    const JsonValue* flag = build->find("telemetry");
    if (flag == nullptr || flag->kind() != JsonValue::Kind::kBool) {
      errors.push_back("build.telemetry is not a bool");
    }
  }
  const JsonValue* phases = report.find("phases");
  if (phases == nullptr || !phases->is_array()) {
    errors.push_back("missing field: phases");
  } else {
    for (std::size_t i = 0; i < phases->items().size(); ++i) {
      const JsonValue& phase = phases->items()[i];
      const bool ok = phase.is_object() && phase.find("name") != nullptr &&
                      phase.find("name")->is_string() &&
                      phase.find("seconds") != nullptr &&
                      phase.find("seconds")->is_number() &&
                      phase.find("count") != nullptr &&
                      phase.find("count")->is_number();
      if (!ok) {
        errors.push_back("phases[" + std::to_string(i) +
                         "] lacks name/seconds/count");
      }
    }
  }
  return errors;
}

}  // namespace bitspread
