// Minimal JSON value model used by the unified bench reporter.
//
// Deliberately small: insertion-ordered objects (so reports diff cleanly),
// distinct int64/uint64/double arms (so 64-bit seeds round-trip exactly),
// a pretty-printing dump(), and a strict parser sufficient for the schema
// tests and the CI overhead checker. Not a general-purpose JSON library.
#ifndef BITSPREAD_TELEMETRY_JSON_H_
#define BITSPREAD_TELEMETRY_JSON_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace bitspread {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  // Insertion-ordered; keys are unique (set() overwrites in place).
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  enum class Kind { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(std::nullptr_t) : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(int v) : kind_(Kind::kInt), int_(v) {}
  JsonValue(long v) : kind_(Kind::kInt), int_(v) {}
  JsonValue(long long v) : kind_(Kind::kInt), int_(v) {}
  JsonValue(unsigned v) : kind_(Kind::kUint), uint_(v) {}
  JsonValue(unsigned long v) : kind_(Kind::kUint), uint_(v) {}
  JsonValue(unsigned long long v) : kind_(Kind::kUint), uint_(v) {}
  JsonValue(double v) : kind_(Kind::kDouble), double_(v) {}
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  JsonValue(Array a) : kind_(Kind::kArray), array_(std::move(a)) {}

  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }
  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint ||
           kind_ == Kind::kDouble;
  }

  bool as_bool() const { return bool_; }
  const std::string& as_string() const { return string_; }
  double as_double() const {
    switch (kind_) {
      case Kind::kInt:
        return static_cast<double>(int_);
      case Kind::kUint:
        return static_cast<double>(uint_);
      default:
        return double_;
    }
  }
  std::uint64_t as_uint() const {
    switch (kind_) {
      case Kind::kInt:
        return static_cast<std::uint64_t>(int_);
      case Kind::kDouble:
        return static_cast<std::uint64_t>(double_);
      default:
        return uint_;
    }
  }

  const Array& items() const { return array_; }
  Array& items() { return array_; }
  const Object& members() const { return object_; }

  // Object access: set() overwrites an existing key in place (preserving
  // order); find() returns nullptr when absent.
  JsonValue& set(const std::string& key, JsonValue value);
  const JsonValue* find(const std::string& key) const;

  void push_back(JsonValue value) { array_.push_back(std::move(value)); }

  // Serializes with 2-space indentation and a trailing newline at top level.
  std::string dump() const;

  // Strict parse of a complete JSON document; nullopt on any syntax error
  // or trailing garbage. Numbers parse to kUint/kInt when exactly integral.
  static std::optional<JsonValue> parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace bitspread

#endif  // BITSPREAD_TELEMETRY_JSON_H_
