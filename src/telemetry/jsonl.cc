#include "telemetry/jsonl.h"

#include <cstdio>

namespace bitspread {
namespace telemetry {
namespace {

// Shortest round-tripping double representation, locale-independent.
std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

RoundStream::RoundStream(const std::string& path)
    : RoundStream(path, Options{}) {}

RoundStream::RoundStream(const std::string& path, Options options)
    : stride_(options.stride == 0 ? 1 : options.stride),
      out_(path, options.append ? std::ios::out | std::ios::app
                                : std::ios::out | std::ios::trunc) {}

void RoundStream::on_round(std::uint64_t round, std::uint64_t ones,
                           std::uint64_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++rounds_seen_;
  if (round % stride_ != 0) return;

  std::string line;
  line.reserve(192);
  line += "{\"round\":";
  line += std::to_string(round);
  line += ",\"ones\":";
  line += std::to_string(ones);
  line += ",\"n\":";
  line += std::to_string(n);
  const double x = n == 0 ? 0.0 : static_cast<double>(ones) /
                                      static_cast<double>(n);
  line += ",\"x\":";
  line += format_double(x);
  line += ",\"drift\":";
  if (bias_) {
    line += format_double(static_cast<double>(n) * bias_(x));
  } else {
    line += "null";
  }
  line += ",\"phase_ns\":{";
  PhaseStats* stats = phase_sink();
  for (int i = 0; i < kPhaseCount; ++i) {
    const auto phase = static_cast<Phase>(i);
    const std::uint64_t total =
        stats != nullptr ? stats->total_ns(phase) : 0;
    const std::uint64_t delta =
        total >= last_phase_ns_[static_cast<std::size_t>(i)]
            ? total - last_phase_ns_[static_cast<std::size_t>(i)]
            : 0;
    last_phase_ns_[static_cast<std::size_t>(i)] = total;
    if (i != 0) line += ',';
    line += '"';
    line += phase_name(phase);
    line += "\":";
    line += std::to_string(delta);
  }
  line += "}}\n";
  out_ << line;
  ++lines_;
}

bool RoundStream::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<bool>(out_.flush());
}

}  // namespace telemetry
}  // namespace bitspread
