#include "telemetry/telemetry.h"

namespace bitspread {
namespace telemetry {
namespace {

std::atomic<PhaseStats*> g_phase_sink{nullptr};

}  // namespace

const char* phase_name(Phase phase) noexcept {
  switch (phase) {
    case Phase::kRoundStep:
      return "round_step";
    case Phase::kSampleDraw:
      return "sample_draw";
    case Phase::kFaultApply:
      return "fault_apply";
    case Phase::kStopCheck:
      return "stop_check";
    case Phase::kPoolDispatch:
      return "pool_dispatch";
    case Phase::kKernelGather:
      return "kernel_gather";
    case Phase::kKernelFault:
      return "kernel_fault";
    case Phase::kKernelDecide:
      return "kernel_decide";
    case Phase::kKernelCommit:
      return "kernel_commit";
    case Phase::kCount:
      break;
  }
  return "unknown";
}

void install_phase_sink(PhaseStats* sink) noexcept {
  if constexpr (kCompiledIn) {
    g_phase_sink.store(sink, std::memory_order_release);
  } else {
    (void)sink;
  }
}

PhaseStats* phase_sink() noexcept {
  if constexpr (kCompiledIn) {
    return g_phase_sink.load(std::memory_order_acquire);
  }
  return nullptr;
}

}  // namespace telemetry
}  // namespace bitspread
