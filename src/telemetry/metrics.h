// MetricsRegistry: named counters, gauges, and fixed-bucket histograms with
// thread-local shards merged on read.
//
// Designed for the WorkerPool fan-out pattern (sim/parallel.h): each thread
// writes to its own shard, so concurrent increments never contend on a shared
// cache line and never tear (shard slots are relaxed atomics — a snapshot
// taken after a pool run() returns sees every increment exactly once,
// because run()'s join is a happens-before). The registry performs NO
// randomness and holds NO simulation state: attaching or detaching it cannot
// change any RunResult (tested).
//
// Handles (Counter/Gauge/Histogram) are cheap value types that keep the
// underlying storage alive; metric names are unique per registry, and
// re-requesting a name returns a handle to the same metric.
#ifndef BITSPREAD_TELEMETRY_METRICS_H_
#define BITSPREAD_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace bitspread {

struct MetricsRegistryCore;

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Process-wide registry (engine probes and example binaries default to
  // it). Prefer a locally owned registry when isolation matters (tests,
  // OutcomeLedger).
  static MetricsRegistry& global();

  class Counter {
   public:
    Counter() = default;
    // Adds `delta` to this thread's shard; never blocks other writers.
    void increment(std::uint64_t delta = 1) const;
    // Merged total across all shards (locks; not for hot paths).
    std::uint64_t value() const;

   private:
    friend class MetricsRegistry;
    Counter(std::shared_ptr<MetricsRegistryCore> core, std::size_t index)
        : core_(std::move(core)), index_(index) {}
    std::shared_ptr<MetricsRegistryCore> core_;
    std::size_t index_ = 0;
  };

  class Gauge {
   public:
    Gauge() = default;
    void set(double value) const;
    double value() const;

   private:
    friend class MetricsRegistry;
    Gauge(std::shared_ptr<MetricsRegistryCore> core, std::size_t index)
        : core_(std::move(core)), index_(index) {}
    std::shared_ptr<MetricsRegistryCore> core_;
    std::size_t index_ = 0;
  };

  class Histogram {
   public:
    Histogram() = default;
    // Counts `value` into the first bucket whose upper bound is >= value
    // (the last bucket is the +inf overflow); also accumulates sum/count.
    void observe(double value) const;
    std::uint64_t count() const;

   private:
    friend class MetricsRegistry;
    Histogram(std::shared_ptr<MetricsRegistryCore> core, std::size_t index)
        : core_(std::move(core)), index_(index) {}
    std::shared_ptr<MetricsRegistryCore> core_;
    std::size_t index_ = 0;
  };

  // Get-or-create by name. A histogram's bucket bounds are fixed at first
  // registration (strictly increasing finite upper bounds; an implicit +inf
  // overflow bucket is appended).
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name, std::vector<double> bounds);

  struct HistogramSnapshot {
    std::vector<double> bounds;        // Finite upper bounds.
    std::vector<std::uint64_t> counts; // bounds.size() + 1 (last = overflow).
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
  };

  // Merged view across every live thread shard plus retired threads.
  Snapshot snapshot() const;

  // Zeroes all metrics (definitions are kept).
  void reset();

 private:
  std::shared_ptr<MetricsRegistryCore> core_;
};

}  // namespace bitspread

#endif  // BITSPREAD_TELEMETRY_METRICS_H_
