// Per-round JSONL streaming: a RoundSink that turns the record_round()
// series into one JSON object per line, interleaving the trajectory X_t,
// the drift n·F_n(X_t/n) (when a bias callback is supplied by the caller —
// the telemetry layer never depends on analysis/), and per-phase nanosecond
// deltas read from the installed PhaseStats sink.
//
// Line schema (single line, no pretty-printing):
//   {"round":t,"ones":X,"n":n,"x":X/n,"drift":n*F(X/n)|null,
//    "phase_ns":{"round_step":...,...}}
//
// on_round() may arrive concurrently from pool workers when replicates run
// in parallel; a mutex serializes lines, so the file is always a valid
// JSONL document (lines may interleave across replicates — each line is
// self-describing). Like every telemetry sink, the stream reads counters
// and writes a file; it NEVER touches an RNG stream.
#ifndef BITSPREAD_TELEMETRY_JSONL_H_
#define BITSPREAD_TELEMETRY_JSONL_H_

#include <array>
#include <cstdint>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>

#include "telemetry/telemetry.h"

namespace bitspread {
namespace telemetry {

class RoundStream : public RoundSink {
 public:
  struct Options {
    // Emit one line per `stride` rounds (round % stride == 0). Round 0 (the
    // initial configuration) is always on-stride.
    std::uint64_t stride = 1;
    // Open in append mode instead of truncating — the resume path, so the
    // lines of the pre-interrupt segment survive.
    bool append = false;
  };

  // Opens `path` for writing (truncates). ok() reports open failure.
  explicit RoundStream(const std::string& path);
  RoundStream(const std::string& path, Options options);

  bool ok() const { return static_cast<bool>(out_); }

  // Optional drift model: x ↦ F_n(x) on the density scale. The emitted
  // drift is n·F_n(X_t/n); without a bias the field is null. Set before
  // installing (not thread-safe against concurrent on_round).
  void set_bias(std::function<double(double)> bias) {
    bias_ = std::move(bias);
  }

  void on_round(std::uint64_t round, std::uint64_t ones,
                std::uint64_t n) override;

  // Quiescent-read accounting: rounds_seen() counts every on_round() call,
  // lines() the subset that passed the stride filter and was written.
  std::uint64_t rounds_seen() const { return rounds_seen_; }
  std::uint64_t lines() const { return lines_; }

  // Seeds the counters from a snapshot when resuming onto an appended file,
  // so accounting spans both run segments. Call before installing.
  void restore_counts(std::uint64_t rounds_seen, std::uint64_t lines) {
    rounds_seen_ = rounds_seen;
    lines_ = lines;
  }

  // Flushes the underlying file; false on I/O failure.
  bool flush();

 private:
  const std::uint64_t stride_;
  std::function<double(double)> bias_;
  std::mutex mutex_;
  std::ofstream out_;
  std::uint64_t rounds_seen_ = 0;
  std::uint64_t lines_ = 0;
  // Last-emitted per-phase totals, for delta reporting.
  std::array<std::uint64_t, kPhaseCount> last_phase_ns_{};
};

}  // namespace telemetry
}  // namespace bitspread

#endif  // BITSPREAD_TELEMETRY_JSONL_H_
