#include "markov/dense_chain.h"

#include <cassert>

#include "random/binomial.h"

namespace bitspread {

DenseParallelChain::DenseParallelChain(const MemorylessProtocol& protocol,
                                       std::uint64_t n, Opinion correct,
                                       std::uint64_t sources)
    : protocol_(&protocol), n_(n), correct_(correct), sources_(sources) {
  assert(n_ > 0 && sources_ <= n_);
}

std::vector<double> DenseParallelChain::transition_row(std::uint64_t x) const {
  assert(x >= min_state() && x <= max_state());
  const Configuration config{n_, x, correct_, sources_};
  const double p = config.fraction_ones();
  const double p1 = protocol_->aggregate_adoption(Opinion::kOne, p, n_);
  const double p0 = protocol_->aggregate_adoption(Opinion::kZero, p, n_);

  const std::uint64_t ones = config.non_source_ones();
  const std::uint64_t zeros = config.non_source_zeros();
  const std::vector<double> pmf_ones = binomial_pmf(ones, p1);
  const std::vector<double> pmf_zeros = binomial_pmf(zeros, p0);

  std::vector<double> row(state_count(), 0.0);
  const std::uint64_t base = config.source_ones();
  for (std::uint64_t i = 0; i <= ones; ++i) {
    if (pmf_ones[i] == 0.0) continue;
    for (std::uint64_t j = 0; j <= zeros; ++j) {
      const std::uint64_t next = base + i + j;
      row[next - min_state()] += pmf_ones[i] * pmf_zeros[j];
    }
  }
  return row;
}

double DenseParallelChain::row_mean(std::uint64_t x) const {
  const std::vector<double> row = transition_row(x);
  double mean = 0.0;
  for (std::size_t i = 0; i < row.size(); ++i) {
    mean += row[i] * static_cast<double>(min_state() + i);
  }
  return mean;
}

}  // namespace bitspread
