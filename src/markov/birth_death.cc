#include "markov/birth_death.h"

#include <cassert>

#include "markov/linalg.h"

namespace bitspread {

BirthDeathChain::BirthDeathChain(const MemorylessProtocol& protocol,
                                 std::uint64_t n, Opinion correct,
                                 std::uint64_t sources)
    : protocol_(&protocol), n_(n), correct_(correct), sources_(sources) {
  assert(n_ > sources_);
}

double BirthDeathChain::up(std::uint64_t x) const {
  const Configuration config{n_, x, correct_, sources_};
  assert(config.valid());
  const double pick_zero =
      static_cast<double>(config.non_source_zeros()) /
      static_cast<double>(n_ - sources_);
  const double adopt_one =
      protocol_->aggregate_adoption(Opinion::kZero, config.fraction_ones(), n_);
  return pick_zero * adopt_one;
}

double BirthDeathChain::down(std::uint64_t x) const {
  const Configuration config{n_, x, correct_, sources_};
  assert(config.valid());
  const double pick_one = static_cast<double>(config.non_source_ones()) /
                          static_cast<double>(n_ - sources_);
  const double keep_one =
      protocol_->aggregate_adoption(Opinion::kOne, config.fraction_ones(), n_);
  return pick_one * (1.0 - keep_one);
}

std::vector<double> BirthDeathChain::expected_absorption_activations() const {
  // Unknowns: t(x) for every non-target state; t(target) = 0. The balance
  //   t(x) = 1 + up t(x+1) + down t(x-1) + (1 - up - down) t(x)
  // rearranges to: down t(x-1) - (up+down) t(x) + up t(x+1) = -1,
  // a tridiagonal system. Requires the target to be reachable from every
  // state (up > 0 below the target for z = 1), which holds for every
  // Prop.-3-compliant protocol.
  const std::uint64_t lo = min_state();
  const std::uint64_t hi = max_state();
  const std::uint64_t target = correct_consensus_state();
  assert(target == lo || target == hi);
  const std::size_t m = static_cast<std::size_t>(hi - lo);  // Non-target count.

  std::vector<double> lower(m, 0.0), diag(m, 0.0), upper(m, 0.0), rhs(m, -1.0);
  // Order unknowns by x ascending, skipping the target.
  std::size_t row = 0;
  for (std::uint64_t x = lo; x <= hi; ++x) {
    if (x == target) continue;
    const double u = up(x);
    const double d = down(x);
    diag[row] = -(u + d);
    // Neighbor x-1 (skip if it is the target: t = 0 contributes nothing).
    if (x > lo && x - 1 != target) lower[row] = d;
    if (x < hi && x + 1 != target) upper[row] = u;
    ++row;
  }

  const std::vector<double> t =
      solve_tridiagonal(std::move(lower), std::move(diag), std::move(upper),
                        std::move(rhs));

  std::vector<double> result(static_cast<std::size_t>(hi - lo) + 1, 0.0);
  row = 0;
  for (std::uint64_t x = lo; x <= hi; ++x) {
    if (x == target) continue;
    result[static_cast<std::size_t>(x - lo)] = t[row++];
  }
  return result;
}

}  // namespace bitspread
