// Hitting probabilities for absorbing chains: which absorbing set wins?
//
// For source-less consensus runs both consensuses absorb, and the interesting
// quantity is P(correct first | X_0 = x) — e.g. how big an initial majority
// 3-majority needs to win w.h.p. Solved exactly via (I - Q) h = R * 1_A.
#ifndef BITSPREAD_MARKOV_HITTING_H_
#define BITSPREAD_MARKOV_HITTING_H_

#include <functional>
#include <vector>

#include "markov/dense_chain.h"

namespace bitspread {

// Probability, from each state, of being absorbed in `target` (a subset of
// `absorbing`) rather than in the other absorbing states. States in `target`
// get 1, other absorbing states 0. The chain must reach `absorbing`
// eventually from every transient state.
std::vector<double> hitting_probabilities(
    std::size_t state_count,
    const std::function<std::vector<double>(std::size_t)>& row,
    const std::vector<bool>& absorbing, const std::vector<bool>& target);

// Source-less convenience: probability that a dense chain built with
// sources = 0 reaches the all-ones consensus before all-zeros, from each
// state. Requires a Prop.-3-compliant protocol (both consensuses absorbing).
std::vector<double> consensus_one_probabilities(const DenseParallelChain& chain);

}  // namespace bitspread

#endif  // BITSPREAD_MARKOV_HITTING_H_
