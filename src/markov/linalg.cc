#include "markov/linalg.h"

#include <cassert>
#include <cmath>

namespace bitspread {

Matrix Matrix::identity(std::size_t size) {
  Matrix m(size, size);
  for (std::size_t i = 0; i < size; ++i) m.at(i, i) = 1.0;
  return m;
}

std::vector<double> solve_linear_system(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  assert(a.cols() == n);
  assert(b.size() == n);

  // Forward elimination with partial pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(a.at(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double candidate = std::abs(a.at(r, col));
      if (candidate > best) {
        best = candidate;
        pivot = r;
      }
    }
    assert(best > 0.0 && "singular matrix");
    if (pivot != col) {
      for (std::size_t c = col; c < n; ++c) {
        std::swap(a.at(col, c), a.at(pivot, c));
      }
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a.at(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a.at(r, col) * inv;
      if (factor == 0.0) continue;
      a.at(r, col) = 0.0;
      for (std::size_t c = col + 1; c < n; ++c) {
        a.at(r, c) -= factor * a.at(col, c);
      }
      b[r] -= factor * b[col];
    }
  }

  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= a.at(i, c) * x[c];
    x[i] = acc / a.at(i, i);
  }
  return x;
}

std::vector<double> solve_tridiagonal(std::vector<double> lower,
                                      std::vector<double> diag,
                                      std::vector<double> upper,
                                      std::vector<double> rhs) {
  const std::size_t n = diag.size();
  assert(lower.size() == n && upper.size() == n && rhs.size() == n);
  assert(n > 0);

  for (std::size_t i = 1; i < n; ++i) {
    assert(diag[i - 1] != 0.0);
    const double w = lower[i] / diag[i - 1];
    diag[i] -= w * upper[i - 1];
    rhs[i] -= w * rhs[i - 1];
  }
  std::vector<double> x(n);
  assert(diag[n - 1] != 0.0);
  x[n - 1] = rhs[n - 1] / diag[n - 1];
  for (std::size_t i = n - 1; i-- > 0;) {
    x[i] = (rhs[i] - upper[i] * x[i + 1]) / diag[i];
  }
  return x;
}

}  // namespace bitspread
