// The exact parallel-round Markov chain on X_t, in dense form.
//
// For a memory-less protocol the parallel dynamics is the chain
//   X' = [z sources] + Bin(#ns-ones, P_1(x/n)) + Bin(#ns-zeros, P_0(x/n)),
// so row x of the transition matrix is the convolution of two binomial pmfs.
// Building the full matrix costs O(n^3); it is meant for small n (<= ~300),
// where it provides ground truth for the simulation engines and exact
// expected absorption times (E10, E11).
#ifndef BITSPREAD_MARKOV_DENSE_CHAIN_H_
#define BITSPREAD_MARKOV_DENSE_CHAIN_H_

#include <cstdint>
#include <vector>

#include "core/configuration.h"
#include "core/protocol.h"

namespace bitspread {

class DenseParallelChain {
 public:
  // States are x = ones counts in [min_state(), max_state()] (the range the
  // sources permit).
  DenseParallelChain(const MemorylessProtocol& protocol, std::uint64_t n,
                     Opinion correct, std::uint64_t sources = 1);

  std::uint64_t n() const noexcept { return n_; }
  Opinion correct() const noexcept { return correct_; }
  std::uint64_t sources() const noexcept { return sources_; }

  std::uint64_t min_state() const noexcept {
    return correct_ == Opinion::kOne ? sources_ : 0;
  }
  std::uint64_t max_state() const noexcept {
    return correct_ == Opinion::kOne ? n_ : n_ - sources_;
  }
  std::size_t state_count() const noexcept {
    return static_cast<std::size_t>(max_state() - min_state()) + 1;
  }

  // Distribution of X_{t+1} given X_t = x, as a dense vector indexed by
  // x' - min_state(). Exact (up to double round-off); sums to 1.
  std::vector<double> transition_row(std::uint64_t x) const;

  // E[X_{t+1} | X_t = x] from the exact row (tests compare this against
  // core/problem.h's closed form and Proposition 5).
  double row_mean(std::uint64_t x) const;

  // The target absorbing state index (correct consensus).
  std::uint64_t correct_consensus_state() const noexcept {
    return correct_ == Opinion::kOne ? n_ : 0;
  }

  const MemorylessProtocol& protocol() const noexcept { return *protocol_; }

 private:
  const MemorylessProtocol* protocol_;
  std::uint64_t n_;
  Opinion correct_;
  std::uint64_t sources_;
};

}  // namespace bitspread

#endif  // BITSPREAD_MARKOV_DENSE_CHAIN_H_
