// Quasi-stationary analysis: the shape and strength of the Theorem 1 trap.
//
// For a Case 1/2 protocol with constant l the chain spends an eternity near
// its stable mixed state before an exponentially rare fluctuation carries it
// to consensus. The quasi-stationary distribution (QSD) is the left Perron
// eigenvector of the transition matrix restricted to the transient states,
// and its eigenvalue lambda < 1 gives the escape rate: conditional on not
// having been absorbed, one more round absorbs with probability 1 - lambda,
// so the expected absorption time from quasi-stationarity is 1/(1 - lambda).
// bench_minority_trap (E17) uses this to show the censored cells of E2 hide
// genuinely exponential times.
#ifndef BITSPREAD_MARKOV_QUASI_STATIONARY_H_
#define BITSPREAD_MARKOV_QUASI_STATIONARY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "markov/dense_chain.h"

namespace bitspread {

struct QuasiStationary {
  // Distribution over state indices 0..state_count-1 (zero on absorbing
  // states), normalized to sum 1 over the transient states.
  std::vector<double> distribution;
  // Perron eigenvalue of the transient submatrix; escape rate = 1 - lambda.
  double lambda = 0.0;
  int iterations = 0;

  double expected_escape_rounds() const noexcept {
    return lambda < 1.0 ? 1.0 / (1.0 - lambda) : 0.0;
  }
  // Mean and standard deviation of the state under the QSD.
  double mean() const noexcept;
  double stddev() const noexcept;
};

// Power iteration of the transposed transient submatrix; `absorbing` flags
// which states are removed. Converges geometrically at the spectral-gap
// rate; `tolerance` is on the eigenvalue estimate between sweeps.
QuasiStationary quasi_stationary_distribution(
    std::size_t state_count,
    const std::function<std::vector<double>(std::size_t)>& row,
    const std::vector<bool>& absorbing, int max_iterations = 20000,
    double tolerance = 1e-13);

// Convenience for the dense parallel chain: absorbing = the correct
// consensus; indices are x - min_state().
QuasiStationary quasi_stationary_distribution(const DenseParallelChain& chain);

}  // namespace bitspread

#endif  // BITSPREAD_MARKOV_QUASI_STATIONARY_H_
