// Minimal dense linear algebra: just enough to solve the absorbing-chain
// systems (I - Q) t = b exactly, with no external dependency.
#ifndef BITSPREAD_MARKOV_LINALG_H_
#define BITSPREAD_MARKOV_LINALG_H_

#include <cstddef>
#include <vector>

namespace bitspread {

// Row-major dense matrix.
class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t size);

  double& at(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double at(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

// Solves A x = b by Gaussian elimination with partial pivoting. A must be
// square and nonsingular; returns the solution. O(n^3).
std::vector<double> solve_linear_system(Matrix a, std::vector<double> b);

// Solves the tridiagonal system with diagonals (lower, diag, upper) via the
// Thomas algorithm. lower[0] and upper[n-1] are ignored. O(n). Used by the
// sequential birth-death chain.
std::vector<double> solve_tridiagonal(std::vector<double> lower,
                                      std::vector<double> diag,
                                      std::vector<double> upper,
                                      std::vector<double> rhs);

}  // namespace bitspread

#endif  // BITSPREAD_MARKOV_LINALG_H_
