// Absorbing-chain solves: exact expected hitting times and hitting
// probabilities from the fundamental-matrix equations, for any dense chain.
#ifndef BITSPREAD_MARKOV_ABSORPTION_H_
#define BITSPREAD_MARKOV_ABSORPTION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "markov/dense_chain.h"

namespace bitspread {

// Expected number of rounds to reach any state in `absorbing` (indicator over
// state indices 0..row_count-1), starting from each state:
// solves (I - Q) t = 1 over the transient states. `row(i)` must return the
// full transition row of state i. States from which the absorbing set is
// unreachable make the system singular — callers must pass chains where the
// target is reachable from every transient state (true for every
// Prop.-3-compliant protocol with a source).
std::vector<double> expected_hitting_rounds(
    std::size_t state_count,
    const std::function<std::vector<double>(std::size_t)>& row,
    const std::vector<bool>& absorbing);

// Convenience for the dense parallel chain: expected rounds to reach the
// correct consensus from every state (indexed by x - min_state()).
std::vector<double> expected_convergence_rounds(const DenseParallelChain& chain);

}  // namespace bitspread

#endif  // BITSPREAD_MARKOV_ABSORPTION_H_
