#include "markov/propagation.h"

#include <cassert>
#include <cmath>

namespace bitspread {

std::vector<double> propagate(const DenseParallelChain& chain,
                              const std::vector<double>& mu) {
  const std::size_t count = chain.state_count();
  assert(mu.size() == count);
  std::vector<double> next(count, 0.0);
  for (std::size_t i = 0; i < count; ++i) {
    if (mu[i] == 0.0) continue;
    const std::vector<double> row =
        chain.transition_row(chain.min_state() + i);
    for (std::size_t j = 0; j < count; ++j) next[j] += mu[i] * row[j];
  }
  return next;
}

std::vector<double> distribution_after(const DenseParallelChain& chain,
                                       std::uint64_t x0,
                                       std::uint64_t rounds) {
  std::vector<double> mu(chain.state_count(), 0.0);
  assert(x0 >= chain.min_state() && x0 <= chain.max_state());
  mu[x0 - chain.min_state()] = 1.0;
  for (std::uint64_t t = 0; t < rounds; ++t) mu = propagate(chain, mu);
  return mu;
}

std::vector<double> convergence_cdf(const DenseParallelChain& chain,
                                    std::uint64_t x0, std::uint64_t horizon) {
  // The target is absorbing for Prop.-3-compliant protocols, so the mass
  // sitting on it IS P(tau <= t). (For non-compliant protocols the target
  // leaks and this function is not meaningful; callers check Prop. 3.)
  const std::size_t target =
      chain.correct_consensus_state() - chain.min_state();
  std::vector<double> mu(chain.state_count(), 0.0);
  mu[x0 - chain.min_state()] = 1.0;
  std::vector<double> cdf;
  cdf.reserve(horizon + 1);
  cdf.push_back(mu[target]);
  for (std::uint64_t t = 0; t < horizon; ++t) {
    mu = propagate(chain, mu);
    cdf.push_back(mu[target]);
  }
  return cdf;
}

double total_variation(const std::vector<double>& a,
                       const std::vector<double>& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::abs(a[i] - b[i]);
  return 0.5 * acc;
}

}  // namespace bitspread
