#include "markov/worst_case.h"

#include "markov/absorption.h"

namespace bitspread {

WorstInitialState worst_initial_state(const DenseParallelChain& chain) {
  const auto times = expected_convergence_rounds(chain);
  WorstInitialState worst;
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (times[i] > worst.expected_rounds) {
      worst.expected_rounds = times[i];
      worst.state = chain.min_state() + i;
    }
  }
  return worst;
}

}  // namespace bitspread
