// The exact sequential-setting chain: a birth-death chain on X.
//
// With one activation per step, X moves by at most one unit, whatever the
// protocol — the structural fact (paper §1, "Previous works") on which all
// sequential lower bounds of Becchetti et al. (IJCAI 2023) rest. Transition
// probabilities follow from one activation of engine/sequential.h:
//   up(x)   = P(pick a 0-agent) * P(it adopts 1)
//   down(x) = P(pick a 1-agent) * P(it adopts 0)
// with the sample count K ~ Bin(l, x/n). Expected absorption times solve a
// tridiagonal system in O(n).
#ifndef BITSPREAD_MARKOV_BIRTH_DEATH_H_
#define BITSPREAD_MARKOV_BIRTH_DEATH_H_

#include <cstdint>
#include <vector>

#include "core/configuration.h"
#include "core/protocol.h"

namespace bitspread {

class BirthDeathChain {
 public:
  BirthDeathChain(const MemorylessProtocol& protocol, std::uint64_t n,
                  Opinion correct, std::uint64_t sources = 1);

  std::uint64_t min_state() const noexcept {
    return correct_ == Opinion::kOne ? sources_ : 0;
  }
  std::uint64_t max_state() const noexcept {
    return correct_ == Opinion::kOne ? n_ : n_ - sources_;
  }

  // One-activation move probabilities from state x.
  double up(std::uint64_t x) const;
  double down(std::uint64_t x) const;

  // Expected number of ACTIVATIONS to reach the correct consensus, from each
  // state (indexed by x - min_state()). Divide by n for parallel rounds.
  // Requires a Prop.-3-compliant protocol (otherwise the consensus is not
  // absorbing and the question is ill-posed).
  std::vector<double> expected_absorption_activations() const;

  std::uint64_t n() const noexcept { return n_; }
  std::uint64_t correct_consensus_state() const noexcept {
    return correct_ == Opinion::kOne ? n_ : 0;
  }

 private:
  const MemorylessProtocol* protocol_;
  std::uint64_t n_;
  Opinion correct_;
  std::uint64_t sources_;
};

}  // namespace bitspread

#endif  // BITSPREAD_MARKOV_BIRTH_DEATH_H_
