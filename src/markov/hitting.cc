#include "markov/hitting.h"

#include <cassert>

#include "markov/linalg.h"

namespace bitspread {

std::vector<double> hitting_probabilities(
    std::size_t state_count,
    const std::function<std::vector<double>(std::size_t)>& row,
    const std::vector<bool>& absorbing, const std::vector<bool>& target) {
  assert(absorbing.size() == state_count);
  assert(target.size() == state_count);

  std::vector<std::size_t> transient_index(state_count, SIZE_MAX);
  std::vector<std::size_t> transient_states;
  for (std::size_t s = 0; s < state_count; ++s) {
    assert(!target[s] || absorbing[s]);
    if (!absorbing[s]) {
      transient_index[s] = transient_states.size();
      transient_states.push_back(s);
    }
  }
  const std::size_t m = transient_states.size();

  std::vector<double> probabilities(state_count, 0.0);
  for (std::size_t s = 0; s < state_count; ++s) {
    if (target[s]) probabilities[s] = 1.0;
  }
  if (m == 0) return probabilities;

  // (I - Q) h = R * 1_target.
  Matrix system(m, m, 0.0);
  std::vector<double> rhs(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const std::vector<double> r = row(transient_states[i]);
    assert(r.size() == state_count);
    system.at(i, i) = 1.0;
    for (std::size_t s = 0; s < state_count; ++s) {
      if (absorbing[s]) {
        if (target[s]) rhs[i] += r[s];
      } else {
        system.at(i, transient_index[s]) -= r[s];
      }
    }
  }
  const std::vector<double> h = solve_linear_system(std::move(system), rhs);
  for (std::size_t i = 0; i < m; ++i) {
    probabilities[transient_states[i]] = h[i];
  }
  return probabilities;
}

std::vector<double> consensus_one_probabilities(
    const DenseParallelChain& chain) {
  assert(chain.sources() == 0);
  const std::size_t count = chain.state_count();
  std::vector<bool> absorbing(count, false);
  std::vector<bool> target(count, false);
  absorbing.front() = true;  // x = 0.
  absorbing.back() = true;   // x = n.
  target.back() = true;
  return hitting_probabilities(
      count,
      [&chain](std::size_t i) {
        return chain.transition_row(chain.min_state() + i);
      },
      absorbing, target);
}

}  // namespace bitspread
