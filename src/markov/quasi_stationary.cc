#include "markov/quasi_stationary.h"

#include <cassert>
#include <cmath>
#include <functional>

namespace bitspread {

double QuasiStationary::mean() const noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < distribution.size(); ++i) {
    acc += distribution[i] * static_cast<double>(i);
  }
  return acc;
}

double QuasiStationary::stddev() const noexcept {
  const double m = mean();
  double acc = 0.0;
  for (std::size_t i = 0; i < distribution.size(); ++i) {
    const double d = static_cast<double>(i) - m;
    acc += distribution[i] * d * d;
  }
  return std::sqrt(acc);
}

QuasiStationary quasi_stationary_distribution(
    std::size_t state_count,
    const std::function<std::vector<double>(std::size_t)>& row,
    const std::vector<bool>& absorbing, int max_iterations, double tolerance) {
  assert(absorbing.size() == state_count);

  // Materialize the transient submatrix once (power iteration touches it
  // many times).
  std::vector<std::size_t> transient;
  std::vector<std::size_t> index(state_count, SIZE_MAX);
  for (std::size_t s = 0; s < state_count; ++s) {
    if (!absorbing[s]) {
      index[s] = transient.size();
      transient.push_back(s);
    }
  }
  const std::size_t m = transient.size();
  QuasiStationary result;
  result.distribution.assign(state_count, 0.0);
  if (m == 0) return result;

  std::vector<double> q(m * m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const std::vector<double> r = row(transient[i]);
    for (std::size_t s = 0; s < state_count; ++s) {
      if (!absorbing[s]) q[i * m + index[s]] = r[s];
    }
  }

  // Left eigenvector: v <- v Q, renormalized in L1; the normalization factor
  // converges to lambda.
  std::vector<double> v(m, 1.0 / static_cast<double>(m));
  std::vector<double> next(m, 0.0);
  double lambda_prev = 0.0;
  for (int iter = 0; iter < max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      const double vi = v[i];
      if (vi == 0.0) continue;
      const double* qi = &q[i * m];
      for (std::size_t j = 0; j < m; ++j) next[j] += vi * qi[j];
    }
    double mass = 0.0;
    for (const double x : next) mass += x;
    assert(mass > 0.0);
    for (std::size_t j = 0; j < m; ++j) v[j] = next[j] / mass;
    result.iterations = iter + 1;
    if (std::abs(mass - lambda_prev) < tolerance) {
      result.lambda = mass;
      break;
    }
    lambda_prev = mass;
    result.lambda = mass;
  }
  for (std::size_t i = 0; i < m; ++i) result.distribution[transient[i]] = v[i];
  return result;
}

QuasiStationary quasi_stationary_distribution(
    const DenseParallelChain& chain) {
  const std::size_t count = chain.state_count();
  std::vector<bool> absorbing(count, false);
  absorbing[chain.correct_consensus_state() - chain.min_state()] = true;
  return quasi_stationary_distribution(
      count,
      [&chain](std::size_t i) {
        return chain.transition_row(chain.min_state() + i);
      },
      absorbing);
}

}  // namespace bitspread
