// Adversarial initial-state search.
//
// Self-stabilization quantifies over initial configurations; for small n the
// dense chain lets us find the TRUE worst start exactly — argmax over x of
// the expected convergence time — instead of guessing (all-wrong, balanced,
// ...). Used by tests and by experiment setup sanity checks.
#ifndef BITSPREAD_MARKOV_WORST_CASE_H_
#define BITSPREAD_MARKOV_WORST_CASE_H_

#include <cstdint>

#include "markov/dense_chain.h"

namespace bitspread {

struct WorstInitialState {
  std::uint64_t state = 0;       // The x with maximal expected time.
  double expected_rounds = 0.0;  // Its exact expected convergence time.
};

WorstInitialState worst_initial_state(const DenseParallelChain& chain);

}  // namespace bitspread

#endif  // BITSPREAD_MARKOV_WORST_CASE_H_
