// Exact distribution propagation: evolve the full law of X_t round by round.
//
// For small n the dense chain lets us compute the exact distribution of X_t
// and hence the exact CDF of the convergence time, P(tau <= t) — turning
// "w.h.p." statements into computable numbers instead of sampled estimates
// (used by tests and bench_exact_vs_sim's tail checks).
#ifndef BITSPREAD_MARKOV_PROPAGATION_H_
#define BITSPREAD_MARKOV_PROPAGATION_H_

#include <cstdint>
#include <vector>

#include "markov/dense_chain.h"

namespace bitspread {

// One exact round: mu' = mu P. `mu` is indexed by x - min_state().
std::vector<double> propagate(const DenseParallelChain& chain,
                              const std::vector<double>& mu);

// The law of X_t after `rounds` rounds from the point mass at x0.
std::vector<double> distribution_after(const DenseParallelChain& chain,
                                       std::uint64_t x0, std::uint64_t rounds);

// Exact convergence-time CDF: entry t is P(tau <= t | X_0 = x0), for
// t = 0..horizon, where tau is the first hit of the correct consensus.
std::vector<double> convergence_cdf(const DenseParallelChain& chain,
                                    std::uint64_t x0, std::uint64_t horizon);

// Total variation distance between two distributions on the same support.
double total_variation(const std::vector<double>& a,
                       const std::vector<double>& b);

}  // namespace bitspread

#endif  // BITSPREAD_MARKOV_PROPAGATION_H_
