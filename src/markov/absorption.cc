#include "markov/absorption.h"

#include <cassert>

#include "markov/linalg.h"

namespace bitspread {

std::vector<double> expected_hitting_rounds(
    std::size_t state_count,
    const std::function<std::vector<double>(std::size_t)>& row,
    const std::vector<bool>& absorbing) {
  assert(absorbing.size() == state_count);

  // Index map: transient states only.
  std::vector<std::size_t> transient_index(state_count, SIZE_MAX);
  std::vector<std::size_t> transient_states;
  for (std::size_t s = 0; s < state_count; ++s) {
    if (!absorbing[s]) {
      transient_index[s] = transient_states.size();
      transient_states.push_back(s);
    }
  }
  const std::size_t m = transient_states.size();

  std::vector<double> times(state_count, 0.0);
  if (m == 0) return times;

  Matrix system(m, m, 0.0);
  std::vector<double> rhs(m, 1.0);
  for (std::size_t i = 0; i < m; ++i) {
    const std::vector<double> r = row(transient_states[i]);
    assert(r.size() == state_count);
    system.at(i, i) = 1.0;
    for (std::size_t s = 0; s < state_count; ++s) {
      if (absorbing[s]) continue;
      system.at(i, transient_index[s]) -= r[s];
    }
  }
  const std::vector<double> t = solve_linear_system(std::move(system), rhs);
  for (std::size_t i = 0; i < m; ++i) times[transient_states[i]] = t[i];
  return times;
}

std::vector<double> expected_convergence_rounds(
    const DenseParallelChain& chain) {
  const std::size_t count = chain.state_count();
  std::vector<bool> absorbing(count, false);
  absorbing[chain.correct_consensus_state() - chain.min_state()] = true;
  return expected_hitting_rounds(
      count,
      [&chain](std::size_t i) {
        return chain.transition_row(chain.min_state() + i);
      },
      absorbing);
}

}  // namespace bitspread
