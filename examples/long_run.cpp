// Long-running deterministic driver for the crash-recovery harness
// (tools/crash_harness.py).
//
// One sharded-engine run whose semantic payload is a pure function of the
// command line: minority with constant l stalls (Theorem 1), so the run
// deterministically reaches the round cap — long enough to kill -9 at a
// randomized round and resume from the snapshot ring. On a completed run the
// last stdout line is machine-readable:
//
//   LONGRUN {"digest":"0x...","reason":"round-limit","ticks":4000}
//
// The digest is snapshot::payload_digest over (reason, ticks, final
// configuration, recovery segments); the harness asserts it is identical
// between an uninterrupted run and any interrupted-then-resumed chain.
//
//   $ ./long_run --n=16384 --rounds=4000 --run-seed=7 --threads=4
//       --checkpoint-out=/tmp/ring --checkpoint-every=64 [--resume=auto]
//
// Options (checkpoint/trace flags come via parse_example_options):
//   --n=<agents>      population size            (default 16384)
//   --rounds=<cap>    round cap                  (default 4000)
//   --run-seed=<u64>  master seed                (default 7)
//   --ell=<l>         minority sample size       (default 3; stalls per Thm 1)
//   --threads=<t>     worker threads             (default 0 = hardware)
//   --shards=<s>      scheduling shards          (default 0 = per block)
//   --kernel=<name>   auto|legacy|scalar         (default auto)
//   --flip-at=<r>     fault run: source flip at round r (0 = fault-free)
// An interrupted run (SIGINT/SIGTERM) prints LONGRUN-INTERRUPTED and exits
// with status 3 so callers can tell "stopped to resume later" from "done".
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/init.h"
#include "engine/sharded.h"
#include "faults/environment.h"
#include "protocols/minority.h"
#include "sim/cli.h"
#include "snapshot/state.h"

int main(int argc, char** argv) {
  using namespace bitspread;

  std::uint64_t n = 1 << 14;
  std::uint64_t rounds = 4000;
  std::uint64_t seed = 7;
  std::uint32_t ell = 3;
  unsigned threads = 0;
  std::uint32_t shards = 0;
  std::uint64_t flip_at = 0;
  kernel::Backend backend = kernel::Backend::kAuto;

  // Split our flags from the shared telemetry/checkpoint flags so
  // parse_example_options never warns about ours.
  std::vector<char*> shared{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--n=", 0) == 0) {
      n = std::strtoull(arg.c_str() + 4, nullptr, 0);
    } else if (arg.rfind("--rounds=", 0) == 0) {
      rounds = std::strtoull(arg.c_str() + 9, nullptr, 0);
    } else if (arg.rfind("--run-seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 11, nullptr, 0);
    } else if (arg.rfind("--ell=", 0) == 0) {
      ell = static_cast<std::uint32_t>(
          std::strtoul(arg.c_str() + 6, nullptr, 0));
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads =
          static_cast<unsigned>(std::strtoul(arg.c_str() + 10, nullptr, 0));
    } else if (arg.rfind("--shards=", 0) == 0) {
      shards = static_cast<std::uint32_t>(
          std::strtoul(arg.c_str() + 9, nullptr, 0));
    } else if (arg.rfind("--flip-at=", 0) == 0) {
      flip_at = std::strtoull(arg.c_str() + 10, nullptr, 0);
    } else if (arg.rfind("--kernel=", 0) == 0) {
      const std::string name = arg.substr(9);
      backend = name == "legacy"   ? kernel::Backend::kLegacy
                : name == "scalar" ? kernel::Backend::kScalarWord
                                   : kernel::Backend::kAuto;
    } else {
      shared.push_back(argv[i]);
    }
  }

  const ExampleTelemetryScope telemetry_scope(parse_example_options(
      static_cast<int>(shared.size()), shared.data()));

  const MinorityDynamics minority(ell);
  ShardedEngineOptions options;
  options.threads = threads;
  options.shards = shards;
  options.kernel = backend;
  const ShardedAgentEngine engine(minority, options);

  // Balanced adversarial start: constant-l minority hovers near n/2 forever
  // (Theorem 1), so fault-free runs are censored at exactly `rounds`.
  const Configuration init = init_fraction_ones(n, Opinion::kOne, 0.5);
  StopRule rule;
  rule.max_rounds = rounds;

  RunResult result;
  if (flip_at != 0) {
    EnvironmentModel faults;
    faults.source_flip_rounds = {flip_at};
    result = engine.run(init, rule, faults, seed);
  } else {
    result = engine.run(init, rule, seed);
  }

  if (result.reason == StopReason::kInterrupted) {
    std::printf("LONGRUN-INTERRUPTED {\"ticks\":%llu}\n",
                static_cast<unsigned long long>(result.ticks));
    return 3;
  }
  std::printf("LONGRUN {\"digest\":\"0x%016llx\",\"reason\":\"%s\","
              "\"ticks\":%llu,\"ones\":%llu}\n",
              static_cast<unsigned long long>(
                  snapshot::payload_digest(result)),
              to_string(result.reason).c_str(),
              static_cast<unsigned long long>(result.ticks),
              static_cast<unsigned long long>(result.final_config.ones));
  return 0;
}
