// Design-your-own-protocol walkthrough: the analysis API.
//
// Theorem 1 quantifies over EVERY memory-less protocol with constant sample
// size. This example shows how the library lets you probe an arbitrary
// candidate g-table the same way the proof does:
//   1. check Proposition 3 (can it even maintain consensus?);
//   2. build the bias polynomial F_n (Eq. 3) and find its roots in [0,1];
//   3. classify the Case 1 / Case 2 structure (§4.2, Figures 2-3) to learn
//      the adversarial correct opinion and starting point;
//   4. verify the Theorem 6 assumptions and get the predicted n^{1-eps}
//      crossing floor;
//   5. simulate from exactly that adversarial configuration and watch the
//      prediction hold.
//
//   $ ./design_your_protocol [--trace] [--metrics-out <path>]
#include <cstdio>

#include "analysis/bias.h"
#include "analysis/cases.h"
#include "analysis/theorem6.h"
#include "core/problem.h"
#include "engine/aggregate.h"
#include "protocols/custom.h"
#include "sim/cli.h"

int main(int argc, char** argv) {
  using namespace bitspread;

  const ExampleTelemetryScope telemetry_scope(
      parse_example_options(argc, argv));

  // A hand-crafted "cautious switcher" with l = 4: an agent holding 0 needs
  // to see at least three ones to adopt 1, while an agent holding 1 gives up
  // unless it sees at least two. Is it a contender for bit-dissemination?
  const CustomProtocol protocol(
      /*g_zero=*/{0.0, 0.0, 0.2, 0.8, 1.0},
      /*g_one=*/{0.0, 0.3, 0.9, 1.0, 1.0},
      "cautious-switcher");
  constexpr std::uint64_t kAgents = 1 << 16;

  std::printf("protocol: %s, l = %u, n = %llu\n\n", protocol.name().c_str(),
              protocol.ell(), static_cast<unsigned long long>(kAgents));

  // 1. Proposition 3.
  const auto violations = proposition3_violations(protocol, kAgents);
  if (!violations.empty()) {
    for (const auto& v : violations) std::printf("REJECTED: %s\n", v.c_str());
    return 1;
  }
  std::printf("Proposition 3: ok (g[0](0) = 0, g[1](l) = 1)\n");

  // 2. The bias polynomial and its roots.
  const BiasFunction bias(protocol, kAgents);
  const Polynomial f = bias.to_polynomial();
  std::printf("bias F_n(p)  = %s\n", f.to_string().c_str());
  std::printf("roots in [0,1]:");
  for (const double r : bias.roots()) std::printf(" %.4f", r);
  std::printf("\n");

  // 3. Case classification.
  const CaseAnalysis analysis = classify_bias(protocol, kAgents);
  std::printf("classification: %s on (%.4f, %.4f)\n",
              to_string(analysis.bias_case).c_str(), analysis.interval_lo,
              analysis.interval_hi);
  std::printf("adversarial choice: correct opinion z = %d, start X0/n = %.4f"
              ", watched interval a1 = %.3f, a3 = %.3f\n",
              to_int(analysis.slow_correct), analysis.x0_fraction,
              analysis.a1, analysis.a3);

  // 4. Theorem 6 assumptions and the predicted floor.
  const double epsilon = 0.4;
  const Theorem6Report report =
      check_theorem6(protocol, kAgents, analysis, epsilon);
  std::printf("theorem 6 check: %s\n", report.describe().c_str());
  if (!report.drift_ok) {
    std::printf("assumptions not verified; no floor predicted\n");
    return 1;
  }

  // 5. Simulate from the adversarial configuration.
  const AggregateParallelEngine engine(protocol);
  Rng rng(99);
  StopRule rule;
  rule.max_rounds = static_cast<std::uint64_t>(report.predicted_floor);
  const auto bound = [&](double fraction) {
    return static_cast<std::uint64_t>(fraction *
                                      static_cast<double>(kAgents));
  };
  if (analysis.upward) {
    rule.interval_hi = bound(analysis.a3);
  } else {
    rule.interval_lo = bound(analysis.a1);
  }
  const Configuration start{kAgents, bound(analysis.x0_fraction),
                            analysis.slow_correct};
  const RunResult result = engine.run(start, rule, rng);
  std::printf(
      "simulation: started at X0 = %llu, ran %llu rounds, outcome = %s\n",
      static_cast<unsigned long long>(start.ones),
      static_cast<unsigned long long>(result.rounds()),
      to_string(result.reason).c_str());
  std::printf(result.censored()
                  ? "as predicted: the dynamics did NOT cross the interval "
                    "within n^{1-eps} = %.0f rounds\n"
                  : "crossed before the floor (probability o(1) event, or "
                    "assumptions were marginal): %.0f\n",
              report.predicted_floor);
  return 0;
}
