// Quickstart: the smallest end-to-end use of the library.
//
// Build a population of one million agents, let a single informed source
// hold the correct opinion, start everyone else on the WRONG opinion, and
// watch the minority dynamics with sample size sqrt(n ln n) drive the whole
// group to the correct consensus in a few dozen synchronous rounds — the
// regime of Becchetti et al. (SODA 2024) that motivates the paper's question.
//
//   $ ./quickstart [--trace] [--metrics-out <path>]
#include <cstdio>

#include "core/init.h"
#include "engine/aggregate.h"
#include "protocols/minority.h"
#include "sim/cli.h"

int main(int argc, char** argv) {
  using namespace bitspread;

  const ExampleTelemetryScope telemetry_scope(
      parse_example_options(argc, argv));
  constexpr std::uint64_t kAgents = 1'000'000;

  // The protocol: adopt the minority opinion of a random sample (ties are a
  // coin flip; a unanimous sample is adopted as-is).
  const MinorityDynamics protocol(SampleSizePolicy::sqrt_n_log_n());
  std::printf("protocol    : %s\n", protocol.name().c_str());
  std::printf("sample size : %u (for n = %llu)\n",
              protocol.sample_size(kAgents),
              static_cast<unsigned long long>(kAgents));

  // Adversarial start: every non-source agent holds the wrong opinion.
  const Configuration start = init_all_wrong(kAgents, Opinion::kOne);
  std::printf("start       : %llu of %llu agents hold the correct opinion\n",
              static_cast<unsigned long long>(start.ones),
              static_cast<unsigned long long>(start.n));

  // Run the exact aggregate engine until consensus, recording X_t.
  const AggregateParallelEngine engine(protocol);
  Rng rng(/*seed=*/2024);
  StopRule rule;
  rule.max_rounds = 10'000;
  Trajectory trajectory;
  const RunResult result = engine.run(start, rule, rng, &trajectory);

  for (const auto& point : trajectory.points()) {
    std::printf("  round %3llu : %9llu ones (%.1f%%)\n",
                static_cast<unsigned long long>(point.round),
                static_cast<unsigned long long>(point.ones),
                100.0 * static_cast<double>(point.ones) /
                    static_cast<double>(kAgents));
  }

  if (result.converged()) {
    std::printf("converged to the correct opinion in %llu rounds\n",
                static_cast<unsigned long long>(result.rounds()));
    return 0;
  }
  std::printf("did not converge (%s)\n", to_string(result.reason).c_str());
  return 1;
}
