// Sample-size explorer: the paper's open question, interactively.
//
// "What is the minimal sample size for which the minority dynamics converges
// in poly-logarithmic time?" (paper §1). The lower bound says constant l is
// hopeless; the upper bound needs l = sqrt(n ln n). This example sweeps l at
// a fixed population and prints where fast convergence empirically kicks in
// from the hardest start. (bench_minority_ell_sweep runs the full-scale
// version across several n.)
//
//   $ ./sample_size_explorer [n_log2] [--trace] [--metrics-out <path>]
//                                           (default n = 2^14)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/init.h"
#include "stats/quantiles.h"
#include "engine/aggregate.h"
#include "protocols/minority.h"
#include "sim/cli.h"
#include "sim/experiment.h"
#include "sim/table.h"

int main(int argc, char** argv) {
  using namespace bitspread;

  const ExampleTelemetryScope telemetry_scope(
      parse_example_options(argc, argv));
  const int log2_n =
      argc > 1 && argv[1][0] != '-' ? std::atoi(argv[1]) : 14;
  const std::uint64_t n = std::uint64_t{1} << log2_n;
  constexpr int kReplicates = 10;
  const SeedSequence seeds(11);

  const double sqrt_n_log_n =
      std::sqrt(static_cast<double>(n) * std::log(static_cast<double>(n)));
  std::printf("minority dynamics, n = %llu (sqrt(n ln n) = %.0f), "
              "start = all-wrong, z = 1\n\n",
              static_cast<unsigned long long>(n), sqrt_n_log_n);

  std::vector<std::uint32_t> ells{3, 7, 15, 31};
  for (double frac : {0.05, 0.1, 0.25, 0.5, 1.0}) {
    ells.push_back(static_cast<std::uint32_t>(frac * sqrt_n_log_n));
  }

  Table table({"l", "l/sqrt(n ln n)", "solved", "mean rounds", "median"});
  std::uint64_t cell = 0;
  for (const std::uint32_t ell : ells) {
    const MinorityDynamics protocol(ell);
    const AggregateParallelEngine engine(protocol);
    const Configuration init = init_all_wrong(n, Opinion::kOne);
    StopRule rule;
    rule.max_rounds = 5'000;
    const auto runner = [&](Rng& rng) { return engine.run(init, rule, rng); };
    const ConvergenceMeasurement m =
        measure_convergence(runner, seeds, cell++, kReplicates);
    table.add_row(
        {std::to_string(ell),
         Table::fmt(static_cast<double>(ell) / sqrt_n_log_n, 3),
         std::to_string(m.converged) + "/" + std::to_string(kReplicates),
         m.converged > 0 ? Table::fmt(m.rounds.mean(), 1) : "-",
         m.converged > 0 ? Table::fmt(median(m.round_samples), 1) : "-"});
  }
  table.print(std::cout);
  std::printf(
      "\nThe transition from 'stalls' to 'a few dozen rounds' is the open "
      "question's\nterritory: the paper proves l = O(1) stalls and "
      "l = sqrt(n ln n) flies, with\nnothing known in between.\n");
  return 0;
}
