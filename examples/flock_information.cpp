// Flock scenario: the biological motivation from the paper's introduction.
//
// Field studies (Ballerini et al. 2008) found that a bird in a flock attends
// to its ~7 nearest neighbors regardless of flock size — a CONSTANT sample
// size. Suppose one bird spots a predator and "knows" the correct direction
// (the source), while the flock has no memory from one decision to the next.
// Theorem 1 then says: no behavioral rule whatsoever can propagate that
// information to the whole flock quickly. This example makes the theorem
// tangible: it sweeps candidate rules at l = 7 over growing flock sizes and
// prints how far the information actually gets within a realistic number of
// decision rounds.
//
//   $ ./flock_information [--trace] [--metrics-out <path>]
#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/mean_field.h"
#include "core/init.h"
#include "engine/aggregate.h"
#include "protocols/custom.h"
#include "protocols/majority.h"
#include "protocols/minority.h"
#include "protocols/voter.h"
#include "sim/cli.h"
#include "sim/table.h"

int main(int argc, char** argv) {
  using namespace bitspread;

  const ExampleTelemetryScope telemetry_scope(
      parse_example_options(argc, argv));
  constexpr std::uint32_t kNeighbors = 7;
  constexpr std::uint64_t kRounds = 2000;  // Generous decision budget.

  const VoterDynamics voter(kNeighbors);
  const MinorityDynamics minority(kNeighbors);
  const MajorityDynamics majority(kNeighbors,
                                  MajorityDynamics::TieBreak::kKeepOwn);
  // A biologically plausible "quorum" rule: switch toward 1 only if a clear
  // super-majority of neighbors shows it (cf. quorum sensing in the intro).
  const CustomProtocol quorum(
      /*g_zero=*/{0.0, 0.0, 0.0, 0.0, 0.0, 0.8, 1.0, 1.0},
      /*g_one=*/{0.0, 0.0, 0.2, 1.0, 1.0, 1.0, 1.0, 1.0}, "quorum");

  const std::vector<const MemorylessProtocol*> rules{&voter, &minority,
                                                     &majority, &quorum};

  std::printf("one informed bird, %u observed neighbors, %llu decision "
              "rounds, flock starts on the wrong heading\n\n",
              kNeighbors, static_cast<unsigned long long>(kRounds));

  Table table({"rule", "flock size", "informed fraction reached",
               "consensus?", "mean-field fixed points"});
  OutcomeLedger ledger;
  for (const MemorylessProtocol* rule : rules) {
    for (const std::uint64_t flock : {200ULL, 2000ULL, 20000ULL}) {
      const AggregateParallelEngine engine(*rule);
      Rng rng(31 + flock);
      StopRule stop;
      stop.max_rounds = kRounds;
      const RunResult result =
          engine.run(init_all_wrong(flock, Opinion::kOne), stop, rng);
      ledger.add_run(result);

      std::string fps;
      const MeanFieldMap map(*rule, flock);
      for (const FixedPoint& fp : map.fixed_points()) {
        fps += Table::fmt(fp.p, 2) + "(" +
               to_string(fp.stability).substr(0, 1) + ") ";
      }
      table.add_row(
          {rule->name(), Table::fmt(flock),
           Table::fmt(result.final_config.fraction_ones(), 3),
           result.converged() ? "yes" : "no", fps});
    }
  }
  table.print(std::cout);
  std::cout << '\n';
  ledger.report(std::cout);
  std::printf(
      "\n(s) = stable, (u) = unstable, (m) = marginal fixed point of the "
      "mean-field map.\nThe informed bird's heading does not take over any "
      "large flock within the budget:\nwith 7-neighbor sampling and no "
      "memory this needs ~flock-size rounds (Theorem 1),\nregardless of the "
      "rule. Fast spreading requires either growing samples\n"
      "(sqrt(n log n) — implausible for birds) or a little memory "
      "(trend-following,\nsee bench_memory_extension).\n");
  return ledger.exit_status();
}
