// Bit-dissemination stress demo: race several dynamics on the same
// self-stabilization task and see who actually solves it.
//
// The task (paper §1.1): one source knows the correct opinion; everyone else
// must adopt it, from an initial configuration chosen adversarially. We run
// each protocol from three adversarial starts (all wrong, balanced, wrong
// majority) and both source opinions, and report convergence rates and
// times. The output shows the paper's landscape at a glance:
//   * Voter solves the problem but needs ~n log n rounds (Theorem 2);
//   * Minority with l = sqrt(n ln n) solves it in polylog rounds ([15]);
//   * Minority with constant l stalls (Theorem 1);
//   * Majority is fast but WRONG from a wrong-majority start (§1).
//
//   $ ./bit_dissemination [--trace] [--metrics-out <path>]
#include <cstdio>
#include <functional>
#include <iostream>
#include <vector>

#include "core/init.h"
#include "engine/aggregate.h"
#include "protocols/majority.h"
#include "protocols/minority.h"
#include "protocols/voter.h"
#include "sim/cli.h"
#include "sim/experiment.h"
#include "sim/table.h"

int main(int argc, char** argv) {
  using namespace bitspread;

  const ExampleTelemetryScope telemetry_scope(
      parse_example_options(argc, argv));
  constexpr std::uint64_t kAgents = 1 << 14;
  constexpr int kReplicates = 10;
  const SeedSequence seeds(7);

  const VoterDynamics voter;
  const MinorityDynamics minority_big(SampleSizePolicy::sqrt_n_log_n());
  const MinorityDynamics minority_small(3);
  const MajorityDynamics majority(5, MajorityDynamics::TieBreak::kKeepOwn);
  // Per-protocol round caps: Voter needs ~n log n rounds to finish, the
  // others either finish in polylog rounds or will not finish at all.
  const std::vector<std::pair<const MemorylessProtocol*, std::uint64_t>>
      protocols{{&voter, 600'000},
                {&minority_big, 20'000},
                {&minority_small, 20'000},
                {&majority, 20'000}};

  struct Start {
    const char* label;
    double fraction_correct;
  };
  const std::vector<Start> starts{
      {"all-wrong", 0.0}, {"balanced", 0.5}, {"wrong-majority", 0.25}};

  Table table({"protocol", "start", "z", "solved", "mean rounds", "note"});
  OutcomeLedger ledger;
  std::uint64_t cell = 0;
  for (const auto& [protocol, cap] : protocols) {
    const AggregateParallelEngine engine(*protocol);
    for (const Start& start : starts) {
      for (const Opinion z : {Opinion::kOne, Opinion::kZero}) {
        const double ones_fraction = z == Opinion::kOne
                                         ? start.fraction_correct
                                         : 1.0 - start.fraction_correct;
        const Configuration init =
            init_fraction_ones(kAgents, z, ones_fraction);
        StopRule rule;
        rule.max_rounds = cap;
        const auto runner = [&](Rng& rng) {
          return engine.run(init, rule, rng);
        };
        const ConvergenceMeasurement m =
            measure_convergence(runner, seeds, cell++, kReplicates);
        ledger.add(m);
        const char* note =
            m.converged == kReplicates
                ? ""
                : (m.censored == kReplicates ? "stalled (censored)"
                                             : "partial");
        table.add_row({protocol->name(), start.label,
                       std::to_string(to_int(z)),
                       std::to_string(m.converged) + "/" +
                           std::to_string(kReplicates),
                       m.converged > 0 ? Table::fmt(m.rounds.mean(), 1) : "-",
                       note});
      }
    }
  }

  std::printf("bit-dissemination, n = %llu (caps: voter 600k rounds, "
              "others 20k)\n\n",
              static_cast<unsigned long long>(kAgents));
  table.print(std::cout);
  std::cout << '\n';
  ledger.report(std::cout);
  std::printf(
      "\nReading guide: voter always solves the problem but slowly "
      "(~n log n);\nminority with l = sqrt(n ln n) is fast from every "
      "start; minority with\nconstant l = 3 stalls (Theorem 1); majority "
      "stalls against a wrong majority\nbecause it ignores the source.\n");
  return ledger.exit_status();
}
