#!/usr/bin/env python3
"""Kill-and-recover harness: prove checkpoint/restore survives real crashes.

Drives the `long_run` example (examples/long_run.cpp) through the full
crash-recovery protocol and asserts the one property that matters: the
payload digest of an interrupted-then-resumed chain is IDENTICAL to the
digest of the same run executed uninterrupted.

Stages (all run by default):

  kill      SIGKILL the run at a randomized wall-clock offset, resume with
            --resume=auto, repeat until the chain completes; the final
            LONGRUN digest must equal the uninterrupted golden digest.
  graceful  SIGTERM the run; it must stop at a round boundary with exit
            status 3 and a LONGRUN-INTERRUPTED line, then resume to the
            golden digest.
  corrupt   Bit-flip the newest ring entry between kill and resume; the
            run must fall back (older ring entry, or a fresh start when
            nothing valid remains) and STILL reach the golden digest.

Usage:
    crash_harness.py --binary build/examples/long_run [options]
    crash_harness.py --self-test

Options mirror long_run's: --n, --rounds, --seed, --threads, --kernel,
--flip-at pick the workload; --checkpoint-every, --kills, --kill-min/max,
--random-seed shape the crash schedule. --stage kill|graceful|corrupt
runs one stage. The run must be long enough in wall-clock terms for a
kill to land mid-run; the harness warns when every kill missed.

--self-test exercises the harness logic against a built-in Python stub
child (no C++ binary needed), so CI can vet the harness itself cheaply.

Exit status: 0 = all stages passed, 1 = digest mismatch or protocol
violation, 2 = bad input.
"""

import argparse
import glob
import hashlib
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import threading

RESULT_PREFIX = "LONGRUN "
INTERRUPTED_PREFIX = "LONGRUN-INTERRUPTED"


class HarnessError(Exception):
    """Bad input or a child that violated the output protocol."""


# ---------------------------------------------------------------------------
# Child-process protocol


def parse_result(stdout):
    """The last LONGRUN line of a completed run, as a dict (digest, reason,
    ticks); None when the run never printed one (crashed or interrupted)."""
    result = None
    for line in stdout.splitlines():
        line = line.strip()
        if line.startswith(RESULT_PREFIX):
            try:
                result = json.loads(line[len(RESULT_PREFIX):])
            except json.JSONDecodeError as err:
                raise HarnessError(f"malformed LONGRUN line: {line!r}: {err}")
    return result


def was_interrupted(stdout):
    return any(
        line.strip().startswith(INTERRUPTED_PREFIX)
        for line in stdout.splitlines()
    )


def run_child(cmd, kill_after=None, kill_signal=signal.SIGKILL, timeout=600):
    """Runs `cmd`; when kill_after is set, delivers kill_signal after that
    many seconds (no-op if the child finished first). Returns
    (returncode, stdout, stderr, killed) with killed = the timer fired
    while the child was still alive."""
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    state = {"killed": False}
    timer = None
    if kill_after is not None:

        def fire():
            if proc.poll() is None:
                state["killed"] = True
                try:
                    proc.send_signal(kill_signal)
                except ProcessLookupError:
                    state["killed"] = False

        timer = threading.Timer(kill_after, fire)
        timer.start()
    try:
        stdout, stderr = proc.communicate(timeout=timeout)
    finally:
        if timer is not None:
            timer.cancel()
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    return proc.returncode, stdout, stderr, state["killed"]


# ---------------------------------------------------------------------------
# Stages


def golden_digest(binary_cmd, timeout):
    """One uninterrupted run (no checkpointing at all): the reference."""
    rc, stdout, stderr, _ = run_child(binary_cmd, timeout=timeout)
    result = parse_result(stdout)
    if rc != 0 or result is None:
        raise HarnessError(
            f"uninterrupted run failed (exit {rc}): {stderr.strip()[-500:]}"
        )
    print(f"golden digest {result['digest']} ({result['ticks']} ticks)")
    return result["digest"]


def checkpoint_cmd(binary_cmd, ring_base, every, resume):
    cmd = list(binary_cmd) + [
        f"--checkpoint-out={ring_base}",
        f"--checkpoint-every={every}",
    ]
    if resume:
        cmd.append("--resume=auto")
    return cmd


def newest_ring_entry(ring_base):
    entries = glob.glob(f"{ring_base}.*.snap")
    return max(entries, key=os.path.getmtime) if entries else None


def flip_byte(path, rng):
    with open(path, "rb") as fh:
        data = bytearray(fh.read())
    if not data:
        raise HarnessError(f"{path}: empty snapshot")
    index = rng.randrange(len(data))
    data[index] ^= 1 << rng.randrange(8)
    with open(path, "wb") as fh:
        fh.write(data)
    return index


def stage_kill(binary_cmd, golden, args, rng, workdir, corrupt=False):
    """SIGKILL at random offsets until the chain completes; the final digest
    must equal `golden`. With corrupt=True, a ring entry is bit-flipped
    between a kill and the next resume (the fallback path)."""
    name = "corrupt" if corrupt else "kill"
    ring = os.path.join(workdir, f"{name}-ring")
    kills = corruptions = 0
    for attempt in range(args.max_attempts):
        cmd = checkpoint_cmd(
            binary_cmd, ring, args.checkpoint_every, resume=attempt > 0
        )
        delay = rng.uniform(args.kill_min, args.kill_max)
        rc, stdout, stderr, killed = run_child(
            cmd, kill_after=delay, timeout=args.timeout
        )
        if killed:
            kills += 1
            print(f"  [{name}] attempt {attempt}: killed at ~{delay:.2f}s")
            if corrupt:
                entry = newest_ring_entry(ring)
                if entry is not None:
                    where = flip_byte(entry, rng)
                    corruptions += 1
                    print(
                        f"  [{name}] flipped byte {where} of "
                        f"{os.path.basename(entry)}"
                    )
            if kills < args.kills:
                continue
            # Enough kills: let the final attempt run to completion.
            rc, stdout, stderr, _ = run_child(
                checkpoint_cmd(
                    binary_cmd, ring, args.checkpoint_every, resume=True
                ),
                timeout=args.timeout,
            )
        result = parse_result(stdout)
        if rc != 0 or result is None:
            raise HarnessError(
                f"[{name}] completed child failed (exit {rc}): "
                f"{stderr.strip()[-500:]}"
            )
        if result["digest"] != golden:
            print(
                f"FAIL [{name}]: digest {result['digest']} != golden "
                f"{golden} after {kills} kill(s)",
                file=sys.stderr,
            )
            return False
        if kills == 0:
            print(
                f"  [{name}] warning: the run completed before any kill "
                f"landed — lengthen --rounds or shrink --kill-min",
                file=sys.stderr,
            )
        extra = f", {corruptions} corruption(s)" if corrupt else ""
        print(
            f"ok [{name}]: digest {result['digest']} == golden after "
            f"{kills} kill(s){extra}"
        )
        return True
    print(
        f"FAIL [{name}]: no completion within {args.max_attempts} attempts",
        file=sys.stderr,
    )
    return False


def stage_graceful(binary_cmd, golden, args, rng, workdir):
    """SIGTERM must stop at a round boundary (exit 3, LONGRUN-INTERRUPTED),
    and the resumed run must reach the golden digest."""
    ring = os.path.join(workdir, "graceful-ring")
    delay = rng.uniform(args.kill_min, args.kill_max)
    rc, stdout, stderr, killed = run_child(
        checkpoint_cmd(binary_cmd, ring, args.checkpoint_every, resume=False),
        kill_after=delay,
        kill_signal=signal.SIGTERM,
        timeout=args.timeout,
    )
    if not killed:
        print(
            "  [graceful] warning: run completed before SIGTERM landed — "
            "treating as vacuous pass",
            file=sys.stderr,
        )
        return True
    if rc != 3 or not was_interrupted(stdout):
        print(
            f"FAIL [graceful]: expected exit 3 + {INTERRUPTED_PREFIX}, got "
            f"exit {rc}: {stderr.strip()[-500:]}",
            file=sys.stderr,
        )
        return False
    print(f"  [graceful] SIGTERM at ~{delay:.2f}s: clean interrupt (exit 3)")
    rc, stdout, stderr, _ = run_child(
        checkpoint_cmd(binary_cmd, ring, args.checkpoint_every, resume=True),
        timeout=args.timeout,
    )
    result = parse_result(stdout)
    if rc != 0 or result is None:
        raise HarnessError(
            f"[graceful] resumed child failed (exit {rc}): "
            f"{stderr.strip()[-500:]}"
        )
    if result["digest"] != golden:
        print(
            f"FAIL [graceful]: digest {result['digest']} != golden {golden}",
            file=sys.stderr,
        )
        return False
    print(f"ok [graceful]: digest {result['digest']} == golden")
    return True


def run_stages(args):
    binary_cmd = [
        args.binary,
        f"--n={args.n}",
        f"--rounds={args.rounds}",
        f"--run-seed={args.seed}",
        f"--threads={args.threads}",
        f"--kernel={args.kernel}",
    ]
    if args.flip_at:
        binary_cmd.append(f"--flip-at={args.flip_at}")
    if not os.path.exists(args.binary):
        raise HarnessError(f"{args.binary}: no such binary (build long_run)")
    rng = random.Random(args.random_seed)
    stages = (
        [args.stage] if args.stage else ["kill", "graceful", "corrupt"]
    )

    def run_in(workdir):
        golden = golden_digest(binary_cmd, args.timeout)
        ok = True
        for stage in stages:
            if stage == "kill":
                ok &= stage_kill(binary_cmd, golden, args, rng, workdir)
            elif stage == "graceful":
                ok &= stage_graceful(binary_cmd, golden, args, rng, workdir)
            elif stage == "corrupt":
                ok &= stage_kill(
                    binary_cmd, golden, args, rng, workdir, corrupt=True
                )
        return 0 if ok else 1

    if args.workdir:
        # Persistent: CI uploads the snapshot ring of a failed chain.
        os.makedirs(args.workdir, exist_ok=True)
        return run_in(args.workdir)
    with tempfile.TemporaryDirectory(prefix="crash_harness.") as workdir:
        return run_in(workdir)


# ---------------------------------------------------------------------------
# Self-test: the harness logic against a built-in stub child.
#
# The stub emulates long_run's protocol without any C++: it "runs" rounds
# (a short sleep each), checkpoints its round counter to a checksummed
# state file every K rounds, resumes from it under --resume=auto (falling
# back to a fresh start when the file is corrupt), prints a LONGRUN line
# whose digest depends only on (seed, rounds) — exactly the determinism
# contract — and handles SIGTERM as a clean interrupt (exit 3).

STUB_SOURCE = r'''
import hashlib, os, signal, sys, time

n = rounds = seed = every = 0
ring = ""
resume = False
for arg in sys.argv[1:]:
    if arg.startswith("--n="): n = int(arg[4:])
    elif arg.startswith("--rounds="): rounds = int(arg[9:])
    elif arg.startswith("--run-seed="): seed = int(arg[11:])
    elif arg.startswith("--checkpoint-out="): ring = arg[17:]
    elif arg.startswith("--checkpoint-every="): every = int(arg[19:])
    elif arg == "--resume=auto": resume = True

interrupted = []
signal.signal(signal.SIGTERM, lambda *_: interrupted.append(True))

path = ring + ".0.snap" if ring else ""

def save(r):
    if not path: return
    body = f"{seed}:{r}"
    line = body + ":" + hashlib.md5(body.encode()).hexdigest()
    with open(path + ".tmp", "w") as fh: fh.write(line)
    os.replace(path + ".tmp", path)

start = 0
if resume and path and os.path.exists(path):
    try:
        body, _, check = open(path).read().rpartition(":")
        s, r = (int(x) for x in body.split(":"))
        if hashlib.md5(body.encode()).hexdigest() == check and s == seed:
            start = r
        else:
            print("[corrupt snapshot skipped]", file=sys.stderr)
    except (ValueError, OSError):
        print("[corrupt snapshot skipped]", file=sys.stderr)

for r in range(start, rounds):
    if interrupted:
        save(r)
        print(f'LONGRUN-INTERRUPTED {{"ticks":{r}}}', flush=True)
        sys.exit(3)
    time.sleep(0.002)
    if every and (r + 1) % every == 0: save(r + 1)

digest = hashlib.md5(f"{seed}/{rounds}/{n}".encode()).hexdigest()[:16]
print(f'LONGRUN {{"digest":"0x{digest}","reason":"round-limit",'
      f'"ticks":{rounds},"ones":{n//2}}}', flush=True)
'''


def make_stub(workdir):
    stub = os.path.join(workdir, "stub_long_run.py")
    with open(stub, "w", encoding="utf-8") as fh:
        fh.write(STUB_SOURCE)
    runner = os.path.join(workdir, "stub_long_run")
    with open(runner, "w", encoding="utf-8") as fh:
        fh.write(f'#!/bin/sh\nexec "{sys.executable}" "{stub}" "$@"\n')
    os.chmod(runner, 0o755)
    return runner


def _selftest_args(binary, workdir):
    return argparse.Namespace(
        binary=binary,
        n=4096,
        rounds=400,
        seed=11,
        threads=1,
        kernel="legacy",
        flip_at=0,
        checkpoint_every=10,
        kills=2,
        kill_min=0.05,
        kill_max=0.25,
        max_attempts=30,
        timeout=60,
        random_seed=1234,
        stage=None,
        workdir=workdir,
    )


def cmd_selftest():
    failures = []

    def case(name, fn):
        try:
            fn()
        except (AssertionError, HarnessError) as err:
            failures.append(name)
            print(f"  FAIL {name}: {err}")
        else:
            print(f"  ok   {name}")

    def test_parse_result():
        out = 'noise\nLONGRUN {"digest":"0xab","reason":"round-limit","ticks":4}\n'
        assert parse_result(out)["digest"] == "0xab"
        assert parse_result("no result\n") is None
        assert was_interrupted('LONGRUN-INTERRUPTED {"ticks":3}\n')
        try:
            parse_result("LONGRUN {broken\n")
        except HarnessError:
            pass
        else:
            raise AssertionError("malformed LONGRUN must raise")

    def test_flip_byte_changes_file():
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "x.snap")
            with open(path, "wb") as fh:
                fh.write(b"\x00" * 64)
            flip_byte(path, random.Random(7))
            with open(path, "rb") as fh:
                assert fh.read() != b"\x00" * 64, "flip must change a byte"

    def test_stub_chain_end_to_end():
        with tempfile.TemporaryDirectory() as tmp:
            args = _selftest_args(make_stub(tmp), tmp)
            assert run_stages(args) == 0, "stub chain must pass all stages"

    def test_digest_mismatch_detected():
        # A stub whose resume silently loses progress (digest depends on
        # rounds actually executed THIS process) must fail the kill stage.
        with tempfile.TemporaryDirectory() as tmp:
            runner = make_stub(tmp)
            broken = os.path.join(tmp, "stub_long_run.py")
            with open(broken, "r", encoding="utf-8") as fh:
                source = fh.read()
            source = source.replace('f"{seed}/{rounds}/{n}"', 'f"{seed}/{rounds - start}/{n}"')
            with open(broken, "w", encoding="utf-8") as fh:
                fh.write(source)
            args = _selftest_args(runner, tmp)
            args.stage = "kill"
            assert run_stages(args) == 1, (
                "a resume that loses progress must fail the digest assert"
            )

    print("crash_harness self-test:")
    for name, fn in [
        ("LONGRUN line parsing", test_parse_result),
        ("corruption flips a byte", test_flip_byte_changes_file),
        ("stub kill/graceful/corrupt chain passes", test_stub_chain_end_to_end),
        ("lost progress fails the digest assert", test_digest_mismatch_detected),
    ]:
        case(name, fn)
    if failures:
        print(f"self-test: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("self-test: all cases passed")
    return 0


# ---------------------------------------------------------------------------


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--binary", help="path to the built long_run example")
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("--stage", choices=["kill", "graceful", "corrupt"])
    parser.add_argument("--n", type=int, default=1 << 18)
    parser.add_argument("--rounds", type=int, default=3000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--threads", type=int, default=2)
    parser.add_argument("--kernel", default="legacy")
    parser.add_argument("--flip-at", type=int, default=0)
    parser.add_argument("--checkpoint-every", type=int, default=25)
    parser.add_argument(
        "--kills", type=int, default=2,
        help="SIGKILLs to land before letting the chain finish (default 2)",
    )
    parser.add_argument("--kill-min", type=float, default=0.3)
    parser.add_argument("--kill-max", type=float, default=1.5)
    parser.add_argument("--max-attempts", type=int, default=30)
    parser.add_argument("--timeout", type=float, default=600)
    parser.add_argument(
        "--random-seed", type=int, default=0,
        help="seed for the kill/corruption schedule (reproducible chaos)",
    )
    parser.add_argument(
        "--workdir", default=None,
        help="keep snapshot rings here instead of a temp dir (CI artifacts)",
    )
    args = parser.parse_args()

    try:
        if args.self_test:
            return cmd_selftest()
        if not args.binary:
            raise HarnessError("--binary is required (or use --self-test)")
        return run_stages(args)
    except HarnessError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
