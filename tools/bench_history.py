#!/usr/bin/env python3
"""Bench-trajectory history: append unified bench reports, gate regressions.

The repo's perf story is a *trajectory*: every CI run appends the
perf_smoke "bitspread-bench/1" payload to results/HISTORY.jsonl, and the
gate compares the freshest run against the trailing median of comparable
history so a slow drift (or a one-PR cliff) fails the build instead of
silently eroding the numbers.

Usage:
    bench_history.py append REPORT.json --history results/HISTORY.jsonl \
        --commit SHA [--stamp ISO8601]
    bench_history.py gate REPORT.json --history results/HISTORY.jsonl \
        [--threshold 0.10] [--share-drift 0.15] [--min-entries 3] [--window 20]
    bench_history.py self-test

History entries use schema "bitspread-history/1": one JSON object per
line holding the provenance key (bench name, build type, telemetry flag,
quick flag, hardware_concurrency) plus the extracted metrics:

  * throughput.<benchmark>   items/sec of each row in "benchmarks"
  * phase_share.<phase>      that phase's fraction of total phase seconds
  * ipc.<backend>.<sub>      per-kernel-sub-phase IPC from bench_profile's
                             "profiles" rows (absent on no-PMU hosts)
  * subphase_share.<backend>.<sub>  that sub-phase's share of kernel wall

`gate` only compares against history entries whose provenance key matches
the candidate report exactly (a Debug laptop run never gates a Release CI
run). Throughput and IPC may not drop more than --threshold below the
trailing median; phase shares may not shift more than --share-drift
absolute. With fewer than --min-entries comparable entries the gate passes
vacuously (exit 0) so a fresh repo can seed its own history. Rows lacking
PMU data simply contribute no ipc.* columns — a no-PMU host's report
gates its throughput as usual and never trips on counters it cannot read.

Exit status: 0 = pass/appended, 1 = regression detected, 2 = bad input.
"""

import argparse
import json
import os
import sys
import tempfile

HISTORY_SCHEMA = "bitspread-history/1"
BENCH_SCHEMA = "bitspread-bench/1"


class BadInput(Exception):
    """Input file missing, malformed, or not a bench report."""


# ---------------------------------------------------------------------------
# Report loading and metric extraction


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except OSError as err:
        raise BadInput(f"{path}: cannot read: {err.strerror or err}") from err
    except json.JSONDecodeError as err:
        raise BadInput(f"{path}: malformed JSON: {err}") from err
    if not isinstance(report, dict) or report.get("schema") != BENCH_SCHEMA:
        raise BadInput(f"{path}: not a {BENCH_SCHEMA} report")
    return report


def provenance_key(report):
    """The comparability key: entries gate each other only within a key."""
    build = report.get("build", {})
    return {
        "bench": report.get("bench"),
        "build_type": build.get("type"),
        "telemetry": bool(build.get("telemetry", False)),
        "quick": bool(report.get("quick", False)),
        "hardware_concurrency": report.get("hardware_concurrency"),
    }


def extract_metrics(report):
    """Flatten a bench report into the tracked scalar metrics."""
    metrics = {}
    for row in report.get("benchmarks") or []:
        name = row.get("name")
        ips = row.get("items_per_second")
        if isinstance(name, str) and isinstance(ips, (int, float)) and ips > 0:
            metrics[f"throughput.{name}"] = float(ips)
    phases = report.get("phases") or []
    total = sum(
        p.get("seconds", 0.0)
        for p in phases
        if isinstance(p.get("seconds"), (int, float))
    )
    if total > 0:
        for p in phases:
            name = p.get("name")
            secs = p.get("seconds")
            if isinstance(name, str) and isinstance(secs, (int, float)):
                metrics[f"phase_share.{name}"] = float(secs) / total
    # bench_profile rows: per-backend kernel sub-phase IPC and wall share.
    # Sub-phase rows without PMU data (fallback hosts) carry no "ipc" key
    # and are tolerated — they just contribute no column.
    for row in report.get("profiles") or []:
        if not isinstance(row, dict):
            continue
        backend = row.get("backend")
        sps = row.get("agent_steps_per_second")
        if isinstance(backend, str) and isinstance(sps, (int, float)) and sps > 0:
            metrics[f"throughput.profile.{backend}"] = float(sps)
        for sub in row.get("sub_phases") or []:
            if not isinstance(sub, dict) or not isinstance(backend, str):
                continue
            name = sub.get("sub_phase")
            if not isinstance(name, str):
                continue
            ipc = sub.get("ipc")
            if isinstance(ipc, (int, float)) and ipc > 0:
                metrics[f"ipc.{backend}.{name}"] = float(ipc)
            share = sub.get("wall_share")
            if isinstance(share, (int, float)) and 0 <= share <= 1:
                metrics[f"subphase_share.{backend}.{name}"] = float(share)
    if not metrics:
        raise BadInput("report carries no benchmarks or phases to track")
    return metrics


def make_entry(report, commit, stamp):
    entry = {"schema": HISTORY_SCHEMA, "commit": commit}
    if stamp:
        entry["stamp"] = stamp
    entry.update(provenance_key(report))
    entry["metrics"] = extract_metrics(report)
    return entry


# ---------------------------------------------------------------------------
# History file


def load_history(path):
    """Parses HISTORY.jsonl; a missing file is an empty history.

    A crash or kill mid-append can leave a half-written trailing line (JSONL
    appends are not atomic). Corrupt or foreign lines are SKIPPED with a
    warning rather than failing the whole gate: one torn line must never
    wedge CI, and the surviving entries are still a valid history.
    """
    entries = []
    if not os.path.exists(path):
        return entries
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError as err:
                    print(
                        f"warning: {path}:{lineno}: skipping corrupt "
                        f"history line ({err})",
                        file=sys.stderr,
                    )
                    continue
                if not isinstance(entry, dict) or (
                    entry.get("schema") != HISTORY_SCHEMA
                ):
                    print(
                        f"warning: {path}:{lineno}: skipping non-"
                        f"{HISTORY_SCHEMA} line",
                        file=sys.stderr,
                    )
                    continue
                entries.append(entry)
    except OSError as err:
        raise BadInput(f"{path}: cannot read: {err.strerror or err}") from err
    return entries


def matching_entries(history, key):
    return [
        e for e in history if all(e.get(k) == v for k, v in key.items())
    ]


def median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


# ---------------------------------------------------------------------------
# Subcommands


def cmd_append(args):
    report = load_report(args.report)
    entry = make_entry(report, args.commit, args.stamp)
    directory = os.path.dirname(os.path.abspath(args.history))
    os.makedirs(directory, exist_ok=True)
    with open(args.history, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    print(
        f"appended {entry['bench']} @ {args.commit} "
        f"({len(entry['metrics'])} metrics) to {args.history}"
    )
    return 0


def cmd_gate(args):
    report = load_report(args.report)
    key = provenance_key(report)
    candidate = extract_metrics(report)
    history = matching_entries(load_history(args.history), key)
    if args.window > 0:
        history = history[-args.window:]
    if len(history) < args.min_entries:
        print(
            f"gate: only {len(history)} comparable history entries "
            f"(need {args.min_entries}) — passing vacuously"
        )
        return 0

    # Shares are fractions of the report's own total (phase_share of all
    # phase seconds, subphase_share of that backend's kernel wall), so they
    # are only comparable between reports tracking the SAME set of rows:
    # adding a bench row mechanically shrinks every other share without any
    # real perf change. Each share family gates only against entries with an
    # identical name set for that family; throughput and IPC rows are
    # absolute ratios and gate against the full window.
    def share_names(metrics, prefix):
        return frozenset(k for k in metrics if k.startswith(prefix))

    share_history = {}
    for prefix in ("phase_share.", "subphase_share."):
        names = share_names(candidate, prefix)
        pool = [
            e
            for e in history
            if share_names(e.get("metrics", {}), prefix) == names
        ]
        share_history[prefix] = pool
        if len(pool) < len(history):
            print(
                f"gate: {prefix.rstrip('.')} set changed — compares "
                f"against {len(pool)} of {len(history)} entries"
            )

    failures = []
    print(
        f"gate: {len(history)} comparable entries, "
        f"threshold {args.threshold:.0%} throughput, "
        f"{args.share_drift:.2f} share drift"
    )
    print(f"{'metric':<38} {'median':>12} {'current':>12} {'delta':>9}")
    for name in sorted(candidate):
        pool = history
        for prefix, filtered in share_history.items():
            if name.startswith(prefix):
                pool = filtered
                break
        samples = [
            e["metrics"][name]
            for e in pool
            if isinstance(e.get("metrics", {}).get(name), (int, float))
        ]
        if not samples:
            print(f"{name:<38} {'(new)':>12} {candidate[name]:12.4g}")
            continue
        base = median(samples)
        current = candidate[name]
        if name.startswith(("throughput.", "ipc.")):
            # Relative: positive drop = slower (or lower-IPC) than the
            # trailing median.
            drop = (base - current) / base if base > 0 else 0.0
            bad = drop > args.threshold
            delta = f"{-drop:+8.1%}"
        else:
            # Shares are already fractions; compare absolutely.
            drift = abs(current - base)
            bad = drift > args.share_drift
            delta = f"{current - base:+8.3f}"
        verdict = "FAIL" if bad else "OK"
        if bad:
            failures.append(f"{name}: median {base:.6g} -> {current:.6g}")
        print(f"{name:<38} {base:12.4g} {current:12.4g} {delta} {verdict}")

    if failures:
        print(
            "gate: regression vs trailing median:\n  "
            + "\n  ".join(failures),
            file=sys.stderr,
        )
        return 1
    print("gate: all tracked metrics within budget")
    return 0


# ---------------------------------------------------------------------------
# Self-test: synthetic reports through the real append/gate paths.


def _fake_report(ips_scale=1.0, phase_secs=None, profiles_ipc=None):
    """Synthetic bench report; profiles_ipc adds bench_profile-style rows
    (a float scales every sub-phase IPC; False emulates a no-PMU host whose
    rows carry wall shares but no IPC)."""
    phase_secs = phase_secs or {"simulate": 0.8, "analyze": 0.2}
    report = {
        "schema": BENCH_SCHEMA,
        "bench": "engine",
        "quick": True,
        "hardware_concurrency": 1,
        "build": {"type": "release", "telemetry": False},
        "benchmarks": [
            {"name": "agent_serial_step",
             "items_per_second": 4.0e7 * ips_scale},
            {"name": "aggregate_step",
             "items_per_second": 3.0e6 * ips_scale},
        ],
        "phases": [
            {"name": name, "seconds": secs}
            for name, secs in phase_secs.items()
        ],
    }
    if profiles_ipc is not None:
        def sub(name, share, ipc):
            row = {"sub_phase": name, "wall_seconds": share * 0.01,
                   "wall_share": share, "cycles": int(share * 1e7)}
            if profiles_ipc is not False:
                row["ipc"] = ipc * profiles_ipc
            return row

        report["profiles"] = [{
            "backend": "avx2",
            "pmu_available": profiles_ipc is not False,
            "subphase_markers": True,
            "agent_steps_per_second": 2.0e8 * ips_scale,
            "sub_phases": [
                sub("gather", 0.40, 1.8), sub("fault", 0.20, 2.2),
                sub("decide", 0.22, 2.5), sub("commit", 0.18, 2.0),
            ],
        }]
    return report


def _run_selftest_case(check, name, fn):
    try:
        fn()
    except AssertionError as err:
        check.append(f"FAIL {name}: {err}")
        print(f"  FAIL {name}: {err}")
    else:
        print(f"  ok   {name}")


def cmd_selftest(_args):
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        history = os.path.join(tmp, "HISTORY.jsonl")

        def write_report(path, **kwargs):
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(_fake_report(**kwargs), fh)

        def append(report_path, commit):
            ns = argparse.Namespace(
                report=report_path, history=history, commit=commit, stamp=None
            )
            return cmd_append(ns)

        def gate(report_path, min_entries=3, threshold=0.10):
            ns = argparse.Namespace(
                report=report_path,
                history=history,
                threshold=threshold,
                share_drift=0.15,
                min_entries=min_entries,
                window=20,
            )
            return cmd_gate(ns)

        good = os.path.join(tmp, "good.json")
        write_report(good)

        def test_vacuous_pass():
            assert gate(good) == 0, "empty history must pass vacuously"

        def test_append_and_pass():
            for i in range(3):
                assert append(good, f"c{i}") == 0
            assert gate(good) == 0, "identical report must pass the gate"

        def test_regression_fails():
            slow = os.path.join(tmp, "slow.json")
            write_report(slow, ips_scale=0.5)
            assert gate(slow) == 1, "50% throughput drop must fail"

        def test_improvement_passes():
            fast = os.path.join(tmp, "fast.json")
            write_report(fast, ips_scale=1.5)
            assert gate(fast) == 0, "a faster run must pass"

        def test_share_drift_fails():
            skew = os.path.join(tmp, "skew.json")
            write_report(
                skew, phase_secs={"simulate": 0.2, "analyze": 0.8}
            )
            assert gate(skew) == 1, "a 0.6 phase-share swing must fail"

        def test_new_phase_set_skips_share_gate():
            # A report that adds a bench row reshuffles every phase share;
            # shares must gate only against same-phase-set history, so the
            # run passes as long as throughput holds up.
            extra = os.path.join(tmp, "extra_phase.json")
            write_report(
                extra,
                phase_secs={"simulate": 0.5, "analyze": 0.1, "kernel": 0.4},
            )
            assert gate(extra) == 0, (
                "a changed phase-name set must not trip the share gate"
            )
            # Same phase set, same skew: the original share-drift guard
            # still fires against the matching history.
            skew = os.path.join(tmp, "skew2.json")
            write_report(
                skew, phase_secs={"simulate": 0.2, "analyze": 0.8}
            )
            assert gate(skew) == 1, (
                "share drift within an unchanged phase set must still fail"
            )

        def test_provenance_isolation():
            debug = os.path.join(tmp, "debug.json")
            report = _fake_report(ips_scale=0.01)
            report["build"]["type"] = "debug"
            with open(debug, "w", encoding="utf-8") as fh:
                json.dump(report, fh)
            assert gate(debug) == 0, (
                "a debug report must not gate against release history"
            )

        def test_malformed_input():
            broken = os.path.join(tmp, "broken.json")
            with open(broken, "w", encoding="utf-8") as fh:
                fh.write("{not json")
            try:
                load_report(broken)
            except BadInput:
                return
            raise AssertionError("malformed JSON must raise BadInput")

        def test_missing_input():
            try:
                load_report(os.path.join(tmp, "nope.json"))
            except BadInput:
                return
            raise AssertionError("missing file must raise BadInput")

        def test_torn_trailing_line_is_skipped():
            # A kill -9 mid-append leaves a half-written last line; the
            # loader must skip it with a warning and keep every intact
            # entry, and the gate must still run against them.
            before = len(load_history(history))
            assert before >= 3, "earlier cases should have seeded history"
            whole = json.dumps(
                make_entry(_fake_report(), "torn", None), sort_keys=True
            )
            with open(history, "a", encoding="utf-8") as fh:
                fh.write(whole[: len(whole) // 2])  # No newline: torn write.
            assert len(load_history(history)) == before, (
                "a torn trailing line must be skipped, not fatal"
            )
            assert gate(good) == 0, "the gate must survive a torn line"
            # A well-formed line of the wrong schema is skipped too.
            with open(history, "a", encoding="utf-8") as fh:
                fh.write('\n{"schema": "other/1"}\n')
            assert len(load_history(history)) == before, (
                "foreign-schema lines must be skipped"
            )

        def test_profile_ipc_columns():
            m = extract_metrics(_fake_report(profiles_ipc=1.0))
            assert "ipc.avx2.gather" in m, "ipc columns missing"
            assert "subphase_share.avx2.decide" in m, (
                "subphase_share columns missing"
            )
            assert "throughput.profile.avx2" in m, (
                "profile throughput column missing"
            )
            prof = os.path.join(tmp, "prof.json")
            write_report(prof, profiles_ipc=1.0)
            for i in range(3):
                assert append(prof, f"p{i}") == 0
            assert gate(prof) == 0, "identical profile report must pass"
            slow = os.path.join(tmp, "slow_ipc.json")
            write_report(slow, profiles_ipc=0.7)
            assert gate(slow) == 1, "a 30% sub-phase IPC drop must fail"
            fast = os.path.join(tmp, "fast_ipc.json")
            write_report(fast, profiles_ipc=1.3)
            assert gate(fast) == 0, "an IPC improvement must pass"

        def test_no_pmu_rows_tolerated():
            # A fallback host's rows have wall shares but no IPC: they must
            # extract cleanly and never trip against IPC-bearing history.
            m = extract_metrics(_fake_report(profiles_ipc=False))
            assert not any(k.startswith("ipc.") for k in m), (
                "no-PMU rows must contribute no ipc columns"
            )
            assert "subphase_share.avx2.gather" in m, (
                "wall shares must survive without PMU"
            )
            nopmu = os.path.join(tmp, "nopmu.json")
            write_report(nopmu, profiles_ipc=False)
            assert gate(nopmu) == 0, (
                "a no-PMU report must gate cleanly vs PMU history"
            )

        print("bench_history self-test:")
        for name, fn in [
            ("vacuous pass on short history", test_vacuous_pass),
            ("append + identical gate passes", test_append_and_pass),
            ("throughput regression fails", test_regression_fails),
            ("improvement passes", test_improvement_passes),
            ("phase-share drift fails", test_share_drift_fails),
            ("new phase set skips share gate", test_new_phase_set_skips_share_gate),
            ("provenance key isolates builds", test_provenance_isolation),
            ("malformed JSON is a clean error", test_malformed_input),
            ("missing file is a clean error", test_missing_input),
            ("torn trailing history line is skipped", test_torn_trailing_line_is_skipped),
            ("profile ipc/share columns gate", test_profile_ipc_columns),
            ("no-PMU profile rows tolerated", test_no_pmu_rows_tolerated),
        ]:
            _run_selftest_case(failures, name, fn)

    if failures:
        print(f"self-test: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("self-test: all cases passed")
    return 0


# ---------------------------------------------------------------------------


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_append = sub.add_parser(
        "append", help="append a bench report to the history file"
    )
    p_append.add_argument("report")
    p_append.add_argument("--history", required=True)
    p_append.add_argument("--commit", required=True)
    p_append.add_argument(
        "--stamp", default=None, help="optional ISO-8601 build stamp"
    )
    p_append.set_defaults(fn=cmd_append)

    p_gate = sub.add_parser(
        "gate", help="fail if the report regresses vs the trailing median"
    )
    p_gate.add_argument("report")
    p_gate.add_argument("--history", required=True)
    p_gate.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="max tolerated relative throughput drop (default 0.10)",
    )
    p_gate.add_argument(
        "--share-drift",
        type=float,
        default=0.15,
        help="max tolerated absolute phase-share shift (default 0.15)",
    )
    p_gate.add_argument(
        "--min-entries",
        type=int,
        default=3,
        help="comparable entries required before the gate arms (default 3)",
    )
    p_gate.add_argument(
        "--window",
        type=int,
        default=20,
        help="trailing entries considered for the median (default 20)",
    )
    p_gate.set_defaults(fn=cmd_gate)

    p_self = sub.add_parser("self-test", help="run the built-in test cases")
    p_self.set_defaults(fn=cmd_selftest)

    args = parser.parse_args()
    try:
        return args.fn(args)
    except BadInput as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
