#!/usr/bin/env python3
"""Structural lint: run-loop concerns live in the RunDriver, nowhere else.

Usage:
    check_run_loop.py [--root DIR]
    check_run_loop.py --self-test

Since the unified run-loop refactor, stop-rule evaluation, per-round
flight-recorder emission, and recovery-segment bookkeeping are driver
concerns: engines are steppers and must not call `evaluate_stop()`,
`telemetry::record_round()`, or construct `RecoverySegment{...}` on their
own. This lint scans src/, bench/, and examples/ for those tokens and fails
on any call-site outside the allowlisted owners:

    src/engine/run_loop.*   -- the driver itself (all three tokens)
    src/engine/stopping.*   -- defines evaluate_stop and RecoverySegment
    src/faults/session.*    -- owns RecoverySegment lifecycle
    src/telemetry/          -- defines record_round (and its no-op stub)
    bench/perf_smoke.cc     -- record_round only: it steps engines directly
                               (no run loop), so it must emit rounds itself

Comments do not count as call-sites. Tests are out of scope: they exercise
the primitives deliberately. Exit status 0 = clean, 1 = violation,
2 = bad input.
"""

import argparse
import os
import re
import sys
import tempfile

SCAN_DIRS = ("src", "bench", "examples")
EXTENSIONS = (".h", ".cc")

TOKENS = {
    "evaluate_stop": re.compile(r"\bevaluate_stop\s*\("),
    "record_round": re.compile(r"\brecord_round\s*\("),
    "RecoverySegment": re.compile(r"\bRecoverySegment\s*\{"),
}

# Maps a path prefix (relative to the repo root, '/'-separated) to the set of
# tokens that may legitimately appear under it.
ALLOWLIST = (
    ("src/engine/run_loop.", {"evaluate_stop", "record_round",
                              "RecoverySegment"}),
    ("src/engine/stopping.", {"evaluate_stop", "RecoverySegment"}),
    ("src/faults/session.", {"RecoverySegment"}),
    ("src/telemetry/", {"record_round"}),
    ("bench/perf_smoke.cc", {"record_round"}),
)


def allowed_tokens(relpath):
    for prefix, tokens in ALLOWLIST:
        if relpath.startswith(prefix):
            return tokens
    return frozenset()


def strip_comments(text):
    """Blanks out // and /* */ comments, preserving line structure."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
            elif c == "'":
                state = "char"
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # string or char literal: copy verbatim, honor escapes.
            if c == "\\" and nxt:
                out.append(c)
                out.append(nxt)
                i += 2
                continue
            if (state == "string" and c == '"') or (
                state == "char" and c == "'"
            ):
                state = "code"
            out.append(c)
        i += 1
    return "".join(out)


def scan_file(root, relpath):
    """Returns [(relpath, line_number, token)] violations in one file."""
    path = os.path.join(root, relpath)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as err:
        raise RuntimeError(f"{relpath}: cannot read: {err}") from err
    allowed = allowed_tokens(relpath)
    violations = []
    code = strip_comments(text)
    for line_number, line in enumerate(code.splitlines(), start=1):
        for token, pattern in TOKENS.items():
            if token in allowed:
                continue
            if pattern.search(line):
                violations.append((relpath, line_number, token))
    return violations


def scan_tree(root):
    """Returns all violations under the scan dirs, sorted by path."""
    violations = []
    for scan_dir in SCAN_DIRS:
        top = os.path.join(root, scan_dir)
        if not os.path.isdir(top):
            continue
        for dirpath, _dirnames, filenames in os.walk(top):
            for filename in sorted(filenames):
                if not filename.endswith(EXTENSIONS):
                    continue
                relpath = os.path.relpath(
                    os.path.join(dirpath, filename), root
                ).replace(os.sep, "/")
                violations.extend(scan_file(root, relpath))
    violations.sort()
    return violations


# ---------------------------------------------------------------------------
# Self-test


def _write(root, relpath, text):
    path = os.path.join(root, relpath)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)


def self_test():
    failures = []

    def case(name, fn):
        try:
            fn()
        except AssertionError as err:
            failures.append(name)
            print(f"  FAIL {name}: {err}")
        else:
            print(f"  ok   {name}")

    def test_clean_tree():
        with tempfile.TemporaryDirectory() as tmp:
            _write(tmp, "src/engine/foo.cc", "int step() { return 1; }\n")
            assert scan_tree(tmp) == [], "clean tree must have no violations"

    def test_engine_call_site_flagged():
        with tempfile.TemporaryDirectory() as tmp:
            _write(
                tmp,
                "src/engine/foo.cc",
                "void run() {\n  evaluate_stop(rule, config);\n}\n",
            )
            found = scan_tree(tmp)
            assert found == [("src/engine/foo.cc", 2, "evaluate_stop")], found

    def test_allowlisted_owner_passes():
        with tempfile.TemporaryDirectory() as tmp:
            _write(
                tmp,
                "src/engine/run_loop.h",
                "auto r = evaluate_stop(rule, c);\n"
                "telemetry::record_round(0, c.ones, c.n);\n",
            )
            _write(tmp, "src/faults/session.cc",
                   "push_back(RecoverySegment{0, 0, false});\n")
            assert scan_tree(tmp) == [], "allowlisted owners must pass"

    def test_allowlist_is_per_token():
        with tempfile.TemporaryDirectory() as tmp:
            # session.* may build RecoverySegment but not evaluate stops.
            _write(tmp, "src/faults/session.cc",
                   "auto r = evaluate_stop(rule, c);\n")
            found = scan_tree(tmp)
            assert found == [("src/faults/session.cc", 1, "evaluate_stop")], (
                found
            )

    def test_comments_do_not_count():
        with tempfile.TemporaryDirectory() as tmp:
            _write(
                tmp,
                "src/engine/foo.h",
                "// The driver calls evaluate_stop() for us.\n"
                "/* record_round(r, ones, n) is emitted\n"
                "   by RecoverySegment{...} owners. */\n"
                "int x;\n",
            )
            assert scan_tree(tmp) == [], "comment mentions must not count"

    def test_string_literals_count_as_code():
        with tempfile.TemporaryDirectory() as tmp:
            # A '//' inside a string must not hide real code after it.
            _write(
                tmp,
                "src/engine/foo.cc",
                'const char* url = "http://x"; auto r = evaluate_stop(a, b);\n',
            )
            found = scan_tree(tmp)
            assert found == [("src/engine/foo.cc", 1, "evaluate_stop")], found

    def test_bench_record_round_allowed():
        with tempfile.TemporaryDirectory() as tmp:
            _write(tmp, "bench/perf_smoke.cc",
                   "telemetry::record_round(r, ones, n);\n")
            _write(tmp, "bench/other_bench.cc",
                   "telemetry::record_round(r, ones, n);\n")
            found = scan_tree(tmp)
            assert found == [("bench/other_bench.cc", 1, "record_round")], (
                found
            )

    print("check_run_loop self-test:")
    case("clean tree passes", test_clean_tree)
    case("engine call-site is flagged", test_engine_call_site_flagged)
    case("allowlisted owners pass", test_allowlisted_owner_passes)
    case("allowlist is per-token", test_allowlist_is_per_token)
    case("comments do not count", test_comments_do_not_count)
    case("string literals stay code", test_string_literals_count_as_code)
    case("only perf_smoke may record rounds", test_bench_record_round_allowed)
    if failures:
        print(f"self-test: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("self-test: all cases passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root to scan (default: parent of tools/)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the built-in test cases and exit",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not os.path.isdir(args.root):
        print(f"error: not a directory: {args.root}", file=sys.stderr)
        return 2

    try:
        violations = scan_tree(args.root)
    except RuntimeError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    if violations:
        print("run-loop lint: driver concerns leaked outside the RunDriver:")
        for relpath, line_number, token in violations:
            print(f"  {relpath}:{line_number}: {token}")
        print(
            f"{len(violations)} violation(s); route these through "
            "src/engine/run_loop.h or extend the allowlist deliberately.",
            file=sys.stderr,
        )
        return 1
    print("run-loop lint: clean (stop/trace/recovery stay in the driver)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
