#!/usr/bin/env python3
"""Render a BENCH_profile.json breakdown and flag IPC regressions.

Usage:
    profile_report.py BENCH_profile.json [--history results/HISTORY.jsonl]
        [--ipc-drop 0.15] [--min-entries 3] [--window 20] [--folded STACKS.txt]
    profile_report.py --self-test

BENCH_profile.json is the "bitspread-bench/1" report written by
bench_profile: one "profiles" row per kernel backend, each carrying the
whole-run counter totals plus the gather / fault / decide / commit
sub-phase split (wall share, cycles, instructions, IPC, LLC-miss per
agent-step) recorded by the §3.8 PMU subsystem. This tool renders the
gather-vs-decide breakdown as a table and, when results/HISTORY.jsonl
holds comparable entries (appended by bench_history.py), fails if any
sub-phase IPC dropped more than --ipc-drop below the trailing median.

The report degrades with the data: on a no-PMU host the rows carry
rdtsc/steady_clock cycles and wall shares but no instruction counts, so
the IPC columns print "-" and the regression gate passes vacuously with
a note (wall-share drift is bench_history's job, not this tool's).
With --folded the top stacks of a sampling-profiler folded file are
appended to the breakdown.

Exit status: 0 = rendered (and within budget), 1 = IPC regression,
2 = bad input.
"""

import argparse
import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_history  # noqa: E402  (shared report/history plumbing)

SUB_PHASES = ("gather", "fault", "decide", "commit")


class BadInput(Exception):
    """Input file missing, malformed, or not a bench_profile report."""


def load_profile_report(path):
    try:
        report = bench_history.load_report(path)
    except bench_history.BadInput as err:
        raise BadInput(str(err)) from err
    if report.get("bench") != "profile":
        raise BadInput(f"{path}: not a bench_profile report "
                       f"(bench={report.get('bench')!r})")
    rows = report.get("profiles")
    if not isinstance(rows, list) or not rows:
        raise BadInput(f"{path}: no 'profiles' rows")
    return report


# ---------------------------------------------------------------------------
# Rendering


def _fmt(value, spec, missing="-"):
    if isinstance(value, (int, float)):
        return format(value, spec)
    return missing


def render_breakdown(report):
    """Returns the human-readable breakdown as a list of lines."""
    lines = []
    pmu = report.get("pmu") or {}
    workload = report.get("workload") or {}
    lines.append(
        "bench_profile breakdown (n={n}, rounds={rounds}, pmu={pmu})".format(
            n=workload.get("n", "?"),
            rounds=workload.get("rounds", "?"),
            pmu="available" if pmu.get("available") else
            f"fallback [{pmu.get('unavailable_reason', 'no reason recorded')}]",
        )
    )
    for row in report["profiles"]:
        backend = row.get("backend", "?")
        lines.append("")
        lines.append(
            f"{backend}: "
            f"{_fmt(row.get('agent_steps_per_second', 0) / 1e6, '8.2f')} M "
            f"agent-steps/s over {_fmt(row.get('seconds'), '.3f')}s"
        )
        subs = row.get("sub_phases")
        if not subs:
            lines.append("  (no sub-phase markers: legacy loop or "
                         "non-telemetry build)")
            continue
        lines.append(
            f"  {'sub-phase':<10} {'share':>7} {'wall':>9} {'cycles':>13} "
            f"{'instrs':>13} {'ipc':>6} {'llc/step':>9} {'mpki':>7}"
        )
        for sub in subs:
            share = sub.get("wall_share")
            bar = "#" * int(round(20 * share)) if isinstance(
                share, (int, float)) else ""
            lines.append(
                "  {name:<10} {share:>7} {wall:>8}s {cycles:>13} "
                "{instrs:>13} {ipc:>6} {llc:>9} {mpki:>7}  {bar}".format(
                    name=sub.get("sub_phase", "?"),
                    share=_fmt(share, ".1%"),
                    wall=_fmt(sub.get("wall_seconds"), ".4f"),
                    cycles=_fmt(sub.get("cycles"), ",.0f"),
                    instrs=_fmt(sub.get("instructions"), ",.0f"),
                    ipc=_fmt(sub.get("ipc"), ".2f"),
                    llc=_fmt(sub.get("llc_miss_per_agent_step"), ".4f"),
                    mpki=_fmt(sub.get("mpki"), ".2f"),
                    bar=bar,
                )
            )
        by_name = {
            s.get("sub_phase"): s for s in subs if isinstance(s, dict)
        }
        gather = by_name.get("gather", {}).get("wall_seconds")
        decide = by_name.get("decide", {}).get("wall_seconds")
        if (isinstance(gather, (int, float))
                and isinstance(decide, (int, float)) and decide > 0):
            lines.append(
                f"  gather/decide wall ratio: {gather / decide:.2f} "
                f"(ROADMAP item 1 tracks gather dominance)"
            )
    return lines


def render_folded(path, top=10):
    """Top stacks of a folded-stack file (sampling profiler output)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            raw = fh.read()
    except OSError as err:
        raise BadInput(f"{path}: cannot read: {err.strerror or err}") from err
    stacks = []
    for line in raw.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, count = line.rpartition(" ")
        if not stack or not count.isdigit():
            raise BadInput(f"{path}: not a folded-stack file "
                           f"(line {line[:60]!r})")
        stacks.append((int(count), stack))
    total = sum(c for c, _ in stacks)
    lines = [f"top stacks ({path}, {total} samples):"]
    if total == 0:
        lines.append("  (no samples)")
        return lines
    for count, stack in sorted(stacks, reverse=True)[:top]:
        leaf = stack.rsplit(";", 1)[-1]
        lines.append(f"  {count / total:6.1%} {count:>7}  {leaf}")
        lines.append(f"                  {stack}")
    return lines


# ---------------------------------------------------------------------------
# IPC regression gate (vs bench_history's HISTORY.jsonl trailing median)


def ipc_metrics(report):
    """The ipc.<backend>.<sub_phase> metrics this report carries."""
    return {
        name: value
        for name, value in bench_history.extract_metrics(report).items()
        if name.startswith("ipc.")
    }


def check_ipc(report, history_path, ipc_drop, min_entries, window):
    """Returns (exit_code, lines): compares sub-phase IPC to history."""
    lines = []
    candidate = ipc_metrics(report)
    if not candidate:
        lines.append("ipc gate: report carries no IPC data (no-PMU host "
                     "or non-telemetry build) — passing vacuously")
        return 0, lines
    key = bench_history.provenance_key(report)
    history = bench_history.matching_entries(
        bench_history.load_history(history_path), key
    )
    if window > 0:
        history = history[-window:]
    failures = []
    lines.append(
        f"ipc gate: {len(history)} comparable history entries, "
        f"budget {ipc_drop:.0%} drop vs trailing median"
    )
    for name in sorted(candidate):
        samples = [
            e["metrics"][name]
            for e in history
            if isinstance(e.get("metrics", {}).get(name), (int, float))
        ]
        if len(samples) < min_entries:
            lines.append(f"  {name:<28} ({len(samples)} entries — skipped)")
            continue
        base = bench_history.median(samples)
        current = candidate[name]
        drop = (base - current) / base if base > 0 else 0.0
        verdict = "FAIL" if drop > ipc_drop else "OK"
        if drop > ipc_drop:
            failures.append(f"{name}: median {base:.3f} -> {current:.3f}")
        lines.append(
            f"  {name:<28} median {base:6.3f} current {current:6.3f} "
            f"{-drop:+7.1%} {verdict}"
        )
    if failures:
        lines.append("ipc gate: sub-phase IPC regression:\n  "
                     + "\n  ".join(failures))
        return 1, lines
    lines.append("ipc gate: all sub-phase IPCs within budget")
    return 0, lines


# ---------------------------------------------------------------------------
# Self-test


def _fake_profile_report(ipc_scale=1.0, pmu=True):
    def sub(name, share, ipc):
        row = {
            "sub_phase": name,
            "wall_seconds": share * 0.01,
            "wall_share": share,
            "samples": 1024,
            "cycles": int(share * 1e7),
        }
        if pmu:
            row["instructions"] = int(share * 1e7 * ipc * ipc_scale)
            row["ipc"] = ipc * ipc_scale
            row["llc_miss_per_agent_step"] = 0.01
            row["mpki"] = 0.5
        return row

    return {
        "schema": "bitspread-bench/1",
        "bench": "profile",
        "quick": True,
        "hardware_concurrency": 1,
        "build": {"type": "release", "telemetry": True},
        "workload": {"n": 16384, "rounds": 64},
        "pmu": {"available": pmu, "subphase_markers": True,
                **({} if pmu else {"unavailable_reason": "forced"})},
        "benchmarks": [
            {"name": "profile_avx2", "items_per_second": 1.0e8}
        ],
        "profiles": [
            {
                "backend": "avx2",
                "pmu_available": pmu,
                "subphase_markers": True,
                "seconds": 0.04,
                "agent_steps": 1048512,
                "agent_steps_per_second": 2.6e7,
                "identical_to_unprofiled": True,
                "run_total": {"wall_seconds": 0.04, "cycles": 4 * 10**7},
                "sub_phases": [
                    sub("gather", 0.40, 1.8),
                    sub("fault", 0.20, 2.2),
                    sub("decide", 0.22, 2.5),
                    sub("commit", 0.18, 2.0),
                ],
            }
        ],
    }


def self_test():
    failures = []

    def case(name, fn):
        try:
            fn()
        except AssertionError as err:
            failures.append(name)
            print(f"  FAIL {name}: {err}")
        else:
            print(f"  ok   {name}")

    with tempfile.TemporaryDirectory() as tmp:
        history = os.path.join(tmp, "HISTORY.jsonl")

        def write(path, **kwargs):
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(_fake_profile_report(**kwargs), fh)
            return path

        good = write(os.path.join(tmp, "good.json"))
        nopmu = write(os.path.join(tmp, "nopmu.json"), pmu=False)

        def gate(path):
            report = load_profile_report(path)
            code, lines = check_ipc(report, history, 0.15, 3, 20)
            print("\n".join("    | " + ln for ln in lines))
            return code

        def test_render():
            lines = render_breakdown(load_profile_report(good))
            text = "\n".join(lines)
            assert "gather" in text and "ipc" in text, "breakdown incomplete"
            assert "gather/decide wall ratio" in text, "missing ratio line"

        def test_render_no_pmu():
            lines = render_breakdown(load_profile_report(nopmu))
            text = "\n".join(lines)
            assert "fallback" in text, "no-PMU report must say fallback"
            assert "gather" in text, "wall split must survive without PMU"

        def test_vacuous_without_history():
            assert gate(good) == 0, "empty history must pass vacuously"

        def test_no_pmu_vacuous():
            assert gate(nopmu) == 0, "a no-PMU report must pass vacuously"

        def test_regression_flagged():
            for i in range(3):
                entry = bench_history.make_entry(
                    _fake_profile_report(), f"c{i}", None
                )
                with open(history, "a", encoding="utf-8") as fh:
                    fh.write(json.dumps(entry) + "\n")
            assert gate(good) == 0, "identical IPC must pass"
            slow = write(os.path.join(tmp, "slow.json"), ipc_scale=0.5)
            assert gate(slow) == 1, "a 50% IPC drop must fail"
            fast = write(os.path.join(tmp, "fast.json"), ipc_scale=1.5)
            assert gate(fast) == 0, "an IPC improvement must pass"

        def test_no_pmu_vs_pmu_history():
            # History has IPC columns, the candidate (no-PMU host) has
            # none: must pass, not crash — CI runs on both kinds of host.
            assert gate(nopmu) == 0, "no-PMU candidate vs PMU history"

        def test_folded():
            folded = os.path.join(tmp, "stacks.folded")
            with open(folded, "w", encoding="utf-8") as fh:
                fh.write("main;run;gather 30\nmain;run;decide 10\n")
            lines = render_folded(folded)
            text = "\n".join(lines)
            assert "75.0%" in text and "gather" in text, f"bad top: {text}"

        def test_bad_inputs():
            for bad, what in [
                (os.path.join(tmp, "missing.json"), "missing file"),
                (write(os.path.join(tmp, "wrong.json")), None),
            ]:
                if what is None:
                    report = json.load(open(bad, encoding="utf-8"))
                    report["bench"] = "engine"
                    with open(bad, "w", encoding="utf-8") as fh:
                        json.dump(report, fh)
                    what = "wrong bench"
                try:
                    load_profile_report(bad)
                except BadInput:
                    continue
                raise AssertionError(f"{what} must raise BadInput")

        print("profile_report self-test:")
        case("breakdown renders PMU report", test_render)
        case("breakdown renders no-PMU report", test_render_no_pmu)
        case("vacuous pass without history", test_vacuous_without_history)
        case("no-PMU report passes vacuously", test_no_pmu_vacuous)
        case("IPC regression flagged vs history", test_regression_flagged)
        case("no-PMU candidate vs PMU history passes",
             test_no_pmu_vs_pmu_history)
        case("folded-stack top table", test_folded)
        case("bad inputs are clean errors", test_bad_inputs)

    if failures:
        print(f"self-test: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("self-test: all cases passed")
    return 0


# ---------------------------------------------------------------------------


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("report", nargs="?")
    parser.add_argument(
        "--history",
        default="results/HISTORY.jsonl",
        help="bench_history JSONL to compare IPC against "
        "(default results/HISTORY.jsonl; missing file = vacuous pass)",
    )
    parser.add_argument(
        "--ipc-drop",
        type=float,
        default=0.15,
        help="max tolerated relative sub-phase IPC drop (default 0.15)",
    )
    parser.add_argument(
        "--min-entries",
        type=int,
        default=3,
        help="history entries per metric before the gate arms (default 3)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=20,
        help="trailing history entries considered (default 20)",
    )
    parser.add_argument(
        "--folded",
        default=None,
        help="also render the top stacks of this folded-stack file",
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="run the built-in test cases and exit",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.report:
        parser.error("a BENCH_profile.json report is required")

    try:
        report = load_profile_report(args.report)
        lines = render_breakdown(report)
        if args.folded:
            lines.append("")
            lines.extend(render_folded(args.folded))
        code, gate_lines = check_ipc(
            report, args.history, args.ipc_drop, args.min_entries, args.window
        )
    except BadInput as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    print("\n".join(lines))
    print()
    print("\n".join(gate_lines))
    return code


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Piping into head/less closes stdout early; not an error.
        sys.exit(0)
