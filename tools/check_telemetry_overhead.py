#!/usr/bin/env python3
"""Compare two perf_smoke reports and fail on telemetry overhead.

Usage:
    check_telemetry_overhead.py BASELINE.json TELEMETRY.json [--max-regression R]
    check_telemetry_overhead.py --baseline B1.json B2.json ... \
                                --telemetry T1.json T2.json ... [--max-regression R]
    check_telemetry_overhead.py --self-test

With repeated reports per side (the --baseline/--telemetry list form), each
benchmark compares the per-row MEDIAN items/sec across that side's runs.
Median, not best-of: on burst-budgeted hosts the noise is two-sided —
throttled windows slow a run down AND turbo windows spike one 30% above
steady state — so a max-of-N estimate chases whichever side caught the one
lucky spike and never converges. Single-shot comparison swings ±20% per
row in both directions; CI takes three interleaved measurements per side,
which the median makes robust to one outlier run on each side.

Both inputs are unified bench reports ("bitspread-bench/1") written by
perf_smoke: BASELINE from the default build, TELEMETRY from the
BITSPREAD_TELEMETRY=ON build with NO sink installed. The compiled-in but
unsinked probes — the ScopedTimer phase probes AND the §3.8 PMU scopes /
kernel sub-phase markers, which in a telemetry build always pay their
one relaxed sink load per probe site — must stay within `--max-regression`
(default 5%) of the baseline throughput on every benchmark; a faster
telemetry build always passes.

Reports recorded while the SIGPROF sampling profiler was running
(pmu.sampling_active in the report, set when --profile-out= was passed)
are REJECTED as bad input: sampling interrupts perturb both sides of the
comparison, and sampling is off by default precisely so this gate
measures the probes alone. Reports predating the field are accepted.

Exit status 0 = within budget, 1 = regression, 2 = bad input.
"""

import argparse
import json
import statistics
import sys
import tempfile


class BadInput(Exception):
    """Input file missing, malformed, or not a bench report."""


def reject_sampling(report, path):
    """A report taken with the sampling profiler firing is not an overhead
    measurement; the pmu.sampling_active field is recorded by every bench
    (older reports without it pass unchallenged)."""
    pmu = report.get("pmu")
    if isinstance(pmu, dict) and pmu.get("sampling_active"):
        raise BadInput(
            f"{path}: recorded with the sampling profiler active "
            f"(--profile-out=); rerun without profiling flags"
        )


def load_benchmarks(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except OSError as err:
        raise BadInput(
            f"{path}: cannot read: {err.strerror or err}"
        ) from err
    except json.JSONDecodeError as err:
        raise BadInput(f"{path}: malformed JSON: {err}") from err
    if not isinstance(report, dict) or report.get("schema") != "bitspread-bench/1":
        raise BadInput(f"{path}: not a bitspread-bench/1 report")
    reject_sampling(report, path)
    benchmarks = report.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        raise BadInput(f"{path}: no benchmarks array")
    out = {}
    for row in benchmarks:
        name = row.get("name") if isinstance(row, dict) else None
        ips = row.get("items_per_second") if isinstance(row, dict) else None
        if not isinstance(name, str) or not isinstance(ips, (int, float)):
            raise BadInput(
                f"{path}: benchmark rows need string 'name' and numeric "
                f"'items_per_second'"
            )
        out[name] = float(ips)
    return out


def load_merged(paths):
    """Per-benchmark median items/sec across repeated runs of the same
    binary. Every file must be a valid, sampling-free report; rows appearing
    in any run count (the cross-side missing check still runs in compare)."""
    collected = {}
    for path in paths:
        for name, ips in load_benchmarks(path).items():
            collected.setdefault(name, []).append(ips)
    return {name: statistics.median(vals) for name, vals in collected.items()}


def compare(baseline, telemetry, max_regression):
    """Returns (exit_code, report_lines). Pure so the self-test can drive it."""
    lines = []
    missing = sorted(set(baseline) - set(telemetry))
    if missing:
        raise BadInput(f"telemetry report lacks benchmarks: {missing}")

    worst = 0.0
    failed = False
    lines.append(
        f"{'benchmark':<28} {'baseline':>12} {'telemetry':>12} {'delta':>8}"
    )
    for name, base_ips in sorted(baseline.items()):
        tele_ips = telemetry[name]
        if base_ips <= 0:
            raise BadInput(f"baseline throughput for {name} is {base_ips}")
        # Positive = telemetry build is slower.
        slowdown = (base_ips - tele_ips) / base_ips
        worst = max(worst, slowdown)
        verdict = "OK"
        if slowdown > max_regression:
            verdict = "FAIL"
            failed = True
        lines.append(
            f"{name:<28} {base_ips:12.3e} {tele_ips:12.3e} "
            f"{slowdown:+7.1%} {verdict}"
        )
    lines.append(f"\nworst slowdown: {worst:+.1%} (budget {max_regression:.0%})")
    return (1 if failed else 0), lines


# ---------------------------------------------------------------------------
# Self-test


def _fake_report(scale):
    return {
        "schema": "bitspread-bench/1",
        "benchmarks": [
            {"name": "agent_serial_step", "items_per_second": 4.0e7 * scale},
            {"name": "aggregate_step", "items_per_second": 3.0e6 * scale},
        ],
    }


def self_test():
    import os

    failures = []

    def case(name, fn):
        try:
            fn()
        except AssertionError as err:
            failures.append(name)
            print(f"  FAIL {name}: {err}")
        else:
            print(f"  ok   {name}")

    def bench(scale):
        return {
            b["name"]: b["items_per_second"]
            for b in _fake_report(scale)["benchmarks"]
        }

    def test_within_budget():
        code, _ = compare(bench(1.0), bench(0.97), 0.05)
        assert code == 0, "3% slowdown must pass a 5% budget"

    def test_over_budget():
        code, _ = compare(bench(1.0), bench(0.90), 0.05)
        assert code == 1, "10% slowdown must fail a 5% budget"

    def test_faster_passes():
        code, _ = compare(bench(1.0), bench(1.20), 0.05)
        assert code == 0, "a faster telemetry build must pass"

    def test_missing_benchmark():
        tele = bench(1.0)
        del tele["aggregate_step"]
        try:
            compare(bench(1.0), tele, 0.05)
        except BadInput:
            return
        raise AssertionError("missing benchmark must raise BadInput")

    def test_malformed_file():
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "broken.json")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write("{not json")
            try:
                load_benchmarks(path)
            except BadInput:
                return
        raise AssertionError("malformed JSON must raise BadInput")

    def test_missing_file():
        try:
            load_benchmarks("/nonexistent/report.json")
        except BadInput:
            return
        raise AssertionError("missing file must raise BadInput")

    def test_sampling_active_rejected():
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "sampled.json")
            report = _fake_report(1.0)
            report["pmu"] = {"available": False, "sampling_active": True}
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(report, fh)
            try:
                load_benchmarks(path)
            except BadInput:
                return
        raise AssertionError("sampling-active report must raise BadInput")

    def test_sampling_off_accepted():
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "unsampled.json")
            report = _fake_report(1.0)
            report["pmu"] = {"available": True, "sampling_active": False}
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(report, fh)
            loaded = load_benchmarks(path)
            assert "agent_serial_step" in loaded, "report must load"

    def _write_reports(tmp, side, scales):
        paths = []
        for i, scale in enumerate(scales):
            path = os.path.join(tmp, f"{side}{i}.json")
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(_fake_report(scale), fh)
            paths.append(path)
        return paths

    def test_median_survives_outlier_runs():
        # One outlier run per side — a 30% throttle on one, a 25% turbo
        # spike on the other — must not move the row estimate when the
        # remaining runs agree within budget.
        with tempfile.TemporaryDirectory() as tmp:
            base = load_merged(_write_reports(tmp, "base", [1.0, 0.7, 0.99]))
            tele = load_merged(_write_reports(tmp, "tele", [1.25, 0.97, 0.96]))
            code, _ = compare(base, tele, 0.05)
            assert code == 0, "median must discard one outlier per side"

    def test_median_keeps_real_regressions():
        with tempfile.TemporaryDirectory() as tmp:
            base = load_merged(_write_reports(tmp, "base", [1.0, 0.98, 0.99]))
            tele = load_merged(_write_reports(tmp, "tele", [0.90, 0.88, 0.89]))
            code, _ = compare(base, tele, 0.05)
            assert code == 1, "a slowdown present in every run must fail"

    def test_wrong_schema():
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "other.json")
            with open(path, "w", encoding="utf-8") as fh:
                json.dump({"schema": "something-else/1"}, fh)
            try:
                load_benchmarks(path)
            except BadInput:
                return
        raise AssertionError("wrong schema must raise BadInput")

    print("check_telemetry_overhead self-test:")
    case("3% slowdown within 5% budget", test_within_budget)
    case("10% slowdown fails 5% budget", test_over_budget)
    case("faster telemetry build passes", test_faster_passes)
    case("missing benchmark is a clean error", test_missing_benchmark)
    case("malformed JSON is a clean error", test_malformed_file)
    case("missing file is a clean error", test_missing_file)
    case("sampling-active report is rejected", test_sampling_active_rejected)
    case("sampling-off report is accepted", test_sampling_off_accepted)
    case("median discards outlier runs", test_median_survives_outlier_runs)
    case("median keeps real regressions", test_median_keeps_real_regressions)
    case("wrong schema is a clean error", test_wrong_schema)
    if failures:
        print(f"self-test: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("self-test: all cases passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("telemetry", nargs="?")
    parser.add_argument(
        "--baseline",
        dest="baseline_runs",
        nargs="+",
        default=[],
        metavar="REPORT",
        help="repeated baseline-build reports; the per-row median is compared",
    )
    parser.add_argument(
        "--telemetry",
        dest="telemetry_runs",
        nargs="+",
        default=[],
        metavar="REPORT",
        help="repeated telemetry-build reports; the per-row median is compared",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.05,
        help="maximum tolerated relative slowdown per benchmark (default 0.05)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the built-in test cases and exit",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if (args.baseline or args.telemetry) and (
        args.baseline_runs or args.telemetry_runs
    ):
        parser.error(
            "use either the positional report pair or the "
            "--baseline/--telemetry lists, not both"
        )
    base_paths = args.baseline_runs or ([args.baseline] if args.baseline else [])
    tele_paths = (
        args.telemetry_runs or ([args.telemetry] if args.telemetry else [])
    )
    if not base_paths or not tele_paths:
        parser.error("baseline and telemetry reports are required")

    try:
        baseline = load_merged(base_paths)
        telemetry = load_merged(tele_paths)
        code, lines = compare(baseline, telemetry, args.max_regression)
    except BadInput as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    print("\n".join(lines))
    if code != 0:
        print("telemetry overhead exceeds budget", file=sys.stderr)
    return code


if __name__ == "__main__":
    sys.exit(main())
