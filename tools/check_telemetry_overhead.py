#!/usr/bin/env python3
"""Compare two perf_smoke reports and fail on telemetry overhead.

Usage:
    check_telemetry_overhead.py BASELINE.json TELEMETRY.json [--max-regression R]

Both inputs are unified bench reports ("bitspread-bench/1") written by
perf_smoke: BASELINE from the default build, TELEMETRY from the
BITSPREAD_TELEMETRY=ON build with NO sink installed. The compiled-in but
unsinked probes must stay within `--max-regression` (default 5%) of the
baseline throughput on every benchmark; a faster telemetry build always
passes. Exit status 0 = within budget, 1 = regression, 2 = bad input.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    if report.get("schema") != "bitspread-bench/1":
        sys.exit(f"error: {path}: not a bitspread-bench/1 report")
    benchmarks = report.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        sys.exit(f"error: {path}: no benchmarks array")
    return {b["name"]: float(b["items_per_second"]) for b in benchmarks}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("telemetry")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.05,
        help="maximum tolerated relative slowdown per benchmark (default 0.05)",
    )
    args = parser.parse_args()

    try:
        baseline = load_benchmarks(args.baseline)
        telemetry = load_benchmarks(args.telemetry)
    except (OSError, json.JSONDecodeError, KeyError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    missing = sorted(set(baseline) - set(telemetry))
    if missing:
        print(f"error: telemetry report lacks benchmarks: {missing}",
              file=sys.stderr)
        return 2

    worst = 0.0
    failed = False
    print(f"{'benchmark':<28} {'baseline':>12} {'telemetry':>12} {'delta':>8}")
    for name, base_ips in sorted(baseline.items()):
        tele_ips = telemetry[name]
        if base_ips <= 0:
            print(f"error: baseline throughput for {name} is {base_ips}",
                  file=sys.stderr)
            return 2
        # Positive = telemetry build is slower.
        slowdown = (base_ips - tele_ips) / base_ips
        worst = max(worst, slowdown)
        verdict = "OK"
        if slowdown > args.max_regression:
            verdict = "FAIL"
            failed = True
        print(f"{name:<28} {base_ips:12.3e} {tele_ips:12.3e} "
              f"{slowdown:+7.1%} {verdict}")

    budget = args.max_regression
    print(f"\nworst slowdown: {worst:+.1%} (budget {budget:.0%})")
    if failed:
        print("telemetry overhead exceeds budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
