// Edge cases and API-surface details across modules: degenerate inputs,
// formatting, stop-rule combinations, extreme numerical regimes.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bias.h"
#include "analysis/bounds.h"
#include "analysis/roots.h"
#include "analysis/theorem6.h"
#include "core/configuration.h"
#include "core/protocol.h"
#include "engine/conflicting.h"
#include "engine/stopping.h"
#include "engine/trajectory.h"
#include "multi/configuration.h"
#include "protocols/majority.h"
#include "protocols/minority.h"
#include "protocols/voter.h"
#include "random/binomial.h"
#include "sim/table.h"

namespace bitspread {
namespace {

TEST(Describe, ConfigurationStringsContainFields) {
  const Configuration c{10, 4, Opinion::kOne, 2};
  const std::string text = c.describe();
  EXPECT_NE(text.find("n=10"), std::string::npos);
  EXPECT_NE(text.find("ones=4"), std::string::npos);
  EXPECT_NE(text.find("sources=2"), std::string::npos);

  MultiConfiguration mc;
  mc.counts = {1, 2, 3};
  EXPECT_NE(mc.describe().find("[1,2,3]"), std::string::npos);

  const ConflictingConfiguration cc{50, 20, 3, 4};
  EXPECT_NE(cc.describe().find("3 ones"), std::string::npos);
}

TEST(StopRules, BothIntervalBoundsActive) {
  StopRule rule;
  rule.interval_lo = 10;
  rule.interval_hi = 20;
  EXPECT_EQ(evaluate_stop(rule, Configuration{100, 5, Opinion::kOne}),
            StopReason::kIntervalExit);
  EXPECT_EQ(evaluate_stop(rule, Configuration{100, 25, Opinion::kOne}),
            StopReason::kIntervalExit);
  EXPECT_EQ(evaluate_stop(rule, Configuration{100, 15, Opinion::kOne}),
            std::nullopt);
}

TEST(StopRules, WrongConsensusOnlyStopsWhenEnabled) {
  const Configuration wrong{100, 0, Opinion::kOne, 0};  // Sourceless all-0.
  StopRule rule;
  EXPECT_EQ(evaluate_stop(rule, wrong), StopReason::kWrongConsensus);
  rule.stop_on_any_consensus = false;
  EXPECT_EQ(evaluate_stop(rule, wrong), std::nullopt);
}

TEST(StopRules, CorrectConsensusAlwaysStops) {
  StopRule rule;
  rule.stop_on_any_consensus = false;
  EXPECT_EQ(evaluate_stop(rule, correct_consensus(10, Opinion::kZero)),
            StopReason::kCorrectConsensus);
}

TEST(StopReasonNames, AllCovered) {
  EXPECT_EQ(to_string(StopReason::kCorrectConsensus), "correct-consensus");
  EXPECT_EQ(to_string(StopReason::kWrongConsensus), "wrong-consensus");
  EXPECT_EQ(to_string(StopReason::kRoundLimit), "round-limit");
  EXPECT_EQ(to_string(StopReason::kIntervalExit), "interval-exit");
}

TEST(Trajectory, MaxJumpAndStrideZero) {
  Trajectory traj(0);  // Stride 0 behaves as 1.
  traj.record(0, 10);
  traj.record(1, 25);
  traj.record(2, 20);
  EXPECT_EQ(traj.max_one_step_jump(), 15u);
  EXPECT_EQ(traj.size(), 3u);
}

TEST(Trajectory, ForceRecordOverwritesSameRound) {
  Trajectory traj;
  traj.record(0, 5);
  traj.force_record(0, 7);
  ASSERT_EQ(traj.size(), 1u);
  EXPECT_EQ(traj.back().ones, 7u);
}

TEST(Trajectory, ThinnedJumpIgnoresGaps) {
  Trajectory traj(10);
  traj.record(0, 0);
  traj.record(10, 1000);  // Non-adjacent rounds: not a one-step jump.
  EXPECT_EQ(traj.max_one_step_jump(), 0u);
}

TEST(Eq4Sum, ExtremeFractionsAndHugeSampleSizes) {
  const MinorityDynamics minority(SampleSizePolicy::sqrt_n_log_n());
  const std::uint64_t n = 1 << 22;  // l ~ 8000.
  for (const double p : {1e-12, 1e-6, 1.0 - 1e-12}) {
    const double q = eq4_adoption_sum(minority, Opinion::kZero, p, n);
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 1.0);
    EXPECT_TRUE(std::isfinite(q));
  }
  // At p -> 0 the sample is almost surely all-zeros: adoption ~ l*p.
  const double tiny = eq4_adoption_sum(minority, Opinion::kZero, 1e-12, n);
  EXPECT_LT(tiny, 1e-6);
}

TEST(Binomial, SingleTrialIsBernoulli) {
  Rng rng(1);
  int ones = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t x = binomial(rng, 1, 0.3);
    ASSERT_LE(x, 1u);
    ones += static_cast<int>(x);
  }
  EXPECT_NEAR(ones / static_cast<double>(kDraws), 0.3, 0.02);
}

TEST(Binomial, HalfIsSymmetricInDistribution) {
  Rng rng(2);
  const std::uint64_t n = 31;
  double skew_acc = 0.0;
  const int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    const double centered =
        static_cast<double>(binomial(rng, n, 0.5)) - 15.5;
    skew_acc += centered * centered * centered;
  }
  // Third central moment of Bin(n, 1/2) is 0.
  EXPECT_NEAR(skew_acc / kDraws, 0.0, 2.0);
}

TEST(SampleSizePolicy, EqualityAndDescriptions) {
  EXPECT_EQ(SampleSizePolicy::constant(3), SampleSizePolicy::constant(3));
  EXPECT_NE(SampleSizePolicy::constant(3), SampleSizePolicy::constant(4));
  EXPECT_NE(SampleSizePolicy::constant(3), SampleSizePolicy::log_n());
  EXPECT_NE(SampleSizePolicy::sqrt_n_log_n().describe().find("sqrt"),
            std::string::npos);
  EXPECT_NE(SampleSizePolicy::power(0.25, 2.0).describe().find("n^0.25"),
            std::string::npos);
}

TEST(Roots, SubintervalSearchExcludesOutsideRoots) {
  // Roots at 0.2 and 0.8; search [0.3, 0.6] finds none, [0.1, 0.5] one.
  const Polynomial p = Polynomial({-0.2, 1.0}) * Polynomial({-0.8, 1.0});
  EXPECT_TRUE(real_roots_in(p, 0.3, 0.6).empty());
  const auto roots = real_roots_in(p, 0.1, 0.5);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_NEAR(roots[0], 0.2, 1e-9);
}

TEST(Bias, NonObliviousMajorityHandComputed) {
  // Majority l=2 tie->own: g0 = {0, 0, 1}, g1 = {0, 1, 1}.
  // P0 = p^2, P1 = 2p(1-p) + p^2 = 2p - p^2.
  // F = -p + p(2p - p^2) + (1-p)p^2 = -p + 3p^2 - 2p^3.
  const MajorityDynamics majority(2, MajorityDynamics::TieBreak::kKeepOwn);
  const BiasFunction bias(majority, 1000);
  for (int i = 0; i <= 20; ++i) {
    const double p = i / 20.0;
    EXPECT_NEAR(bias(p), -p + 3 * p * p - 2 * p * p * p, 1e-12);
  }
}

TEST(Bounds, Proposition4YClampsInput) {
  EXPECT_DOUBLE_EQ(proposition4_y(-0.5, 3), proposition4_y(0.0, 3));
  EXPECT_DOUBLE_EQ(proposition4_y(1.5, 3), proposition4_y(1.0, 3));
}

TEST(Bounds, AzumaCapsAtOne) {
  EXPECT_DOUBLE_EQ(azuma_tail(10, 1.0, 0.0, 0.5), 1.0);
}

TEST(Theorem6Report, DescribeMentionsKeyNumbers) {
  const MinorityDynamics minority(3);
  const CaseAnalysis analysis = classify_bias(minority, 4096);
  const Theorem6Report report = check_theorem6(minority, 4096, analysis, 0.5);
  const std::string text = report.describe();
  EXPECT_NE(text.find("drift_ok=yes"), std::string::npos);
  EXPECT_NE(text.find("floor="), std::string::npos);
}

TEST(Table, NegativeNumbersAndPrecision) {
  EXPECT_EQ(Table::fmt(-2.5, 1), "-2.5");
  EXPECT_EQ(Table::fmt(0.000123, 6), "0.000123");
}

TEST(Protocol, VoterSampleSizeIrrelevanceInAggregate) {
  // The paper: Voter may be assumed l = 1 w.l.o.g. — the aggregate adoption
  // is p for every l.
  for (const std::uint32_t ell : {1u, 2u, 9u, 30u}) {
    const VoterDynamics voter(ell);
    for (const double p : {0.0, 0.25, 0.8, 1.0}) {
      EXPECT_DOUBLE_EQ(voter.aggregate_adoption(Opinion::kZero, p, 100), p);
      EXPECT_NEAR(eq4_adoption_sum(voter, Opinion::kZero, p, 100), p, 1e-12);
    }
  }
}

}  // namespace
}  // namespace bitspread
