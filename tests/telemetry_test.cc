// Telemetry subsystem tests: exact metrics under pool concurrency, the JSON
// model and bench-report schema, phase probes, pool utilization counters,
// and — the load-bearing guarantee — bit-identical run payloads whether
// telemetry records or not. The GoldenPayloadDigest constants are compiled
// into BOTH build flavors (default and -DBITSPREAD_TELEMETRY=ON), so passing
// in both proves the compile-time switch cannot perturb a simulation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "core/init.h"
#include "engine/agent.h"
#include "engine/aggregate.h"
#include "engine/sequential.h"
#include "engine/sharded.h"
#include "faults/environment.h"
#include "protocols/minority.h"
#include "protocols/voter.h"
#include "sim/parallel.h"
#include "telemetry/json.h"
#include "telemetry/jsonl.h"
#include "telemetry/metrics.h"
#include "telemetry/reporter.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace bitspread {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(Metrics, CounterIncrementsAndReads) {
  MetricsRegistry registry;
  auto counter = registry.counter("unit.count");
  EXPECT_EQ(counter.value(), 0u);
  counter.increment();
  counter.increment(41);
  EXPECT_EQ(counter.value(), 42u);

  // Same name, same counter.
  auto again = registry.counter("unit.count");
  again.increment(8);
  EXPECT_EQ(counter.value(), 50u);

  const auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.count("unit.count"), 1u);
  EXPECT_EQ(snapshot.counters.at("unit.count"), 50u);
}

TEST(Metrics, GaugeHoldsLastValue) {
  MetricsRegistry registry;
  auto gauge = registry.gauge("unit.level");
  gauge.set(1.5);
  gauge.set(-3.25);
  EXPECT_DOUBLE_EQ(gauge.value(), -3.25);
  EXPECT_DOUBLE_EQ(registry.snapshot().gauges.at("unit.level"), -3.25);
}

TEST(Metrics, HistogramBucketsAreExact) {
  MetricsRegistry registry;
  auto hist = registry.histogram("unit.latency", {1.0, 10.0, 100.0});
  // <=1 | <=10 | <=100 | overflow
  hist.observe(0.5);
  hist.observe(1.0);  // Upper bounds are inclusive.
  hist.observe(7.0);
  hist.observe(99.0);
  hist.observe(1000.0);
  const auto snapshot = registry.snapshot();
  const auto& h = snapshot.histograms.at("unit.latency");
  ASSERT_EQ(h.counts.size(), 4u);
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.counts[3], 1u);  // Overflow bucket.
  EXPECT_EQ(h.count, 5u);
  EXPECT_DOUBLE_EQ(h.sum, 0.5 + 1.0 + 7.0 + 99.0 + 1000.0);
}

TEST(Metrics, ConcurrentIncrementsUnderSharedPoolAreExact) {
  // The designed concurrency contract: every pool worker lands on its own
  // thread-local shard, so counts are EXACT (no torn buckets, no lost
  // updates) even though increments are lock-free.
  constexpr int kItems = 20'000;
  MetricsRegistry registry;
  auto counter = registry.counter("pool.items");
  auto hist = registry.histogram("pool.value", {0.25, 0.5, 0.75});
  parallel_for(
      kItems,
      [&](int i) {
        counter.increment();
        hist.observe(static_cast<double>(i % 100) / 100.0);
      },
      /*max_threads=*/8);
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kItems));
  const auto snapshot = registry.snapshot();
  const auto& h = snapshot.histograms.at("pool.value");
  EXPECT_EQ(h.count, static_cast<std::uint64_t>(kItems));
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t c : h.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, static_cast<std::uint64_t>(kItems));
  // i%100 in [0,100): 26 values <= 0.25, 25 in (0.25,0.5], 25 in (0.5,0.75],
  // 24 above — times kItems/100 passes.
  EXPECT_EQ(h.counts[0], static_cast<std::uint64_t>(kItems / 100 * 26));
  EXPECT_EQ(h.counts[3], static_cast<std::uint64_t>(kItems / 100 * 24));
}

TEST(Metrics, ExitedThreadsKeepTheirContributions) {
  MetricsRegistry registry;
  auto counter = registry.counter("exit.count");
  std::thread worker([&] {
    for (int i = 0; i < 1000; ++i) counter.increment();
  });
  worker.join();
  EXPECT_EQ(counter.value(), 1000u);
  EXPECT_EQ(registry.snapshot().counters.at("exit.count"), 1000u);
}

TEST(Metrics, ResetZeroesEverything) {
  MetricsRegistry registry;
  auto counter = registry.counter("reset.count");
  auto gauge = registry.gauge("reset.level");
  auto hist = registry.histogram("reset.hist", {1.0});
  counter.increment(7);
  gauge.set(2.0);
  hist.observe(0.5);
  registry.reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.histograms.at("reset.hist").count, 0u);
  // And the slots are still usable after a reset.
  counter.increment();
  EXPECT_EQ(counter.value(), 1u);
}

// ---------------------------------------------------------------------------
// JSON model + bench report schema

TEST(Json, SeedsRoundTripExactly) {
  JsonValue obj = JsonValue::object();
  obj.set("seed", JsonValue(std::uint64_t{0xFFFFFFFFFFFFFFFFull}));
  obj.set("negative", JsonValue(-42));
  obj.set("pi", JsonValue(3.141592653589793));
  obj.set("text", JsonValue("a \"quoted\" string\n"));
  obj.set("flag", JsonValue(true));
  const std::string text = obj.dump();
  const auto parsed = JsonValue::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dump(), text);
  EXPECT_EQ(parsed->find("seed")->as_uint(), 0xFFFFFFFFFFFFFFFFull);
  EXPECT_DOUBLE_EQ(parsed->find("pi")->as_double(), 3.141592653589793);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::parse("{").has_value());
  EXPECT_FALSE(JsonValue::parse("{} trailing").has_value());
  EXPECT_FALSE(JsonValue::parse("{\"a\": 01}").has_value());
  EXPECT_TRUE(JsonValue::parse("{\"a\": [1, 2.5, \"x\"]}").has_value());
}

TEST(Reporter, BuildPassesSchemaValidation) {
  JsonReporter reporter("unit_bench");
  reporter.set_experiment("E0");
  reporter.set_seed(12345);
  reporter.set_quick(true);
  reporter.set_workload("n", JsonValue(1024));
  reporter.add_phase("simulate", 0.125, 3);
  reporter.set_extra("all_ok", JsonValue(true));
  const JsonValue report = reporter.build();
  EXPECT_TRUE(validate_bench_report(report).empty())
      << validate_bench_report(report).front();
  EXPECT_EQ(report.find("schema")->as_string(), kBenchSchema);
  EXPECT_EQ(report.find("seed")->as_uint(), 12345u);
  const JsonValue* build = report.find("build");
  ASSERT_NE(build, nullptr);
  EXPECT_EQ(build->find("telemetry")->as_bool(), telemetry::kCompiledIn);
}

TEST(Reporter, ValidatorRejectsNonReports) {
  EXPECT_FALSE(validate_bench_report(JsonValue::object()).empty());
  JsonValue wrong_schema = JsonReporter("x").build();
  wrong_schema.set("schema", JsonValue("not-a-bench-report"));
  EXPECT_FALSE(validate_bench_report(wrong_schema).empty());
}

TEST(Reporter, WrittenFileParsesAndValidates) {
  const std::string path = testing::TempDir() + "/BENCH_unit.json";
  JsonReporter reporter("unit_file");
  reporter.set_seed(7);
  MetricsRegistry registry;
  registry.counter("outcomes.total").increment(3);
  reporter.set_metrics(registry.snapshot());
  ASSERT_TRUE(reporter.write_file(path));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const auto parsed = JsonValue::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(validate_bench_report(*parsed).empty());
  const JsonValue* metrics = parsed->find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->find("counters")->find("outcomes.total")->as_uint(), 3u);
}

// ---------------------------------------------------------------------------
// Phase probes and pool counters

TEST(PhaseStats, ScopedTimerRecordsOnlyWithSink) {
  telemetry::PhaseStats stats;
  {  // No sink installed: nothing recorded.
    const telemetry::ScopedTimer timer(telemetry::Phase::kRoundStep);
  }
  EXPECT_EQ(stats.count(telemetry::Phase::kRoundStep), 0u);

  telemetry::install_phase_sink(&stats);
  {
    const telemetry::ScopedTimer timer(telemetry::Phase::kRoundStep);
  }
  telemetry::install_phase_sink(nullptr);
  if (telemetry::kCompiledIn) {
    EXPECT_EQ(stats.count(telemetry::Phase::kRoundStep), 1u);
  } else {
    // Compiled out: the probe is an empty object and the sink stays unused.
    EXPECT_EQ(stats.count(telemetry::Phase::kRoundStep), 0u);
  }
  {  // Uninstalled again: back to silent.
    const telemetry::ScopedTimer timer(telemetry::Phase::kRoundStep);
  }
  EXPECT_EQ(stats.count(telemetry::Phase::kRoundStep),
            telemetry::kCompiledIn ? 1u : 0u);
}

TEST(PoolTelemetry, CountsItemsAndGenerationsExactly) {
  WorkerPool& pool = WorkerPool::shared();
  pool.reset_telemetry();
  constexpr int kItems = 64;
  std::atomic<int> executed{0};
  parallel_for(
      kItems, [&](int) { executed.fetch_add(1, std::memory_order_relaxed); },
      /*max_threads=*/4);
  ASSERT_EQ(executed.load(), kItems);
  const WorkerPoolTelemetry t = pool.telemetry();
  if (telemetry::kCompiledIn) {
    EXPECT_TRUE(t.recorded);
    EXPECT_EQ(t.generations, 1u);
    EXPECT_EQ(t.items, static_cast<std::uint64_t>(kItems));
    EXPECT_GT(t.dispatch_ns, 0u);
    std::uint64_t worker_items = 0, worker_generations = 0;
    for (const auto& w : t.workers) {
      worker_items += w.items;
      worker_generations += w.generations;
    }
    EXPECT_EQ(worker_items, static_cast<std::uint64_t>(kItems));
    EXPECT_EQ(worker_generations, 4u);  // 4 participants, 1 generation.
    const double u = t.utilization();
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.5);  // Clock granularity slack.
  } else {
    EXPECT_FALSE(t.recorded);
    EXPECT_EQ(t.items, 0u);
  }
}

// ---------------------------------------------------------------------------
// The determinism guarantee: telemetry on/off cannot change a run

// FNV-1a over the SEMANTIC payload of a run (reason, rounds/activations,
// final configuration, recovery segments) — deliberately excluding the
// RunTelemetry sidecar, which is measurement, not result.
class Digest {
 public:
  void fold(std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      hash_ ^= (v >> (8 * byte)) & 0xFF;
      hash_ *= 0x100000001B3ull;
    }
  }
  void fold_config(const Configuration& config) {
    fold(config.n);
    fold(config.ones);
    fold(static_cast<std::uint64_t>(to_int(config.correct)));
    fold(config.sources);
  }
  void fold_recoveries(const std::vector<RecoverySegment>& recoveries) {
    fold(recoveries.size());
    for (const RecoverySegment& seg : recoveries) {
      fold(seg.flip_round);
      fold(seg.recovered_round);
      fold(seg.recovered ? 1 : 0);
    }
  }
  void fold_result(const RunResult& result) {
    fold(static_cast<std::uint64_t>(result.reason));
    // ticks equals the old per-engine fold (rounds for parallel engines,
    // activations for sequential ones), so the golden digest is unchanged.
    fold(result.ticks);
    fold_config(result.final_config);
    fold_recoveries(result.recoveries);
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ull;
};

// One fixed workload per engine (plus faulty variants covering the fault
// probes), all from the same master seed.
std::uint64_t all_engines_digest() {
  const MinorityDynamics minority(3);
  const VoterDynamics voter;
  StopRule rule;
  rule.max_rounds = 300;
  const Configuration init = init_half(2048, Opinion::kOne);
  EnvironmentModel faults;
  faults.observation_noise = 0.02;
  faults.churn_rate = 0.01;
  faults.zealot_fraction = 0.05;
  faults.source_flip_rounds = {60};
  faults.convergence_quorum = 0.9;

  Digest digest;
  {
    const AggregateParallelEngine engine(voter);
    Rng rng(101);
    digest.fold_result(engine.run(init, rule, rng));
    Rng faulty_rng(102);
    digest.fold_result(engine.run(init, rule, faults, faulty_rng));
  }
  {
    const MemorylessAsStateful adapter(minority);
    const AgentParallelEngine engine(adapter);
    Rng rng(103);
    digest.fold_result(engine.run(init, rule, rng));
    Rng faulty_rng(104);
    digest.fold_result(engine.run(init, rule, faults, faulty_rng));
  }
  {
    const ShardedAgentEngine engine(minority, {.threads = 3});
    digest.fold_result(engine.run(init, rule, 105));
    digest.fold_result(engine.run(init, rule, faults, 106));
  }
  {
    const SequentialEngine engine(minority);
    StopRule short_rule;
    short_rule.max_rounds = 40;  // Sequential rounds cost n activations.
    const Configuration small = init_half(256, Opinion::kOne);
    Rng rng(107);
    digest.fold_result(engine.run(small, short_rule, rng));
    Rng faulty_rng(108);
    digest.fold_result(engine.run(small, short_rule, faults, faulty_rng));
  }
  return digest.value();
}

TEST(TelemetryDeterminism, RuntimeSinkDoesNotPerturbAnyEngine) {
  const std::uint64_t without_sink = all_engines_digest();
  telemetry::PhaseStats stats;
  telemetry::install_phase_sink(&stats);
  const std::uint64_t with_sink = all_engines_digest();
  telemetry::install_phase_sink(nullptr);
  EXPECT_EQ(without_sink, with_sink);
}

// The cross-build pin: this constant is compiled into BOTH the default and
// the telemetry build; each asserts the same payloads, so the compile-time
// switch provably cannot perturb a simulation. If an intentional engine
// change shifts the value, update it from the test's failure output — in
// both builds it must come out identical.
constexpr std::uint64_t kGoldenAllEnginesDigest = 15000701221148159086ull;

TEST(TelemetryDeterminism, GoldenPayloadDigestMatchesAcrossBuilds) {
  EXPECT_EQ(all_engines_digest(), kGoldenAllEnginesDigest)
      << "run payloads changed — update kGoldenAllEnginesDigest (must match "
         "in BOTH the default and the BITSPREAD_TELEMETRY=ON build)";
}

// The flight recorder rides the same guarantee: with a TraceRecorder AND a
// RoundStream installed, every engine still produces the golden payload —
// recording reads clocks and writes ring slots, never an RNG stream.
TEST(TelemetryDeterminism, FlightRecorderDoesNotPerturbAnyEngine) {
  telemetry::TraceRecorder recorder;
  telemetry::RoundStream stream(testing::TempDir() + "/digest_rounds.jsonl");
  ASSERT_TRUE(stream.ok());
  telemetry::install_trace_recorder(&recorder);
  telemetry::install_round_sink(&stream);
  const std::uint64_t with_recorder = all_engines_digest();
  telemetry::install_round_sink(nullptr);
  telemetry::install_trace_recorder(nullptr);
  EXPECT_EQ(with_recorder, kGoldenAllEnginesDigest)
      << "flight recorder perturbed a run payload";
  if (telemetry::kCompiledIn) {
    EXPECT_GT(recorder.recorded(), 0u);
    EXPECT_GT(stream.lines(), 0u);
  } else {
    // Compiled out: the probes are inline no-ops and nothing reaches either.
    EXPECT_EQ(recorder.recorded(), 0u);
    EXPECT_EQ(stream.lines(), 0u);
  }
}

TEST(TelemetryDeterminism, RunTelemetryRecordedMatchesBuildFlavor) {
  const VoterDynamics voter;
  const AggregateParallelEngine engine(voter);
  StopRule rule;
  rule.max_rounds = 100;
  Rng rng(9);
  const RunResult result = engine.run(init_half(512, Opinion::kOne), rule, rng);
  EXPECT_EQ(result.telemetry.recorded, telemetry::kCompiledIn);
  if (telemetry::kCompiledIn) {
    EXPECT_EQ(result.telemetry.rounds, result.rounds());
    EXPECT_GT(result.telemetry.samples_drawn, 0u);
    EXPECT_GT(result.telemetry.wall_seconds, 0.0);
  } else {
    EXPECT_EQ(result.telemetry.rounds, 0u);
  }
}

}  // namespace
}  // namespace bitspread
