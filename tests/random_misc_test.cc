// Tests for hypergeometric sampling, the alias method, and seed sequences.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>
#include <set>
#include <utility>
#include <vector>

#include "random/alias.h"
#include "random/floyd.h"
#include "random/hypergeometric.h"
#include "random/seeding.h"
#include "stats/ks.h"
#include "stats/summary.h"

namespace bitspread {
namespace {

TEST(HypergeometricPmf, SumsToOne) {
  for (const auto& [total, successes, draws] :
       std::vector<std::array<std::uint64_t, 3>>{
           {10, 3, 4}, {100, 50, 10}, {7, 7, 3}, {20, 1, 20}, {50, 25, 1}}) {
    const auto pmf = hypergeometric_pmf(total, successes, draws);
    EXPECT_NEAR(std::accumulate(pmf.begin(), pmf.end(), 0.0), 1.0, 1e-9)
        << total << "/" << successes << "/" << draws;
  }
}

TEST(HypergeometricPmf, MatchesHandComputedCase) {
  // N=5, K=2, n=2: P(0)=C(3,2)/C(5,2)=3/10, P(1)=6/10, P(2)=1/10.
  const auto pmf = hypergeometric_pmf(5, 2, 2);
  EXPECT_NEAR(pmf[0], 0.3, 1e-12);
  EXPECT_NEAR(pmf[1], 0.6, 1e-12);
  EXPECT_NEAR(pmf[2], 0.1, 1e-12);
}

TEST(Hypergeometric, EdgeCases) {
  Rng rng(1);
  EXPECT_EQ(hypergeometric(rng, 10, 0, 5), 0u);
  EXPECT_EQ(hypergeometric(rng, 10, 10, 5), 5u);
  EXPECT_EQ(hypergeometric(rng, 10, 4, 0), 0u);
  EXPECT_EQ(hypergeometric(rng, 10, 4, 10), 4u);
}

TEST(Hypergeometric, MeanMatches) {
  Rng rng(2);
  const std::uint64_t total = 1000, successes = 300, draws = 50;
  RunningStats stats;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    stats.add(static_cast<double>(
        hypergeometric(rng, total, successes, draws)));
  }
  const double mean =
      static_cast<double>(draws) * successes / static_cast<double>(total);
  EXPECT_NEAR(stats.mean(), mean, 0.1);
}

TEST(Hypergeometric, SupportRespectsBounds) {
  Rng rng(3);
  // N=10, K=8, n=5: k must be in [3, 5].
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t k = hypergeometric(rng, 10, 8, 5);
    EXPECT_GE(k, 3u);
    EXPECT_LE(k, 5u);
  }
}

TEST(AliasTable, NormalizesWeights) {
  const std::vector<double> weights{2.0, 6.0, 2.0};
  const AliasTable table(weights);
  EXPECT_NEAR(table.probability(0), 0.2, 1e-12);
  EXPECT_NEAR(table.probability(1), 0.6, 1e-12);
  EXPECT_NEAR(table.probability(2), 0.2, 1e-12);
}

TEST(AliasTable, SamplesMatchWeights) {
  const std::vector<double> weights{1.0, 0.0, 3.0, 6.0};
  const AliasTable table(weights);
  Rng rng(4);
  std::vector<int> counts(weights.size(), 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[table.sample(rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.1, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(kDraws), 0.6, 0.01);
}

TEST(AliasTable, SingleOutcome) {
  const std::vector<double> weights{5.0};
  const AliasTable table(weights);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.sample(rng), 0u);
}

TEST(AliasTable, UniformWeights) {
  const std::vector<double> weights(8, 1.0);
  const AliasTable table(weights);
  Rng rng(6);
  std::vector<int> counts(8, 0);
  const int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[table.sample(rng)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kDraws / 8.0, 600.0);
  }
}

TEST(SeedSequence, DeriveIsDeterministic) {
  const SeedSequence seeds(123);
  EXPECT_EQ(seeds.derive(1, 2, 3), seeds.derive(1, 2, 3));
  EXPECT_EQ(seeds.derive("label", 7), seeds.derive("label", 7));
}

TEST(SeedSequence, CoordinatesMatter) {
  const SeedSequence seeds(123);
  std::set<std::uint64_t> derived;
  for (std::uint64_t a = 0; a < 10; ++a) {
    for (std::uint64_t b = 0; b < 10; ++b) {
      derived.insert(seeds.derive(a, b));
    }
  }
  EXPECT_EQ(derived.size(), 100u);
}

TEST(SeedSequence, MasterSeedMatters) {
  const SeedSequence a(1);
  const SeedSequence b(2);
  EXPECT_NE(a.derive(0), b.derive(0));
}

TEST(SeedSequence, LabelsAreDistinct) {
  const SeedSequence seeds(9);
  EXPECT_NE(seeds.derive("voter"), seeds.derive("minority"));
}

TEST(SeedSequence, StreamsAreStatisticallyIndependent) {
  const SeedSequence seeds(77);
  Rng a = seeds.stream(0);
  Rng b = seeds.stream(1);
  const int kDraws = 5000;
  std::vector<double> xs(kDraws), ys(kDraws);
  double dot = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    xs[i] = a.next_double() - 0.5;
    ys[i] = b.next_double() - 0.5;
    dot += xs[i] * ys[i];
  }
  // Correlation ~ N(0, 1/sqrt(n)) under independence.
  const double corr = dot / kDraws * 12.0;  // Var(U-0.5) = 1/12.
  EXPECT_LT(std::abs(corr), 5.0 / std::sqrt(kDraws));
}

TEST(FloydSampler, ProducesDistinctIndicesInRange) {
  FloydSampler sampler;
  Rng rng(11);
  for (const auto& [n, k] : std::vector<std::pair<std::uint64_t, std::uint64_t>>{
           {10, 10}, {1000, 100}, {65, 65}, {1 << 20, 500}, {3, 1}}) {
    std::set<std::uint64_t> chosen;
    sampler.sample(n, k, rng, [&](std::uint64_t i) {
      EXPECT_LT(i, n);
      chosen.insert(i);
    });
    EXPECT_EQ(chosen.size(), k) << "n=" << n << " k=" << k;
  }
}

TEST(FloydSampler, ZeroDrawsIsNoop) {
  FloydSampler sampler;
  Rng rng(12);
  int visits = 0;
  sampler.sample(100, 0, rng, [&](std::uint64_t) { ++visits; });
  EXPECT_EQ(visits, 0);
}

TEST(FloydSampler, SubsetsAreUniform) {
  // n=6, k=3: all C(6,3)=20 subsets equally likely (the defining property
  // of Floyd's algorithm, and what makes it a drop-in replacement for
  // rejection resampling).
  FloydSampler sampler;
  Rng rng(13);
  std::map<std::uint32_t, std::uint64_t> subset_counts;
  const int kTrials = 40000;
  for (int t = 0; t < kTrials; ++t) {
    std::uint32_t mask = 0;
    sampler.sample(6, 3, rng, [&](std::uint64_t i) { mask |= 1u << i; });
    ++subset_counts[mask];
  }
  ASSERT_EQ(subset_counts.size(), 20u);
  std::vector<std::uint64_t> counts;
  for (const auto& [mask, count] : subset_counts) counts.push_back(count);
  const std::vector<double> uniform(20, 1.0 / 20.0);
  int dof = 0;
  const double stat = chi_square_statistic(counts, uniform, kTrials, &dof);
  EXPECT_GT(chi_square_p_value(stat, dof), 1e-4) << "stat=" << stat;
}

TEST(FloydSampler, SampleBatchMatchesCallbackApi) {
  // sample_batch is the kernel-facing wrapper over sample(): same generator
  // state in, same subset out, in the same emission order.
  FloydSampler sampler;
  for (const auto& [n, k] : std::vector<std::pair<std::uint64_t, std::uint64_t>>{
           {10, 10}, {1000, 100}, {65, 65}, {1 << 20, 500}, {3, 1}, {7, 0}}) {
    Rng callback_rng(21);
    Rng batch_rng(21);
    std::vector<std::uint64_t> via_callback;
    sampler.sample(n, k, callback_rng,
                   [&](std::uint64_t i) { via_callback.push_back(i); });
    std::vector<std::uint64_t> via_batch(k, ~0ull);
    sampler.sample_batch(n, k, batch_rng, via_batch.data());
    EXPECT_EQ(via_callback, via_batch) << "n=" << n << " k=" << k;
    // Both APIs must consume identical randomness: the next draw agrees.
    EXPECT_EQ(callback_rng(), batch_rng());
  }
}

TEST(FloydSampler, OnesCountIsHypergeometric) {
  // Counting ones over a Floyd sample from a planted 0/1 population must be
  // Hypergeometric(total, successes, draws) — the law the engines'
  // without-replacement mode promises. draws=96 also exercises the regime
  // beyond the old rejection sampler's hard l <= 64 cap.
  const std::uint64_t total = 300, successes = 120, draws = 96;
  std::vector<bool> population(total, false);
  for (std::uint64_t i = 0; i < successes; ++i) population[i] = true;

  FloydSampler sampler;
  Rng rng(14);
  const int kTrials = 30000;
  std::vector<std::uint64_t> counts(draws + 1, 0);
  for (int t = 0; t < kTrials; ++t) {
    std::uint32_t ones = 0;
    sampler.sample(total, draws, rng,
                   [&](std::uint64_t i) { ones += population[i] ? 1 : 0; });
    ++counts[ones];
  }
  const std::vector<double> expected =
      hypergeometric_pmf(total, successes, draws);
  int dof = 0;
  const double stat = chi_square_statistic(counts, expected, kTrials, &dof);
  EXPECT_GT(chi_square_p_value(stat, dof), 1e-4)
      << "stat=" << stat << " dof=" << dof;
}

}  // namespace
}  // namespace bitspread
