// Cross-cutting reproducibility guarantees: whole experiments, not just
// single streams, must replay bit-for-bit from the master seed.
#include <gtest/gtest.h>

#include "core/init.h"
#include "engine/aggregate.h"
#include "engine/sequential.h"
#include "protocols/minority.h"
#include "protocols/voter.h"
#include "sim/experiment.h"

namespace bitspread {
namespace {

ConvergenceMeasurement run_experiment(std::uint64_t master_seed) {
  const MinorityDynamics minority(SampleSizePolicy::sqrt_n_log_n());
  const AggregateParallelEngine engine(minority);
  const SeedSequence seeds(master_seed);
  StopRule rule;
  rule.max_rounds = 2000;
  const Configuration init = init_all_wrong(4096, Opinion::kOne);
  const auto runner = [&](Rng& rng) { return engine.run(init, rule, rng); };
  return measure_convergence(runner, seeds, /*cell=*/3, /*replicates=*/25);
}

TEST(Determinism, WholeExperimentReplaysBitForBit) {
  const ConvergenceMeasurement a = run_experiment(123456);
  const ConvergenceMeasurement b = run_experiment(123456);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.round_samples, b.round_samples);
  EXPECT_DOUBLE_EQ(a.rounds.mean(), b.rounds.mean());
  EXPECT_DOUBLE_EQ(a.rounds.variance(), b.rounds.variance());
}

TEST(Determinism, MasterSeedChangesResults) {
  const ConvergenceMeasurement a = run_experiment(1);
  const ConvergenceMeasurement b = run_experiment(2);
  EXPECT_NE(a.round_samples, b.round_samples);
}

TEST(Determinism, ReplicateOrderIrrelevantToEachReplicate) {
  // Replicate k's result depends only on (cell, k), not on which replicates
  // ran before it: running 10 then extending to 20 keeps the first 10.
  const VoterDynamics voter;
  const AggregateParallelEngine engine(voter);
  const SeedSequence seeds(77);
  StopRule rule;
  rule.max_rounds = 1000000;
  const Configuration init = init_half(128, Opinion::kOne);
  const auto runner = [&](Rng& rng) { return engine.run(init, rule, rng); };
  const auto ten = measure_convergence(runner, seeds, 0, 10);
  const auto twenty = measure_convergence(runner, seeds, 0, 20);
  ASSERT_GE(twenty.round_samples.size(), ten.round_samples.size());
  for (std::size_t i = 0; i < ten.round_samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(ten.round_samples[i], twenty.round_samples[i]);
  }
}

TEST(Determinism, EnginesDoNotShareHiddenState) {
  // Two engines over the same protocol advanced with separate RNGs produce
  // independent runs; the protocol object itself is stateless (const).
  const MinorityDynamics minority(3);
  const AggregateParallelEngine engine_a(minority);
  const SequentialEngine engine_b(minority);
  Rng rng_a(5), rng_b(5);
  Configuration config{200, 100, Opinion::kOne};
  const Configuration after_parallel = engine_a.step(config, rng_a);
  const auto seq = engine_b.step(config, rng_b);
  (void)seq;
  // Replaying the parallel step with a fresh identically seeded RNG matches,
  // proving the sequential interleaving did not perturb anything shared.
  Rng rng_c(5);
  EXPECT_EQ(engine_a.step(config, rng_c), after_parallel);
}

}  // namespace
}  // namespace bitspread
