// Tests for opinions, configurations, sample-size policies, problem
// predicates, and initializers.
#include <gtest/gtest.h>

#include <cmath>

#include "core/configuration.h"
#include "core/init.h"
#include "core/opinion.h"
#include "core/problem.h"
#include "core/sample_size.h"
#include "protocols/minority.h"
#include "protocols/perturbed.h"
#include "protocols/voter.h"

namespace bitspread {
namespace {

TEST(Opinion, RoundTripAndOpposite) {
  EXPECT_EQ(to_int(Opinion::kZero), 0);
  EXPECT_EQ(to_int(Opinion::kOne), 1);
  EXPECT_EQ(opposite(Opinion::kZero), Opinion::kOne);
  EXPECT_EQ(opposite(Opinion::kOne), Opinion::kZero);
  EXPECT_EQ(opinion_from(0), Opinion::kZero);
  EXPECT_EQ(opinion_from(1), Opinion::kOne);
  EXPECT_EQ(opinion_from(7), Opinion::kOne);
}

TEST(Configuration, ValidityRespectsSource) {
  EXPECT_TRUE((Configuration{10, 1, Opinion::kOne}.valid()));
  EXPECT_FALSE((Configuration{10, 0, Opinion::kOne}.valid()));
  EXPECT_TRUE((Configuration{10, 9, Opinion::kZero}.valid()));
  EXPECT_FALSE((Configuration{10, 10, Opinion::kZero}.valid()));
  EXPECT_FALSE((Configuration{0, 0, Opinion::kZero}.valid()));
  EXPECT_FALSE((Configuration{10, 11, Opinion::kOne}.valid()));
}

TEST(Configuration, ValidityWithMultipleSources) {
  EXPECT_TRUE((Configuration{10, 3, Opinion::kOne, 3}.valid()));
  EXPECT_FALSE((Configuration{10, 2, Opinion::kOne, 3}.valid()));
  EXPECT_TRUE((Configuration{10, 7, Opinion::kZero, 3}.valid()));
  EXPECT_FALSE((Configuration{10, 8, Opinion::kZero, 3}.valid()));
}

TEST(Configuration, NonSourceCounts) {
  const Configuration c{10, 4, Opinion::kOne};
  EXPECT_EQ(c.non_source_ones(), 3u);
  EXPECT_EQ(c.non_source_zeros(), 6u);
  const Configuration d{10, 4, Opinion::kZero};
  EXPECT_EQ(d.non_source_ones(), 4u);
  EXPECT_EQ(d.non_source_zeros(), 5u);
}

TEST(Configuration, SourcelessConsensusMode) {
  const Configuration c{10, 10, Opinion::kOne, 0};
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(c.non_source_ones(), 10u);
  EXPECT_TRUE(c.is_correct_consensus());
  const Configuration d{10, 0, Opinion::kOne, 0};
  EXPECT_TRUE(d.valid());
  EXPECT_TRUE(d.is_wrong_consensus());
}

TEST(Configuration, ConsensusPredicates) {
  EXPECT_TRUE((Configuration{5, 5, Opinion::kOne}.is_correct_consensus()));
  EXPECT_FALSE((Configuration{5, 4, Opinion::kOne}.is_consensus()));
  EXPECT_TRUE((Configuration{5, 0, Opinion::kZero}.is_correct_consensus()));
  EXPECT_FALSE((Configuration{5, 0, Opinion::kZero}.is_wrong_consensus()));
  EXPECT_EQ(correct_consensus(7, Opinion::kOne).ones, 7u);
  EXPECT_EQ(correct_consensus(7, Opinion::kZero).ones, 0u);
}

TEST(Configuration, FractionOnes) {
  const Configuration c{8, 2, Opinion::kOne};
  EXPECT_DOUBLE_EQ(c.fraction_ones(), 0.25);
  EXPECT_EQ(c.zeros(), 6u);
}

TEST(SampleSizePolicy, Constant) {
  const auto policy = SampleSizePolicy::constant(5);
  EXPECT_EQ(policy.sample_size(10), 5u);
  EXPECT_EQ(policy.sample_size(1000000), 5u);
  EXPECT_TRUE(policy.is_constant());
  EXPECT_EQ(policy.describe(), "l=5");
}

TEST(SampleSizePolicy, ConstantZeroClampsToOne) {
  EXPECT_EQ(SampleSizePolicy::constant(0).sample_size(10), 1u);
}

TEST(SampleSizePolicy, SqrtNLogN) {
  const auto policy = SampleSizePolicy::sqrt_n_log_n();
  const std::uint64_t n = 1 << 20;
  const double expected =
      std::sqrt(static_cast<double>(n) * std::log(static_cast<double>(n)));
  EXPECT_EQ(policy.sample_size(n),
            static_cast<std::uint32_t>(std::ceil(expected)));
  EXPECT_FALSE(policy.is_constant());
}

TEST(SampleSizePolicy, LogNAndPowerGrow) {
  const auto log_policy = SampleSizePolicy::log_n(2.0);
  EXPECT_GT(log_policy.sample_size(1 << 20), log_policy.sample_size(1 << 10));
  const auto pow_policy = SampleSizePolicy::power(0.5);
  EXPECT_EQ(pow_policy.sample_size(10000), 100u);
  EXPECT_GE(pow_policy.sample_size(2), 1u);
}

TEST(Proposition3, CompliantProtocolsPass) {
  const VoterDynamics voter;
  EXPECT_TRUE(proposition3_violations(voter, 100).empty());
  const MinorityDynamics minority(3);
  EXPECT_TRUE(proposition3_violations(minority, 100).empty());
}

TEST(Proposition3, PerturbedProtocolFails) {
  const VoterDynamics voter;
  const PerturbedProtocol noisy(voter, 0.1);
  const auto violations = proposition3_violations(noisy, 100);
  EXPECT_EQ(violations.size(), 2u);
}

TEST(IsAbsorbing, ConsensusOnlyAndProp3Gated) {
  const MinorityDynamics minority(3);
  EXPECT_TRUE(is_absorbing(minority, Configuration{10, 10, Opinion::kOne}));
  EXPECT_TRUE(is_absorbing(minority, Configuration{10, 0, Opinion::kZero}));
  EXPECT_FALSE(is_absorbing(minority, Configuration{10, 5, Opinion::kOne}));
  const VoterDynamics voter;
  const PerturbedProtocol noisy(voter, 0.5);
  EXPECT_FALSE(is_absorbing(noisy, Configuration{10, 10, Opinion::kOne}));
}

TEST(ExactDrift, VoterDriftIsPureSourceTerm) {
  // For Voter, P_b(p) = p, so E[X'] = z + (n-1)p: drift = z - p.
  const VoterDynamics voter;
  const Configuration c{100, 40, Opinion::kOne};
  const double drift = exact_one_round_drift(voter, c);
  EXPECT_NEAR(drift, 1.0 - 0.4, 1e-12);
  const Configuration d{100, 40, Opinion::kZero};
  EXPECT_NEAR(exact_one_round_drift(voter, d), -0.4, 1e-12);
}

TEST(InitAllWrong, OnlySourcesHoldCorrect) {
  const Configuration c = init_all_wrong(10, Opinion::kOne);
  EXPECT_EQ(c.ones, 1u);
  EXPECT_TRUE(c.valid());
  const Configuration d = init_all_wrong(10, Opinion::kZero);
  EXPECT_EQ(d.ones, 9u);
  EXPECT_TRUE(d.valid());
}

TEST(InitAllCorrect, IsCorrectConsensus) {
  EXPECT_TRUE(init_all_correct(10, Opinion::kOne).is_correct_consensus());
  EXPECT_TRUE(init_all_correct(10, Opinion::kZero).is_correct_consensus());
}

TEST(InitFraction, RoundsAndClamps) {
  EXPECT_EQ(init_fraction_ones(10, Opinion::kOne, 0.5).ones, 5u);
  EXPECT_EQ(init_fraction_ones(10, Opinion::kOne, 0.0).ones, 1u);  // source
  EXPECT_EQ(init_fraction_ones(10, Opinion::kZero, 1.0).ones, 9u);
  EXPECT_EQ(init_half(9, Opinion::kOne).ones, 5u);  // round(4.5) = 5
}

TEST(InitRandom, RespectsBiasAndValidity) {
  Rng rng(1);
  const int kDraws = 2000;
  double total = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const Configuration c = init_random(1000, Opinion::kZero, 0.3, rng);
    ASSERT_TRUE(c.valid());
    total += static_cast<double>(c.ones);
  }
  EXPECT_NEAR(total / kDraws, 0.3 * 999, 2.0);
}

}  // namespace
}  // namespace bitspread
