// The sharded agent-level engine: the determinism contract (bit-identical
// results for every thread count and shard count), agreement with the
// reference engines, and the stateful/adversarial paths.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/init.h"
#include "core/stateful.h"
#include "engine/agent.h"
#include "engine/sharded.h"
#include "markov/dense_chain.h"
#include "protocols/minority.h"
#include "protocols/three_majority.h"
#include "protocols/undecided.h"
#include "protocols/voter.h"
#include "sim/parallel.h"
#include "stats/ks.h"

namespace bitspread {
namespace {

struct RunRecord {
  RunResult result;
  std::vector<Trajectory::Point> points;
};

RunRecord run_voter(ShardedAgentEngine::Options options, std::uint64_t n,
                    std::uint64_t seed) {
  const VoterDynamics voter;
  const ShardedAgentEngine engine(voter, options);
  // A round cap, not consensus: bit-identity is asserted on the full
  // 1000-point trajectory, which is as strong and much faster than waiting
  // out the O(n log n) voter convergence.
  StopRule rule;
  rule.max_rounds = 1000;
  Trajectory trajectory;
  RunRecord record;
  record.result =
      engine.run(init_half(n, Opinion::kOne), rule, seed, &trajectory);
  record.points.assign(trajectory.points().begin(),
                       trajectory.points().end());
  return record;
}

void expect_identical(const RunRecord& a, const RunRecord& b) {
  EXPECT_EQ(a.result.reason, b.result.reason);
  EXPECT_EQ(a.result.rounds(), b.result.rounds());
  EXPECT_EQ(a.result.final_config, b.result.final_config);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].round, b.points[i].round);
    EXPECT_EQ(a.points[i].ones, b.points[i].ones);
  }
}

TEST(ShardedEngine, BitIdenticalAcrossThreadCounts) {
  // The headline guarantee: randomness is keyed by (round, block), so the
  // worker count is pure scheduling. n spans multiple blocks on purpose.
  const std::uint64_t n = 3 * ShardedAgentEngine::kBlockAgents + 77;
  const RunRecord one = run_voter({.threads = 1}, n, 42);
  for (const unsigned threads : {2u, 8u}) {
    const RunRecord many = run_voter({.threads = threads}, n, 42);
    expect_identical(one, many);
  }
}

TEST(ShardedEngine, BitIdenticalAcrossShardCounts) {
  const std::uint64_t n = 3 * ShardedAgentEngine::kBlockAgents + 77;
  const RunRecord baseline = run_voter({.threads = 2, .shards = 1}, n, 43);
  for (const std::uint32_t shards : {2u, 3u, 8u}) {
    const RunRecord other =
        run_voter({.threads = 2, .shards = shards}, n, 43);
    expect_identical(baseline, other);
  }
}

TEST(ShardedEngine, SeedFullyDeterminesRunAndSeedsDiffer) {
  const std::uint64_t n = ShardedAgentEngine::kBlockAgents + 5;
  const RunRecord a = run_voter({.threads = 4}, n, 7);
  const RunRecord b = run_voter({.threads = 4}, n, 7);
  expect_identical(a, b);
  const RunRecord c = run_voter({.threads = 4}, n, 8);
  bool same = a.points.size() == c.points.size();
  for (std::size_t i = 0; same && i < a.points.size(); ++i) {
    same = a.points[i].round == c.points[i].round &&
           a.points[i].ones == c.points[i].ones;
  }
  EXPECT_FALSE(same) << "different master seeds must diverge";
}

TEST(ShardedEngine, PopulationLayoutMatchesConfiguration) {
  const VoterDynamics voter;
  const ShardedAgentEngine engine(voter);
  const Configuration config{10, 4, Opinion::kOne};
  const auto population = engine.make_population(config);
  EXPECT_EQ(population.size(), 10u);
  EXPECT_EQ(population.count_ones(), 4u);
  EXPECT_EQ(population.opinion(0), Opinion::kOne);  // Source first.
  EXPECT_EQ(population.config(), config);

  // Correct opinion zero: the source displays 0, ones sit after it.
  const Configuration zero_config{10, 4, Opinion::kZero};
  const auto zero_population = engine.make_population(zero_config);
  EXPECT_EQ(zero_population.opinion(0), Opinion::kZero);
  EXPECT_EQ(zero_population.count_ones(), 4u);
  EXPECT_EQ(zero_population.config(), zero_config);
}

TEST(ShardedEngine, SourceIsPinnedAcrossSteps) {
  const VoterDynamics voter;
  const ShardedAgentEngine engine(voter);
  const SeedSequence seeds(1);
  auto population =
      engine.make_population(Configuration{2 * 4096, 1, Opinion::kOne});
  for (std::uint64_t t = 0; t < 30; ++t) {
    engine.step(population, t, seeds);
    EXPECT_EQ(population.opinion(0), Opinion::kOne);
  }
}

TEST(ShardedEngine, ConsensusAbsorbingForMinority) {
  const MinorityDynamics minority(3);
  const ShardedAgentEngine engine(minority);
  const SeedSequence seeds(2);
  auto population =
      engine.make_population(correct_consensus(5000, Opinion::kOne));
  for (std::uint64_t t = 0; t < 10; ++t) {
    engine.step(population, t, seeds);
    EXPECT_EQ(population.count_ones(), 5000u);
  }
}

TEST(ShardedEngine, CountOnesStaysConsistentWithPlane) {
  // The incrementally maintained ones-count must match a recount from the
  // packed plane after every round (partial last word included).
  const MinorityDynamics minority(3);
  const ShardedAgentEngine engine(minority);
  const SeedSequence seeds(3);
  const std::uint64_t n = 4096 + 100;
  auto population =
      engine.make_population(init_fraction_ones(n, Opinion::kOne, 0.4));
  for (std::uint64_t t = 0; t < 20; ++t) {
    engine.step(population, t, seeds);
    std::uint64_t recount = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      recount += to_int(population.opinion(i));
    }
    EXPECT_EQ(population.count_ones(), recount) << "round " << t;
  }
}

TEST(ShardedEngine, OneStepMatchesExactChainRow) {
  // One-step distribution against the exact dense-chain row, like the
  // aggregate and agent engines in engine_cross_validation_test.cc.
  const ThreeMajorityDynamics three;
  const std::uint64_t n = 24;
  const std::uint64_t x0 = 10;
  const DenseParallelChain chain(three, n, Opinion::kZero);
  const std::vector<double> expected = chain.transition_row(x0);

  const ShardedAgentEngine engine(three, {.threads = 2});
  const int kTrials = 30000;
  std::vector<std::uint64_t> counts(chain.state_count(), 0);
  for (int i = 0; i < kTrials; ++i) {
    auto population =
        engine.make_population(Configuration{n, x0, Opinion::kZero});
    engine.step(population, 0, SeedSequence(1000 + i));
    ++counts[population.count_ones() - chain.min_state()];
  }
  int dof = 0;
  const double stat = chi_square_statistic(counts, expected, kTrials, &dof);
  EXPECT_GT(chi_square_p_value(stat, dof), 1e-4)
      << "stat=" << stat << " dof=" << dof;
}

TEST(ShardedEngine, AdapterUnwrapsToFastPath) {
  const VoterDynamics voter;
  const MemorylessAsStateful adapter(voter);
  const ShardedAgentEngine direct(voter);
  const ShardedAgentEngine via_adapter(adapter);
  EXPECT_TRUE(direct.memoryless_fast_path());
  EXPECT_TRUE(via_adapter.memoryless_fast_path());
  // Identical seeds must give identical runs through either construction.
  StopRule rule;
  rule.max_rounds = 100000;
  const Configuration init = init_all_wrong(500, Opinion::kOne);
  const RunResult a = direct.run(init, rule, 99);
  const RunResult b = via_adapter.run(init, rule, 99);
  EXPECT_EQ(a.rounds(), b.rounds());
  EXPECT_EQ(a.final_config, b.final_config);
}

TEST(ShardedEngine, StatefulUndecidedConverges) {
  // The generic (virtual-update) path: USD from a 70% correct start reaches
  // the correct display consensus, matching the agent engine's behavior.
  const UndecidedStateDynamics usd;
  const ShardedAgentEngine engine(usd, {.threads = 2});
  EXPECT_FALSE(engine.memoryless_fast_path());
  StopRule rule;
  rule.max_rounds = 100000;
  const RunResult result =
      engine.run(init_fraction_ones(40, Opinion::kOne, 0.7), rule, 6);
  EXPECT_TRUE(result.converged()) << to_string(result.reason);
}

TEST(ShardedEngine, StatefulBitIdenticalAcrossThreads) {
  const UndecidedStateDynamics usd;
  StopRule rule;
  rule.max_rounds = 2000;
  const Configuration init =
      init_fraction_ones(2 * 4096 + 9, Opinion::kOne, 0.6);
  RunResult reference;
  for (const unsigned threads : {1u, 2u, 8u}) {
    const ShardedAgentEngine engine(usd, {.threads = threads});
    const RunResult result = engine.run(init, rule, 17);
    if (threads == 1u) {
      reference = result;
    } else {
      EXPECT_EQ(result.rounds(), reference.rounds());
      EXPECT_EQ(result.final_config, reference.final_config);
    }
  }
}

TEST(ShardedEngine, RunsFromAdversarialInternalStates) {
  // Self-stabilization quantifies over internal states: plant every agent
  // "undecided", re-pin the source, and demand convergence anyway.
  const UndecidedStateDynamics usd;
  const ShardedAgentEngine engine(usd);
  auto population = engine.make_population(
      init_fraction_ones(30, Opinion::kOne, 0.7));
  for (std::uint64_t i = 0; i < population.size(); ++i) {
    population.set_state(i, UndecidedStateDynamics::kUndecided);
  }
  population.set_opinion(0, Opinion::kOne);
  population.set_state(0, UndecidedStateDynamics::kCommitted);
  StopRule rule;
  rule.max_rounds = 100000;
  const RunResult result = engine.run_population(population, rule, 10);
  EXPECT_TRUE(result.converged()) << to_string(result.reason);
}

TEST(ShardedEngine, WithoutReplacementLargeSampleSize) {
  // l = 100 > 64: impossible under the old rejection sampler's cap, routine
  // with Floyd's algorithm (the MinoritySqrt-class regime).
  const MinorityDynamics minority(100);
  const ShardedAgentEngine engine(
      minority,
      {.sampling = ShardedAgentEngine::Sampling::kWithoutReplacement});
  StopRule rule;
  rule.max_rounds = 300;
  const RunResult result = engine.run(init_half(400, Opinion::kOne), rule, 5);
  EXPECT_NE(result.reason, StopReason::kIntervalExit);
  EXPECT_TRUE(result.final_config.valid());
}

TEST(ShardedEngine, WithoutReplacementBitIdenticalAcrossThreads) {
  const MinorityDynamics minority(7);
  StopRule rule;
  rule.max_rounds = 500;
  const Configuration init =
      init_half(ShardedAgentEngine::kBlockAgents + 321, Opinion::kOne);
  const ShardedAgentEngine serial(
      minority,
      {.threads = 1,
       .sampling = ShardedAgentEngine::Sampling::kWithoutReplacement});
  const ShardedAgentEngine threaded(
      minority,
      {.threads = 8,
       .shards = 5,
       .sampling = ShardedAgentEngine::Sampling::kWithoutReplacement});
  const RunResult a = serial.run(init, rule, 23);
  const RunResult b = threaded.run(init, rule, 23);
  EXPECT_EQ(a.rounds(), b.rounds());
  EXPECT_EQ(a.final_config, b.final_config);
}

TEST(ShardedEngine, AgreesWithAgentEngineInLaw) {
  // Convergence-time samples from the sharded and the reference agent
  // engine are drawn from the same distribution (KS).
  const VoterDynamics voter;
  const std::uint64_t n = 30;
  StopRule rule;
  rule.max_rounds = 1000000;

  const ShardedAgentEngine sharded(voter, {.threads = 2});
  const MemorylessAsStateful adapter(voter);
  const AgentParallelEngine agent(adapter);

  const int kTrials = 400;
  std::vector<double> sharded_times, agent_times;
  for (int i = 0; i < kTrials; ++i) {
    const RunResult a = sharded.run(Configuration{n, 10, Opinion::kOne}, rule,
                                    40000 + static_cast<std::uint64_t>(i));
    Rng rng(50000 + i);
    const RunResult b =
        agent.run(Configuration{n, 10, Opinion::kOne}, rule, rng);
    ASSERT_TRUE(a.converged());
    ASSERT_TRUE(b.converged());
    sharded_times.push_back(static_cast<double>(a.rounds()));
    agent_times.push_back(static_cast<double>(b.rounds()));
  }
  const double d = ks_statistic(sharded_times, agent_times);
  EXPECT_GT(ks_p_value(d, sharded_times.size(), agent_times.size()), 1e-3)
      << "KS=" << d;
}

TEST(WorkerPool, NestedParallelForRunsInline) {
  // A pool worker that fans out again must not deadlock on the pool it
  // occupies; the nested loop runs inline.
  std::vector<int> totals(4, 0);
  parallel_for(
      4,
      [&](int outer) {
        int sum = 0;
        parallel_for(8, [&](int inner) { sum += inner; }, 4);
        totals[static_cast<std::size_t>(outer)] = sum;
      },
      4);
  for (const int total : totals) EXPECT_EQ(total, 28);
}

TEST(WorkerPool, OversubscribedThreadCountStillCoversAllItems) {
  std::vector<std::atomic<int>> hits(64);
  parallel_for(64, [&](int i) { hits[static_cast<std::size_t>(i)]++; }, 16);
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

}  // namespace
}  // namespace bitspread
