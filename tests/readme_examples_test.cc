// Compile-and-run checks for the code shown in README.md — documentation
// that stops compiling fails CI here.
#include <gtest/gtest.h>

#include "core/init.h"
#include "analysis/bias.h"
#include "analysis/cases.h"
#include "analysis/theorem6.h"
#include "engine/aggregate.h"
#include "protocols/minority.h"

namespace bitspread {
namespace {

// The "defining your own protocol" snippet, verbatim (modulo this comment).
class Cautious final : public MemorylessProtocol {
 public:
  Cautious() : MemorylessProtocol(SampleSizePolicy::constant(4)) {}
  double g(Opinion own, std::uint32_t k, std::uint32_t ell,
           std::uint64_t n) const noexcept override {
    (void)n;
    return k == ell ? 1.0 : (k > ell / 2 && own == Opinion::kOne ? 0.9 : 0.0);
  }
  std::string name() const override { return "cautious"; }
};

TEST(ReadmeExamples, QuickstartSnippetRuns) {
  MinorityDynamics protocol(SampleSizePolicy::sqrt_n_log_n());
  AggregateParallelEngine engine(protocol);

  Rng rng(2024);
  StopRule rule;
  rule.max_rounds = 10'000;
  RunResult r =
      engine.run(init_all_wrong(1'000'000, Opinion::kOne), rule, rng);
  EXPECT_TRUE(r.converged());
  EXPECT_LT(r.rounds(), 100u);
}

TEST(ReadmeExamples, CustomProtocolSnippetAnalyzes) {
  const Cautious protocol;
  const std::uint64_t n = 1 << 14;
  const BiasFunction bias(protocol, n);
  EXPECT_LE(bias.to_polynomial().degree(), 5);
  EXPECT_FALSE(bias.roots().empty());
  const CaseAnalysis c = classify_bias(protocol, n);
  const Theorem6Report t = check_theorem6(protocol, n, c, 0.4);
  EXPECT_GT(t.predicted_floor, 1.0);
}

TEST(ReadmeExamples, CautiousIsProp3CompliantByConstruction) {
  const Cautious protocol;
  EXPECT_TRUE(protocol.maintains_consensus(1000));
  EXPECT_FALSE(protocol.is_oblivious(1000));
}

}  // namespace
}  // namespace bitspread
