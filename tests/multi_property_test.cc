// Property tests over RANDOM multi-opinion protocols: the no-spontaneous-
// adoption constraint, distributional validity, and aggregate/agent parity.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "multi/engine.h"
#include "multi/protocol.h"
#include "multi/protocols.h"
#include "random/rng.h"

namespace bitspread {
namespace {

// A random table protocol that distributes adoption mass over the opinions
// PRESENT in the sample plus the agent's own — so it respects footnote 2 by
// construction. Deterministic given the seed.
class RandomMultiProtocol final : public MultiOpinionProtocol {
 public:
  RandomMultiProtocol(std::uint32_t opinions, std::uint32_t ell,
                      std::uint64_t seed)
      : MultiOpinionProtocol(opinions, SampleSizePolicy::constant(ell)),
        seed_(seed) {}

  void adoption_distribution(std::uint32_t own,
                             std::span<const std::uint32_t> histogram,
                             std::uint32_t /*ell*/, std::uint64_t /*n*/,
                             std::span<double> out) const override {
    // Deterministic pseudo-random weights per (own, histogram) cell.
    std::uint64_t key = seed_ ^ (static_cast<std::uint64_t>(own) << 40);
    for (std::size_t j = 0; j < histogram.size(); ++j) {
      key = key * 0x9e3779b97f4a7c15ULL + histogram[j] + 1;
    }
    SplitMix64 mixer(key);
    double total = 0.0;
    for (std::size_t j = 0; j < out.size(); ++j) {
      const bool allowed = histogram[j] > 0 || j == own;
      out[j] = allowed
                   ? 0.05 + static_cast<double>(mixer.next() >> 11) * 0x1.0p-53
                   : 0.0;
      total += out[j];
    }
    for (double& v : out) v /= total;
  }

  std::string name() const override { return "random-multi"; }

 private:
  std::uint64_t seed_;
};

class RandomMultiTest : public ::testing::TestWithParam<int> {
 protected:
  RandomMultiProtocol make_protocol(std::uint32_t opinions,
                                    std::uint32_t ell) const {
    return RandomMultiProtocol(opinions, ell,
                               0xfeed + 131 * GetParam());
  }
};

TEST_P(RandomMultiTest, RespectsNoSpontaneousAdoption) {
  const RandomMultiProtocol protocol = make_protocol(3, 4);
  EXPECT_TRUE(protocol.respects_no_spontaneous_adoption(1000));
}

TEST_P(RandomMultiTest, AggregateDistributionIsValid) {
  const RandomMultiProtocol protocol = make_protocol(4, 3);
  const MultiAggregateEngine engine(protocol);
  MultiConfiguration config;
  config.counts = {30, 25, 25, 20};
  config.correct = 0;
  for (std::uint32_t own = 0; own < 4; ++own) {
    const auto q = engine.adoption_distribution(own, config);
    double total = 0.0;
    for (const double v : q) {
      EXPECT_GE(v, -1e-15);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_P(RandomMultiTest, UnpopulatedOpinionStaysUnpopulatedUnlessOwn) {
  // If opinion 3 has zero holders, non-holders can never land on it.
  const RandomMultiProtocol protocol = make_protocol(4, 3);
  const MultiAggregateEngine engine(protocol);
  MultiConfiguration config;
  config.counts = {40, 30, 30, 0};
  config.correct = 0;
  for (std::uint32_t own = 0; own < 3; ++own) {
    const auto q = engine.adoption_distribution(own, config);
    EXPECT_NEAR(q[3], 0.0, 1e-15) << "own=" << own;
  }
  Rng rng(1 + GetParam());
  for (int t = 0; t < 30; ++t) {
    config = engine.step(config, rng);
    ASSERT_EQ(config.counts[3], 0u);
  }
}

TEST_P(RandomMultiTest, AggregateAndAgentOneStepMeansAgree) {
  const RandomMultiProtocol protocol = make_protocol(3, 3);
  const MultiAggregateEngine aggregate(protocol);
  const MultiAgentEngine agent(protocol);
  MultiConfiguration config;
  config.counts = {40, 30, 30};
  config.correct = 1;
  const int kTrials = 500;
  std::vector<double> agg(3, 0.0), ag(3, 0.0);
  Rng rng_a(10 + GetParam()), rng_b(20 + GetParam());
  for (int i = 0; i < kTrials; ++i) {
    const MultiConfiguration a = aggregate.step(config, rng_a);
    auto population = agent.make_population(config);
    agent.step(population, rng_b);
    const MultiConfiguration b = population.config();
    for (int j = 0; j < 3; ++j) {
      agg[j] += static_cast<double>(a.counts[j]) / kTrials;
      ag[j] += static_cast<double>(b.counts[j]) / kTrials;
    }
  }
  for (int j = 0; j < 3; ++j) {
    EXPECT_NEAR(agg[j], ag[j], 1.5) << "opinion " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMultiTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace bitspread
