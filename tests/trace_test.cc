// Flight-recorder tests: ring wraparound and capacity accounting, Chrome
// trace-event export validity (matched B/E pairs, monotone timestamps,
// counter/instant interleaving), the structural validator's rejection cases,
// the per-round JSONL stream's stride/line-count contract, and — gated on
// the build flavor — the engine and worker-pool probes. The TraceRecorder
// and RoundStream classes compile in BOTH builds (their direct APIs are
// exercised unconditionally); only the probe-driven tests branch on
// telemetry::kCompiledIn.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "core/init.h"
#include "engine/aggregate.h"
#include "protocols/voter.h"
#include "sim/parallel.h"
#include "telemetry/json.h"
#include "telemetry/jsonl.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace bitspread {
namespace {

using telemetry::TraceRecorder;

// Pull the traceEvents array out of an exported document.
const std::vector<JsonValue>& events_of(const JsonValue& trace) {
  const JsonValue* events = trace.find("traceEvents");
  EXPECT_NE(events, nullptr);
  EXPECT_TRUE(events->is_array());
  return events->items();
}

// Count events with a given ph (and optionally a given name).
int count_events(const JsonValue& trace, const std::string& ph,
                 const std::string& name = "") {
  int count = 0;
  for (const JsonValue& e : events_of(trace)) {
    if (e.find("ph")->as_string() != ph) continue;
    if (!name.empty() && e.find("name")->as_string() != name) continue;
    ++count;
  }
  return count;
}

// ---------------------------------------------------------------------------
// Ring buffer: wraparound and capacity accounting

TEST(TraceRing, WraparoundEvictsOldestKeepsNewest) {
  TraceRecorder recorder({.capacity = 8});
  // 20 instants with microsecond-aligned timestamps i -> i us.
  for (std::uint64_t i = 0; i < 20; ++i) {
    recorder.instant("tick", i * 1000);
  }
  EXPECT_EQ(recorder.recorded(), 20u);
  EXPECT_EQ(recorder.stored(), 8u);
  EXPECT_EQ(recorder.dropped(), 12u);

  // Export holds exactly the NEWEST 8 ticks: 12, 13, ..., 19 us.
  const JsonValue trace = recorder.export_chrome_trace();
  std::vector<double> ts;
  for (const JsonValue& e : events_of(trace)) {
    if (e.find("ph")->as_string() == "i") ts.push_back(e.find("ts")->as_double());
  }
  ASSERT_EQ(ts.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(ts[i], 12.0 + i);
}

TEST(TraceRing, AccountingInvariantHoldsAtEveryFill) {
  TraceRecorder recorder({.capacity = 4});
  for (std::uint64_t i = 1; i <= 10; ++i) {
    recorder.counter("x", i * 1000, i);
    EXPECT_EQ(recorder.recorded(), i);
    EXPECT_EQ(recorder.stored(), std::min<std::uint64_t>(i, 4));
    EXPECT_EQ(recorder.recorded(), recorder.stored() + recorder.dropped());
  }
}

TEST(TraceRing, EachThreadGetsItsOwnLane) {
  TraceRecorder recorder;
  recorder.instant("main", 1000);
  EXPECT_EQ(recorder.buffers(), 1u);
  std::thread other([&] { recorder.instant("other", 2000); });
  other.join();
  EXPECT_EQ(recorder.buffers(), 2u);
  EXPECT_EQ(recorder.recorded(), 2u);

  // Lanes surface as distinct tids, each with thread_name metadata.
  const JsonValue trace = recorder.export_chrome_trace();
  EXPECT_EQ(count_events(trace, "M"), 2);
  std::vector<std::uint64_t> tids;
  for (const JsonValue& e : events_of(trace)) {
    if (e.find("ph")->as_string() == "i") {
      tids.push_back(e.find("tid")->as_uint());
    }
  }
  ASSERT_EQ(tids.size(), 2u);
  EXPECT_NE(tids[0], tids[1]);
}

// ---------------------------------------------------------------------------
// Chrome trace export: structure the validator (and Perfetto) demand

TEST(TraceExport, NestedSpansBecomeMatchedMonotonePairs) {
  TraceRecorder recorder;
  // RAII order: the INNER span closes (is pushed) before the outer one.
  recorder.span("inner", 20'000, 30'000);
  recorder.counter("X_t", 25'000, 512);
  recorder.instant("source_flip", 40'000);
  recorder.span("outer", 10'000, 50'000);

  const JsonValue trace = recorder.export_chrome_trace();
  EXPECT_TRUE(telemetry::validate_chrome_trace(trace).empty())
      << telemetry::validate_chrome_trace(trace).front();
  EXPECT_EQ(count_events(trace, "B"), 2);
  EXPECT_EQ(count_events(trace, "E"), 2);
  EXPECT_EQ(count_events(trace, "C", "X_t"), 1);
  EXPECT_EQ(count_events(trace, "i", "source_flip"), 1);

  // Reconstructed chronological order — the counter at 25us lands inside
  // the inner span (20..30us), the instant after it — with non-decreasing
  // ts throughout.
  std::vector<std::string> shape;
  double last_ts = 0.0;
  for (const JsonValue& e : events_of(trace)) {
    const std::string ph = e.find("ph")->as_string();
    if (ph == "M") continue;
    const double ts = e.find("ts")->as_double();
    EXPECT_GE(ts, last_ts);
    last_ts = ts;
    shape.push_back(ph + ":" + e.find("name")->as_string());
  }
  const std::vector<std::string> expected{"B:outer", "B:inner", "C:X_t",
                                          "E:inner", "i:source_flip",
                                          "E:outer"};
  EXPECT_EQ(shape, expected);

  // Counters carry their value in args.value.
  for (const JsonValue& e : events_of(trace)) {
    if (e.find("ph")->as_string() == "C") {
      EXPECT_EQ(e.find("args")->find("value")->as_uint(), 512u);
    }
  }
}

TEST(TraceExport, IsRepeatableAndLeavesRingsUntouched) {
  TraceRecorder recorder;
  recorder.span("work", 1'000, 2'000);
  const std::string first = recorder.export_chrome_trace().dump();
  const std::string second = recorder.export_chrome_trace().dump();
  EXPECT_EQ(first, second);
  EXPECT_EQ(recorder.stored(), 1u);
}

TEST(TraceExport, WriteChromeTraceRoundTrips) {
  TraceRecorder recorder;
  recorder.span("work", 1'000, 2'000);
  const std::string path = testing::TempDir() + "/trace_roundtrip.json";
  ASSERT_TRUE(recorder.write_chrome_trace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const auto parsed = JsonValue::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(telemetry::validate_chrome_trace(*parsed).empty());
  EXPECT_FALSE(recorder.write_chrome_trace("/nonexistent_dir/trace.json"));
}

// ---------------------------------------------------------------------------
// The validator's rejection cases

JsonValue make_event(const char* name, const char* ph, double ts,
                     std::uint64_t tid) {
  JsonValue e = JsonValue::object();
  e.set("name", JsonValue(name));
  e.set("ph", JsonValue(ph));
  e.set("ts", JsonValue(ts));
  e.set("pid", JsonValue(1));
  e.set("tid", JsonValue(tid));
  return e;
}

JsonValue make_trace(std::vector<JsonValue> events) {
  JsonValue array = JsonValue::array();
  for (JsonValue& e : events) array.push_back(std::move(e));
  JsonValue trace = JsonValue::object();
  trace.set("traceEvents", std::move(array));
  return trace;
}

TEST(TraceValidator, RejectsStructuralBreakage) {
  // Not an object at all.
  EXPECT_FALSE(telemetry::validate_chrome_trace(JsonValue(3)).empty());
  // Object without traceEvents.
  EXPECT_FALSE(telemetry::validate_chrome_trace(JsonValue::object()).empty());
  // Event missing "ph".
  JsonValue no_ph = make_event("x", "B", 1.0, 0);
  no_ph.set("ph", JsonValue());
  EXPECT_FALSE(
      telemetry::validate_chrome_trace(make_trace({std::move(no_ph)})).empty());
  // Unknown phase letter.
  EXPECT_FALSE(telemetry::validate_chrome_trace(
                   make_trace({make_event("x", "Q", 1.0, 0)}))
                   .empty());
}

TEST(TraceValidator, RejectsUnbalancedOrMismatchedSpans) {
  // B without E.
  EXPECT_FALSE(telemetry::validate_chrome_trace(
                   make_trace({make_event("open", "B", 1.0, 0)}))
                   .empty());
  // E without B.
  EXPECT_FALSE(telemetry::validate_chrome_trace(
                   make_trace({make_event("close", "E", 1.0, 0)}))
                   .empty());
  // Name mismatch at the top of the stack.
  EXPECT_FALSE(telemetry::validate_chrome_trace(
                   make_trace({make_event("a", "B", 1.0, 0),
                               make_event("b", "E", 2.0, 0)}))
                   .empty());
  // The matched version of the same stack passes.
  EXPECT_TRUE(telemetry::validate_chrome_trace(
                  make_trace({make_event("a", "B", 1.0, 0),
                              make_event("a", "E", 2.0, 0)}))
                  .empty());
}

TEST(TraceValidator, RejectsTimeTravelPerLane) {
  EXPECT_FALSE(telemetry::validate_chrome_trace(
                   make_trace({make_event("a", "i", 5.0, 0),
                               make_event("b", "i", 1.0, 0)}))
                   .empty());
  // Different lanes are independent clocks: no cross-tid ordering demanded.
  EXPECT_TRUE(telemetry::validate_chrome_trace(
                  make_trace({make_event("a", "i", 5.0, 0),
                              make_event("b", "i", 1.0, 1)}))
                  .empty());
}

TEST(TraceValidator, RejectsCounterWithoutValue) {
  EXPECT_FALSE(telemetry::validate_chrome_trace(
                   make_trace({make_event("X_t", "C", 1.0, 0)}))
                   .empty());
  JsonValue counter = make_event("X_t", "C", 1.0, 0);
  JsonValue args = JsonValue::object();
  args.set("value", JsonValue(7));
  counter.set("args", std::move(args));
  EXPECT_TRUE(telemetry::validate_chrome_trace(
                  make_trace({std::move(counter)}))
                  .empty());
}

// ---------------------------------------------------------------------------
// RoundStream: the per-round JSONL contract

TEST(RoundStream, StrideControlsLineCount) {
  const std::string path = testing::TempDir() + "/stream_stride.jsonl";
  telemetry::RoundStream stream(path, {.stride = 4});
  ASSERT_TRUE(stream.ok());
  for (std::uint64_t round = 0; round <= 100; ++round) {
    stream.on_round(round, 500, 1000);
  }
  EXPECT_EQ(stream.rounds_seen(), 101u);
  // Rounds 0, 4, 8, ..., 100: floor(100/4) + 1 lines.
  EXPECT_EQ(stream.lines(), 26u);
  stream.flush();

  std::ifstream in(path);
  std::string line;
  std::size_t file_lines = 0;
  while (std::getline(in, line)) ++file_lines;
  EXPECT_EQ(file_lines, 26u);
}

TEST(RoundStream, LinesCarryFractionAndDrift) {
  const std::string path = testing::TempDir() + "/stream_drift.jsonl";
  telemetry::RoundStream stream(path);
  ASSERT_TRUE(stream.ok());
  // Logistic-style bias: line drift must equal n * F(x/n).
  stream.set_bias([](double x) { return x * (1.0 - x); });
  stream.on_round(0, 1000, 4000);
  stream.flush();

  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const auto parsed = JsonValue::parse(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("round")->as_uint(), 0u);
  EXPECT_EQ(parsed->find("ones")->as_uint(), 1000u);
  EXPECT_EQ(parsed->find("n")->as_uint(), 4000u);
  EXPECT_DOUBLE_EQ(parsed->find("x")->as_double(), 0.25);
  EXPECT_DOUBLE_EQ(parsed->find("drift")->as_double(),
                   4000.0 * 0.25 * (1.0 - 0.25));
  const JsonValue* phase_ns = parsed->find("phase_ns");
  ASSERT_NE(phase_ns, nullptr);
  EXPECT_TRUE(phase_ns->is_object());
}

TEST(RoundStream, DriftIsNullWithoutBias) {
  const std::string path = testing::TempDir() + "/stream_nodrift.jsonl";
  telemetry::RoundStream stream(path);
  ASSERT_TRUE(stream.ok());
  stream.on_round(0, 1, 2);
  stream.flush();
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const auto parsed = JsonValue::parse(line);
  ASSERT_TRUE(parsed.has_value());
  const JsonValue* drift = parsed->find("drift");
  ASSERT_NE(drift, nullptr);
  EXPECT_EQ(drift->kind(), JsonValue::Kind::kNull);
}

// ---------------------------------------------------------------------------
// Engine and pool probes (content gated on the build flavor)

TEST(TraceProbes, AggregateEngineStreamsEveryRound) {
  TraceRecorder recorder;
  const std::string path = testing::TempDir() + "/probe_rounds.jsonl";
  telemetry::RoundStream stream(path);
  ASSERT_TRUE(stream.ok());
  telemetry::install_trace_recorder(&recorder);
  telemetry::install_round_sink(&stream);

  const VoterDynamics voter;
  const AggregateParallelEngine engine(voter);
  StopRule rule;
  rule.max_rounds = 50;  // Voter needs ~n rounds: no consensus inside 50.
  Rng rng(11);
  const RunResult result =
      engine.run(init_half(4096, Opinion::kOne), rule, rng);

  telemetry::install_round_sink(nullptr);
  telemetry::install_trace_recorder(nullptr);

  if (telemetry::kCompiledIn) {
    ASSERT_EQ(result.rounds(), 50u);
    // Round 0 plus one record per executed round.
    EXPECT_EQ(stream.rounds_seen(), result.rounds() + 1);
    EXPECT_EQ(stream.lines(), result.rounds() + 1);
    const JsonValue trace = recorder.export_chrome_trace();
    EXPECT_TRUE(telemetry::validate_chrome_trace(trace).empty());
    EXPECT_EQ(count_events(trace, "C", "X_t"),
              static_cast<int>(result.rounds()) + 1);
  } else {
    EXPECT_EQ(recorder.recorded(), 0u);
    EXPECT_EQ(stream.rounds_seen(), 0u);
  }
}

TEST(TraceProbes, WorkerPoolRecordsBusySpans) {
  TraceRecorder recorder;
  telemetry::install_trace_recorder(&recorder);
  std::atomic<int> executed{0};
  parallel_for(
      256, [&](int) { executed.fetch_add(1, std::memory_order_relaxed); },
      /*max_threads=*/3);
  telemetry::install_trace_recorder(nullptr);
  ASSERT_EQ(executed.load(), 256);

  if (telemetry::kCompiledIn) {
    const JsonValue trace = recorder.export_chrome_trace();
    EXPECT_TRUE(telemetry::validate_chrome_trace(trace).empty());
    EXPECT_GE(count_events(trace, "B", "worker_busy"), 1);
  } else {
    EXPECT_EQ(recorder.recorded(), 0u);
  }
}

TEST(TraceProbes, UninstalledRecorderStaysSilent) {
  TraceRecorder recorder;
  // Never installed: probes must not reach it even in the telemetry build.
  const VoterDynamics voter;
  const AggregateParallelEngine engine(voter);
  StopRule rule;
  rule.max_rounds = 10;
  Rng rng(13);
  engine.run(init_half(256, Opinion::kOne), rule, rng);
  EXPECT_EQ(recorder.recorded(), 0u);
}

}  // namespace
}  // namespace bitspread
