// Exact Markov-chain machinery: linear solvers, the dense parallel chain,
// absorption times, the sequential birth-death chain — and the exact
// verification of Proposition 5 against the chain.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "analysis/bias.h"
#include "core/problem.h"
#include "markov/absorption.h"
#include "markov/birth_death.h"
#include "markov/dense_chain.h"
#include "markov/linalg.h"
#include "protocols/minority.h"
#include "protocols/three_majority.h"
#include "protocols/voter.h"

namespace bitspread {
namespace {

TEST(Linalg, SolvesSmallSystem) {
  Matrix a(2, 2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  const auto x = solve_linear_system(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Linalg, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  const auto x = solve_linear_system(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Linalg, IdentitySolve) {
  const auto x = solve_linear_system(Matrix::identity(3), {1.0, 2.0, 3.0});
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(Linalg, TridiagonalSolve) {
  // System: [2 1 0; 1 2 1; 0 1 2] x = [4; 8; 8] -> x = [1; 2; 3].
  const auto x = solve_tridiagonal({0.0, 1.0, 1.0}, {2.0, 2.0, 2.0},
                                   {1.0, 1.0, 0.0}, {4.0, 8.0, 8.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(DenseChain, RowsAreDistributions) {
  const MinorityDynamics minority(3);
  const DenseParallelChain chain(minority, 20, Opinion::kOne);
  for (std::uint64_t x = chain.min_state(); x <= chain.max_state(); ++x) {
    const auto row = chain.transition_row(x);
    const double total = std::accumulate(row.begin(), row.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9) << "x=" << x;
    for (const double p : row) EXPECT_GE(p, -1e-15);
  }
}

TEST(DenseChain, StateRangeRespectsSource) {
  const VoterDynamics voter;
  const DenseParallelChain up(voter, 10, Opinion::kOne);
  EXPECT_EQ(up.min_state(), 1u);
  EXPECT_EQ(up.max_state(), 10u);
  EXPECT_EQ(up.state_count(), 10u);
  const DenseParallelChain down(voter, 10, Opinion::kZero);
  EXPECT_EQ(down.min_state(), 0u);
  EXPECT_EQ(down.max_state(), 9u);
}

TEST(DenseChain, ConsensusIsAbsorbingForCompliantProtocol) {
  const MinorityDynamics minority(3);
  const DenseParallelChain chain(minority, 15, Opinion::kOne);
  const auto row = chain.transition_row(15);
  EXPECT_NEAR(row[15 - chain.min_state()], 1.0, 1e-12);
}

TEST(DenseChain, RowMeanMatchesClosedForm) {
  // E[X'|x] from the exact row must equal core/problem.h's Eq.-4 closed form.
  const MinorityDynamics minority(4);
  const DenseParallelChain chain(minority, 30, Opinion::kZero);
  for (std::uint64_t x = chain.min_state(); x <= chain.max_state(); ++x) {
    const Configuration c{30, x, Opinion::kZero};
    EXPECT_NEAR(chain.row_mean(x), exact_next_mean(minority, c), 1e-8)
        << "x=" << x;
  }
}

TEST(DenseChain, Proposition5HoldsExactly) {
  // |E[X_{t+1}|x] - x - n F_n(x/n)| <= 1 for every state, both z values,
  // multiple protocols. This is the paper's Proposition 5, checked against
  // the exact chain rather than simulation.
  const std::uint64_t n = 40;
  const MinorityDynamics minority(3);
  const ThreeMajorityDynamics three;
  const VoterDynamics voter;
  for (const MemorylessProtocol* proto :
       {static_cast<const MemorylessProtocol*>(&minority),
        static_cast<const MemorylessProtocol*>(&three),
        static_cast<const MemorylessProtocol*>(&voter)}) {
    const BiasFunction bias(*proto, n);
    for (const Opinion z : {Opinion::kZero, Opinion::kOne}) {
      const DenseParallelChain chain(*proto, n, z);
      for (std::uint64_t x = chain.min_state(); x <= chain.max_state(); ++x) {
        const double drift_term =
            static_cast<double>(x) +
            static_cast<double>(n) * bias(static_cast<double>(x) / n);
        EXPECT_LE(chain.row_mean(x), drift_term + 1.0 + 1e-9)
            << proto->name() << " x=" << x << " z=" << to_int(z);
        EXPECT_GE(chain.row_mean(x), drift_term - 1.0 - 1e-9)
            << proto->name() << " x=" << x << " z=" << to_int(z);
      }
    }
  }
}

TEST(Absorption, HandComputedTwoStateChain) {
  // States {0, 1}; 1 absorbing; from 0: stay w.p. 1/2, absorb w.p. 1/2.
  // Expected hitting time from 0 = 2.
  const auto times = expected_hitting_rounds(
      2,
      [](std::size_t s) {
        return s == 0 ? std::vector<double>{0.5, 0.5}
                      : std::vector<double>{0.0, 1.0};
      },
      {false, true});
  EXPECT_NEAR(times[0], 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(times[1], 0.0);
}

TEST(Absorption, GamblersRuinLadder) {
  // States 0..3, 3 absorbing, deterministic +1 moves: t(x) = 3 - x.
  const auto times = expected_hitting_rounds(
      4,
      [](std::size_t s) {
        std::vector<double> row(4, 0.0);
        row[std::min<std::size_t>(s + 1, 3)] = 1.0;
        return row;
      },
      {false, false, false, true});
  EXPECT_NEAR(times[0], 3.0, 1e-12);
  EXPECT_NEAR(times[1], 2.0, 1e-12);
  EXPECT_NEAR(times[2], 1.0, 1e-12);
}

TEST(Absorption, DenseChainConvergenceTimesAreFiniteAndMonotoneSane) {
  const MinorityDynamics minority(3);
  const DenseParallelChain chain(minority, 25, Opinion::kOne);
  const auto times = expected_convergence_rounds(chain);
  // Consensus state: 0 rounds. All others: positive, finite.
  EXPECT_DOUBLE_EQ(times[chain.correct_consensus_state() - chain.min_state()],
                   0.0);
  for (std::size_t i = 0; i + 1 < times.size(); ++i) {
    EXPECT_GT(times[i], 0.0);
    EXPECT_TRUE(std::isfinite(times[i]));
  }
}

TEST(BirthDeath, UpDownProbabilitiesSane) {
  const VoterDynamics voter;
  const BirthDeathChain chain(voter, 10, Opinion::kOne);
  // At x = 1 (only the source holds 1): picked agent holds 0 and adopts 1
  // with probability x/n = 0.1; up = 0.1, down = 0 (no non-source one).
  EXPECT_NEAR(chain.up(1), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(chain.down(1), 0.0);
  // At x = n, everything is 1: absorbing.
  EXPECT_DOUBLE_EQ(chain.up(10), 0.0);
  EXPECT_DOUBLE_EQ(chain.down(10), 0.0);
  for (std::uint64_t x = 1; x <= 9; ++x) {
    EXPECT_GE(chain.up(x), 0.0);
    EXPECT_LE(chain.up(x) + chain.down(x), 1.0 + 1e-12);
  }
}

TEST(BirthDeath, AbsorptionTimesSolveBalanceEquations) {
  const VoterDynamics voter;
  const std::uint64_t n = 12;
  const BirthDeathChain chain(voter, n, Opinion::kOne);
  const auto t = chain.expected_absorption_activations();
  // Verify t satisfies t(x) = 1 + up t(x+1) + down t(x-1) + stay t(x).
  for (std::uint64_t x = chain.min_state(); x < chain.max_state(); ++x) {
    const double up = chain.up(x);
    const double down = chain.down(x);
    const double stay = 1.0 - up - down;
    const double t_x = t[x - chain.min_state()];
    const double t_up = t[x + 1 - chain.min_state()];
    const double t_down = x > chain.min_state() ? t[x - 1 - chain.min_state()]
                                                : 0.0;
    EXPECT_NEAR(t_x, 1.0 + up * t_up + down * t_down + stay * t_x, 1e-6)
        << "x=" << x;
  }
  EXPECT_DOUBLE_EQ(t[chain.max_state() - chain.min_state()], 0.0);
}

TEST(BirthDeath, SequentialVoterIsSlow) {
  // The sequential lower bound of [14]: Omega(n) parallel rounds, i.e.
  // Omega(n^2) activations. Check the exact expectation scales superlinearly
  // in activations.
  const VoterDynamics voter;
  const std::uint64_t n_small = 16, n_large = 64;
  const BirthDeathChain small(voter, n_small, Opinion::kOne);
  const BirthDeathChain large(voter, n_large, Opinion::kOne);
  const double t_small =
      small.expected_absorption_activations()[n_small / 2 - 1];
  const double t_large =
      large.expected_absorption_activations()[n_large / 2 - 1];
  // n quadrupled; activations should grow ~x16 (allow wide slack).
  EXPECT_GT(t_large / t_small, 8.0);
}

TEST(BirthDeath, DownhillTargetForZEqualsZero) {
  const VoterDynamics voter;
  const BirthDeathChain chain(voter, 10, Opinion::kZero);
  EXPECT_EQ(chain.correct_consensus_state(), 0u);
  const auto t = chain.expected_absorption_activations();
  EXPECT_DOUBLE_EQ(t[0], 0.0);
  EXPECT_GT(t[5], 0.0);
}

}  // namespace
}  // namespace bitspread
