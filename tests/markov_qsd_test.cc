// Quasi-stationary distributions, exact one-round variance, and the
// sequential agent engine.
#include <gtest/gtest.h>

#include <cmath>

#include "core/init.h"
#include "core/problem.h"
#include "core/stateful.h"
#include "engine/agent.h"
#include "engine/sequential.h"
#include "markov/absorption.h"
#include "markov/dense_chain.h"
#include "markov/quasi_stationary.h"
#include "protocols/minority.h"
#include "protocols/undecided.h"
#include "protocols/voter.h"
#include "stats/ks.h"
#include "stats/summary.h"

namespace bitspread {
namespace {

TEST(ExactVariance, VoterMatchesBinomialVariance) {
  // Voter: every non-source agent flips to 1 w.p. p, so
  // Var = (n-1) p (1-p).
  const VoterDynamics voter;
  const Configuration c{100, 40, Opinion::kOne};
  EXPECT_NEAR(exact_one_round_variance(voter, c), 99.0 * 0.4 * 0.6, 1e-9);
}

TEST(ExactVariance, MatchesDenseChainSecondMoment) {
  const MinorityDynamics minority(3);
  const std::uint64_t n = 30;
  const DenseParallelChain chain(minority, n, Opinion::kOne);
  for (std::uint64_t x = chain.min_state(); x <= chain.max_state(); ++x) {
    const auto row = chain.transition_row(x);
    double mean = 0.0, second = 0.0;
    for (std::size_t i = 0; i < row.size(); ++i) {
      const double v = static_cast<double>(chain.min_state() + i);
      mean += row[i] * v;
      second += row[i] * v * v;
    }
    const Configuration c{n, x, Opinion::kOne};
    EXPECT_NEAR(second - mean * mean, exact_one_round_variance(minority, c),
                1e-6)
        << "x=" << x;
  }
}

TEST(ExactVariance, ZeroAtAbsorbingConsensus) {
  const MinorityDynamics minority(5);
  EXPECT_DOUBLE_EQ(
      exact_one_round_variance(minority, correct_consensus(50, Opinion::kOne)),
      0.0);
}

TEST(QuasiStationary, TwoStateChainClosedForm) {
  // States {0, 1}; 1 absorbing; from 0: stay 0.9, absorb 0.1.
  // QSD = point mass at 0, lambda = 0.9, escape = 10.
  const auto qsd = quasi_stationary_distribution(
      2,
      [](std::size_t s) {
        return s == 0 ? std::vector<double>{0.9, 0.1}
                      : std::vector<double>{0.0, 1.0};
      },
      {false, true});
  EXPECT_NEAR(qsd.lambda, 0.9, 1e-10);
  EXPECT_NEAR(qsd.distribution[0], 1.0, 1e-10);
  EXPECT_DOUBLE_EQ(qsd.distribution[1], 0.0);
  EXPECT_NEAR(qsd.expected_escape_rounds(), 10.0, 1e-8);
}

TEST(QuasiStationary, EscapeTimeMatchesExactAbsorptionForDeepTrap) {
  // For a strongly metastable chain the expected absorption time from the
  // trap equals 1/(1-lambda) up to lower-order terms.
  const MinorityDynamics minority(3);
  const std::uint64_t n = 24;
  const DenseParallelChain chain(minority, n, Opinion::kOne);
  const QuasiStationary qsd = quasi_stationary_distribution(chain);
  const auto times = expected_convergence_rounds(chain);
  const double exact_mid = times[n / 2 - chain.min_state()];
  EXPECT_NEAR(qsd.expected_escape_rounds() / exact_mid, 1.0, 0.01);
}

TEST(QuasiStationary, MinorityTrapCentersAtHalf) {
  const MinorityDynamics minority(3);
  const std::uint64_t n = 32;
  const DenseParallelChain chain(minority, n, Opinion::kOne);
  const QuasiStationary qsd = quasi_stationary_distribution(chain);
  const double mean_state =
      qsd.mean() + static_cast<double>(chain.min_state());
  EXPECT_NEAR(mean_state / static_cast<double>(n), 0.5, 0.05);
  EXPECT_NEAR(qsd.stddev() / std::sqrt(static_cast<double>(n)), 0.5, 0.1);
  // Distribution is a proper distribution over transient states.
  double total = 0.0;
  for (const double p : qsd.distribution) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SequentialAgentEngine, ActivationDeltaIsAtMostOne) {
  const UndecidedStateDynamics usd;
  const AgentSequentialEngine engine(usd);
  Rng rng(1);
  auto population =
      engine.make_population(init_half(60, Opinion::kOne));
  for (int t = 0; t < 2000; ++t) {
    const int delta = engine.activate(population, rng);
    EXPECT_GE(delta, -1);
    EXPECT_LE(delta, 1);
  }
}

TEST(SequentialAgentEngine, MatchesAggregateSequentialForMemoryless) {
  // For a memory-less protocol via the adapter, the sequential agent engine
  // and the aggregate SequentialEngine follow the same law: compare
  // convergence-activation distributions by KS.
  const VoterDynamics voter;
  const MemorylessAsStateful adapter(voter);
  const AgentSequentialEngine agent_engine(adapter);
  const SequentialEngine aggregate_engine(voter);
  const std::uint64_t n = 14;
  StopRule rule;
  rule.max_rounds = 1000000;

  const int kTrials = 400;
  std::vector<double> agent_times, aggregate_times;
  for (int i = 0; i < kTrials; ++i) {
    Rng rng_a(70000 + i), rng_b(80000 + i);
    const RunResult a =
        agent_engine.run(Configuration{n, 7, Opinion::kOne}, rule, rng_a);
    const RunResult b =
        aggregate_engine.run(Configuration{n, 7, Opinion::kOne}, rule, rng_b);
    ASSERT_TRUE(a.converged());
    ASSERT_TRUE(b.converged());
    agent_times.push_back(static_cast<double>(a.activations()));
    aggregate_times.push_back(static_cast<double>(b.activations()));
  }
  const double d = ks_statistic(agent_times, aggregate_times);
  EXPECT_GT(ks_p_value(d, agent_times.size(), aggregate_times.size()), 1e-3)
      << "KS=" << d;
}

TEST(SequentialAgentEngine, RunReportsActivationsAndStops) {
  const UndecidedStateDynamics usd;
  const AgentSequentialEngine engine(usd);
  Rng rng(2);
  StopRule rule;
  rule.max_rounds = 3;
  const RunResult result =
      engine.run(init_half(50, Opinion::kOne), rule, rng);
  EXPECT_EQ(result.reason, StopReason::kRoundLimit);
  EXPECT_EQ(result.activations(), 150u);
}

TEST(SequentialAgentEngine, SourcePinnedAndCountsConsistent) {
  const UndecidedStateDynamics usd;
  const AgentSequentialEngine engine(usd);
  Rng rng(3);
  auto population = engine.make_population(
      init_fraction_ones(40, Opinion::kOne, 0.6));
  std::uint64_t tracked = population.count_ones();
  for (int t = 0; t < 3000; ++t) {
    tracked = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(tracked) + engine.activate(population, rng));
    EXPECT_EQ(population.views[0].opinion, Opinion::kOne);
  }
  EXPECT_EQ(tracked, population.count_ones());
}

}  // namespace
}  // namespace bitspread
