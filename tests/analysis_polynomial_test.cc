// Polynomial arithmetic, Bernstein conversion, and root isolation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "analysis/bernstein.h"
#include "analysis/polynomial.h"
#include "analysis/roots.h"
#include "random/rng.h"

namespace bitspread {
namespace {

TEST(Polynomial, ZeroPolynomial) {
  const Polynomial zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.degree(), -1);
  EXPECT_DOUBLE_EQ(zero(3.0), 0.0);
}

TEST(Polynomial, TrailingZerosTrimmed) {
  const Polynomial p({1.0, 2.0, 0.0, 0.0});
  EXPECT_EQ(p.degree(), 1);
}

TEST(Polynomial, HornerEvaluation) {
  const Polynomial p({1.0, -2.0, 3.0});  // 3x^2 - 2x + 1
  EXPECT_DOUBLE_EQ(p(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p(1.0), 2.0);
  EXPECT_DOUBLE_EQ(p(2.0), 9.0);
  EXPECT_DOUBLE_EQ(p(-1.0), 6.0);
}

TEST(Polynomial, ArithmeticIdentities) {
  const Polynomial p({1.0, 1.0});        // 1 + x
  const Polynomial q({-1.0, 1.0});       // -1 + x
  const Polynomial product = p * q;      // x^2 - 1
  EXPECT_EQ(product.degree(), 2);
  EXPECT_DOUBLE_EQ(product(3.0), 8.0);
  const Polynomial sum = p + q;          // 2x
  EXPECT_DOUBLE_EQ(sum(5.0), 10.0);
  const Polynomial diff = p - q;         // 2
  EXPECT_EQ(diff.degree(), 0);
  EXPECT_DOUBLE_EQ(diff(42.0), 2.0);
  const Polynomial scaled = p * 3.0;
  EXPECT_DOUBLE_EQ(scaled(1.0), 6.0);
}

TEST(Polynomial, MultiplicationByZero) {
  const Polynomial p({1.0, 2.0, 3.0});
  EXPECT_TRUE((p * Polynomial()).is_zero());
  EXPECT_TRUE((p * 0.0).is_zero());
}

TEST(Polynomial, Derivative) {
  const Polynomial p({5.0, 3.0, 0.0, 2.0});  // 2x^3 + 3x + 5
  const Polynomial d = p.derivative();       // 6x^2 + 3
  EXPECT_EQ(d.degree(), 2);
  EXPECT_DOUBLE_EQ(d(0.0), 3.0);
  EXPECT_DOUBLE_EQ(d(1.0), 9.0);
  EXPECT_TRUE(Polynomial::constant(7.0).derivative().is_zero());
}

TEST(Polynomial, ToString) {
  EXPECT_EQ(Polynomial().to_string(), "0");
  const Polynomial p({1.0, 0.0, -2.0});
  EXPECT_EQ(p.to_string(), "-2*p^2 + 1");  // leading term first
}

TEST(BinomialCoefficient, KnownValues) {
  EXPECT_DOUBLE_EQ(binomial_coefficient(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(10, 3), 120.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(3, 7), 0.0);
}

TEST(Bernstein, BasisEvaluatesToDefinition) {
  for (const std::uint32_t ell : {1u, 3u, 6u}) {
    for (std::uint32_t k = 0; k <= ell; ++k) {
      const Polynomial b = bernstein_basis(k, ell);
      for (int i = 0; i <= 10; ++i) {
        const double p = i / 10.0;
        const double expected = binomial_coefficient(ell, k) *
                                std::pow(p, k) *
                                std::pow(1.0 - p, ell - k);
        EXPECT_NEAR(b(p), expected, 1e-12) << "l=" << ell << " k=" << k;
      }
    }
  }
}

TEST(Bernstein, PartitionOfUnity) {
  const std::uint32_t ell = 7;
  const std::vector<double> ones(ell + 1, 1.0);
  const Polynomial sum = from_bernstein(ones);
  // sum_k B_{k,l} == 1.
  EXPECT_EQ(sum.degree(), 0);
  EXPECT_NEAR(sum(0.37), 1.0, 1e-12);
}

TEST(Bernstein, LinearPrecision) {
  // sum_k (k/l) B_{k,l}(p) = p (this is exactly why Voter's bias vanishes).
  const std::uint32_t ell = 9;
  std::vector<double> values(ell + 1);
  for (std::uint32_t k = 0; k <= ell; ++k) {
    values[k] = static_cast<double>(k) / ell;
  }
  const Polynomial p = from_bernstein(values);
  EXPECT_EQ(p.degree(), 1);
  EXPECT_NEAR(p.coefficient(1), 1.0, 1e-12);
  EXPECT_NEAR(p.coefficient(0), 0.0, 1e-12);
}

TEST(Roots, LinearAndQuadratic) {
  const Polynomial linear({-0.5, 1.0});  // x - 0.5
  const auto r1 = real_roots_in(linear, 0.0, 1.0);
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_NEAR(r1[0], 0.5, 1e-10);

  const Polynomial quadratic =
      Polynomial({-0.25, 1.0}) * Polynomial({-0.75, 1.0});
  const auto r2 = real_roots_in(quadratic, 0.0, 1.0);
  ASSERT_EQ(r2.size(), 2u);
  EXPECT_NEAR(r2[0], 0.25, 1e-9);
  EXPECT_NEAR(r2[1], 0.75, 1e-9);
}

TEST(Roots, RootsOutsideIntervalIgnored) {
  const Polynomial p({-2.0, 1.0});  // root at 2
  EXPECT_TRUE(real_roots_in(p, 0.0, 1.0).empty());
}

TEST(Roots, EndpointRoots) {
  // p(x) = x(1-x): roots exactly at both endpoints of [0,1].
  const Polynomial p({0.0, 1.0, -1.0});
  const auto roots = real_roots_in(p, 0.0, 1.0);
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_NEAR(roots[0], 0.0, 1e-9);
  EXPECT_NEAR(roots[1], 1.0, 1e-9);
}

TEST(Roots, DoubleRootIsFound) {
  // (x - 0.5)^2: even multiplicity, no sign change.
  const Polynomial p = Polynomial({-0.5, 1.0}) * Polynomial({-0.5, 1.0});
  const auto roots = real_roots_in(p, 0.0, 1.0);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_NEAR(roots[0], 0.5, 1e-6);
}

TEST(Roots, CubicWithThreeRoots) {
  const Polynomial p = Polynomial({-0.1, 1.0}) * Polynomial({-0.5, 1.0}) *
                       Polynomial({-0.9, 1.0});
  const auto roots = real_roots_in(p, 0.0, 1.0);
  ASSERT_EQ(roots.size(), 3u);
  EXPECT_NEAR(roots[0], 0.1, 1e-8);
  EXPECT_NEAR(roots[1], 0.5, 1e-8);
  EXPECT_NEAR(roots[2], 0.9, 1e-8);
}

TEST(Roots, NoRootsOnPositivePolynomial) {
  const Polynomial p({1.0, 0.0, 1.0});  // x^2 + 1
  EXPECT_TRUE(real_roots_in(p, 0.0, 1.0).empty());
}

// Property test: build polynomials from random root sets in (0,1) and verify
// every planted root is recovered.
class PlantedRootsTest : public ::testing::TestWithParam<int> {};

TEST_P(PlantedRootsTest, AllPlantedRootsRecovered) {
  Rng rng(100 + GetParam());
  const int degree = 2 + GetParam() % 5;
  std::vector<double> planted;
  for (int i = 0; i < degree; ++i) {
    planted.push_back(0.05 + 0.9 * rng.next_double());
  }
  std::sort(planted.begin(), planted.end());
  // Keep roots separated so isolation is well-posed.
  bool well_separated = true;
  for (std::size_t i = 1; i < planted.size(); ++i) {
    if (planted[i] - planted[i - 1] < 0.02) well_separated = false;
  }
  if (!well_separated) GTEST_SKIP() << "degenerate random instance";

  Polynomial p = Polynomial::constant(1.0);
  for (const double r : planted) {
    p = p * Polynomial({-r, 1.0});
  }
  const auto roots = real_roots_in(p, 0.0, 1.0);
  ASSERT_EQ(roots.size(), planted.size());
  for (std::size_t i = 0; i < planted.size(); ++i) {
    EXPECT_NEAR(roots[i], planted[i], 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, PlantedRootsTest,
                         ::testing::Range(0, 25));

TEST(MaxAbsOn, FindsInteriorExtremum) {
  // x(1-x) has max 0.25 at 0.5.
  const Polynomial p({0.0, 1.0, -1.0});
  EXPECT_NEAR(max_abs_on(p, 0.0, 1.0), 0.25, 1e-9);
}

TEST(MaxAbsOn, EndpointDominates) {
  const Polynomial p({0.0, 1.0});  // x on [0, 2]
  EXPECT_NEAR(max_abs_on(p, 0.0, 2.0), 2.0, 1e-12);
}

TEST(SignOnInterval, DetectsSigns) {
  EXPECT_EQ(sign_on_interval(Polynomial({1.0}), 0.0, 1.0), 1);
  EXPECT_EQ(sign_on_interval(Polynomial({-1.0}), 0.0, 1.0), -1);
  EXPECT_EQ(sign_on_interval(Polynomial(), 0.0, 1.0), 0);
  // x(1-x) is positive on (0,1).
  EXPECT_EQ(sign_on_interval(Polynomial({0.0, 1.0, -1.0}), 0.0, 1.0), 1);
}

}  // namespace
}  // namespace bitspread
