// Mean-field map: fixed points, stability, orbits — the deterministic
// skeleton behind the Case 1/2 phenomenology.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/mean_field.h"
#include "protocols/minority.h"
#include "protocols/three_majority.h"
#include "protocols/voter.h"

namespace bitspread {
namespace {

constexpr std::uint64_t kN = 1 << 12;

TEST(MeanField, VoterEveryPointIsFixed) {
  const VoterDynamics voter;
  const MeanFieldMap map(voter, kN);
  for (const double p : {0.0, 0.3, 0.7, 1.0}) {
    EXPECT_NEAR(map.step(p), p, 1e-12);
  }
  const auto fps = map.fixed_points();
  ASSERT_EQ(fps.size(), 3u);
  for (const auto& fp : fps) {
    EXPECT_EQ(fp.stability, FixedPointStability::kMarginal);
  }
}

TEST(MeanField, Minority3HasStableInteriorFixedPoint) {
  // F = 2p(1-p)(1-2p): fixed points 0, 1/2, 1. F'(1/2) = -1 => slope 0:
  // strongly stable interior point; endpoints have F'(0) = 2, F'(1) = 2:
  // slope 3, unstable. This is WHY constant-l minority stalls at balance.
  const MinorityDynamics minority(3);
  const MeanFieldMap map(minority, kN);
  const auto fps = map.fixed_points();
  ASSERT_EQ(fps.size(), 3u);
  EXPECT_NEAR(fps[0].p, 0.0, 1e-9);
  EXPECT_EQ(fps[0].stability, FixedPointStability::kUnstable);
  EXPECT_NEAR(fps[1].p, 0.5, 1e-9);
  EXPECT_EQ(fps[1].stability, FixedPointStability::kStable);
  EXPECT_NEAR(fps[1].derivative, -1.0, 1e-8);
  EXPECT_NEAR(fps[2].p, 1.0, 1e-9);
  EXPECT_EQ(fps[2].stability, FixedPointStability::kUnstable);
}

TEST(MeanField, ThreeMajorityHasUnstableInteriorFixedPoint) {
  // F = -p(1-p)(1-2p): interior point 1/2 is UNSTABLE (drift away),
  // endpoints stable — majority dynamics tips to a consensus.
  const ThreeMajorityDynamics three;
  const MeanFieldMap map(three, kN);
  const auto fps = map.fixed_points();
  ASSERT_EQ(fps.size(), 3u);
  EXPECT_EQ(fps[0].stability, FixedPointStability::kStable);
  EXPECT_EQ(fps[1].stability, FixedPointStability::kUnstable);
  EXPECT_EQ(fps[2].stability, FixedPointStability::kStable);
}

TEST(MeanField, OrbitsConvergeToPredictedLimits) {
  const MinorityDynamics minority(3);
  const MeanFieldMap minority_map(minority, kN);
  EXPECT_NEAR(minority_map.limit_from(0.9), 0.5, 1e-6);
  EXPECT_NEAR(minority_map.limit_from(0.1), 0.5, 1e-6);

  const ThreeMajorityDynamics three;
  const MeanFieldMap majority_map(three, kN);
  EXPECT_NEAR(majority_map.limit_from(0.6), 1.0, 1e-6);
  EXPECT_NEAR(majority_map.limit_from(0.4), 0.0, 1e-6);
}

TEST(MeanField, OrbitRecordsEveryIterate) {
  const ThreeMajorityDynamics three;
  const MeanFieldMap map(three, kN);
  const auto orbit = map.orbit(0.6, 10);
  ASSERT_EQ(orbit.size(), 11u);
  EXPECT_DOUBLE_EQ(orbit[0], 0.6);
  for (std::size_t i = 1; i < orbit.size(); ++i) {
    EXPECT_GE(orbit[i], orbit[i - 1] - 1e-12);  // Monotone climb to 1.
  }
}

TEST(MeanField, StepStaysInUnitInterval) {
  const MinorityDynamics minority(7);
  const MeanFieldMap map(minority, kN);
  for (int i = 0; i <= 50; ++i) {
    const double p = i / 50.0;
    const double next = map.step(p);
    EXPECT_GE(next, 0.0);
    EXPECT_LE(next, 1.0);
  }
}

TEST(MeanField, StabilityStringNames) {
  EXPECT_EQ(to_string(FixedPointStability::kStable), "stable");
  EXPECT_EQ(to_string(FixedPointStability::kUnstable), "unstable");
  EXPECT_EQ(to_string(FixedPointStability::kMarginal), "marginal");
}

}  // namespace
}  // namespace bitspread
