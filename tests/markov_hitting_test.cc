// Hitting probabilities: gambler's ruin ground truth, source-less consensus
// outcomes, and simulation cross-checks.
#include <gtest/gtest.h>

#include <cmath>

#include "engine/aggregate.h"
#include "markov/dense_chain.h"
#include "markov/hitting.h"
#include "protocols/three_majority.h"
#include "protocols/voter.h"

namespace bitspread {
namespace {

TEST(Hitting, SymmetricRandomWalkIsLinear) {
  // States 0..4, both ends absorbing, +-1 fair steps: h(x) = x/4.
  const auto h = hitting_probabilities(
      5,
      [](std::size_t s) {
        std::vector<double> row(5, 0.0);
        row[s - 1] = 0.5;
        row[s + 1] = 0.5;
        return row;
      },
      {true, false, false, false, true}, {false, false, false, false, true});
  EXPECT_DOUBLE_EQ(h[0], 0.0);
  EXPECT_NEAR(h[1], 0.25, 1e-12);
  EXPECT_NEAR(h[2], 0.50, 1e-12);
  EXPECT_NEAR(h[3], 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(h[4], 1.0);
}

TEST(Hitting, BiasedWalkMatchesGamblersRuinFormula) {
  // p up, q down: h(x) = (1 - (q/p)^x) / (1 - (q/p)^N).
  const double p = 0.6, q = 0.4;
  const std::size_t N = 6;
  const auto h = hitting_probabilities(
      N + 1,
      [&](std::size_t s) {
        std::vector<double> row(N + 1, 0.0);
        row[s - 1] = q;
        row[s + 1] = p;
        return row;
      },
      [&] {
        std::vector<bool> a(N + 1, false);
        a[0] = a[N] = true;
        return a;
      }(),
      [&] {
        std::vector<bool> t(N + 1, false);
        t[N] = true;
        return t;
      }());
  const double ratio = q / p;
  for (std::size_t x = 0; x <= N; ++x) {
    const double expected = (1.0 - std::pow(ratio, static_cast<double>(x))) /
                            (1.0 - std::pow(ratio, static_cast<double>(N)));
    EXPECT_NEAR(h[x], expected, 1e-10) << "x=" << x;
  }
}

TEST(Hitting, SourcelessVoterIsMartingaleFair) {
  // Voter without a source: P(all-ones wins | X0 = x) = x/n exactly (X_t is
  // a martingale). The dense-chain solve must reproduce this.
  const VoterDynamics voter;
  const std::uint64_t n = 24;
  const DenseParallelChain chain(voter, n, Opinion::kOne, /*sources=*/0);
  const auto h = consensus_one_probabilities(chain);
  for (std::uint64_t x = 0; x <= n; ++x) {
    EXPECT_NEAR(h[x], static_cast<double>(x) / static_cast<double>(n), 1e-8)
        << "x=" << x;
  }
}

TEST(Hitting, SourcelessThreeMajorityAmplifiesMajorities) {
  // 3-majority drifts toward the current majority, so the win probability
  // must dominate the martingale line above n/2 and sit below it under n/2.
  const ThreeMajorityDynamics three;
  const std::uint64_t n = 30;
  const DenseParallelChain chain(three, n, Opinion::kOne, /*sources=*/0);
  const auto h = consensus_one_probabilities(chain);
  EXPECT_GT(h[20], 20.0 / 30.0);
  EXPECT_GT(h[25], 0.99);
  EXPECT_LT(h[10], 10.0 / 30.0);
  EXPECT_LT(h[5], 0.01);
  // Monotone in the initial count.
  for (std::uint64_t x = 0; x < n; ++x) {
    EXPECT_LE(h[x], h[x + 1] + 1e-9);
  }
}

TEST(Hitting, MatchesSimulatedWinFrequencies) {
  const ThreeMajorityDynamics three;
  const std::uint64_t n = 20;
  const std::uint64_t x0 = 12;
  const DenseParallelChain chain(three, n, Opinion::kOne, 0);
  const double exact = consensus_one_probabilities(chain)[x0];

  const AggregateParallelEngine engine(three);
  StopRule rule;
  rule.max_rounds = 1000000;
  int wins = 0;
  const int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) {
    Rng rng(40000 + i);
    const RunResult r =
        engine.run(Configuration{n, x0, Opinion::kOne, 0}, rule, rng);
    wins += r.final_config.ones == n;
  }
  const double freq = static_cast<double>(wins) / kTrials;
  const double sigma = std::sqrt(exact * (1.0 - exact) / kTrials);
  EXPECT_NEAR(freq, exact, 5.0 * sigma);
}

}  // namespace
}  // namespace bitspread
