// The experiment harness: tables, grids, CLI parsing, seeding, and the
// replicated measurement helpers (including censoring semantics).
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "sim/cli.h"
#include "sim/experiment.h"
#include "sim/seeds.h"
#include "sim/sweep.h"
#include "sim/table.h"

namespace bitspread {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table table({"n", "rounds"});
  table.add_row({"16", "3.5"});
  table.add_row({"1024", "12.25"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("n"), std::string::npos);
  EXPECT_NE(text.find("1024"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::fmt(std::int64_t{-7}), "-7");
}

TEST(Sweep, GeometricGridCoversRange) {
  const auto grid = geometric_grid(10, 1000, 10.0);
  ASSERT_EQ(grid.size(), 3u);
  EXPECT_EQ(grid.front(), 10u);
  EXPECT_EQ(grid.back(), 1000u);
}

TEST(Sweep, GeometricGridAlwaysIncludesHi) {
  const auto grid = geometric_grid(10, 95, 3.0);
  EXPECT_EQ(grid.back(), 95u);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_GT(grid[i], grid[i - 1]);
  }
}

TEST(Sweep, PowerOfTwoGrid) {
  const auto grid = power_of_two_grid(4, 7);
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_EQ(grid[0], 16u);
  EXPECT_EQ(grid[3], 128u);
}

TEST(Sweep, LinearGrid) {
  const auto grid = linear_grid(2, 10, 4);
  ASSERT_EQ(grid.size(), 3u);
  EXPECT_EQ(grid[1], 6u);
}

TEST(Cli, ParsesAllOptions) {
  const char* argv[] = {"bench", "--quick", "--seed=99", "--reps=7",
                        "--json=/tmp/out.json"};
  const BenchOptions options =
      parse_bench_options(5, const_cast<char**>(argv));
  EXPECT_TRUE(options.quick);
  EXPECT_EQ(options.seed, 99u);
  EXPECT_EQ(options.reps_or(3), 7);
  ASSERT_TRUE(options.json_path.has_value());
  EXPECT_EQ(*options.json_path, "/tmp/out.json");
}

TEST(Cli, ParsesFlightRecorderFlags) {
  const char* argv[] = {"bench", "--trace-out=/tmp/t.json",
                        "--stream-out=/tmp/s.jsonl", "--trace-buffer=1024",
                        "--stream-stride=16"};
  const BenchOptions options =
      parse_bench_options(5, const_cast<char**>(argv));
  ASSERT_TRUE(options.recorder.trace_out.has_value());
  EXPECT_EQ(*options.recorder.trace_out, "/tmp/t.json");
  ASSERT_TRUE(options.recorder.stream_out.has_value());
  EXPECT_EQ(*options.recorder.stream_out, "/tmp/s.jsonl");
  EXPECT_EQ(options.recorder.trace_buffer, 1024u);
  EXPECT_EQ(options.recorder.stream_stride, 16u);
  EXPECT_TRUE(options.recorder.requested());
}

TEST(Cli, RecorderFlagsDefaultOff) {
  const char* argv[] = {"bench"};
  const BenchOptions options =
      parse_bench_options(1, const_cast<char**>(argv));
  EXPECT_FALSE(options.recorder.requested());
  EXPECT_EQ(options.recorder.trace_buffer, std::size_t{1} << 15);
  EXPECT_EQ(options.recorder.stream_stride, 1u);
}

TEST(Cli, DefaultsWhenNoArgs) {
  unsetenv("BITSPREAD_QUICK");
  unsetenv("BITSPREAD_SEED");
  const char* argv[] = {"bench"};
  const BenchOptions options =
      parse_bench_options(1, const_cast<char**>(argv));
  EXPECT_FALSE(options.quick);
  EXPECT_EQ(options.seed, kDefaultMasterSeed);
  EXPECT_EQ(options.reps_or(5), 5);
}

TEST(Cli, QuickFromEnvironment) {
  setenv("BITSPREAD_QUICK", "1", 1);
  const char* argv[] = {"bench"};
  const BenchOptions options =
      parse_bench_options(1, const_cast<char**>(argv));
  EXPECT_TRUE(options.quick);
  unsetenv("BITSPREAD_QUICK");
}

TEST(Seeds, EnvOverride) {
  setenv("BITSPREAD_SEED", "12345", 1);
  EXPECT_EQ(master_seed_from_env(), 12345u);
  setenv("BITSPREAD_SEED", "not-a-number", 1);
  EXPECT_EQ(master_seed_from_env(), kDefaultMasterSeed);
  unsetenv("BITSPREAD_SEED");
  EXPECT_EQ(master_seed_from_env(), kDefaultMasterSeed);
}

TEST(Measurement, CountsConvergedRuns) {
  const SeedSequence seeds(1);
  int calls = 0;
  const auto runner = [&calls](Rng& rng) {
    ++calls;
    RunResult result;
    result.reason = rng.bernoulli(0.5) ? StopReason::kCorrectConsensus
                                       : StopReason::kRoundLimit;
    result.ticks = 10;
    return result;
  };
  const ConvergenceMeasurement m = measure_convergence(runner, seeds, 0, 100);
  EXPECT_EQ(calls, 100);
  EXPECT_EQ(m.replicates, 100);
  EXPECT_EQ(m.converged + m.censored, 100);
  EXPECT_GT(m.converged, 20);
  EXPECT_GT(m.censored, 20);
  EXPECT_NEAR(m.convergence_rate(),
              m.converged / 100.0, 1e-12);
  EXPECT_EQ(m.rounds.count(), static_cast<std::uint64_t>(m.converged));
  EXPECT_EQ(m.rounds_lower_bound.count(), 100u);
}

TEST(Measurement, CellsGetIndependentStreams) {
  const SeedSequence seeds(2);
  const auto runner = [](Rng& rng) {
    RunResult result;
    result.reason = StopReason::kCorrectConsensus;
    result.ticks = rng.next_below(1000);
    return result;
  };
  const auto a = measure_convergence(runner, seeds, 0, 50);
  const auto b = measure_convergence(runner, seeds, 1, 50);
  EXPECT_NE(a.rounds.mean(), b.rounds.mean());
  // Same cell twice: identical.
  const auto a2 = measure_convergence(runner, seeds, 0, 50);
  EXPECT_DOUBLE_EQ(a.rounds.mean(), a2.rounds.mean());
}

TEST(Measurement, CrossingVariantCountsIntervalExit) {
  const SeedSequence seeds(3);
  const auto runner = [](Rng&) {
    RunResult result;
    result.reason = StopReason::kIntervalExit;
    result.ticks = 5;
    return result;
  };
  const ConvergenceMeasurement m = measure_crossing(runner, seeds, 0, 10);
  EXPECT_EQ(m.converged, 10);
  EXPECT_EQ(m.censored, 0);
}

TEST(Measurement, WrongOutcomeTracked) {
  const SeedSequence seeds(4);
  const auto runner = [](Rng&) {
    RunResult result;
    result.reason = StopReason::kWrongConsensus;
    return result;
  };
  const ConvergenceMeasurement m = measure_convergence(runner, seeds, 0, 5);
  EXPECT_EQ(m.wrong_outcome, 5);
  EXPECT_EQ(m.converged, 0);
}

// The documented double-count: every kDegraded run increments BOTH
// `degraded` and `censored`, so censored + degraded over-counts and
// censored_only() subtracts. These are the invariants experiment.h promises.
TEST(Measurement, DegradedIsDoubleCountedInsideCensored) {
  const SeedSequence seeds(5);
  int call = 0;
  const auto runner = [&call](Rng&) {
    RunResult result;
    const int i = call++;  // 2 degraded, 3 plain-capped, 4 converged, 1 wrong.
    if (i < 2) {
      result.reason = StopReason::kDegraded;
    } else if (i < 5) {
      result.reason = StopReason::kRoundLimit;
    } else if (i < 9) {
      result.reason = StopReason::kCorrectConsensus;
    } else {
      result.reason = StopReason::kWrongConsensus;
    }
    return result;
  };
  const ConvergenceMeasurement m = measure_convergence(runner, seeds, 0, 10);
  EXPECT_EQ(m.degraded, 2);
  EXPECT_EQ(m.censored, 5);  // The 2 degraded runs are counted here too.
  EXPECT_EQ(m.censored_only(), 3);
  EXPECT_GE(m.degraded, 0);
  EXPECT_LE(m.degraded, m.censored);
  EXPECT_EQ(m.converged + m.censored + m.wrong_outcome, m.replicates);
}

}  // namespace
}  // namespace bitspread
