// The bias function F_n, the Case 1 / Case 2 classification (§4.2), the
// paper's probability bounds, and the Theorem 6 assumption checker.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bias.h"
#include "analysis/bounds.h"
#include "analysis/cases.h"
#include "analysis/theorem6.h"
#include "protocols/custom.h"
#include "protocols/majority.h"
#include "protocols/minority.h"
#include "protocols/three_majority.h"
#include "protocols/two_choice.h"
#include "protocols/voter.h"

namespace bitspread {
namespace {

constexpr std::uint64_t kN = 1 << 12;

TEST(BiasFunction, VoterBiasIsIdenticallyZero) {
  // §4.1: F_n^voter == 0.
  for (const std::uint32_t ell : {1u, 3u, 8u}) {
    const VoterDynamics voter(ell);
    const BiasFunction bias(voter, kN);
    EXPECT_TRUE(bias.is_identically_zero()) << "l=" << ell;
    for (int i = 0; i <= 20; ++i) {
      EXPECT_NEAR(bias(i / 20.0), 0.0, 1e-12);
    }
  }
}

TEST(BiasFunction, NumericAndPolynomialAgree) {
  const MinorityDynamics minority(5);
  const BiasFunction bias(minority, kN);
  const Polynomial f = bias.to_polynomial();
  for (int i = 0; i <= 100; ++i) {
    const double p = i / 100.0;
    EXPECT_NEAR(bias(p), f(p), 1e-10) << "p=" << p;
  }
}

TEST(BiasFunction, Minority3HasKnownRoots) {
  // F(p) = 2p(1-p)(1-2p) for minority with l = 3: roots {0, 1/2, 1}.
  const MinorityDynamics minority(3);
  const BiasFunction bias(minority, kN);
  const auto roots = bias.roots();
  ASSERT_EQ(roots.size(), 3u);
  EXPECT_NEAR(roots[0], 0.0, 1e-9);
  EXPECT_NEAR(roots[1], 0.5, 1e-9);
  EXPECT_NEAR(roots[2], 1.0, 1e-9);
  // And the closed form itself.
  for (int i = 0; i <= 20; ++i) {
    const double p = i / 20.0;
    EXPECT_NEAR(bias(p), 2.0 * p * (1.0 - p) * (1.0 - 2.0 * p), 1e-12);
  }
}

TEST(BiasFunction, ThreeMajorityBias) {
  // F(p) = -p + 3p^2 - 2p^3 = -p(1-p)(1-2p): roots {0, 1/2, 1}, sign
  // opposite to minority (pushes TOWARD the local majority).
  const ThreeMajorityDynamics three;
  const BiasFunction bias(three, kN);
  EXPECT_NEAR(bias(0.25), -0.25 * 0.75 * 0.5, 1e-12);
  EXPECT_NEAR(bias(0.75), +0.75 * 0.25 * 0.5, 1e-12);
  const auto roots = bias.roots();
  ASSERT_EQ(roots.size(), 3u);
  EXPECT_NEAR(roots[1], 0.5, 1e-9);
}

TEST(BiasFunction, DegreeIsAtMostEllPlusOne) {
  const MinorityDynamics minority(6);
  const BiasFunction bias(minority, kN);
  EXPECT_LE(bias.to_polynomial().degree(), 7);
}

TEST(BiasFunction, Prop3CompliantProtocolVanishesAtEndpoints) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const CustomProtocol proto = random_protocol(rng, 4);
    const BiasFunction bias(proto, kN);
    EXPECT_NEAR(bias(0.0), 0.0, 1e-12);
    EXPECT_NEAR(bias(1.0), 0.0, 1e-12);
  }
}

TEST(Classification, VoterIsZeroBias) {
  const VoterDynamics voter;
  const CaseAnalysis analysis = classify_bias(voter, kN);
  EXPECT_EQ(analysis.bias_case, BiasCase::kZeroBias);
  EXPECT_EQ(analysis.slow_correct, Opinion::kOne);
  EXPECT_TRUE(analysis.upward);
  EXPECT_DOUBLE_EQ(analysis.a1, 0.25);
  EXPECT_DOUBLE_EQ(analysis.a3, 0.75);
  EXPECT_DOUBLE_EQ(analysis.x0_fraction, 0.625);
}

TEST(Classification, Minority3IsCase1) {
  // Minority pushes the fraction DOWN on (1/2, 1): Case 1, slow with z=1.
  const MinorityDynamics minority(3);
  const CaseAnalysis analysis = classify_bias(minority, kN);
  EXPECT_EQ(analysis.bias_case, BiasCase::kCase1);
  EXPECT_EQ(analysis.slow_correct, Opinion::kOne);
  EXPECT_TRUE(analysis.upward);
  EXPECT_NEAR(analysis.interval_lo, 0.5, 1e-6);
  EXPECT_GT(analysis.a1, 0.5);
  EXPECT_LT(analysis.a3, 1.0);
  EXPECT_GT(analysis.x0_fraction, analysis.a2);
  EXPECT_LT(analysis.x0_fraction, analysis.a3);
}

TEST(Classification, ThreeMajorityIsCase2) {
  // 3-majority pushes UP on (1/2, 1): Case 2, slow with z=0.
  const ThreeMajorityDynamics three;
  const CaseAnalysis analysis = classify_bias(three, kN);
  EXPECT_EQ(analysis.bias_case, BiasCase::kCase2);
  EXPECT_EQ(analysis.slow_correct, Opinion::kZero);
  EXPECT_FALSE(analysis.upward);
  EXPECT_NEAR(analysis.interval_lo, 0.5, 1e-6);
}

TEST(Classification, TwoChoiceIsCase2) {
  // 2-choice also drifts toward the current majority on (1/2, 1).
  const TwoChoiceDynamics two;
  const CaseAnalysis analysis = classify_bias(two, kN);
  EXPECT_EQ(analysis.bias_case, BiasCase::kCase2);
}

TEST(Bounds, HoeffdingKnownValues) {
  EXPECT_NEAR(hoeffding_tail(100, 10.0), std::exp(-2.0), 1e-12);
  EXPECT_DOUBLE_EQ(hoeffding_tail(0, 1.0), 1.0);
  EXPECT_GT(hoeffding_tail(100, 1.0), hoeffding_tail(100, 20.0));
}

TEST(Bounds, Proposition4Y) {
  // y(c, l) = 1 - (1-c)^{l+1}/2; y(0, l) = 1/2, y -> 1 as c -> 1.
  EXPECT_DOUBLE_EQ(proposition4_y(0.0, 3), 0.5);
  EXPECT_NEAR(proposition4_y(0.5, 1), 1.0 - 0.25 / 2.0, 1e-12);
  EXPECT_GT(proposition4_y(0.9, 3), proposition4_y(0.1, 3));
  for (const double c : {0.1, 0.5, 0.9}) {
    const double y = proposition4_y(c, 5);
    EXPECT_GT(y, c);  // The paper requires y in (c, 1).
    EXPECT_LT(y, 1.0);
  }
}

TEST(Bounds, Proposition4FailureDecays) {
  EXPECT_NEAR(proposition4_failure(10000), std::exp(-200.0), 1e-90);
  EXPECT_GT(proposition4_failure(100), proposition4_failure(10000));
}

TEST(Bounds, AzumaTail) {
  // Matches 2 exp(-delta^2 / (2 T c^2)) + p.
  EXPECT_NEAR(azuma_tail(100, 1.0, 20.0, 0.0),
              2.0 * std::exp(-400.0 / 200.0), 1e-12);
  EXPECT_DOUBLE_EQ(azuma_tail(0, 1.0, 5.0, 0.125), 0.125);
  EXPECT_LE(azuma_tail(1, 1.0, 0.0, 0.0), 1.0);
}

TEST(Bounds, CrossingFloor) {
  EXPECT_DOUBLE_EQ(theorem6_crossing_floor(1000, 0.0), 1000.0);
  EXPECT_NEAR(theorem6_crossing_floor(10000, 0.5), 100.0, 1e-9);
}

TEST(Theorem6Checker, MinorityCase1SatisfiesAssumptions) {
  const MinorityDynamics minority(3);
  const CaseAnalysis analysis = classify_bias(minority, kN);
  const Theorem6Report report = check_theorem6(minority, kN, analysis, 0.25);
  EXPECT_TRUE(report.drift_ok) << report.describe();
  // On (1/2, 1) the drift n*F is strictly negative away from the roots.
  EXPECT_LT(report.worst_directional_drift, 1.0);
  EXPECT_LT(report.jump_probability_bound, 1e-6);
  EXPECT_LT(report.deviation_probability_bound, 1.0);
  EXPECT_NEAR(report.predicted_floor, std::pow(double(kN), 0.75), 1e-6);
}

TEST(Theorem6Checker, ThreeMajorityCase2SatisfiesAssumptions) {
  const ThreeMajorityDynamics three;
  const CaseAnalysis analysis = classify_bias(three, kN);
  const Theorem6Report report = check_theorem6(three, kN, analysis, 0.25);
  EXPECT_TRUE(report.drift_ok) << report.describe();
}

TEST(Theorem6Checker, VoterZeroBiasSatisfiesAssumptions) {
  const VoterDynamics voter;
  const CaseAnalysis analysis = classify_bias(voter, kN);
  const Theorem6Report report = check_theorem6(voter, kN, analysis, 0.25);
  EXPECT_TRUE(report.drift_ok) << report.describe();
  EXPECT_NEAR(report.worst_directional_drift, 0.0, 1e-9);
}

TEST(Theorem6Checker, WrongDirectionFailsDriftCheck) {
  // Deliberately run 3-majority "upward with z=1" above 1/2, where its drift
  // is strongly POSITIVE: assumption (i) must fail.
  const ThreeMajorityDynamics three;
  CaseAnalysis analysis = classify_bias(three, kN);
  analysis.upward = true;  // Wrong direction on purpose.
  const Theorem6Report report = check_theorem6(three, kN, analysis, 0.25);
  EXPECT_FALSE(report.drift_ok);
  EXPECT_GT(report.worst_directional_drift, 1.0);
}

}  // namespace
}  // namespace bitspread
