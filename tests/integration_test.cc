// End-to-end integration tests: whole-problem runs that tie together
// protocols, engines, analysis, and the paper's headline claims at small
// scale (the bench/ binaries run the full-scale versions).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/cases.h"
#include "analysis/theorem6.h"
#include "core/init.h"
#include "engine/aggregate.h"
#include "engine/sequential.h"
#include "protocols/majority.h"
#include "protocols/minority.h"
#include "protocols/perturbed.h"
#include "protocols/voter.h"
#include "sim/experiment.h"
#include "stats/summary.h"

namespace bitspread {
namespace {

TEST(Integration, VoterSolvesBitDisseminationFromAllWrong) {
  // Theorem 2 at small scale: Voter converges from the hardest init, for
  // both source opinions.
  const VoterDynamics voter;
  const AggregateParallelEngine engine(voter);
  StopRule rule;
  rule.max_rounds = 200000;
  for (const Opinion z : {Opinion::kZero, Opinion::kOne}) {
    int converged = 0;
    for (int i = 0; i < 20; ++i) {
      Rng rng(100 + i + 1000 * to_int(z));
      const RunResult result =
          engine.run(init_all_wrong(64, z), rule, rng);
      converged += result.converged();
    }
    EXPECT_EQ(converged, 20) << "z=" << to_int(z);
  }
}

TEST(Integration, MinorityWithSqrtSampleSizeIsFast) {
  // The SODA 2024 upper bound regime: l = sqrt(n ln n) converges in
  // polylog(n) rounds. At n = 2^14, log2^2(n) = 196; allow a generous cap.
  const MinorityDynamics minority(SampleSizePolicy::sqrt_n_log_n());
  const AggregateParallelEngine engine(minority);
  const std::uint64_t n = 1 << 14;
  StopRule rule;
  rule.max_rounds = 500;
  int converged = 0;
  RunningStats rounds;
  for (int i = 0; i < 10; ++i) {
    Rng rng(200 + i);
    const RunResult result = engine.run(init_all_wrong(n, Opinion::kOne),
                                        rule, rng);
    if (result.converged()) {
      ++converged;
      rounds.add(static_cast<double>(result.rounds()));
    }
  }
  EXPECT_EQ(converged, 10);
  EXPECT_LT(rounds.mean(), 100.0);
}

TEST(Integration, MinorityConstantSampleSlowCrossing) {
  // Theorem 1 flavor: minority with l = 3, z = 1, started inside the
  // adversarial interval, does not cross a3*n within n^{0.5} rounds (the
  // floor for eps = 0.5), for any replicate.
  const MinorityDynamics minority(3);
  const std::uint64_t n = 1 << 14;
  const CaseAnalysis analysis = classify_bias(minority, n);
  ASSERT_EQ(analysis.bias_case, BiasCase::kCase1);

  const AggregateParallelEngine engine(minority);
  StopRule rule;
  rule.max_rounds =
      static_cast<std::uint64_t>(std::pow(static_cast<double>(n), 0.5));
  rule.interval_hi =
      static_cast<std::uint64_t>(analysis.a3 * static_cast<double>(n));
  for (int i = 0; i < 10; ++i) {
    Rng rng(300 + i);
    const Configuration start{
        n,
        static_cast<std::uint64_t>(analysis.x0_fraction *
                                   static_cast<double>(n)),
        analysis.slow_correct};
    const RunResult result = engine.run(start, rule, rng);
    EXPECT_EQ(result.reason, StopReason::kRoundLimit)
        << "crossed after " << result.rounds() << " rounds";
  }
}

TEST(Integration, Theorem6PredictionConsistentWithSimulation) {
  // The checker validates assumptions; the simulated crossing time must
  // respect the floor (it is a lower bound, so censoring at the floor is the
  // expected outcome).
  const MinorityDynamics minority(5);
  const std::uint64_t n = 1 << 13;
  const CaseAnalysis analysis = classify_bias(minority, n);
  const double eps = 0.4;
  const Theorem6Report report = check_theorem6(minority, n, analysis, eps);
  ASSERT_TRUE(report.drift_ok) << report.describe();

  const AggregateParallelEngine engine(minority);
  StopRule rule;
  rule.max_rounds = static_cast<std::uint64_t>(report.predicted_floor);
  rule.interval_hi =
      static_cast<std::uint64_t>(analysis.a3 * static_cast<double>(n));
  Rng rng(400);
  const Configuration start{
      n,
      static_cast<std::uint64_t>(analysis.x0_fraction *
                                 static_cast<double>(n)),
      analysis.slow_correct};
  const RunResult result = engine.run(start, rule, rng);
  EXPECT_EQ(result.reason, StopReason::kRoundLimit);
}

TEST(Integration, PerturbedProtocolNeverStabilizes) {
  // Proposition 3 necessity: with g[0](0) > 0 the correct consensus leaks.
  const MinorityDynamics minority(3);
  const PerturbedProtocol noisy(minority, 0.05);
  const AggregateParallelEngine engine(noisy);
  Rng rng(500);
  Configuration config = correct_consensus(10000, Opinion::kOne);
  // Step manually: run() would (correctly) report instant convergence, but
  // here we want to observe that the consensus LEAKS under the broken g.
  std::uint64_t below = 0;
  for (int t = 0; t < 200; ++t) {
    config = engine.step(config, rng);
    below += config.ones < 10000;
  }
  EXPECT_GT(below, 150u);
}

TEST(Integration, MajorityFailsBitDissemination) {
  // §1: majority-like dynamics lack sensitivity to the source; from a large
  // wrong majority they lock in the wrong (near-)consensus. With z = 1 and
  // 90% zeros, majority (l = 5) should fail to converge within the time
  // minority-with-large-l would take by orders of magnitude.
  const MajorityDynamics majority(5, MajorityDynamics::TieBreak::kKeepOwn);
  const AggregateParallelEngine engine(majority);
  const std::uint64_t n = 4096;
  StopRule rule;
  rule.max_rounds = 2000;
  int converged = 0;
  for (int i = 0; i < 10; ++i) {
    Rng rng(600 + i);
    const RunResult result = engine.run(
        init_fraction_ones(n, Opinion::kOne, 0.1), rule, rng);
    converged += result.converged();
  }
  EXPECT_EQ(converged, 0);
}

TEST(Integration, SequentialVsParallelGapForMinority) {
  // The "power of synchronicity" (§1): minority with l = sqrt(n ln n)
  // converges in a handful of PARALLEL rounds when all agents update
  // synchronously, but the same rule under sequential activation is a
  // birth-death chain pulled toward the mixed state — it does not converge
  // within a horizon 100x larger (censored run).
  const std::uint64_t n = 1024;
  const MinorityDynamics minority(SampleSizePolicy::sqrt_n_log_n());

  const AggregateParallelEngine parallel(minority);
  StopRule rule;
  rule.max_rounds = 100000;
  Rng rng_p(700);
  const RunResult par =
      parallel.run(init_half(n, Opinion::kOne), rule, rng_p);
  ASSERT_TRUE(par.converged());
  EXPECT_LT(par.rounds(), 50u);

  const SequentialEngine sequential(minority);
  StopRule seq_rule;
  seq_rule.max_rounds = 100 * par.rounds();
  Rng rng_s(701);
  const RunResult seq =
      sequential.run(init_half(n, Opinion::kOne), seq_rule, rng_s);
  EXPECT_TRUE(seq.censored());  // Still not done after a 100x horizon.
}

TEST(Integration, MeasurementHarnessEndToEnd) {
  const VoterDynamics voter;
  const AggregateParallelEngine engine(voter);
  const SeedSequence seeds(42);
  StopRule rule;
  rule.max_rounds = 100000;
  const auto runner = [&](Rng& rng) {
    return engine.run(init_half(128, Opinion::kOne), rule, rng);
  };
  const ConvergenceMeasurement m = measure_convergence(runner, seeds, 0, 30);
  EXPECT_EQ(m.converged, 30);
  EXPECT_GT(m.rounds.mean(), 1.0);
  // Voter at n=128 takes on the order of n log n ~ 900 short of consensus;
  // just sanity-check the scale.
  EXPECT_LT(m.rounds.mean(), 50000.0);
}

TEST(Integration, SelfStabilizationAcrossAdversarialInits) {
  // Sweep adversarial initial fractions; the compliant protocol must always
  // converge with a generous cap (self-stabilization).
  const MinorityDynamics minority(SampleSizePolicy::sqrt_n_log_n());
  const AggregateParallelEngine engine(minority);
  const std::uint64_t n = 4096;
  StopRule rule;
  rule.max_rounds = 2000;
  int trial = 0;
  for (const double fraction : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    for (const Opinion z : {Opinion::kZero, Opinion::kOne}) {
      Rng rng(800 + trial++);
      const RunResult result =
          engine.run(init_fraction_ones(n, z, fraction), rule, rng);
      EXPECT_TRUE(result.converged())
          << "fraction=" << fraction << " z=" << to_int(z)
          << " reason=" << to_string(result.reason);
    }
  }
}

}  // namespace
}  // namespace bitspread
