// Exact distribution propagation (the law of X_t, convergence-time CDFs,
// total variation) and the ASCII plotter.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "engine/aggregate.h"
#include "markov/absorption.h"
#include "markov/dense_chain.h"
#include "markov/propagation.h"
#include "protocols/minority.h"
#include "protocols/voter.h"
#include "sim/ascii_plot.h"

namespace bitspread {
namespace {

TEST(Propagation, PreservesProbabilityMass) {
  const MinorityDynamics minority(3);
  const DenseParallelChain chain(minority, 20, Opinion::kOne);
  auto mu = distribution_after(chain, 10, 7);
  EXPECT_NEAR(std::accumulate(mu.begin(), mu.end(), 0.0), 1.0, 1e-9);
  for (const double p : mu) EXPECT_GE(p, -1e-15);
}

TEST(Propagation, OneRoundMatchesTransitionRow) {
  const VoterDynamics voter;
  const DenseParallelChain chain(voter, 15, Opinion::kZero);
  const auto mu = distribution_after(chain, 7, 1);
  const auto row = chain.transition_row(7);
  ASSERT_EQ(mu.size(), row.size());
  for (std::size_t i = 0; i < mu.size(); ++i) {
    EXPECT_NEAR(mu[i], row[i], 1e-12);
  }
}

TEST(Propagation, CdfIsMonotoneAndStartsAtZero) {
  const MinorityDynamics minority(3);
  const DenseParallelChain chain(minority, 16, Opinion::kOne);
  const auto cdf = convergence_cdf(chain, 8, 200);
  ASSERT_EQ(cdf.size(), 201u);
  EXPECT_DOUBLE_EQ(cdf[0], 0.0);
  for (std::size_t t = 1; t < cdf.size(); ++t) {
    EXPECT_GE(cdf[t] + 1e-12, cdf[t - 1]);
    EXPECT_LE(cdf[t], 1.0 + 1e-12);
  }
}

TEST(Propagation, CdfFromConsensusIsOne) {
  const MinorityDynamics minority(3);
  const DenseParallelChain chain(minority, 16, Opinion::kOne);
  const auto cdf = convergence_cdf(chain, 16, 3);
  EXPECT_DOUBLE_EQ(cdf[0], 1.0);
}

TEST(Propagation, CdfMeanMatchesFundamentalMatrixSolve) {
  // E[tau] = sum_t (1 - CDF(t)); with a long horizon this must match the
  // exact expected absorption time.
  const VoterDynamics voter;
  const std::uint64_t n = 12;
  const std::uint64_t x0 = 6;
  const DenseParallelChain chain(voter, n, Opinion::kOne);
  const double exact =
      expected_convergence_rounds(chain)[x0 - chain.min_state()];
  const auto cdf = convergence_cdf(chain, x0, 4000);
  double mean = 0.0;
  for (std::size_t t = 0; t < cdf.size(); ++t) mean += 1.0 - cdf[t];
  EXPECT_NEAR(mean, exact, 0.05 * exact);
}

TEST(Propagation, CdfMatchesSimulatedFrequencies) {
  const VoterDynamics voter;
  const std::uint64_t n = 14;
  const std::uint64_t x0 = 7;
  const std::uint64_t t_check = 25;
  const DenseParallelChain chain(voter, n, Opinion::kOne);
  const double exact_p = convergence_cdf(chain, x0, t_check)[t_check];

  const AggregateParallelEngine engine(voter);
  StopRule rule;
  rule.max_rounds = t_check;
  int converged = 0;
  const int kTrials = 6000;
  for (int i = 0; i < kTrials; ++i) {
    Rng rng(50000 + i);
    converged +=
        engine.run(Configuration{n, x0, Opinion::kOne}, rule, rng).converged();
  }
  const double freq = static_cast<double>(converged) / kTrials;
  const double sigma = std::sqrt(exact_p * (1 - exact_p) / kTrials);
  EXPECT_NEAR(freq, exact_p, 5.0 * sigma);
}

TEST(TotalVariation, BasicProperties) {
  EXPECT_DOUBLE_EQ(total_variation({0.5, 0.5}, {0.5, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(total_variation({1.0, 0.0}, {0.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(total_variation({0.7, 0.3}, {0.5, 0.5}), 0.2);
}

TEST(AsciiPlot, RendersAndScales) {
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) y.push_back(std::sin(i * 0.2));
  const std::string plot = ascii_plot(y);
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find('|'), std::string::npos);
  // Contains roughly height+2 lines.
  const auto lines = std::count(plot.begin(), plot.end(), '\n');
  EXPECT_GE(lines, 16);
}

TEST(AsciiPlot, HandlesDegenerateInput) {
  EXPECT_NE(ascii_plot(std::vector<double>{}).find("too short"),
            std::string::npos);
  EXPECT_NE(ascii_plot(std::vector<double>{1.0}).find("too short"),
            std::string::npos);
  // Flat series must not divide by zero.
  const std::string flat = ascii_plot(std::vector<double>(10, 3.0));
  EXPECT_NE(flat.find('*'), std::string::npos);
}

TEST(AsciiPlot, XyMismatchReported) {
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> y{1.0};
  EXPECT_NE(ascii_plot_xy(x, y).find("mismatch"), std::string::npos);
}

TEST(AsciiPlot, LabelIncluded) {
  PlotOptions options;
  options.y_label = "X_t over time";
  const std::string plot =
      ascii_plot(std::vector<double>{0.0, 1.0, 2.0}, options);
  EXPECT_NE(plot.find("X_t over time"), std::string::npos);
}

}  // namespace
}  // namespace bitspread
