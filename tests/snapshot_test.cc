// Checkpoint/restore: container integrity (CRC32C, truncation, bit flips),
// crash-safe ring semantics, and the acceptance property of the subsystem —
// an interrupted-then-resumed run reproduces the EXACT payload digest of the
// uninterrupted run, for the aggregate engine, the sharded engine at several
// thread/shard counts, the bitslice kernel backends, and faulty runs resumed
// mid-RecoverySegment or one round before a scheduled source flip.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/init.h"
#include "engine/aggregate.h"
#include "engine/sharded.h"
#include "engine/trajectory.h"
#include "faults/environment.h"
#include "protocols/minority.h"
#include "snapshot/checkpoint.h"
#include "snapshot/format.h"
#include "snapshot/state.h"
#include "telemetry/jsonl.h"

namespace bitspread {
namespace {

// Installs a checkpointer for one scope; uninstalls (and clears any leftover
// interrupt request) on exit so tests cannot leak state into each other.
class ScopedCheckpointer {
 public:
  explicit ScopedCheckpointer(snapshot::Checkpointer* checkpointer) {
    snapshot::install_checkpointer(checkpointer);
  }
  ~ScopedCheckpointer() {
    snapshot::install_checkpointer(nullptr);
    snapshot::clear_interrupt();
  }
};

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "bitspread_snap_" + name;
}

// Ring base for a Checkpointer, with any ring entries left by a previous
// execution of this binary removed — a stale .snap under the same base
// would otherwise be picked up by auto-resume in a later run.
std::string fresh_ring_base(const std::string& name) {
  const std::string base = temp_path(name);
  for (std::uint32_t slot = 0; slot < 256; ++slot) {
    std::remove((base + "." + std::to_string(slot) + ".snap").c_str());
  }
  return base;
}

// Scans a write ring for the entry snapshotted at `round`; empty when none.
std::string ring_file_for_round(const snapshot::Checkpointer& ring,
                                std::uint64_t round) {
  for (std::uint32_t slot = 0; slot < ring.options().ring; ++slot) {
    const std::string path = ring.ring_entry_path(slot);
    const auto file = snapshot::SnapshotFile::load(path);
    if (!file) continue;
    snapshot::RunSnapshot snap;
    if (snapshot::RunSnapshot::decode(*file, snap) && snap.round == round) {
      return path;
    }
  }
  return {};
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
}

// --- Container format -----------------------------------------------------

TEST(SnapshotFormat, Crc32cMatchesReferenceVector) {
  // RFC 3720 test vector for CRC32C: "123456789" -> 0xE3069283.
  const char* digits = "123456789";
  EXPECT_EQ(snapshot::crc32c(digits, 9), 0xE3069283u);
}

TEST(SnapshotFormat, SerializeParseRoundTrip) {
  snapshot::SnapshotFile file;
  file.add(snapshot::section_tag("AAAA"), {1, 2, 3});
  file.add(snapshot::section_tag("BBBB"), {});
  file.add(snapshot::section_tag("CCCC"), std::vector<std::uint8_t>(300, 7));

  const std::vector<std::uint8_t> bytes = file.serialize();
  std::string error;
  const auto parsed =
      snapshot::SnapshotFile::parse(bytes.data(), bytes.size(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_NE(parsed->find(snapshot::section_tag("AAAA")), nullptr);
  EXPECT_EQ(parsed->find(snapshot::section_tag("AAAA"))->payload,
            (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_TRUE(parsed->find(snapshot::section_tag("BBBB"))->payload.empty());
  EXPECT_EQ(parsed->find(snapshot::section_tag("CCCC"))->payload.size(), 300u);
  EXPECT_EQ(parsed->find(snapshot::section_tag("DDDD")), nullptr);
}

TEST(SnapshotFormat, EveryTruncationIsRejected) {
  snapshot::SnapshotFile file;
  file.add(snapshot::section_tag("AAAA"), {1, 2, 3, 4, 5});
  const std::vector<std::uint8_t> bytes = file.serialize();
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    EXPECT_FALSE(snapshot::SnapshotFile::parse(bytes.data(), keep).has_value())
        << "prefix of " << keep << " bytes parsed";
  }
}

TEST(SnapshotFormat, EverySingleBitFlipIsRejected) {
  snapshot::SnapshotFile file;
  file.add(snapshot::section_tag("AAAA"), {10, 20, 30});
  std::vector<std::uint8_t> bytes = file.serialize();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      bytes[i] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_FALSE(
          snapshot::SnapshotFile::parse(bytes.data(), bytes.size()).has_value())
          << "flip at byte " << i << " bit " << bit << " parsed";
      bytes[i] ^= static_cast<std::uint8_t>(1u << bit);
    }
  }
}

TEST(SnapshotFormat, AtomicWriteThenLoadRoundTrips) {
  snapshot::SnapshotFile file;
  file.add(snapshot::section_tag("AAAA"), {9, 9, 9});
  const std::string path = temp_path("atomic.snap");
  std::string error;
  ASSERT_TRUE(file.write_atomic(path, &error)) << error;
  const auto loaded = snapshot::SnapshotFile::load(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->find(snapshot::section_tag("AAAA"))->payload,
            (std::vector<std::uint8_t>{9, 9, 9}));
}

// --- RunSnapshot encode/decode --------------------------------------------

snapshot::RunSnapshot sample_snapshot() {
  snapshot::RunSnapshot snap;
  snap.engine_tag = "sharded.faulty";
  snap.run_ordinal = 2;
  snap.sequence = 41;
  snap.tick = 640;
  snap.round = 640;
  snap.config = Configuration{4096, 2048, Opinion::kOne, 1};
  snap.stepper.seed_check = 0xDEADBEEF;
  snap.stepper.plane = {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull};
  snap.stepper.agent_states = {1, 2, 3};
  snap.stepper.samples_drawn = 777;
  snap.has_faults = true;
  snap.faults.next_flip = 1;
  snap.faults.churned = 5;
  snap.faults.recoveries.resize(2);
  snap.faults.recoveries[0].flip_round = 0;
  snap.faults.recoveries[0].recovered_round = 12;
  snap.faults.recoveries[0].recovered = true;
  snap.faults.recoveries[1].flip_round = 30;
  snap.has_trajectory = true;
  snap.trajectory = {{0, 2048}, {100, 2100}};
  snap.stream_rounds_seen = 641;
  snap.stream_lines = 65;
  return snap;
}

TEST(RunSnapshot, EncodeDecodeRoundTripsEveryField) {
  const snapshot::RunSnapshot snap = sample_snapshot();
  snapshot::RunSnapshot out;
  std::string error;
  ASSERT_TRUE(snapshot::RunSnapshot::decode(snap.encode(), out, &error))
      << error;
  EXPECT_EQ(out.engine_tag, snap.engine_tag);
  EXPECT_EQ(out.run_ordinal, snap.run_ordinal);
  EXPECT_EQ(out.sequence, snap.sequence);
  EXPECT_EQ(out.tick, snap.tick);
  EXPECT_EQ(out.round, snap.round);
  EXPECT_EQ(out.config, snap.config);
  EXPECT_EQ(out.stepper, snap.stepper);
  ASSERT_TRUE(out.has_faults);
  EXPECT_EQ(out.faults, snap.faults);
  ASSERT_TRUE(out.has_trajectory);
  ASSERT_EQ(out.trajectory.size(), 2u);
  EXPECT_EQ(out.trajectory[1].round, 100u);
  EXPECT_EQ(out.trajectory[1].ones, 2100u);
  EXPECT_EQ(out.stream_rounds_seen, 641u);
  EXPECT_EQ(out.stream_lines, 65u);
}

TEST(RunSnapshot, DecodeRejectsMissingSectionsAndInvalidConfig) {
  snapshot::RunSnapshot out;
  std::string error;
  EXPECT_FALSE(
      snapshot::RunSnapshot::decode(snapshot::SnapshotFile{}, out, &error));

  snapshot::RunSnapshot bad = sample_snapshot();
  bad.config.ones = bad.config.n + 5;  // ones > n: invalid.
  EXPECT_FALSE(snapshot::RunSnapshot::decode(bad.encode(), out, &error));
  EXPECT_NE(error.find("CONF"), std::string::npos) << error;
}

// --- Checkpointer ring ----------------------------------------------------

TEST(Checkpointer, AutoResumePicksNewestAndFallsBackPastCorruption) {
  snapshot::CheckpointOptions options;
  options.path = fresh_ring_base("ring");
  options.ring = 3;
  snapshot::Checkpointer ring(options);

  for (std::uint64_t seq = 0; seq < 5; ++seq) {
    snapshot::RunSnapshot snap = sample_snapshot();
    snap.round = 100 + seq;
    ASSERT_TRUE(ring.write(snap));
  }
  // Slots now hold sequences {3, 4, 2}; newest (seq 4) lives in slot 1.
  {
    snapshot::Checkpointer reader(options);
    ASSERT_TRUE(reader.load_resume("auto"));
    EXPECT_EQ(reader.pending_resume()->sequence, 4u);
    EXPECT_EQ(reader.pending_resume()->round, 104u);
  }
  // Bit-flip the newest entry: auto-resume must fall back to sequence 3.
  {
    std::vector<std::uint8_t> bytes = read_file(ring.ring_entry_path(1));
    ASSERT_FALSE(bytes.empty());
    bytes[bytes.size() / 2] ^= 0x10;
    write_file(ring.ring_entry_path(1), bytes);

    snapshot::Checkpointer reader(options);
    ASSERT_TRUE(reader.load_resume("auto"));
    EXPECT_EQ(reader.pending_resume()->sequence, 3u);
    EXPECT_EQ(reader.pending_resume()->round, 103u);
  }
  // Explicit-path resume is strict: the corrupt file is a hard failure.
  {
    snapshot::Checkpointer reader(options);
    EXPECT_FALSE(reader.load_resume(ring.ring_entry_path(1)));
    EXPECT_NE(reader.last_error().find("CRC"), std::string::npos)
        << reader.last_error();
  }
}

TEST(Checkpointer, TakeResumeMatchesOrdinalAndTagOnce) {
  snapshot::CheckpointOptions options;
  options.path = fresh_ring_base("take");
  snapshot::Checkpointer writer(options);
  snapshot::RunSnapshot snap = sample_snapshot();
  snap.run_ordinal = 1;
  snap.engine_tag = "aggregate";
  ASSERT_TRUE(writer.write(snap));

  snapshot::Checkpointer reader(options);
  ASSERT_TRUE(reader.load_resume("auto"));
  EXPECT_EQ(reader.take_resume(0, "aggregate"), nullptr);  // Wrong ordinal.
  EXPECT_EQ(reader.take_resume(1, "sharded"), nullptr);    // Wrong engine.
  EXPECT_NE(reader.take_resume(1, "aggregate"), nullptr);
  EXPECT_EQ(reader.take_resume(1, "aggregate"), nullptr);  // One-shot.
  EXPECT_EQ(reader.resumed_runs(), 1u);
}

// --- Deterministic resume: the acceptance property ------------------------

// Shared fixture pieces: a balanced minority(3) start stalls (Theorem 1),
// so every run below is a long, structure-rich censored run.
constexpr std::uint64_t kN = 1 << 12;
constexpr std::uint64_t kRounds = 120;
constexpr std::uint64_t kResumeRound = 40;

StopRule stall_rule() {
  StopRule rule;
  rule.max_rounds = kRounds;
  return rule;
}

// Runs `run` uninterrupted for the golden digest, again with periodic
// checkpoints (digest must be unperturbed), then once more resuming from the
// ring entry at kResumeRound (digest must be identical).
template <typename RunFn>
void expect_digest_identical_resume(const std::string& tag, RunFn run) {
  const std::uint64_t golden = snapshot::payload_digest(run());

  snapshot::CheckpointOptions options;
  options.path = fresh_ring_base(tag);
  options.every = 10;
  options.ring = 64;  // Retain every snapshot of the run.
  snapshot::Checkpointer writer(options);
  {
    const ScopedCheckpointer installed(&writer);
    EXPECT_EQ(snapshot::payload_digest(run()), golden)
        << "checkpointing perturbed the run";
  }
  EXPECT_GT(writer.written(), 0u);

  const std::string entry = ring_file_for_round(writer, kResumeRound);
  ASSERT_FALSE(entry.empty()) << "no ring entry at round " << kResumeRound;
  snapshot::Checkpointer resumer(options);  // every=10 also re-checkpoints.
  ASSERT_TRUE(resumer.load_resume(entry));
  {
    const ScopedCheckpointer installed(&resumer);
    EXPECT_EQ(snapshot::payload_digest(run()), golden)
        << "resume from round " << kResumeRound << " diverged";
  }
  EXPECT_EQ(resumer.resumed_runs(), 1u) << "resume never engaged";
}

TEST(DeterministicResume, AggregateEngine) {
  const MinorityDynamics minority(3);
  const AggregateParallelEngine engine(minority);
  const Configuration init = init_fraction_ones(kN, Opinion::kOne, 0.5);
  expect_digest_identical_resume("agg", [&] {
    Rng rng(99);  // Fresh generator per run; restore() overwrites its state.
    return engine.run(init, stall_rule(), rng);
  });
}

TEST(DeterministicResume, AggregateEngineWithFaults) {
  const MinorityDynamics minority(3);
  const AggregateParallelEngine engine(minority);
  const Configuration init = init_fraction_ones(kN, Opinion::kOne, 0.5);
  EnvironmentModel faults;
  faults.source_flip_rounds = {30};
  faults.churn_rate = 0.001;
  expect_digest_identical_resume("aggf", [&] {
    Rng rng(99);
    return engine.run(init, stall_rule(), faults, rng);
  });
}

TEST(DeterministicResume, ShardedEngineAcrossThreadAndShardCounts) {
  const MinorityDynamics minority(3);
  const Configuration init =
      init_fraction_ones(1 << 14, Opinion::kOne, 0.5);  // 4 blocks.
  // The same seed must give the same digest for EVERY thread/shard count,
  // interrupted or not — so checkpoint under one geometry and resume under
  // others, all against one golden.
  ShardedEngineOptions legacy;
  legacy.kernel = kernel::Backend::kLegacy;
  std::optional<std::uint64_t> golden;
  for (const auto& [threads, shards] :
       std::vector<std::pair<unsigned, std::uint32_t>>{
           {1, 1}, {2, 3}, {4, 2}}) {
    ShardedEngineOptions options = legacy;
    options.threads = threads;
    options.shards = shards;
    const ShardedAgentEngine engine(minority, options);
    const auto run = [&] { return engine.run(init, stall_rule(), 1234); };
    if (!golden) golden = snapshot::payload_digest(run());

    snapshot::CheckpointOptions copts;
    copts.path = fresh_ring_base("shr" + std::to_string(threads) + "x" +
                                 std::to_string(shards));
    copts.every = 10;
    copts.ring = 64;
    snapshot::Checkpointer writer(copts);
    {
      const ScopedCheckpointer installed(&writer);
      EXPECT_EQ(snapshot::payload_digest(run()), *golden);
    }
    const std::string entry = ring_file_for_round(writer, kResumeRound);
    ASSERT_FALSE(entry.empty());
    // Resume under a DIFFERENT geometry than the one that snapshotted.
    ShardedEngineOptions other = legacy;
    other.threads = threads == 1 ? 3 : 1;
    const ShardedAgentEngine resumed_engine(minority, other);
    snapshot::Checkpointer resumer(copts);
    ASSERT_TRUE(resumer.load_resume(entry));
    const ScopedCheckpointer installed(&resumer);
    EXPECT_EQ(snapshot::payload_digest(
                  resumed_engine.run(init, stall_rule(), 1234)),
              *golden)
        << "resume across thread/shard geometry diverged";
    EXPECT_EQ(resumer.resumed_runs(), 1u);
  }
}

TEST(DeterministicResume, ShardedKernelBackend) {
  const MinorityDynamics minority(3);
  ShardedEngineOptions options;
  options.kernel = kernel::Backend::kAuto;  // Bitslice whenever eligible.
  options.threads = 2;
  const ShardedAgentEngine engine(minority, options);
  const Configuration init = init_fraction_ones(1 << 14, Opinion::kOne, 0.5);
  expect_digest_identical_resume("krn", [&] {
    return engine.run(init, stall_rule(), 4321);
  });
}

TEST(DeterministicResume, ShardedFaultyRun) {
  const MinorityDynamics minority(3);
  ShardedEngineOptions options;
  options.kernel = kernel::Backend::kLegacy;
  options.threads = 2;
  const ShardedAgentEngine engine(minority, options);
  const Configuration init = init_fraction_ones(1 << 14, Opinion::kOne, 0.5);
  EnvironmentModel faults;
  faults.observation_noise = 0.02;
  faults.source_flip_rounds = {30};
  expect_digest_identical_resume("shrf", [&] {
    return engine.run(init, stall_rule(), faults, 777);
  });
}

// Resuming mid-RecoverySegment (after the flip, before any re-convergence)
// and from the snapshot one round BEFORE the flip applies must both replay
// the flip schedule and degraded classification identically.
TEST(DeterministicResume, FaultyRunAcrossFlipBoundary) {
  const MinorityDynamics minority(3);
  const AggregateParallelEngine engine(minority);
  const Configuration init = init_fraction_ones(kN, Opinion::kOne, 0.5);
  constexpr std::uint64_t kFlipRound = 30;
  EnvironmentModel faults;
  faults.source_flip_rounds = {kFlipRound};
  const auto run = [&] {
    Rng rng(5);
    return engine.run(init, stall_rule(), faults, rng);
  };

  const RunResult golden = run();
  // Minority(3) never re-converges after the flip (Theorem 1): the run ends
  // degraded with the flip's segment open — resuming must preserve that.
  ASSERT_EQ(golden.reason, StopReason::kDegraded);
  ASSERT_EQ(golden.recoveries.size(), 2u);
  ASSERT_EQ(golden.recoveries[1].flip_round, kFlipRound);
  ASSERT_FALSE(golden.recoveries[1].recovered);

  snapshot::CheckpointOptions options;
  options.path = fresh_ring_base("flip");
  options.every = 1;  // A snapshot at every round boundary.
  options.ring = 256;
  snapshot::Checkpointer writer(options);
  {
    const ScopedCheckpointer installed(&writer);
    EXPECT_EQ(snapshot::payload_digest(run()),
              snapshot::payload_digest(golden));
  }

  // The snapshot taken at round kFlipRound precedes the flip's application
  // (flips land at the TOP of the next driver iteration), so this resume
  // replays the flip; kFlipRound + 20 resumes mid-open-segment.
  for (const std::uint64_t round : {kFlipRound, kFlipRound + 20}) {
    const std::string entry = ring_file_for_round(writer, round);
    ASSERT_FALSE(entry.empty()) << "no ring entry at round " << round;
    snapshot::Checkpointer resumer(options);
    ASSERT_TRUE(resumer.load_resume(entry));
    const ScopedCheckpointer installed(&resumer);
    const RunResult resumed = run();
    EXPECT_EQ(snapshot::payload_digest(resumed),
              snapshot::payload_digest(golden))
        << "resume at round " << round;
    ASSERT_EQ(resumed.recoveries.size(), 2u);
    EXPECT_EQ(resumed.recoveries[1].flip_round, kFlipRound);
    EXPECT_FALSE(resumed.recoveries[1].recovered);
    EXPECT_EQ(resumed.reason, StopReason::kDegraded);
  }
}

// request_interrupt() stops a run at the next round boundary with a final
// snapshot; resuming from it completes with the golden digest, and the
// trajectory of the stitched run equals the uninterrupted one's.
TEST(DeterministicResume, InterruptedRunResumesWithIdenticalTrajectory) {
  const MinorityDynamics minority(3);
  const AggregateParallelEngine engine(minority);
  const Configuration init = init_fraction_ones(kN, Opinion::kOne, 0.5);
  const auto run = [&](Trajectory* trajectory) {
    Rng rng(17);
    return engine.run(init, stall_rule(), rng, trajectory);
  };

  Trajectory golden_trajectory;
  const RunResult golden = run(&golden_trajectory);

  snapshot::CheckpointOptions options;
  options.path = fresh_ring_base("intr");
  snapshot::Checkpointer writer(options);  // every = 0: interrupt-only.
  {
    const ScopedCheckpointer installed(&writer);
    snapshot::request_interrupt();
    Trajectory ignored;
    const RunResult interrupted = run(&ignored);
    EXPECT_EQ(interrupted.reason, StopReason::kInterrupted);
    EXPECT_TRUE(interrupted.censored());
    EXPECT_EQ(interrupted.ticks, 0u);  // Interrupt precedes the first step.
  }
  ASSERT_EQ(writer.written(), 1u);

  snapshot::Checkpointer resumer(options);
  ASSERT_TRUE(resumer.load_resume("auto"));
  const ScopedCheckpointer installed(&resumer);
  Trajectory resumed_trajectory;
  const RunResult resumed = run(&resumed_trajectory);
  EXPECT_EQ(snapshot::payload_digest(resumed),
            snapshot::payload_digest(golden));
  ASSERT_EQ(resumed_trajectory.size(), golden_trajectory.size());
  for (std::size_t i = 0; i < golden_trajectory.size(); ++i) {
    EXPECT_EQ(resumed_trajectory.points()[i].round,
              golden_trajectory.points()[i].round);
    EXPECT_EQ(resumed_trajectory.points()[i].ones,
              golden_trajectory.points()[i].ones);
  }
}

// A snapshot for one engine never resumes another: the sharded run ignores
// an aggregate snapshot and still produces its own golden digest.
TEST(DeterministicResume, EngineTagMismatchFallsBackToFreshRun) {
  const MinorityDynamics minority(3);
  const Configuration init = init_fraction_ones(kN, Opinion::kOne, 0.5);
  const AggregateParallelEngine aggregate(minority);
  ShardedEngineOptions options;
  options.kernel = kernel::Backend::kLegacy;
  const ShardedAgentEngine sharded(minority, options);
  const std::uint64_t golden =
      snapshot::payload_digest(sharded.run(init, stall_rule(), 42));

  snapshot::CheckpointOptions copts;
  copts.path = fresh_ring_base("mismatch");
  copts.every = 10;
  copts.ring = 64;
  snapshot::Checkpointer writer(copts);
  {
    const ScopedCheckpointer installed(&writer);
    Rng rng(9);
    aggregate.run(init, stall_rule(), rng);
  }
  snapshot::Checkpointer resumer(copts);
  ASSERT_TRUE(resumer.load_resume("auto"));
  const ScopedCheckpointer installed(&resumer);
  EXPECT_EQ(snapshot::payload_digest(sharded.run(init, stall_rule(), 42)),
            golden);
  EXPECT_EQ(resumer.resumed_runs(), 0u);
}

// A wrong-seed sharded snapshot is refused by restore() (seed fingerprint),
// falling back to a fresh — still correct — run.
TEST(DeterministicResume, SeedMismatchIsRefused) {
  const MinorityDynamics minority(3);
  ShardedEngineOptions options;
  options.kernel = kernel::Backend::kLegacy;
  const ShardedAgentEngine engine(minority, options);
  const Configuration init = init_fraction_ones(kN, Opinion::kOne, 0.5);
  const std::uint64_t golden =
      snapshot::payload_digest(engine.run(init, stall_rule(), 43));

  snapshot::CheckpointOptions copts;
  copts.path = fresh_ring_base("seed");
  copts.every = 10;
  copts.ring = 64;
  snapshot::Checkpointer writer(copts);
  {
    const ScopedCheckpointer installed(&writer);
    engine.run(init, stall_rule(), 42);  // Snapshot under seed 42.
  }
  snapshot::Checkpointer resumer(copts);
  ASSERT_TRUE(resumer.load_resume("auto"));
  const ScopedCheckpointer installed(&resumer);
  EXPECT_EQ(snapshot::payload_digest(engine.run(init, stall_rule(), 43)),
            golden)
      << "a wrong-seed snapshot leaked into the run";
}

// --- RoundStream append mode ----------------------------------------------

TEST(RoundStreamResume, AppendModePreservesLinesAndCounters) {
  const std::string path = temp_path("stream.jsonl");
  {
    telemetry::RoundStream stream(path);
    stream.on_round(0, 10, 100);
    stream.on_round(1, 11, 100);
    EXPECT_EQ(stream.lines(), 2u);
    stream.flush();
  }
  {
    telemetry::RoundStream::Options options;
    options.append = true;
    telemetry::RoundStream stream(path, options);
    stream.restore_counts(2, 2);
    stream.on_round(2, 12, 100);
    EXPECT_EQ(stream.rounds_seen(), 3u);
    EXPECT_EQ(stream.lines(), 3u);
    stream.flush();
  }
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.find("{\"round\":"), 0u);
    ++lines;
  }
  EXPECT_EQ(lines, 3);
}

}  // namespace
}  // namespace bitspread
