// The agent-level engine: population handling, the memory-less adapter, and
// the stateful dynamics (undecided-state, trend-follower).
#include <gtest/gtest.h>

#include "core/init.h"
#include "core/stateful.h"
#include "engine/agent.h"
#include "protocols/follow_trend.h"
#include "protocols/minority.h"
#include "protocols/undecided.h"
#include "protocols/voter.h"

namespace bitspread {
namespace {

TEST(AgentEngine, PopulationLayoutMatchesConfiguration) {
  const VoterDynamics voter;
  const MemorylessAsStateful adapter(voter);
  const AgentParallelEngine engine(adapter);
  const Configuration config{10, 4, Opinion::kOne};
  const auto population = engine.make_population(config);
  EXPECT_EQ(population.views.size(), 10u);
  EXPECT_EQ(population.count_ones(), 4u);
  EXPECT_EQ(population.views[0].opinion, Opinion::kOne);  // Source first.
  EXPECT_EQ(population.config(), config);
}

TEST(AgentEngine, SourceIsPinnedAcrossSteps) {
  const VoterDynamics voter;
  const MemorylessAsStateful adapter(voter);
  const AgentParallelEngine engine(adapter);
  Rng rng(1);
  auto population =
      engine.make_population(Configuration{20, 1, Opinion::kOne});
  for (int t = 0; t < 50; ++t) {
    engine.step(population, rng);
    EXPECT_EQ(population.views[0].opinion, Opinion::kOne);
  }
}

TEST(AgentEngine, ConsensusAbsorbingForMinority) {
  const MinorityDynamics minority(3);
  const MemorylessAsStateful adapter(minority);
  const AgentParallelEngine engine(adapter);
  Rng rng(2);
  auto population =
      engine.make_population(correct_consensus(50, Opinion::kOne));
  for (int t = 0; t < 20; ++t) {
    engine.step(population, rng);
    EXPECT_EQ(population.count_ones(), 50u);
  }
}

TEST(AgentEngine, RunConvergesOnSmallInstance) {
  const VoterDynamics voter;
  const MemorylessAsStateful adapter(voter);
  const AgentParallelEngine engine(adapter);
  Rng rng(3);
  StopRule rule;
  rule.max_rounds = 200000;
  const RunResult result =
      engine.run(init_all_wrong(30, Opinion::kOne), rule, rng);
  EXPECT_TRUE(result.converged()) << to_string(result.reason);
}

TEST(AgentEngine, OneRoundMeanMatchesExpectation) {
  // Voter: each non-source agent independently becomes 1 w.p. p = x/n.
  const VoterDynamics voter;
  const MemorylessAsStateful adapter(voter);
  const AgentParallelEngine engine(adapter);
  Rng rng(4);
  const std::uint64_t n = 2000, x0 = 600;
  double total = 0.0;
  const int kTrials = 200;
  for (int i = 0; i < kTrials; ++i) {
    auto population =
        engine.make_population(Configuration{n, x0, Opinion::kOne});
    engine.step(population, rng);
    total += static_cast<double>(population.count_ones());
  }
  const double expected = 1.0 + static_cast<double>(n - 1) * 0.3;
  EXPECT_NEAR(total / kTrials, expected, 6.0);
}

TEST(AgentEngine, WithoutReplacementSampling) {
  const MinorityDynamics minority(5);
  const MemorylessAsStateful adapter(minority);
  const AgentParallelEngine engine(
      adapter, AgentParallelEngine::Sampling::kWithoutReplacement);
  Rng rng(5);
  StopRule rule;
  rule.max_rounds = 500;
  const RunResult result =
      engine.run(init_half(60, Opinion::kOne), rule, rng);
  EXPECT_NE(result.reason, StopReason::kIntervalExit);
  EXPECT_TRUE(result.final_config.valid());
}

TEST(UndecidedState, ConvergesToInitialMajority) {
  // USD is majority-biased: from a 70% correct-opinion start it reaches the
  // correct display consensus quickly.
  const UndecidedStateDynamics usd;
  const AgentParallelEngine engine(usd);
  Rng rng(6);
  StopRule rule;
  rule.max_rounds = 100000;
  const RunResult result = engine.run(
      init_fraction_ones(40, Opinion::kOne, 0.7), rule, rng);
  EXPECT_TRUE(result.converged()) << to_string(result.reason);
}

TEST(UndecidedState, FailsBitDisseminationFromAllWrong) {
  // Like majority dynamics (paper §1), USD lacks sensitivity to the source:
  // from an all-wrong start the wrong local majority pins the system and the
  // correct opinion does not spread within a generous horizon.
  const UndecidedStateDynamics usd;
  const AgentParallelEngine engine(usd);
  Rng rng(61);
  StopRule rule;
  rule.max_rounds = 3000;
  const RunResult result =
      engine.run(init_all_wrong(40, Opinion::kOne), rule, rng);
  EXPECT_EQ(result.reason, StopReason::kRoundLimit);
  // The ones-count stays pinned near the source alone.
  EXPECT_LT(result.final_config.ones, 10u);
}

TEST(UndecidedState, UpdateRulesMatchSpec) {
  const UndecidedStateDynamics usd;
  Rng rng(7);
  using View = StatefulProtocol::AgentView;
  // Committed 1 sees 1: unchanged.
  View v = usd.update(View{Opinion::kOne, UndecidedStateDynamics::kCommitted},
                      1, 1, 100, rng);
  EXPECT_EQ(v.opinion, Opinion::kOne);
  EXPECT_EQ(v.state, UndecidedStateDynamics::kCommitted);
  // Committed 1 sees 0: becomes undecided, still displays 1.
  v = usd.update(View{Opinion::kOne, UndecidedStateDynamics::kCommitted}, 0, 1,
                 100, rng);
  EXPECT_EQ(v.opinion, Opinion::kOne);
  EXPECT_EQ(v.state, UndecidedStateDynamics::kUndecided);
  // Undecided sees 0: commits to 0.
  v = usd.update(View{Opinion::kOne, UndecidedStateDynamics::kUndecided}, 0, 1,
                 100, rng);
  EXPECT_EQ(v.opinion, Opinion::kZero);
  EXPECT_EQ(v.state, UndecidedStateDynamics::kCommitted);
}

TEST(TrendFollower, UpdateFollowsTrend) {
  const TrendFollowerDynamics trend(SampleSizePolicy::constant(10));
  Rng rng(8);
  using View = StatefulProtocol::AgentView;
  // Count rose 3 -> 7: adopt 1, remember 7.
  View v = trend.update(View{Opinion::kZero, 3}, 7, 10, 100, rng);
  EXPECT_EQ(v.opinion, Opinion::kOne);
  EXPECT_EQ(v.state, 7u);
  // Count fell 7 -> 2: adopt 0.
  v = trend.update(View{Opinion::kOne, 7}, 2, 10, 100, rng);
  EXPECT_EQ(v.opinion, Opinion::kZero);
  // Flat at a majority of ones: adopt 1.
  v = trend.update(View{Opinion::kZero, 8}, 8, 10, 100, rng);
  EXPECT_EQ(v.opinion, Opinion::kOne);
  // Flat exactly balanced: keep own.
  v = trend.update(View{Opinion::kZero, 5}, 5, 10, 100, rng);
  EXPECT_EQ(v.opinion, Opinion::kZero);
}

TEST(TrendFollower, DisplayConsensusIsStable) {
  const TrendFollowerDynamics trend(SampleSizePolicy::constant(6));
  const AgentParallelEngine engine(trend);
  Rng rng(9);
  auto population =
      engine.make_population(correct_consensus(50, Opinion::kOne));
  for (int t = 0; t < 20; ++t) {
    engine.step(population, rng);
    EXPECT_EQ(population.count_ones(), 50u);
  }
}

TEST(AgentEngine, RunsFromAdversarialInternalStates) {
  // Engines must accept ANY internal state (self-stabilization quantifies
  // over them): plant every agent as "undecided" in a 70%-correct start and
  // verify the run still reaches the correct display consensus.
  const UndecidedStateDynamics usd;
  const AgentParallelEngine engine(usd);
  Rng rng(10);
  auto population = engine.make_population(
      init_fraction_ones(30, Opinion::kOne, 0.7));
  for (auto& view : population.views) {
    view.state = UndecidedStateDynamics::kUndecided;
  }
  // Re-pin the source (its view was perturbed above).
  population.views[0] = StatefulProtocol::AgentView{
      Opinion::kOne, UndecidedStateDynamics::kCommitted};
  StopRule rule;
  rule.max_rounds = 100000;
  const RunResult result = engine.run_population(population, rule, rng);
  EXPECT_TRUE(result.converged()) << to_string(result.reason);
}

TEST(MemorylessAdapter, ReportsBaseName) {
  const VoterDynamics voter;
  const MemorylessAsStateful adapter(voter);
  EXPECT_EQ(adapter.name(), "voter");
  EXPECT_EQ(adapter.state_count(), 1u);
  EXPECT_EQ(adapter.sample_size(100), voter.sample_size(100));
}

}  // namespace
}  // namespace bitspread
