// The population-protocol (pairwise, active-communication) engine and its
// dynamics: the §1.3 contrast class.
#include <gtest/gtest.h>

#include <cmath>

#include "population/engine.h"
#include "population/protocols.h"
#include "stats/summary.h"

namespace bitspread {
namespace {

TEST(EpidemicProtocol, InteractionRulesMatchSpec) {
  const EpidemicProtocol epidemic;
  Rng rng(1);
  const std::uint32_t informed_one = 1 | EpidemicProtocol::kInformedBit;
  const std::uint32_t ignorant_zero = 0;
  // Informed stamps the ignorant partner, either direction.
  EXPECT_EQ(epidemic.interact(informed_one, ignorant_zero, rng),
            (std::pair<std::uint32_t, std::uint32_t>{informed_one,
                                                     informed_one}));
  EXPECT_EQ(epidemic.interact(ignorant_zero, informed_one, rng),
            (std::pair<std::uint32_t, std::uint32_t>{informed_one,
                                                     informed_one}));
  // Two ignorants: nothing happens.
  EXPECT_EQ(epidemic.interact(0, 1, rng),
            (std::pair<std::uint32_t, std::uint32_t>{0, 1}));
  // Opinion projection and source state.
  EXPECT_EQ(epidemic.opinion(informed_one), Opinion::kOne);
  EXPECT_EQ(epidemic.opinion(ignorant_zero), Opinion::kZero);
  EXPECT_EQ(epidemic.source_state(Opinion::kZero),
            EpidemicProtocol::kInformedBit);
}

TEST(PairwiseVoter, InitiatorCopiesResponder) {
  const PairwiseVoter voter;
  Rng rng(2);
  EXPECT_EQ(voter.interact(0, 1, rng),
            (std::pair<std::uint32_t, std::uint32_t>{1, 1}));
  EXPECT_EQ(voter.interact(1, 0, rng),
            (std::pair<std::uint32_t, std::uint32_t>{0, 0}));
}

TEST(PopulationEngine, MakePopulationLayout) {
  const EpidemicProtocol epidemic;
  const PopulationEngine engine(epidemic);
  const auto population =
      engine.make_population(10, Opinion::kOne, /*initial_ones=*/4);
  EXPECT_EQ(population.states.size(), 10u);
  EXPECT_EQ(population.count_ones(epidemic), 4u);
  // Source is informed; non-source starters are not.
  EXPECT_EQ(population.states[0],
            1u | EpidemicProtocol::kInformedBit);
  EXPECT_EQ(population.states[1], 1u);
}

TEST(PopulationEngine, SourceStateIsPinned) {
  const PairwiseVoter voter;
  const PopulationEngine engine(voter);
  auto population = engine.make_population(20, Opinion::kOne, 1);
  Rng rng(3);
  for (int t = 0; t < 2000; ++t) {
    engine.interact(population, rng);
    EXPECT_EQ(population.states[0], 1u);
  }
}

TEST(PopulationEngine, EpidemicConvergesInLogTime) {
  const EpidemicProtocol epidemic;
  const PopulationEngine engine(epidemic);
  const std::uint64_t n = 4096;
  RunningStats rounds;
  for (int rep = 0; rep < 10; ++rep) {
    Rng rng(100 + rep);
    auto population = engine.make_population(n, Opinion::kOne, 1);
    StopRule rule;
    rule.max_rounds = 10000;
    const RunResult r = engine.run(population, rule, rng);
    ASSERT_TRUE(r.converged());
    rounds.add(r.parallel_rounds());
  }
  // Epidemic time ~ 2 log2 n ~ 24; allow generous slack.
  EXPECT_LT(rounds.mean(), 4.0 * std::log2(static_cast<double>(n)));
  EXPECT_GT(rounds.mean(), 0.5 * std::log2(static_cast<double>(n)));
}

TEST(PopulationEngine, EpidemicWorksForZeroSourceToo) {
  const EpidemicProtocol epidemic;
  const PopulationEngine engine(epidemic);
  Rng rng(4);
  auto population =
      engine.make_population(512, Opinion::kZero, /*initial_ones=*/511);
  StopRule rule;
  rule.max_rounds = 10000;
  const RunResult r = engine.run(population, rule, rng);
  EXPECT_TRUE(r.converged());
  EXPECT_EQ(r.final_config.ones, 0u);
}

TEST(PopulationEngine, PairwiseVoterEventuallyConverges) {
  const PairwiseVoter voter;
  const PopulationEngine engine(voter);
  Rng rng(5);
  auto population = engine.make_population(16, Opinion::kOne, 1);
  StopRule rule;
  rule.max_rounds = 1000000;
  const RunResult r = engine.run(population, rule, rng);
  EXPECT_TRUE(r.converged());
}

TEST(PopulationEngine, FalselyInformedAgentsBreakSelfStabilization) {
  // The adversarial init of E20 at unit-test scale: the naive epidemic
  // locks in wrongly-informed agents forever.
  const EpidemicProtocol epidemic;
  const PopulationEngine engine(epidemic);
  Rng rng(6);
  auto population = engine.make_population(128, Opinion::kOne, 1);
  population.states[1] = 0 | EpidemicProtocol::kInformedBit;
  StopRule rule;
  rule.max_rounds = 500;
  rule.stop_on_any_consensus = false;
  const RunResult r = engine.run(population, rule, rng);
  EXPECT_FALSE(r.converged());
  // The falsely-informed agent never loses its mark.
  std::uint64_t wrong_informed = 0;
  for (const std::uint32_t s : population.states) {
    wrong_informed += (s == (0u | EpidemicProtocol::kInformedBit));
  }
  EXPECT_GE(wrong_informed, 1u);
}

}  // namespace
}  // namespace bitspread
