// The conflicting-sources engine (majority bit-dissemination, §1.3).
#include <gtest/gtest.h>

#include "engine/conflicting.h"
#include "protocols/majority.h"
#include "protocols/minority.h"
#include "protocols/voter.h"

namespace bitspread {
namespace {

TEST(ConflictingConfiguration, ValidityAndCamps) {
  ConflictingConfiguration c{100, 40, 10, 20};
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(c.free_ones(), 30u);
  EXPECT_EQ(c.free_zeros(), 40u);
  EXPECT_EQ(c.majority_preference(), Opinion::kZero);
  c.stubborn_ones = 50;  // More stubborn ones than displayed ones.
  EXPECT_FALSE(c.valid());
}

TEST(ConflictingEngine, StubbornCountsAreInvariant) {
  const VoterDynamics voter;
  const ConflictingAggregateEngine engine(voter);
  Rng rng(1);
  ConflictingConfiguration config{200, 100, 15, 10};
  for (int t = 0; t < 200; ++t) {
    config = engine.step(config, rng);
    ASSERT_TRUE(config.valid()) << config.describe();
    EXPECT_GE(config.ones, 15u);
    EXPECT_LE(config.ones, 190u);
    EXPECT_EQ(config.stubborn_ones, 15u);
    EXPECT_EQ(config.stubborn_zeros, 10u);
  }
}

TEST(ConflictingEngine, NoConsensusEverWhileBothCampsExist) {
  const MinorityDynamics minority(3);
  const ConflictingAggregateEngine engine(minority);
  Rng rng(2);
  ConflictingConfiguration config{500, 250, 20, 20};
  for (int t = 0; t < 500; ++t) {
    config = engine.step(config, rng);
    EXPECT_GT(config.ones, 0u);
    EXPECT_LT(config.ones, 500u);
  }
}

TEST(ConflictingEngine, WatchReportsTrackingStatistics) {
  // Voter with a 3:1 stubborn imbalance: the free population's stationary
  // mean leans toward the bigger camp, so tracking should beat 1/2 clearly.
  const VoterDynamics voter;
  const ConflictingAggregateEngine engine(voter);
  Rng rng(3);
  ConflictingConfiguration config{1000, 500, 30, 10};
  const auto result = engine.watch(config, 20000, rng);
  EXPECT_GT(result.tracking_fraction, 0.7);
  EXPECT_LE(result.tracking_fraction, 1.0);
  EXPECT_TRUE(result.final_config.valid());
}

TEST(ConflictingEngine, NeverNearConsensusUnderVoterWithBalancedCamps) {
  // Balanced camps: the mix hovers near 1/2; >=90% alignment of the free
  // population should be (essentially) never observed.
  const VoterDynamics voter;
  const ConflictingAggregateEngine engine(voter);
  Rng rng(4);
  ConflictingConfiguration config{1000, 500, 20, 20};
  const auto result = engine.watch(config, 5000, rng);
  EXPECT_LT(result.near_consensus_fraction, 0.01);
}

TEST(ConflictingEngine, TrajectoryRecording) {
  const MajorityDynamics majority(5, MajorityDynamics::TieBreak::kKeepOwn);
  const ConflictingAggregateEngine engine(majority);
  Rng rng(5);
  Trajectory trajectory;
  engine.watch(ConflictingConfiguration{400, 200, 12, 8}, 100, rng,
               &trajectory);
  EXPECT_EQ(trajectory.size(), 101u);
}

}  // namespace
}  // namespace bitspread
