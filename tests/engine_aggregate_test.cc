// The aggregate parallel engine: invariants, stop rules, trajectories,
// determinism, and behavior at absorbing states.
#include <gtest/gtest.h>

#include <cmath>

#include "core/init.h"
#include "engine/aggregate.h"
#include "protocols/minority.h"
#include "protocols/perturbed.h"
#include "protocols/three_majority.h"
#include "protocols/voter.h"

namespace bitspread {
namespace {

TEST(AggregateEngine, StepPreservesValidity) {
  const MinorityDynamics minority(3);
  const AggregateParallelEngine engine(minority);
  Rng rng(1);
  Configuration config{100, 40, Opinion::kOne};
  for (int t = 0; t < 200; ++t) {
    config = engine.step(config, rng);
    ASSERT_TRUE(config.valid()) << config.describe();
    EXPECT_EQ(config.n, 100u);
    EXPECT_EQ(config.correct, Opinion::kOne);
  }
}

TEST(AggregateEngine, SourceNeverFlips) {
  const VoterDynamics voter;
  const AggregateParallelEngine engine(voter);
  Rng rng(2);
  Configuration config{50, 1, Opinion::kOne};  // Only the source holds 1.
  for (int t = 0; t < 100; ++t) {
    config = engine.step(config, rng);
    EXPECT_GE(config.ones, 1u);  // The source's 1 persists.
  }
}

TEST(AggregateEngine, ConsensusIsAbsorbingForCompliantProtocol) {
  const MinorityDynamics minority(5);
  const AggregateParallelEngine engine(minority);
  Rng rng(3);
  Configuration config = correct_consensus(1000, Opinion::kOne);
  for (int t = 0; t < 50; ++t) {
    config = engine.step(config, rng);
    EXPECT_TRUE(config.is_correct_consensus());
  }
}

TEST(AggregateEngine, BrokenProtocolEscapesConsensus) {
  const VoterDynamics voter;
  const PerturbedProtocol noisy(voter, 0.2);
  const AggregateParallelEngine engine(noisy);
  Rng rng(4);
  Configuration config = correct_consensus(1000, Opinion::kOne);
  bool escaped = false;
  for (int t = 0; t < 20 && !escaped; ++t) {
    config = engine.step(config, rng);
    escaped = !config.is_correct_consensus();
  }
  EXPECT_TRUE(escaped);
}

TEST(AggregateEngine, RunStopsAtCorrectConsensus) {
  const MinorityDynamics minority(SampleSizePolicy::sqrt_n_log_n());
  const AggregateParallelEngine engine(minority);
  Rng rng(5);
  StopRule rule;
  rule.max_rounds = 10000;
  const RunResult result =
      engine.run(init_half(4096, Opinion::kOne), rule, rng);
  EXPECT_EQ(result.reason, StopReason::kCorrectConsensus);
  EXPECT_TRUE(result.final_config.is_correct_consensus());
  EXPECT_TRUE(result.converged());
  EXPECT_FALSE(result.censored());
}

TEST(AggregateEngine, RunHonorsRoundLimit) {
  const VoterDynamics voter;
  const AggregateParallelEngine engine(voter);
  Rng rng(6);
  StopRule rule;
  rule.max_rounds = 5;
  const RunResult result =
      engine.run(init_half(100000, Opinion::kOne), rule, rng);
  EXPECT_EQ(result.reason, StopReason::kRoundLimit);
  EXPECT_EQ(result.rounds(), 5u);
  EXPECT_TRUE(result.censored());
}

TEST(AggregateEngine, RunStopsOnIntervalExit) {
  const MinorityDynamics minority(3);
  const AggregateParallelEngine engine(minority);
  Rng rng(7);
  StopRule rule;
  rule.max_rounds = 100000;
  // Minority from 90% ones pushes DOWN; watch for dropping below 70%.
  rule.interval_lo = 700;
  const RunResult result = engine.run(
      Configuration{1000, 900, Opinion::kOne}, rule, rng);
  EXPECT_EQ(result.reason, StopReason::kIntervalExit);
  EXPECT_LT(result.final_config.ones, 700u);
}

TEST(AggregateEngine, ZeroRoundsWhenStartingConverged) {
  const MinorityDynamics minority(3);
  const AggregateParallelEngine engine(minority);
  Rng rng(8);
  const RunResult result =
      engine.run(correct_consensus(100, Opinion::kZero), StopRule{}, rng);
  EXPECT_EQ(result.rounds(), 0u);
  EXPECT_TRUE(result.converged());
}

TEST(AggregateEngine, TrajectoryRecordsEveryRound) {
  const VoterDynamics voter;
  const AggregateParallelEngine engine(voter);
  Rng rng(9);
  StopRule rule;
  rule.max_rounds = 10;
  Trajectory trajectory;
  engine.run(init_half(1000, Opinion::kOne), rule, rng, &trajectory);
  ASSERT_GE(trajectory.size(), 2u);
  EXPECT_EQ(trajectory.points().front().round, 0u);
  EXPECT_EQ(trajectory.points().front().ones, 500u);
  // Rounds are consecutive.
  for (std::size_t i = 1; i < trajectory.size(); ++i) {
    EXPECT_EQ(trajectory.points()[i].round,
              trajectory.points()[i - 1].round + 1);
  }
}

TEST(AggregateEngine, TrajectoryStrideThins) {
  const VoterDynamics voter;
  const AggregateParallelEngine engine(voter);
  Rng rng(10);
  StopRule rule;
  rule.max_rounds = 100;
  Trajectory trajectory(10);
  engine.run(init_half(1000, Opinion::kOne), rule, rng, &trajectory);
  EXPECT_LE(trajectory.size(), 12u);
}

TEST(AggregateEngine, DeterministicGivenSeed) {
  const MinorityDynamics minority(4);
  const AggregateParallelEngine engine(minority);
  StopRule rule;
  rule.max_rounds = 500;
  Rng rng_a(11), rng_b(11);
  const RunResult a = engine.run(init_half(512, Opinion::kOne), rule, rng_a);
  const RunResult b = engine.run(init_half(512, Opinion::kOne), rule, rng_b);
  EXPECT_EQ(a.rounds(), b.rounds());
  EXPECT_EQ(a.final_config, b.final_config);
  EXPECT_EQ(a.reason, b.reason);
}

TEST(AggregateEngine, HugePopulationStepIsCheapAndSane) {
  // n = 10^9: one round must work and stay near the expected drift.
  const VoterDynamics voter;
  const AggregateParallelEngine engine(voter);
  Rng rng(12);
  const std::uint64_t n = 1'000'000'000;
  const Configuration config{n, n / 4, Opinion::kOne};
  const Configuration next = engine.step(config, rng);
  // Voter keeps the expectation: ones' ~ Bin(n-1, 1/4) + 1.
  const double mean = static_cast<double>(n) / 4.0;
  EXPECT_NEAR(static_cast<double>(next.ones), mean, 6.0 * std::sqrt(mean));
}

TEST(AggregateEngine, MultiSourceConfigurationsSupported) {
  const VoterDynamics voter;
  const AggregateParallelEngine engine(voter);
  Rng rng(13);
  Configuration config{100, 10, Opinion::kOne, 10};  // 10 sources, all ones.
  for (int t = 0; t < 50; ++t) {
    config = engine.step(config, rng);
    ASSERT_TRUE(config.valid());
    EXPECT_GE(config.ones, 10u);
  }
}

TEST(AggregateEngine, SourcelessConsensusMode) {
  // sources = 0: pure consensus. 3-majority drifts toward the initial
  // majority and absorbs quickly; either consensus stops the run.
  // (Minority with constant l would NOT work here: its bias stabilizes the
  // mixed state at 1/2 — the very phenomenon behind Theorem 1.)
  const ThreeMajorityDynamics three;
  const AggregateParallelEngine engine(three);
  Rng rng(14);
  StopRule rule;
  rule.max_rounds = 100000;
  const RunResult result =
      engine.run(Configuration{200, 130, Opinion::kOne, 0}, rule, rng);
  EXPECT_TRUE(result.reason == StopReason::kCorrectConsensus ||
              result.reason == StopReason::kWrongConsensus);
  EXPECT_TRUE(result.final_config.is_consensus());
}

}  // namespace
}  // namespace bitspread
