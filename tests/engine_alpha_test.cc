// The alpha-synchronous engine: consistency with the parallel engine at
// alpha = 1, one-step expectations, invariants, and the synchrony collapse.
#include <gtest/gtest.h>

#include <cmath>

#include "core/init.h"
#include "core/problem.h"
#include "engine/aggregate.h"
#include "engine/alpha_sync.h"
#include "protocols/minority.h"
#include "protocols/voter.h"
#include "stats/ks.h"
#include "stats/summary.h"

namespace bitspread {
namespace {

TEST(AlphaSync, AlphaOneMatchesParallelEngineInLaw) {
  const VoterDynamics voter;
  const AlphaSynchronousEngine alpha_engine(voter, 1.0);
  const AggregateParallelEngine parallel_engine(voter);
  const std::uint64_t n = 40;
  StopRule rule;
  rule.max_rounds = 1000000;
  const int kTrials = 300;
  std::vector<double> a_times, b_times;
  for (int i = 0; i < kTrials; ++i) {
    Rng rng_a(90000 + i), rng_b(91000 + i);
    const RunResult a =
        alpha_engine.run(Configuration{n, 15, Opinion::kOne}, rule, rng_a);
    const RunResult b = parallel_engine.run(Configuration{n, 15, Opinion::kOne},
                                            rule, rng_b);
    ASSERT_TRUE(a.converged());
    ASSERT_TRUE(b.converged());
    a_times.push_back(static_cast<double>(a.rounds()));
    b_times.push_back(static_cast<double>(b.rounds()));
  }
  const double d = ks_statistic(a_times, b_times);
  EXPECT_GT(ks_p_value(d, a_times.size(), b_times.size()), 1e-3) << "KS=" << d;
}

TEST(AlphaSync, StepPreservesValidityAndSources) {
  const MinorityDynamics minority(3);
  const AlphaSynchronousEngine engine(minority, 0.4);
  Rng rng(1);
  Configuration config{500, 200, Opinion::kOne};
  for (int t = 0; t < 300; ++t) {
    config = engine.step(config, rng);
    ASSERT_TRUE(config.valid());
    EXPECT_GE(config.ones, 1u);
  }
}

TEST(AlphaSync, OneStepMeanInterpolatesDrift) {
  // E[X' | x] = x + alpha * (full-parallel drift): inactive agents freeze.
  const MinorityDynamics minority(3);
  const double alpha = 0.3;
  const AlphaSynchronousEngine engine(minority, alpha);
  const std::uint64_t n = 3000;
  const Configuration start{n, 1000, Opinion::kOne};
  const double expected =
      static_cast<double>(start.ones) +
      alpha * exact_one_round_drift(minority, start);
  Rng rng(2);
  RunningStats stats;
  const int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) {
    stats.add(static_cast<double>(engine.step(start, rng).ones));
  }
  EXPECT_NEAR(stats.mean(), expected, 5.0 * stats.stderr_mean() + 1e-9);
}

TEST(AlphaSync, ConsensusAbsorbingForCompliantProtocol) {
  const MinorityDynamics minority(5);
  const AlphaSynchronousEngine engine(minority, 0.6);
  Rng rng(3);
  Configuration config = correct_consensus(200, Opinion::kOne);
  for (int t = 0; t < 100; ++t) {
    config = engine.step(config, rng);
    EXPECT_TRUE(config.is_correct_consensus());
  }
}

TEST(AlphaSync, SmallAlphaApproachesSequentialScale) {
  // With alpha = 1/n, each round performs ~1 activation; voter's
  // convergence measured in alpha-rounds should be ~n times the parallel
  // count (sanity of the time normalization).
  const VoterDynamics voter;
  const std::uint64_t n = 64;
  const AlphaSynchronousEngine engine(voter, 1.0 / static_cast<double>(n));
  StopRule rule;
  rule.max_rounds = 50'000'000;
  Rng rng(4);
  const RunResult result =
      engine.run(init_half(n, Opinion::kOne), rule, rng);
  ASSERT_TRUE(result.converged());
  // Effective parallel rounds = rounds / n: should be within a sane factor
  // of voter's ~n-ish convergence (very loose bounds; this is a unit test).
  const double effective =
      static_cast<double>(result.rounds()) / static_cast<double>(n);
  EXPECT_GT(effective, 5.0);
  EXPECT_LT(effective, 100000.0);
}

TEST(AlphaSync, MinorityMechanismCollapsesUnderMildAsynchrony) {
  // The E18 headline at unit-test scale: minority with l = sqrt(n ln n)
  // converges from all-wrong at alpha = 1 in a handful of rounds, but at
  // alpha = 0.9 it fails a 100x budget.
  const MinorityDynamics minority(SampleSizePolicy::sqrt_n_log_n());
  const std::uint64_t n = 1 << 12;
  const Configuration init = init_all_wrong(n, Opinion::kOne);

  const AlphaSynchronousEngine sync(minority, 1.0);
  StopRule rule;
  rule.max_rounds = 100;
  Rng rng_a(5);
  EXPECT_TRUE(sync.run(init, rule, rng_a).converged());

  const AlphaSynchronousEngine lagged(minority, 0.9);
  rule.max_rounds = 10000;
  Rng rng_b(6);
  EXPECT_TRUE(lagged.run(init, rule, rng_b).censored());
}

}  // namespace
}  // namespace bitspread
