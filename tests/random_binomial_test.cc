#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <tuple>
#include <vector>

#include "random/binomial.h"
#include "random/rng.h"
#include "stats/ks.h"
#include "stats/summary.h"

namespace bitspread {
namespace {

TEST(BinomialPmf, SumsToOne) {
  for (const std::uint64_t n : {1u, 2u, 5u, 17u, 100u, 1000u}) {
    for (const double p : {0.01, 0.2, 0.5, 0.77, 0.99}) {
      const auto pmf = binomial_pmf(n, p);
      const double total = std::accumulate(pmf.begin(), pmf.end(), 0.0);
      EXPECT_NEAR(total, 1.0, 1e-9) << "n=" << n << " p=" << p;
    }
  }
}

TEST(BinomialPmf, DegenerateP) {
  const auto zeros = binomial_pmf(10, 0.0);
  EXPECT_DOUBLE_EQ(zeros[0], 1.0);
  const auto ones = binomial_pmf(10, 1.0);
  EXPECT_DOUBLE_EQ(ones[10], 1.0);
}

TEST(BinomialPmf, MatchesDirectFormulaSmallN) {
  const std::uint64_t n = 6;
  const double p = 0.3;
  const auto pmf = binomial_pmf(n, p);
  const double choose[] = {1, 6, 15, 20, 15, 6, 1};
  for (std::uint64_t k = 0; k <= n; ++k) {
    const double expected = choose[k] * std::pow(p, static_cast<double>(k)) *
                            std::pow(1 - p, static_cast<double>(n - k));
    EXPECT_NEAR(pmf[k], expected, 1e-12);
  }
}

TEST(BinomialPmf, MeanAndVariance) {
  const std::uint64_t n = 200;
  const double p = 0.37;
  const auto pmf = binomial_pmf(n, p);
  double mean = 0.0, second = 0.0;
  for (std::uint64_t k = 0; k <= n; ++k) {
    mean += pmf[k] * static_cast<double>(k);
    second += pmf[k] * static_cast<double>(k) * static_cast<double>(k);
  }
  EXPECT_NEAR(mean, n * p, 1e-8);
  EXPECT_NEAR(second - mean * mean, n * p * (1 - p), 1e-7);
}

TEST(BinomialCdf, MonotoneAndBounded) {
  const std::uint64_t n = 50;
  const double p = 0.4;
  double prev = 0.0;
  for (std::uint64_t k = 0; k <= n; ++k) {
    const double c = binomial_cdf(n, p, k);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_LE(c, 1.0 + 1e-12);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(binomial_cdf(n, p, n), 1.0);
}

TEST(BinomialCdf, MedianOfSymmetric) {
  // Bin(9, 0.5): P(K <= 4) = 0.5 exactly by symmetry.
  EXPECT_NEAR(binomial_cdf(9, 0.5, 4), 0.5, 1e-12);
}

TEST(BinomialSampler, EdgeCases) {
  Rng rng(1);
  EXPECT_EQ(binomial(rng, 0, 0.5), 0u);
  EXPECT_EQ(binomial(rng, 100, 0.0), 0u);
  EXPECT_EQ(binomial(rng, 100, 1.0), 100u);
  EXPECT_EQ(binomial(rng, 100, -0.5), 0u);
  EXPECT_EQ(binomial(rng, 100, 1.5), 100u);
}

TEST(BinomialSampler, AlwaysWithinSupport) {
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_LE(binomial(rng, 37, 0.41), 37u);
  }
}

// Property sweep: sample mean and variance across all regimes (inversion,
// rejection, symmetric complement, large n).
using BinomialParams = std::tuple<std::uint64_t, double>;

class BinomialMomentsTest : public ::testing::TestWithParam<BinomialParams> {};

TEST_P(BinomialMomentsTest, MeanAndVarianceMatch) {
  const auto [n, p] = GetParam();
  Rng rng(0xb10 + n);
  RunningStats stats;
  const int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    stats.add(static_cast<double>(binomial(rng, n, p)));
  }
  const double mean = static_cast<double>(n) * p;
  const double var = mean * (1.0 - p);
  const double mean_tol = 5.0 * std::sqrt(var / kDraws) + 1e-9;
  EXPECT_NEAR(stats.mean(), mean, mean_tol) << "n=" << n << " p=" << p;
  // Variance concentrates slower; allow 10% relative slack.
  if (var > 0.5) {
    EXPECT_NEAR(stats.variance(), var, 0.1 * var) << "n=" << n << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, BinomialMomentsTest,
    ::testing::Values(
        BinomialParams{1, 0.5}, BinomialParams{2, 0.1},
        BinomialParams{10, 0.05},                 // BINV, tiny mean
        BinomialParams{10, 0.5},                  // BINV boundary
        BinomialParams{100, 0.02},                // BINV via small np
        BinomialParams{100, 0.3},                 // BTRS
        BinomialParams{100, 0.97},                // complement + BINV
        BinomialParams{1000, 0.5},                // BTRS, large
        BinomialParams{1000, 0.9},                // complement + BTRS
        BinomialParams{1000000, 0.25},            // BTRS, very large n
        BinomialParams{1000000, 0.000001},        // BINV, np = 1
        BinomialParams{1000000000, 0.5}));        // n = 1e9

// Exactness: chi-square of sampled frequencies against the true pmf, in both
// the inversion and rejection regimes.
class BinomialChiSquareTest : public ::testing::TestWithParam<BinomialParams> {
};

TEST_P(BinomialChiSquareTest, FrequenciesMatchPmf) {
  const auto [n, p] = GetParam();
  Rng rng(0xc41 + n * 31);
  const int kDraws = 60000;
  std::vector<std::uint64_t> counts(n + 1, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[binomial(rng, n, p)];
  const auto pmf = binomial_pmf(n, p);
  int dof = 0;
  const double stat = chi_square_statistic(counts, pmf, kDraws, &dof);
  const double p_value = chi_square_p_value(stat, dof);
  EXPECT_GT(p_value, 1e-4) << "n=" << n << " p=" << p << " stat=" << stat
                           << " dof=" << dof;
}

INSTANTIATE_TEST_SUITE_P(Regimes, BinomialChiSquareTest,
                         ::testing::Values(BinomialParams{8, 0.3},    // BINV
                                           BinomialParams{12, 0.5},   // BINV
                                           BinomialParams{60, 0.4},   // BTRS
                                           BinomialParams{60, 0.85},  // compl.
                                           BinomialParams{200, 0.2},  // BTRS
                                           BinomialParams{40, 0.5}));

TEST(BinomialSampler, RegimesAgreeInDistribution) {
  // Force both internal regimes at the same (n, p) and compare samples.
  const std::uint64_t n = 64;
  const double p = 0.25;  // n*p = 16 >= threshold: btrs eligible; binv valid.
  Rng rng_a(71);
  Rng rng_b(72);
  const int kDraws = 30000;
  std::vector<double> a(kDraws), b(kDraws);
  for (int i = 0; i < kDraws; ++i) {
    a[i] = static_cast<double>(binomial_detail::binv(rng_a, n, p));
    b[i] = static_cast<double>(binomial_detail::btrs(rng_b, n, p));
  }
  const double d = ks_statistic(a, b);
  EXPECT_GT(ks_p_value(d, a.size(), b.size()), 1e-4) << "KS=" << d;
}

TEST(BinomialSampler, IsDeterministicGivenSeed) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(binomial(a, 1000, 0.3), binomial(b, 1000, 0.3));
  }
}

}  // namespace
}  // namespace bitspread
